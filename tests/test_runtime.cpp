#include "runtime/stf_runtime.hpp"

#include <gtest/gtest.h>

#include "bounds/dag_lower_bound.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/kernel_timings.hpp"
#include "sched/validate.hpp"

namespace hp::runtime {
namespace {

TEST(StfRuntime, ReadAfterWriteInference) {
  StfRuntime rt(Platform(1, 1));
  const DataHandle a = rt.register_data("a");
  const TaskId writer = rt.submit(Task{1.0, 1.0}, {W(a)});
  const TaskId reader = rt.submit(Task{1.0, 1.0}, {R(a)});
  rt.run();
  const auto succ = rt.graph().successors(writer);
  EXPECT_TRUE(std::find(succ.begin(), succ.end(), reader) != succ.end());
}

TEST(StfRuntime, ConcurrentReadersDoNotSerialize) {
  StfRuntime rt(Platform(2, 2));
  const DataHandle a = rt.register_data();
  rt.submit(Task{1.0, 1.0}, {W(a)});
  const TaskId r1 = rt.submit(Task{1.0, 1.0}, {R(a)});
  const TaskId r2 = rt.submit(Task{1.0, 1.0}, {R(a)});
  rt.run();
  const auto succ1 = rt.graph().successors(r1);
  EXPECT_TRUE(std::find(succ1.begin(), succ1.end(), r2) == succ1.end());
}

TEST(StfRuntime, WriteAfterReadSerializes) {
  StfRuntime rt(Platform(2, 2));
  const DataHandle a = rt.register_data();
  rt.submit(Task{1.0, 1.0}, {W(a)});
  const TaskId reader = rt.submit(Task{1.0, 1.0}, {R(a)});
  const TaskId writer2 = rt.submit(Task{1.0, 1.0}, {RW(a)});
  rt.run();
  const auto succ = rt.graph().successors(reader);
  EXPECT_TRUE(std::find(succ.begin(), succ.end(), writer2) != succ.end());
}

TEST(StfRuntime, WriteAfterWriteSerializes) {
  StfRuntime rt(Platform(2, 2));
  const DataHandle a = rt.register_data();
  const TaskId w1 = rt.submit(Task{1.0, 1.0}, {W(a)});
  const TaskId w2 = rt.submit(Task{1.0, 1.0}, {W(a)});
  rt.run();
  const auto succ = rt.graph().successors(w1);
  EXPECT_TRUE(std::find(succ.begin(), succ.end(), w2) != succ.end());
}

TEST(StfRuntime, IndependentDataIndependentTasks) {
  StfRuntime rt(Platform(2, 2));
  const DataHandle a = rt.register_data();
  const DataHandle b = rt.register_data();
  rt.submit(Task{3.0, 3.0}, {RW(a)});
  rt.submit(Task{3.0, 3.0}, {RW(b)});
  EXPECT_DOUBLE_EQ(rt.run(), 3.0);  // run in parallel
  EXPECT_EQ(rt.graph().num_edges(), 0u);
}

/// Submit a tiny tiled Cholesky through the STF API and check it against
/// every policy.
class StfCholesky : public ::testing::TestWithParam<SchedulerPolicy> {
 protected:
  static void submit_cholesky(StfRuntime& rt, int tiles) {
    const TimingModel model = TimingModel::chameleon_960();
    std::vector<std::vector<DataHandle>> tile(
        static_cast<std::size_t>(tiles),
        std::vector<DataHandle>(static_cast<std::size_t>(tiles), kInvalidData));
    for (int i = 0; i < tiles; ++i) {
      for (int j = 0; j <= i; ++j) {
        tile[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            rt.register_data("A" + std::to_string(i) + std::to_string(j));
      }
    }
    auto handle = [&](int i, int j) {
      return tile[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    };
    for (int k = 0; k < tiles; ++k) {
      rt.submit(model.make_task(KernelKind::kPotrf), {RW(handle(k, k))});
      for (int i = k + 1; i < tiles; ++i) {
        rt.submit(model.make_task(KernelKind::kTrsm),
                  {R(handle(k, k)), RW(handle(i, k))});
      }
      for (int i = k + 1; i < tiles; ++i) {
        rt.submit(model.make_task(KernelKind::kSyrk),
                  {R(handle(i, k)), RW(handle(i, i))});
        for (int j = k + 1; j < i; ++j) {
          rt.submit(model.make_task(KernelKind::kGemm),
                    {R(handle(i, k)), R(handle(j, k)), RW(handle(i, j))});
        }
      }
    }
  }
};

TEST_P(StfCholesky, MatchesGeneratorDagAndSchedulesValidly) {
  RuntimeOptions options;
  options.policy = GetParam();
  StfRuntime rt(Platform(4, 2), options);
  submit_cholesky(rt, 6);
  const double makespan = rt.run();

  // Same structure as the built-in generator.
  EXPECT_EQ(rt.num_tasks(), cholesky_task_count(6));
  EXPECT_TRUE(rt.graph().is_dag());

  const auto check = check_schedule(rt.schedule(), rt.graph(), Platform(4, 2));
  EXPECT_TRUE(check.ok) << policy_name(GetParam()) << ": " << check.message;
  const double lb = dag_lower_bound(rt.graph(), Platform(4, 2)).value();
  EXPECT_GE(makespan, lb - 1e-9);
  EXPECT_LE(makespan, 4.0 * lb);
}

INSTANTIATE_TEST_SUITE_P(Policies, StfCholesky,
                         ::testing::Values(SchedulerPolicy::kHeteroPrio,
                                           SchedulerPolicy::kHeft,
                                           SchedulerPolicy::kDualHp));

TEST(StfRuntime, NoisyRunIsValidAgainstActualTimes) {
  RuntimeOptions options;
  options.noise_sigma = 0.3;
  options.noise_seed = 7;
  StfRuntime rt(Platform(2, 1), options);
  const DataHandle a = rt.register_data();
  for (int i = 0; i < 10; ++i) {
    rt.submit(Task{2.0, 0.5}, {RW(a)});
  }
  rt.run();
  const auto check =
      check_schedule(rt.schedule(), rt.actual_times(), Platform(2, 1));
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(StfRuntime, NoiseIsDeterministicPerSeed) {
  auto run_once = [] {
    RuntimeOptions options;
    options.noise_sigma = 0.2;
    options.noise_seed = 11;
    StfRuntime rt(Platform(1, 1), options);
    const DataHandle a = rt.register_data();
    rt.submit(Task{5.0, 1.0}, {RW(a)});
    rt.submit(Task{5.0, 1.0}, {RW(a)});
    return rt.run();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(StfRuntime, RunIsIdempotentUntilNextSubmit) {
  StfRuntime rt(Platform(1, 1));
  const DataHandle a = rt.register_data();
  rt.submit(Task{4.0, 1.0}, {RW(a)});
  const double first = rt.run();
  EXPECT_DOUBLE_EQ(rt.run(), first);
  rt.submit(Task{4.0, 1.0}, {RW(a)});
  EXPECT_GT(rt.run(), first);
}

TEST(StfRuntime, HeteroPrioStatsExposed) {
  StfRuntime rt(Platform(1, 1));
  // One GPU-friendly and one CPU-hostage task to force a spoliation.
  const DataHandle a = rt.register_data();
  const DataHandle b = rt.register_data();
  rt.submit(Task{10.0, 1.0}, {RW(a)});
  rt.submit(Task{10.0, 5.0}, {RW(b)});
  rt.run();
  EXPECT_EQ(rt.stats().spoliations, 1);
}

TEST(StfRuntime, PolicyNames) {
  EXPECT_STREQ(policy_name(SchedulerPolicy::kHeteroPrio), "HeteroPrio");
  EXPECT_STREQ(policy_name(SchedulerPolicy::kHeft), "HEFT");
  EXPECT_STREQ(policy_name(SchedulerPolicy::kDualHp), "DualHP");
}

}  // namespace
}  // namespace hp::runtime
