// Tests for util/striped_epoch: the grace-period scheme protecting retired
// ready blocks in the parallel engine (src/par). The safety contract under
// test: a block retired while some participant is inside a critical region
// it entered *before* the retirement must not be reclaimable until that
// participant leaves — the participant may still hold a raw pointer into
// the block. Liveness: once every participant has moved on, the block
// becomes reclaimable without any forced flush.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/striped_epoch.hpp"

namespace hp::util {
namespace {

TEST(StripedEpoch, ReclaimsImmediatelyWhenAllIdle) {
  StripedEpoch epoch(4);
  int block = 0;
  epoch.retire(0, &block);
  EXPECT_EQ(epoch.pending(), 1u);
  std::vector<void*> out;
  EXPECT_EQ(epoch.try_reclaim(out), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], &block);
  EXPECT_EQ(epoch.pending(), 0u);
}

TEST(StripedEpoch, PinnedReaderBlocksReclamation) {
  StripedEpoch epoch(2);
  int block = 0;
  epoch.enter(0);  // reader pins the pre-retire epoch
  epoch.retire(1, &block);
  std::vector<void*> out;
  EXPECT_EQ(epoch.try_reclaim(out), 0u) << "reader may still hold a pointer";
  EXPECT_EQ(epoch.pending(), 1u);
  epoch.leave(0);
  EXPECT_EQ(epoch.try_reclaim(out), 1u);
  EXPECT_EQ(out.size(), 1u);
}

TEST(StripedEpoch, ReaderEnteringAfterRetireDoesNotBlockIt) {
  StripedEpoch epoch(2);
  int block = 0;
  epoch.retire(1, &block);
  // This region started after the retirement advanced the epoch, so it can
  // only observe the new publication — the old block is already safe.
  epoch.enter(0);
  std::vector<void*> out;
  EXPECT_EQ(epoch.try_reclaim(out), 1u);
  epoch.leave(0);
}

TEST(StripedEpoch, OnlyGraceElapsedBlocksAreReclaimed) {
  StripedEpoch epoch(2);
  int old_block = 0;
  int new_block = 0;
  epoch.retire(1, &old_block);
  epoch.enter(0);  // pins an epoch after old_block's retirement...
  epoch.retire(1, &new_block);  // ...but before new_block's
  std::vector<void*> out;
  EXPECT_EQ(epoch.try_reclaim(out), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], &old_block);
  epoch.leave(0);
  EXPECT_EQ(epoch.try_reclaim(out), 1u);
  EXPECT_EQ(out.back(), &new_block);
}

TEST(StripedEpoch, DrainHandsBackEverything) {
  StripedEpoch epoch(1);
  int a = 0;
  int b = 0;
  epoch.retire(0, &a);
  epoch.retire(0, &b);
  std::vector<void*> out;
  epoch.drain(out);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(epoch.pending(), 0u);
}

TEST(StripedEpoch, RetireAdvancesTheGlobalEpoch) {
  StripedEpoch epoch(1);
  const StripedEpoch::Epoch before = epoch.current_epoch();
  int block = 0;
  epoch.retire(0, &block);
  EXPECT_GT(epoch.current_epoch(), before);
  std::vector<void*> out;
  epoch.drain(out);
}

// Concurrent hammer (also the TSan workload): readers continuously enter /
// read a shared pointer / leave while a writer keeps swapping blocks out
// and retiring the old one. The invariant checked is the use-after-free
// contract itself — a reclaimed block is poisoned, and readers assert they
// never observe poison through a pointer acquired inside a region.
TEST(StripedEpoch, ConcurrentRetireNeverReclaimsUnderAReader) {
  constexpr int kReaders = 3;
  constexpr int kSwaps = 400;
  constexpr std::uint64_t kLive = 0x1111111111111111ull;
  constexpr std::uint64_t kPoison = 0xdeadbeefdeadbeefull;

  StripedEpoch epoch(kReaders + 1);
  std::vector<std::uint64_t> slabs(kSwaps + 1, kLive);
  std::atomic<std::uint64_t*> current{&slabs[0]};
  std::atomic<bool> stop{false};
  std::atomic<bool> violated{false};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      while (!stop.load(std::memory_order_acquire)) {
        const EpochGuard guard(epoch, static_cast<std::size_t>(r));
        const std::uint64_t* p = current.load(std::memory_order_acquire);
        if (*p != kLive) violated.store(true, std::memory_order_relaxed);
      }
    });
  }

  std::vector<void*> reclaimed;
  for (int i = 1; i <= kSwaps; ++i) {
    std::uint64_t* old = current.exchange(&slabs[static_cast<std::size_t>(i)],
                                          std::memory_order_acq_rel);
    epoch.retire(kReaders, old);
    reclaimed.clear();
    epoch.try_reclaim(reclaimed);
    // Reclaimed means no reader can still reach it: poison must be safe.
    for (void* b : reclaimed) *static_cast<std::uint64_t*>(b) = kPoison;
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_FALSE(violated.load()) << "a reader observed a reclaimed block";
  // Everything except the live slab is eventually handed back.
  reclaimed.clear();
  epoch.drain(reclaimed);
  EXPECT_EQ(epoch.pending(), 0u);
}

// Reclamation under churn (also a TSan workload): with four participants —
// three readers continuously inside short critical regions and one writer
// swapping/retiring as fast as it can — retired blocks must keep cycling
// back through a fixed pool instead of piling up behind the grace period.
// The flatness claim: the writer never needs a block beyond the initial
// pool, and the recycle count grows with the rounds, i.e. reclamation makes
// steady progress even though readers are pinned almost all the time.
TEST(StripedEpoch, ChurnRecyclesThroughAFixedPool) {
  constexpr int kReaders = 3;
  constexpr int kRounds = 4000;
  constexpr std::size_t kPool = 64;
  constexpr std::uint64_t kLive = 0x1111111111111111ull;
  constexpr std::uint64_t kPoison = 0xdeadbeefdeadbeefull;

  StripedEpoch epoch(kReaders + 1);
  std::vector<std::uint64_t> slabs(kPool, kLive);
  std::vector<std::uint64_t*> pool;
  for (std::size_t i = 1; i < kPool; ++i) pool.push_back(&slabs[i]);
  std::atomic<std::uint64_t*> current{&slabs[0]};
  std::atomic<bool> stop{false};
  std::atomic<bool> violated{false};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      while (!stop.load(std::memory_order_acquire)) {
        const EpochGuard guard(epoch, static_cast<std::size_t>(r));
        const std::uint64_t* p = current.load(std::memory_order_acquire);
        if (*p != kLive) violated.store(true, std::memory_order_relaxed);
      }
    });
  }

  std::size_t recycled = 0;
  bool starved = false;
  std::vector<void*> reclaimed;
  for (int i = 0; i < kRounds && !starved; ++i) {
    // Refill from the grace-elapsed retirees; un-poison before reuse.
    reclaimed.clear();
    epoch.try_reclaim(reclaimed);
    for (void* b : reclaimed) {
      auto* slab = static_cast<std::uint64_t*>(b);
      *slab = kPoison;  // prove no reader can still see it...
      *slab = kLive;    // ...then recycle it
      pool.push_back(slab);
      ++recycled;
    }
    // Flatness: the pool must never run dry — reclamation keeps pace with
    // retirement, so the working set stays at kPool blocks forever.
    int spins = 0;
    while (pool.empty()) {
      reclaimed.clear();
      epoch.try_reclaim(reclaimed);
      for (void* b : reclaimed) {
        auto* slab = static_cast<std::uint64_t*>(b);
        *slab = kPoison;
        *slab = kLive;
        pool.push_back(slab);
        ++recycled;
      }
      if (++spins > 100000000) {
        starved = true;  // reclamation stalled: fail below with context
        break;
      }
      std::this_thread::yield();
    }
    if (starved) break;
    std::uint64_t* fresh = pool.back();
    pool.pop_back();
    std::uint64_t* old =
        current.exchange(fresh, std::memory_order_acq_rel);
    epoch.retire(kReaders, old);
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_FALSE(starved) << "reclamation stopped making progress under churn";
  EXPECT_FALSE(violated.load()) << "a reader observed a recycled block";
  // kRounds retirements flowed through a kPool-block working set: nearly
  // everything retired must have come back.
  EXPECT_GE(recycled + kPool, static_cast<std::size_t>(kRounds));
  reclaimed.clear();
  epoch.drain(reclaimed);
  EXPECT_EQ(epoch.pending(), 0u);
}

}  // namespace
}  // namespace hp::util
