#include "obs/watchdog.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/heteroprio.hpp"
#include "obs/recorder.hpp"
#include "worstcase/instances.hpp"

namespace hp {
namespace {

using obs::PlatformShape;

TEST(ObsWatchdog, ShapeAndBoundTable) {
  EXPECT_EQ(obs::platform_shape(Platform(1, 1)), PlatformShape::kSingleSingle);
  EXPECT_EQ(obs::platform_shape(Platform(3, 1)), PlatformShape::kManyPlusOne);
  EXPECT_EQ(obs::platform_shape(Platform(1, 4)), PlatformShape::kManyPlusOne);
  EXPECT_EQ(obs::platform_shape(Platform(3, 2)), PlatformShape::kGeneral);
  EXPECT_EQ(obs::platform_shape(Platform(4, 0)), PlatformShape::kHomogeneous);
  EXPECT_EQ(obs::platform_shape(Platform(0, 3)), PlatformShape::kHomogeneous);

  EXPECT_DOUBLE_EQ(obs::proven_bound(Platform(1, 1)), kPhi);          // Thm 7
  EXPECT_DOUBLE_EQ(obs::proven_bound(Platform(3, 1)), 1.0 + kPhi);    // Thm 9
  EXPECT_DOUBLE_EQ(obs::proven_bound(Platform(1, 4)), 1.0 + kPhi);
  EXPECT_DOUBLE_EQ(obs::proven_bound(Platform(3, 2)),
                   2.0 + std::sqrt(2.0));                             // Thm 12
  EXPECT_DOUBLE_EQ(obs::proven_bound(Platform(4, 0)), 2.0 - 1.0 / 4.0);
}

TEST(ObsWatchdog, FiresOnAViolatingMakespan) {
  obs::EventRecorder rec;
  obs::WatchdogOptions options;
  options.sink = &rec;
  const obs::BoundCheck check =
      obs::check_makespan_bound(10.0, 1.0, Platform(1, 1), options);
  EXPECT_TRUE(check.violated);
  EXPECT_FALSE(check.advisory);
  EXPECT_DOUBLE_EQ(check.ratio, 10.0);
  EXPECT_DOUBLE_EQ(check.bound, kPhi);
  ASSERT_EQ(rec.size(), 1u);
  EXPECT_EQ(rec.events()[0].kind, obs::EventKind::kBoundViolation);
  EXPECT_DOUBLE_EQ(rec.events()[0].value, 10.0);
  EXPECT_DOUBLE_EQ(rec.events()[0].time, 10.0);
}

TEST(ObsWatchdog, SilentAtOrBelowTheBound) {
  obs::EventRecorder rec;
  obs::WatchdogOptions options;
  options.sink = &rec;
  // Exactly at the bound: the tolerance absorbs float noise.
  EXPECT_FALSE(
      obs::check_makespan_bound(kPhi, 1.0, Platform(1, 1), options).violated);
  EXPECT_FALSE(
      obs::check_makespan_bound(1.2, 1.0, Platform(1, 1), options).violated);
  EXPECT_TRUE(rec.empty());
}

TEST(ObsWatchdog, NonPositiveLowerBoundNeverFires) {
  const obs::BoundCheck check =
      obs::check_makespan_bound(5.0, 0.0, Platform(2, 2));
  EXPECT_FALSE(check.violated);
  EXPECT_DOUBLE_EQ(check.ratio, 0.0);
}

TEST(ObsWatchdog, DagVerdictIsAdvisory) {
  obs::WatchdogOptions options;
  options.dag = true;
  const obs::BoundCheck check =
      obs::check_makespan_bound(100.0, 1.0, Platform(2, 2), options);
  EXPECT_TRUE(check.violated);
  EXPECT_TRUE(check.advisory);
  EXPECT_NE(obs::describe(check).find("advisory"), std::string::npos);
}

TEST(ObsWatchdog, DescribeNamesTheShape) {
  const obs::BoundCheck check =
      obs::check_makespan_bound(1.0, 1.0, Platform(3, 2));
  const std::string line = obs::describe(check);
  EXPECT_NE(line.find("m+n"), std::string::npos);
}

// The adversarial instances realize the worst proven ratios; HeteroPrio on
// them must still stay within the theorems' bounds when checked against the
// constructed optimum (the sharpest possible lower bound).
TEST(ObsWatchdog, SilentOnTheorem8WorstCase) {
  const WorstCaseInstance wc = theorem8_instance();
  const Schedule s = heteroprio(wc.instance.tasks(), wc.platform);
  const obs::BoundCheck check =
      obs::check_schedule_bound(s, wc.optimal_makespan, wc.platform);
  EXPECT_FALSE(check.violated) << obs::describe(check);
  EXPECT_EQ(check.shape, PlatformShape::kSingleSingle);
  // The family attains the bound: the measured ratio is close to phi.
  EXPECT_NEAR(check.ratio, kPhi, 0.05);
}

TEST(ObsWatchdog, SilentOnTheorem11WorstCase) {
  const WorstCaseInstance wc = theorem11_instance(4, 8);
  const Schedule s = heteroprio(wc.instance.tasks(), wc.platform);
  const obs::BoundCheck check =
      obs::check_schedule_bound(s, wc.optimal_makespan, wc.platform);
  EXPECT_FALSE(check.violated) << obs::describe(check);
  EXPECT_EQ(check.shape, PlatformShape::kManyPlusOne);
  EXPECT_GT(check.ratio, 1.5);  // adversarial, well above trivial
}

TEST(ObsWatchdog, SilentOnTheorem14WorstCase) {
  const WorstCaseInstance wc = theorem14_instance(1);
  const Schedule s = heteroprio(wc.instance.tasks(), wc.platform);
  const obs::BoundCheck check =
      obs::check_schedule_bound(s, wc.optimal_makespan, wc.platform);
  EXPECT_FALSE(check.violated) << obs::describe(check);
  EXPECT_EQ(check.shape, PlatformShape::kGeneral);
}

}  // namespace
}  // namespace hp
