// Deterministic soak of the scheduling service: 8 tenants x 500 requests
// of mixed workloads (independent instances of varying size, tiled
// Cholesky DAGs, faulty runs, all four backends) pushed through the
// concurrent driver. The checks are the service's whole contract at once:
// request/response pairing (every ticket answered exactly once by its own
// response), per-tenant counter totals, the zero-silent-drop accounting
// identity, graceful drain, and — on a verified subset — the bitwise
// differential against the direct engine call.
//
// ServeSoak.* runs in the `serve`-labeled aggregate (TSan CI included);
// CI's quick path is the `serve_smoke` CLI test, not a reduced soak.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "dag/ranking.hpp"
#include "fault/fault_plan.hpp"
#include "linalg/cholesky.hpp"
#include "model/generators.hpp"
#include "serve/driver.hpp"
#include "util/rng.hpp"

namespace hp::serve {
namespace {

constexpr int kTenants = 8;
constexpr int kRequestsPerTenant = 500;

/// Mixed-workload factory, deterministic in (client, index): mostly small
/// independent instances, every 7th a Cholesky DAG, every 9th carrying a
/// generated fault plan.
Request make_soak_request(int client, int index) {
  util::Rng rng(util::seed_from_cell({static_cast<std::uint64_t>(client),
                                      static_cast<std::uint64_t>(index)},
                                     0x736f616bULL));  // "soak"
  Request request;
  request.tenant = client;
  switch (index % 4) {
    case 0: request.backend = Backend::kHp; break;
    case 1: request.backend = Backend::kHeft; break;
    case 2: request.backend = Backend::kHpNoSpol; break;
    default: request.backend = Backend::kDualHp; break;
  }
  request.platform = Platform(2 + client % 3, 1 + client % 2);

  if (index % 7 == 0) {
    TaskGraph graph = cholesky_dag(3 + index % 3);
    graph.finalize();
    assign_priorities(graph, RankScheme::kMin);
    request.graph = std::move(graph);
    request.rank = RankScheme::kMin;
  } else {
    UniformGenParams params;
    params.num_tasks = 10 + rng.bounded(30);
    const Instance inst = uniform_instance(params, rng);
    TaskGraph graph("soak-" + std::to_string(client) + "-" +
                    std::to_string(index));
    for (const Task& t : inst.tasks()) {
      Task task = t;
      task.priority = rng.uniform(0.0, 16.0);
      graph.add_task(task);
    }
    graph.finalize();
    request.graph = std::move(graph);
  }

  if (index % 9 == 0) {
    fault::FaultSpec spec;
    spec.crashes = 1;
    spec.task_fail_prob = 0.05;
    spec.max_attempts = 3;
    spec.horizon = 64.0;
    spec.seed = rng();
    request.faults = fault::FaultPlan::generate(spec, request.platform);
  }
  return request;
}

TEST(ServeSoak, EightTenantsFiveHundredRequestsEach) {
  DriverOptions options;
  options.clients = kTenants;
  options.requests_per_client = kRequestsPerTenant;
  options.service.workers = 3;
  options.service.batch_size = 8;
  // Verifying all 4000 differentials would re-run every request serially;
  // the fuzz `serve` property owns the exhaustive bitwise check. The soak
  // checks pairing + accounting at scale.
  options.verify = false;

  const DriverReport report = run_driver(make_soak_request, options);
  EXPECT_TRUE(report.ok()) << report.first_error;
  EXPECT_TRUE(report.balanced);
  EXPECT_TRUE(report.paired);
  EXPECT_EQ(report.responses,
            static_cast<std::uint64_t>(kTenants) * kRequestsPerTenant);
  EXPECT_EQ(report.accounting.completed, report.responses)
      << "no admission pressure configured, everything must complete";
  EXPECT_EQ(report.accounting.rejected, 0u);
  EXPECT_EQ(report.accounting.in_flight, 0u);

  // Per-tenant isolation: each tenant's counters account for exactly its
  // own 500 requests.
  ASSERT_EQ(report.tenants.size(), static_cast<std::size_t>(kTenants));
  for (const DriverTenantReport& t : report.tenants) {
    EXPECT_EQ(t.submitted, static_cast<std::uint64_t>(kRequestsPerTenant))
        << "tenant " << t.tenant;
    EXPECT_EQ(t.completed, static_cast<std::uint64_t>(kRequestsPerTenant))
        << "tenant " << t.tenant;
    EXPECT_EQ(t.rejected, 0u) << "tenant " << t.tenant;
    EXPECT_GT(t.p50_latency_seconds, 0.0) << "tenant " << t.tenant;
    EXPECT_LE(t.p50_latency_seconds, t.p99_latency_seconds)
        << "tenant " << t.tenant;
  }
  EXPECT_GT(report.requests_per_sec, 0.0);
}

// The same soak under admission pressure with the defer policy: a shallow
// watermark parks bursts, but deferral never loses work — every request
// still completes, and the hysteresis actually cycled.
TEST(ServeSoak, DeferredSoakCompletesEverything) {
  DriverOptions options;
  options.clients = kTenants;
  options.requests_per_client = 120;
  options.service.workers = 2;
  options.service.watermark_high = 4;
  options.service.watermark_low = 2;
  options.service.shed_policy = online::ShedPolicy::kDefer;
  // Verify the bitwise differential on this smaller run: admission
  // pressure and parking must not change a single placement.
  options.verify = true;

  const DriverReport report = run_driver(make_soak_request, options);
  EXPECT_TRUE(report.ok()) << report.first_error;
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.accounting.completed,
            static_cast<std::uint64_t>(kTenants) * 120);
  EXPECT_EQ(report.accounting.rejected, 0u)
      << "the defer policy must never reject";
  EXPECT_GT(report.accounting.deferred, 0u)
      << "the watermark never tripped: the soak is not exercising parking";
}

// And with the reject policy: whatever is shed is answered, counted, and
// the remainder completes — completed + rejected covers every submission.
TEST(ServeSoak, RejectingSoakAccountsForEveryRequest) {
  DriverOptions options;
  options.clients = kTenants;
  options.requests_per_client = 120;
  options.service.workers = 2;
  options.service.watermark_high = 4;
  options.service.shed_policy = online::ShedPolicy::kReject;
  options.verify = false;

  const DriverReport report = run_driver(make_soak_request, options);
  EXPECT_TRUE(report.ok()) << report.first_error;
  EXPECT_EQ(report.accounting.completed + report.accounting.rejected,
            static_cast<std::uint64_t>(kTenants) * 120);
  EXPECT_EQ(report.responses,
            static_cast<std::uint64_t>(kTenants) * 120)
      << "every submission gets a response, shed ones included";
}

}  // namespace
}  // namespace hp::serve
