// Fuzz-case generator: determinism, knob respect, shape coverage.

#include <gtest/gtest.h>

#include <set>

#include "fuzz/generator.hpp"

namespace hp::fuzz {
namespace {

TEST(FuzzGenerator, SameCoordinatesRegenerateTheSameCase) {
  for (std::uint64_t index : {0ULL, 7ULL, 31ULL}) {
    const FuzzCase a = generate_case(42, index);
    const FuzzCase b = generate_case(42, index);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.platform.cpus(), b.platform.cpus());
    EXPECT_EQ(a.platform.gpus(), b.platform.gpus());
    ASSERT_EQ(a.graph.size(), b.graph.size());
    ASSERT_EQ(a.graph.num_edges(), b.graph.num_edges());
    for (std::size_t i = 0; i < a.graph.size(); ++i) {
      const Task& ta = a.graph.tasks()[i];
      const Task& tb = b.graph.tasks()[i];
      EXPECT_EQ(ta.cpu_time, tb.cpu_time);
      EXPECT_EQ(ta.gpu_time, tb.gpu_time);
      EXPECT_EQ(ta.priority, tb.priority);
    }
    EXPECT_EQ(a.faults, b.faults);
  }
}

TEST(FuzzGenerator, DifferentSeedsOrIndexesDiffer) {
  // Cell seeds are pure functions of the coordinates, so they must all be
  // pairwise distinct — collisions would make runs re-check the same case.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s : {1ULL, 2ULL}) {
    for (std::uint64_t i = 0; i < 50; ++i) {
      seeds.insert(generate_case(s, i).seed);
    }
  }
  EXPECT_EQ(seeds.size(), 100u);
}

TEST(FuzzGenerator, RespectsKnobs) {
  GenKnobs knobs;
  knobs.max_tasks = 12;
  knobs.max_cpus = 2;
  knobs.max_gpus = 2;
  for (std::uint64_t i = 0; i < 100; ++i) {
    const FuzzCase c = generate_case(3, i, knobs);
    EXPECT_GE(c.graph.size(), 1u) << c.name;
    // DAG families (tiled factorizations) can overshoot slightly; the
    // budget helper keeps them within the same order.
    EXPECT_LE(c.graph.size(), 2u * static_cast<std::size_t>(knobs.max_tasks))
        << c.name;
    EXPECT_LE(c.platform.cpus(), knobs.max_cpus) << c.name;
    EXPECT_LE(c.platform.gpus(), knobs.max_gpus) << c.name;
    EXPECT_GE(c.platform.workers(), 1) << c.name;
    EXPECT_TRUE(c.graph.finalized()) << c.name;
    EXPECT_TRUE(c.graph.is_dag() || c.graph.num_edges() == 0) << c.name;
    for (const Task& t : c.graph.tasks()) {
      EXPECT_GT(t.cpu_time, 0.0) << c.name;
      EXPECT_GT(t.gpu_time, 0.0) << c.name;
    }
  }
}

TEST(FuzzGenerator, CoversAllShapes) {
  int dags = 0;
  int independent = 0;
  int faulty = 0;
  int one_sided = 0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const FuzzCase c = generate_case(9, i);
    if (c.is_dag()) {
      ++dags;
    } else {
      ++independent;
    }
    if (c.has_faults()) ++faulty;
    if (c.platform.cpus() == 0 || c.platform.gpus() == 0) ++one_sided;
  }
  EXPECT_GT(dags, 20);
  EXPECT_GT(independent, 50);
  EXPECT_GT(faulty, 20);
  EXPECT_GT(one_sided, 5);
}

TEST(FuzzGenerator, ParThreadsDrawStaysInRangeAndIsStrictlyLast) {
  // Enabled (the default): par_threads lands in [2, knobs.par_threads].
  for (std::uint64_t i = 0; i < 60; ++i) {
    const FuzzCase c = generate_case(13, i);
    EXPECT_GE(c.par_threads, 2) << c.name;
    EXPECT_LE(c.par_threads, GenKnobs{}.par_threads) << c.name;
  }
  // Byte-identity regression: the draw comes strictly last, so disabling
  // it must leave every other field of the case untouched — historical
  // (seed, index) coordinates keep naming the same problems.
  GenKnobs disabled;
  disabled.par_threads = 0;
  for (std::uint64_t i = 0; i < 60; ++i) {
    const FuzzCase with = generate_case(13, i);
    const FuzzCase without = generate_case(13, i, disabled);
    EXPECT_EQ(without.par_threads, 0) << with.name;
    EXPECT_EQ(with.name, without.name);
    EXPECT_EQ(with.platform.cpus(), without.platform.cpus());
    EXPECT_EQ(with.platform.gpus(), without.platform.gpus());
    ASSERT_EQ(with.graph.size(), without.graph.size());
    ASSERT_EQ(with.graph.num_edges(), without.graph.num_edges());
    for (std::size_t t = 0; t < with.graph.size(); ++t) {
      const Task& ta = with.graph.tasks()[t];
      const Task& tb = without.graph.tasks()[t];
      EXPECT_EQ(ta.cpu_time, tb.cpu_time);
      EXPECT_EQ(ta.gpu_time, tb.gpu_time);
      EXPECT_EQ(ta.priority, tb.priority);
    }
    EXPECT_EQ(with.faults, without.faults);
    EXPECT_EQ(with.arrivals.empty(), without.arrivals.empty());
  }
}

TEST(FuzzGenerator, ServeWorkersDrawStaysInRangeAndIsStrictlyLast) {
  // Enabled (the default): serve_workers lands in [2, knobs.serve_workers].
  for (std::uint64_t i = 0; i < 60; ++i) {
    const FuzzCase c = generate_case(13, i);
    EXPECT_GE(c.serve_workers, 2) << c.name;
    EXPECT_LE(c.serve_workers, GenKnobs{}.serve_workers) << c.name;
  }
  // Byte-identity regression: the serve draw comes strictly last — after
  // even the par draw — so disabling it must leave every other field
  // untouched, par_threads included; historical (seed, index) coordinates
  // keep naming the same problems.
  GenKnobs disabled;
  disabled.serve_workers = 0;
  for (std::uint64_t i = 0; i < 60; ++i) {
    const FuzzCase with = generate_case(13, i);
    const FuzzCase without = generate_case(13, i, disabled);
    EXPECT_EQ(without.serve_workers, 0) << with.name;
    EXPECT_EQ(with.par_threads, without.par_threads) << with.name;
    EXPECT_EQ(with.name, without.name);
    EXPECT_EQ(with.platform.cpus(), without.platform.cpus());
    EXPECT_EQ(with.platform.gpus(), without.platform.gpus());
    ASSERT_EQ(with.graph.size(), without.graph.size());
    ASSERT_EQ(with.graph.num_edges(), without.graph.num_edges());
    for (std::size_t t = 0; t < with.graph.size(); ++t) {
      const Task& ta = with.graph.tasks()[t];
      const Task& tb = without.graph.tasks()[t];
      EXPECT_EQ(ta.cpu_time, tb.cpu_time);
      EXPECT_EQ(ta.gpu_time, tb.gpu_time);
      EXPECT_EQ(ta.priority, tb.priority);
    }
    EXPECT_EQ(with.faults, without.faults);
    EXPECT_EQ(with.arrivals.empty(), without.arrivals.empty());
  }
}

TEST(FuzzGenerator, FaultPlansAreScaledToTheRun) {
  // Crash instants of generated plans must land within a few horizons of
  // the fault-free makespan, or they would never fire.
  int checked = 0;
  for (std::uint64_t i = 0; i < 120 && checked < 10; ++i) {
    const FuzzCase c = generate_case(11, i);
    if (!c.has_faults() || c.faults.crashes().empty()) continue;
    ++checked;
    for (const fault::CrashEvent& e : c.faults.crashes()) {
      EXPECT_GE(e.time, 0.0);
      EXPECT_GE(e.worker, 0);
      EXPECT_LT(e.worker, c.platform.workers());
    }
  }
  EXPECT_GE(checked, 5);
}

}  // namespace
}  // namespace hp::fuzz
