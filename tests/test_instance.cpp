#include "model/instance.hpp"

#include <gtest/gtest.h>

namespace hp {
namespace {

TEST(InstanceTest, AddAssignsSequentialIds) {
  Instance inst("x");
  EXPECT_EQ(inst.add(Task{1.0, 1.0}), 0);
  EXPECT_EQ(inst.add(Task{2.0, 1.0}), 1);
  EXPECT_EQ(inst.size(), 2u);
  EXPECT_FALSE(inst.empty());
}

TEST(InstanceTest, EmptyInstance) {
  const Instance inst;
  EXPECT_TRUE(inst.empty());
  EXPECT_EQ(inst.size(), 0u);
  EXPECT_DOUBLE_EQ(inst.total_cpu_work(), 0.0);
  EXPECT_DOUBLE_EQ(inst.max_min_time(), 0.0);
}

TEST(InstanceTest, TotalsAndMaxMin) {
  Instance inst("x");
  inst.add(Task{3.0, 1.0});
  inst.add(Task{2.0, 5.0});
  EXPECT_DOUBLE_EQ(inst.total_cpu_work(), 5.0);
  EXPECT_DOUBLE_EQ(inst.total_gpu_work(), 6.0);
  // min times: 1.0 and 2.0 -> max is 2.0
  EXPECT_DOUBLE_EQ(inst.max_min_time(), 2.0);
}

TEST(InstanceTest, IndexingAndMutation) {
  Instance inst("x");
  const TaskId id = inst.add(Task{3.0, 1.0});
  inst[id].priority = 9.0;
  EXPECT_DOUBLE_EQ(inst[id].priority, 9.0);
  EXPECT_DOUBLE_EQ(inst[id].cpu_time, 3.0);
}

TEST(InstanceTest, NamePreserved) {
  Instance inst("cholesky-8");
  EXPECT_EQ(inst.name(), "cholesky-8");
  inst.set_name("other");
  EXPECT_EQ(inst.name(), "other");
}

TEST(InstanceTest, TasksSpanReflectsContents) {
  Instance inst("x");
  inst.add(Task{1.0, 2.0});
  inst.add(Task{3.0, 4.0});
  const auto span = inst.tasks();
  ASSERT_EQ(span.size(), 2u);
  EXPECT_DOUBLE_EQ(span[1].gpu_time, 4.0);
}

}  // namespace
}  // namespace hp
