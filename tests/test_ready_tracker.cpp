#include "dag/ready_tracker.hpp"

#include <gtest/gtest.h>

namespace hp {
namespace {

TEST(ReadyTrackerTest, ChainReleasesOneByOne) {
  TaskGraph g("chain");
  const TaskId a = g.add_task(Task{1.0, 1.0});
  const TaskId b = g.add_task(Task{1.0, 1.0});
  const TaskId c = g.add_task(Task{1.0, 1.0});
  g.add_edge(a, b);
  g.add_edge(b, c);
  g.finalize();

  ReadyTracker tracker(g);
  ASSERT_EQ(tracker.initially_ready().size(), 1u);
  EXPECT_EQ(tracker.initially_ready()[0], a);
  EXPECT_EQ(tracker.remaining(), 3u);

  auto released = tracker.complete(a);
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0], b);
  released = tracker.complete(b);
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0], c);
  released = tracker.complete(c);
  EXPECT_TRUE(released.empty());
  EXPECT_TRUE(tracker.done());
}

TEST(ReadyTrackerTest, DiamondJoinsWaitForBothPredecessors) {
  TaskGraph g("diamond");
  const TaskId a = g.add_task(Task{1.0, 1.0});
  const TaskId b = g.add_task(Task{1.0, 1.0});
  const TaskId c = g.add_task(Task{1.0, 1.0});
  const TaskId d = g.add_task(Task{1.0, 1.0});
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  g.finalize();

  ReadyTracker tracker(g);
  auto released = tracker.complete(a);
  ASSERT_EQ(released.size(), 2u);
  released = tracker.complete(b);
  EXPECT_TRUE(released.empty());  // d still waits for c
  released = tracker.complete(c);
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0], d);
}

TEST(ReadyTrackerTest, AllIndependentInitiallyReady) {
  TaskGraph g("independent");
  for (int i = 0; i < 5; ++i) g.add_task(Task{1.0, 1.0});
  g.finalize();
  ReadyTracker tracker(g);
  EXPECT_EQ(tracker.initially_ready().size(), 5u);
}

TEST(ReadyTrackerTest, RemainingCountsDown) {
  TaskGraph g("two");
  g.add_task(Task{1.0, 1.0});
  g.add_task(Task{1.0, 1.0});
  g.finalize();
  ReadyTracker tracker(g);
  EXPECT_EQ(tracker.remaining(), 2u);
  tracker.complete(0);
  EXPECT_EQ(tracker.remaining(), 1u);
  EXPECT_FALSE(tracker.done());
  tracker.complete(1);
  EXPECT_TRUE(tracker.done());
}

}  // namespace
}  // namespace hp
