// Numerical verification of the paper's structural lemmas (§4, §5.1).

#include <gtest/gtest.h>

#include <vector>

#include "baselines/graham.hpp"
#include "bounds/area_bound.hpp"
#include "bounds/exact_opt.hpp"
#include "core/heteroprio.hpp"
#include "model/generators.hpp"
#include "util/rng.hpp"
#include "worstcase/graham_gadget.hpp"

namespace hp {
namespace {

/// Remaining fractional sub-instance I'(t) of a (no-spoliation) schedule:
/// each task contributes the unprocessed fraction of itself at time t.
std::vector<Task> remaining_instance(const Schedule& schedule,
                                     std::span<const Task> tasks, double t) {
  std::vector<Task> rest;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const Placement& p = schedule.placement(static_cast<TaskId>(i));
    double fraction = 1.0;
    if (p.placed()) {
      if (p.end <= t) {
        fraction = 0.0;
      } else if (p.start < t) {
        fraction = (p.end - t) / (p.end - p.start);
      }
    }
    if (fraction > 1e-15) {
      rest.push_back(Task{tasks[i].cpu_time * fraction,
                          tasks[i].gpu_time * fraction, tasks[i].priority,
                          tasks[i].kind});
    }
  }
  return rest;
}

/// Lemma 3: for t <= T_FirstIdle, t + AreaBound(I'(t)) == AreaBound(I).
///
/// The ">=" direction is airtight (the HeteroPrio prefix followed by the
/// area-bound completion is a feasible LP solution) and we assert it
/// exactly. The "==" direction has a gap in the paper's (v1) proof for
/// discrete executions: at time t a worker can be mid-task on an
/// acceleration factor that straddles the area bound's threshold, in which
/// case AreaBound(I') re-routes the remainder and the combined solution is
/// slightly above AreaBound(I). Measured violations are below ~1.5% on
/// random instances, so we assert equality within 3%. See EXPERIMENTS.md.
TEST(Lemma3, HeteroPrioMatchesAreaBoundWhileAllBusy) {
  util::Rng rng(42);
  for (int rep = 0; rep < 10; ++rep) {
    UniformGenParams params;
    params.num_tasks = 40;
    const Instance inst = uniform_instance(params, rng);
    const Platform platform(3, 2);

    HeteroPrioStats stats;
    const Schedule s = heteroprio(inst.tasks(), platform,
                                  {.enable_spoliation = false}, &stats);
    const double total = area_bound_value(inst.tasks(), platform);
    ASSERT_GT(stats.first_idle_time, 0.0);

    for (double alpha : {0.1, 0.35, 0.6, 0.85, 0.999}) {
      const double t = alpha * stats.first_idle_time;
      const auto rest = remaining_instance(s, inst.tasks(), t);
      const double rest_bound = area_bound_value(rest, platform);
      EXPECT_GE(t + rest_bound, total * (1.0 - 1e-9))
          << "rep " << rep << " alpha " << alpha;
      EXPECT_LE(t + rest_bound, total * 1.03)
          << "rep " << rep << " alpha " << alpha;
    }
  }
}

/// On a single CPU + single GPU there is at most one straddling task per
/// resource class and Lemma 3's equality holds to within floating-point
/// noise on all sampled instants.
TEST(Lemma3, EqualityOnSingleCpuSingleGpu) {
  util::Rng rng(45);
  for (int rep = 0; rep < 10; ++rep) {
    UniformGenParams params;
    params.num_tasks = 16;
    const Instance inst = uniform_instance(params, rng);
    const Platform platform(1, 1);

    HeteroPrioStats stats;
    const Schedule s = heteroprio(inst.tasks(), platform,
                                  {.enable_spoliation = false}, &stats);
    const double total = area_bound_value(inst.tasks(), platform);
    for (double alpha : {0.2, 0.5, 0.8}) {
      const double t = alpha * stats.first_idle_time;
      const auto rest = remaining_instance(s, inst.tasks(), t);
      EXPECT_NEAR(t + area_bound_value(rest, platform), total, 0.01 * total)
          << "rep " << rep << " alpha " << alpha;
    }
  }
}

/// Consequence (i)/(ii) of Lemma 3: T_FirstIdle <= AreaBound <= OPT.
TEST(Lemma3, FirstIdleWithinAreaBound) {
  util::Rng rng(43);
  for (int rep = 0; rep < 15; ++rep) {
    const Instance inst = uniform_instance({.num_tasks = 20}, rng);
    const Platform platform(2, 2);
    HeteroPrioStats stats;
    (void)heteroprio(inst.tasks(), platform, {.enable_spoliation = false},
                     &stats);
    EXPECT_LE(stats.first_idle_time,
              area_bound_value(inst.tasks(), platform) + 1e-9);
  }
}

/// Lemma 4 (corollary on the final schedule): if a resource runs a task that
/// is not faster on the other resource, no task is spoliated from the other
/// resource. Verified behaviorally in test_heteroprio_properties (Lemma 5);
/// here we check the scenario of the lemma directly.
TEST(Lemma4, NoSpoliationFromGpuWhenCpuRunsGpuFasterTask) {
  // CPU runs T with p >= q (the CPU was forced into GPU-type work); then no
  // CPU may steal from the GPUs.
  const std::vector<Task> tasks{
      Task{6.0, 3.0},   // rho 2: ends up on the CPU (only task left for it)
      Task{20.0, 2.0},  // rho 10: GPU
      Task{18.0, 2.0},  // rho 9: GPU
  };
  const Platform platform(1, 1);
  const Schedule s = heteroprio(tasks, platform);
  // No aborted segment may sit on a GPU (= no spoliation from GPU to CPU).
  for (const AbortedSegment& a : s.aborted()) {
    EXPECT_EQ(platform.type_of(a.worker), Resource::kCpu);
  }
}

/// Lemma 6 via Graham: list schedules of the gadget stay within (2 - 1/n) of
/// the packing optimum, and the adversarial order attains it.
TEST(Lemma6, GrahamBoundOnGadget) {
  for (int k : {1, 2, 3}) {
    const GrahamGadget gadget = graham_gadget(k);
    const int n = gadget.machines;
    const double opt = static_cast<double>(n);

    // Any order: here natural order and the adversarial one.
    const ListScheduleResult natural =
        list_schedule_homogeneous(gadget.durations, n);
    EXPECT_LE(natural.makespan, (2.0 - 1.0 / n) * opt + 1e-9);

    const ListScheduleResult worst =
        list_schedule_homogeneous(worst_order_durations(gadget), n);
    EXPECT_LE(worst.makespan, (2.0 - 1.0 / n) * opt + 1e-9);
    EXPECT_DOUBLE_EQ(worst.makespan, 2.0 * n - 1.0);
  }
}

/// Graham bound on random homogeneous instances.
TEST(Lemma6, GrahamBoundRandom) {
  util::Rng rng(44);
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<double> durations;
    for (int i = 0; i < 30; ++i) durations.push_back(rng.uniform(0.1, 5.0));
    const int n = 4;
    const ListScheduleResult res = list_schedule_homogeneous(durations, n);
    double volume = 0.0, longest = 0.0;
    for (double d : durations) {
      volume += d;
      longest = std::max(longest, d);
    }
    const double opt_lb = std::max(volume / n, longest);
    EXPECT_LE(res.makespan, (2.0 - 1.0 / n) * opt_lb + 1e-9);
  }
}

}  // namespace
}  // namespace hp
