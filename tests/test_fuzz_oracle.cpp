// Property oracle: naming round-trips, verdicts on known-good cases, the
// runner's determinism, and applicability gating.

#include <gtest/gtest.h>

#include "fuzz/oracle.hpp"
#include "fuzz/runner.hpp"

namespace hp::fuzz {
namespace {

FuzzCase tiny_case() {
  FuzzCase c;
  c.name = "tiny";
  c.platform = Platform(1, 1);
  TaskGraph g("tiny");
  g.add_task(Task{.cpu_time = 3.0, .gpu_time = 1.0, .priority = 2.0});
  g.add_task(Task{.cpu_time = 2.0, .gpu_time = 2.0, .priority = 1.0});
  g.finalize();
  c.graph = std::move(g);
  return c;
}

TEST(FuzzOracle, SchedulerNamesRoundTrip) {
  for (int i = 0; i < kNumSchedulers; ++i) {
    const auto id = static_cast<SchedulerId>(i);
    SchedulerId back{};
    ASSERT_TRUE(scheduler_from_name(scheduler_name(id), &back));
    EXPECT_EQ(back, id);
  }
  SchedulerId ignored{};
  EXPECT_FALSE(scheduler_from_name("nonsense", &ignored));
}

TEST(FuzzOracle, PropsParseAndPrint) {
  unsigned props = 0;
  std::string error;
  ASSERT_TRUE(parse_props("all", &props, &error));
  EXPECT_EQ(props, kPropAll);
  ASSERT_TRUE(parse_props("validity,ratio", &props, &error));
  EXPECT_EQ(props, kPropValidity | kPropRatio);
  EXPECT_EQ(props_to_string(props), "validity,ratio");
  EXPECT_EQ(props_to_string(kPropAll), "all");
  EXPECT_FALSE(parse_props("validity,bogus", &props, &error));
  EXPECT_NE(error.find("bogus"), std::string::npos);
}

TEST(FuzzOracle, TinyCasePassesEverySchedulerEveryProperty) {
  const FuzzCase c = tiny_case();
  for (int i = 0; i < kNumSchedulers; ++i) {
    const auto sched = static_cast<SchedulerId>(i);
    const OracleVerdict verdict = check_case(c, sched);
    EXPECT_GT(verdict.properties_checked, 0) << scheduler_name(sched);
    EXPECT_GT(verdict.makespan, 0.0) << scheduler_name(sched);
    for (const PropertyFailure& f : verdict.failures) {
      ADD_FAILURE() << scheduler_name(sched) << " " << f.property << ": "
                    << f.detail;
    }
  }
}

TEST(FuzzOracle, GeneratedBatchPassesAllSchedulers) {
  // A miniature in-test fuzz sweep: the tier-1 gate that the oracle keeps
  // accepting correct schedulers (the long sweep lives behind the `fuzz`
  // CTest label and in CI's fuzz-smoke job).
  for (std::uint64_t i = 0; i < 20; ++i) {
    const FuzzCase c = generate_case(1234, i);
    for (int s = 0; s < kNumSchedulers; ++s) {
      const auto sched = static_cast<SchedulerId>(s);
      const OracleVerdict verdict = check_case(c, sched);
      for (const PropertyFailure& f : verdict.failures) {
        ADD_FAILURE() << c.name << " [" << scheduler_name(sched) << "] "
                      << f.property << ": " << f.detail;
      }
    }
  }
}

TEST(FuzzOracle, FaultyCasesCheckFaultAccounting) {
  int faulty_checked = 0;
  for (std::uint64_t i = 0; i < 80 && faulty_checked < 6; ++i) {
    const FuzzCase c = generate_case(77, i);
    if (!c.has_faults()) continue;
    ++faulty_checked;
    for (const SchedulerId sched :
         {SchedulerId::kHp, SchedulerId::kHeft, SchedulerId::kDualHp}) {
      OracleOptions options;
      options.props = kPropValidity | kPropFaultAccount;
      const OracleVerdict verdict = check_case(c, sched, options);
      EXPECT_EQ(verdict.properties_checked, 2)
          << c.name << " " << scheduler_name(sched);
      for (const PropertyFailure& f : verdict.failures) {
        ADD_FAILURE() << c.name << " [" << scheduler_name(sched) << "] "
                      << f.property << ": " << f.detail;
      }
    }
  }
  EXPECT_GE(faulty_checked, 3);
}

TEST(FuzzOracle, RatioPropertyGatesOnHpFaultFreeIndependent) {
  FuzzCase c = tiny_case();
  OracleOptions options;
  options.props = kPropRatio;
  EXPECT_EQ(check_case(c, SchedulerId::kHp, options).properties_checked, 1);
  // Not proven for the other schedulers: the property must not even count
  // as checked.
  EXPECT_EQ(check_case(c, SchedulerId::kHeft, options).properties_checked, 0);
  c.faults.add_crash(0, 1.0);
  EXPECT_EQ(check_case(c, SchedulerId::kHp, options).properties_checked, 0);
}

TEST(FuzzRunner, SameSeedSameReportBytes) {
  RunnerOptions options;
  options.seed = 5;
  options.runs = 15;
  const FuzzReport a = run_fuzz(options);
  const FuzzReport b = run_fuzz(options);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(format_report(a, options), format_report(b, options));
  EXPECT_TRUE(a.ok());
  EXPECT_EQ(a.cases_run, 15);
  EXPECT_GT(a.properties_checked, 0);
}

TEST(FuzzRunner, DifferentSeedsChangeTheChecksum) {
  RunnerOptions options;
  options.runs = 10;
  options.seed = 5;
  const FuzzReport a = run_fuzz(options);
  options.seed = 6;
  const FuzzReport b = run_fuzz(options);
  EXPECT_NE(a.checksum, b.checksum);
}

}  // namespace
}  // namespace hp::fuzz
