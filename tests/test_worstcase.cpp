#include "worstcase/instances.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "bounds/area_bound.hpp"
#include "bounds/exact_opt.hpp"
#include "core/heteroprio.hpp"
#include "sched/validate.hpp"

namespace hp {
namespace {

TEST(Theorem8, HeteroPrioReachesPhi) {
  const WorstCaseInstance wc = theorem8_instance();
  const Schedule s = heteroprio(wc.instance.tasks(), wc.platform);
  const auto check = check_schedule(s, wc.instance.tasks(), wc.platform);
  ASSERT_TRUE(check.ok) << check.message;
  EXPECT_NEAR(s.makespan(), wc.expected_hp_makespan, 1e-9);
  EXPECT_NEAR(s.makespan() / wc.optimal_makespan, kPhi, 1e-9);
}

TEST(Theorem8, ConstructedOptimumIsExact) {
  const WorstCaseInstance wc = theorem8_instance();
  EXPECT_NEAR(exact_optimal_makespan(wc.instance.tasks(), wc.platform),
              wc.optimal_makespan, 1e-12);
}

TEST(Theorem8, RatioStaysWithinTheorem7Bound) {
  const WorstCaseInstance wc = theorem8_instance();
  const Schedule s = heteroprio(wc.instance.tasks(), wc.platform);
  EXPECT_LE(s.makespan(), kPhi * wc.optimal_makespan + 1e-9);
}

class Theorem11 : public ::testing::TestWithParam<int> {};

TEST_P(Theorem11, HeteroPrioMatchesAdversarialTrace) {
  const int m = GetParam();
  const WorstCaseInstance wc = theorem11_instance(m, /*chunks=*/40);
  const Schedule s = heteroprio(wc.instance.tasks(), wc.platform);
  const auto check = check_schedule(s, wc.instance.tasks(), wc.platform);
  ASSERT_TRUE(check.ok) << check.message;
  EXPECT_NEAR(s.makespan(), wc.expected_hp_makespan, 1e-6);
  // Ratio approaches 1 + phi from below as m grows.
  const double ratio = s.makespan() / wc.optimal_makespan;
  EXPECT_LE(ratio, 1.0 + kPhi + 1e-9);
  const double x = (m - 1.0) / (m + kPhi);
  EXPECT_NEAR(ratio, x + kPhi, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(PlatformSizes, Theorem11,
                         ::testing::Values(2, 4, 10, 30));

TEST(Theorem11Bound, RatioApproachesOnePlusPhi) {
  const WorstCaseInstance wc = theorem11_instance(200, 20);
  const Schedule s = heteroprio(wc.instance.tasks(), wc.platform);
  EXPECT_GT(s.makespan() / wc.optimal_makespan, 1.0 + kPhi - 0.02);
}

TEST(Theorem11Bound, AreaBoundConfirmsOptimalAtMostOne) {
  const WorstCaseInstance wc = theorem11_instance(10, 40);
  EXPECT_LE(opt_lower_bound(wc.instance.tasks(), wc.platform),
            wc.optimal_makespan + 1e-9);
}

class Theorem14 : public ::testing::TestWithParam<int> {};

TEST_P(Theorem14, HeteroPrioMatchesAdversarialTrace) {
  const int k = GetParam();
  const WorstCaseInstance wc = theorem14_instance(k);
  const Schedule s = heteroprio(wc.instance.tasks(), wc.platform);
  const auto check = check_schedule(s, wc.instance.tasks(), wc.platform);
  ASSERT_TRUE(check.ok) << check.message;
  EXPECT_NEAR(s.makespan(), wc.expected_hp_makespan, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Theorem14, ::testing::Values(1, 2, 3));

TEST(Theorem14Properties, RSolvesDefiningEquation) {
  for (int n : {6, 12, 48, 600}) {
    const double r = theorem14_r(n);
    EXPECT_NEAR(n / r + 2.0 * n - 1.0, n * r / 3.0, 1e-9 * n);
  }
  // r tends to 3 + 2*sqrt(3).
  EXPECT_NEAR(theorem14_r(60000), 3.0 + 2.0 * std::sqrt(3.0), 1e-3);
}

TEST(Theorem14Properties, RatioGrowsTowardsLimit) {
  const WorstCaseInstance k1 = theorem14_instance(1);
  const WorstCaseInstance k3 = theorem14_instance(3);
  const double ratio1 = k1.expected_hp_makespan / k1.optimal_makespan;
  const double ratio3 = k3.expected_hp_makespan / k3.optimal_makespan;
  EXPECT_GT(ratio3, ratio1);
  EXPECT_LT(ratio3, 2.0 + 2.0 / std::sqrt(3.0));
  EXPECT_GT(ratio3, 2.5);
}

TEST(Theorem14Properties, RatioExceedsTwoPlusSqrtTwoMinusEpsilonEventually) {
  // The family's limit 2 + 2/sqrt(3) ~ 3.155 is below the proven upper
  // bound 2 + sqrt(2) ~ 3.414: every instance's ratio must respect Thm 12.
  for (int k : {1, 2, 3}) {
    const WorstCaseInstance wc = theorem14_instance(k);
    EXPECT_LE(wc.expected_hp_makespan / wc.optimal_makespan,
              2.0 + std::sqrt(2.0));
  }
}

TEST(WorstCaseInstances, SpoliationOccursInTheorem14) {
  const WorstCaseInstance wc = theorem14_instance(1);
  HeteroPrioStats stats;
  (void)heteroprio(wc.instance.tasks(), wc.platform, {}, &stats);
  // All T2 tasks except the length-n one get spoliated: 2n of them.
  EXPECT_EQ(stats.spoliations, 2 * 6);
}

TEST(WorstCaseInstances, NamesCarryParameters) {
  EXPECT_EQ(theorem8_instance().instance.name(), "thm8");
  EXPECT_EQ(theorem11_instance(4, 2).instance.name(), "thm11-m4");
  EXPECT_EQ(theorem14_instance(2).instance.name(), "thm14-k2");
}

}  // namespace
}  // namespace hp
