#include "multi/heteroprio_k.hpp"

#include <gtest/gtest.h>

#include "core/heteroprio.hpp"
#include "model/generators.hpp"
#include "util/rng.hpp"

namespace hp::multi {
namespace {

TaskK make_task_k(std::initializer_list<double> times, double priority = 0.0) {
  TaskK t;
  t.time = times;
  t.priority = priority;
  return t;
}

TEST(PlatformKTest, WorkerMapping) {
  const PlatformK platform({2, 3, 1});
  EXPECT_EQ(platform.types(), 3);
  EXPECT_EQ(platform.workers(), 6);
  EXPECT_EQ(platform.first(0), 0);
  EXPECT_EQ(platform.first(1), 2);
  EXPECT_EQ(platform.first(2), 5);
  EXPECT_EQ(platform.type_of(0), 0);
  EXPECT_EQ(platform.type_of(2), 1);
  EXPECT_EQ(platform.type_of(4), 1);
  EXPECT_EQ(platform.type_of(5), 2);
}

TEST(AffinityTest, ReducesToAccelerationFactorForTwoTypes) {
  // time = {p (CPU), q (GPU)}: affinity for GPU = p/q = rho, for CPU = q/p.
  const TaskK t = make_task_k({8.0, 2.0});
  EXPECT_DOUBLE_EQ(affinity(t, 1), 4.0);
  EXPECT_DOUBLE_EQ(affinity(t, 0), 0.25);
}

TEST(HeteroPrioK, MatchesTwoTypeEngineExactly) {
  // With types [CPU, GPU], heteroprio_k must reproduce the core engine's
  // schedules task for task.
  util::Rng rng(606);
  for (int rep = 0; rep < 25; ++rep) {
    const int cpus = 1 + static_cast<int>(rng.bounded(4));
    const int gpus = 1 + static_cast<int>(rng.bounded(3));
    UniformGenParams params;
    params.num_tasks = 4 + rng.bounded(20);
    const Instance inst = uniform_instance(params, rng);

    std::vector<TaskK> tasks_k;
    for (const Task& t : inst.tasks()) {
      tasks_k.push_back(make_task_k({t.cpu_time, t.gpu_time}, t.priority));
    }

    const Schedule two = heteroprio(inst.tasks(), Platform(cpus, gpus));
    const Schedule k = heteroprio_k(tasks_k, PlatformK({cpus, gpus}));
    ASSERT_EQ(two.aborted().size(), k.aborted().size()) << "rep " << rep;
    for (std::size_t i = 0; i < inst.size(); ++i) {
      const auto id = static_cast<TaskId>(i);
      EXPECT_EQ(two.placement(id).worker, k.placement(id).worker)
          << "rep " << rep << " task " << i;
      EXPECT_DOUBLE_EQ(two.placement(id).start, k.placement(id).start)
          << "rep " << rep << " task " << i;
    }
  }
}

TEST(HeteroPrioK, ThreeTypesAffinitySplit) {
  // Three tasks, each clearly best on a different type.
  const std::vector<TaskK> tasks{
      make_task_k({1.0, 10.0, 10.0}),
      make_task_k({10.0, 1.0, 10.0}),
      make_task_k({10.0, 10.0, 1.0}),
  };
  const PlatformK platform({1, 1, 1});
  const Schedule s = heteroprio_k(tasks, platform);
  EXPECT_EQ(platform.type_of(s.placement(0).worker), 0);
  EXPECT_EQ(platform.type_of(s.placement(1).worker), 1);
  EXPECT_EQ(platform.type_of(s.placement(2).worker), 2);
  EXPECT_DOUBLE_EQ(s.makespan(), 1.0);
}

TEST(HeteroPrioK, SpoliationAcrossThreeTypes) {
  // Four tasks on three single-worker types: the leftover task B is grabbed
  // by the first free worker (type 2, where it takes 9), then the type-0
  // worker — B's fast type — frees at the same instant and spoliates it
  // (1 + 2 < 10).
  const std::vector<TaskK> tasks{
      make_task_k({1.0, 9.0, 9.0}),  // A: type 0
      make_task_k({2.0, 9.0, 9.0}),  // B: leftover, fast only on type 0
      make_task_k({9.0, 1.0, 9.0}),  // C: type 1
      make_task_k({9.0, 9.0, 1.0}),  // D: type 2
  };
  const PlatformK platform({1, 1, 1});
  HeteroPrioKStats stats;
  const Schedule s = heteroprio_k(tasks, platform, {}, &stats);
  EXPECT_EQ(stats.spoliations, 1);
  EXPECT_EQ(platform.type_of(s.placement(1).worker), 0);
  EXPECT_DOUBLE_EQ(s.makespan(), 3.0);
}

TEST(HeteroPrioK, WithinBoundOfExactOnRandomThreeTypeInstances) {
  util::Rng rng(607);
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<TaskK> tasks;
    const std::size_t count = 4 + rng.bounded(5);
    for (std::size_t i = 0; i < count; ++i) {
      TaskK t;
      for (int r = 0; r < 3; ++r) {
        t.time.push_back(rng.lognormal(1.0, 1.0));
      }
      tasks.push_back(t);
    }
    const PlatformK platform({2, 1, 1});
    const double hp_ms = heteroprio_k(tasks, platform).makespan();
    const double opt = exact_optimal_k(tasks, platform);
    EXPECT_GE(hp_ms, opt * (1.0 - 1e-9)) << "rep " << rep;
    // No proven ratio for k = 3; empirically it stays well below 2+sqrt(2).
    EXPECT_LE(hp_ms, 3.5 * opt) << "rep " << rep;
  }
}

TEST(LowerBoundK, SandwichedByExactOptimum) {
  util::Rng rng(608);
  for (int rep = 0; rep < 15; ++rep) {
    std::vector<TaskK> tasks;
    for (int i = 0; i < 7; ++i) {
      TaskK t;
      for (int r = 0; r < 3; ++r) t.time.push_back(rng.uniform(0.5, 8.0));
      tasks.push_back(t);
    }
    const PlatformK platform({1, 2, 1});
    const double lb = lower_bound_k(tasks, platform);
    const double opt = exact_optimal_k(tasks, platform);
    EXPECT_LE(lb, opt * (1.0 + 1e-9)) << "rep " << rep;
    EXPECT_GT(lb, 0.0);
  }
}

TEST(LowerBoundK, MatchesAreaBoundIntuitionForTwoTypes) {
  // Thm 8 instance: the dual bound reaches the area bound value 1.
  const std::vector<TaskK> tasks{
      make_task_k({1.6180339887, 1.0}),
      make_task_k({1.0, 1.0 / 1.6180339887}),
  };
  const double lb = lower_bound_k(tasks, PlatformK({1, 1}));
  EXPECT_NEAR(lb, 1.0, 0.01);
}

TEST(EftK, ValidAndReasonable) {
  util::Rng rng(609);
  std::vector<TaskK> tasks;
  for (int i = 0; i < 30; ++i) {
    TaskK t;
    for (int r = 0; r < 3; ++r) t.time.push_back(rng.uniform(0.5, 6.0));
    tasks.push_back(t);
  }
  const PlatformK platform({2, 2, 2});
  const Schedule s = eft_k(tasks, platform);
  EXPECT_TRUE(s.complete());
  EXPECT_GE(s.makespan(), lower_bound_k(tasks, platform) * (1.0 - 1e-9));
}

TEST(HeteroPrioK, NoSpoliationWhenDisabled) {
  const std::vector<TaskK> tasks{
      make_task_k({1.0, 50.0, 2.0}),
      make_task_k({30.0, 50.0, 4.0}),
      make_task_k({50.0, 1.0, 50.0}),
  };
  HeteroPrioKStats stats;
  (void)heteroprio_k(tasks, PlatformK({1, 1, 1}),
                     {.enable_spoliation = false}, &stats);
  EXPECT_EQ(stats.spoliations, 0);
}

}  // namespace
}  // namespace hp::multi
