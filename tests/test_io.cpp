#include "io/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "linalg/cholesky.hpp"

namespace hp::io {
namespace {

TEST(IoInstance, RoundTrip) {
  Instance inst("round-trip");
  inst.add(Task{1.5, 0.25, 2.0, KernelKind::kGemm});
  inst.add(Task{3.0, 3.0});
  const std::string text = instance_to_text(inst);
  std::string error;
  const auto parsed = instance_from_text(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ(parsed->name(), "round-trip");
  EXPECT_DOUBLE_EQ((*parsed)[0].cpu_time, 1.5);
  EXPECT_DOUBLE_EQ((*parsed)[0].gpu_time, 0.25);
  EXPECT_DOUBLE_EQ((*parsed)[0].priority, 2.0);
  EXPECT_EQ((*parsed)[0].kind, KernelKind::kGemm);
  EXPECT_EQ((*parsed)[1].kind, KernelKind::kGeneric);
}

TEST(IoInstance, RejectsNonPositiveTimes) {
  std::string error;
  EXPECT_FALSE(instance_from_text("task 0 1\n", &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_FALSE(instance_from_text("task 1 -2\n", &error).has_value());
}

TEST(IoInstance, RejectsEdges) {
  EXPECT_FALSE(instance_from_text("task 1 1\ntask 1 1\nedge 0 1\n").has_value());
}

TEST(IoInstance, RejectsUnknownKeyword) {
  std::string error;
  EXPECT_FALSE(instance_from_text("bogus 1 2\n", &error).has_value());
  EXPECT_NE(error.find("bogus"), std::string::npos);
}

TEST(IoInstance, CommentsAndBlankLinesIgnored) {
  const auto parsed =
      instance_from_text("# header\n\ntask 1 2\n# trailing\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 1u);
}

TEST(IoGraph, RoundTripCholesky) {
  const TaskGraph original = cholesky_dag(5);
  const std::string text = graph_to_text(original);
  std::string error;
  const auto parsed = graph_from_text(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->size(), original.size());
  EXPECT_EQ(parsed->num_edges(), original.num_edges());
  EXPECT_EQ(parsed->name(), original.name());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const auto id = static_cast<TaskId>(i);
    EXPECT_DOUBLE_EQ(parsed->task(id).cpu_time, original.task(id).cpu_time);
    EXPECT_EQ(parsed->task(id).kind, original.task(id).kind);
    const auto a = original.successors(id);
    const auto b = parsed->successors(id);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t s = 0; s < a.size(); ++s) EXPECT_EQ(a[s], b[s]);
  }
}

TEST(IoGraph, RejectsBadEdges) {
  EXPECT_FALSE(graph_from_text("task 1 1\nedge 0 5\n").has_value());
  EXPECT_FALSE(graph_from_text("task 1 1\nedge 0 0\n").has_value());
  EXPECT_FALSE(graph_from_text("task 1 1\nedge -1 0\n").has_value());
}

TEST(IoGraph, RejectsCycle) {
  std::string error;
  EXPECT_FALSE(
      graph_from_text("task 1 1\ntask 1 1\nedge 0 1\nedge 1 0\n", &error)
          .has_value());
  EXPECT_NE(error.find("cycle"), std::string::npos);
}

TEST(IoGraph, ParsedGraphIsFinalized) {
  const auto parsed = graph_from_text("task 1 1\ntask 1 1\nedge 0 1\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->finalized());
  EXPECT_EQ(parsed->successors(0).size(), 1u);
}

// Strict diagnostics: every parse error names the offending line and field,
// so a fuzz repro that fails to load tells you exactly where.

TEST(IoDiagnostics, BadTaskFieldNamesTheFieldAndLine) {
  std::string error;
  EXPECT_FALSE(instance_from_text("task 1 1\ntask abc 2\n", &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("cpu_time"), std::string::npos) << error;
  EXPECT_NE(error.find("abc"), std::string::npos) << error;

  EXPECT_FALSE(instance_from_text("task 1 nan\n", &error));
  EXPECT_NE(error.find("gpu_time"), std::string::npos) << error;
}

TEST(IoDiagnostics, MissingTaskFieldsAreCounted) {
  std::string error;
  EXPECT_FALSE(instance_from_text("task 1\n", &error));
  EXPECT_NE(error.find("at least 2 fields"), std::string::npos) << error;
  EXPECT_NE(error.find("got 1"), std::string::npos) << error;
}

TEST(IoDiagnostics, UnknownKernelIsAnErrorNotGeneric) {
  std::string error;
  EXPECT_FALSE(instance_from_text("task 1 1 2 warp\n", &error));
  EXPECT_NE(error.find("kernel"), std::string::npos) << error;
  EXPECT_NE(error.find("warp"), std::string::npos) << error;
}

TEST(IoDiagnostics, TrailingTokensAreRejected) {
  std::string error;
  EXPECT_FALSE(instance_from_text("task 1 1 2 gemm extra\n", &error));
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;
}

TEST(IoDiagnostics, NamelessNameLineIsRejected) {
  std::string error;
  EXPECT_FALSE(instance_from_text("name   \ntask 1 1\n", &error));
  EXPECT_NE(error.find("name"), std::string::npos) << error;
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
}

TEST(IoDiagnostics, EdgeDiagnosticsNameTheProblem) {
  std::string error;
  EXPECT_FALSE(graph_from_text("task 1 1\ntask 1 1\nedge 0\n", &error));
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
  EXPECT_NE(error.find("exactly 2 fields"), std::string::npos) << error;

  EXPECT_FALSE(graph_from_text("task 1 1\nedge 0 1.5\n", &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST(IoFiles, SaveAndLoad) {
  const std::string path = ::testing::TempDir() + "hp_io_test.txt";
  EXPECT_TRUE(save_text_file(path, "hello\n"));
  const auto loaded = load_text_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, "hello\n");
  std::remove(path.c_str());
}

TEST(IoFiles, LoadMissingFileFails) {
  EXPECT_FALSE(load_text_file("/nonexistent-dir-xyz/nope.txt").has_value());
}

}  // namespace
}  // namespace hp::io
