// Degraded-mode state machine and admission control: watermark hysteresis,
// shed/defer accounting against the obs:: event stream, deadline-miss
// bookkeeping, and byte-identical observability output under the TickClock.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "obs/counters.hpp"
#include "obs/export_chrome.hpp"
#include "obs/profile.hpp"
#include "obs/recorder.hpp"
#include "online/runtime.hpp"
#include "sched/validate.hpp"

namespace hp {
namespace {

constexpr ScheduleCheckOptions kOnlineRun{
    .tol = 1e-9, .require_complete = false, .exact_durations = false};

/// One slow CPU; 20 equal tasks trickling in fast. The worker takes 10 time
/// units per task, so the ready backlog climbs past any small watermark
/// while the first task runs.
struct SaturationFixture {
  std::vector<Task> tasks;
  Platform platform{1, 0};
  online::ArrivalPlan plan;

  SaturationFixture() {
    for (int i = 0; i < 20; ++i) {
      tasks.push_back(Task{10.0, 10.0});
      plan.set(static_cast<TaskId>(i), 0.01 * (i + 1));
    }
  }
};

TEST(OnlineDegraded, RejectPolicyShedsWithHysteresis) {
  SaturationFixture fx;
  obs::EventRecorder recorder;
  online::OnlineOptions options;
  options.arrivals = &fx.plan;
  options.watermark_high = 4;
  options.watermark_low = 2;
  options.shed_policy = online::ShedPolicy::kReject;
  options.sink = &recorder;
  online::OnlineStats stats;
  const Schedule s = online::online_run(fx.tasks, fx.platform, options, &stats);

  const auto check = check_schedule(s, fx.tasks, fx.platform, kOnlineRun);
  ASSERT_TRUE(check.ok) << check.message;

  // Arrivals 1..4 start or queue up; once the backlog holds 4 the runtime
  // sheds every later arrival. First task dispatched immediately, 4 queued,
  // 15 rejected.
  EXPECT_EQ(stats.tasks_arrived, 20u);
  EXPECT_EQ(stats.tasks_admitted, 5u);
  EXPECT_EQ(stats.tasks_rejected, 15u);
  EXPECT_EQ(stats.tasks_deferred, 0u);

  // Zero silent drops: every task is accounted exactly once.
  std::size_t placed = 0;
  for (const Placement& p : s.placements()) placed += p.placed() ? 1 : 0;
  EXPECT_EQ(placed + stats.tasks_rejected +
                static_cast<std::size_t>(stats.recovery.tasks_unfinished),
            fx.tasks.size());
  EXPECT_EQ(stats.recovery.tasks_unfinished, 0);

  // Mode walk: healthy -> degraded -> shedding when the backlog reaches 4,
  // back to degraded when it drains to 2, never healthy again.
  EXPECT_EQ(stats.final_mode, online::Mode::kDegraded);
  EXPECT_EQ(stats.mode_changes, 3u);
#ifndef HP_OBS_OFF  // probes compile to nothing without obs
  const auto& events = recorder.events();
  std::vector<int> modes;
  for (const obs::Event& e : events) {
    if (e.kind == obs::EventKind::kModeChange) {
      modes.push_back(static_cast<int>(e.value));
    }
  }
  ASSERT_EQ(modes.size(), 3u);
  EXPECT_EQ(modes[0], static_cast<int>(online::Mode::kDegraded));
  EXPECT_EQ(modes[1], static_cast<int>(online::Mode::kShedding));
  EXPECT_EQ(modes[2], static_cast<int>(online::Mode::kDegraded));

  // Rejected tasks never appear in the schedule or the start events.
  EXPECT_EQ(recorder.count(obs::EventKind::kTaskShed), 15u);
  EXPECT_EQ(recorder.count(obs::EventKind::kStart), 5u);
#endif  // HP_OBS_OFF
}

TEST(OnlineDegraded, DeferPolicyParksAndReAdmitsEverything) {
  SaturationFixture fx;
  obs::EventRecorder recorder;
  online::OnlineOptions options;
  options.arrivals = &fx.plan;
  options.watermark_high = 4;
  options.watermark_low = 2;
  options.shed_policy = online::ShedPolicy::kDefer;
  options.sink = &recorder;
  online::OnlineStats stats;
  const Schedule s = online::online_run(fx.tasks, fx.platform, options, &stats);

  // Deferred tasks are parked, re-admitted in FIFO order once the backlog
  // drains to the low watermark, and all complete.
  EXPECT_TRUE(s.complete());
  EXPECT_EQ(stats.tasks_arrived, 20u);
  EXPECT_EQ(stats.tasks_deferred, 15u);
  EXPECT_EQ(stats.tasks_rejected, 0u);
  EXPECT_EQ(stats.tasks_admitted, 20u);  // includes the re-admissions
#ifndef HP_OBS_OFF
  EXPECT_EQ(recorder.count(obs::EventKind::kTaskDeferred), 15u);
  EXPECT_EQ(recorder.count(obs::EventKind::kStart), 20u);
#endif  // HP_OBS_OFF

  // Re-admission refills the queue to the high watermark while deferred
  // tasks remain, so the mode ping-pongs shedding <-> degraded; it must end
  // degraded with the backlog drained.
  EXPECT_EQ(stats.final_mode, online::Mode::kDegraded);
  EXPECT_GE(stats.mode_changes, 4u);

#ifndef HP_OBS_OFF
  // FIFO: parked tasks re-enter the ready structure in arrival (= id) order,
  // visible as the order of their kReady events in the stream.
  TaskId last_readmitted = -1;
  for (const obs::Event& e : recorder.events()) {
    if (e.kind == obs::EventKind::kReady && e.task >= 5) {
      EXPECT_GT(e.task, last_readmitted);
      last_readmitted = e.task;
    }
  }
  EXPECT_EQ(last_readmitted, 19);
#endif  // HP_OBS_OFF
}

// Counter aggregation reads the recorded stream, so -DHP_OBS_OFF (which
// compiles the probes to nothing) removes the subject under test.
#ifndef HP_OBS_OFF
TEST(OnlineDegraded, CountersMatchTheEventStream) {
  SaturationFixture fx;
  fx.plan.set(5, fx.plan.arrival(5), /*rel_deadline=*/0.5);  // a sure miss
  obs::EventRecorder recorder;
  online::OnlineOptions options;
  options.arrivals = &fx.plan;
  options.watermark_high = 4;
  options.shed_policy = online::ShedPolicy::kReject;
  options.reschedule_period = 7.0;
  options.sink = &recorder;
  online::OnlineStats stats;
  (void)online::online_run(fx.tasks, fx.platform, options, &stats);

  const obs::SchedulerCounters counters =
      obs::counters_from_events(recorder.events(), fx.platform);
  EXPECT_EQ(counters.tasks_arrived,
            static_cast<long long>(stats.tasks_arrived));
  EXPECT_EQ(counters.tasks_shed,
            static_cast<long long>(stats.tasks_rejected));
  EXPECT_EQ(counters.tasks_deferred,
            static_cast<long long>(stats.tasks_deferred));
  EXPECT_EQ(counters.deadline_misses,
            static_cast<long long>(stats.deadline_misses));
  EXPECT_EQ(counters.replans, static_cast<long long>(stats.replans));
  EXPECT_EQ(counters.reschedule_ticks,
            static_cast<long long>(stats.reschedule_ticks));
  EXPECT_EQ(counters.mode_changes,
            static_cast<long long>(stats.mode_changes));
  EXPECT_GE(stats.deadline_misses, 1u);

  const obs::CounterRegistry registry = obs::registry_from(counters);
  EXPECT_TRUE(registry.contains("tasks_arrived"));
  EXPECT_TRUE(registry.contains("tasks_shed"));
  EXPECT_TRUE(registry.contains("deadline_misses"));
  EXPECT_TRUE(registry.contains("mode_changes"));
}
#endif  // HP_OBS_OFF

TEST(OnlineDegraded, DeadlineMissesCountShedAndRunningTasks) {
  // Two tasks on one CPU, both arriving at t=0.01 with deadlines shorter
  // than one execution: the running task misses (still in flight at its
  // deadline) and the queued task misses too.
  std::vector<Task> tasks{Task{10.0, 10.0}, Task{10.0, 10.0}};
  const Platform platform(1, 0);
  online::ArrivalPlan plan;
  plan.set(0, 0.01, /*rel_deadline=*/1.0);
  plan.set(1, 0.01, /*rel_deadline=*/1.0);

  obs::EventRecorder recorder;
  online::OnlineOptions options;
  options.arrivals = &plan;
  options.sink = &recorder;
  online::OnlineStats stats;
  const Schedule s = online::online_run(tasks, platform, options, &stats);

  EXPECT_TRUE(s.complete());  // misses never cancel work
  EXPECT_EQ(stats.deadline_misses, 2u);
#ifndef HP_OBS_OFF
  EXPECT_EQ(recorder.count(obs::EventKind::kDeadlineMiss), 2u);
#endif  // HP_OBS_OFF
  EXPECT_EQ(stats.final_mode, online::Mode::kDegraded);
}

TEST(OnlineDegraded, RejectedTasksStillMissTheirDeadlines) {
  // A shed task never runs; its deadline fires after the run's last
  // placement and must still be counted (no silent drop extends to the
  // bookkeeping).
  SaturationFixture fx;
  for (int i = 0; i < 20; ++i) {
    fx.plan.set(static_cast<TaskId>(i), fx.plan.arrival(i),
                /*rel_deadline=*/400.0);  // generous: only shed tasks miss
  }
  online::OnlineOptions options;
  options.arrivals = &fx.plan;
  options.watermark_high = 4;
  options.shed_policy = online::ShedPolicy::kReject;
  online::OnlineStats stats;
  (void)online::online_run(fx.tasks, fx.platform, options, &stats);

  EXPECT_EQ(stats.tasks_rejected, 15u);
  EXPECT_EQ(stats.deadline_misses, 15u);  // exactly the shed tasks
}

TEST(OnlineDegraded, WatermarkLowDefaultsToHalfOfHigh) {
  SaturationFixture fx;
  obs::EventRecorder with_default, with_explicit;
  online::OnlineOptions options;
  options.arrivals = &fx.plan;
  options.watermark_high = 4;
  options.shed_policy = online::ShedPolicy::kDefer;
  options.sink = &with_default;
  const Schedule a = online::online_run(fx.tasks, fx.platform, options);
  options.watermark_low = 2;
  options.sink = &with_explicit;
  const Schedule b = online::online_run(fx.tasks, fx.platform, options);

  ASSERT_EQ(with_default.size(), with_explicit.size());
  for (std::size_t i = 0; i < with_default.size(); ++i) {
    EXPECT_EQ(with_default.events()[i], with_explicit.events()[i]) << i;
  }
  for (std::size_t i = 0; i < a.num_tasks(); ++i) {
    EXPECT_EQ(a.placements()[i].start, b.placements()[i].start) << i;
  }
}

TEST(OnlineDegraded, TickClockRunsAreByteIdentical) {
  // Full observability attached (events + self-profiling under the tick
  // clock): two runs must produce byte-identical Chrome traces and counter
  // registries — the determinism contract the docs promise for recorded
  // online runs.
  SaturationFixture fx;
  const auto run_once = [&](std::string* chrome, std::string* registry) {
    obs::EventRecorder recorder;
    obs::TickClock clock;
    obs::MetricsCollector collector(&clock);
    online::OnlineOptions options;
    options.arrivals = &fx.plan;
    options.watermark_high = 4;
    options.shed_policy = online::ShedPolicy::kDefer;
    options.reschedule_period = 5.0;
    options.sink = &recorder;
    options.metrics = &collector;
    (void)online::online_run(fx.tasks, fx.platform, options);
    *chrome = obs::chrome_trace_from_events(recorder.events(), fx.platform,
                                            fx.tasks);
    *registry =
        obs::registry_from(
            obs::counters_from_events(recorder.events(), fx.platform))
            .to_string();
  };
  std::string chrome_a, chrome_b, registry_a, registry_b;
  run_once(&chrome_a, &registry_a);
  run_once(&chrome_b, &registry_b);
  EXPECT_EQ(chrome_a, chrome_b);
  EXPECT_EQ(registry_a, registry_b);

  std::string error;
  EXPECT_TRUE(obs::validate_chrome_trace(chrome_a, fx.platform, &error))
      << error;
}

}  // namespace
}  // namespace hp
