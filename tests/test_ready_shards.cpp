// Tests for par/ready_shards: the sharded double-ended ready structure of
// the parallel engine. Contracts under test: GPU claims pop shard fronts
// and CPU claims pop backs (the §2.2 two-ended discipline), stealing walks
// the ring from the home shard and pops the same end, every published id is
// claimed exactly once, drained blocks retire into the epoch and their
// storage is recycled across publish cycles (the allocation count stays
// flat), and the concurrent hammer stays linearizable (TSan workload).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "par/ready_shards.hpp"

namespace hp::par {
namespace {

std::vector<std::uint32_t> iota_ids(std::uint32_t lo, std::uint32_t n) {
  std::vector<std::uint32_t> ids(n);
  std::iota(ids.begin(), ids.end(), lo);
  return ids;
}

TEST(ReadyShards, GpuClaimsPopTheFrontCpuClaimsPopTheBack) {
  ReadyShards rs(1, 4);  // tiny blocks: the scan crosses block boundaries
  rs.begin_publish(1);
  rs.publish(0, iota_ids(0, 10));
  ClaimCounters counters;
  std::uint32_t id = 0;

  ASSERT_TRUE(rs.claim(0, 0, /*gpu_end=*/true, id, counters));
  EXPECT_EQ(id, 0u);
  ASSERT_TRUE(rs.claim(0, 0, true, id, counters));
  EXPECT_EQ(id, 1u);
  ASSERT_TRUE(rs.claim(0, 0, /*gpu_end=*/false, id, counters));
  EXPECT_EQ(id, 9u);
  ASSERT_TRUE(rs.claim(0, 0, false, id, counters));
  EXPECT_EQ(id, 8u);
  EXPECT_EQ(counters.claims, 4u);
  EXPECT_EQ(counters.steals, 0u);
}

TEST(ReadyShards, TwoEndsMeetInTheMiddleWithoutLossOrDuplication) {
  ReadyShards rs(1, 3);
  rs.begin_publish(1);
  rs.publish(0, iota_ids(0, 11));
  ClaimCounters counters;
  std::vector<std::uint32_t> got;
  std::uint32_t id = 0;
  for (bool front = true; rs.claim(0, 0, front, id, counters);
       front = !front) {
    got.push_back(id);
  }
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, iota_ids(0, 11));
  EXPECT_FALSE(rs.claim(0, 0, true, id, counters));
  EXPECT_FALSE(rs.claim(0, 0, false, id, counters));
}

TEST(ReadyShards, StealingWalksTheRingFromHome) {
  ReadyShards rs(1, 8);
  rs.begin_publish(3);
  rs.publish(0, {});             // home shard empty
  rs.publish(1, iota_ids(10, 2));
  rs.publish(2, iota_ids(20, 2));
  ClaimCounters counters;
  std::uint32_t id = 0;

  // Home is 0: the ring visits 1 first.
  ASSERT_TRUE(rs.claim(0, 0, true, id, counters));
  EXPECT_EQ(id, 10u);
  EXPECT_EQ(counters.claims, 0u);
  EXPECT_EQ(counters.steals, 1u);

  // Home is 2: its own ids come first, no steal counted.
  ASSERT_TRUE(rs.claim(0, 2, true, id, counters));
  EXPECT_EQ(id, 20u);
  EXPECT_EQ(counters.claims, 1u);

  // CPU steals pop the back of the victim, preserving the discipline.
  ASSERT_TRUE(rs.claim(0, 0, false, id, counters));
  EXPECT_EQ(id, 11u);
  EXPECT_EQ(counters.steals, 2u);

  ASSERT_TRUE(rs.claim(0, 0, true, id, counters));
  EXPECT_EQ(id, 21u);
  EXPECT_FALSE(rs.claim(0, 0, true, id, counters));
  EXPECT_GT(counters.steal_failures, 0u);
}

TEST(ReadyShards, DrainedBlocksRetireAndStorageRecyclesAcrossCycles) {
  ReadyShards rs(1, 4);  // 16 ids -> 4 blocks per cycle
  for (int cycle = 0; cycle < 5; ++cycle) {
    rs.begin_publish(1);
    rs.publish(0, iota_ids(0, 16));
    ClaimCounters counters;
    std::uint32_t id = 0;
    while (rs.claim(0, 0, cycle % 2 == 0, id, counters)) {
    }
  }
  rs.reclaim_now();
  EXPECT_EQ(rs.blocks_retired(), 5u * 4u);
  // The pool covers one cycle's working set; later cycles reuse it. Without
  // recycling this would be 20 allocations.
  EXPECT_LE(rs.storage_allocated(), 8u);
  EXPECT_GT(rs.blocks_reclaimed(), 0u);
}

TEST(ReadyShards, PublishedCountsAreVisible) {
  ReadyShards rs(2, 4);
  rs.begin_publish(2);
  rs.publish(0, iota_ids(0, 7));
  rs.publish(1, iota_ids(7, 3));
  EXPECT_EQ(rs.num_shards(), 2u);
  EXPECT_EQ(rs.shard_published(0), 7u);
  EXPECT_EQ(rs.shard_published(1), 3u);
}

// Concurrent hammer (also the TSan workload): several claimers — half
// popping GPU fronts, half CPU backs — race over a multi-shard publish.
// Every id must be claimed exactly once across all threads.
TEST(ReadyShards, ConcurrentClaimsCoverEveryIdExactlyOnce) {
  constexpr std::uint32_t kIds = 2000;
  constexpr int kThreads = 4;
  constexpr int kShards = 3;

  ReadyShards rs(kThreads, 16);  // small blocks: heavy retirement traffic
  rs.begin_publish(kShards);
  std::uint32_t next = 0;
  for (int s = 0; s < kShards; ++s) {
    const std::uint32_t len =
        kIds / kShards +
        (static_cast<std::uint32_t>(s) < kIds % kShards ? 1 : 0);
    rs.publish(static_cast<std::size_t>(s), iota_ids(next, len));
    next += len;
  }

  std::vector<std::atomic<int>> hits(kIds);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rs, &hits, t] {
      ClaimCounters counters;
      std::uint32_t id = 0;
      const bool gpu = t % 2 == 0;
      while (rs.claim(static_cast<std::size_t>(t),
                      static_cast<std::size_t>(t % kShards), gpu, id,
                      counters)) {
        hits[id].fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  for (std::uint32_t i = 0; i < kIds; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "id " << i;
  }
  rs.reclaim_now();
  EXPECT_EQ(rs.blocks_retired(), rs.blocks_reclaimed());
}

}  // namespace
}  // namespace hp::par
