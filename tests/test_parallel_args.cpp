// perf/parallel_args.hpp — the shared "serial" / "-jN" argument parser the
// bench drivers dedupe their thread-count handling through.

#include <gtest/gtest.h>

#include <string>

#include "perf/parallel_args.hpp"

namespace hp::perf {
namespace {

TEST(ParallelArgs, SerialMeansOneThread) {
  int threads = 0;
  EXPECT_TRUE(consume_parallel_arg("serial", threads));
  EXPECT_EQ(threads, 1);
}

TEST(ParallelArgs, DashJTakesAnExplicitCount) {
  int threads = 0;
  EXPECT_TRUE(consume_parallel_arg("-j6", threads));
  EXPECT_EQ(threads, 6);
}

TEST(ParallelArgs, BareOrZeroDashJMeansAllCores) {
  int threads = 99;
  EXPECT_TRUE(consume_parallel_arg("-j", threads));
  EXPECT_EQ(threads, 0);
  threads = 99;
  EXPECT_TRUE(consume_parallel_arg("-j0", threads));
  EXPECT_EQ(threads, 0);
}

TEST(ParallelArgs, UnrelatedArgumentsAreLeftUntouched) {
  int threads = 7;
  EXPECT_FALSE(consume_parallel_arg("--trace", threads));
  EXPECT_FALSE(consume_parallel_arg("serial-ish", threads));
  EXPECT_FALSE(consume_parallel_arg("", threads));
  EXPECT_EQ(threads, 7);
}

}  // namespace
}  // namespace hp::perf
