// Large-DAG smoke: the full pipeline (build -> priorities -> schedule ->
// validate) must handle an 11k-task Cholesky (N = 40 tiles) with every
// policy. In optimized builds each scheduler must also stay under a second —
// the scale guard for the CSR graph, the incremental ready queue and the
// gap-indexed HEFT; debug and sanitizer builds only check correctness.

#include <gtest/gtest.h>

// The wall-clock budget only means something without assertion overhead or
// sanitizer instrumentation (ASan alone is a several-x slowdown).
#if defined(NDEBUG) && !defined(__SANITIZE_ADDRESS__) && \
    !defined(__SANITIZE_THREAD__)
#if defined(__has_feature)
#if !__has_feature(address_sanitizer) && !__has_feature(thread_sanitizer)
#define HP_TIMED_SMOKE 1
#endif
#else
#define HP_TIMED_SMOKE 1
#endif
#endif

#include <chrono>
#include <string>

#include "baselines/dualhp.hpp"
#include "baselines/heft.hpp"
#include "core/heteroprio_dag.hpp"
#include "dag/ranking.hpp"
#include "linalg/cholesky.hpp"
#include "sched/validate.hpp"

namespace hp {
namespace {

TEST(LargeDagSmoke, CholeskyN40AllSchedulers) {
  constexpr int kTiles = 40;
  const Platform platform(20, 4);
  TaskGraph graph = cholesky_dag(kTiles);
  assign_priorities(graph, RankScheme::kAvg);
  ASSERT_EQ(graph.size(), cholesky_task_count(kTiles));

  const auto run = [&](const std::string& name, auto&& schedule_fn) {
    SCOPED_TRACE(name);
    const auto start = std::chrono::steady_clock::now();
    const Schedule schedule = schedule_fn();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_TRUE(check_schedule(schedule, graph, platform).ok);
    EXPECT_GT(schedule.makespan(), 0.0);
#ifdef HP_TIMED_SMOKE
    EXPECT_LT(seconds, 1.0) << name << " took " << seconds << "s";
#else
    (void)seconds;
#endif
  };

  run("HeteroPrio", [&] { return heteroprio_dag(graph, platform); });
  run("HEFT", [&] { return heft(graph, platform); });
  run("DualHP", [&] { return dualhp_dag(graph, platform); });
}

}  // namespace
}  // namespace hp
