#include "baselines/heft.hpp"

#include <gtest/gtest.h>

#include "bounds/dag_lower_bound.hpp"
#include "bounds/exact_opt.hpp"
#include "linalg/cholesky.hpp"
#include "model/generators.hpp"
#include "sched/validate.hpp"
#include "util/rng.hpp"

namespace hp {
namespace {

TEST(Heft, IndependentSingleTask) {
  const std::vector<Task> tasks{Task{4.0, 1.0}};
  const Platform platform(1, 1);
  const Schedule s = heft_independent(tasks, platform);
  EXPECT_EQ(platform.type_of(s.placement(0).worker), Resource::kGpu);
  EXPECT_DOUBLE_EQ(s.makespan(), 1.0);
}

TEST(Heft, IndependentGreedyEftPlacement) {
  // Three equal tasks, 1 CPU + 1 GPU, p = 2, q = 1: HEFT places the first
  // two at t=0 (GPU then CPU by EFT) and the third on the GPU at t=1.
  const std::vector<Task> tasks{Task{2.0, 1.0}, Task{2.0, 1.0},
                                Task{2.0, 1.0}};
  const Platform platform(1, 1);
  const Schedule s = heft_independent(tasks, platform);
  const auto check = check_schedule(s, tasks, platform);
  ASSERT_TRUE(check.ok) << check.message;
  EXPECT_DOUBLE_EQ(s.makespan(), 2.0);
}

TEST(Heft, IgnoresAccelerationFactorsUnlikeHeteroPrio) {
  // The classic failure mode (§6.1): a big CPU-friendly task and a big
  // GPU-friendly task. HEFT ranks by avg time and can assign the
  // CPU-friendly task to the GPU when it finishes earlier *at that moment*.
  // We only check validity and determinism here; the ratio experiments live
  // in the benches.
  util::Rng rng(3);
  const Instance inst = bimodal_instance(30, 0.5, rng);
  const Platform platform(4, 2);
  const Schedule a = heft_independent(inst.tasks(), platform);
  const Schedule b = heft_independent(inst.tasks(), platform);
  const auto check = check_schedule(a, inst.tasks(), platform);
  ASSERT_TRUE(check.ok) << check.message;
  for (std::size_t i = 0; i < inst.size(); ++i) {
    EXPECT_EQ(a.placement(static_cast<TaskId>(i)).worker,
              b.placement(static_cast<TaskId>(i)).worker);
  }
}

TEST(Heft, DagChainSequentialOnBestWorker) {
  TaskGraph g("chain");
  const TaskId a = g.add_task(Task{2.0, 1.0});
  const TaskId b = g.add_task(Task{2.0, 1.0});
  g.add_edge(a, b);
  g.finalize();
  const Platform platform(1, 1);
  const Schedule s = heft(g, platform);
  const auto check = check_schedule(s, g, platform);
  ASSERT_TRUE(check.ok) << check.message;
  EXPECT_DOUBLE_EQ(s.makespan(), 2.0);  // both on the GPU back to back
}

TEST(Heft, RespectsPrecedenceOnCholesky) {
  const TaskGraph g = cholesky_dag(6);
  const Platform platform(4, 2);
  for (RankScheme scheme : {RankScheme::kAvg, RankScheme::kMin}) {
    const Schedule s = heft(g, platform, {.rank = scheme});
    const auto check = check_schedule(s, g, platform);
    EXPECT_TRUE(check.ok) << rank_scheme_name(scheme) << ": " << check.message;
    EXPECT_GE(s.makespan(), dag_lower_bound(g, platform).value() - 1e-9);
  }
}

TEST(Heft, InsertionFillsGaps) {
  // Fork: root releases one long and one short task; a later independent
  // task can slot into the gap left on the idle worker only with insertion.
  TaskGraph g("gap");
  const TaskId root = g.add_task(Task{1.0, 1.0});
  const TaskId heavy = g.add_task(Task{8.0, 8.0});
  const TaskId dependent = g.add_task(Task{1.0, 1.0});
  const TaskId filler = g.add_task(Task{0.5, 0.5});
  g.add_edge(root, heavy);
  g.add_edge(root, dependent);
  g.add_edge(dependent, filler);
  g.finalize();
  const Platform platform(1, 1);
  const Schedule with = heft(g, platform, {.insertion = true});
  const Schedule without = heft(g, platform, {.insertion = false});
  const auto check = check_schedule(with, g, platform);
  ASSERT_TRUE(check.ok) << check.message;
  EXPECT_LE(with.makespan(), without.makespan() + 1e-12);
}

TEST(Heft, AvgAndMinRanksBothValidOnRandomDags) {
  // Random layered DAG.
  util::Rng rng(9);
  TaskGraph g("layers");
  std::vector<TaskId> prev;
  for (int layer = 0; layer < 4; ++layer) {
    std::vector<TaskId> cur;
    for (int i = 0; i < 5; ++i) {
      Task t;
      t.cpu_time = rng.uniform(0.5, 4.0);
      t.gpu_time = t.cpu_time / rng.uniform(0.3, 10.0);
      cur.push_back(g.add_task(t));
    }
    for (TaskId to : cur) {
      for (TaskId from : prev) {
        if (rng.uniform01() < 0.4) g.add_edge(from, to);
      }
    }
    prev = cur;
  }
  g.finalize();
  const Platform platform(2, 1);
  for (RankScheme scheme : {RankScheme::kAvg, RankScheme::kMin}) {
    const Schedule s = heft(g, platform, {.rank = scheme});
    const auto check = check_schedule(s, g, platform);
    EXPECT_TRUE(check.ok) << check.message;
  }
}

TEST(Heft, NearOptimalOnSmallIndependentInstances) {
  // HEFT has no constant guarantee, but on small benign instances it should
  // stay within the trivial 2x of optimal most of the time; we assert a
  // loose 3x envelope to catch gross regressions.
  util::Rng rng(10);
  for (int rep = 0; rep < 10; ++rep) {
    UniformGenParams params;
    params.num_tasks = 8;
    params.accel_lo = 0.5;
    params.accel_hi = 4.0;
    const Instance inst = uniform_instance(params, rng);
    const Platform platform(2, 1);
    const Schedule s = heft_independent(inst.tasks(), platform);
    const double opt = exact_optimal_makespan(inst.tasks(), platform);
    EXPECT_LE(s.makespan(), 3.0 * opt + 1e-9);
  }
}

}  // namespace
}  // namespace hp
