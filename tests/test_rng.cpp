#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace hp::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 4);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const std::uint64_t first = a();
  a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.5, 7.5);
    EXPECT_GE(u, 2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(5);
  double sum = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.uniform(0.0, 10.0);
  EXPECT_NEAR(sum / kSamples, 5.0, 0.1);
}

TEST(Rng, BoundedStrictlyBelowBound) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.bounded(13), 13u);
}

TEST(Rng, BoundedZeroIsZero) {
  Rng rng(6);
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(Rng, BoundedCoversAllResidues) {
  Rng rng(8);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.bounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(9);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / kSamples, 1.0, 0.05);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
}

TEST(Rng, LognormalMedianNearExpMu) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 10001; ++i) xs.push_back(rng.lognormal(1.0, 0.3));
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[xs.size() / 2], std::exp(1.0), 0.1);
}

TEST(Rng, BernoulliHitRateNearP) {
  Rng rng(12);
  constexpr int kSamples = 50000;
  int hits = 0;
  for (int i = 0; i < kSamples; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerateProbabilities) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
  }
}

TEST(Rng, ExponentialMeanNearInverseRate) {
  Rng rng(14);
  constexpr int kSamples = 50000;
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kSamples, 0.5, 0.02);
}

TEST(Rng, ExponentialIsNonNegative) {
  Rng rng(15);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.exponential(0.25), 0.0);
}

TEST(Rng, ExponentialNonPositiveRateIsInfinite) {
  Rng rng(16);
  EXPECT_TRUE(std::isinf(rng.exponential(0.0)));
  EXPECT_TRUE(std::isinf(rng.exponential(-3.0)));
}

TEST(Splitmix, DeterministicExpansion) {
  std::uint64_t s1 = 99, s2 = 99;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace hp::util
