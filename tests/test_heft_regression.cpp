// Regression harness for the gap-indexed HEFT engine: the free-gap index
// (baselines/heft.cpp) must produce bitwise-identical schedules to the
// segment-scanning reference it replaced (baselines/heft_ref.cpp) — same
// workers, same start/finish doubles, same makespans — on independent
// instances, random layered DAGs and tiled Cholesky, across rank schemes
// and with insertion on and off.

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "baselines/heft.hpp"
#include "baselines/heft_ref.hpp"
#include "dag/random_graphs.hpp"
#include "dag/ranking.hpp"
#include "linalg/cholesky.hpp"
#include "model/generators.hpp"
#include "sched/validate.hpp"
#include "util/rng.hpp"

namespace hp {
namespace {

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void expect_identical(const Schedule& optimized, const Schedule& reference) {
  ASSERT_EQ(optimized.num_tasks(), reference.num_tasks());
  for (std::size_t t = 0; t < reference.num_tasks(); ++t) {
    SCOPED_TRACE("task " + std::to_string(t));
    const Placement& a = optimized.placement(static_cast<TaskId>(t));
    const Placement& b = reference.placement(static_cast<TaskId>(t));
    EXPECT_EQ(a.worker, b.worker);
    EXPECT_TRUE(same_bits(a.start, b.start)) << a.start << " vs " << b.start;
    EXPECT_TRUE(same_bits(a.end, b.end)) << a.end << " vs " << b.end;
  }
  EXPECT_TRUE(same_bits(optimized.makespan(), reference.makespan()));
}

/// The option grid every workload is checked under: both rank schemes,
/// insertion on and off.
void expect_matches_reference_on_dag(const TaskGraph& graph,
                                     const Platform& platform) {
  for (const RankScheme scheme : {RankScheme::kAvg, RankScheme::kMin}) {
    for (const bool insertion : {true, false}) {
      SCOPED_TRACE("rank=" + std::to_string(static_cast<int>(scheme)) +
                   " insertion=" + std::to_string(insertion));
      HeftOptions options;
      options.rank = scheme;
      options.insertion = insertion;
      const Schedule optimized = heft(graph, platform, options);
      expect_identical(optimized, heft_ref(graph, platform, options));
      EXPECT_TRUE(check_schedule(optimized, graph, platform).ok);
    }
  }
}

// Independent tasks never wait on predecessors (ready == 0), so the gap
// index degenerates to the pure append fast path — this pins that down.
TEST(HeftRegression, IndependentUniformMatchesReference) {
  for (int inst_idx = 0; inst_idx < 20; ++inst_idx) {
    const Platform platform(2 + inst_idx % 7, 1 + inst_idx % 3);
    UniformGenParams params;
    params.num_tasks = 10 + static_cast<std::size_t>(inst_idx) * 37;
    params.accel_lo = (inst_idx % 2 == 0) ? 0.2 : 0.05;
    params.accel_hi = 5.0 + 5.0 * (inst_idx % 5);
    util::Rng rng(util::seed_from_cell(
        {static_cast<std::uint64_t>(inst_idx)}, /*salt=*/0x4ef7));
    const Instance inst = uniform_instance(params, rng);
    for (const RankScheme scheme : {RankScheme::kAvg, RankScheme::kMin}) {
      for (const bool insertion : {true, false}) {
        SCOPED_TRACE("instance " + std::to_string(inst_idx) + " rank=" +
                     std::to_string(static_cast<int>(scheme)) +
                     " insertion=" + std::to_string(insertion));
        HeftOptions options;
        options.rank = scheme;
        options.insertion = insertion;
        expect_identical(
            heft_independent(inst.tasks(), platform, options),
            heft_independent_ref(inst.tasks(), platform, options));
      }
    }
  }
}

// Random layered DAGs exercise real gap creation and splitting: successors
// become ready mid-timeline, so placements land inside earlier idle
// stretches.
TEST(HeftRegression, RandomLayeredDagsMatchReference) {
  for (int inst_idx = 0; inst_idx < 15; ++inst_idx) {
    const Platform platform(2 + inst_idx % 5, 1 + inst_idx % 3);
    util::Rng rng(util::seed_from_cell(
        {static_cast<std::uint64_t>(inst_idx)}, /*salt=*/0x6aff));
    LayeredDagParams params;
    params.layers = 4 + inst_idx % 5;
    params.width = 4 + inst_idx % 7;
    const TaskGraph graph = random_layered_dag(params, rng);
    SCOPED_TRACE("dag " + std::to_string(inst_idx));
    expect_matches_reference_on_dag(graph, platform);
  }
}

// The paper's workload shape: wide trailing updates behind a narrow
// critical path, at a tile count big enough for thousands of gap queries.
TEST(HeftRegression, CholeskyMatchesReference) {
  const Platform platform(20, 4);
  for (const int tiles : {6, 12}) {
    SCOPED_TRACE("tiles " + std::to_string(tiles));
    expect_matches_reference_on_dag(cholesky_dag(tiles), platform);
  }
}

}  // namespace
}  // namespace hp
