// End-to-end integration: the full Fig 6 / Fig 7 pipeline on small sizes —
// generate a kernel DAG, rank it, run all seven scheduler variants, check
// validity and the ratio envelope against the lower bounds.

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "baselines/dualhp.hpp"
#include "baselines/heft.hpp"
#include "bounds/area_bound.hpp"
#include "bounds/dag_lower_bound.hpp"
#include "core/heteroprio.hpp"
#include "core/heteroprio_dag.hpp"
#include "dag/ranking.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "linalg/qr.hpp"
#include "sched/metrics.hpp"
#include "sched/validate.hpp"

namespace hp {
namespace {

using DagBuilder = std::function<TaskGraph(int)>;

struct KernelCase {
  const char* name;
  TaskGraph (*build)(int, const TimingModel&);
};

const KernelCase kKernels[] = {
    {"cholesky", &cholesky_dag},
    {"qr", &qr_dag},
    {"lu", &lu_dag},
};

class KernelPipeline : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(KernelPipeline, AllSevenAlgorithmsValidAndBounded) {
  const auto [kernel_idx, tiles] = GetParam();
  const KernelCase& kc = kKernels[kernel_idx];
  const Platform platform(8, 2);
  const TimingModel model = TimingModel::chameleon_960();

  TaskGraph graph = kc.build(tiles, model);
  const double lb = dag_lower_bound(graph, platform).value();
  ASSERT_GT(lb, 0.0);

  std::vector<std::pair<std::string, Schedule>> runs;

  for (RankScheme scheme : {RankScheme::kAvg, RankScheme::kMin}) {
    assign_priorities(graph, scheme);
    runs.emplace_back(std::string("hp-") + rank_scheme_name(scheme),
                      heteroprio_dag(graph, platform));
    runs.emplace_back(std::string("heft-") + rank_scheme_name(scheme),
                      heft(graph, platform, {.rank = scheme}));
    runs.emplace_back(std::string("dualhp-") + rank_scheme_name(scheme),
                      dualhp_dag(graph, platform));
  }
  assign_priorities(graph, RankScheme::kFifo);
  runs.emplace_back("dualhp-fifo", dualhp_dag(graph, platform, {.fifo_order = true}));

  for (const auto& [name, schedule] : runs) {
    const auto check = check_schedule(schedule, graph, platform);
    EXPECT_TRUE(check.ok) << kc.name << "/" << name << ": " << check.message;
    const double ratio = schedule.makespan() / lb;
    EXPECT_GE(ratio, 1.0 - 1e-9) << kc.name << "/" << name;
    EXPECT_LE(ratio, 6.0) << kc.name << "/" << name
                          << ": suspiciously bad schedule";
  }
}

INSTANTIATE_TEST_SUITE_P(KernelsAndSizes, KernelPipeline,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(4, 8, 12)));

TEST(IndependentPipeline, Fig6StyleComparison) {
  // Independent-task variant (§6.1): task sets from each kernel, ratio to
  // the area bound. HeteroPrio should be near-optimal at this size.
  const Platform platform(8, 2);
  const TimingModel model = TimingModel::chameleon_960();
  for (const KernelCase& kc : kKernels) {
    const Instance inst = kc.build(10, model).to_instance();
    const double ab = area_bound_value(inst.tasks(), platform);

    const Schedule hp_sched = heteroprio(inst.tasks(), platform);
    const Schedule dual_sched = dualhp(inst.tasks(), platform);
    const Schedule heft_sched = heft_independent(inst.tasks(), platform);

    for (const Schedule* s : {&hp_sched, &dual_sched, &heft_sched}) {
      const auto check = check_schedule(*s, inst.tasks(), platform);
      EXPECT_TRUE(check.ok) << kc.name << ": " << check.message;
      EXPECT_GE(s->makespan(), ab - 1e-9);
    }
    // HeteroPrio within 25% of the area bound on these dense task sets.
    EXPECT_LE(hp_sched.makespan(), 1.25 * ab) << kc.name;
  }
}

TEST(MetricsPipeline, Fig8Fig9StyleMetrics) {
  const Platform platform(8, 2);
  TaskGraph graph = cholesky_dag(10);
  assign_priorities(graph, RankScheme::kMin);
  const Schedule s = heteroprio_dag(graph, platform);
  const ScheduleMetrics m = compute_metrics(s, graph.tasks(), platform);
  const double lb = dag_lower_bound(graph, platform).value();

  // HeteroPrio's allocation adequacy (Fig 8): tasks kept on the CPU should
  // be much less GPU-friendly than tasks sent to the GPU.
  EXPECT_LT(m.cpu.equivalent_accel, m.gpu.equivalent_accel);
  // Idle time accounting is conservative and normalized values are finite.
  EXPECT_GE(m.cpu.idle_time, -1e-9);
  EXPECT_GE(m.gpu.idle_time, -1e-9);
  EXPECT_GE(normalized_idle(m, Resource::kCpu, platform, lb), 0.0);
  EXPECT_GE(normalized_idle(m, Resource::kGpu, platform, lb), 0.0);
}

TEST(ScalePipeline, MediumCholeskyUnderAllSchedulers) {
  // N=20 Cholesky: 1,540 tasks. Smoke test that everything scales and the
  // relative ordering of makespans is sane (no scheduler > 3x lower bound).
  const Platform platform(20, 4);
  TaskGraph graph = cholesky_dag(20);
  assign_priorities(graph, RankScheme::kMin);
  const double lb = dag_lower_bound(graph, platform).value();

  const double hp_ms = heteroprio_dag(graph, platform).makespan();
  const double heft_ms = heft(graph, platform, {.rank = RankScheme::kMin}).makespan();
  const double dual_ms = dualhp_dag(graph, platform).makespan();

  EXPECT_LE(hp_ms, 3.0 * lb);
  EXPECT_LE(heft_ms, 3.0 * lb);
  EXPECT_LE(dual_ms, 3.0 * lb);
}

}  // namespace
}  // namespace hp
