#include "linalg/kernel_timings.hpp"

#include <gtest/gtest.h>

namespace hp {
namespace {

TEST(KernelTimings, Table1AccelerationFactorsExact) {
  const TimingModel model = TimingModel::chameleon_960();
  EXPECT_NEAR(model.accel(KernelKind::kPotrf), 1.72, 1e-12);
  EXPECT_NEAR(model.accel(KernelKind::kTrsm), 8.72, 1e-12);
  EXPECT_NEAR(model.accel(KernelKind::kSyrk), 26.96, 1e-12);
  EXPECT_NEAR(model.accel(KernelKind::kGemm), 28.80, 1e-12);
}

TEST(KernelTimings, AllKernelsHavePositiveTimes) {
  const TimingModel model = TimingModel::chameleon_960();
  for (int k = 0; k <= static_cast<int>(KernelKind::kSsssm); ++k) {
    const KernelTiming t = model.timing(static_cast<KernelKind>(k));
    EXPECT_GT(t.cpu, 0.0);
    EXPECT_GT(t.gpu, 0.0);
  }
}

TEST(KernelTimings, PanelKernelsBarelyAccelerated) {
  // Qualitative structure the schedulers rely on: panel factorizations are
  // CPU-competitive, trailing updates are strongly GPU-friendly.
  const TimingModel model = TimingModel::chameleon_960();
  EXPECT_LT(model.accel(KernelKind::kPotrf), 3.0);
  EXPECT_LT(model.accel(KernelKind::kGeqrt), 3.0);
  EXPECT_LT(model.accel(KernelKind::kGetrf), 3.0);
  EXPECT_GT(model.accel(KernelKind::kGemm), 20.0);
  EXPECT_GT(model.accel(KernelKind::kTsmqr), 10.0);
  EXPECT_GT(model.accel(KernelKind::kSsssm), 10.0);
}

TEST(KernelTimings, MakeTaskCopiesTimesAndKind) {
  const TimingModel model = TimingModel::chameleon_960();
  const Task t = model.make_task(KernelKind::kGemm);
  EXPECT_EQ(t.kind, KernelKind::kGemm);
  EXPECT_DOUBLE_EQ(t.cpu_time, model.timing(KernelKind::kGemm).cpu);
  EXPECT_DOUBLE_EQ(t.gpu_time, model.timing(KernelKind::kGemm).gpu);
  EXPECT_DOUBLE_EQ(t.priority, 0.0);
}

TEST(KernelTimings, SetOverridesEntry) {
  TimingModel model = TimingModel::chameleon_960();
  model.set(KernelKind::kGemm, {1.0, 0.5});
  EXPECT_DOUBLE_EQ(model.accel(KernelKind::kGemm), 2.0);
}

TEST(KernelTimings, NoisyTasksDeterministicPerSeed) {
  const TimingModel model = TimingModel::chameleon_960();
  util::Rng a(5), b(5);
  const Task ta = model.make_task_noisy(KernelKind::kSyrk, 0.1, a);
  const Task tb = model.make_task_noisy(KernelKind::kSyrk, 0.1, b);
  EXPECT_DOUBLE_EQ(ta.cpu_time, tb.cpu_time);
  EXPECT_DOUBLE_EQ(ta.gpu_time, tb.gpu_time);
  EXPECT_GT(ta.cpu_time, 0.0);
}

TEST(KernelTimings, NoisePerturbsAroundNominal) {
  const TimingModel model = TimingModel::chameleon_960();
  util::Rng rng(6);
  double sum = 0.0;
  constexpr int kSamples = 2000;
  for (int i = 0; i < kSamples; ++i) {
    sum += model.make_task_noisy(KernelKind::kGemm, 0.05, rng).cpu_time;
  }
  EXPECT_NEAR(sum / kSamples, model.timing(KernelKind::kGemm).cpu, 0.5);
}

}  // namespace
}  // namespace hp
