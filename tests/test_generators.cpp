#include "model/generators.hpp"

#include <gtest/gtest.h>

namespace hp {
namespace {

TEST(Generators, UniformInstanceSizeAndRanges) {
  util::Rng rng(1);
  UniformGenParams params;
  params.num_tasks = 200;
  params.cpu_time_lo = 1.0;
  params.cpu_time_hi = 5.0;
  params.accel_lo = 0.5;
  params.accel_hi = 20.0;
  const Instance inst = uniform_instance(params, rng);
  ASSERT_EQ(inst.size(), 200u);
  for (const Task& t : inst.tasks()) {
    EXPECT_GE(t.cpu_time, 1.0);
    EXPECT_LT(t.cpu_time, 5.0);
    EXPECT_GE(t.accel(), 0.5 - 1e-12);
    EXPECT_LE(t.accel(), 20.0 + 1e-12);
    EXPECT_GT(t.gpu_time, 0.0);
  }
}

TEST(Generators, DeterministicPerSeed) {
  util::Rng a(7), b(7);
  const Instance ia = uniform_instance({}, a);
  const Instance ib = uniform_instance({}, b);
  ASSERT_EQ(ia.size(), ib.size());
  for (std::size_t i = 0; i < ia.size(); ++i) {
    EXPECT_DOUBLE_EQ(ia[static_cast<TaskId>(i)].cpu_time,
                     ib[static_cast<TaskId>(i)].cpu_time);
    EXPECT_DOUBLE_EQ(ia[static_cast<TaskId>(i)].gpu_time,
                     ib[static_cast<TaskId>(i)].gpu_time);
  }
}

TEST(Generators, BimodalSeparatesAccelModes) {
  util::Rng rng(2);
  const Instance inst = bimodal_instance(500, 0.5, rng);
  int gpu_friendly = 0, cpu_friendly = 0;
  for (const Task& t : inst.tasks()) {
    const double rho = t.accel();
    if (rho >= 10.0 - 1e-9) {
      ++gpu_friendly;
    } else {
      EXPECT_LE(rho, 2.0 + 1e-9);
      ++cpu_friendly;
    }
  }
  // Roughly half each (binomial, 500 draws).
  EXPECT_GT(gpu_friendly, 180);
  EXPECT_GT(cpu_friendly, 180);
}

TEST(Generators, BimodalAllGpuFriendly) {
  util::Rng rng(3);
  const Instance inst = bimodal_instance(50, 1.0, rng);
  for (const Task& t : inst.tasks()) EXPECT_GE(t.accel(), 10.0 - 1e-9);
}

TEST(Generators, UniformAccelInstanceHasConstantRho) {
  util::Rng rng(4);
  const Instance inst = uniform_accel_instance(100, 3.5, 1.0, 2.0, rng);
  for (const Task& t : inst.tasks()) EXPECT_NEAR(t.accel(), 3.5, 1e-12);
}

}  // namespace
}  // namespace hp
