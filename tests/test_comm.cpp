#include "comm/comm_sched.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/heft.hpp"
#include "core/heteroprio_dag.hpp"
#include "linalg/cholesky.hpp"
#include "sched/validate.hpp"

namespace hp {
namespace {

TEST(CommModelTest, BoundaryCost) {
  CommModel comm;
  comm.bandwidth_mb_per_ms = 10.0;
  comm.latency_ms = 0.5;
  EXPECT_DOUBLE_EQ(comm.boundary_cost(20.0), 0.5 + 2.0);
}

TEST(CommModelTest, TransferTopology) {
  const Platform platform(2, 2);  // CPUs 0-1, GPUs 2-3
  CommModel comm;
  comm.bandwidth_mb_per_ms = 10.0;
  comm.latency_ms = 0.0;
  EXPECT_DOUBLE_EQ(comm.transfer_time(platform, 0, 1, 10.0), 0.0);  // CPU->CPU
  EXPECT_DOUBLE_EQ(comm.transfer_time(platform, 0, 2, 10.0), 1.0);  // CPU->GPU
  EXPECT_DOUBLE_EQ(comm.transfer_time(platform, 2, 0, 10.0), 1.0);  // GPU->CPU
  EXPECT_DOUBLE_EQ(comm.transfer_time(platform, 2, 3, 10.0), 2.0);  // GPU->GPU
  EXPECT_DOUBLE_EQ(comm.transfer_time(platform, 2, 2, 10.0), 0.0);  // same
  EXPECT_DOUBLE_EQ(comm.transfer_time(platform, 0, 2, 0.0), 0.0);   // empty
}

TEST(CommModelTest, UniformPayloads) {
  const TaskGraph g = cholesky_dag(4);
  const auto payloads = uniform_payloads(g, 7.03);
  EXPECT_EQ(payloads.size(), g.size());
  EXPECT_DOUBLE_EQ(payloads.front(), 7.03);
}

TEST(HeftComm, ZeroCostReducesToPlainHeft) {
  const TaskGraph g = cholesky_dag(8);
  const Platform platform(4, 2);
  CommModel free_comm;
  free_comm.bandwidth_mb_per_ms = 1e12;
  free_comm.latency_ms = 0.0;
  const auto payloads = uniform_payloads(g);
  const Schedule with_comm = heft_comm(g, platform, free_comm, payloads);
  const Schedule plain = heft(g, platform);
  EXPECT_NEAR(with_comm.makespan(), plain.makespan(),
              1e-9 * plain.makespan());
}

TEST(HeftComm, TransfersDelaySuccessors) {
  // Chain a -> b; force a on CPU (GPU-hostile) and b on GPU (CPU-hostile):
  // b must start one boundary transfer after a ends.
  TaskGraph g("chain");
  const TaskId a = g.add_task(Task{1.0, 100.0});
  const TaskId b = g.add_task(Task{100.0, 1.0});
  g.add_edge(a, b);
  g.finalize();
  const Platform platform(1, 1);
  CommModel comm;
  comm.bandwidth_mb_per_ms = 1.0;
  comm.latency_ms = 0.5;
  const std::vector<double> payloads{2.0, 2.0};  // transfer = 2.5
  const Schedule s = heft_comm(g, platform, comm, payloads);
  EXPECT_EQ(platform.type_of(s.placement(a).worker), Resource::kCpu);
  EXPECT_EQ(platform.type_of(s.placement(b).worker), Resource::kGpu);
  EXPECT_DOUBLE_EQ(s.placement(b).start, 1.0 + 2.5);
}

TEST(HeftComm, ExpensiveTransfersKeepChainOnOneResource) {
  // With a huge transfer cost, moving b to its fast resource is not worth
  // it: HEFT keeps the chain local.
  TaskGraph g("chain");
  const TaskId a = g.add_task(Task{1.0, 3.0});
  const TaskId b = g.add_task(Task{2.0, 1.0});
  g.add_edge(a, b);
  g.finalize();
  const Platform platform(1, 1);
  CommModel comm;
  comm.bandwidth_mb_per_ms = 0.01;  // 100 ms per MB
  comm.latency_ms = 0.0;
  const std::vector<double> payloads{1.0, 1.0};
  const Schedule s = heft_comm(g, platform, comm, payloads);
  EXPECT_EQ(s.placement(a).worker, s.placement(b).worker);
}

TEST(HeteroPrioComm, PrecedenceAndExclusivityHold) {
  TaskGraph g = cholesky_dag(8);
  assign_priorities(g, RankScheme::kMin);
  const Platform platform(4, 2);
  CommModel comm;
  const auto payloads = uniform_payloads(g);
  const Schedule s = heteroprio_comm(g, platform, comm, payloads);

  ASSERT_TRUE(s.complete());
  // Durations include staging, so check precedence and per-worker
  // exclusivity manually (placement length >= pure execution time).
  std::vector<std::vector<std::pair<double, double>>> busy(
      static_cast<std::size_t>(platform.workers()));
  for (std::size_t i = 0; i < g.size(); ++i) {
    const auto id = static_cast<TaskId>(i);
    const Placement& p = s.placement(id);
    EXPECT_GE(p.end - p.start,
              Platform::time_on(g.task(id), platform.type_of(p.worker)) -
                  1e-9);
    busy[static_cast<std::size_t>(p.worker)].emplace_back(p.start, p.end);
    for (TaskId pred : g.predecessors(id)) {
      EXPECT_GE(p.start, s.placement(pred).end - 1e-9);
    }
  }
  for (auto& intervals : busy) {
    std::sort(intervals.begin(), intervals.end());
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      EXPECT_GE(intervals[i].first, intervals[i - 1].second - 1e-9);
    }
  }
}

TEST(HeteroPrioComm, ZeroCostMatchesPlainHeteroPrio) {
  TaskGraph g = cholesky_dag(8);
  assign_priorities(g, RankScheme::kMin);
  const Platform platform(4, 2);
  CommModel free_comm;
  free_comm.bandwidth_mb_per_ms = 1e12;
  free_comm.latency_ms = 0.0;
  const auto payloads = uniform_payloads(g);
  const double with_comm =
      heteroprio_comm(g, platform, free_comm, payloads).makespan();
  const double plain = heteroprio_dag(g, platform).makespan();
  EXPECT_NEAR(with_comm, plain, 1e-6 * plain);
}

TEST(HeteroPrioComm, TransfersAccumulateInStats) {
  TaskGraph g = cholesky_dag(6);
  assign_priorities(g, RankScheme::kMin);
  const Platform platform(4, 2);
  CommModel comm;
  const auto payloads = uniform_payloads(g);
  HeteroPrioCommStats stats;
  (void)heteroprio_comm(g, platform, comm, payloads, &stats);
  EXPECT_GT(stats.transfer_time_total, 0.0);
}

TEST(HeteroPrioComm, LocalityWindowReducesTransferTime) {
  TaskGraph g = cholesky_dag(12);
  assign_priorities(g, RankScheme::kMin);
  const Platform platform(4, 2);
  CommModel comm;
  comm.bandwidth_mb_per_ms = 3.0;  // slow link: locality matters
  const auto payloads = uniform_payloads(g);
  HeteroPrioCommStats oblivious, aware;
  (void)heteroprio_comm(g, platform, comm, payloads, &oblivious);
  const Schedule s = heteroprio_comm(g, platform, comm, payloads, &aware,
                                     {.locality_window = 8});
  ASSERT_TRUE(s.complete());
  EXPECT_LT(aware.transfer_time_total, oblivious.transfer_time_total);
}

TEST(HeteroPrioComm, WindowOneMatchesDefault) {
  TaskGraph g = cholesky_dag(8);
  assign_priorities(g, RankScheme::kMin);
  const Platform platform(4, 2);
  CommModel comm;
  const auto payloads = uniform_payloads(g);
  const double a = heteroprio_comm(g, platform, comm, payloads).makespan();
  const double b = heteroprio_comm(g, platform, comm, payloads, nullptr,
                                   {.locality_window = 1})
                       .makespan();
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(HeteroPrioComm, CostlierCommIncreasesMakespan) {
  TaskGraph g = cholesky_dag(10);
  assign_priorities(g, RankScheme::kMin);
  const Platform platform(4, 2);
  const auto payloads = uniform_payloads(g);
  CommModel fast;  // defaults ~12 MB/ms
  CommModel slow;
  slow.bandwidth_mb_per_ms = 1.0;
  const double fast_ms = heteroprio_comm(g, platform, fast, payloads).makespan();
  const double slow_ms = heteroprio_comm(g, platform, slow, payloads).makespan();
  EXPECT_GT(slow_ms, fast_ms);
}

}  // namespace
}  // namespace hp
