#include "sim/worker_pool.hpp"

#include <gtest/gtest.h>

namespace hp::sim {
namespace {

TEST(WorkerPool, StartAndRelease) {
  WorkerPool pool(Platform{2, 1});
  EXPECT_TRUE(pool.all_idle());
  const double finish = pool.start(0, 7, 1.0, 3.0);
  EXPECT_DOUBLE_EQ(finish, 4.0);
  EXPECT_TRUE(pool.busy(0));
  EXPECT_EQ(pool.busy_count(), 1);
  const Running r = pool.release(0);
  EXPECT_EQ(r.task, 7);
  EXPECT_DOUBLE_EQ(r.start, 1.0);
  EXPECT_DOUBLE_EQ(r.finish, 4.0);
  EXPECT_TRUE(pool.all_idle());
}

TEST(WorkerPool, AllBusyDetection) {
  WorkerPool pool(Platform{1, 1});
  pool.start(0, 0, 0.0, 1.0);
  EXPECT_FALSE(pool.all_busy());
  pool.start(1, 1, 0.0, 1.0);
  EXPECT_TRUE(pool.all_busy());
}

TEST(WorkerPool, IdleWorkersGpuFirstOrder) {
  const Platform platform(3, 2);  // CPUs 0-2, GPUs 3-4
  WorkerPool pool(platform);
  const auto idle = pool.idle_workers_gpu_first();
  ASSERT_EQ(idle.size(), 5u);
  EXPECT_EQ(idle[0], 3);
  EXPECT_EQ(idle[1], 4);
  EXPECT_EQ(idle[2], 0);
  EXPECT_EQ(idle[3], 1);
  EXPECT_EQ(idle[4], 2);
}

TEST(WorkerPool, IdleWorkersSkipsBusy) {
  WorkerPool pool(Platform{2, 2});
  pool.start(3, 0, 0.0, 1.0);  // busy GPU
  pool.start(0, 1, 0.0, 1.0);  // busy CPU
  const auto idle = pool.idle_workers_gpu_first();
  ASSERT_EQ(idle.size(), 2u);
  EXPECT_EQ(idle[0], 2);  // remaining GPU
  EXPECT_EQ(idle[1], 1);  // remaining CPU
}

TEST(WorkerPool, BusyWorkersByType) {
  WorkerPool pool(Platform{2, 2});
  pool.start(0, 0, 0.0, 1.0);
  pool.start(3, 1, 0.0, 1.0);
  const auto busy_cpu = pool.busy_workers(Resource::kCpu);
  const auto busy_gpu = pool.busy_workers(Resource::kGpu);
  ASSERT_EQ(busy_cpu.size(), 1u);
  ASSERT_EQ(busy_gpu.size(), 1u);
  EXPECT_EQ(busy_cpu[0], 0);
  EXPECT_EQ(busy_gpu[0], 3);
}

TEST(WorkerPool, RunningInfoAccessible) {
  WorkerPool pool(Platform{1, 0});
  pool.start(0, 5, 2.0, 4.0);
  EXPECT_EQ(pool.running(0).task, 5);
  EXPECT_DOUBLE_EQ(pool.running(0).finish, 6.0);
}

}  // namespace
}  // namespace hp::sim
