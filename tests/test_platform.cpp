#include "model/platform.hpp"

#include <gtest/gtest.h>

namespace hp {
namespace {

TEST(PlatformTest, CountsAndWorkers) {
  const Platform p(20, 4);
  EXPECT_EQ(p.cpus(), 20);
  EXPECT_EQ(p.gpus(), 4);
  EXPECT_EQ(p.workers(), 24);
  EXPECT_EQ(p.count(Resource::kCpu), 20);
  EXPECT_EQ(p.count(Resource::kGpu), 4);
}

TEST(PlatformTest, WorkerTypeBoundaries) {
  const Platform p(3, 2);
  EXPECT_EQ(p.type_of(0), Resource::kCpu);
  EXPECT_EQ(p.type_of(2), Resource::kCpu);
  EXPECT_EQ(p.type_of(3), Resource::kGpu);
  EXPECT_EQ(p.type_of(4), Resource::kGpu);
}

TEST(PlatformTest, FirstWorkerOfType) {
  const Platform p(3, 2);
  EXPECT_EQ(p.first(Resource::kCpu), 0);
  EXPECT_EQ(p.first(Resource::kGpu), 3);
}

TEST(PlatformTest, TimeOnResource) {
  const Task t{5.0, 1.25, 0.0, KernelKind::kGeneric};
  EXPECT_DOUBLE_EQ(Platform::time_on(t, Resource::kCpu), 5.0);
  EXPECT_DOUBLE_EQ(Platform::time_on(t, Resource::kGpu), 1.25);
}

TEST(PlatformTest, OtherResource) {
  EXPECT_EQ(other(Resource::kCpu), Resource::kGpu);
  EXPECT_EQ(other(Resource::kGpu), Resource::kCpu);
}

TEST(PlatformTest, ResourceNames) {
  EXPECT_STREQ(resource_name(Resource::kCpu), "CPU");
  EXPECT_STREQ(resource_name(Resource::kGpu), "GPU");
}

TEST(PlatformTest, CpuOnlyPlatform) {
  const Platform p(4, 0);
  EXPECT_EQ(p.workers(), 4);
  EXPECT_EQ(p.type_of(3), Resource::kCpu);
}

TEST(PlatformTest, GpuOnlyPlatform) {
  const Platform p(0, 4);
  EXPECT_EQ(p.workers(), 4);
  EXPECT_EQ(p.type_of(0), Resource::kGpu);
  EXPECT_EQ(p.first(Resource::kGpu), 0);
}

TEST(PlatformTest, Equality) {
  EXPECT_EQ(Platform(2, 1), Platform(2, 1));
  EXPECT_FALSE(Platform(2, 1) == Platform(1, 2));
}

}  // namespace
}  // namespace hp
