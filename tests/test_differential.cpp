// Differential/fuzz suite: cross-check every scheduler against the exact
// optimum and the bounds on thousands of small random instances with
// adversarially varied shapes (extreme acceleration factors, ties,
// near-zero durations, single-resource platforms). Complements the targeted
// unit tests with breadth.

#include <gtest/gtest.h>

#include "baselines/dualhp.hpp"
#include "baselines/heft.hpp"
#include "baselines/online_greedy.hpp"
#include "bounds/area_bound.hpp"
#include "bounds/exact_opt.hpp"
#include "core/heteroprio.hpp"
#include "model/generators.hpp"
#include "sched/validate.hpp"
#include "util/rng.hpp"

namespace hp {
namespace {

constexpr double kPhiD = 1.6180339887498949;
constexpr double kSqrt2D = 1.4142135623730951;

/// Draw a "nasty" instance: wide log-uniform durations, occasional exact
/// ties, occasional extreme acceleration factors.
Instance nasty_instance(std::size_t num_tasks, util::Rng& rng) {
  Instance inst("nasty");
  double last_cpu = 1.0, last_gpu = 1.0;
  for (std::size_t i = 0; i < num_tasks; ++i) {
    Task t;
    const double r = rng.uniform01();
    if (r < 0.15 && i > 0) {
      // Exact duplicate of the previous task: exercises tie-breaking.
      t.cpu_time = last_cpu;
      t.gpu_time = last_gpu;
    } else if (r < 0.30) {
      // Extreme acceleration factor, either direction.
      t.cpu_time = rng.lognormal(1.0, 1.0);
      const double rho = rng.uniform01() < 0.5 ? rng.uniform(50.0, 500.0)
                                               : rng.uniform(0.002, 0.02);
      t.gpu_time = t.cpu_time / rho;
    } else if (r < 0.40) {
      // Tiny task amid normal ones.
      t.cpu_time = rng.uniform(1e-4, 1e-3);
      t.gpu_time = t.cpu_time / rng.uniform(0.5, 2.0);
    } else {
      t.cpu_time = rng.lognormal(1.0, 1.2);
      t.gpu_time = t.cpu_time / rng.lognormal(0.5, 1.0);
    }
    last_cpu = t.cpu_time;
    last_gpu = t.gpu_time;
    inst.add(t);
  }
  return inst;
}

struct Shape {
  int cpus;
  int gpus;
  double hp_bound;  ///< applicable HeteroPrio theorem bound
};

const Shape kShapes[] = {
    {1, 1, kPhiD},
    {3, 1, 1.0 + kPhiD},
    {1, 2, 2.0 + kSqrt2D},
    {2, 2, 2.0 + kSqrt2D},
    {4, 2, 2.0 + kSqrt2D},
};

TEST(Differential, HeteroPrioVsExactOnHundredsOfNastyInstances) {
  util::Rng rng(20250704);
  int checked = 0;
  for (int rep = 0; rep < 300; ++rep) {
    const Shape& shape = kShapes[rng.bounded(std::size(kShapes))];
    const Platform platform(shape.cpus, shape.gpus);
    const std::size_t count = 3 + rng.bounded(7);  // 3..9 tasks
    const Instance inst = nasty_instance(count, rng);

    const Schedule s = heteroprio(inst.tasks(), platform);
    const auto check = check_schedule(s, inst.tasks(), platform);
    ASSERT_TRUE(check.ok) << "rep " << rep << ": " << check.message;

    const double opt = exact_optimal_makespan(inst.tasks(), platform);
    ASSERT_GE(s.makespan(), opt * (1.0 - 1e-9)) << "rep " << rep;
    EXPECT_LE(s.makespan(), shape.hp_bound * opt * (1.0 + 1e-9))
        << "rep " << rep << " on (" << shape.cpus << "," << shape.gpus
        << "): HP " << s.makespan() << " opt " << opt;
    ++checked;
  }
  EXPECT_EQ(checked, 300);
}

TEST(Differential, AllSchedulersValidOnNastyInstances) {
  util::Rng rng(987654321);
  for (int rep = 0; rep < 120; ++rep) {
    const Shape& shape = kShapes[rng.bounded(std::size(kShapes))];
    const Platform platform(shape.cpus, shape.gpus);
    const Instance inst = nasty_instance(5 + rng.bounded(25), rng);

    const Schedule schedules[] = {
        heteroprio(inst.tasks(), platform),
        heteroprio(inst.tasks(), platform, {.enable_spoliation = false}),
        dualhp(inst.tasks(), platform),
        heft_independent(inst.tasks(), platform),
        online_greedy(inst.tasks(), platform, {OnlineRule::kEft, 1.0}),
        online_greedy(inst.tasks(), platform, {OnlineRule::kBalance, 1.0}),
    };
    for (const Schedule& s : schedules) {
      const auto check = check_schedule(s, inst.tasks(), platform);
      EXPECT_TRUE(check.ok) << "rep " << rep << ": " << check.message;
      EXPECT_GE(s.makespan(),
                area_bound_value(inst.tasks(), platform) * (1.0 - 1e-9));
    }
  }
}

TEST(Differential, AreaBoundNeverExceedsAnyScheduleOrExact) {
  util::Rng rng(555);
  for (int rep = 0; rep < 200; ++rep) {
    const Platform platform(1 + static_cast<int>(rng.bounded(3)),
                            1 + static_cast<int>(rng.bounded(2)));
    const Instance inst = nasty_instance(3 + rng.bounded(6), rng);
    const double lb = opt_lower_bound(inst.tasks(), platform);
    const double opt = exact_optimal_makespan(inst.tasks(), platform);
    EXPECT_LE(lb, opt * (1.0 + 1e-9)) << "rep " << rep;
  }
}

TEST(Differential, DualHpNearTwoApproxOnNastyInstances) {
  util::Rng rng(777);
  for (int rep = 0; rep < 150; ++rep) {
    const Platform platform(2, 1);
    const Instance inst = nasty_instance(4 + rng.bounded(6), rng);
    const Schedule s = dualhp(inst.tasks(), platform);
    const double opt = exact_optimal_makespan(inst.tasks(), platform);
    EXPECT_LE(s.makespan(), 2.0 * opt * (1.0 + 1e-6)) << "rep " << rep;
  }
}

TEST(Differential, SpoliationMonotoneOnNastyInstances) {
  util::Rng rng(999);
  for (int rep = 0; rep < 150; ++rep) {
    const Shape& shape = kShapes[rng.bounded(std::size(kShapes))];
    const Platform platform(shape.cpus, shape.gpus);
    const Instance inst = nasty_instance(4 + rng.bounded(12), rng);
    const double with = heteroprio(inst.tasks(), platform).makespan();
    const double without =
        heteroprio(inst.tasks(), platform, {.enable_spoliation = false})
            .makespan();
    EXPECT_LE(with, without * (1.0 + 1e-9)) << "rep " << rep;
  }
}

}  // namespace
}  // namespace hp
