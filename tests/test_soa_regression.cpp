// Bitwise regression gate for the SoA/arena engines beyond the random
// sweeps in test_hp_regression.cpp / test_heft_regression.cpp: every rank
// scheme, fault plans (crashes, stragglers, task retries), the checked-in
// worst-case corpus witnesses (Thm 8 / Thm 11 / Thm 14 instances), and a
// fuzz-oracle differential run — all must agree with the reference engines
// placement-for-placement, bit-for-bit.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/heft.hpp"
#include "baselines/heft_ref.hpp"
#include "core/heteroprio.hpp"
#include "core/heteroprio_dag.hpp"
#include "core/heteroprio_ref.hpp"
#include "dag/random_graphs.hpp"
#include "dag/ranking.hpp"
#include "fault/fault_plan.hpp"
#include "fuzz/corpus.hpp"
#include "fuzz/runner.hpp"
#include "model/generators.hpp"
#include "util/rng.hpp"

#ifndef HP_CORPUS_DIR
#error "HP_CORPUS_DIR must point at tests/corpus"
#endif

namespace hp {
namespace {

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void expect_identical(const Schedule& optimized, const Schedule& reference) {
  ASSERT_EQ(optimized.num_tasks(), reference.num_tasks());
  for (std::size_t t = 0; t < reference.num_tasks(); ++t) {
    SCOPED_TRACE("task " + std::to_string(t));
    const Placement& a = optimized.placement(static_cast<TaskId>(t));
    const Placement& b = reference.placement(static_cast<TaskId>(t));
    EXPECT_EQ(a.worker, b.worker);
    EXPECT_TRUE(same_bits(a.start, b.start)) << a.start << " vs " << b.start;
    EXPECT_TRUE(same_bits(a.end, b.end)) << a.end << " vs " << b.end;
  }
  ASSERT_EQ(optimized.aborted().size(), reference.aborted().size());
  for (std::size_t i = 0; i < reference.aborted().size(); ++i) {
    SCOPED_TRACE("aborted " + std::to_string(i));
    const AbortedSegment& a = optimized.aborted()[i];
    const AbortedSegment& b = reference.aborted()[i];
    EXPECT_EQ(a.task, b.task);
    EXPECT_EQ(a.worker, b.worker);
    EXPECT_TRUE(same_bits(a.start, b.start));
    EXPECT_TRUE(same_bits(a.abort_time, b.abort_time));
  }
  EXPECT_TRUE(same_bits(optimized.makespan(), reference.makespan()));
}

TaskGraph layered_graph(std::uint64_t seed, RankScheme rank) {
  util::Rng rng(seed);
  LayeredDagParams params;
  params.layers = 5;
  params.width = 10;
  TaskGraph g = random_layered_dag(params, rng);
  assign_priorities(g, rank);
  return g;
}

TEST(SoaRegression, AllRankSchemesMatchReferenceOnDags) {
  for (const RankScheme rank :
       {RankScheme::kAvg, RankScheme::kMin, RankScheme::kFifo}) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      SCOPED_TRACE("rank " + std::to_string(static_cast<int>(rank)) +
                   " seed " + std::to_string(seed));
      const TaskGraph g = layered_graph(seed, rank);
      const Platform platform(5, 2);
      HeteroPrioOptions options;
      expect_identical(heteroprio_dag(g, platform, options),
                       heteroprio_dag_reference(g, platform, options));
      if (rank != RankScheme::kFifo) {
        HeftOptions heft_options;
        heft_options.rank = rank;
        expect_identical(heft(g, platform, heft_options),
                         heft_ref(g, platform, heft_options));
      }
    }
  }
}

std::uint64_t fnv1a(std::uint64_t h, const void* p, std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t schedule_checksum(const Schedule& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t t = 0; t < s.num_tasks(); ++t) {
    const Placement& p = s.placement(static_cast<TaskId>(t));
    h = fnv1a(h, &p.worker, sizeof p.worker);
    h = fnv1a(h, &p.start, sizeof p.start);
    h = fnv1a(h, &p.end, sizeof p.end);
  }
  for (const AbortedSegment& a : s.aborted()) {
    h = fnv1a(h, &a.task, sizeof a.task);
    h = fnv1a(h, &a.worker, sizeof a.worker);
    h = fnv1a(h, &a.start, sizeof a.start);
    h = fnv1a(h, &a.abort_time, sizeof a.abort_time);
  }
  const double mk = s.makespan();
  return fnv1a(h, &mk, sizeof mk);
}

TEST(SoaRegression, FaultPlansMatchRecordedEngineBehavior) {
  // The reference engine has no fault path (options.faults is a no-op
  // there), so faulty runs cannot be pinned against it. Instead these
  // checksums were recorded from the pre-SoA engine at the seed commit:
  // crashes, stragglers and task retries each exercise the recovery
  // machinery, and the SoA engine must reproduce every placement, aborted
  // segment and makespan bit-for-bit. All inputs are pure functions of the
  // seeds below, so the checksums are machine-independent.
  const std::uint64_t golden[3][4] = {
      // crashes
      {0x274bcca9d549e86dull, 0xea783c39219c08c6ull, 0x8a5fd339f8709fb5ull,
       0x0994466259422af6ull},
      // stragglers
      {0xff058bbc86ffced6ull, 0x536a378100055402ull, 0x5bf3b026427e214full,
       0x0994466259422af6ull},
      // task failures + retries
      {0xb46fccee41929bc8ull, 0xa6880d113e8149c8ull, 0x7f23ae162efd7ba0ull,
       0x353ca7c51b966cf4ull},
  };
  const Platform platform(4, 2);
  for (int kind = 0; kind < 3; ++kind) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      SCOPED_TRACE("kind " + std::to_string(kind) + " seed " +
                   std::to_string(seed));
      const TaskGraph g = layered_graph(seed + 100, RankScheme::kAvg);
      fault::FaultSpec spec;
      if (kind == 0) {
        spec.crashes = 1;
      } else if (kind == 1) {
        spec.stragglers = 2;
      } else {
        spec.task_fail_prob = 0.15;
        spec.max_attempts = 4;
        spec.retry_backoff = 0.25;
      }
      spec.horizon = 50.0;
      spec.seed = seed;
      const fault::FaultPlan plan = fault::FaultPlan::generate(spec, platform);
      HeteroPrioOptions options;
      options.faults = &plan;
      const Schedule run = heteroprio_dag(g, platform, options);
      EXPECT_EQ(schedule_checksum(run), golden[kind][seed - 1]);
    }
  }
}

TEST(SoaRegression, CorpusWitnessesMatchReference) {
  // The distilled Thm 8 / Thm 11 / Thm 14 witnesses are exactly the
  // instances where tie-breaks decide the ratio; any divergence between the
  // engines would silently change what the corpus certifies.
  const std::vector<std::string> files = fuzz::list_corpus_files(HP_CORPUS_DIR);
  ASSERT_FALSE(files.empty());
  int replayed = 0;
  for (const std::string& path : files) {
    SCOPED_TRACE(path);
    fuzz::CorpusCase entry;
    std::string error;
    ASSERT_TRUE(fuzz::load_corpus_file(path, &entry, &error)) << error;
    const std::span<const Task> tasks = entry.c.graph.tasks();
    // Fault-free replay: the reference engine has no fault path, and the
    // witnesses certify tie-break behavior, not recovery.
    HeteroPrioOptions options;
    if (entry.c.is_dag()) {
      expect_identical(heteroprio_dag(entry.c.graph, entry.c.platform, options),
                       heteroprio_dag_reference(entry.c.graph,
                                                entry.c.platform, options));
    } else {
      expect_identical(
          heteroprio(tasks, entry.c.platform, options),
          heteroprio_reference(tasks, entry.c.platform, options));
    }
    ++replayed;
  }
  EXPECT_EQ(replayed, static_cast<int>(files.size()));
}

TEST(SoaRegression, FuzzOracleDifferentialOverSoaPath) {
  // The oracle cross-checks every scheduler (validity, bound properties,
  // HP-vs-reference identity) on adversarial generated cases; a clean run
  // is the broadest differential sweep the SoA engines get.
  fuzz::RunnerOptions options;
  options.seed = 20260808;
  options.runs = 60;
  options.shrink_failures = false;
  const fuzz::FuzzReport report = fuzz::run_fuzz(options);
  EXPECT_EQ(report.cases_run, options.runs);
  EXPECT_TRUE(report.ok()) << report.failures.size() << " fuzz failures";
}

}  // namespace
}  // namespace hp
