// Differential test of the HeteroPrio engine against an independent,
// deliberately naive re-implementation (O(T^2) re-sorting, no event queue,
// no ordered set). Both must produce bit-identical schedules — a classic
// simulator cross-check that catches subtle ordering bugs in the optimized
// engine.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/heteroprio.hpp"
#include "model/generators.hpp"
#include "util/rng.hpp"

namespace hp {
namespace {

/// Naive HeteroPrio for independent tasks: time advances to the next
/// completion; at each instant, idle workers (GPUs first) repeatedly pick
/// from a freshly re-sorted ready vector or spoliate. Mirrors the paper's
/// Algorithm 1 wording as directly as possible.
Schedule naive_heteroprio(std::span<const Task> tasks,
                          const Platform& platform) {
  Schedule schedule(tasks.size());
  struct Slot {
    TaskId task = kInvalidTask;
    double start = 0.0;
    double finish = 0.0;
  };
  std::vector<Slot> running(static_cast<std::size_t>(platform.workers()));
  std::vector<TaskId> ready(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    ready[i] = static_cast<TaskId>(i);
  }
  std::size_t completed = 0;
  double now = 0.0;

  auto sort_ready = [&] {
    std::sort(ready.begin(), ready.end(), [&](TaskId a, TaskId b) {
      const Task& ta = tasks[static_cast<std::size_t>(a)];
      const Task& tb = tasks[static_cast<std::size_t>(b)];
      if (ta.accel() != tb.accel()) return ta.accel() > tb.accel();
      if (ta.priority != tb.priority) {
        return ta.accel() >= 1.0 ? ta.priority > tb.priority
                                 : ta.priority < tb.priority;
      }
      return a < b;
    });
  };

  auto idle_order = [&] {
    std::vector<WorkerId> idle;
    for (WorkerId w = platform.first(Resource::kGpu); w < platform.workers();
         ++w) {
      if (running[static_cast<std::size_t>(w)].task == kInvalidTask) {
        idle.push_back(w);
      }
    }
    for (WorkerId w = 0; w < platform.first(Resource::kGpu); ++w) {
      if (running[static_cast<std::size_t>(w)].task == kInvalidTask) {
        idle.push_back(w);
      }
    }
    return idle;
  };

  auto dispatch = [&] {
    bool acted = true;
    while (acted) {
      acted = false;
      for (WorkerId w : idle_order()) {
        if (running[static_cast<std::size_t>(w)].task != kInvalidTask) continue;
        const Resource mine = platform.type_of(w);
        if (!ready.empty()) {
          sort_ready();
          TaskId id;
          if (mine == Resource::kGpu) {
            id = ready.front();
            ready.erase(ready.begin());
          } else {
            id = ready.back();
            ready.pop_back();
          }
          const double dt =
              Platform::time_on(tasks[static_cast<std::size_t>(id)], mine);
          running[static_cast<std::size_t>(w)] = {id, now, now + dt};
          acted = true;
          continue;
        }
        // Spoliation: victims on the other type, decreasing finish, ties by
        // priority then id.
        std::vector<WorkerId> victims;
        for (WorkerId v = 0; v < platform.workers(); ++v) {
          if (platform.type_of(v) == other(mine) &&
              running[static_cast<std::size_t>(v)].task != kInvalidTask) {
            victims.push_back(v);
          }
        }
        std::sort(victims.begin(), victims.end(), [&](WorkerId a, WorkerId b) {
          const Slot& sa = running[static_cast<std::size_t>(a)];
          const Slot& sb = running[static_cast<std::size_t>(b)];
          if (sa.finish != sb.finish) return sa.finish > sb.finish;
          const double pa = tasks[static_cast<std::size_t>(sa.task)].priority;
          const double pb = tasks[static_cast<std::size_t>(sb.task)].priority;
          if (pa != pb) return pa > pb;
          return sa.task < sb.task;
        });
        for (WorkerId v : victims) {
          Slot& slot = running[static_cast<std::size_t>(v)];
          const double dt =
              Platform::time_on(tasks[static_cast<std::size_t>(slot.task)], mine);
          const double margin = 1e-9 * std::max(1.0, std::abs(slot.finish));
          if (now + dt < slot.finish - margin) {
            schedule.add_aborted(slot.task, v, slot.start, now);
            running[static_cast<std::size_t>(w)] = {slot.task, now, now + dt};
            slot = Slot{};
            acted = true;
            break;
          }
        }
      }
    }
  };

  dispatch();
  while (completed < tasks.size()) {
    double next = std::numeric_limits<double>::infinity();
    for (const Slot& slot : running) {
      if (slot.task != kInvalidTask) next = std::min(next, slot.finish);
    }
    if (!std::isfinite(next)) {
      ADD_FAILURE() << "naive simulator deadlocked";
      return schedule;
    }
    now = next;
    for (WorkerId w = 0; w < platform.workers(); ++w) {
      Slot& slot = running[static_cast<std::size_t>(w)];
      if (slot.task != kInvalidTask && slot.finish == now) {
        schedule.place(slot.task, w, slot.start, slot.finish);
        slot = Slot{};
        ++completed;
      }
    }
    dispatch();
  }
  return schedule;
}

TEST(ReferenceImpl, MatchesEngineOnRandomInstances) {
  util::Rng rng(424242);
  for (int rep = 0; rep < 40; ++rep) {
    const int cpus = 1 + static_cast<int>(rng.bounded(4));
    const int gpus = 1 + static_cast<int>(rng.bounded(3));
    const Platform platform(cpus, gpus);
    UniformGenParams params;
    params.num_tasks = 5 + rng.bounded(30);
    Instance inst = uniform_instance(params, rng);
    // Random priorities exercise the tie-breaking paths too.
    for (Task& t : inst.tasks()) {
      t.priority = static_cast<double>(rng.bounded(4));
    }

    const Schedule fast = heteroprio(inst.tasks(), platform);
    const Schedule naive = naive_heteroprio(inst.tasks(), platform);

    ASSERT_EQ(fast.aborted().size(), naive.aborted().size())
        << "rep " << rep << " (" << cpus << "," << gpus << ")";
    for (std::size_t i = 0; i < inst.size(); ++i) {
      const auto id = static_cast<TaskId>(i);
      EXPECT_EQ(fast.placement(id).worker, naive.placement(id).worker)
          << "rep " << rep << " task " << i;
      EXPECT_DOUBLE_EQ(fast.placement(id).start, naive.placement(id).start)
          << "rep " << rep << " task " << i;
      EXPECT_DOUBLE_EQ(fast.placement(id).end, naive.placement(id).end)
          << "rep " << rep << " task " << i;
    }
  }
}

TEST(ReferenceImpl, MatchesEngineOnBimodalInstances) {
  util::Rng rng(77);
  for (int rep = 0; rep < 20; ++rep) {
    const Platform platform(3, 1);
    const Instance inst = bimodal_instance(20, 0.5, rng);
    const Schedule fast = heteroprio(inst.tasks(), platform);
    const Schedule naive = naive_heteroprio(inst.tasks(), platform);
    EXPECT_DOUBLE_EQ(fast.makespan(), naive.makespan()) << "rep " << rep;
    EXPECT_EQ(fast.aborted().size(), naive.aborted().size()) << "rep " << rep;
  }
}

}  // namespace
}  // namespace hp
