#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace hp::sim {
namespace {

TEST(TimelineLogTest, DisabledLogRecordsNothing) {
  TimelineLog log(false);
  log.record(1.0, TraceKind::kStart, 0, 0);
  EXPECT_FALSE(log.enabled());
  EXPECT_TRUE(log.entries().empty());
}

TEST(TimelineLogTest, EnabledLogKeepsOrder) {
  TimelineLog log(true);
  log.record(0.0, TraceKind::kStart, 3, 1);
  log.record(2.5, TraceKind::kComplete, 3, 1);
  ASSERT_EQ(log.entries().size(), 2u);
  EXPECT_EQ(log.entries()[0].kind, TraceKind::kStart);
  EXPECT_EQ(log.entries()[1].kind, TraceKind::kComplete);
  EXPECT_DOUBLE_EQ(log.entries()[1].time, 2.5);
}

TEST(TimelineLogTest, ToStringContainsEventDetails) {
  const Platform platform(1, 1);
  TimelineLog log(true);
  log.record(1.25, TraceKind::kStart, 7, 1);
  const std::string text = log.to_string(platform);
  EXPECT_NE(text.find("t=1.25"), std::string::npos);
  EXPECT_NE(text.find("start"), std::string::npos);
  EXPECT_NE(text.find("task 7"), std::string::npos);
  EXPECT_NE(text.find("GPU#1"), std::string::npos);
}

TEST(TimelineLogTest, SpoliationShowsVictim) {
  const Platform platform(1, 1);
  TimelineLog log(true);
  log.record(3.0, TraceKind::kSpoliate, 2, 1, 0);
  const std::string text = log.to_string(platform);
  EXPECT_NE(text.find("spoliate"), std::string::npos);
  EXPECT_NE(text.find("spoliated from CPU#0"), std::string::npos);
}

TEST(TimelineLogTest, AllKindsRender) {
  const Platform platform(1, 1);
  TimelineLog log(true);
  log.record(0.0, TraceKind::kStart, 0, 0);
  log.record(1.0, TraceKind::kAbort, 0, 0);
  log.record(1.0, TraceKind::kSpoliate, 0, 1, 0);
  log.record(2.0, TraceKind::kComplete, 0, 1);
  const std::string text = log.to_string(platform);
  for (const char* word : {"start", "abort", "spoliate", "complete"}) {
    EXPECT_NE(text.find(word), std::string::npos) << word;
  }
}

}  // namespace
}  // namespace hp::sim
