#include <gtest/gtest.h>

#include <map>

#include "dag/validation.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "linalg/qr.hpp"
#include "linalg/tile_dag_builder.hpp"

namespace hp {
namespace {

std::map<KernelKind, int> kind_histogram(const TaskGraph& g) {
  std::map<KernelKind, int> hist;
  for (const Task& t : g.tasks()) ++hist[t.kind];
  return hist;
}

class FactorizationDags : public ::testing::TestWithParam<int> {};

TEST_P(FactorizationDags, CholeskyTaskCounts) {
  const int n = GetParam();
  const TaskGraph g = cholesky_dag(n);
  EXPECT_EQ(g.size(), cholesky_task_count(n));
  const auto hist = kind_histogram(g);
  EXPECT_EQ(hist.at(KernelKind::kPotrf), n);
  if (n > 1) {
    EXPECT_EQ(hist.at(KernelKind::kTrsm), n * (n - 1) / 2);
    EXPECT_EQ(hist.at(KernelKind::kSyrk), n * (n - 1) / 2);
  }
  if (n > 2) {
    EXPECT_EQ(hist.at(KernelKind::kGemm), n * (n - 1) * (n - 2) / 6);
  }
}

TEST_P(FactorizationDags, QrTaskCounts) {
  const int n = GetParam();
  const TaskGraph g = qr_dag(n);
  EXPECT_EQ(g.size(), qr_task_count(n));
  const auto hist = kind_histogram(g);
  EXPECT_EQ(hist.at(KernelKind::kGeqrt), n);
  if (n > 1) {
    EXPECT_EQ(hist.at(KernelKind::kOrmqr), n * (n - 1) / 2);
    EXPECT_EQ(hist.at(KernelKind::kTsqrt), n * (n - 1) / 2);
    EXPECT_EQ(hist.at(KernelKind::kTsmqr), (n - 1) * n * (2 * n - 1) / 6);
  }
}

TEST_P(FactorizationDags, LuTaskCounts) {
  const int n = GetParam();
  const TaskGraph g = lu_dag(n);
  EXPECT_EQ(g.size(), lu_task_count(n));
  const auto hist = kind_histogram(g);
  EXPECT_EQ(hist.at(KernelKind::kGetrf), n);
  if (n > 1) {
    EXPECT_EQ(hist.at(KernelKind::kGessm), n * (n - 1) / 2);
    EXPECT_EQ(hist.at(KernelKind::kTstrf), n * (n - 1) / 2);
    EXPECT_EQ(hist.at(KernelKind::kSsssm), (n - 1) * n * (2 * n - 1) / 6);
  }
}

TEST_P(FactorizationDags, AllThreeAreWellFormed) {
  const int n = GetParam();
  for (const TaskGraph& g : {cholesky_dag(n), qr_dag(n), lu_dag(n)}) {
    const GraphCheck check = check_graph(g);
    EXPECT_TRUE(check.ok) << g.name() << ": " << check.message;
  }
}

TEST_P(FactorizationDags, SingleSourceAndSink) {
  const int n = GetParam();
  for (const TaskGraph& g : {cholesky_dag(n), qr_dag(n), lu_dag(n)}) {
    int sources = 0, sinks = 0;
    for (std::size_t i = 0; i < g.size(); ++i) {
      sources += g.in_degree(static_cast<TaskId>(i)) == 0;
      sinks += g.out_degree(static_cast<TaskId>(i)) == 0;
    }
    EXPECT_EQ(sources, 1) << g.name();
    EXPECT_EQ(sinks, 1) << g.name();
  }
}

INSTANTIATE_TEST_SUITE_P(TileCounts, FactorizationDags,
                         ::testing::Values(1, 2, 3, 4, 6, 10));

TEST(CholeskyStructure, TrsmWaitsForPotrf) {
  // N=2: POTRF(0) -> TRSM(1,0) -> {SYRK(1,0)} -> POTRF(1).
  const TaskGraph g = cholesky_dag(2);
  ASSERT_EQ(g.size(), 4u);
  // Task ids follow generation order: POTRF0=0, TRSM=1, SYRK=2, POTRF1=3.
  EXPECT_EQ(g.task(0).kind, KernelKind::kPotrf);
  EXPECT_EQ(g.task(1).kind, KernelKind::kTrsm);
  EXPECT_EQ(g.task(2).kind, KernelKind::kSyrk);
  EXPECT_EQ(g.task(3).kind, KernelKind::kPotrf);
  const auto succ0 = g.successors(0);
  EXPECT_TRUE(std::find(succ0.begin(), succ0.end(), 1) != succ0.end());
  const auto succ1 = g.successors(1);
  EXPECT_TRUE(std::find(succ1.begin(), succ1.end(), 2) != succ1.end());
  const auto succ2 = g.successors(2);
  EXPECT_TRUE(std::find(succ2.begin(), succ2.end(), 3) != succ2.end());
}

TEST(CholeskyStructure, GemmHasBothPanelPredecessors) {
  // N=3, k=0: GEMM(2,1,0) must depend on TRSM(1,0) and TRSM(2,0).
  const TaskGraph g = cholesky_dag(3);
  // Find the unique GEMM of step 0.
  TaskId gemm = kInvalidTask;
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (g.task(static_cast<TaskId>(i)).kind == KernelKind::kGemm) {
      gemm = static_cast<TaskId>(i);
      break;
    }
  }
  ASSERT_NE(gemm, kInvalidTask);
  int trsm_preds = 0;
  for (TaskId pred : g.predecessors(gemm)) {
    trsm_preds += g.task(pred).kind == KernelKind::kTrsm;
  }
  EXPECT_EQ(trsm_preds, 2);
}

TEST(QrStructure, TsqrtChainIsSequential) {
  // The TSQRT tasks of column 0 form a chain through tile (0,0).
  const TaskGraph g = qr_dag(4);
  std::vector<TaskId> tsqrts;
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (g.task(static_cast<TaskId>(i)).kind == KernelKind::kTsqrt) {
      tsqrts.push_back(static_cast<TaskId>(i));
    }
  }
  // First three TSQRTs belong to k=0 (generation order) and must be chained.
  ASSERT_GE(tsqrts.size(), 3u);
  const auto succ = g.successors(tsqrts[0]);
  EXPECT_TRUE(std::find(succ.begin(), succ.end(), tsqrts[1]) != succ.end());
}

TEST(TileDagBuilderTest, ReadAfterWriteEdge) {
  TileDagBuilder builder("raw");
  const Tile a{0, 0};
  const TaskId writer = builder.add(Task{1.0, 1.0}, {}, {{a}});
  const TaskId reader = builder.add(Task{1.0, 1.0}, {{a}}, {});
  const TaskGraph g = builder.take();
  const auto succ = g.successors(writer);
  EXPECT_TRUE(std::find(succ.begin(), succ.end(), reader) != succ.end());
}

TEST(TileDagBuilderTest, WriteAfterReadEdge) {
  TileDagBuilder builder("war");
  const Tile a{0, 0};
  const TaskId w1 = builder.add(Task{1.0, 1.0}, {}, {{a}});
  const TaskId r = builder.add(Task{1.0, 1.0}, {{a}}, {});
  const TaskId w2 = builder.add(Task{1.0, 1.0}, {}, {{a}});
  const TaskGraph g = builder.take();
  (void)w1;
  const auto succ = g.successors(r);
  EXPECT_TRUE(std::find(succ.begin(), succ.end(), w2) != succ.end());
}

TEST(TileDagBuilderTest, IndependentTilesNoEdge) {
  TileDagBuilder builder("indep");
  builder.add(Task{1.0, 1.0}, {}, {{Tile{0, 0}}});
  builder.add(Task{1.0, 1.0}, {}, {{Tile{1, 1}}});
  const TaskGraph g = builder.take();
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(LinalgDags, TimingModelPropagatesToTasks) {
  const TimingModel model = TimingModel::chameleon_960();
  const TaskGraph g = cholesky_dag(3, model);
  for (const Task& t : g.tasks()) {
    const KernelTiming expect = model.timing(t.kind);
    EXPECT_DOUBLE_EQ(t.cpu_time, expect.cpu);
    EXPECT_DOUBLE_EQ(t.gpu_time, expect.gpu);
  }
}

}  // namespace
}  // namespace hp
