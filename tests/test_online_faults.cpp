// FaultPlan composition with online arrivals (satellite of the online PR):
// task-targeted faults must defer to whenever the task actually runs — a
// plan "event" for a not-yet-arrived task is never dropped, because
// attempt_outcome is pure in (seed, task, attempt) and gets drawn at start
// time. The regression here pins the per-task failure/retry/abandon
// accounting of a staggered run against the all-at-t=0 run of the same
// plan, via the obs:: event streams.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/heteroprio.hpp"
#include "model/generators.hpp"
#include "obs/recorder.hpp"
#include "online/runtime.hpp"
#include "sched/validate.hpp"
#include "util/rng.hpp"

namespace hp {
namespace {

constexpr ScheduleCheckOptions kFaultyRun{
    .tol = 1e-9, .require_complete = false, .exact_durations = false};

std::vector<Task> mixed_tasks(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  const Instance inst = bimodal_instance(n, 0.5, rng);
  return {inst.tasks().begin(), inst.tasks().end()};
}

/// Per-task (failures, retries, abandoned) pulled out of an event stream.
struct TaskFaultTrace {
  std::vector<int> failures;
  std::vector<int> retries;

  explicit TaskFaultTrace(std::size_t n) : failures(n, 0), retries(n, 0) {}

  static TaskFaultTrace from_events(std::span<const obs::Event> events,
                                    std::size_t n) {
    TaskFaultTrace trace(n);
    for (const obs::Event& e : events) {
      if (e.task < 0) continue;
      const auto i = static_cast<std::size_t>(e.task);
      if (e.kind == obs::EventKind::kTaskFail) ++trace.failures[i];
      if (e.kind == obs::EventKind::kTaskRetry) ++trace.retries[i];
    }
    return trace;
  }
};

TEST(OnlineFaults, StaggeredArrivalsSeeTheSameFailureSequence) {
  const std::vector<Task> tasks = mixed_tasks(60, 17);
  const Platform platform(3, 2);
  fault::FaultPlan plan;
  plan.set_task_faults(/*fail_prob=*/0.3, /*max_attempts=*/3,
                       /*retry_backoff=*/0.05, /*seed=*/23);

  // Batch reference: all at t=0.
  obs::EventRecorder batch_events;
  HeteroPrioOptions batch_opts;
  batch_opts.faults = &plan;
  batch_opts.sink = &batch_events;
  HeteroPrioStats batch_stats;
  const Schedule batch = heteroprio(tasks, platform, batch_opts, &batch_stats);

  // Same plan under heavily staggered arrivals.
  const online::ArrivalPlan arrivals =
      online::ArrivalPlan::generate({.rate = 0.5, .seed = 9}, tasks);
  ASSERT_FALSE(arrivals.all_at_origin());
  obs::EventRecorder online_events;
  online::OnlineOptions online_opts;
  online_opts.faults = &plan;
  online_opts.arrivals = &arrivals;
  online_opts.sink = &online_events;
  online::OnlineStats online_stats;
  const Schedule run =
      online::online_run(tasks, platform, online_opts, &online_stats);

  const auto check = check_schedule(run, tasks, platform, kFaultyRun);
  ASSERT_TRUE(check.ok) << check.message;

  // attempt_outcome is pure in (seed, task, attempt): per task, the
  // staggered run fails/retries exactly as often as the batch run, however
  // late the task arrived. (The schedules themselves differ — arrivals
  // change the interleaving — but the fault reality per task does not.)
  const auto batch_trace =
      TaskFaultTrace::from_events(batch_events.events(), tasks.size());
  const auto online_trace =
      TaskFaultTrace::from_events(online_events.events(), tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(batch_trace.failures[i], online_trace.failures[i]) << "task " << i;
    EXPECT_EQ(batch_trace.retries[i], online_trace.retries[i]) << "task " << i;
    // Abandonment is a per-task property of the draws, not of the timing.
    EXPECT_EQ(batch.placements()[i].placed(), run.placements()[i].placed())
        << "task " << i;
  }
  EXPECT_EQ(batch_stats.recovery.task_failures,
            online_stats.recovery.task_failures);
  EXPECT_EQ(batch_stats.recovery.task_retries,
            online_stats.recovery.task_retries);
  EXPECT_EQ(batch_stats.recovery.tasks_abandoned,
            online_stats.recovery.tasks_abandoned);
}

TEST(OnlineFaults, CrashBeforeAnyArrivalIsAppliedNotDropped) {
  // Worker 0 crashes at t=1; the first task arrives at t=5. The crash event
  // targets a worker (wall-clock anchored), so it applies even though no
  // task has arrived — all work lands on the survivor.
  const std::vector<Task> tasks{Task{2.0, 4.0}, Task{2.0, 4.0}};
  const Platform platform(2, 0);
  fault::FaultPlan plan;
  plan.add_crash(0, 1.0);
  online::ArrivalPlan arrivals;
  arrivals.set(0, 5.0);
  arrivals.set(1, 5.0);

  obs::EventRecorder recorder;
  online::OnlineOptions options;
  options.faults = &plan;
  options.arrivals = &arrivals;
  options.sink = &recorder;
  online::OnlineStats stats;
  const Schedule s = online::online_run(tasks, platform, options, &stats);

  EXPECT_EQ(stats.recovery.worker_crashes, 1);
  EXPECT_EQ(stats.recovery.crash_requeues, 0);  // nothing was in flight
  EXPECT_TRUE(s.complete());
  for (const Placement& p : s.placements()) EXPECT_EQ(p.worker, 1);
#ifndef HP_OBS_OFF  // probes compile to nothing without obs
  EXPECT_EQ(recorder.count(obs::EventKind::kWorkerCrash), 1u);
  // The crash precedes the first arrival in the recorded stream.
  const auto& events = recorder.events();
  const auto crash = std::find_if(
      events.begin(), events.end(), [](const obs::Event& e) {
        return e.kind == obs::EventKind::kWorkerCrash;
      });
  const auto arrival = std::find_if(
      events.begin(), events.end(), [](const obs::Event& e) {
        return e.kind == obs::EventKind::kTaskArrival;
      });
  ASSERT_NE(crash, events.end());
  ASSERT_NE(arrival, events.end());
  EXPECT_LT(crash - events.begin(), arrival - events.begin());
#endif  // HP_OBS_OFF
}

TEST(OnlineFaults, LateArrivalStillExhaustsItsRetryBudget) {
  // A task arriving at t=7 whose every attempt fails: the budget and the
  // abandonment accounting must match the batch semantics exactly, just
  // shifted in time.
  const std::vector<Task> tasks{Task{2.0, 2.0}};
  const Platform platform(1, 0);
  fault::FaultPlan plan;
  plan.set_task_faults(1.0, /*max_attempts=*/3, /*retry_backoff=*/0.25,
                       /*seed=*/5);
  online::ArrivalPlan arrivals;
  arrivals.set(0, 7.0);

  online::OnlineOptions options;
  options.faults = &plan;
  options.arrivals = &arrivals;
  online::OnlineStats stats;
  const Schedule s = online::online_run(tasks, platform, options, &stats);

  EXPECT_FALSE(s.complete());
  EXPECT_EQ(stats.recovery.task_failures, 3);
  EXPECT_EQ(stats.recovery.task_retries, 2);
  EXPECT_EQ(stats.recovery.tasks_abandoned, 1);
  EXPECT_EQ(stats.recovery.tasks_unfinished, 1);
  ASSERT_EQ(s.aborted().size(), 3u);
  EXPECT_GE(s.aborted()[0].start, 7.0);  // nothing ran before the arrival
  // Exponential backoff between attempts: 0.25, then 0.5.
  EXPECT_GE(s.aborted()[1].start, s.aborted()[0].abort_time + 0.25 - 1e-9);
  EXPECT_GE(s.aborted()[2].start, s.aborted()[1].abort_time + 0.5 - 1e-9);
}

TEST(OnlineFaults, RespawnsNeverChargeTheRetryBudget) {
  // Estimates 1.0, reality 30.0: the straggler scan keeps rescuing the
  // overdue attempt. With task faults configured (but probability 0 the
  // plan would be empty, so use a tiny one that never fires for task 0),
  // the respawn path must go through backoff without touching
  // failed_attempts — the task is never abandoned no matter how many
  // respawns happen before the budget stops them.
  const std::vector<Task> estimates{Task{1.0, 1.0}};
  const std::vector<Task> actuals{Task{30.0, 30.0}};
  const Platform platform(1, 0);
  fault::FaultPlan plan;
  plan.set_task_faults(1e-12, /*max_attempts=*/2, /*retry_backoff=*/0.5,
                       /*seed=*/3);
  ASSERT_FALSE(plan.empty());

  obs::EventRecorder recorder;
  online::OnlineOptions options;
  options.faults = &plan;
  options.actual_times = actuals;
  options.reschedule_period = 1.0;
  options.straggler_factor = 3.0;
  options.respawn_budget = 4;
  options.sink = &recorder;
  online::OnlineStats stats;
  const Schedule s = online::online_run(estimates, platform, options, &stats);

  EXPECT_EQ(stats.recovery.straggler_respawns, 4);
  EXPECT_EQ(stats.recovery.task_failures, 0);
  EXPECT_EQ(stats.recovery.tasks_abandoned, 0);
  ASSERT_TRUE(s.placements()[0].placed());  // budget exhausted, then it runs
  EXPECT_EQ(s.aborted().size(), 4u);
#ifndef HP_OBS_OFF
  EXPECT_EQ(recorder.count(obs::EventKind::kStragglerRespawn), 4u);
#endif  // HP_OBS_OFF
  EXPECT_EQ(stats.final_mode, online::Mode::kDegraded);
}

TEST(OnlineFaults, CrashTargetingAnUnarrivedTasksWorkerDefersItsEffect) {
  // The crash at t=2 idles worker 0 long before task 0 arrives at t=10.
  // The arrival must then dispatch to the survivor; the fault plan composed
  // with arrivals without dropping or double-applying anything.
  const std::vector<Task> tasks{Task{3.0, 6.0}};
  const Platform platform(2, 0);
  fault::FaultPlan plan;
  plan.add_crash(0, 2.0);
  online::ArrivalPlan arrivals;
  arrivals.set(0, 10.0);

  online::OnlineOptions options;
  options.faults = &plan;
  options.arrivals = &arrivals;
  online::OnlineStats stats;
  const Schedule s = online::online_run(tasks, platform, options, &stats);

  ASSERT_TRUE(s.placements()[0].placed());
  EXPECT_EQ(s.placements()[0].worker, 1);
  EXPECT_DOUBLE_EQ(s.placements()[0].start, 10.0);
  EXPECT_EQ(stats.recovery.worker_crashes, 1);
  EXPECT_EQ(stats.recovery.tasks_unfinished, 0);
}

}  // namespace
}  // namespace hp
