// Regression harness for the optimized HeteroPrio engine: the incremental
// running-set / presorted ready-queue implementation (core/heteroprio.cpp)
// must produce bitwise-identical schedules to the straightforward reference
// engine it replaced (core/heteroprio_ref.cpp) — same placements, same
// aborted segments, same makespans, same counters — on a broad sample of
// random instances, with and without spoliation, in both victim orders, and
// in DAG mode.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/heteroprio.hpp"
#include "core/heteroprio_dag.hpp"
#include "core/heteroprio_ref.hpp"
#include "dag/random_graphs.hpp"
#include "dag/ranking.hpp"
#include "model/generators.hpp"
#include "sched/validate.hpp"
#include "util/rng.hpp"

namespace hp {
namespace {

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void expect_identical(const Schedule& optimized, const Schedule& reference) {
  ASSERT_EQ(optimized.num_tasks(), reference.num_tasks());
  for (std::size_t t = 0; t < reference.num_tasks(); ++t) {
    SCOPED_TRACE("task " + std::to_string(t));
    const Placement& a = optimized.placement(static_cast<TaskId>(t));
    const Placement& b = reference.placement(static_cast<TaskId>(t));
    EXPECT_EQ(a.worker, b.worker);
    EXPECT_TRUE(same_bits(a.start, b.start)) << a.start << " vs " << b.start;
    EXPECT_TRUE(same_bits(a.end, b.end)) << a.end << " vs " << b.end;
  }
  ASSERT_EQ(optimized.aborted().size(), reference.aborted().size());
  for (std::size_t i = 0; i < reference.aborted().size(); ++i) {
    SCOPED_TRACE("aborted segment " + std::to_string(i));
    const AbortedSegment& a = optimized.aborted()[i];
    const AbortedSegment& b = reference.aborted()[i];
    EXPECT_EQ(a.task, b.task);
    EXPECT_EQ(a.worker, b.worker);
    EXPECT_TRUE(same_bits(a.start, b.start));
    EXPECT_TRUE(same_bits(a.abort_time, b.abort_time));
  }
  EXPECT_TRUE(same_bits(optimized.makespan(), reference.makespan()));
}

void expect_same_counters(const HeteroPrioStats& a, const HeteroPrioStats& b) {
  EXPECT_TRUE(same_bits(a.first_idle_time, b.first_idle_time));
  EXPECT_EQ(a.spoliations, b.spoliations);
  // spoliation_attempts intentionally differ: the optimized engine skips
  // (and counts separately) idle scans when the other resource is entirely
  // idle, so optimized attempts + skips >= reference attempts were scanned.
  EXPECT_EQ(a.spoliation_attempts + a.spoliation_skips,
            b.spoliation_attempts + b.spoliation_skips);
}

// 50 random instances x {spoliation on, off}: the ISSUE's regression gate.
TEST(HpRegression, FiftyRandomInstancesMatchReference) {
  for (int inst_idx = 0; inst_idx < 50; ++inst_idx) {
    // Vary the platform and the instance shape with the index.
    const Platform platform(2 + inst_idx % 7, 1 + inst_idx % 3);
    UniformGenParams params;
    params.num_tasks = 5 + static_cast<std::size_t>(inst_idx) * 7;
    params.accel_lo = (inst_idx % 2 == 0) ? 0.2 : 0.05;
    params.accel_hi = 5.0 + 5.0 * (inst_idx % 5);
    util::Rng rng(util::seed_from_cell(
        {static_cast<std::uint64_t>(inst_idx)}, /*salt=*/0x5e6d));
    const Instance inst = uniform_instance(params, rng);

    for (const bool spoliation : {true, false}) {
      SCOPED_TRACE("instance " + std::to_string(inst_idx) + " spoliation=" +
                   std::to_string(spoliation));
      HeteroPrioOptions options;
      options.enable_spoliation = spoliation;
      HeteroPrioStats opt_stats, ref_stats;
      const Schedule optimized =
          heteroprio(inst.tasks(), platform, options, &opt_stats);
      const Schedule reference =
          heteroprio_reference(inst.tasks(), platform, options, &ref_stats);
      expect_identical(optimized, reference);
      expect_same_counters(opt_stats, ref_stats);
      if (!spoliation) EXPECT_TRUE(optimized.aborted().empty());
    }
  }
}

// Both victim orders must survive the queue/running-set rewrite.
TEST(HpRegression, VictimOrdersMatchReference) {
  const Platform platform(6, 2);
  for (int inst_idx = 0; inst_idx < 10; ++inst_idx) {
    UniformGenParams params;
    params.num_tasks = 40 + static_cast<std::size_t>(inst_idx) * 11;
    util::Rng rng(util::seed_from_cell(
        {static_cast<std::uint64_t>(inst_idx)}, /*salt=*/0x7a11));
    const Instance inst = uniform_instance(params, rng);
    for (const VictimOrder order :
         {VictimOrder::kCompletionTime, VictimOrder::kPriority}) {
      SCOPED_TRACE("instance " + std::to_string(inst_idx) + " order=" +
                   std::to_string(static_cast<int>(order)));
      HeteroPrioOptions options;
      options.victim_order = order;
      expect_identical(heteroprio(inst.tasks(), platform, options),
                       heteroprio_reference(inst.tasks(), platform, options));
    }
  }
}

// Imperfect estimates (actual != estimated times) exercise the believed-
// finish bookkeeping: the cached victim keys must still mirror the
// reference's from-scratch recomputation.
TEST(HpRegression, NoisyActualTimesMatchReference) {
  const Platform platform(5, 2);
  for (int inst_idx = 0; inst_idx < 10; ++inst_idx) {
    UniformGenParams params;
    params.num_tasks = 60;
    util::Rng rng(util::seed_from_cell(
        {static_cast<std::uint64_t>(inst_idx)}, /*salt=*/0xacca));
    const Instance inst = uniform_instance(params, rng);
    std::vector<Task> actuals(inst.tasks().begin(), inst.tasks().end());
    for (Task& t : actuals) {
      t.cpu_time *= rng.lognormal(0.0, 0.3);
      t.gpu_time *= rng.lognormal(0.0, 0.3);
    }
    HeteroPrioOptions options;
    options.actual_times = actuals;
    SCOPED_TRACE("instance " + std::to_string(inst_idx));
    expect_identical(heteroprio(inst.tasks(), platform, options),
                     heteroprio_reference(inst.tasks(), platform, options));
  }
}

// DAG mode (set-based ready queue + priority victim order + release events).
TEST(HpRegression, RandomDagsMatchReference) {
  const Platform platform(4, 2);
  for (int inst_idx = 0; inst_idx < 12; ++inst_idx) {
    util::Rng rng(util::seed_from_cell(
        {static_cast<std::uint64_t>(inst_idx)}, /*salt=*/0xda60));
    LayeredDagParams params;
    params.layers = 4 + inst_idx % 4;
    params.width = 5 + inst_idx % 6;
    TaskGraph graph = random_layered_dag(params, rng);
    assign_priorities(graph, RankScheme::kMin);
    for (const bool spoliation : {true, false}) {
      SCOPED_TRACE("dag " + std::to_string(inst_idx) + " spoliation=" +
                   std::to_string(spoliation));
      HeteroPrioOptions options;
      options.enable_spoliation = spoliation;
      const Schedule optimized = heteroprio_dag(graph, platform, options);
      const Schedule reference =
          heteroprio_dag_reference(graph, platform, options);
      expect_identical(optimized, reference);
      EXPECT_TRUE(check_schedule(optimized, graph, platform).ok);
    }
  }
}

}  // namespace
}  // namespace hp
