#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace hp::util {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

class CsvWriterTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "hp_csv_test.csv";
};

TEST_F(CsvWriterTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_, {"a", "b"});
    ASSERT_TRUE(csv.ok());
    csv.write_row({"1", "2"});
    csv.write_row({"x", "y"});
  }
  EXPECT_EQ(slurp(path_), "a,b\n1,2\nx,y\n");
}

TEST_F(CsvWriterTest, EscapesSpecialCharacters) {
  {
    CsvWriter csv(path_, {"v"});
    csv.write_row({"plain"});
    csv.write_row({"has,comma"});
    csv.write_row({"has\"quote"});
  }
  EXPECT_EQ(slurp(path_), "v\nplain\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(CsvWriter::escape("abc"), "abc");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("a\"b"), "\"a\"\"b\"");
  EXPECT_EQ(CsvWriter::escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriterBadPath, ReportsNotOk) {
  CsvWriter csv("/nonexistent-dir-xyz/file.csv", {"a"});
  EXPECT_FALSE(csv.ok());
}

}  // namespace
}  // namespace hp::util
