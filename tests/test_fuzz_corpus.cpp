// Corpus round-trip and the standing tier-1 gate: every checked-in corpus
// file under tests/corpus/ replays green on every scheduler it names.

#include <gtest/gtest.h>

#include "fuzz/corpus.hpp"

#ifndef HP_CORPUS_DIR
#error "HP_CORPUS_DIR must point at tests/corpus"
#endif

namespace hp::fuzz {
namespace {

TEST(FuzzCorpus, RoundTripsThroughText) {
  CorpusCase entry;
  entry.c = generate_case(55, 4);
  entry.schedulers = {SchedulerId::kHp, SchedulerId::kDualHp};
  entry.props = kPropValidity | kPropLowerBound;
  entry.min_ratio = 1.25;

  CorpusCase back;
  std::string error;
  ASSERT_TRUE(corpus_from_text(corpus_to_text(entry), &back, &error)) << error;
  EXPECT_EQ(back.c.platform.cpus(), entry.c.platform.cpus());
  EXPECT_EQ(back.c.platform.gpus(), entry.c.platform.gpus());
  EXPECT_EQ(back.schedulers, entry.schedulers);
  EXPECT_EQ(back.props, entry.props);
  EXPECT_DOUBLE_EQ(back.min_ratio, entry.min_ratio);
  ASSERT_EQ(back.c.graph.size(), entry.c.graph.size());
  EXPECT_EQ(back.c.graph.num_edges(), entry.c.graph.num_edges());
  for (std::size_t i = 0; i < back.c.graph.size(); ++i) {
    // Bitwise: corpus files must reproduce the exact instance, or witness
    // tie-breaking silently changes.
    EXPECT_EQ(back.c.graph.tasks()[i].cpu_time,
              entry.c.graph.tasks()[i].cpu_time);
    EXPECT_EQ(back.c.graph.tasks()[i].gpu_time,
              entry.c.graph.tasks()[i].gpu_time);
    EXPECT_EQ(back.c.graph.tasks()[i].priority,
              entry.c.graph.tasks()[i].priority);
  }
  EXPECT_EQ(back.c.faults, entry.c.faults);
}

TEST(FuzzCorpus, ParDirectiveRoundTripsAndValidates) {
  // A case carrying par_threads emits "# par: threads=N" and reads it back.
  CorpusCase entry;
  entry.c = generate_case(55, 4);
  entry.c.par_threads = 3;
  entry.props = kPropValidity | kPropPar;
  const std::string text = corpus_to_text(entry);
  EXPECT_NE(text.find("# par: threads=3"), std::string::npos) << text;

  CorpusCase back;
  std::string error;
  ASSERT_TRUE(corpus_from_text(text, &back, &error)) << error;
  EXPECT_EQ(back.c.par_threads, 3);
  EXPECT_EQ(back.props, entry.props);

  // par_threads == 0 (the historical default) emits no directive at all,
  // so pre-existing corpus files are byte-stable.
  entry.c.par_threads = 0;
  EXPECT_EQ(corpus_to_text(entry).find("# par:"), std::string::npos);

  // Malformed directives are named, not ignored.
  CorpusCase bad;
  EXPECT_FALSE(
      corpus_from_text("# par: threads=1\ntask 1 1\n", &bad, &error));
  EXPECT_NE(error.find("threads"), std::string::npos) << error;
  EXPECT_FALSE(corpus_from_text("# par: wat=2\ntask 1 1\n", &bad, &error));
  EXPECT_NE(error.find("wat"), std::string::npos) << error;
}

TEST(FuzzCorpus, RejectsMalformedDirectives) {
  CorpusCase out;
  std::string error;
  EXPECT_FALSE(corpus_from_text("# fuzz: cpus=two\ntask 1 1\n", &out, &error));
  EXPECT_NE(error.find("cpus"), std::string::npos);
  EXPECT_FALSE(
      corpus_from_text("# fuzz: schedulers=warp\ntask 1 1\n", &out, &error));
  EXPECT_NE(error.find("warp"), std::string::npos);
  EXPECT_FALSE(corpus_from_text("# fuzz: wat=1\ntask 1 1\n", &out, &error));
  EXPECT_NE(error.find("wat"), std::string::npos);
  EXPECT_FALSE(corpus_from_text("# fuzz: cpus=1\n", &out, &error));
  EXPECT_NE(error.find("no tasks"), std::string::npos);
  EXPECT_FALSE(
      corpus_from_text("# fuzz: cpus=0 gpus=0\ntask 1 1\n", &out, &error));
  EXPECT_NE(error.find("workers"), std::string::npos);
}

TEST(FuzzCorpus, MinRatioViolationIsReported) {
  CorpusCase entry;
  std::string error;
  ASSERT_TRUE(corpus_from_text(
      "# fuzz: cpus=1 gpus=1 schedulers=hp props=validity\n"
      "# fuzz: min-ratio=10\n"
      "task 1 2\n",
      &entry, &error))
      << error;
  const CorpusVerdict verdict = replay_corpus_case(entry);
  ASSERT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.failures.front().property, "min-ratio");
}

TEST(FuzzCorpus, EmbeddedFaultPlansRoundTrip) {
  CorpusCase entry;
  std::string error;
  ASSERT_TRUE(corpus_from_text(
      "# fuzz: cpus=2 gpus=1\n"
      "# hpf: faultplan v1\n"
      "# hpf: seed 9\n"
      "# hpf: task-fail-prob 0.5\n"
      "# hpf: max-attempts 3\n"
      "# hpf: retry-backoff 0\n"
      "# hpf: crash 1 2.5\n"
      "task 1 2\ntask 2 1\n",
      &entry, &error))
      << error;
  ASSERT_TRUE(entry.c.has_faults());
  ASSERT_EQ(entry.c.faults.crashes().size(), 1u);
  EXPECT_EQ(entry.c.faults.crashes()[0].worker, 1);
  EXPECT_EQ(entry.c.faults.max_attempts(), 3);
}

TEST(FuzzCorpus, CheckedInCorpusReplaysGreen) {
  const std::vector<std::string> files = list_corpus_files(HP_CORPUS_DIR);
  ASSERT_FALSE(files.empty()) << "no corpus files under " << HP_CORPUS_DIR;
  for (const std::string& path : files) {
    CorpusCase entry;
    std::string error;
    ASSERT_TRUE(load_corpus_file(path, &entry, &error)) << error;
    const CorpusVerdict verdict = replay_corpus_case(entry);
    EXPECT_GT(verdict.properties_checked, 0) << path;
    for (const PropertyFailure& f : verdict.failures) {
      ADD_FAILURE() << path << ": " << f.property << " [" << f.scheduler
                    << "] " << f.detail;
    }
  }
}

}  // namespace
}  // namespace hp::fuzz
