#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace hp::util {
namespace {

TEST(Stats, MeanOfKnownValues) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
}

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, GeometricMeanOfKnownValues) {
  const std::vector<double> v{1.0, 4.0};
  EXPECT_NEAR(geometric_mean(v), 2.0, 1e-12);
}

TEST(Stats, GeometricMeanEmptyIsZero) {
  EXPECT_DOUBLE_EQ(geometric_mean(std::vector<double>{}), 0.0);
}

TEST(Stats, QuantileEndpoints) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 5.0);
}

TEST(Stats, QuantileClampsOutOfRange) {
  const std::vector<double> v{3.0, 7.0};
  EXPECT_DOUBLE_EQ(quantile(v, -1.0), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 2.0), 7.0);
}

TEST(Stats, SummarizeKnownSample) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, SummarizeEmpty) {
  const Summary s = summarize(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, SummarizeSingleValue) {
  const Summary s = summarize(std::vector<double>{42.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.median, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(OnlineStatsTest, MatchesBatchSummary) {
  const std::vector<double> v{1.5, -2.0, 3.25, 0.0, 10.0, 4.5};
  OnlineStats online;
  for (double x : v) online.add(x);
  const Summary batch = summarize(v);
  EXPECT_EQ(online.count(), batch.count);
  EXPECT_NEAR(online.mean(), batch.mean, 1e-12);
  EXPECT_NEAR(online.stddev(), batch.stddev, 1e-12);
  EXPECT_DOUBLE_EQ(online.min(), batch.min);
  EXPECT_DOUBLE_EQ(online.max(), batch.max);
}

TEST(OnlineStatsTest, SingleValueVarianceZero) {
  OnlineStats online;
  online.add(5.0);
  EXPECT_DOUBLE_EQ(online.variance(), 0.0);
  EXPECT_DOUBLE_EQ(online.mean(), 5.0);
}

}  // namespace
}  // namespace hp::util
