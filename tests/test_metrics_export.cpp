// Exporter round-trips of the metrics layer: Prometheus text exposition
// (validity, quantile series, counter import), collapsed-stack flamegraph
// format, Chrome trace running-set tracks and metrics rollup, queue-depth
// samples of replayed schedules, and the bitwise-identity guarantee of
// attaching a MetricsCollector to the engines.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/dualhp.hpp"
#include "baselines/heft.hpp"
#include "core/heteroprio.hpp"
#include "model/generators.hpp"
#include "obs/counters.hpp"
#include "obs/derive.hpp"
#include "obs/export_chrome.hpp"
#include "obs/export_flame.hpp"
#include "obs/export_prometheus.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/recorder.hpp"
#include "obs/replay.hpp"
#include "util/rng.hpp"

namespace hp {
namespace {

Instance test_instance(std::size_t n, std::uint64_t seed = 42) {
  util::Rng rng(seed);
  return uniform_instance({.num_tasks = n}, rng);
}

TEST(Prometheus, ExpositionIsValidAndCarriesQuantiles) {
  obs::MetricsRegistry registry;
  registry.counter("tasks_completed") = 128.0;
  registry.gauge("peak ready depth") = 7.0;  // space must be sanitized
  obs::Histogram& wait = registry.histogram("queue_wait");
  for (int i = 1; i <= 100; ++i) wait.record(0.01 * i);

  const std::string text = obs::prometheus_text(registry);
  std::string error;
  EXPECT_TRUE(obs::validate_prometheus_text(text, &error)) << error;
  EXPECT_NE(text.find("# TYPE hp_tasks_completed counter"), std::string::npos);
  EXPECT_NE(text.find("hp_tasks_completed 128"), std::string::npos);
  EXPECT_NE(text.find("# TYPE hp_peak_ready_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE hp_queue_wait histogram"), std::string::npos);
  EXPECT_NE(text.find("hp_queue_wait_bucket{le=\"+Inf\"} 100"),
            std::string::npos);
  EXPECT_NE(text.find("hp_queue_wait_count 100"), std::string::npos);
  EXPECT_NE(text.find("hp_queue_wait_quantile{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("hp_queue_wait_quantile{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("hp_queue_wait_max"), std::string::npos);
}

TEST(Prometheus, ValidatorRejectsMalformedDocuments) {
  std::string error;
  // Sample without a preceding # TYPE declaration.
  EXPECT_FALSE(obs::validate_prometheus_text("hp_x 1\n", &error));
  // Garbage line.
  EXPECT_FALSE(obs::validate_prometheus_text(
      "# TYPE hp_x counter\nnot a sample!\n", &error));
  // Declared family without any sample.
  EXPECT_FALSE(obs::validate_prometheus_text("# TYPE hp_x counter\n", &error));
  // Illegal metric name.
  EXPECT_FALSE(obs::validate_prometheus_text(
      "# TYPE hp-x counter\nhp-x 1\n", &error));
}

TEST(Prometheus, EmptyRegistryYieldsInvalidDocument) {
  const obs::MetricsRegistry registry;
  const std::string text = obs::prometheus_text(registry);
  std::string error;
  EXPECT_FALSE(obs::validate_prometheus_text(text, &error));
}

TEST(Flame, CollapsedStacksAreSortedFoldedLines) {
  obs::TickClock clock;
  obs::MetricsCollector collector(&clock);
  for (int i = 0; i < 3; ++i) {
    const obs::PhaseScope engine(&collector, obs::Phase::kEngine);
    const obs::PhaseScope sort(&collector, obs::Phase::kSort);
  }
  const std::string folded = obs::collapsed_stacks(collector);
  ASSERT_FALSE(folded.empty());

  std::istringstream lines(folded);
  std::string line;
  std::vector<std::string> stacks;
  while (std::getline(lines, line)) {
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string frames = line.substr(0, space);
    const std::string weight = line.substr(space + 1);
    EXPECT_FALSE(frames.empty()) << line;
    // Weight is a positive integer.
    ASSERT_FALSE(weight.empty()) << line;
    for (const char c : weight) EXPECT_TRUE(c >= '0' && c <= '9') << line;
    EXPECT_NE(weight, "0") << line;
    stacks.push_back(frames);
  }
  EXPECT_TRUE(std::is_sorted(stacks.begin(), stacks.end()));
  EXPECT_NE(std::find(stacks.begin(), stacks.end(), "engine;sort"),
            stacks.end());
}

TEST(Flame, EmptyCollectorYieldsEmptyOutput) {
  const obs::MetricsCollector collector;
  EXPECT_EQ(obs::collapsed_stacks(collector), "");
}

TEST(Chrome, EmitsRunningTracksAndMetricsRollup) {
  const Instance inst = test_instance(40);
  const Platform platform(3, 1);
  obs::EventRecorder recorder;
  HeteroPrioOptions options;
  options.sink = &recorder;
  const Schedule schedule = heteroprio(inst.tasks(), platform, options);

  obs::CounterRegistry counters = obs::registry_from(
      obs::counters_from_events(recorder.events(), platform));
  obs::MetricsRegistry metrics;
  obs::derive_metrics(recorder.events(), platform, &metrics);

  obs::ChromeTraceOptions trace_options;
  trace_options.counters = &counters;
  trace_options.metrics = &metrics;
  const std::string json = obs::chrome_trace_from_events(
      recorder.events(), platform, inst.tasks(), trace_options);

  std::string error;
  EXPECT_TRUE(obs::validate_chrome_trace(json, platform, &error)) << error;
  EXPECT_NE(json.find("\"running_cpu\""), std::string::npos);
  EXPECT_NE(json.find("\"running_gpu\""), std::string::npos);
  EXPECT_NE(json.find("\"hp_metrics_rollup\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  // Without registries the rollup is absent but the tracks remain.
  const std::string plain =
      obs::chrome_trace_from_events(recorder.events(), platform, inst.tasks());
  EXPECT_EQ(plain.find("hp_metrics_rollup"), std::string::npos);
  EXPECT_NE(plain.find("\"running_cpu\""), std::string::npos);
}

TEST(Replay, ReplayedSchedulesCarryQueueDepthSamples) {
  const Instance inst = test_instance(12);
  const Platform platform(2, 1);
  const Schedule schedule = heft_independent(inst.tasks(), platform);
  const std::vector<obs::Event> events =
      obs::replay_schedule(schedule, platform);

  int samples = 0;
  double last = -1.0;
  double peak = 0.0;
  for (const obs::Event& e : events) {
    if (e.kind != obs::EventKind::kQueueDepth) continue;
    ++samples;
    EXPECT_GE(e.value, 0.0);
    EXPECT_NE(e.value, last) << "samples must only be emitted on change";
    last = e.value;
    peak = std::max(peak, e.value);
  }
  ASSERT_GT(samples, 0);
  // A Schedule does not record decision times, so replay approximates each
  // task's ready instant by its start instant: with 12 tasks on 3 idle
  // workers, the t=0 batch is exactly the 3 tasks starting then.
  EXPECT_GE(peak, 3.0);
}

TEST(Derive, EventStreamYieldsDistributionHistograms) {
  const Instance inst = test_instance(60);
  const Platform platform(3, 1);
  obs::EventRecorder recorder;
  HeteroPrioOptions options;
  options.sink = &recorder;
  (void)heteroprio(inst.tasks(), platform, options);

  obs::MetricsRegistry registry;
  obs::derive_metrics(recorder.events(), platform, &registry);
  ASSERT_NE(registry.find_histogram("queue_wait"), nullptr);
  EXPECT_GT(registry.find_histogram("queue_wait")->count(), 0u);
  ASSERT_NE(registry.find_histogram("task_duration"), nullptr);
  EXPECT_EQ(registry.find_histogram("task_duration")->count(), 60u);
  ASSERT_NE(registry.find_histogram("busy_time_cpu"), nullptr);
  EXPECT_EQ(registry.find_histogram("busy_time_cpu")->count(), 3u);
  ASSERT_NE(registry.find_histogram("busy_time_gpu"), nullptr);
  EXPECT_EQ(registry.find_histogram("busy_time_gpu")->count(), 1u);
}

TEST(Derive, CounterRegistryImportsAsGauges) {
  const Instance inst = test_instance(30);
  const Platform platform(2, 1);
  obs::EventRecorder recorder;
  HeteroPrioOptions options;
  options.sink = &recorder;
  (void)heteroprio(inst.tasks(), platform, options);

  const obs::CounterRegistry counters = obs::registry_from(
      obs::counters_from_events(recorder.events(), platform));
  obs::MetricsRegistry registry;
  obs::import_counter_registry(counters, &registry);
  EXPECT_FALSE(registry.empty());
  ASSERT_NE(registry.find_gauge("tasks_completed"), nullptr);
  EXPECT_DOUBLE_EQ(*registry.find_gauge("tasks_completed"), 30.0);
}

/// Placements must match exactly — attaching a collector may not change
/// one bit of the schedule.
void expect_identical(const Schedule& a, const Schedule& b) {
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  for (std::size_t i = 0; i < a.num_tasks(); ++i) {
    const auto id = static_cast<TaskId>(i);
    EXPECT_EQ(a.placement(id).worker, b.placement(id).worker) << i;
    EXPECT_EQ(a.placement(id).start, b.placement(id).start) << i;
    EXPECT_EQ(a.placement(id).end, b.placement(id).end) << i;
  }
  EXPECT_EQ(a.spoliation_count(), b.spoliation_count());
}

TEST(Engine, HeteroPrioIsBitwiseIdenticalWithCollector) {
  const Instance inst = test_instance(300, 7);
  const Platform platform(4, 2);
  const Schedule plain = heteroprio(inst.tasks(), platform);
  obs::MetricsCollector collector;
  HeteroPrioOptions options;
  options.metrics = &collector;
  const Schedule instrumented = heteroprio(inst.tasks(), platform, options);
  expect_identical(plain, instrumented);
#ifndef HP_OBS_OFF
  EXPECT_EQ(collector.stats(obs::Phase::kEngine).calls, 1u);
  EXPECT_GT(collector.stats(obs::Phase::kDispatch).calls, 0u);
#endif
}

TEST(Engine, HeftIsBitwiseIdenticalWithCollector) {
  const Instance inst = test_instance(200, 9);
  const Platform platform(4, 2);
  const Schedule plain = heft_independent(inst.tasks(), platform);
  obs::MetricsCollector collector;
  const Schedule instrumented =
      heft_independent(inst.tasks(), platform, {.metrics = &collector});
  expect_identical(plain, instrumented);
#ifndef HP_OBS_OFF
  EXPECT_EQ(collector.stats(obs::Phase::kEngine).calls, 1u);
  EXPECT_GT(collector.stats(obs::Phase::kHeftRank).calls, 0u);
#endif
}

TEST(Engine, DualHpIsBitwiseIdenticalWithCollector) {
  const Instance inst = test_instance(150, 11);
  const Platform platform(4, 2);
  const Schedule plain = dualhp(inst.tasks(), platform);
  obs::MetricsCollector collector;
  const Schedule instrumented =
      dualhp(inst.tasks(), platform, {.metrics = &collector});
  expect_identical(plain, instrumented);
#ifndef HP_OBS_OFF
  EXPECT_GT(collector.stats(obs::Phase::kDualHpBisection).calls, 0u);
#endif
}

}  // namespace
}  // namespace hp
