#include "baselines/graham.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "worstcase/graham_gadget.hpp"

namespace hp {
namespace {

TEST(Graham, SingleMachineSerializes) {
  const std::vector<double> d{1.0, 2.0, 3.0};
  const ListScheduleResult res = list_schedule_homogeneous(d, 1);
  EXPECT_DOUBLE_EQ(res.makespan, 6.0);
  EXPECT_DOUBLE_EQ(res.start[0], 0.0);
  EXPECT_DOUBLE_EQ(res.start[2], 3.0);
}

TEST(Graham, TwoMachinesInterleave) {
  const std::vector<double> d{3.0, 1.0, 1.0, 1.0};
  const ListScheduleResult res = list_schedule_homogeneous(d, 2);
  // Machine 0: task0 [0,3]; machine 1: tasks 1,2,3 [0,3].
  EXPECT_DOUBLE_EQ(res.makespan, 3.0);
}

TEST(Graham, MachineAssignmentsValid) {
  const std::vector<double> d{2.0, 2.0, 2.0, 2.0, 2.0};
  const ListScheduleResult res = list_schedule_homogeneous(d, 3);
  for (int mach : res.machine) {
    EXPECT_GE(mach, 0);
    EXPECT_LT(mach, 3);
  }
  EXPECT_DOUBLE_EQ(res.makespan, 4.0);
}

TEST(Graham, LptNoWorseThanArbitraryOrderHere) {
  const std::vector<double> d{1.0, 1.0, 1.0, 3.0};
  const ListScheduleResult natural = list_schedule_homogeneous(d, 2);
  const ListScheduleResult lpt = lpt_schedule_homogeneous(d, 2);
  EXPECT_DOUBLE_EQ(natural.makespan, 4.0);  // 3 starts late
  EXPECT_DOUBLE_EQ(lpt.makespan, 3.0);
  EXPECT_LE(lpt.makespan, natural.makespan);
}

TEST(Graham, LptPreservesTaskIndexing) {
  const std::vector<double> d{1.0, 5.0, 2.0};
  const ListScheduleResult lpt = lpt_schedule_homogeneous(d, 2);
  // Task 1 (longest) starts at 0.
  EXPECT_DOUBLE_EQ(lpt.start[1], 0.0);
  for (int mach : lpt.machine) EXPECT_GE(mach, 0);
}

TEST(GadgetTest, StructureMatchesPaper) {
  for (int k : {1, 2, 4}) {
    const GrahamGadget g = graham_gadget(k);
    EXPECT_EQ(g.machines, 6 * k);
    EXPECT_EQ(g.durations.size(), static_cast<std::size_t>(12 * k + 1));
    // Six tasks of each length 2k+i, one of length 6k.
    for (int i = 0; i < 2 * k; ++i) {
      int count = 0;
      for (double d : g.durations) count += (d == 2 * k + i);
      EXPECT_EQ(count, 6) << "length " << 2 * k + i;
    }
    EXPECT_DOUBLE_EQ(g.durations.back(), 6.0 * k);
  }
}

TEST(GadgetTest, OptimalAssignmentLoadsExactlyN) {
  for (int k : {1, 2, 3, 5}) {
    const GrahamGadget g = graham_gadget(k);
    std::vector<double> load(static_cast<std::size_t>(g.machines), 0.0);
    for (std::size_t t = 0; t < g.durations.size(); ++t) {
      ASSERT_GE(g.optimal_assignment[t], 0);
      ASSERT_LT(g.optimal_assignment[t], g.machines);
      load[static_cast<std::size_t>(g.optimal_assignment[t])] += g.durations[t];
    }
    for (double l : load) EXPECT_DOUBLE_EQ(l, 6.0 * k);
  }
}

TEST(GadgetTest, WorstOrderReachesTwoNMinusOne) {
  for (int k : {1, 2, 3, 5}) {
    const GrahamGadget g = graham_gadget(k);
    const auto worst = worst_order_durations(g);
    ASSERT_EQ(worst.size(), g.durations.size());
    const ListScheduleResult res = list_schedule_homogeneous(worst, g.machines);
    EXPECT_DOUBLE_EQ(res.makespan, 2.0 * g.machines - 1.0);
  }
}

TEST(GadgetTest, WorstOrderIsPermutation) {
  const GrahamGadget g = graham_gadget(3);
  std::vector<bool> seen(g.durations.size(), false);
  for (std::size_t idx : g.worst_order) {
    ASSERT_LT(idx, seen.size());
    EXPECT_FALSE(seen[idx]);
    seen[idx] = true;
  }
}

}  // namespace
}  // namespace hp
