#include "linalg/fmm.hpp"

#include <gtest/gtest.h>

#include <map>

#include "bounds/dag_lower_bound.hpp"
#include "core/heteroprio_dag.hpp"
#include "dag/ranking.hpp"
#include "dag/validation.hpp"
#include "sched/validate.hpp"

namespace hp {
namespace {

std::map<KernelKind, int> kind_histogram(const TaskGraph& g) {
  std::map<KernelKind, int> hist;
  for (const Task& t : g.tasks()) ++hist[t.kind];
  return hist;
}

TEST(Fmm, TaskCountMatchesFormula) {
  for (int depth : {3, 4, 5}) {
    for (int branching : {4, 8}) {
      FmmParams params;
      params.depth = depth;
      params.branching = branching;
      const TaskGraph g = fmm_dag(params);
      EXPECT_EQ(g.size(), fmm_task_count(params))
          << "depth " << depth << " b " << branching;
    }
  }
}

TEST(Fmm, PhaseCounts) {
  FmmParams params;
  params.depth = 4;
  params.branching = 4;  // quadtree: levels 1,4,16,64 cells
  const TaskGraph g = fmm_dag(params);
  const auto hist = kind_histogram(g);
  EXPECT_EQ(hist.at(KernelKind::kP2M), 64);
  EXPECT_EQ(hist.at(KernelKind::kM2M), 1 + 4 + 16);
  EXPECT_EQ(hist.at(KernelKind::kM2L), 16 + 64);
  EXPECT_EQ(hist.at(KernelKind::kL2L), 16 + 64);
  EXPECT_EQ(hist.at(KernelKind::kL2P), 64);
  EXPECT_EQ(hist.at(KernelKind::kP2P), 64);
}

TEST(Fmm, WellFormedDag) {
  FmmParams params;
  params.depth = 4;
  const TaskGraph g = fmm_dag(params);
  const GraphCheck check = check_graph(g);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(Fmm, P2PTasksAreIndependentSources) {
  FmmParams params;
  params.depth = 3;
  params.branching = 4;
  const TaskGraph g = fmm_dag(params);
  int p2p_sources = 0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    const auto id = static_cast<TaskId>(i);
    if (g.task(id).kind == KernelKind::kP2P) {
      EXPECT_EQ(g.in_degree(id), 0u);
      EXPECT_EQ(g.out_degree(id), 0u);
      ++p2p_sources;
    }
  }
  EXPECT_EQ(p2p_sources, 16);
}

TEST(Fmm, UpwardPassOrdering) {
  // Every M2M depends on exactly `branching` children.
  FmmParams params;
  params.depth = 3;
  params.branching = 4;
  const TaskGraph g = fmm_dag(params);
  for (std::size_t i = 0; i < g.size(); ++i) {
    const auto id = static_cast<TaskId>(i);
    if (g.task(id).kind == KernelKind::kM2M) {
      EXPECT_EQ(g.in_degree(id), 4u);
    }
  }
}

TEST(Fmm, L2PDependsOnDownwardPass) {
  FmmParams params;
  params.depth = 3;
  params.branching = 4;
  const TaskGraph g = fmm_dag(params);
  for (std::size_t i = 0; i < g.size(); ++i) {
    const auto id = static_cast<TaskId>(i);
    if (g.task(id).kind == KernelKind::kL2P) {
      ASSERT_EQ(g.in_degree(id), 1u);
      EXPECT_EQ(g.task(g.predecessors(id)[0]).kind, KernelKind::kL2L);
    }
  }
}

TEST(Fmm, InteractionListRespectsRequestedSize) {
  FmmParams params;
  params.depth = 4;
  params.branching = 8;
  params.interactions = 6;
  const TaskGraph g = fmm_dag(params);
  for (std::size_t i = 0; i < g.size(); ++i) {
    const auto id = static_cast<TaskId>(i);
    if (g.task(id).kind == KernelKind::kM2L) {
      EXPECT_LE(g.in_degree(id), 6u);
      EXPECT_GE(g.in_degree(id), 1u);
    }
  }
}

TEST(Fmm, HeteroPrioSchedulesCloseToBound) {
  // The original HeteroPrio success story: CPUs soak up the tree passes,
  // GPUs chew through P2P/M2L.
  FmmParams params;
  params.depth = 4;
  TaskGraph g = fmm_dag(params);
  assign_priorities(g, RankScheme::kMin);
  const Platform platform(20, 4);
  const Schedule s = heteroprio_dag(g, platform);
  const auto check = check_schedule(s, g, platform);
  ASSERT_TRUE(check.ok) << check.message;
  const double lb = dag_lower_bound(g, platform).value();
  EXPECT_LE(s.makespan(), 1.3 * lb);
}

}  // namespace
}  // namespace hp
