// Semantics of the per-run scratch arena (util/arena.hpp): bump allocation,
// mark/rewind stack discipline, ArenaScope RAII, footprint accounting, and
// the ArenaVector container every scheduler engine builds its scratch from.

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "util/arena.hpp"

namespace hp::util {
namespace {

TEST(Arena, AllocReturnsAlignedWritableMemory) {
  Arena arena(1 << 12);
  double* d = arena.alloc<double>(16);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
  for (int i = 0; i < 16; ++i) d[i] = i * 1.5;
  for (int i = 0; i < 16; ++i) EXPECT_EQ(d[i], i * 1.5);

  // Mixed alignments interleave without aliasing.
  char* c = arena.alloc<char>(3);
  std::uint64_t* q = arena.alloc<std::uint64_t>(2);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q) % alignof(std::uint64_t), 0u);
  c[0] = 'x';
  q[0] = ~0ull;
  EXPECT_EQ(c[0], 'x');
}

TEST(Arena, AllocZeroedIsZero) {
  Arena arena(256);
  // Force several blocks so zeroing is tested across growth.
  for (int round = 0; round < 4; ++round) {
    const auto span = arena.alloc_zeroed<std::uint64_t>(100);
    ASSERT_EQ(span.size(), 100u);
    for (const std::uint64_t v : span) EXPECT_EQ(v, 0u);
    for (auto& v : span) v = 0xdeadbeef;  // dirty for the next rewind/reuse
  }
}

TEST(Arena, RewindReusesMemory) {
  Arena arena(1 << 12);
  const Arena::Mark m = arena.mark();
  int* first = arena.alloc<int>(64);
  arena.rewind(m);
  int* second = arena.alloc<int>(64);
  // Same block, same offset: the rewind reclaimed the allocation.
  EXPECT_EQ(first, second);
}

TEST(Arena, ResetReclaimsEverythingWithoutFreeing) {
  Arena arena(128);
  (void)arena.alloc<double>(4096);  // forces extra blocks
  const std::size_t reserved = arena.reserved_bytes();
  EXPECT_GT(reserved, 0u);
  arena.reset();
  // Capacity is retained for reuse...
  EXPECT_EQ(arena.reserved_bytes(), reserved);
  // ...and the next allocation does not grow it.
  (void)arena.alloc<double>(4096);
  EXPECT_EQ(arena.reserved_bytes(), reserved);
}

TEST(Arena, HighWaterTracksPeakLiveBytes) {
  Arena arena(1 << 12);
  EXPECT_EQ(arena.high_water_bytes(), 0u);
  (void)arena.alloc<char>(100);
  const std::size_t after_first = arena.high_water_bytes();
  EXPECT_GE(after_first, 100u);
  arena.reset();
  // Rewinding never lowers the high-water mark.
  EXPECT_EQ(arena.high_water_bytes(), after_first);
  (void)arena.alloc<char>(5000);
  EXPECT_GE(arena.high_water_bytes(), 5000u);
}

TEST(Arena, ScopesNestLifo) {
  Arena arena(1 << 12);
  int* outer = nullptr;
  int* inner = nullptr;
  {
    const ArenaScope outer_scope(arena);
    outer = arena.alloc<int>(8);
    {
      const ArenaScope inner_scope(arena);
      inner = arena.alloc<int>(8);
      EXPECT_NE(inner, outer);
    }
    // Inner scope closed: its allocation is recycled in place.
    EXPECT_EQ(arena.alloc<int>(8), inner);
  }
  // Outer scope closed: everything is recycled.
  EXPECT_EQ(arena.alloc<int>(8), outer);
}

TEST(Arena, ScratchArenaIsPerThread) {
  Arena* main_arena = &scratch_arena();
  Arena* worker_arena = nullptr;
  std::thread worker([&] { worker_arena = &scratch_arena(); });
  worker.join();
  ASSERT_NE(worker_arena, nullptr);
  EXPECT_NE(main_arena, worker_arena);
  // Same thread, same arena.
  EXPECT_EQ(main_arena, &scratch_arena());
}

TEST(ArenaVector, PushBackMatchesStdVector) {
  Arena arena(1 << 10);
  ArenaVector<int> v(arena);
  std::vector<int> model;
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 1000; ++i) {  // crosses several growth doublings
    v.push_back(i * 7);
    model.push_back(i * 7);
  }
  ASSERT_EQ(v.size(), model.size());
  for (std::size_t i = 0; i < model.size(); ++i) EXPECT_EQ(v[i], model[i]);
  EXPECT_EQ(v.back(), model.back());
  v.pop_back();
  EXPECT_EQ(v.size(), model.size() - 1);
}

TEST(ArenaVector, InsertEraseMatchStdVector) {
  Arena arena(1 << 10);
  ArenaVector<int> v(arena);
  std::vector<int> model;
  // Deterministic pseudo-random positions.
  std::uint64_t state = 42;
  const auto next = [&](std::uint64_t bound) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return (state >> 33) % (bound + 1);
  };
  for (int i = 0; i < 200; ++i) {
    const std::size_t at = next(model.size());
    v.insert(v.begin() + at, i);
    model.insert(model.begin() + static_cast<std::ptrdiff_t>(at), i);
  }
  for (int i = 0; i < 100; ++i) {
    const std::size_t at = next(model.size() - 1);
    v.erase(v.begin() + at);
    model.erase(model.begin() + static_cast<std::ptrdiff_t>(at));
  }
  ASSERT_EQ(v.size(), model.size());
  for (std::size_t i = 0; i < model.size(); ++i) EXPECT_EQ(v[i], model[i]);
}

TEST(ArenaVector, InsertAtFullCapacityRelocates) {
  Arena arena(1 << 10);
  ArenaVector<int> v(arena, 4);
  for (int i = 0; i < 4; ++i) v.push_back(i);
  // size == capacity: insert must grow first, then place at the old index.
  v.insert(v.begin() + 2, 99);
  ASSERT_EQ(v.size(), 5u);
  const int want[] = {0, 1, 99, 2, 3};
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(v[i], want[i]);
}

TEST(ArenaVector, ResizeReserveSpan) {
  Arena arena(1 << 10);
  ArenaVector<double> v(arena);
  v.reserve(32);
  v.resize(8);
  EXPECT_EQ(v.size(), 8u);
  std::iota(v.begin(), v.end(), 0.0);
  const std::span<const double> s = std::as_const(v).span();
  ASSERT_EQ(s.size(), 8u);
  EXPECT_EQ(s[7], 7.0);
  v.clear();
  EXPECT_TRUE(v.empty());
}

}  // namespace
}  // namespace hp::util
