#include "bounds/dag_lower_bound.hpp"

#include <gtest/gtest.h>

#include "linalg/cholesky.hpp"

namespace hp {
namespace {

TEST(DagLowerBoundTest, ChainIsCriticalPathBound) {
  TaskGraph g("chain");
  const TaskId a = g.add_task(Task{4.0, 2.0});
  const TaskId b = g.add_task(Task{6.0, 3.0});
  g.add_edge(a, b);
  g.finalize();
  const DagLowerBound lb = dag_lower_bound(g, Platform(4, 4));
  EXPECT_DOUBLE_EQ(lb.critical_path, 5.0);  // min times 2 + 3
  EXPECT_DOUBLE_EQ(lb.max_min_time, 3.0);
  EXPECT_DOUBLE_EQ(lb.value(), 5.0);
}

TEST(DagLowerBoundTest, WideGraphIsAreaBound) {
  TaskGraph g("wide");
  for (int i = 0; i < 100; ++i) g.add_task(Task{2.0, 1.0});
  g.finalize();
  const Platform platform(1, 1);
  const DagLowerBound lb = dag_lower_bound(g, platform);
  EXPECT_GT(lb.area, lb.critical_path);
  EXPECT_DOUBLE_EQ(lb.value(), lb.area);
}

TEST(DagLowerBoundTest, ValueIsMaxOfComponents) {
  DagLowerBound lb;
  lb.area = 3.0;
  lb.critical_path = 5.0;
  lb.max_min_time = 4.0;
  EXPECT_DOUBLE_EQ(lb.value(), 5.0);
}

TEST(DagLowerBoundTest, CholeskyBoundPositiveAndConsistent) {
  const TaskGraph g = cholesky_dag(8);
  const Platform platform(20, 4);
  const DagLowerBound lb = dag_lower_bound(g, platform);
  EXPECT_GT(lb.area, 0.0);
  EXPECT_GT(lb.critical_path, 0.0);
  EXPECT_GE(lb.value(), lb.area);
  EXPECT_GE(lb.value(), lb.critical_path);
}

TEST(DagLowerBoundTest, MoreResourcesShrinkAreaNotCp) {
  const TaskGraph g = cholesky_dag(6);
  const DagLowerBound small = dag_lower_bound(g, Platform(2, 1));
  const DagLowerBound big = dag_lower_bound(g, Platform(20, 8));
  EXPECT_GT(small.area, big.area);
  EXPECT_DOUBLE_EQ(small.critical_path, big.critical_path);
}

}  // namespace
}  // namespace hp
