#include "core/heteroprio_dag.hpp"

#include <gtest/gtest.h>

#include "bounds/dag_lower_bound.hpp"
#include "dag/ranking.hpp"
#include "linalg/cholesky.hpp"
#include "sched/validate.hpp"

namespace hp {
namespace {

TEST(HeteroPrioDag, ChainRunsEachTaskOnItsBestResource) {
  // A chain of one CPU-friendly and one GPU-friendly task: spoliation pulls
  // the CPU-friendly one off the GPU immediately, so the makespan is the
  // sum of min times.
  TaskGraph g("chain");
  const TaskId a = g.add_task(Task{1.0, 6.0});
  const TaskId b = g.add_task(Task{8.0, 2.0});
  g.add_edge(a, b);
  g.finalize();
  const Platform platform(1, 1);
  const Schedule s = heteroprio_dag(g, platform);
  const auto check = check_schedule(s, g, platform);
  ASSERT_TRUE(check.ok) << check.message;
  EXPECT_EQ(platform.type_of(s.placement(a).worker), Resource::kCpu);
  EXPECT_EQ(platform.type_of(s.placement(b).worker), Resource::kGpu);
  EXPECT_DOUBLE_EQ(s.makespan(), 3.0);
}

TEST(HeteroPrioDag, RespectsDependencies) {
  TaskGraph g("diamond");
  const TaskId a = g.add_task(Task{1.0, 1.0});
  const TaskId b = g.add_task(Task{2.0, 1.0});
  const TaskId c = g.add_task(Task{1.0, 2.0});
  const TaskId d = g.add_task(Task{1.0, 1.0});
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  g.finalize();
  const Platform platform(2, 2);
  const Schedule s = heteroprio_dag(g, platform);
  const auto check = check_schedule(s, g, platform);
  ASSERT_TRUE(check.ok) << check.message;
  EXPECT_GE(s.placement(d).start,
            std::max(s.placement(b).end, s.placement(c).end) - 1e-12);
}

TEST(HeteroPrioDag, MakespanAtLeastLowerBound) {
  TaskGraph g = cholesky_dag(6);
  assign_priorities(g, RankScheme::kMin);
  const Platform platform(4, 2);
  const Schedule s = heteroprio_dag(g, platform);
  const auto check = check_schedule(s, g, platform);
  ASSERT_TRUE(check.ok) << check.message;
  const double lb = dag_lower_bound(g, platform).value();
  EXPECT_GE(s.makespan(), lb - 1e-9);
  // Sanity: not pathologically bad either on this easy instance.
  EXPECT_LE(s.makespan(), 4.0 * lb);
}

TEST(HeteroPrioDag, PriorityTieBreakPrefersHigherBottomLevel) {
  // Two ready tasks with identical (p, q); the one with the larger
  // priority must start first on the single GPU.
  TaskGraph g("tie");
  const TaskId low = g.add_task(Task{4.0, 1.0, /*priority=*/1.0});
  const TaskId high = g.add_task(Task{4.0, 1.0, /*priority=*/2.0});
  g.finalize();
  const Platform platform(0, 1);
  const Schedule s = heteroprio_dag(g, platform);
  EXPECT_LT(s.placement(high).start, s.placement(low).start);
}

TEST(HeteroPrioDag, SpoliationAcrossDependencyWaves) {
  // Entry task releases two successors; one is CPU-hostile and gets
  // spoliated by the GPU after it finishes its own work.
  TaskGraph g("waves");
  const TaskId root = g.add_task(Task{5.0, 0.5});
  const TaskId fast = g.add_task(Task{9.0, 1.0});   // rho 9 -> GPU
  const TaskId slow = g.add_task(Task{9.0, 3.0});   // rho 3 -> CPU, then spoliated
  g.add_edge(root, fast);
  g.add_edge(root, slow);
  g.finalize();
  const Platform platform(1, 1);
  HeteroPrioStats stats;
  const Schedule s = heteroprio_dag(g, platform, {}, &stats);
  const auto check = check_schedule(s, g, platform);
  ASSERT_TRUE(check.ok) << check.message;
  EXPECT_EQ(stats.spoliations, 1);
  EXPECT_EQ(platform.type_of(s.placement(slow).worker), Resource::kGpu);
}

TEST(HeteroPrioDag, DeterministicOnCholesky) {
  TaskGraph g = cholesky_dag(5);
  assign_priorities(g, RankScheme::kAvg);
  const Platform platform(3, 1);
  const Schedule a = heteroprio_dag(g, platform);
  const Schedule b = heteroprio_dag(g, platform);
  EXPECT_DOUBLE_EQ(a.makespan(), b.makespan());
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_EQ(a.placement(static_cast<TaskId>(i)).worker,
              b.placement(static_cast<TaskId>(i)).worker);
  }
}

TEST(HeteroPrioDag, MinRankingUsuallyNoWorseThanNone) {
  // Not a theorem, but on Cholesky the bottom-level tie-breaking should not
  // catastrophically hurt; both must stay within the validity envelope.
  TaskGraph with = cholesky_dag(8);
  assign_priorities(with, RankScheme::kMin);
  TaskGraph without = cholesky_dag(8);  // priorities all zero
  const Platform platform(4, 2);
  const double m_with = heteroprio_dag(with, platform).makespan();
  const double m_without = heteroprio_dag(without, platform).makespan();
  const double lb = dag_lower_bound(with, platform).value();
  EXPECT_LE(m_with, 3.0 * lb);
  EXPECT_LE(m_without, 3.0 * lb);
}

TEST(HeteroPrioDag, SingleTaskGraph) {
  TaskGraph g("one");
  g.add_task(Task{2.0, 1.0});
  g.finalize();
  const Schedule s = heteroprio_dag(g, Platform(1, 1));
  EXPECT_DOUBLE_EQ(s.makespan(), 1.0);
}

}  // namespace
}  // namespace hp
