// Differential gate for the parallel scheduler engine (src/par): canonical
// mode must be bitwise-identical to the sequential engine across the whole
// precondition grid — platform shapes, thread counts, uniform and distinct
// priorities, spoliation on and off, duration noise, and the delegating
// cases (fault plans, tiny instances) — while free-running mode must always
// produce a valid, complete schedule inside the proven makespan ratios,
// with consistent spoliation bookkeeping and claim counters.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "bounds/area_bound.hpp"
#include "core/heteroprio.hpp"
#include "fault/fault_plan.hpp"
#include "fuzz/generator.hpp"
#include "model/generators.hpp"
#include "obs/counters.hpp"
#include "obs/watchdog.hpp"
#include "par/heteroprio_par.hpp"
#include "sched/validate.hpp"
#include "util/rng.hpp"

namespace hp {
namespace {

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void expect_identical(const Schedule& parallel, const Schedule& sequential) {
  ASSERT_EQ(parallel.num_tasks(), sequential.num_tasks());
  for (std::size_t t = 0; t < sequential.num_tasks(); ++t) {
    SCOPED_TRACE("task " + std::to_string(t));
    const Placement& a = parallel.placement(static_cast<TaskId>(t));
    const Placement& b = sequential.placement(static_cast<TaskId>(t));
    EXPECT_EQ(a.worker, b.worker);
    EXPECT_TRUE(same_bits(a.start, b.start)) << a.start << " vs " << b.start;
    EXPECT_TRUE(same_bits(a.end, b.end)) << a.end << " vs " << b.end;
  }
  ASSERT_EQ(parallel.aborted().size(), sequential.aborted().size());
  for (std::size_t i = 0; i < sequential.aborted().size(); ++i) {
    SCOPED_TRACE("aborted " + std::to_string(i));
    const AbortedSegment& a = parallel.aborted()[i];
    const AbortedSegment& b = sequential.aborted()[i];
    EXPECT_EQ(a.task, b.task);
    EXPECT_EQ(a.worker, b.worker);
    EXPECT_TRUE(same_bits(a.start, b.start));
    EXPECT_TRUE(same_bits(a.abort_time, b.abort_time));
  }
  EXPECT_TRUE(same_bits(parallel.makespan(), sequential.makespan()));
}

std::vector<Task> make_tasks(std::size_t n, std::uint64_t seed,
                             bool distinct_priorities) {
  util::Rng rng(seed);
  UniformGenParams params;
  params.num_tasks = n;
  Instance inst = uniform_instance(params, rng);
  std::vector<Task> tasks(inst.tasks().begin(), inst.tasks().end());
  if (distinct_priorities) {
    // A seed-dependent permutation of distinct priorities forces the
    // two-key (KeyId2) packing through the sharded sort and merge.
    for (std::size_t i = 0; i < n; ++i) {
      tasks[i].priority =
          static_cast<double>((i * 2654435761u + seed) % (4 * n));
    }
  }
  return tasks;
}

const std::vector<Platform>& grid_platforms() {
  static const std::vector<Platform> platforms = {
      Platform(1, 1), Platform(4, 2),  Platform(1, 4),
      Platform(6, 0), Platform(0, 3), Platform(20, 4)};
  return platforms;
}

TEST(ParRegression, CanonicalMatchesSequentialAcrossGrid) {
  for (const Platform& platform : grid_platforms()) {
    for (const int threads : {2, 3, 4, 8}) {
      for (const bool spoliation : {true, false}) {
        for (const bool distinct : {false, true}) {
          SCOPED_TRACE("cpus=" + std::to_string(platform.cpus()) + " gpus=" +
                       std::to_string(platform.gpus()) + " W=" +
                       std::to_string(threads) + " spol=" +
                       std::to_string(spoliation) + " distinct=" +
                       std::to_string(distinct));
          const std::vector<Task> tasks =
              make_tasks(97, 11 * static_cast<std::uint64_t>(threads) + 1,
                         distinct);
          HeteroPrioOptions seq_options;
          seq_options.enable_spoliation = spoliation;
          const Schedule sequential =
              heteroprio(tasks, platform, seq_options);

          HeteroPrioOptions par_options = seq_options;
          par_options.threads = threads;
          par_options.canonical = true;
          HeteroPrioStats par_hp_stats;
          par::HeteroPrioParStats par_stats;
          const Schedule parallel = par::heteroprio_par_run(
              tasks, platform, par_options, &par_hp_stats, &par_stats);
          expect_identical(parallel, sequential);
          EXPECT_FALSE(par_stats.delegated);
          EXPECT_EQ(par_stats.threads_used, threads);
          std::uint64_t published = 0;
          for (const std::uint64_t p : par_stats.shard_published) {
            published += p;
          }
          EXPECT_EQ(published, tasks.size());
        }
      }
    }
  }
}

TEST(ParRegression, CanonicalMatchesThroughTheDispatchFrontDoor) {
  // HeteroPrioOptions::threads routes heteroprio() itself into the parallel
  // engine; the public entry point must keep the identity too.
  const std::vector<Task> tasks = make_tasks(120, 7, /*distinct=*/true);
  const Platform platform(5, 3);
  const Schedule sequential = heteroprio(tasks, platform);
  HeteroPrioOptions options;
  options.threads = 4;
  options.canonical = true;
  HeteroPrioStats seq_stats;
  HeteroPrioStats par_stats;
  const Schedule sequential2 = heteroprio(tasks, platform, {}, &seq_stats);
  const Schedule parallel = heteroprio(tasks, platform, options, &par_stats);
  expect_identical(parallel, sequential);
  expect_identical(sequential2, sequential);
  EXPECT_EQ(par_stats.spoliations, seq_stats.spoliations);
  EXPECT_EQ(par_stats.spoliation_attempts, seq_stats.spoliation_attempts);
  EXPECT_TRUE(same_bits(par_stats.first_idle_time, seq_stats.first_idle_time));
}

TEST(ParRegression, CanonicalMatchesUnderDurationNoise) {
  // Beliefs/actuals divergence stays on the canonical path (free-running
  // rejects it); the noisy simulation must still be bitwise-identical.
  const std::vector<Task> tasks = make_tasks(80, 21, /*distinct=*/false);
  std::vector<Task> actuals = tasks;
  util::Rng rng(99);
  for (Task& t : actuals) {
    t.cpu_time *= 0.8 + 0.4 * rng.uniform01();
    t.gpu_time *= 0.8 + 0.4 * rng.uniform01();
  }
  const Platform platform(4, 2);
  HeteroPrioOptions options;
  options.actual_times = actuals;
  const Schedule sequential = heteroprio(tasks, platform, options);
  options.threads = 4;
  options.canonical = true;
  const Schedule parallel = heteroprio(tasks, platform, options);
  expect_identical(parallel, sequential);
}

TEST(ParRegression, FaultPlansDelegateBitwiseWithRecovery) {
  const std::vector<Task> tasks = make_tasks(60, 5, /*distinct=*/true);
  const Platform platform(4, 2);
  fault::FaultPlan plan;
  plan.add_crash(1, 4.0);
  plan.add_straggler(4, 2.0, 9.0, 3.0);

  HeteroPrioOptions options;
  options.faults = &plan;
  HeteroPrioStats seq_stats;
  const Schedule sequential = heteroprio(tasks, platform, options, &seq_stats);

  options.threads = 4;
  options.canonical = true;
  HeteroPrioStats par_hp_stats;
  par::HeteroPrioParStats par_stats;
  const Schedule parallel = par::heteroprio_par_run(
      tasks, platform, options, &par_hp_stats, &par_stats);
  expect_identical(parallel, sequential);
  EXPECT_TRUE(par_stats.delegated);
  EXPECT_EQ(par_stats.threads_used, 1);
  EXPECT_EQ(par_hp_stats.recovery.degraded, seq_stats.recovery.degraded);
  EXPECT_EQ(par_hp_stats.recovery.crash_requeues,
            seq_stats.recovery.crash_requeues);
  EXPECT_EQ(par_hp_stats.recovery.worker_crashes,
            seq_stats.recovery.worker_crashes);
}

TEST(ParRegression, TinyInstancesDelegateWithoutShardOverhead) {
  const std::vector<Task> tasks = make_tasks(5, 3, /*distinct=*/false);
  const Platform platform(2, 2);
  const Schedule sequential = heteroprio(tasks, platform);
  HeteroPrioOptions options;
  options.threads = 8;  // n < 2 * threads: sharding would be pure overhead
  par::HeteroPrioParStats par_stats;
  const Schedule parallel =
      par::heteroprio_par_run(tasks, platform, options, nullptr, &par_stats);
  expect_identical(parallel, sequential);
  EXPECT_EQ(par_stats.threads_used, 1);
  EXPECT_FALSE(par_stats.delegated);  // coverable, just not worth sharding
}

TEST(ParRegression, FreeRunningIsValidCompleteAndWithinProvenRatio) {
  for (const Platform& platform : grid_platforms()) {
    for (const int threads : {2, 4, 8}) {
      // Seed 45 is the pacing witness: without the conservative pacing
      // window a wall-clock-fast slice hoards the instance and its runaway
      // in-slice spoliation aborts push makespan() past the proven ratio.
      for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 45ull}) {
        SCOPED_TRACE("cpus=" + std::to_string(platform.cpus()) + " gpus=" +
                     std::to_string(platform.gpus()) + " W=" +
                     std::to_string(threads) + " seed=" +
                     std::to_string(seed));
        const std::vector<Task> tasks = make_tasks(150, seed, seed % 2 == 0);
        HeteroPrioOptions options;
        options.threads = threads;
        options.canonical = false;
        HeteroPrioStats stats;
        par::HeteroPrioParStats par_stats;
        const Schedule s = par::heteroprio_par_run(tasks, platform, options,
                                                   &stats, &par_stats);
        const ScheduleCheck check = check_schedule(s, tasks, platform);
        EXPECT_TRUE(check.ok) << check.message;
        EXPECT_TRUE(s.complete());
        // Free-running bookkeeping: every spoliation recorded exactly one
        // aborted segment (fault-free runs have no other abort source).
        EXPECT_EQ(static_cast<std::size_t>(stats.spoliations),
                  s.aborted().size());
        const double lb = opt_lower_bound(tasks, platform);
        EXPECT_GE(s.makespan(), lb * (1.0 - 1e-9));
        const obs::BoundCheck bc =
            obs::check_makespan_bound(s.makespan(), lb, platform, {});
        EXPECT_FALSE(bc.violated)
            << "ratio " << bc.ratio << " > proven " << bc.bound;
      }
    }
  }
}

TEST(ParRegression, FreeRunningWithoutSpoliationRecordsNoAborts) {
  const std::vector<Task> tasks = make_tasks(140, 17, /*distinct=*/true);
  const Platform platform(6, 3);
  HeteroPrioOptions options;
  options.threads = 3;
  options.canonical = false;
  options.enable_spoliation = false;
  HeteroPrioStats stats;
  const Schedule s = par::heteroprio_par_run(tasks, platform, options, &stats);
  const ScheduleCheck check = check_schedule(s, tasks, platform);
  EXPECT_TRUE(check.ok) << check.message;
  EXPECT_TRUE(s.complete());
  EXPECT_TRUE(s.aborted().empty());
  EXPECT_EQ(stats.spoliations, 0);
}

TEST(ParRegression, FreeRunningCountersAccountForEveryTask) {
  const std::vector<Task> tasks = make_tasks(400, 23, /*distinct=*/false);
  const Platform platform(8, 4);
  HeteroPrioOptions options;
  options.threads = 4;
  options.canonical = false;
  par::HeteroPrioParStats par_stats;
  const Schedule s =
      par::heteroprio_par_run(tasks, platform, options, nullptr, &par_stats);
  EXPECT_TRUE(s.complete());
  EXPECT_FALSE(par_stats.canonical);
  EXPECT_GT(par_stats.threads_used, 1);
  // Each task is claimed exactly once: home-shard claims and ring steals
  // are disjoint counts that together cover the instance.
  EXPECT_EQ(par_stats.claims + par_stats.steals, tasks.size());
  EXPECT_GT(par_stats.claims, 0u);
  std::uint64_t published = 0;
  for (const std::uint64_t p : par_stats.shard_published) published += p;
  EXPECT_EQ(published, tasks.size());
  EXPECT_EQ(par_stats.shard_steals.size(),
            static_cast<std::size_t>(par_stats.threads_used));
  // Every drained block was retired and, after the run joined, reclaimed.
  EXPECT_EQ(par_stats.blocks_retired, par_stats.blocks_reclaimed);
  EXPECT_GT(par_stats.blocks_retired, 0u);

  obs::CounterRegistry registry;
  par_stats.export_counters(registry);
  EXPECT_EQ(registry.get("par_claims") + registry.get("par_steals"),
            static_cast<double>(tasks.size()));
  EXPECT_EQ(registry.get("par_threads_used"),
            static_cast<double>(par_stats.threads_used));
  EXPECT_EQ(registry.get("par_canonical"), 0.0);
}

TEST(ParRegression, FuzzCasesAgreeCanonicallyAndFreeRunSafely) {
  // A slice of the fuzz generator's own distribution (independent cases):
  // canonical identity and free-running safety on shapes the handwritten
  // grid above does not reach.
  fuzz::GenKnobs knobs;
  knobs.dag_fraction = 0.0;
  knobs.fault_fraction = 0.0;
  knobs.online_fraction = 0.0;
  knobs.max_tasks = 48;
  int checked = 0;
  for (std::uint64_t index = 0; index < 60; ++index) {
    const fuzz::FuzzCase c = fuzz::generate_case(20260808, index, knobs);
    if (c.graph.size() < 8) continue;
    const auto tasks = c.graph.tasks();
    const Schedule sequential = heteroprio(tasks, c.platform);
    HeteroPrioOptions options;
    options.threads = c.par_threads >= 2 ? c.par_threads : 3;
    options.canonical = true;
    SCOPED_TRACE(c.name);
    const Schedule canonical = heteroprio(tasks, c.platform, options);
    expect_identical(canonical, sequential);

    options.canonical = false;
    HeteroPrioStats stats;
    const Schedule free_run = par::heteroprio_par_run(tasks, c.platform,
                                                      options, &stats);
    const ScheduleCheck check = check_schedule(free_run, tasks, c.platform);
    EXPECT_TRUE(check.ok) << check.message;
    EXPECT_TRUE(free_run.complete());
    EXPECT_EQ(static_cast<std::size_t>(stats.spoliations),
              free_run.aborted().size());
    ++checked;
  }
  EXPECT_GE(checked, 20);
}

}  // namespace
}  // namespace hp
