#include "sched/schedule.hpp"

#include <gtest/gtest.h>

namespace hp {
namespace {

TEST(ScheduleTest, PlaceAndQuery) {
  Schedule s(2);
  EXPECT_FALSE(s.complete());
  s.place(0, 1, 0.0, 2.0);
  s.place(1, 0, 1.0, 4.0);
  EXPECT_TRUE(s.complete());
  EXPECT_EQ(s.placement(0).worker, 1);
  EXPECT_DOUBLE_EQ(s.placement(1).end, 4.0);
}

TEST(ScheduleTest, MakespanIsMaxEnd) {
  Schedule s(3);
  s.place(0, 0, 0.0, 5.0);
  s.place(1, 1, 0.0, 3.0);
  s.place(2, 0, 5.0, 6.5);
  EXPECT_DOUBLE_EQ(s.makespan(), 6.5);
}

TEST(ScheduleTest, MakespanIncludesAbortedSegments) {
  Schedule s(1);
  s.place(0, 0, 0.0, 1.0);
  s.add_aborted(0, 1, 0.0, 2.0);  // pathological but must be counted
  EXPECT_DOUBLE_EQ(s.makespan(), 2.0);
}

TEST(ScheduleTest, UnplacedTasksIgnoredByMakespan) {
  Schedule s(2);
  s.place(0, 0, 0.0, 3.0);
  EXPECT_DOUBLE_EQ(s.makespan(), 3.0);
  EXPECT_FALSE(s.complete());
}

TEST(ScheduleTest, SpoliationCount) {
  Schedule s(2);
  EXPECT_EQ(s.spoliation_count(), 0u);
  s.add_aborted(0, 0, 0.0, 1.0);
  s.add_aborted(1, 0, 1.0, 2.0);
  EXPECT_EQ(s.spoliation_count(), 2u);
  EXPECT_EQ(s.aborted().size(), 2u);
}

TEST(ScheduleTest, EmptyScheduleMakespanZero) {
  const Schedule s(0);
  EXPECT_DOUBLE_EQ(s.makespan(), 0.0);
  EXPECT_TRUE(s.complete());
}

TEST(ScheduleTest, PlacementOverwrite) {
  Schedule s(1);
  s.place(0, 0, 0.0, 1.0);
  s.place(0, 1, 2.0, 3.0);
  EXPECT_EQ(s.placement(0).worker, 1);
  EXPECT_DOUBLE_EQ(s.placement(0).start, 2.0);
}

}  // namespace
}  // namespace hp
