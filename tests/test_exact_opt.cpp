#include "bounds/exact_opt.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bounds/area_bound.hpp"
#include "model/generators.hpp"
#include "sched/validate.hpp"
#include "util/rng.hpp"

namespace hp {
namespace {

TEST(ExactOpt, EmptyInstance) {
  const std::vector<Task> tasks;
  EXPECT_DOUBLE_EQ(exact_optimal_makespan(tasks, Platform(1, 1)), 0.0);
}

TEST(ExactOpt, SingleTaskPicksFasterResource) {
  const std::vector<Task> tasks{Task{5.0, 2.0}};
  EXPECT_DOUBLE_EQ(exact_optimal_makespan(tasks, Platform(1, 1)), 2.0);
  const std::vector<Task> cpu_friendly{Task{2.0, 5.0}};
  EXPECT_DOUBLE_EQ(exact_optimal_makespan(cpu_friendly, Platform(1, 1)), 2.0);
}

TEST(ExactOpt, Theorem8InstanceHasOptimalOne) {
  const double phi = 1.6180339887498949;
  const std::vector<Task> tasks{Task{phi, 1.0}, Task{1.0, 1.0 / phi}};
  EXPECT_NEAR(exact_optimal_makespan(tasks, Platform(1, 1)), 1.0, 1e-12);
}

TEST(ExactOpt, TwoIdenticalTasksTwoCpus) {
  const std::vector<Task> tasks{Task{3.0, 100.0}, Task{3.0, 100.0}};
  EXPECT_DOUBLE_EQ(exact_optimal_makespan(tasks, Platform(2, 1)), 3.0);
}

TEST(ExactOpt, ForcedSerializationOnOneWorker) {
  const std::vector<Task> tasks{Task{1.0, 100.0}, Task{2.0, 100.0},
                                Task{3.0, 100.0}};
  // One CPU, GPU useless: makespan = 6.
  EXPECT_DOUBLE_EQ(exact_optimal_makespan(tasks, Platform(1, 1)), 6.0);
}

TEST(ExactOpt, ScheduleIsValidAndMatchesMakespan) {
  util::Rng rng(5);
  const Instance inst = uniform_instance({.num_tasks = 8}, rng);
  const Platform platform(2, 2);
  const ExactResult res = exact_optimal(inst.tasks(), platform);
  const auto check = check_schedule(res.schedule, inst.tasks(), platform);
  EXPECT_TRUE(check.ok) << check.message;
  EXPECT_NEAR(res.schedule.makespan(), res.makespan, 1e-9);
}

TEST(ExactOpt, NeverBelowAreaBound) {
  util::Rng rng(6);
  for (int rep = 0; rep < 15; ++rep) {
    const Instance inst = uniform_instance({.num_tasks = 9}, rng);
    const Platform platform(2, 1);
    const double opt = exact_optimal_makespan(inst.tasks(), platform);
    EXPECT_GE(opt, opt_lower_bound(inst.tasks(), platform) - 1e-9);
  }
}

TEST(ExactOpt, MatchesBruteForceOnOneCpuOneGpu) {
  // Reference: enumerate all 2^T side choices; per side a single worker, so
  // the makespan is max(sum p on CPU, sum q on GPU).
  util::Rng rng(7);
  for (int rep = 0; rep < 10; ++rep) {
    const Instance inst = uniform_instance({.num_tasks = 10}, rng);
    const Platform platform(1, 1);
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t mask = 0; mask < (1u << inst.size()); ++mask) {
      double cpu = 0.0, gpu = 0.0;
      for (std::size_t i = 0; i < inst.size(); ++i) {
        if (mask & (1u << i)) {
          gpu += inst[static_cast<TaskId>(i)].gpu_time;
        } else {
          cpu += inst[static_cast<TaskId>(i)].cpu_time;
        }
      }
      best = std::min(best, std::max(cpu, gpu));
    }
    EXPECT_NEAR(exact_optimal_makespan(inst.tasks(), platform), best, 1e-9);
  }
}

TEST(ExactOpt, MatchesBruteForceOnTwoCpusOneGpu) {
  // Reference: assign each task to one of the three workers; independent
  // tasks make a worker's finish time the plain sum of what it got.
  util::Rng rng(17);
  for (int rep = 0; rep < 10; ++rep) {
    const Instance inst = uniform_instance({.num_tasks = 6}, rng);
    const Platform platform(2, 1);
    std::size_t combos = 1;
    for (std::size_t i = 0; i < inst.size(); ++i) combos *= 3;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t code = 0; code < combos; ++code) {
      double load[3] = {0.0, 0.0, 0.0};
      std::size_t rest = code;
      for (std::size_t i = 0; i < inst.size(); ++i) {
        const std::size_t w = rest % 3;
        rest /= 3;
        const Task& t = inst[static_cast<TaskId>(i)];
        load[w] += w < 2 ? t.cpu_time : t.gpu_time;
      }
      best = std::min(best, std::max({load[0], load[1], load[2]}));
    }
    EXPECT_NEAR(exact_optimal_makespan(inst.tasks(), platform), best, 1e-9)
        << "rep " << rep;
  }
}

TEST(ExactOpt, SymmetryBreakingStillOptimalManyWorkers) {
  // 4 identical CPU tasks on 4 CPUs: optimal = max single task.
  const std::vector<Task> tasks{Task{2.0, 50.0}, Task{2.0, 50.0},
                                Task{2.0, 50.0}, Task{2.0, 50.0}};
  EXPECT_DOUBLE_EQ(exact_optimal_makespan(tasks, Platform(4, 1)), 2.0);
}

TEST(ExactOpt, ExploresFewNodesWithPruning) {
  util::Rng rng(8);
  const Instance inst = uniform_instance({.num_tasks = 12}, rng);
  const ExactResult res = exact_optimal(inst.tasks(), Platform(2, 2));
  // 4^12 = 16.7M raw leaves; pruning must cut that drastically.
  EXPECT_LT(res.nodes, 2'000'000u);
  EXPECT_GT(res.makespan, 0.0);
}

}  // namespace
}  // namespace hp
