#include "obs/event.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "baselines/heft.hpp"
#include "core/heteroprio.hpp"
#include "core/heteroprio_dag.hpp"
#include "dag/ranking.hpp"
#include "linalg/cholesky.hpp"
#include "obs/counters.hpp"
#include "obs/recorder.hpp"
#include "sched/metrics.hpp"
#include "sim/trace.hpp"

namespace hp {
namespace {

using obs::EventKind;

// One task per resource class plus a spoliation candidate: a small run that
// exercises every decision branch of the engine.
std::vector<Task> mixed_tasks() {
  return {
      Task{10.0, 1.0},  // GPU-friendly
      Task{9.0, 1.0},   // GPU-friendly
      Task{1.0, 8.0},   // CPU-friendly
      Task{1.0, 7.0},   // CPU-friendly
  };
}

TEST(ObsEvents, EveryTaskGetsReadyStartComplete) {
  obs::EventRecorder rec;
  HeteroPrioOptions options;
  options.sink = &rec;
  const auto tasks = mixed_tasks();
  (void)heteroprio(tasks, Platform(2, 2), options);
  EXPECT_EQ(rec.count(EventKind::kReady), tasks.size());
  EXPECT_EQ(rec.count(EventKind::kStart), tasks.size());
  EXPECT_EQ(rec.count(EventKind::kComplete), tasks.size());
  EXPECT_EQ(rec.count(EventKind::kAbort), 0u);
}

TEST(ObsEvents, SpoliationEmitsAttemptAbortAndCommit) {
  // 1 CPU + 1 GPU, one CPU-friendly task: the GPU grabs it at t=0 and the
  // idle CPU immediately spoliates.
  const std::vector<Task> tasks{Task{1.0, 10.0}};
  obs::EventRecorder rec;
  HeteroPrioOptions options;
  options.sink = &rec;
  (void)heteroprio(tasks, Platform(1, 1), options);
  EXPECT_GE(rec.count(EventKind::kSpoliateAttempt), 1u);
  EXPECT_EQ(rec.count(EventKind::kSpoliateCommit), 1u);
  EXPECT_EQ(rec.count(EventKind::kAbort), 1u);
  // A commit names thief, victim and the stolen task.
  for (const obs::Event& e : rec.events()) {
    if (e.kind != EventKind::kSpoliateCommit) continue;
    EXPECT_EQ(e.task, 0);
    EXPECT_GE(e.worker, 0);
    EXPECT_GE(e.victim, 0);
    EXPECT_NE(e.worker, e.victim);
  }
}

TEST(ObsEvents, StreamIsTimeOrdered) {
  obs::EventRecorder rec;
  HeteroPrioOptions options;
  options.sink = &rec;
  TaskGraph graph = cholesky_dag(6);
  assign_priorities(graph, RankScheme::kMin);
  (void)heteroprio_dag(graph, Platform(3, 1), options);
  double prev = 0.0;
  for (const obs::Event& e : rec.events()) {
    EXPECT_GE(e.time, prev);
    prev = e.time;
  }
}

TEST(ObsEvents, SinkDoesNotChangeTheSchedule) {
  const auto tasks = mixed_tasks();
  const Platform platform(1, 1);
  const Schedule plain = heteroprio(tasks, platform);
  obs::EventRecorder rec;
  HeteroPrioOptions options;
  options.sink = &rec;
  const Schedule observed = heteroprio(tasks, platform, options);
  ASSERT_EQ(plain.num_tasks(), observed.num_tasks());
  for (std::size_t i = 0; i < plain.num_tasks(); ++i) {
    const auto id = static_cast<TaskId>(i);
    EXPECT_EQ(plain.placement(id).worker, observed.placement(id).worker);
    EXPECT_DOUBLE_EQ(plain.placement(id).start, observed.placement(id).start);
    EXPECT_DOUBLE_EQ(plain.placement(id).end, observed.placement(id).end);
  }
}

TEST(ObsEvents, CountersMatchScheduleMetrics) {
  TaskGraph graph = cholesky_dag(6);
  assign_priorities(graph, RankScheme::kMin);
  const Platform platform(3, 1);
  obs::EventRecorder rec;
  HeteroPrioOptions options;
  options.sink = &rec;
  HeteroPrioStats stats;
  const Schedule s = heteroprio_dag(graph, platform, options, &stats);

  const obs::SchedulerCounters c =
      obs::counters_from_events(rec.events(), platform);
  const ScheduleMetrics m = compute_metrics(s, graph.tasks(), platform);

  // Event-derived counters must agree with the schedule-derived metrics on
  // everything both can see.
  EXPECT_EQ(c.tasks_completed,
            static_cast<long long>(m.cpu.tasks_completed +
                                   m.gpu.tasks_completed));
  EXPECT_EQ(c.aborts, static_cast<long long>(s.aborted().size()));
  EXPECT_EQ(c.spoliation_commits, static_cast<long long>(stats.spoliations));
  EXPECT_EQ(c.spoliation_attempts,
            static_cast<long long>(stats.spoliation_attempts));
  EXPECT_EQ(c.spoliation_skips,
            static_cast<long long>(stats.spoliation_skips));
  EXPECT_NEAR(c.makespan, s.makespan(), 1e-9);
  EXPECT_NEAR(c.busy_time[0], m.cpu.busy_time, 1e-9);
  EXPECT_NEAR(c.busy_time[1], m.gpu.busy_time, 1e-9);
  EXPECT_NEAR(c.aborted_time[0], m.cpu.aborted_time, 1e-9);
  EXPECT_NEAR(c.aborted_time[1], m.gpu.aborted_time, 1e-9);
  // And with the subset compute_metrics fills into its own counters field.
  EXPECT_EQ(m.counters.tasks_completed, c.tasks_completed);
  EXPECT_EQ(m.counters.aborts, c.aborts);
  EXPECT_NEAR(m.counters.idle_fraction[0], c.idle_fraction[0], 1e-9);
  EXPECT_NEAR(m.counters.idle_fraction[1], c.idle_fraction[1], 1e-9);
}

TEST(ObsEvents, QueueDepthAndIdleIntervalsAreRecorded) {
  obs::EventRecorder rec;
  HeteroPrioOptions options;
  options.sink = &rec;
  (void)heteroprio(mixed_tasks(), Platform(1, 1), options);
  EXPECT_GE(rec.count(EventKind::kQueueDepth), 1u);
  // Every start ends an idle interval (workers begin idle at t=0).
  EXPECT_EQ(rec.count(EventKind::kIdleEnd), rec.count(EventKind::kStart));
  const obs::SchedulerCounters c =
      obs::counters_from_events(rec.events(), Platform(1, 1));
  EXPECT_GE(c.peak_ready_depth, 1);
}

TEST(ObsEvents, TimelineLogActsAsSink) {
  // With both a legacy log and a structured sink attached, the log sees the
  // same start/complete/spoliate/abort entries it always recorded, and the
  // sink sees the full stream.
  const std::vector<Task> tasks{Task{1.0, 10.0}};
  sim::TimelineLog log(true);
  obs::EventRecorder rec;
  HeteroPrioOptions options;
  options.log = &log;
  options.sink = &rec;
  (void)heteroprio(tasks, Platform(1, 1), options);
  std::size_t starts = 0;
  std::size_t spoliates = 0;
  for (const sim::TraceEntry& e : log.entries()) {
    if (e.kind == sim::TraceKind::kStart) ++starts;
    if (e.kind == sim::TraceKind::kSpoliate) ++spoliates;
  }
  EXPECT_EQ(starts, rec.count(EventKind::kStart));
  EXPECT_EQ(spoliates, rec.count(EventKind::kSpoliateCommit));
  EXPECT_GT(rec.size(), log.entries().size());  // attempts, depths, idles
}

TEST(ObsEvents, StaticPlannerReplaysItsSchedule) {
  const auto tasks = mixed_tasks();
  const Platform platform(2, 2);
  obs::EventRecorder rec;
  HeftOptions options;
  options.sink = &rec;
  const Schedule s = heft_independent(tasks, platform, options);
  EXPECT_EQ(rec.count(EventKind::kStart), tasks.size());
  EXPECT_EQ(rec.count(EventKind::kComplete), tasks.size());
  const obs::SchedulerCounters c =
      obs::counters_from_events(rec.events(), platform);
  EXPECT_EQ(c.tasks_completed, static_cast<long long>(tasks.size()));
  EXPECT_NEAR(c.makespan, s.makespan(), 1e-9);
}

}  // namespace
}  // namespace hp
