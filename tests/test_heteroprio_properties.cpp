// Property tests of HeteroPrio against the paper's approximation theorems,
// verified on random instances with the exact branch-and-bound optimum.

#include <gtest/gtest.h>

#include <tuple>

#include "bounds/area_bound.hpp"
#include "bounds/exact_opt.hpp"
#include "core/heteroprio.hpp"
#include "model/generators.hpp"
#include "sched/validate.hpp"
#include "util/rng.hpp"

namespace hp {
namespace {

constexpr double kPhiLocal = 1.6180339887498949;
constexpr double kSqrt2 = 1.4142135623730951;

/// (cpus, gpus, theoretical ratio, seed)
using Config = std::tuple<int, int, double, int>;

class HeteroPrioRatio : public ::testing::TestWithParam<Config> {};

TEST_P(HeteroPrioRatio, WithinTheoremBoundOnRandomInstances) {
  const auto [cpus, gpus, ratio_bound, seed] = GetParam();
  const Platform platform(cpus, gpus);
  util::Rng rng(static_cast<std::uint64_t>(seed));
  for (int rep = 0; rep < 8; ++rep) {
    UniformGenParams params;
    params.num_tasks = 9;
    params.accel_lo = 0.1;
    params.accel_hi = 25.0;
    const Instance inst = uniform_instance(params, rng);

    const Schedule s = heteroprio(inst.tasks(), platform);
    const auto check = check_schedule(s, inst.tasks(), platform);
    ASSERT_TRUE(check.ok) << check.message;

    const double opt = exact_optimal_makespan(inst.tasks(), platform);
    EXPECT_LE(s.makespan(), ratio_bound * opt + 1e-9)
        << "instance seed " << seed << " rep " << rep << " on (" << cpus
        << "," << gpus << ")";
    EXPECT_GE(s.makespan(), opt - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    TheoremBounds, HeteroPrioRatio,
    ::testing::Values(
        // Theorem 7: (1,1) -> phi.
        Config{1, 1, kPhiLocal, 101}, Config{1, 1, kPhiLocal, 102},
        Config{1, 1, kPhiLocal, 103},
        // Theorem 9: (m,1) -> 1 + phi.
        Config{2, 1, 1.0 + kPhiLocal, 201}, Config{3, 1, 1.0 + kPhiLocal, 202},
        Config{4, 1, 1.0 + kPhiLocal, 203},
        // Theorem 12: (m,n) -> 2 + sqrt(2).
        Config{2, 2, 2.0 + kSqrt2, 301}, Config{3, 2, 2.0 + kSqrt2, 302},
        Config{4, 3, 2.0 + kSqrt2, 303}));

/// Lemmas 4 and 5: spoliation only flows one way.
class SpoliationDirection : public ::testing::TestWithParam<int> {};

TEST_P(SpoliationDirection, LemmaFiveNoBidirectionalSpoliation) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int rep = 0; rep < 20; ++rep) {
    const Instance inst = bimodal_instance(14, 0.5, rng);
    const Platform platform(2, 2);
    const Schedule s = heteroprio(inst.tasks(), platform);

    // If some task was spoliated *to* resource r (its final placement is on
    // r), then no task may have been aborted *on* r.
    bool spoliated_to[2] = {false, false};
    bool aborted_on[2] = {false, false};
    for (const AbortedSegment& a : s.aborted()) {
      aborted_on[static_cast<int>(platform.type_of(a.worker))] = true;
      const Placement& p = s.placement(a.task);
      spoliated_to[static_cast<int>(platform.type_of(p.worker))] = true;
    }
    for (int r = 0; r < 2; ++r) {
      EXPECT_FALSE(spoliated_to[r] && aborted_on[r])
          << "Lemma 5 violated at rep " << rep;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpoliationDirection,
                         ::testing::Values(11, 12, 13, 14, 15));

/// Observation (iii) after Lemma 3: if every task fits within OPT on both
/// resources, HeteroPrio is within 2*OPT.
TEST(HeteroPrioProperties, TwoApproxWhenTasksSmall) {
  util::Rng rng(77);
  for (int rep = 0; rep < 10; ++rep) {
    // Many small tasks: max(p,q) << OPT is guaranteed by volume.
    UniformGenParams params;
    params.num_tasks = 60;
    params.cpu_time_lo = 0.5;
    params.cpu_time_hi = 1.5;
    params.accel_lo = 0.5;
    params.accel_hi = 4.0;
    const Instance inst = uniform_instance(params, rng);
    const Platform platform(2, 2);
    const double lb = opt_lower_bound(inst.tasks(), platform);
    const Schedule s = heteroprio(inst.tasks(), platform);
    // max(p,q) <= 3.0 and lb >= volume/4 >> 3, so 2*OPT holds.
    ASSERT_GE(lb, 3.0);
    EXPECT_LE(s.makespan(), 2.0 * lb * 1.2);
  }
}

/// Spoliation can only help: makespan(HP) <= makespan(HP without
/// spoliation), on every instance.
TEST(HeteroPrioProperties, SpoliationNeverHurts) {
  util::Rng rng(88);
  for (int rep = 0; rep < 25; ++rep) {
    const Instance inst = bimodal_instance(12, 0.4, rng);
    const Platform platform(3, 1);
    const Schedule with = heteroprio(inst.tasks(), platform);
    const Schedule without =
        heteroprio(inst.tasks(), platform, {.enable_spoliation = false});
    EXPECT_LE(with.makespan(), without.makespan() + 1e-9);
  }
}

/// The no-spoliation variant is a proper list schedule: makespan below the
/// Graham-style bound area/min + max task, loosely checked via 2x area+max.
TEST(HeteroPrioProperties, SchedulesValidOnManyPlatformShapes) {
  util::Rng rng(99);
  for (int cpus : {0, 1, 4}) {
    for (int gpus : {0, 1, 3}) {
      if (cpus + gpus == 0) continue;
      const Instance inst = uniform_instance({.num_tasks = 25}, rng);
      const Platform platform(cpus, gpus);
      const Schedule s = heteroprio(inst.tasks(), platform);
      const auto check = check_schedule(s, inst.tasks(), platform);
      EXPECT_TRUE(check.ok)
          << "(" << cpus << "," << gpus << "): " << check.message;
    }
  }
}

/// T_FirstIdle <= C_max^Opt (consequence (ii) of Lemma 3).
TEST(HeteroPrioProperties, FirstIdleBeforeOptimal) {
  util::Rng rng(111);
  for (int rep = 0; rep < 10; ++rep) {
    const Instance inst = uniform_instance({.num_tasks = 10}, rng);
    const Platform platform(2, 1);
    HeteroPrioStats stats;
    (void)heteroprio(inst.tasks(), platform, {.enable_spoliation = false},
                     &stats);
    const double opt = exact_optimal_makespan(inst.tasks(), platform);
    EXPECT_LE(stats.first_idle_time, opt + 1e-9);
  }
}

}  // namespace
}  // namespace hp
