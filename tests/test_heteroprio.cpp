#include "core/heteroprio.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "bounds/area_bound.hpp"
#include "sched/validate.hpp"

namespace hp {
namespace {

TEST(HeteroPrio, EmptyInstance) {
  const std::vector<Task> tasks;
  const Schedule s = heteroprio(tasks, Platform(1, 1));
  EXPECT_DOUBLE_EQ(s.makespan(), 0.0);
}

TEST(HeteroPrio, SingleGpuFriendlyTaskGoesToGpu) {
  const std::vector<Task> tasks{Task{10.0, 1.0}};
  const Platform platform(1, 1);
  const Schedule s = heteroprio(tasks, platform);
  EXPECT_EQ(platform.type_of(s.placement(0).worker), Resource::kGpu);
  EXPECT_DOUBLE_EQ(s.makespan(), 1.0);
}

TEST(HeteroPrio, SingleCpuFriendlyTaskEndsOnCpu) {
  // The GPU grabs the queue head first, but an idle CPU immediately
  // spoliates it at t=0 (1.0 < 10.0).
  const std::vector<Task> tasks{Task{1.0, 10.0}};
  const Platform platform(1, 1);
  const Schedule s = heteroprio(tasks, platform);
  EXPECT_EQ(platform.type_of(s.placement(0).worker), Resource::kCpu);
  EXPECT_DOUBLE_EQ(s.makespan(), 1.0);
}

TEST(HeteroPrio, AffinitySplitsByAccelerationFactor) {
  // Two GPU-friendly, two CPU-friendly tasks; 2 CPUs + 2 GPUs.
  const std::vector<Task> tasks{
      Task{20.0, 1.0},  // rho 20
      Task{18.0, 1.0},  // rho 18
      Task{1.0, 5.0},   // rho 0.2
      Task{1.0, 4.0},   // rho 0.25
  };
  const Platform platform(2, 2);
  const Schedule s = heteroprio(tasks, platform);
  EXPECT_EQ(platform.type_of(s.placement(0).worker), Resource::kGpu);
  EXPECT_EQ(platform.type_of(s.placement(1).worker), Resource::kGpu);
  EXPECT_EQ(platform.type_of(s.placement(2).worker), Resource::kCpu);
  EXPECT_EQ(platform.type_of(s.placement(3).worker), Resource::kCpu);
  EXPECT_DOUBLE_EQ(s.makespan(), 1.0);
}

TEST(HeteroPrio, GpuTakesHighestRhoFirst) {
  // One GPU, three tasks with distinct rho; GPU must process them in
  // decreasing rho order.
  const std::vector<Task> tasks{
      Task{2.0, 1.0},   // rho 2
      Task{8.0, 1.0},   // rho 8
      Task{4.0, 1.0},   // rho 4
  };
  const Platform platform(0, 1);
  const Schedule s = heteroprio(tasks, platform);
  EXPECT_LT(s.placement(1).start, s.placement(2).start);
  EXPECT_LT(s.placement(2).start, s.placement(0).start);
}

TEST(HeteroPrio, CpuTakesLowestRhoFirst) {
  const std::vector<Task> tasks{
      Task{1.0, 2.0},   // rho 0.5
      Task{1.0, 8.0},   // rho 0.125
      Task{1.0, 4.0},   // rho 0.25
  };
  const Platform platform(1, 0);
  const Schedule s = heteroprio(tasks, platform);
  EXPECT_LT(s.placement(1).start, s.placement(2).start);
  EXPECT_LT(s.placement(2).start, s.placement(0).start);
}

TEST(HeteroPrio, PriorityBreaksTiesTowardGpuForHighRho) {
  // Equal rho >= 1: the highest-priority task must be taken by the GPU
  // first (queue head).
  std::vector<Task> tasks{
      Task{4.0, 1.0, /*priority=*/1.0},
      Task{4.0, 1.0, /*priority=*/5.0},
  };
  const Platform platform(0, 1);
  const Schedule s = heteroprio(tasks, platform);
  EXPECT_LT(s.placement(1).start, s.placement(0).start);
}

TEST(HeteroPrio, PriorityBreaksTiesTowardCpuForLowRho) {
  // Equal rho < 1: the highest-priority task sits at the queue *tail*,
  // which is where CPUs pop.
  std::vector<Task> tasks{
      Task{1.0, 4.0, /*priority=*/5.0},
      Task{1.0, 4.0, /*priority=*/1.0},
  };
  const Platform platform(1, 0);
  const Schedule s = heteroprio(tasks, platform);
  EXPECT_LT(s.placement(0).start, s.placement(1).start);
}

TEST(HeteroPrio, SpoliationRescuesStragglerOnSlowResource) {
  // 1 CPU + 1 GPU. Queue: [A (rho 10), B (rho 2)]. GPU takes A (1s);
  // CPU takes B from the tail (p=10). GPU idles at 1 and spoliates B,
  // finishing it at 1 + 5 = 6 < 10.
  const std::vector<Task> tasks{
      Task{10.0, 1.0},  // A
      Task{10.0, 5.0},  // B
  };
  const Platform platform(1, 1);
  HeteroPrioStats stats;
  const Schedule s = heteroprio(tasks, platform, {}, &stats);
  EXPECT_EQ(stats.spoliations, 1);
  ASSERT_EQ(s.aborted().size(), 1u);
  EXPECT_EQ(s.aborted()[0].task, 1);
  EXPECT_EQ(platform.type_of(s.placement(1).worker), Resource::kGpu);
  EXPECT_DOUBLE_EQ(s.makespan(), 6.0);

  const auto check = check_schedule(s, tasks, platform);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(HeteroPrio, NoSpoliationWhenDisabled) {
  const std::vector<Task> tasks{
      Task{10.0, 1.0},
      Task{10.0, 5.0},
  };
  const Platform platform(1, 1);
  HeteroPrioStats stats;
  const Schedule s =
      heteroprio(tasks, platform, {.enable_spoliation = false}, &stats);
  EXPECT_EQ(stats.spoliations, 0);
  EXPECT_TRUE(s.aborted().empty());
  EXPECT_DOUBLE_EQ(s.makespan(), 10.0);  // B held hostage on the CPU
}

TEST(HeteroPrio, SpoliationRequiresStrictImprovement) {
  // Thm 8 geometry: restarting on the GPU finishes exactly when the CPU
  // would; no spoliation may happen.
  const double phi = 1.6180339887498949;
  const std::vector<Task> tasks{
      Task{phi, 1.0, /*priority=*/1.0},        // X -> CPU
      Task{1.0, 1.0 / phi, /*priority=*/2.0},  // Y -> GPU
  };
  HeteroPrioStats stats;
  const Schedule s = heteroprio(tasks, Platform(1, 1), {}, &stats);
  EXPECT_EQ(stats.spoliations, 0);
  EXPECT_NEAR(s.makespan(), phi, 1e-9);
}

TEST(HeteroPrio, FirstIdleTimeReported) {
  const std::vector<Task> tasks{Task{4.0, 2.0}, Task{4.0, 2.0}};
  const Platform platform(2, 2);  // more workers than tasks
  HeteroPrioStats stats;
  (void)heteroprio(tasks, platform, {}, &stats);
  EXPECT_DOUBLE_EQ(stats.first_idle_time, 0.0);
}

TEST(HeteroPrio, ListPropertyNoIdleWithNonEmptyQueue) {
  // With 1 GPU and many equal tasks, the GPU must run them back to back.
  const std::vector<Task> tasks(10, Task{5.0, 1.0});
  const Platform platform(0, 1);
  const Schedule s = heteroprio(tasks, platform);
  EXPECT_DOUBLE_EQ(s.makespan(), 10.0);
}

// The log is fed through the obs::Probe, so -DHP_OBS_OFF (which compiles
// out all event emission) legitimately leaves it empty.
#ifndef HP_OBS_OFF
TEST(HeteroPrio, TimelineLogRecordsEvents) {
  const std::vector<Task> tasks{Task{10.0, 1.0}, Task{10.0, 5.0}};
  sim::TimelineLog log(true);
  HeteroPrioOptions options;
  options.log = &log;
  (void)heteroprio(tasks, Platform(1, 1), options);
  bool saw_start = false, saw_complete = false, saw_spoliate = false;
  for (const auto& e : log.entries()) {
    saw_start |= e.kind == sim::TraceKind::kStart;
    saw_complete |= e.kind == sim::TraceKind::kComplete;
    saw_spoliate |= e.kind == sim::TraceKind::kSpoliate;
  }
  EXPECT_TRUE(saw_start);
  EXPECT_TRUE(saw_complete);
  EXPECT_TRUE(saw_spoliate);
  EXPECT_FALSE(log.to_string(Platform(1, 1)).empty());
}
#endif  // HP_OBS_OFF

TEST(HeteroPrio, DeterministicAcrossRuns) {
  const std::vector<Task> tasks{
      Task{3.0, 1.0}, Task{5.0, 2.0}, Task{1.0, 2.0}, Task{2.0, 2.0},
  };
  const Platform platform(2, 1);
  const Schedule a = heteroprio(tasks, platform);
  const Schedule b = heteroprio(tasks, platform);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(a.placement(static_cast<TaskId>(i)).worker,
              b.placement(static_cast<TaskId>(i)).worker);
    EXPECT_DOUBLE_EQ(a.placement(static_cast<TaskId>(i)).start,
                     b.placement(static_cast<TaskId>(i)).start);
  }
}

TEST(HeteroPrio, VictimScanPrefersLatestCompletion) {
  // 2 CPUs run two CPU-hostile tasks with different completion times; the
  // single GPU must spoliate the later-finishing one first.
  const std::vector<Task> tasks{
      Task{30.0, 4.0},  // victim candidate, ECT 30
      Task{20.0, 4.0},  // ECT 20
      Task{100.0, 5.0},  // keeps GPU busy until 5
  };
  const Platform platform(2, 1);
  const Schedule s = heteroprio(tasks, platform);
  // GPU runs task 2 first (rho 20 highest), CPUs take tasks 0 and 1
  // (from the tail: rho 1.5 then 5... both CPU-bound).
  ASSERT_GE(s.aborted().size(), 1u);
  EXPECT_EQ(s.aborted()[0].task, 0);  // the ECT-30 task goes first
}

}  // namespace
}  // namespace hp
