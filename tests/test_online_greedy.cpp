#include "baselines/online_greedy.hpp"

#include <gtest/gtest.h>

#include "bounds/area_bound.hpp"
#include "bounds/exact_opt.hpp"
#include "core/heteroprio.hpp"
#include "model/generators.hpp"
#include "sched/validate.hpp"
#include "util/rng.hpp"

namespace hp {
namespace {

TEST(OnlineGreedy, EftPicksEarliestFinish) {
  // One CPU (p=2) vs one GPU (q=3): EFT takes the CPU.
  const std::vector<Task> tasks{Task{2.0, 3.0}};
  const Platform platform(1, 1);
  const Schedule s =
      online_greedy(tasks, platform, {OnlineRule::kEft, 1.0});
  EXPECT_EQ(platform.type_of(s.placement(0).worker), Resource::kCpu);
}

TEST(OnlineGreedy, ThresholdSplitsByAffinityOnly) {
  const std::vector<Task> tasks{
      Task{4.0, 1.0},  // rho 4 -> GPU
      Task{1.0, 4.0},  // rho 0.25 -> CPU
  };
  const Platform platform(1, 1);
  const Schedule s =
      online_greedy(tasks, platform, {OnlineRule::kThreshold, 1.0});
  EXPECT_EQ(platform.type_of(s.placement(0).worker), Resource::kGpu);
  EXPECT_EQ(platform.type_of(s.placement(1).worker), Resource::kCpu);
}

TEST(OnlineGreedy, ThresholdHasNoGuarantee) {
  // The classic failure of list scheduling without spoliation (§3): a task
  // with rho slightly above the threshold is sent to a loaded GPU even
  // though the CPUs are free.
  std::vector<Task> tasks;
  for (int i = 0; i < 8; ++i) tasks.push_back(Task{15.0, 10.0});  // rho 1.5
  const Platform platform(8, 1);
  const Schedule greedy =
      online_greedy(tasks, platform, {OnlineRule::kThreshold, 1.0});
  const Schedule hp_sched = heteroprio(tasks, platform);
  // Threshold: everything on the single GPU: 80. HeteroPrio: spread + steal.
  EXPECT_DOUBLE_EQ(greedy.makespan(), 80.0);
  EXPECT_LT(hp_sched.makespan(), 40.0);
}

TEST(OnlineGreedy, AllRulesProduceValidSchedules) {
  util::Rng rng(5);
  const Instance inst = uniform_instance({.num_tasks = 40}, rng);
  const Platform platform(3, 2);
  for (OnlineRule rule :
       {OnlineRule::kEft, OnlineRule::kThreshold, OnlineRule::kBalance}) {
    const Schedule s = online_greedy(inst.tasks(), platform, {rule, 1.0});
    const auto check = check_schedule(s, inst.tasks(), platform);
    EXPECT_TRUE(check.ok) << online_rule_name(rule) << ": " << check.message;
  }
}

TEST(OnlineGreedy, SingleResourceTypePlatforms) {
  const std::vector<Task> tasks{Task{1.0, 2.0}, Task{1.0, 2.0}};
  const Schedule cpu_only =
      online_greedy(tasks, Platform(2, 0), {OnlineRule::kEft, 1.0});
  EXPECT_DOUBLE_EQ(cpu_only.makespan(), 1.0);
  const Schedule gpu_only =
      online_greedy(tasks, Platform(0, 2), {OnlineRule::kThreshold, 1.0});
  EXPECT_DOUBLE_EQ(gpu_only.makespan(), 2.0);
}

TEST(OnlineGreedy, BalanceTracksAreaBoundOnManySmallTasks) {
  util::Rng rng(6);
  const Instance inst = uniform_instance({.num_tasks = 300}, rng);
  const Platform platform(4, 2);
  const Schedule s =
      online_greedy(inst.tasks(), platform, {OnlineRule::kBalance, 1.0});
  const double bound = area_bound_value(inst.tasks(), platform);
  // Balance keeps normalized loads close; with 300 small tasks it should
  // land within ~2x of the bound (no affinity awareness, so not 1x).
  EXPECT_LE(s.makespan(), 2.0 * bound);
}

TEST(OnlineGreedy, EftWithinGrahamStyleEnvelopeOnSmallInstances) {
  util::Rng rng(7);
  for (int rep = 0; rep < 8; ++rep) {
    UniformGenParams params;
    params.num_tasks = 8;
    params.accel_lo = 0.5;
    params.accel_hi = 4.0;
    const Instance inst = uniform_instance(params, rng);
    const Platform platform(2, 1);
    const Schedule s =
        online_greedy(inst.tasks(), platform, {OnlineRule::kEft, 1.0});
    const double opt = exact_optimal_makespan(inst.tasks(), platform);
    EXPECT_LE(s.makespan(), 4.0 * opt);
  }
}

TEST(OnlineGreedy, RuleNames) {
  EXPECT_STREQ(online_rule_name(OnlineRule::kEft), "online-eft");
  EXPECT_STREQ(online_rule_name(OnlineRule::kThreshold), "online-threshold");
  EXPECT_STREQ(online_rule_name(OnlineRule::kBalance), "online-balance");
}

}  // namespace
}  // namespace hp
