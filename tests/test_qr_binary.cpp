#include <gtest/gtest.h>

#include <map>

#include "baselines/heft.hpp"
#include "bounds/dag_lower_bound.hpp"
#include "dag/ranking.hpp"
#include "dag/validation.hpp"
#include "linalg/qr.hpp"

namespace hp {
namespace {

std::map<KernelKind, int> kind_histogram(const TaskGraph& g) {
  std::map<KernelKind, int> hist;
  for (const Task& t : g.tasks()) ++hist[t.kind];
  return hist;
}

class QrBinary : public ::testing::TestWithParam<int> {};

TEST_P(QrBinary, TaskCountMatchesFormula) {
  const int n = GetParam();
  const TaskGraph g = qr_binary_dag(n);
  EXPECT_EQ(g.size(), qr_binary_task_count(n));
}

TEST_P(QrBinary, WellFormed) {
  const TaskGraph g = qr_binary_dag(GetParam());
  const GraphCheck check = check_graph(g);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST_P(QrBinary, KernelMix) {
  const int n = GetParam();
  const TaskGraph g = qr_binary_dag(n);
  const auto hist = kind_histogram(g);
  // One GEQRT per (k, i>=k): N(N+1)/2 of them.
  EXPECT_EQ(hist.at(KernelKind::kGeqrt), n * (n + 1) / 2);
  if (n > 1) {
    // N-1-k merges per step k: N(N-1)/2 TTQRTs.
    EXPECT_EQ(hist.at(KernelKind::kTtqrt), n * (n - 1) / 2);
    EXPECT_GT(hist.at(KernelKind::kTtmqr), 0);
    EXPECT_GT(hist.at(KernelKind::kOrmqr), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, QrBinary, ::testing::Values(1, 2, 3, 5, 8));

TEST(QrBinaryVsFlat, PanelReductionDepthIsLogarithmic) {
  // The point of the binary tree: reducing one panel of R rows takes
  // ceil(log2(R)) merge levels instead of a length R-1 TS chain. Check the
  // deepest *single-step* merge chain: the step-0 TTQRTs that rewrite tile
  // (0,0) are exactly the merges at distances 1, 2, 4, ... — ceil(log2(N))
  // of them — while the flat DAG's step-0 TSQRTs form an N-1 chain.
  const int n = 24;
  const TaskGraph flat = qr_dag(n);
  const TaskGraph tree = qr_binary_dag(n);

  // Longest chain of consecutive same-kind panel kernels starting at the
  // entry GEQRT (task 0 in both generators).
  auto panel_depth = [](const TaskGraph& g, KernelKind merge_kind) {
    int depth = 0;
    TaskId cur = 0;  // GEQRT(0,0)
    for (;;) {
      TaskId next = kInvalidTask;
      for (TaskId succ : g.successors(cur)) {
        if (g.task(succ).kind == merge_kind) {
          next = succ;
          break;
        }
      }
      if (next == kInvalidTask) break;
      cur = next;
      ++depth;
    }
    return depth;
  };

  EXPECT_EQ(panel_depth(flat, KernelKind::kTsqrt), n - 1);
  EXPECT_EQ(panel_depth(tree, KernelKind::kTtqrt), 5);  // ceil(log2 24)
}

TEST(QrBinaryVsFlat, TreeHelpsSchedulersInMidRange) {
  // Deterministic empirical property at N=16 on the paper's platform: the
  // extra panel parallelism of the tree variant improves HEFT's makespan
  // ratio (and does not hurt HeteroPrio's), cf. bench_fmm_workload.
  const Platform platform(20, 4);
  auto ratio = [&](TaskGraph graph) {
    assign_priorities(graph, RankScheme::kMin);
    const double lb = dag_lower_bound(graph, platform).value();
    return heft(graph, platform, {.rank = RankScheme::kMin}).makespan() / lb;
  };
  EXPECT_LT(ratio(qr_binary_dag(16)), ratio(qr_dag(16)));
}

TEST(QrBinaryVsFlat, MoreTasksSameTrailingWork) {
  // The tree variant re-factors every panel tile (more, smaller tasks).
  EXPECT_GT(qr_binary_task_count(16), qr_task_count(16));
}

TEST(QrBinaryVsFlat, PanelFactorizationsIndependentWithinStep) {
  // In step k = 0 the GEQRT of each row has in-degree 0 (no TS chain).
  const TaskGraph g = qr_binary_dag(4);
  int independent_geqrt = 0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    const auto id = static_cast<TaskId>(i);
    if (g.task(id).kind == KernelKind::kGeqrt && g.in_degree(id) == 0) {
      ++independent_geqrt;
    }
  }
  EXPECT_EQ(independent_geqrt, 4);  // all four rows of step 0
}

}  // namespace
}  // namespace hp
