#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace hp::util {
namespace {

TEST(FormatDouble, TrimsTrailingZeros) {
  EXPECT_EQ(format_double(1.5, 3), "1.5");
  EXPECT_EQ(format_double(2.0, 3), "2");
  EXPECT_EQ(format_double(0.125, 3), "0.125");
}

TEST(FormatDouble, RespectsPrecision) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(1.995, 2), "2");  // rounds then trims
}

TEST(FormatDouble, HandlesSpecials) {
  EXPECT_EQ(format_double(std::nan(""), 3), "nan");
  EXPECT_EQ(format_double(INFINITY, 3), "inf");
  EXPECT_EQ(format_double(-INFINITY, 3), "-inf");
}

TEST(TableTest, PrintsHeaderAndRows) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(1.25);
  t.row().cell("b").cell(100LL);
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.25"), std::string::npos);
  EXPECT_NE(out.find("100"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, ColumnsAligned) {
  Table t({"a", "b"});
  t.row().cell("short").cell("x");
  t.row().cell("a-much-longer-cell").cell("y");
  std::ostringstream oss;
  t.print(oss);
  // Every line has the same length when columns are padded.
  std::istringstream in(oss.str());
  std::string line;
  std::size_t len = 0;
  while (std::getline(in, line)) {
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len);
  }
}

TEST(TableTest, ToCsv) {
  Table t({"x", "y"});
  t.row().cell(1LL).cell(2LL);
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

}  // namespace
}  // namespace hp::util
