// The online runtime's correctness anchor: a run whose arrivals all occur
// at t=0 with no faults is bitwise-identical to the batch engine — same
// placements, same aborted segments, same spoliation counters. The anchor
// must hold across every engine configuration (independent, DAG, faulty,
// noisy estimates, spoliation off) and must survive the online-only
// machinery (reschedule ticks, deadlines) as long as that machinery only
// observes.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "core/heteroprio.hpp"
#include "core/heteroprio_dag.hpp"
#include "dag/ranking.hpp"
#include "fault/fault_plan.hpp"
#include "linalg/cholesky.hpp"
#include "model/generators.hpp"
#include "obs/recorder.hpp"
#include "online/runtime.hpp"
#include "util/rng.hpp"

namespace hp {
namespace {

void expect_identical_schedules(const Schedule& batch, const Schedule& online) {
  ASSERT_EQ(batch.num_tasks(), online.num_tasks());
  for (std::size_t i = 0; i < batch.num_tasks(); ++i) {
    const Placement& pb = batch.placements()[i];
    const Placement& po = online.placements()[i];
    EXPECT_EQ(pb.worker, po.worker) << "task " << i;
    EXPECT_EQ(pb.start, po.start) << "task " << i;  // bitwise, no tolerance
    EXPECT_EQ(pb.end, po.end) << "task " << i;
  }
  ASSERT_EQ(batch.aborted().size(), online.aborted().size());
  for (std::size_t i = 0; i < batch.aborted().size(); ++i) {
    EXPECT_EQ(batch.aborted()[i].task, online.aborted()[i].task) << i;
    EXPECT_EQ(batch.aborted()[i].worker, online.aborted()[i].worker) << i;
    EXPECT_EQ(batch.aborted()[i].start, online.aborted()[i].start) << i;
    EXPECT_EQ(batch.aborted()[i].abort_time, online.aborted()[i].abort_time)
        << i;
  }
}

void expect_matching_engine_stats(const HeteroPrioStats& batch,
                                  const online::OnlineStats& online) {
  EXPECT_EQ(batch.spoliations, online.spoliations);
  EXPECT_EQ(batch.spoliation_attempts, online.spoliation_attempts);
  EXPECT_EQ(batch.spoliation_skips, online.spoliation_skips);
  EXPECT_EQ(batch.first_idle_time, online.first_idle_time);
}

std::vector<Task> mixed_tasks(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  const Instance inst = bimodal_instance(n, 0.5, rng);
  return {inst.tasks().begin(), inst.tasks().end()};
}

TaskGraph ranked_cholesky(int tiles) {
  TaskGraph g = cholesky_dag(tiles);
  assign_priorities(g, RankScheme::kMin);
  return g;
}

TEST(OnlineEquivalence, IndependentAllAtOriginIsBitwiseIdentical) {
  const std::vector<Task> tasks = mixed_tasks(60, 101);
  const Platform platform(4, 2);

  // Recorder sink: routes the batch engine through its general loop, the
  // code path the online runtime shares.
  obs::EventRecorder batch_events;
  HeteroPrioOptions batch_opts;
  batch_opts.sink = &batch_events;
  HeteroPrioStats batch_stats;
  const Schedule batch = heteroprio(tasks, platform, batch_opts, &batch_stats);

  online::OnlineStats stats;
  const Schedule run = online::online_run(tasks, platform, {}, &stats);

  expect_identical_schedules(batch, run);
  expect_matching_engine_stats(batch_stats, stats);
  EXPECT_EQ(stats.tasks_arrived, tasks.size());
  EXPECT_EQ(stats.tasks_admitted, tasks.size());
  EXPECT_EQ(stats.tasks_rejected, 0u);
  EXPECT_EQ(stats.final_mode, online::Mode::kHealthy);
  EXPECT_EQ(stats.mode_changes, 0u);
}

TEST(OnlineEquivalence, ExplicitAllZeroArrivalPlanMatchesTheImplicitOne) {
  const std::vector<Task> tasks = mixed_tasks(40, 7);
  const Platform platform(3, 1);

  online::ArrivalPlan plan;
  plan.resize(tasks.size());
  ASSERT_TRUE(plan.all_at_origin());
  online::OnlineOptions options;
  options.arrivals = &plan;

  expect_identical_schedules(online::online_run(tasks, platform),
                             online::online_run(tasks, platform, options));
  expect_identical_schedules(heteroprio(tasks, platform),
                             online::online_run(tasks, platform, options));
}

TEST(OnlineEquivalence, DagAllAtOriginIsBitwiseIdentical) {
  const TaskGraph g = ranked_cholesky(8);
  const Platform platform(4, 2);

  HeteroPrioStats batch_stats;
  const Schedule batch = heteroprio_dag(g, platform, {}, &batch_stats);

  online::OnlineStats stats;
  const Schedule run = online::online_run_dag(g, platform, {}, &stats);

  expect_identical_schedules(batch, run);
  expect_matching_engine_stats(batch_stats, stats);
}

TEST(OnlineEquivalence, SpoliationOffStillMatches) {
  const std::vector<Task> tasks = mixed_tasks(30, 55);
  const Platform platform(2, 2);

  HeteroPrioOptions batch_opts;
  batch_opts.enable_spoliation = false;
  online::OnlineOptions online_opts;
  online_opts.enable_spoliation = false;

  expect_identical_schedules(
      heteroprio(tasks, platform, batch_opts),
      online::online_run(tasks, platform, online_opts));
}

TEST(OnlineEquivalence, NoisyEstimatesStillMatch) {
  const std::vector<Task> estimates = mixed_tasks(48, 13);
  std::vector<Task> actuals = estimates;
  util::Rng rng(99);
  for (Task& t : actuals) {
    t.cpu_time *= rng.uniform(0.7, 1.4);
    t.gpu_time *= rng.uniform(0.7, 1.4);
  }
  const Platform platform(4, 2);

  HeteroPrioOptions batch_opts;
  batch_opts.actual_times = actuals;
  HeteroPrioStats batch_stats;
  const Schedule batch =
      heteroprio(estimates, platform, batch_opts, &batch_stats);

  online::OnlineOptions online_opts;
  online_opts.actual_times = actuals;
  online::OnlineStats stats;
  const Schedule run =
      online::online_run(estimates, platform, online_opts, &stats);

  expect_identical_schedules(batch, run);
  expect_matching_engine_stats(batch_stats, stats);
}

TEST(OnlineEquivalence, FaultyAllAtOriginIsBitwiseIdentical) {
  const TaskGraph g = ranked_cholesky(8);
  const Platform platform(4, 2);
  fault::FaultSpec spec;
  std::string error;
  ASSERT_TRUE(fault::parse_spec(
      "crashes=1,stragglers=2,slow=3,taskfail=0.1,retries=3,backoff=0.05,"
      "seed=17",
      &spec, &error))
      << error;
  spec.horizon = heteroprio_dag(g, platform).makespan();
  const fault::FaultPlan plan = fault::FaultPlan::generate(spec, platform);

  HeteroPrioOptions batch_opts;
  batch_opts.faults = &plan;
  HeteroPrioStats batch_stats;
  const Schedule batch = heteroprio_dag(g, platform, batch_opts, &batch_stats);

  online::OnlineOptions online_opts;
  online_opts.faults = &plan;
  online::OnlineStats stats;
  const Schedule run = online::online_run_dag(g, platform, online_opts, &stats);

  expect_identical_schedules(batch, run);
  EXPECT_EQ(batch_stats.recovery, stats.recovery);
  // Faults are incidents: the run leaves kHealthy even though nothing was
  // shed.
  if (stats.recovery.worker_crashes > 0 || stats.recovery.task_failures > 0 ||
      stats.recovery.straggler_windows > 0) {
    EXPECT_EQ(stats.final_mode, online::Mode::kDegraded);
  }
}

TEST(OnlineEquivalence, FaultyIndependentAllAtOriginIsBitwiseIdentical) {
  const std::vector<Task> tasks = mixed_tasks(50, 23);
  const Platform platform(3, 2);
  fault::FaultPlan plan;
  plan.add_crash(1, 2.0);
  plan.add_straggler(3, 0.5, 4.0, 3.0);
  plan.set_task_faults(0.15, 3, 0.1, 77);

  HeteroPrioOptions batch_opts;
  batch_opts.faults = &plan;
  HeteroPrioStats batch_stats;
  const Schedule batch = heteroprio(tasks, platform, batch_opts, &batch_stats);

  online::OnlineOptions online_opts;
  online_opts.faults = &plan;
  online::OnlineStats stats;
  const Schedule run = online::online_run(tasks, platform, online_opts, &stats);

  expect_identical_schedules(batch, run);
  EXPECT_EQ(batch_stats.recovery, stats.recovery);
}

TEST(OnlineEquivalence, RescheduleTicksNeverChangeAFaultFreeSchedule) {
  // Ticks only run the straggler scan and an extra dispatch pass; in a
  // fault-free run neither can act (no overdue attempt exists, and between
  // event batches idle workers imply an empty queue).
  const std::vector<Task> tasks = mixed_tasks(40, 31);
  const Platform platform(4, 2);

  online::OnlineOptions ticking;
  ticking.reschedule_period = 0.37;
  ticking.straggler_factor = 2.0;
  online::OnlineStats stats;
  const Schedule run = online::online_run(tasks, platform, ticking, &stats);

  expect_identical_schedules(heteroprio(tasks, platform), run);
  EXPECT_GT(stats.reschedule_ticks, 0u);
  EXPECT_EQ(stats.recovery.straggler_respawns, 0);
  EXPECT_EQ(stats.final_mode, online::Mode::kHealthy);
}

TEST(OnlineEquivalence, DeadlinesOnlyObserveAndNeverReschedule) {
  const std::vector<Task> tasks = mixed_tasks(60, 47);
  const Platform platform(2, 1);

  online::ArrivalPlan plan;
  plan.resize(tasks.size());
  // Impossible deadlines: everything at t=0 with a sliver of slack. The
  // schedule must stay bitwise identical; only the miss counters move.
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    plan.set(static_cast<TaskId>(i), 0.0, /*rel_deadline=*/1e-6);
  }
  online::OnlineOptions options;
  options.arrivals = &plan;
  online::OnlineStats stats;
  const Schedule run = online::online_run(tasks, platform, options, &stats);

  expect_identical_schedules(heteroprio(tasks, platform), run);
  EXPECT_GT(stats.deadline_misses, 0u);
  EXPECT_EQ(stats.final_mode, online::Mode::kDegraded);  // misses = incidents
}

TEST(OnlineEquivalence, OnlineRunsAreDeterministic) {
  const std::vector<Task> tasks = mixed_tasks(64, 3);
  const Platform platform(4, 2);
  online::ArrivalPlan plan = online::ArrivalPlan::generate(
      {.rate = 2.0, .deadline_factor = 8.0, .seed = 5}, tasks);
  fault::FaultPlan faults;
  faults.add_crash(0, 3.0);
  faults.set_task_faults(0.1, 3, 0.05, 11);

  online::OnlineOptions options;
  options.arrivals = &plan;
  options.faults = &faults;
  options.reschedule_period = 0.5;
  options.straggler_factor = 3.0;
  options.watermark_high = 8;

  obs::EventRecorder first_events, second_events;
  options.sink = &first_events;
  online::OnlineStats first_stats;
  const Schedule a = online::online_run(tasks, platform, options, &first_stats);
  options.sink = &second_events;
  online::OnlineStats second_stats;
  const Schedule b =
      online::online_run(tasks, platform, options, &second_stats);

  expect_identical_schedules(a, b);
  EXPECT_EQ(first_stats.recovery, second_stats.recovery);
  EXPECT_EQ(first_stats.deadline_misses, second_stats.deadline_misses);
  EXPECT_EQ(first_stats.replans, second_stats.replans);
  ASSERT_EQ(first_events.size(), second_events.size());
  for (std::size_t i = 0; i < first_events.size(); ++i) {
    EXPECT_EQ(first_events.events()[i], second_events.events()[i]) << i;
  }
}

}  // namespace
}  // namespace hp
