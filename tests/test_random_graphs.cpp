#include "dag/random_graphs.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "baselines/dualhp.hpp"
#include "baselines/heft.hpp"
#include "bounds/dag_lower_bound.hpp"
#include "core/heteroprio_dag.hpp"
#include "dag/ranking.hpp"
#include "dag/validation.hpp"
#include "sched/validate.hpp"

namespace hp {
namespace {

TEST(RandomLayered, StructureAsRequested) {
  util::Rng rng(1);
  LayeredDagParams params;
  params.layers = 5;
  params.width = 6;
  const TaskGraph g = random_layered_dag(params, rng);
  EXPECT_EQ(g.size(), 30u);
  EXPECT_TRUE(check_graph(g).ok);
  // Only layer 0 contains entry tasks.
  int sources = 0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    sources += g.in_degree(static_cast<TaskId>(i)) == 0;
  }
  EXPECT_EQ(sources, 6);
}

TEST(RandomLayered, DeterministicPerSeed) {
  LayeredDagParams params;
  util::Rng a(9), b(9);
  const TaskGraph ga = random_layered_dag(params, a);
  const TaskGraph gb = random_layered_dag(params, b);
  EXPECT_EQ(ga.num_edges(), gb.num_edges());
  for (std::size_t i = 0; i < ga.size(); ++i) {
    EXPECT_DOUBLE_EQ(ga.task(static_cast<TaskId>(i)).cpu_time,
                     gb.task(static_cast<TaskId>(i)).cpu_time);
  }
}

TEST(RandomSparse, AcyclicAndWithinWindow) {
  util::Rng rng(2);
  SparseDagParams params;
  params.num_tasks = 80;
  params.window = 10;
  const TaskGraph g = random_sparse_dag(params, rng);
  EXPECT_TRUE(check_graph(g).ok);
  for (std::size_t i = 0; i < g.size(); ++i) {
    for (TaskId succ : g.successors(static_cast<TaskId>(i))) {
      EXPECT_GT(succ, static_cast<TaskId>(i));
      EXPECT_LE(succ, static_cast<TaskId>(i) + params.window);
    }
  }
}

// The CSR predecessor arrays are built by mirroring the successor edges at
// finalize(); on a big sparse graph every edge must appear in both
// directions, the degree sums must both equal num_edges, and the cached
// topological order must schedule predecessors first.
TEST(RandomSparse, CsrMirrorsConsistentAndTopoCached) {
  util::Rng rng(4);
  SparseDagParams params;
  params.num_tasks = 1500;
  params.avg_out_degree = 4.0;
  const TaskGraph g = random_sparse_dag(params, rng);

  std::size_t out_sum = 0;
  std::size_t in_sum = 0;
  for (std::size_t v = 0; v < g.size(); ++v) {
    const TaskId id = static_cast<TaskId>(v);
    out_sum += g.out_degree(id);
    in_sum += g.in_degree(id);
    for (const TaskId succ : g.successors(id)) {
      const auto pred = g.predecessors(succ);
      EXPECT_TRUE(std::find(pred.begin(), pred.end(), id) != pred.end());
    }
  }
  EXPECT_EQ(out_sum, g.num_edges());
  EXPECT_EQ(in_sum, g.num_edges());

  const auto order = g.topo_order();
  ASSERT_EQ(order.size(), g.size());
  std::vector<std::size_t> pos(g.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[static_cast<std::size_t>(order[i])] = i;
  }
  for (std::size_t v = 0; v < g.size(); ++v) {
    for (const TaskId succ : g.successors(static_cast<TaskId>(v))) {
      EXPECT_LT(pos[v], pos[static_cast<std::size_t>(succ)]);
    }
  }
}

TEST(RandomSparse, AverageOutDegreeRoughlyAsRequested) {
  util::Rng rng(3);
  SparseDagParams params;
  params.num_tasks = 2000;
  params.avg_out_degree = 3.0;
  const TaskGraph g = random_sparse_dag(params, rng);
  const double avg =
      static_cast<double>(g.num_edges()) / static_cast<double>(g.size());
  EXPECT_NEAR(avg, 3.0, 0.3);
}

TEST(RandomDags, AllSchedulersValidOnRandomShapes) {
  util::Rng rng(4);
  const Platform platform(4, 2);
  for (int rep = 0; rep < 6; ++rep) {
    LayeredDagParams layered;
    layered.layers = 3 + static_cast<int>(rng.bounded(5));
    layered.width = 2 + static_cast<int>(rng.bounded(8));
    TaskGraph graphs[] = {random_layered_dag(layered, rng),
                          random_sparse_dag({}, rng)};
    for (TaskGraph& g : graphs) {
      assign_priorities(g, RankScheme::kMin);
      const double lb = dag_lower_bound(g, platform).value();
      const Schedule hp_s = heteroprio_dag(g, platform);
      const Schedule heft_s = heft(g, platform, {.rank = RankScheme::kMin});
      const Schedule dual_s = dualhp_dag(g, platform);
      for (const Schedule* s : {&hp_s, &heft_s, &dual_s}) {
        const auto check = check_schedule(*s, g, platform);
        EXPECT_TRUE(check.ok) << g.name() << " rep " << rep << ": "
                              << check.message;
        EXPECT_GE(s->makespan(), lb - 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace hp
