// MetricsCollector / PhaseScope behavior (obs/profile.hpp): deterministic
// tick-clock output, count-based sampling, path accumulation, merge and the
// registry export names.

#include "obs/profile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace hp::obs {
namespace {

TEST(Profile, PhaseNamesAreStableIdentifiers) {
  EXPECT_STREQ(phase_name(Phase::kEngine), "engine");
  EXPECT_STREQ(phase_name(Phase::kKeyBuild), "key_build");
  EXPECT_STREQ(phase_name(Phase::kSort), "sort");
  EXPECT_STREQ(phase_name(Phase::kDispatch), "dispatch");
  EXPECT_STREQ(phase_name(Phase::kReadyUpdate), "ready_update");
  EXPECT_STREQ(phase_name(Phase::kSpoliationScan), "spoliation_scan");
  EXPECT_STREQ(phase_name(Phase::kHeftRank), "heft_rank");
  EXPECT_STREQ(phase_name(Phase::kHeftGapSearch), "heft_gap_search");
  EXPECT_STREQ(phase_name(Phase::kDualHpBisection), "dualhp_bisection");
}

TEST(Profile, NullCollectorScopesAreHarmless) {
  const PhaseScope outer(nullptr, Phase::kEngine);
  const PhaseScope inner(nullptr, Phase::kSort);
}

TEST(Profile, PerItemPhasesSampleByDefault) {
  const MetricsCollector collector;
  EXPECT_EQ(collector.sample_shift(Phase::kEngine), 0u);
  EXPECT_EQ(collector.sample_shift(Phase::kKeyBuild), 0u);
  EXPECT_EQ(collector.sample_shift(Phase::kSort), 0u);
  EXPECT_EQ(collector.sample_shift(Phase::kDispatch),
            MetricsCollector::kDefaultSampleShift);
  EXPECT_EQ(collector.sample_shift(Phase::kReadyUpdate),
            MetricsCollector::kDefaultSampleShift);
  EXPECT_EQ(collector.sample_shift(Phase::kSpoliationScan),
            MetricsCollector::kDefaultSampleShift);
  EXPECT_EQ(collector.sample_shift(Phase::kHeftGapSearch),
            MetricsCollector::kDefaultSampleShift);
  EXPECT_EQ(collector.sample_shift(Phase::kDualHpBisection),
            MetricsCollector::kDefaultSampleShift);
}

TEST(Profile, CountBasedSamplingIsDeterministic) {
  TickClock clock;
  MetricsCollector collector(&clock);
  collector.set_sample_shift(Phase::kDispatch, 3);  // 1 in 8
  for (int i = 0; i < 100; ++i) {
    const PhaseScope scope(&collector, Phase::kDispatch);
  }
  const PhaseStats& stats = collector.stats(Phase::kDispatch);
  EXPECT_EQ(stats.calls, 100u);
  EXPECT_EQ(stats.sampled, 13u);  // entries 0, 8, ..., 96
  // Every timed scope reads the tick clock exactly twice, so each sampled
  // duration is one tick.
  EXPECT_EQ(stats.sampled_ns, 13u * 100u);
  EXPECT_DOUBLE_EQ(stats.scaled_total_ns(), 100.0 * 100.0);
  EXPECT_EQ(collector.phase_histogram(Phase::kDispatch).count(), 13u);
}

TEST(Profile, TickClockRunsAreByteIdentical) {
  const auto drive = [](MetricsCollector& collector) {
    for (int i = 0; i < 10; ++i) {
      const PhaseScope engine(&collector, Phase::kEngine);
      const PhaseScope sort(&collector, Phase::kSort);
      for (int j = 0; j < 7; ++j) {
        const PhaseScope dispatch(&collector, Phase::kDispatch);
      }
    }
  };
  TickClock clock_a, clock_b;
  MetricsCollector a(&clock_a), b(&clock_b);
  drive(a);
  drive(b);
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    const auto phase = static_cast<Phase>(p);
    EXPECT_EQ(a.stats(phase).calls, b.stats(phase).calls);
    EXPECT_EQ(a.stats(phase).sampled, b.stats(phase).sampled);
    EXPECT_EQ(a.stats(phase).sampled_ns, b.stats(phase).sampled_ns);
  }
  ASSERT_EQ(a.paths().size(), b.paths().size());
  for (std::size_t i = 0; i < a.paths().size(); ++i) {
    EXPECT_EQ(a.paths()[i].key, b.paths()[i].key);
    EXPECT_EQ(a.paths()[i].sampled_ns, b.paths()[i].sampled_ns);
  }
}

TEST(Profile, NestedScopesAccumulateDecodablePaths) {
  TickClock clock;
  MetricsCollector collector(&clock);
  {
    const PhaseScope engine(&collector, Phase::kEngine);
    const PhaseScope sort(&collector, Phase::kSort);
  }
  std::vector<std::string> paths;
  std::vector<Phase> frames;
  for (const MetricsCollector::PathTotal& total : collector.paths()) {
    MetricsCollector::decode_path(total.key, &frames);
    std::string joined;
    for (const Phase frame : frames) {
      if (!joined.empty()) joined += ";";
      joined += phase_name(frame);
    }
    paths.push_back(joined);
    EXPECT_GT(total.sampled_ns, 0u) << joined;
  }
  EXPECT_NE(std::find(paths.begin(), paths.end(), "engine"), paths.end());
  EXPECT_NE(std::find(paths.begin(), paths.end(), "engine;sort"), paths.end());
}

TEST(Profile, UnsampledParentStillAnchorsChildPaths) {
  // Even when a parent scope's entry is not sampled, a sampled child must
  // keep its ancestry in the path key.
  TickClock clock;
  MetricsCollector fresh(&clock);
  fresh.set_sample_shift(Phase::kDispatch, 4);  // entry 0 timed, 1..15 not
  {
    const PhaseScope p0(&fresh, Phase::kDispatch);
  }
  {
    const PhaseScope p1(&fresh, Phase::kDispatch);  // unsampled parent
    const PhaseScope child(&fresh, Phase::kSort);   // always sampled
  }
  std::vector<Phase> frames;
  bool found = false;
  for (const MetricsCollector::PathTotal& total : fresh.paths()) {
    MetricsCollector::decode_path(total.key, &frames);
    if (frames.size() == 2 && frames[0] == Phase::kDispatch &&
        frames[1] == Phase::kSort) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Profile, MergeSumsStatsAndPaths) {
  TickClock clock_a, clock_b;
  MetricsCollector a(&clock_a), b(&clock_b);
  {
    const PhaseScope scope(&a, Phase::kEngine);
  }
  {
    const PhaseScope scope(&b, Phase::kEngine);
  }
  {
    const PhaseScope scope(&b, Phase::kSort);
  }
  a.merge(b);
  EXPECT_EQ(a.stats(Phase::kEngine).calls, 2u);
  EXPECT_EQ(a.stats(Phase::kEngine).sampled, 2u);
  EXPECT_EQ(a.stats(Phase::kSort).calls, 1u);
  EXPECT_EQ(a.phase_histogram(Phase::kEngine).count(), 2u);
}

TEST(Profile, ExportToRegistryUsesPhaseNames) {
  TickClock clock;
  MetricsCollector collector(&clock);
  {
    const PhaseScope engine(&collector, Phase::kEngine);
    const PhaseScope sort(&collector, Phase::kSort);
  }
  MetricsRegistry registry;
  collector.export_to(&registry);
  ASSERT_NE(registry.find_counter("phase_engine_calls"), nullptr);
  EXPECT_DOUBLE_EQ(*registry.find_counter("phase_engine_calls"), 1.0);
  ASSERT_NE(registry.find_counter("phase_sort_sampled"), nullptr);
  EXPECT_DOUBLE_EQ(*registry.find_counter("phase_sort_sampled"), 1.0);
  ASSERT_NE(registry.find_gauge("phase_engine_total_ns"), nullptr);
  EXPECT_GT(*registry.find_gauge("phase_engine_total_ns"), 0.0);
  ASSERT_NE(registry.find_histogram("phase_sort_ns"), nullptr);
  EXPECT_EQ(registry.find_histogram("phase_sort_ns")->count(), 1u);
  // Phases that never ran are not exported.
  EXPECT_EQ(registry.find_counter("phase_heft_rank_calls"), nullptr);
}

}  // namespace
}  // namespace hp::obs
