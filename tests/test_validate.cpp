#include "sched/validate.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hp {
namespace {

std::vector<Task> two_tasks() {
  return {Task{2.0, 1.0}, Task{4.0, 2.0}};
}

TEST(Validate, AcceptsValidSchedule) {
  const auto tasks = two_tasks();
  const Platform platform(1, 1);
  Schedule s(2);
  s.place(0, 0, 0.0, 2.0);  // CPU: duration p=2
  s.place(1, 1, 0.0, 2.0);  // GPU: duration q=2
  const auto check = check_schedule(s, tasks, platform);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(Validate, RejectsUnplacedTask) {
  const auto tasks = two_tasks();
  Schedule s(2);
  s.place(0, 0, 0.0, 2.0);
  EXPECT_FALSE(check_schedule(s, tasks, Platform(1, 1)).ok);
}

TEST(Validate, RejectsWrongDuration) {
  const auto tasks = two_tasks();
  Schedule s(2);
  s.place(0, 0, 0.0, 1.5);  // p=2 but runs 1.5
  s.place(1, 1, 0.0, 2.0);
  EXPECT_FALSE(check_schedule(s, tasks, Platform(1, 1)).ok);
}

TEST(Validate, RejectsOverlapOnWorker) {
  const auto tasks = two_tasks();
  Schedule s(2);
  s.place(0, 0, 0.0, 2.0);
  s.place(1, 0, 1.0, 5.0);  // overlaps task 0 on the same CPU
  EXPECT_FALSE(check_schedule(s, tasks, Platform(1, 1)).ok);
}

TEST(Validate, RejectsInvalidWorker) {
  const auto tasks = two_tasks();
  Schedule s(2);
  s.place(0, 5, 0.0, 2.0);
  s.place(1, 1, 0.0, 2.0);
  EXPECT_FALSE(check_schedule(s, tasks, Platform(1, 1)).ok);
}

TEST(Validate, RejectsNegativeStart) {
  const auto tasks = two_tasks();
  Schedule s(2);
  s.place(0, 0, -1.0, 1.0);
  s.place(1, 1, 0.0, 2.0);
  EXPECT_FALSE(check_schedule(s, tasks, Platform(1, 1)).ok);
}

TEST(Validate, AcceptsAbortedSegmentShorterThanTask) {
  const auto tasks = two_tasks();
  Schedule s(2);
  s.place(0, 0, 0.0, 2.0);
  s.place(1, 1, 1.0, 3.0);
  s.add_aborted(1, 0, 2.0, 3.0);  // task 1 ran 1.0 < p=4 on the CPU
  const auto check = check_schedule(s, tasks, Platform(1, 1));
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(Validate, RejectsAbortedSegmentLongerThanFullTime) {
  const auto tasks = two_tasks();
  Schedule s(2);
  s.place(0, 0, 0.0, 2.0);
  s.place(1, 1, 0.0, 2.0);
  s.add_aborted(1, 1, 3.0, 6.0);  // ran 3.0 > q=2 on GPU
  EXPECT_FALSE(check_schedule(s, tasks, Platform(1, 1)).ok);
}

TEST(Validate, RejectsAbortedOverlapWithPlacement) {
  const auto tasks = two_tasks();
  Schedule s(2);
  s.place(0, 0, 0.0, 2.0);
  s.place(1, 1, 0.0, 2.0);
  s.add_aborted(1, 0, 1.0, 2.5);  // overlaps task 0 on CPU 0
  EXPECT_FALSE(check_schedule(s, tasks, Platform(1, 1)).ok);
}

TEST(Validate, DagPrecedenceViolationDetected) {
  TaskGraph g("chain");
  const TaskId a = g.add_task(Task{1.0, 1.0});
  const TaskId b = g.add_task(Task{1.0, 1.0});
  g.add_edge(a, b);
  g.finalize();
  const Platform platform(1, 1);
  Schedule s(2);
  s.place(a, 0, 0.0, 1.0);
  s.place(b, 1, 0.5, 1.5);  // starts before predecessor ends
  EXPECT_FALSE(check_schedule(s, g, platform).ok);

  Schedule ok(2);
  ok.place(a, 0, 0.0, 1.0);
  ok.place(b, 1, 1.0, 2.0);
  const auto check = check_schedule(ok, g, platform);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(Validate, MultiAttemptRetrySegmentsAccepted) {
  // A faulty run: task 1 failed once on the GPU, was retried on the same
  // worker and completed. The aborted and final segments must not be
  // flagged as an overlap.
  const auto tasks = two_tasks();
  Schedule s(2);
  s.place(0, 0, 0.0, 2.0);
  s.add_aborted(1, 1, 0.0, 1.0);  // attempt 0, killed after 1.0 < q=2
  s.place(1, 1, 1.5, 3.5);        // attempt 1 after a 0.5 backoff
  const auto check = check_schedule(s, tasks, Platform(1, 1));
  EXPECT_TRUE(check.ok) << check.message;

  // Attempts of one task still may not overlap each other.
  Schedule bad(2);
  bad.place(0, 0, 0.0, 2.0);
  bad.add_aborted(1, 1, 0.0, 1.0);
  bad.place(1, 1, 0.5, 2.5);
  EXPECT_FALSE(check_schedule(bad, tasks, Platform(1, 1)).ok);
}

TEST(Validate, RelaxedCompletenessAllowsUnplacedTasks) {
  const auto tasks = two_tasks();
  Schedule s(2);
  s.place(0, 0, 0.0, 2.0);  // task 1 abandoned by a degraded run
  EXPECT_FALSE(check_schedule(s, tasks, Platform(1, 1)).ok);
  const ScheduleCheckOptions degraded{.require_complete = false};
  const auto check = check_schedule(s, tasks, Platform(1, 1), degraded);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(Validate, RelaxedCompletenessStillChecksWhatRan) {
  const auto tasks = two_tasks();
  const ScheduleCheckOptions degraded{.require_complete = false};
  Schedule s(2);
  s.place(0, 5, 0.0, 2.0);  // invalid worker is a violation regardless
  EXPECT_FALSE(check_schedule(s, tasks, Platform(1, 1), degraded).ok);
}

TEST(Validate, PlacedSuccessorOfUnplacedPredecessorRejected) {
  TaskGraph g("chain");
  const TaskId a = g.add_task(Task{1.0, 1.0});
  const TaskId b = g.add_task(Task{1.0, 1.0});
  g.add_edge(a, b);
  g.finalize();
  const ScheduleCheckOptions degraded{.require_complete = false};

  Schedule s(2);
  s.place(b, 1, 0.0, 1.0);  // b ran although its predecessor never did
  EXPECT_FALSE(check_schedule(s, g, Platform(1, 1), degraded).ok);

  Schedule ok(2);
  ok.place(a, 0, 0.0, 1.0);  // b abandoned: fine under the relaxation
  const auto check = check_schedule(ok, g, Platform(1, 1), degraded);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(Validate, RelaxedDurationsAcceptStretchedSegments) {
  // A straggler window stretched task 0's wall-clock duration beyond its
  // nominal p=2; exact_durations=false accepts it, the default rejects it.
  const auto tasks = two_tasks();
  Schedule s(2);
  s.place(0, 0, 0.0, 3.0);
  s.place(1, 1, 0.0, 2.0);
  EXPECT_FALSE(check_schedule(s, tasks, Platform(1, 1)).ok);
  const ScheduleCheckOptions stretched{.exact_durations = false};
  const auto check = check_schedule(s, tasks, Platform(1, 1), stretched);
  EXPECT_TRUE(check.ok) << check.message;

  // Aborted segments longer than the full time are fine when stretched...
  Schedule aborted(2);
  aborted.place(0, 0, 0.0, 3.0);
  aborted.place(1, 1, 4.0, 6.0);
  aborted.add_aborted(1, 1, 0.0, 3.5);  // ran 3.5 > q=2
  EXPECT_TRUE(check_schedule(aborted, tasks, Platform(1, 1), stretched).ok);

  // ...but negative-length segments never are.
  Schedule negative(2);
  negative.place(0, 0, 2.0, 1.0);
  negative.place(1, 1, 0.0, 2.0);
  EXPECT_FALSE(check_schedule(negative, tasks, Platform(1, 1), stretched).ok);
}

TEST(Validate, MismatchedTaskCountRejected) {
  const auto tasks = two_tasks();
  Schedule s(1);
  s.place(0, 0, 0.0, 2.0);
  EXPECT_FALSE(check_schedule(s, tasks, Platform(1, 1)).ok);
}

}  // namespace
}  // namespace hp
