#include "sched/validate.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hp {
namespace {

std::vector<Task> two_tasks() {
  return {Task{2.0, 1.0}, Task{4.0, 2.0}};
}

TEST(Validate, AcceptsValidSchedule) {
  const auto tasks = two_tasks();
  const Platform platform(1, 1);
  Schedule s(2);
  s.place(0, 0, 0.0, 2.0);  // CPU: duration p=2
  s.place(1, 1, 0.0, 2.0);  // GPU: duration q=2
  const auto check = check_schedule(s, tasks, platform);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(Validate, RejectsUnplacedTask) {
  const auto tasks = two_tasks();
  Schedule s(2);
  s.place(0, 0, 0.0, 2.0);
  EXPECT_FALSE(check_schedule(s, tasks, Platform(1, 1)).ok);
}

TEST(Validate, RejectsWrongDuration) {
  const auto tasks = two_tasks();
  Schedule s(2);
  s.place(0, 0, 0.0, 1.5);  // p=2 but runs 1.5
  s.place(1, 1, 0.0, 2.0);
  EXPECT_FALSE(check_schedule(s, tasks, Platform(1, 1)).ok);
}

TEST(Validate, RejectsOverlapOnWorker) {
  const auto tasks = two_tasks();
  Schedule s(2);
  s.place(0, 0, 0.0, 2.0);
  s.place(1, 0, 1.0, 5.0);  // overlaps task 0 on the same CPU
  EXPECT_FALSE(check_schedule(s, tasks, Platform(1, 1)).ok);
}

TEST(Validate, RejectsInvalidWorker) {
  const auto tasks = two_tasks();
  Schedule s(2);
  s.place(0, 5, 0.0, 2.0);
  s.place(1, 1, 0.0, 2.0);
  EXPECT_FALSE(check_schedule(s, tasks, Platform(1, 1)).ok);
}

TEST(Validate, RejectsNegativeStart) {
  const auto tasks = two_tasks();
  Schedule s(2);
  s.place(0, 0, -1.0, 1.0);
  s.place(1, 1, 0.0, 2.0);
  EXPECT_FALSE(check_schedule(s, tasks, Platform(1, 1)).ok);
}

TEST(Validate, AcceptsAbortedSegmentShorterThanTask) {
  const auto tasks = two_tasks();
  Schedule s(2);
  s.place(0, 0, 0.0, 2.0);
  s.place(1, 1, 1.0, 3.0);
  s.add_aborted(1, 0, 2.0, 3.0);  // task 1 ran 1.0 < p=4 on the CPU
  const auto check = check_schedule(s, tasks, Platform(1, 1));
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(Validate, RejectsAbortedSegmentLongerThanFullTime) {
  const auto tasks = two_tasks();
  Schedule s(2);
  s.place(0, 0, 0.0, 2.0);
  s.place(1, 1, 0.0, 2.0);
  s.add_aborted(1, 1, 3.0, 6.0);  // ran 3.0 > q=2 on GPU
  EXPECT_FALSE(check_schedule(s, tasks, Platform(1, 1)).ok);
}

TEST(Validate, RejectsAbortedOverlapWithPlacement) {
  const auto tasks = two_tasks();
  Schedule s(2);
  s.place(0, 0, 0.0, 2.0);
  s.place(1, 1, 0.0, 2.0);
  s.add_aborted(1, 0, 1.0, 2.5);  // overlaps task 0 on CPU 0
  EXPECT_FALSE(check_schedule(s, tasks, Platform(1, 1)).ok);
}

TEST(Validate, DagPrecedenceViolationDetected) {
  TaskGraph g("chain");
  const TaskId a = g.add_task(Task{1.0, 1.0});
  const TaskId b = g.add_task(Task{1.0, 1.0});
  g.add_edge(a, b);
  g.finalize();
  const Platform platform(1, 1);
  Schedule s(2);
  s.place(a, 0, 0.0, 1.0);
  s.place(b, 1, 0.5, 1.5);  // starts before predecessor ends
  EXPECT_FALSE(check_schedule(s, g, platform).ok);

  Schedule ok(2);
  ok.place(a, 0, 0.0, 1.0);
  ok.place(b, 1, 1.0, 2.0);
  const auto check = check_schedule(ok, g, platform);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(Validate, MismatchedTaskCountRejected) {
  const auto tasks = two_tasks();
  Schedule s(1);
  s.place(0, 0, 0.0, 2.0);
  EXPECT_FALSE(check_schedule(s, tasks, Platform(1, 1)).ok);
}

}  // namespace
}  // namespace hp
