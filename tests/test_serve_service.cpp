// Tests for serve/service: admission control, the zero-silent-drop
// accounting identity, per-tenant metrics isolation, graceful drain, and
// the determinism contract (a response is bitwise-identical to the direct
// engine call no matter which worker served it or what admission pressure
// looked like).
//
// ServeService.* runs in the `serve`-labeled aggregate, which the
// ThreadSanitizer CI job executes alongside `-L par`.

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

#include "model/generators.hpp"
#include "serve/service.hpp"
#include "util/rng.hpp"

namespace hp::serve {
namespace {

/// Independent uniform workload of `n` tasks, deterministic in `seed`.
Request make_request(std::size_t n, std::uint64_t seed,
                     Backend backend = Backend::kHp, int tenant = 0) {
  util::Rng rng(util::seed_from_cell({seed, static_cast<std::uint64_t>(n)}));
  UniformGenParams params;
  params.num_tasks = n;
  const Instance inst = uniform_instance(params, rng);
  Request request;
  request.tenant = tenant;
  request.backend = backend;
  request.platform = Platform(2, 1);
  TaskGraph graph("unit-" + std::to_string(seed));
  for (const Task& t : inst.tasks()) {
    Task task = t;
    task.priority = rng.uniform(0.0, 16.0);
    graph.add_task(task);
  }
  graph.finalize();
  request.graph = std::move(graph);
  return request;
}

TEST(ServeService, SingleRequestMatchesDirectRunBitwise) {
  for (const Backend backend :
       {Backend::kHp, Backend::kHpNoSpol, Backend::kHeft, Backend::kDualHp}) {
    const Request original = make_request(30, 7, backend);
    const Response direct = execute_request(original);

    ServiceOptions options;
    options.workers = 1;
    options.max_clients = 1;
    Service service(options);
    Service::Ticket ticket = service.submit(Request(original), 0);
    EXPECT_EQ(ticket.admission, Admission::kAccepted);
    const Response response = ticket.response.get();
    EXPECT_EQ(response.status, ResponseStatus::kCompleted);
    EXPECT_EQ(response.id, ticket.id);
    std::string why;
    EXPECT_TRUE(identical_schedules(response.schedule, direct.schedule, &why))
        << backend_name(backend) << ": " << why;
    EXPECT_EQ(response.makespan, direct.makespan);
    service.drain();
    const Service::Accounting acct = service.accounting();
    EXPECT_TRUE(acct.balanced());
    EXPECT_EQ(acct.completed, 1u);
    EXPECT_EQ(acct.in_flight, 0u);
  }
}

TEST(ServeService, AccountingBalancesAtEveryObservationPoint) {
  ServiceOptions options;
  options.workers = 2;
  options.max_clients = 1;
  Service service(options);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 24; ++i) {
    Service::Ticket ticket =
        service.submit(make_request(20, static_cast<std::uint64_t>(i)), 0);
    futures.push_back(std::move(ticket.response));
    // The identity holds mid-stream, not just at quiescence.
    EXPECT_TRUE(service.accounting().balanced()) << "after submission " << i;
  }
  for (std::future<Response>& f : futures) {
    EXPECT_EQ(f.get().status, ResponseStatus::kCompleted);
    EXPECT_TRUE(service.accounting().balanced());
  }
  service.drain();
  const Service::Accounting acct = service.accounting();
  EXPECT_TRUE(acct.balanced());
  EXPECT_EQ(acct.submitted, 24u);
  EXPECT_EQ(acct.completed, 24u);
  EXPECT_EQ(acct.rejected, 0u);
  EXPECT_EQ(acct.in_flight, 0u);
}

// Pin the single worker under a long request, then burst past the high
// watermark: with the reject policy every overflow submission must come
// back answered (kRejected), never dropped.
TEST(ServeService, RejectPolicyAnswersEveryShedRequest) {
  ServiceOptions options;
  options.workers = 1;
  options.max_clients = 1;
  options.watermark_high = 2;
  options.shed_policy = online::ShedPolicy::kReject;
  Service service(options);

  Service::Ticket big = service.submit(make_request(60000, 1), 0);
  std::vector<Service::Ticket> burst;
  for (int i = 0; i < 12; ++i) {
    burst.push_back(
        service.submit(make_request(10, static_cast<std::uint64_t>(i)), 0));
  }
  int rejected_tickets = 0;
  int rejected_responses = 0;
  for (Service::Ticket& t : burst) {
    if (t.admission == Admission::kRejected) ++rejected_tickets;
    const Response r = t.response.get();
    if (r.status == ResponseStatus::kRejected) ++rejected_responses;
  }
  EXPECT_EQ(big.response.get().status, ResponseStatus::kCompleted);
  service.drain();
  EXPECT_EQ(rejected_tickets, rejected_responses)
      << "a shed request was not answered as rejected";
  EXPECT_GT(rejected_tickets, 0)
      << "the watermark never tripped under a pinned worker";
  const Service::Accounting acct = service.accounting();
  EXPECT_TRUE(acct.balanced());
  EXPECT_EQ(acct.submitted, 13u);
  EXPECT_EQ(acct.completed + acct.rejected, 13u);
  EXPECT_GE(acct.shed_mode_changes, 1u);
}

// Same pressure under the defer policy: overflow parks instead of failing,
// and drain() force-admits the park — everything completes, nothing is
// rejected or lost.
TEST(ServeService, DeferPolicyCompletesEverything) {
  ServiceOptions options;
  options.workers = 1;
  options.max_clients = 1;
  options.watermark_high = 2;
  options.shed_policy = online::ShedPolicy::kDefer;
  Service service(options);

  std::vector<Service::Ticket> tickets;
  tickets.push_back(service.submit(make_request(60000, 1), 0));
  for (int i = 0; i < 12; ++i) {
    tickets.push_back(
        service.submit(make_request(10, static_cast<std::uint64_t>(i)), 0));
  }
  int deferred = 0;
  for (const Service::Ticket& t : tickets) {
    EXPECT_NE(t.admission, Admission::kRejected);
    if (t.admission == Admission::kDeferred) ++deferred;
  }
  for (Service::Ticket& t : tickets) {
    EXPECT_EQ(t.response.get().status, ResponseStatus::kCompleted);
  }
  service.drain();
  const Service::Accounting acct = service.accounting();
  EXPECT_TRUE(acct.balanced());
  EXPECT_EQ(acct.completed, 13u);
  EXPECT_EQ(acct.rejected, 0u);
  EXPECT_GT(deferred, 0) << "the watermark never tripped";
  EXPECT_EQ(acct.deferred, static_cast<std::uint64_t>(deferred));
}

TEST(ServeService, QueueHardCapConvertsAcceptanceToRejection) {
  ServiceOptions options;
  options.workers = 1;
  options.max_clients = 1;
  options.queue_capacity = 1;  // custody cap, no admission watermark
  Service service(options);

  std::vector<Service::Ticket> tickets;
  tickets.push_back(service.submit(make_request(60000, 1), 0));
  for (int i = 0; i < 8; ++i) {
    tickets.push_back(
        service.submit(make_request(10, static_cast<std::uint64_t>(i)), 0));
  }
  std::uint64_t rejected = 0;
  for (Service::Ticket& t : tickets) {
    const Response r = t.response.get();
    rejected += r.status == ResponseStatus::kRejected ? 1 : 0;
  }
  service.drain();
  const Service::Accounting acct = service.accounting();
  EXPECT_TRUE(acct.balanced());
  EXPECT_EQ(acct.rejected, rejected);
  EXPECT_EQ(acct.completed + acct.rejected, 9u);
  EXPECT_GT(rejected, 0u) << "the custody cap never bit";
}

TEST(ServeService, TenantMetricsIsolateTraffic) {
  ServiceOptions options;
  options.workers = 2;
  options.max_clients = 1;
  Service service(options);
  std::vector<std::future<Response>> futures;
  const int per_tenant[] = {5, 3, 0, 7};
  for (int tenant = 0; tenant < 4; ++tenant) {
    for (int i = 0; i < per_tenant[tenant]; ++i) {
      futures.push_back(
          service
              .submit(make_request(15, static_cast<std::uint64_t>(i),
                                   Backend::kHp, tenant),
                      0)
              .response);
    }
  }
  for (std::future<Response>& f : futures) f.get();
  service.drain();

  EXPECT_EQ(service.tenants(), (std::vector<int>{0, 1, 3}));
  for (const int tenant : {0, 1, 3}) {
    const obs::MetricsRegistry metrics = service.tenant_metrics(tenant);
    const std::uint64_t want =
        static_cast<std::uint64_t>(per_tenant[tenant]);
    const double* submitted = metrics.find_counter("serve_requests_submitted");
    const double* completed = metrics.find_counter("serve_requests_completed");
    ASSERT_NE(submitted, nullptr);
    ASSERT_NE(completed, nullptr);
    EXPECT_EQ(static_cast<std::uint64_t>(*submitted), want) << tenant;
    EXPECT_EQ(static_cast<std::uint64_t>(*completed), want) << tenant;
    const obs::Histogram* latency =
        metrics.find_histogram("serve_latency_seconds");
    ASSERT_NE(latency, nullptr) << tenant;
    EXPECT_EQ(latency->count(), want) << tenant;
    EXPECT_GT(latency->min(), 0.0) << tenant;
  }
}

TEST(ServeService, SubmitAfterDrainIsRejectedNotDropped) {
  Service service(ServiceOptions{.workers = 1, .max_clients = 1});
  service.drain();
  EXPECT_TRUE(service.draining());
  Service::Ticket ticket = service.submit(make_request(10, 3), 0);
  EXPECT_EQ(ticket.admission, Admission::kRejected);
  EXPECT_EQ(ticket.response.get().status, ResponseStatus::kRejected);
  EXPECT_TRUE(service.accounting().balanced());
}

TEST(ServeService, DrainIsIdempotentAndDestructorSafe) {
  ServiceOptions options;
  options.workers = 2;
  options.max_clients = 1;
  auto service = std::make_unique<Service>(options);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(
        service->submit(make_request(12, static_cast<std::uint64_t>(i)), 0)
            .response);
  }
  service->drain();
  service->drain();  // second call is a no-op
  for (std::future<Response>& f : futures) {
    EXPECT_EQ(f.get().status, ResponseStatus::kCompleted);
  }
  EXPECT_EQ(service->accounting().in_flight, 0u);
  service.reset();  // ~Service after an explicit drain
}

TEST(ServeService, DestructorDrainsOutstandingWork) {
  std::vector<std::future<Response>> futures;
  {
    ServiceOptions options;
    options.workers = 2;
    options.max_clients = 1;
    Service service(options);
    for (int i = 0; i < 10; ++i) {
      futures.push_back(
          service.submit(make_request(12, static_cast<std::uint64_t>(i)), 0)
              .response);
    }
    // No drain(): the destructor owes every future an answer.
  }
  for (std::future<Response>& f : futures) {
    EXPECT_EQ(f.get().status, ResponseStatus::kCompleted);
  }
}

}  // namespace
}  // namespace hp::serve
