#include "dag/task_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "dag/validation.hpp"

namespace hp {
namespace {

TaskGraph diamond() {
  //   a
  //  / \
  // b   c
  //  \ /
  //   d
  TaskGraph g("diamond");
  const TaskId a = g.add_task(Task{1.0, 1.0});
  const TaskId b = g.add_task(Task{1.0, 1.0});
  const TaskId c = g.add_task(Task{1.0, 1.0});
  const TaskId d = g.add_task(Task{1.0, 1.0});
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  g.finalize();
  return g;
}

TEST(TaskGraphTest, SizesAndDegrees) {
  const TaskGraph g = diamond();
  EXPECT_EQ(g.size(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.in_degree(0), 0u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(3), 2u);
  EXPECT_EQ(g.out_degree(3), 0u);
}

TEST(TaskGraphTest, AdjacencyContents) {
  const TaskGraph g = diamond();
  const auto succ = g.successors(0);
  EXPECT_TRUE(std::find(succ.begin(), succ.end(), 1) != succ.end());
  EXPECT_TRUE(std::find(succ.begin(), succ.end(), 2) != succ.end());
  const auto pred = g.predecessors(3);
  EXPECT_TRUE(std::find(pred.begin(), pred.end(), 1) != pred.end());
  EXPECT_TRUE(std::find(pred.begin(), pred.end(), 2) != pred.end());
}

TEST(TaskGraphTest, DuplicateEdgesDeduplicated) {
  TaskGraph g("dup");
  const TaskId a = g.add_task(Task{1.0, 1.0});
  const TaskId b = g.add_task(Task{1.0, 1.0});
  g.add_edge(a, b);
  g.add_edge(a, b);
  g.add_edge(a, b);
  g.finalize();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.out_degree(a), 1u);
}

TEST(TaskGraphTest, TopologicalOrderRespectsEdges) {
  const TaskGraph g = diamond();
  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[static_cast<std::size_t>(order[i])] = i;
  }
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[1], pos[3]);
  EXPECT_LT(pos[2], pos[3]);
}

TEST(TaskGraphTest, CycleDetected) {
  TaskGraph g("cycle");
  const TaskId a = g.add_task(Task{1.0, 1.0});
  const TaskId b = g.add_task(Task{1.0, 1.0});
  g.add_edge(a, b);
  g.add_edge(b, a);
  g.finalize();
  EXPECT_FALSE(g.is_dag());
  EXPECT_TRUE(g.topological_order().empty());
}

TEST(TaskGraphTest, EmptyGraphIsDag) {
  TaskGraph g("empty");
  g.finalize();
  EXPECT_TRUE(g.is_dag());
  EXPECT_EQ(g.size(), 0u);
}

TEST(TaskGraphTest, FinalizeIdempotent) {
  TaskGraph g = diamond();
  g.finalize();
  g.finalize();
  EXPECT_EQ(g.num_edges(), 4u);
}

TEST(TaskGraphTest, MutationInvalidatesFinalization) {
  TaskGraph g = diamond();
  EXPECT_TRUE(g.finalized());
  g.add_task(Task{1.0, 1.0});
  EXPECT_FALSE(g.finalized());
  g.finalize();
  EXPECT_EQ(g.size(), 5u);
  EXPECT_EQ(g.in_degree(4), 0u);
}

TEST(TaskGraphTest, ToInstanceCopiesTasks) {
  TaskGraph g("src");
  g.add_task(Task{2.0, 0.5});
  g.add_task(Task{3.0, 1.5});
  g.finalize();
  const Instance inst = g.to_instance();
  ASSERT_EQ(inst.size(), 2u);
  EXPECT_DOUBLE_EQ(inst[0].cpu_time, 2.0);
  EXPECT_DOUBLE_EQ(inst[1].gpu_time, 1.5);
  EXPECT_EQ(inst.name(), "src");
}

TEST(GraphValidation, AcceptsWellFormedGraph) {
  const TaskGraph g = diamond();
  EXPECT_TRUE(check_graph(g).ok);
}

TEST(GraphValidation, RejectsNonPositiveTimes) {
  TaskGraph g("bad");
  g.add_task(Task{0.0, 1.0});
  g.finalize();
  EXPECT_FALSE(check_graph(g).ok);
}

TEST(GraphValidation, RejectsCycle) {
  TaskGraph g("cycle");
  const TaskId a = g.add_task(Task{1.0, 1.0});
  const TaskId b = g.add_task(Task{1.0, 1.0});
  g.add_edge(a, b);
  g.add_edge(b, a);
  g.finalize();
  EXPECT_FALSE(check_graph(g).ok);
}

TEST(GraphValidation, RejectsUnfinalized) {
  TaskGraph g("raw");
  g.add_task(Task{1.0, 1.0});
  EXPECT_FALSE(check_graph(g).ok);
}

}  // namespace
}  // namespace hp
