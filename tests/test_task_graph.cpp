#include "dag/task_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <vector>

#include "dag/random_graphs.hpp"
#include "dag/validation.hpp"
#include "util/rng.hpp"

namespace hp {
namespace {

TaskGraph diamond() {
  //   a
  //  / \
  // b   c
  //  \ /
  //   d
  TaskGraph g("diamond");
  const TaskId a = g.add_task(Task{1.0, 1.0});
  const TaskId b = g.add_task(Task{1.0, 1.0});
  const TaskId c = g.add_task(Task{1.0, 1.0});
  const TaskId d = g.add_task(Task{1.0, 1.0});
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  g.finalize();
  return g;
}

TEST(TaskGraphTest, SizesAndDegrees) {
  const TaskGraph g = diamond();
  EXPECT_EQ(g.size(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.in_degree(0), 0u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(3), 2u);
  EXPECT_EQ(g.out_degree(3), 0u);
}

TEST(TaskGraphTest, AdjacencyContents) {
  const TaskGraph g = diamond();
  const auto succ = g.successors(0);
  EXPECT_TRUE(std::find(succ.begin(), succ.end(), 1) != succ.end());
  EXPECT_TRUE(std::find(succ.begin(), succ.end(), 2) != succ.end());
  const auto pred = g.predecessors(3);
  EXPECT_TRUE(std::find(pred.begin(), pred.end(), 1) != pred.end());
  EXPECT_TRUE(std::find(pred.begin(), pred.end(), 2) != pred.end());
}

TEST(TaskGraphTest, DuplicateEdgesDeduplicated) {
  TaskGraph g("dup");
  const TaskId a = g.add_task(Task{1.0, 1.0});
  const TaskId b = g.add_task(Task{1.0, 1.0});
  g.add_edge(a, b);
  g.add_edge(a, b);
  g.add_edge(a, b);
  g.finalize();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.out_degree(a), 1u);
}

TEST(TaskGraphTest, TopologicalOrderRespectsEdges) {
  const TaskGraph g = diamond();
  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[static_cast<std::size_t>(order[i])] = i;
  }
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[1], pos[3]);
  EXPECT_LT(pos[2], pos[3]);
}

TEST(TaskGraphTest, CycleDetected) {
  TaskGraph g("cycle");
  const TaskId a = g.add_task(Task{1.0, 1.0});
  const TaskId b = g.add_task(Task{1.0, 1.0});
  g.add_edge(a, b);
  g.add_edge(b, a);
  g.finalize();
  EXPECT_FALSE(g.is_dag());
  EXPECT_TRUE(g.topological_order().empty());
}

TEST(TaskGraphTest, EmptyGraphIsDag) {
  TaskGraph g("empty");
  g.finalize();
  EXPECT_TRUE(g.is_dag());
  EXPECT_EQ(g.size(), 0u);
}

TEST(TaskGraphTest, FinalizeIdempotent) {
  TaskGraph g = diamond();
  g.finalize();
  g.finalize();
  EXPECT_EQ(g.num_edges(), 4u);
}

TEST(TaskGraphTest, MutationInvalidatesFinalization) {
  TaskGraph g = diamond();
  EXPECT_TRUE(g.finalized());
  g.add_task(Task{1.0, 1.0});
  EXPECT_FALSE(g.finalized());
  g.finalize();
  EXPECT_EQ(g.size(), 5u);
  EXPECT_EQ(g.in_degree(4), 0u);
}

TEST(TaskGraphTest, ToInstanceCopiesTasks) {
  TaskGraph g("src");
  g.add_task(Task{2.0, 0.5});
  g.add_task(Task{3.0, 1.5});
  g.finalize();
  const Instance inst = g.to_instance();
  ASSERT_EQ(inst.size(), 2u);
  EXPECT_DOUBLE_EQ(inst[0].cpu_time, 2.0);
  EXPECT_DOUBLE_EQ(inst[1].gpu_time, 1.5);
  EXPECT_EQ(inst.name(), "src");
}

TEST(TaskGraphTest, CachedTopoOrderMatchesCopyingAccessor) {
  TaskGraph g = diamond();
  const auto copied = g.topological_order();
  const auto cached = g.topo_order();
  ASSERT_EQ(copied.size(), cached.size());
  EXPECT_TRUE(std::equal(copied.begin(), copied.end(), cached.begin()));
  // Re-finalizing after a mutation recomputes the cache for the new shape.
  const TaskId e = g.add_task(Task{1.0, 1.0});
  g.add_edge(3, e);
  g.finalize();
  EXPECT_EQ(g.topo_order().size(), 5u);
  EXPECT_EQ(g.topo_order().back(), e);
}

/// Independent Kahn's algorithm over the public adjacency — the oracle the
/// cached order is checked against on random DAGs.
std::vector<TaskId> kahn_reference(const TaskGraph& g) {
  std::vector<std::size_t> indegree(g.size());
  for (std::size_t v = 0; v < g.size(); ++v) {
    indegree[v] = g.in_degree(static_cast<TaskId>(v));
  }
  std::queue<TaskId> frontier;
  for (std::size_t v = 0; v < g.size(); ++v) {
    if (indegree[v] == 0) frontier.push(static_cast<TaskId>(v));
  }
  std::vector<TaskId> order;
  while (!frontier.empty()) {
    const TaskId v = frontier.front();
    frontier.pop();
    order.push_back(v);
    for (const TaskId succ : g.successors(v)) {
      if (--indegree[static_cast<std::size_t>(succ)] == 0) frontier.push(succ);
    }
  }
  return order;
}

// The CSR adjacency must be self-consistent (pred/succ mirrors, degree sums)
// and the cached topological order valid, on a spread of random layered DAGs.
TEST(TaskGraphTest, RandomGraphsCsrMirrorsAndCachedTopo) {
  for (int inst_idx = 0; inst_idx < 10; ++inst_idx) {
    SCOPED_TRACE("graph " + std::to_string(inst_idx));
    util::Rng rng(util::seed_from_cell(
        {static_cast<std::uint64_t>(inst_idx)}, /*salt=*/0xc5a1));
    LayeredDagParams params;
    params.layers = 3 + inst_idx % 5;
    params.width = 3 + inst_idx % 7;
    const TaskGraph g = random_layered_dag(params, rng);

    // Every successor edge appears as a predecessor edge and vice versa.
    std::size_t out_sum = 0;
    std::size_t in_sum = 0;
    for (std::size_t v = 0; v < g.size(); ++v) {
      const TaskId id = static_cast<TaskId>(v);
      out_sum += g.out_degree(id);
      in_sum += g.in_degree(id);
      for (const TaskId succ : g.successors(id)) {
        const auto pred = g.predecessors(succ);
        EXPECT_TRUE(std::find(pred.begin(), pred.end(), id) != pred.end());
      }
      for (const TaskId pred_id : g.predecessors(id)) {
        const auto succ = g.successors(pred_id);
        EXPECT_TRUE(std::find(succ.begin(), succ.end(), id) != succ.end());
      }
    }
    EXPECT_EQ(out_sum, g.num_edges());
    EXPECT_EQ(in_sum, g.num_edges());

    // The cached order is exactly what Kahn over the public adjacency
    // produces (both use the same FIFO frontier and id-ascending seeds).
    const auto cached = g.topo_order();
    const std::vector<TaskId> reference = kahn_reference(g);
    ASSERT_EQ(cached.size(), reference.size());
    EXPECT_TRUE(std::equal(reference.begin(), reference.end(),
                           cached.begin()));
  }
}

TEST(GraphValidation, AcceptsWellFormedGraph) {
  const TaskGraph g = diamond();
  EXPECT_TRUE(check_graph(g).ok);
}

TEST(GraphValidation, RejectsNonPositiveTimes) {
  TaskGraph g("bad");
  g.add_task(Task{0.0, 1.0});
  g.finalize();
  EXPECT_FALSE(check_graph(g).ok);
}

TEST(GraphValidation, RejectsCycle) {
  TaskGraph g("cycle");
  const TaskId a = g.add_task(Task{1.0, 1.0});
  const TaskId b = g.add_task(Task{1.0, 1.0});
  g.add_edge(a, b);
  g.add_edge(b, a);
  g.finalize();
  EXPECT_FALSE(check_graph(g).ok);
}

TEST(GraphValidation, RejectsUnfinalized) {
  TaskGraph g("raw");
  g.add_task(Task{1.0, 1.0});
  EXPECT_FALSE(check_graph(g).ok);
}

}  // namespace
}  // namespace hp
