// Greedy shrinker: minimization against synthetic predicates, determinism,
// and the passing-case precondition path.

#include <gtest/gtest.h>

#include "fuzz/shrink.hpp"

namespace hp::fuzz {
namespace {

/// A deterministic generated case with faults and a few dozen tasks.
FuzzCase busy_case() {
  GenKnobs knobs;
  knobs.fault_fraction = 1.0;
  knobs.dag_fraction = 0.0;
  return generate_case(2024, 3, knobs);
}

TEST(FuzzShrink, MinimizesToTheSmallestWitness) {
  const FuzzCase start = busy_case();
  ASSERT_GE(start.graph.size(), 2u);
  // Predicate: some task is CPU-expensive. One such task is enough to keep
  // it true, so a perfect shrink ends at a single task.
  const auto fails = [](const FuzzCase& c) {
    for (const Task& t : c.graph.tasks()) {
      if (t.cpu_time > 0.5) return true;
    }
    return false;
  };
  ASSERT_TRUE(fails(start));
  const ShrinkResult result = shrink_case_with(start, fails);
  EXPECT_TRUE(fails(result.minimized));
  EXPECT_EQ(result.minimized.graph.size(), 1u);
  EXPECT_EQ(result.minimized.platform.workers(), 1);
  EXPECT_FALSE(result.minimized.has_faults());
  EXPECT_GT(result.evals, 0);
}

TEST(FuzzShrink, StripsIrrelevantFaultEvents) {
  const FuzzCase start = busy_case();
  ASSERT_TRUE(start.has_faults());
  const auto fails = [](const FuzzCase& c) { return c.graph.size() >= 2; };
  const ShrinkResult result = shrink_case_with(start, fails);
  EXPECT_EQ(result.minimized.graph.size(), 2u);
  EXPECT_FALSE(result.minimized.has_faults());
}

TEST(FuzzShrink, KeepsFaultsThePredicateNeeds) {
  const FuzzCase start = busy_case();
  ASSERT_TRUE(start.has_faults());
  const auto fails = [](const FuzzCase& c) { return c.has_faults(); };
  const ShrinkResult result = shrink_case_with(start, fails);
  EXPECT_TRUE(result.minimized.has_faults());
  EXPECT_EQ(result.minimized.graph.size(), 1u);
}

TEST(FuzzShrink, RoundsDurationsToSmallIntegers) {
  const FuzzCase start = busy_case();
  const auto fails = [](const FuzzCase& c) { return c.graph.size() >= 1; };
  const ShrinkResult result = shrink_case_with(start, fails);
  ASSERT_EQ(result.minimized.graph.size(), 1u);
  const Task& t = result.minimized.graph.tasks()[0];
  EXPECT_EQ(t.cpu_time, 1.0);
  EXPECT_EQ(t.gpu_time, 1.0);
  EXPECT_EQ(t.priority, 0.0);
}

TEST(FuzzShrink, DeterministicGivenTheSameInput) {
  const FuzzCase start = busy_case();
  const auto fails = [](const FuzzCase& c) {
    return c.graph.size() >= 3 && c.platform.workers() >= 2;
  };
  const ShrinkResult a = shrink_case_with(start, fails);
  const ShrinkResult b = shrink_case_with(start, fails);
  EXPECT_EQ(a.evals, b.evals);
  ASSERT_EQ(a.minimized.graph.size(), b.minimized.graph.size());
  for (std::size_t i = 0; i < a.minimized.graph.size(); ++i) {
    EXPECT_EQ(a.minimized.graph.tasks()[i].cpu_time,
              b.minimized.graph.tasks()[i].cpu_time);
    EXPECT_EQ(a.minimized.graph.tasks()[i].gpu_time,
              b.minimized.graph.tasks()[i].gpu_time);
  }
}

TEST(FuzzShrink, DagEdgesAreDroppedWhenIrrelevant) {
  GenKnobs knobs;
  knobs.dag_fraction = 1.0;
  FuzzCase start;
  for (std::uint64_t i = 0; i < 30; ++i) {
    start = generate_case(31, i, knobs);
    if (start.is_dag()) break;
  }
  ASSERT_TRUE(start.is_dag());
  const auto fails = [](const FuzzCase& c) { return c.graph.size() >= 2; };
  const ShrinkResult result = shrink_case_with(start, fails);
  EXPECT_EQ(result.minimized.graph.num_edges(), 0u);
}

TEST(FuzzShrink, OracleWrapperReturnsPassingCasesUnchanged) {
  FuzzCase c;
  c.name = "passing";
  c.platform = Platform(1, 1);
  TaskGraph g("passing");
  g.add_task(Task{.cpu_time = 1.0, .gpu_time = 2.0});
  g.finalize();
  c.graph = std::move(g);
  const ShrinkResult result = shrink_case(c, SchedulerId::kHp);
  EXPECT_EQ(result.minimized.graph.size(), 1u);
  EXPECT_EQ(result.evals, 0);
  EXPECT_TRUE(result.failure.property.empty());
}

}  // namespace
}  // namespace hp::fuzz
