// Tests for util/thread_pool: the fan-out engine behind the parallel
// experiment sweeps. The determinism-critical contracts are that every
// submitted job / every parallel_for index runs exactly once, that
// exceptions propagate to the caller, and that threads == 1 is a true
// serial reference path executing indices in order on the calling thread.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace hp::util {
namespace {

TEST(ResolveThreads, PositiveIsTakenVerbatim) {
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(3), 3u);
  EXPECT_EQ(resolve_threads(17), 17u);
}

TEST(ResolveThreads, NonPositiveMeansAllHardwareThreads) {
  const unsigned resolved = resolve_threads(0);
  EXPECT_GE(resolved, 1u);
  if (std::thread::hardware_concurrency() > 0) {
    EXPECT_EQ(resolved, std::thread::hardware_concurrency());
  }
  EXPECT_EQ(resolve_threads(-5), resolved);
}

TEST(ThreadPool, RunsEverySubmittedJob) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  pool.submit([&done] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 1);
  pool.submit([&done] { done.fetch_add(1); });
  pool.submit([&done] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 3);
}

TEST(ThreadPool, JobsMaySubmitMoreJobs) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&] {
      done.fetch_add(1);
      pool.submit([&done] { done.fetch_add(1); });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPool, WaitIdleRethrowsFirstException) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  pool.submit([] { throw std::runtime_error("job failed"); });
  for (int i = 0; i < 8; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The failure did not cancel the remaining jobs.
  EXPECT_EQ(done.load(), 8);
  // The error is not re-reported on the next wait.
  pool.submit([&done] { done.fetch_add(1); });
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_EQ(done.load(), 9);
}

TEST(ThreadPool, ShutdownRejectsLateWork) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  EXPECT_FALSE(pool.is_shut_down());
  pool.shutdown();
  EXPECT_TRUE(pool.is_shut_down());
  // Queued work was drained, not dropped.
  EXPECT_EQ(done.load(), 16);
  // Late submissions fail loudly instead of disappearing.
  EXPECT_THROW(pool.submit([&done] { done.fetch_add(1); }),
               std::runtime_error);
  EXPECT_EQ(done.load(), 16);
  // Idempotent: a second shutdown is a no-op.
  EXPECT_NO_THROW(pool.shutdown());
}

TEST(ThreadPool, OversubscriptionRunsEveryJob) {
  // More workers than hardware threads (this box may have only one): the
  // pool must still spawn them all and run every job exactly once.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  ThreadPool pool(hw * 4 + 3);
  EXPECT_EQ(pool.size(), hw * 4 + 3);
  std::vector<std::atomic<int>> hits(257);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    pool.submit([&hits, i] { hits[i].fetch_add(1); });
  }
  pool.wait_idle();
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "job " << i;
  }
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  parallel_for(kCount, 4,
               [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, SerialPathRunsInIndexOrderOnCallingThread) {
  std::vector<std::size_t> order;  // no lock: serial contract
  const std::thread::id caller = std::this_thread::get_id();
  parallel_for(20, 1, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 20u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(ParallelFor, HandlesEmptyAndSingletonRanges) {
  int calls = 0;
  parallel_for(0, 4, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(1, 4, [&calls](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, MoreThreadsThanWork) {
  std::vector<std::atomic<int>> hits(3);
  parallel_for(3, 16, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, PropagatesBodyException) {
  std::atomic<int> done{0};
  EXPECT_THROW(
      parallel_for(64, 4,
                   [&done](std::size_t i) {
                     if (i == 13) throw std::runtime_error("cell failed");
                     done.fetch_add(1);
                   }),
      std::runtime_error);
  EXPECT_EQ(done.load(), 63);
}

TEST(ParallelFor, SerialExceptionStopsAtThrowingIndex) {
  std::vector<std::size_t> order;
  EXPECT_THROW(parallel_for(10, 1,
                            [&order](std::size_t i) {
                              if (i == 4) throw std::runtime_error("stop");
                              order.push_back(i);
                            }),
               std::runtime_error);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace hp::util
