// Verification of the proofs' *internal* claims on the actual adversarial
// executions — not just the final ratios. Each check mirrors a step of the
// §5 case analysis.

#include <gtest/gtest.h>

#include <cmath>

#include "core/heteroprio.hpp"
#include "worstcase/instances.hpp"

namespace hp {
namespace {

TEST(ProofStructure, Theorem8GpuIdlesButCannotImprove) {
  // The proof's pivotal moment: the GPU idles at 1/phi = phi - 1 and
  // restarting X there would finish exactly at phi — no strict improvement.
  const WorstCaseInstance wc = theorem8_instance();
  HeteroPrioStats stats;
  const Schedule s = heteroprio(wc.instance.tasks(), wc.platform, {}, &stats);
  EXPECT_NEAR(stats.first_idle_time, kPhi - 1.0, 1e-9);
  EXPECT_GE(stats.spoliation_attempts, 1);
  EXPECT_EQ(stats.spoliations, 0);
  // X (task 0) runs on the CPU for its full p = phi.
  const Placement& x = s.placement(0);
  EXPECT_EQ(wc.platform.type_of(x.worker), Resource::kCpu);
  EXPECT_NEAR(x.end - x.start, kPhi, 1e-12);
}

TEST(ProofStructure, Theorem11HostageTaskEndsLast) {
  // Lemma 10's T: the task finishing after (1+phi-ish)*OPT is T2, executed
  // on a CPU in S_HP^NS, with acceleration factor >= phi (here exactly phi)
  // and p_T > phi * C_opt... the instance uses p_T = phi = phi * OPT.
  const WorstCaseInstance wc = theorem11_instance(20, 30);
  const Schedule s = heteroprio(wc.instance.tasks(), wc.platform);
  // The last-finishing task is T2 (the final task added).
  const auto t2 = static_cast<TaskId>(wc.instance.size() - 1);
  double latest = 0.0;
  TaskId last = kInvalidTask;
  for (std::size_t i = 0; i < wc.instance.size(); ++i) {
    const Placement& p = s.placement(static_cast<TaskId>(i));
    if (p.end > latest) {
      latest = p.end;
      last = static_cast<TaskId>(i);
    }
  }
  EXPECT_EQ(last, t2);
  EXPECT_EQ(wc.platform.type_of(s.placement(t2).worker), Resource::kCpu);
  EXPECT_NEAR(wc.instance[t2].accel(), kPhi, 1e-12);
  EXPECT_GE(wc.instance[t2].cpu_time, kPhi * wc.optimal_makespan - 1e-12);
}

TEST(ProofStructure, Theorem14SpoliatedTasksSatisfyLemma13) {
  // Lemma 13 (i): every spoliated task has p_i > C_opt. (ii): tasks running
  // on GPUs in S_HP^NS have acceleration factor well above 1 (the instance
  // uses rho in [r/3, r], all > 1 + sqrt(2) for its T1/T4 classes).
  const WorstCaseInstance wc = theorem14_instance(2);
  const Schedule s = heteroprio(wc.instance.tasks(), wc.platform);
  ASSERT_FALSE(s.aborted().empty());
  for (const AbortedSegment& a : s.aborted()) {
    // All victims are T2 tasks with p = r*n/3 > n = C_opt (since r > 3).
    EXPECT_GT(wc.instance[a.task].cpu_time, wc.optimal_makespan);
    // Spoliation flows CPU -> GPU only.
    EXPECT_EQ(wc.platform.type_of(a.worker), Resource::kCpu);
    EXPECT_EQ(wc.platform.type_of(s.placement(a.task).worker), Resource::kGpu);
  }
}

TEST(ProofStructure, Theorem14FinalTaskNotSpoliatedByEquality) {
  // The length-n T2 task ends exactly at x + r*n/3 on its CPU; the GPUs
  // cannot strictly improve it (the defining equation of r makes it an
  // exact tie), so it is never aborted.
  const WorstCaseInstance wc = theorem14_instance(2);
  const Schedule s = heteroprio(wc.instance.tasks(), wc.platform);
  const auto last_t2 = static_cast<TaskId>(wc.instance.size() - 1);
  EXPECT_EQ(wc.platform.type_of(s.placement(last_t2).worker), Resource::kCpu);
  for (const AbortedSegment& a : s.aborted()) {
    EXPECT_NE(a.task, last_t2);
  }
  EXPECT_NEAR(s.placement(last_t2).end, wc.expected_hp_makespan, 1e-6);
}

TEST(ProofStructure, Theorem14SpoliationCountMatchesGadget) {
  // Exactly 2n of the 2n+1 T2 tasks are spoliated (the Fig 4 replay).
  for (int k : {1, 2}) {
    const WorstCaseInstance wc = theorem14_instance(k);
    HeteroPrioStats stats;
    (void)heteroprio(wc.instance.tasks(), wc.platform, {}, &stats);
    EXPECT_EQ(stats.spoliations, 2 * 6 * k) << "k=" << k;
  }
}

TEST(ProofStructure, Theorem12BoundHoldsOnItsOwnWorstFamily) {
  // The Thm 14 family must respect the Thm 12 upper bound with room to
  // spare (the gap between 2+2/sqrt(3) and 2+sqrt(2) is the open question).
  for (int k : {1, 2, 3}) {
    const WorstCaseInstance wc = theorem14_instance(k);
    const Schedule s = heteroprio(wc.instance.tasks(), wc.platform);
    EXPECT_LE(s.makespan(),
              (2.0 + std::sqrt(2.0)) * wc.optimal_makespan * (1.0 + 1e-9));
  }
}

}  // namespace
}  // namespace hp
