#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <string>

namespace hp::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue<int> q;
  q.push(3.0, 30);
  q.push(1.0, 10);
  q.push(2.0, 20);
  EXPECT_EQ(q.pop().payload, 10);
  EXPECT_EQ(q.pop().payload, 20);
  EXPECT_EQ(q.pop().payload, 30);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SimultaneousEventsPopInInsertionOrder) {
  EventQueue<std::string> q;
  q.push(1.0, "first");
  q.push(1.0, "second");
  q.push(1.0, "third");
  EXPECT_EQ(q.pop().payload, "first");
  EXPECT_EQ(q.pop().payload, "second");
  EXPECT_EQ(q.pop().payload, "third");
}

TEST(EventQueue, InterleavedPushPop) {
  EventQueue<int> q;
  q.push(5.0, 5);
  q.push(1.0, 1);
  EXPECT_EQ(q.pop().payload, 1);
  q.push(2.0, 2);
  q.push(7.0, 7);
  EXPECT_EQ(q.pop().payload, 2);
  EXPECT_EQ(q.pop().payload, 5);
  EXPECT_EQ(q.pop().payload, 7);
}

TEST(EventQueue, TopDoesNotRemove) {
  EventQueue<int> q;
  q.push(1.0, 42);
  EXPECT_EQ(q.top().payload, 42);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pop().payload, 42);
}

TEST(EventQueue, ClearEmptiesAndResetsSequence) {
  EventQueue<int> q;
  q.push(1.0, 1);
  q.push(2.0, 2);
  q.clear();
  EXPECT_TRUE(q.empty());
  q.push(1.0, 10);
  q.push(1.0, 11);
  EXPECT_EQ(q.pop().payload, 10);  // stable order after clear
  EXPECT_EQ(q.pop().payload, 11);
}

TEST(EventQueue, EventCarriesTime) {
  EventQueue<int> q;
  q.push(2.5, 1);
  const auto e = q.pop();
  EXPECT_DOUBLE_EQ(e.time, 2.5);
}

TEST(EventQueue, ManyEventsSortedCorrectly) {
  EventQueue<int> q;
  for (int i = 0; i < 1000; ++i) q.push(static_cast<double>((i * 7919) % 997), i);
  double last = -1.0;
  while (!q.empty()) {
    const auto e = q.pop();
    EXPECT_GE(e.time, last);
    last = e.time;
  }
}

TEST(EventQueue, PopIfDrainsOnlyMatchingHeadEvents) {
  // pop_if pops while the *head* matches — the online runtime uses it to
  // drain the t=0 arrival batch without disturbing later events.
  EventQueue<int> q;
  q.push(0.0, 1);
  q.push(0.0, 2);
  q.push(0.0, -7);  // matches the time but not the predicate: drain stops
  q.push(0.0, 3);
  q.push(1.0, 4);
  EventQueue<int>::Event ev;
  int drained = 0;
  while (q.pop_if(
      [](const auto& e) { return e.time == 0.0 && e.payload > 0; }, &ev)) {
    ++drained;
    EXPECT_GT(ev.payload, 0);
  }
  EXPECT_EQ(drained, 2);  // stops at -7 even though 3 matches behind it
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop().payload, -7);
  EXPECT_EQ(q.pop().payload, 3);
}

TEST(EventQueue, PopIfOnEmptyQueueIsFalse) {
  EventQueue<int> q;
  EventQueue<int>::Event ev;
  EXPECT_FALSE(q.pop_if([](const auto&) { return true; }, &ev));
}

TEST(EventQueue, TimeIfBeforeProbesWithoutPopping) {
  EventQueue<int> q;
  EXPECT_FALSE(q.time_if_before(10.0).has_value());
  q.push(3.0, 1);
  ASSERT_TRUE(q.time_if_before(10.0).has_value());
  EXPECT_DOUBLE_EQ(*q.time_if_before(10.0), 3.0);
  EXPECT_FALSE(q.time_if_before(3.0).has_value());  // strict: before only
  EXPECT_EQ(q.size(), 1u);  // probing never pops
}

}  // namespace
}  // namespace hp::sim
