// perf-check reporting (perf/perf_compare.hpp) and the BENCH validators:
// series are joined by identity across reordered documents, regressions and
// disappearances are named with deltas, and the validators list every
// missing series instead of failing on the first. The v3 core validator
// additionally gates the parallel-scaling series (W=1 parity, monotone
// speedup) against the recorded hardware_threads.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "perf/perf_baseline.hpp"
#include "perf/perf_compare.hpp"
#include "perf/perf_dag.hpp"

namespace hp::perf {
namespace {

std::string core_doc(double hp_rate, double heft_rate, bool with_dual = true) {
  std::string out = R"({
  "schema": "hp-bench-core/v3",
  "layout": "soa",
  "hardware_threads": 8,
  "arena": {"reserved_bytes": 1048576, "high_water_bytes": 524288},
  "series": [
)";
  out += "    {\"algorithm\": \"HeteroPrio\", \"n\": 1000, \"tasks_per_sec\": " +
         std::to_string(hp_rate) + "},\n";
  if (with_dual) {
    out += "    {\"algorithm\": \"DualHP\", \"n\": 1000, \"tasks_per_sec\": "
           "200000.0},\n";
  }
  out += "    {\"algorithm\": \"HEFT\", \"n\": 1000, \"tasks_per_sec\": " +
         std::to_string(heft_rate) + "}\n  ]\n}\n";
  return out;
}

/// A v3 document with a parallel-scaling curve at n=1000: sequential
/// HeteroPrio at `seq_rate`, HeteroPrio-par entries at each (W, rate) pair.
std::string par_doc(double seq_rate,
                    const std::vector<std::pair<int, double>>& par,
                    int hardware_threads = 8) {
  std::string out = "{\n  \"schema\": \"hp-bench-core/v3\",\n"
                    "  \"layout\": \"soa\",\n"
                    "  \"hardware_threads\": " +
                    std::to_string(hardware_threads) +
                    ",\n"
                    "  \"arena\": {\"reserved_bytes\": 1048576, "
                    "\"high_water_bytes\": 524288},\n"
                    "  \"series\": [\n";
  out += "    {\"algorithm\": \"HeteroPrio\", \"n\": 1000, \"tasks_per_sec\": " +
         std::to_string(seq_rate) + "},\n";
  out += "    {\"algorithm\": \"DualHP\", \"n\": 1000, \"tasks_per_sec\": "
         "200000.0},\n";
  out += "    {\"algorithm\": \"HEFT\", \"n\": 1000, \"tasks_per_sec\": "
         "5000000.0}";
  for (const auto& [w, rate] : par) {
    out += ",\n    {\"algorithm\": \"HeteroPrio-par\", \"n\": 1000, "
           "\"threads\": " +
           std::to_string(w) + ", \"tasks_per_sec\": " + std::to_string(rate) +
           "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

TEST(PerfCompare, IdenticalDocumentsAreUnchanged) {
  const std::string doc = core_doc(1e7, 5e6);
  const PerfComparison cmp = compare_series(doc, doc, 0.25);
  EXPECT_TRUE(cmp.ok());
  EXPECT_TRUE(cmp.regressed.empty());
  EXPECT_TRUE(cmp.missing.empty());
  EXPECT_EQ(cmp.unchanged.size(), 3u);
}

TEST(PerfCompare, NamesTheRegressedSeriesWithDelta) {
  const PerfComparison cmp =
      compare_series(core_doc(1e7, 5e6), core_doc(4e6, 5e6), 0.25);
  EXPECT_FALSE(cmp.ok());
  ASSERT_EQ(cmp.regressed.size(), 1u);
  EXPECT_EQ(cmp.regressed[0].key, "HeteroPrio n=1000");
  EXPECT_DOUBLE_EQ(cmp.regressed[0].baseline, 1e7);
  EXPECT_DOUBLE_EQ(cmp.regressed[0].current, 4e6);

  const std::string text = format_comparison(cmp);
  EXPECT_NE(text.find("REGRESSED HeteroPrio n=1000"), std::string::npos);
  EXPECT_NE(text.find("10M -> 4M"), std::string::npos);
}

TEST(PerfCompare, NamesMissingSeries) {
  const PerfComparison cmp =
      compare_series(core_doc(1e7, 5e6, /*with_dual=*/true),
                     core_doc(1e7, 5e6, /*with_dual=*/false), 0.25);
  EXPECT_FALSE(cmp.ok());
  ASSERT_EQ(cmp.missing.size(), 1u);
  EXPECT_EQ(cmp.missing[0], "DualHP n=1000");
  EXPECT_NE(format_comparison(cmp).find("MISSING"), std::string::npos);
}

TEST(PerfCompare, ToleratesReorderedSeries) {
  // Same entries, reversed order: everything joins by key, nothing flags.
  const std::string forward = core_doc(1e7, 5e6);
  const std::string reversed = R"({
  "schema": "hp-bench-core/v3",
  "layout": "soa",
  "hardware_threads": 8,
  "arena": {"reserved_bytes": 1048576, "high_water_bytes": 524288},
  "series": [
    {"algorithm": "HEFT", "n": 1000, "tasks_per_sec": 5000000.0},
    {"algorithm": "DualHP", "n": 1000, "tasks_per_sec": 200000.0},
    {"algorithm": "HeteroPrio", "n": 1000, "tasks_per_sec": 10000000.0}
  ]
}
)";
  const PerfComparison cmp = compare_series(forward, reversed, 0.25);
  EXPECT_TRUE(cmp.ok());
  EXPECT_EQ(cmp.unchanged.size(), 3u);
  EXPECT_TRUE(cmp.missing.empty());
  EXPECT_TRUE(cmp.added.empty());
}

TEST(PerfCompare, ImprovementsAndAdditionsAreReportedNotFatal) {
  std::string current = core_doc(3e7, 5e6);
  current.replace(current.rfind("]"), 1,
                  ",    {\"algorithm\": \"HeteroPrio\", \"n\": 5000, "
                  "\"tasks_per_sec\": 9000000.0}\n  ]");
  const PerfComparison cmp = compare_series(core_doc(1e7, 5e6), current, 0.25);
  EXPECT_TRUE(cmp.ok());  // improvements and additions never fail the gate
  EXPECT_EQ(cmp.improved.size(), 1u);
  ASSERT_EQ(cmp.added.size(), 1u);
  EXPECT_EQ(cmp.added[0], "HeteroPrio n=5000");
}

TEST(PerfValidate, AcceptsCompleteV3CoreDocument) {
  std::string error;
  EXPECT_TRUE(validate_perf_baseline_json(core_doc(1e7, 5e6), {1000}, &error))
      << error;
}

TEST(PerfValidate, ListsAllMissingCoreSeries) {
  // Document has n=1000 only; asking for {1000, 2000} must name every
  // absent (algorithm, n) pair, not just the first one encountered.
  std::string error;
  EXPECT_FALSE(
      validate_perf_baseline_json(core_doc(1e7, 5e6), {1000, 2000}, &error));
  EXPECT_NE(error.find("HeteroPrio at n=2000"), std::string::npos) << error;
  EXPECT_NE(error.find("DualHP at n=2000"), std::string::npos) << error;
  EXPECT_NE(error.find("HEFT at n=2000"), std::string::npos) << error;
}

TEST(PerfValidate, RejectsOldSchemaMissingArenaAndMissingHardwareThreads) {
  std::string error;
  std::string doc = core_doc(1e7, 5e6);
  std::string v2 = doc;
  v2.replace(v2.find("hp-bench-core/v3"), 16, "hp-bench-core/v2");
  EXPECT_FALSE(validate_perf_baseline_json(v2, {1000}, &error));
  EXPECT_NE(error.find("schema"), std::string::npos);

  std::string no_arena = doc;
  no_arena.replace(no_arena.find("high_water_bytes"), 16, "other_field_name");
  EXPECT_FALSE(validate_perf_baseline_json(no_arena, {1000}, &error));

  std::string no_hw = doc;
  no_hw.replace(no_hw.find("hardware_threads"), 16, "other_field_name");
  EXPECT_FALSE(validate_perf_baseline_json(no_hw, {1000}, &error));
  EXPECT_NE(error.find("hardware_threads"), std::string::npos) << error;
}

TEST(PerfValidate, ParallelSeriesMustBeCompleteWhenRequested) {
  // Complete curve passes; asking for a W the document lacks names it.
  std::string error;
  const std::string doc = par_doc(
      1e7, {{1, 1e7}, {2, 1.6e7}, {4, 2.5e7}, {8, 3.2e7}});
  EXPECT_TRUE(validate_perf_baseline_json(doc, {1000}, &error, {1000},
                                          {1, 2, 4, 8}))
      << error;
  EXPECT_FALSE(validate_perf_baseline_json(doc, {1000}, &error, {1000},
                                           {1, 2, 4, 8, 16}));
  EXPECT_NE(error.find("HeteroPrio-par at n=1000 W=16"), std::string::npos)
      << error;
}

TEST(PerfValidate, W1ParityGateCatchesDispatchOverhead) {
  // W=1 delegates to the sequential engine; a W=1 entry 20% below the
  // sequential one means the parallel dispatch itself got expensive.
  std::string error;
  const std::string bad = par_doc(1e7, {{1, 8e6}, {2, 1.6e7}});
  EXPECT_FALSE(
      validate_perf_baseline_json(bad, {1000}, &error, {1000}, {1, 2}));
  EXPECT_NE(error.find("parity"), std::string::npos) << error;

  const std::string good = par_doc(1e7, {{1, 9.6e6}, {2, 1.6e7}});
  EXPECT_TRUE(
      validate_perf_baseline_json(good, {1000}, &error, {1000}, {1, 2}))
      << error;
}

TEST(PerfValidate, MonotoneSpeedupGateArmsOnlyUpToHardwareThreads) {
  // W=4 slower than W=2 on an 8-thread machine fails ...
  std::string error;
  const std::string inverted = par_doc(
      1e7, {{1, 1e7}, {2, 1.6e7}, {4, 1.2e7}, {8, 3.2e7}}, 8);
  EXPECT_FALSE(validate_perf_baseline_json(inverted, {1000}, &error, {1000},
                                           {1, 2, 4, 8}));
  EXPECT_NE(error.find("monotone"), std::string::npos) << error;

  // ... but the same curve from a 1-core machine passes: the scaling gate
  // self-disables when the hardware could never run the threads in parallel.
  const std::string one_core = par_doc(
      1e7, {{1, 1e7}, {2, 9e6}, {4, 8e6}, {8, 7e6}}, 1);
  EXPECT_TRUE(validate_perf_baseline_json(one_core, {1000}, &error, {1000},
                                          {1, 2, 4, 8}))
      << error;

  // W=8 beyond the W<=4 gate window never arms, even on a 16-thread box.
  const std::string w8_flat = par_doc(
      1e7, {{1, 1e7}, {2, 1.6e7}, {4, 2.5e7}, {8, 2.0e7}}, 16);
  EXPECT_TRUE(validate_perf_baseline_json(w8_flat, {1000}, &error, {1000},
                                          {1, 2, 4, 8}))
      << error;
}

TEST(PerfCompare, ParallelEntriesJoinByThreadCount) {
  // Two W entries at the same n must be distinct series in the join, or a
  // regression at W=4 could hide behind an improvement at W=2.
  const std::string doc = par_doc(1e7, {{2, 1.6e7}, {4, 2.5e7}});
  const std::vector<SeriesPoint> points = extract_series(doc);
  ASSERT_EQ(points.size(), 5u);
  EXPECT_EQ(points[3].key, "HeteroPrio-par n=1000 W=2");
  EXPECT_EQ(points[4].key, "HeteroPrio-par n=1000 W=4");
  const PerfComparison cmp = compare_series(doc, doc, 0.25);
  EXPECT_TRUE(cmp.ok());
  EXPECT_EQ(cmp.unchanged.size(), 5u);
}

std::string dag_doc(bool with_heft) {
  std::string out = R"({
  "schema": "hp-bench-dag/v2",
  "layout": "soa",
  "series": [
    {"kernel": "cholesky", "tiles": 10, "algorithm": "HeteroPrio",
     "n": 220, "tasks_per_sec": 300000.0,
     "cp_compute_fraction": 0.85, "cp_segments": 40},
    {"kernel": "cholesky", "tiles": 10, "algorithm": "DualHP",
     "n": 220, "tasks_per_sec": 250000.0,
     "cp_compute_fraction": 0.8, "cp_segments": 44}
)";
  if (with_heft) {
    out += R"(,    {"kernel": "cholesky", "tiles": 10, "algorithm": "HEFT",
     "n": 220, "tasks_per_sec": 400000.0,
     "cp_compute_fraction": 0.9, "cp_segments": 38}
)";
  }
  out += "  ]\n}\n";
  return out;
}

TEST(PerfValidate, DagValidatorChecksCpFieldsAndListsMissing) {
  std::string error;
  EXPECT_TRUE(validate_perf_dag_json(dag_doc(true), {"cholesky"}, {10}, &error))
      << error;
  EXPECT_FALSE(
      validate_perf_dag_json(dag_doc(false), {"cholesky"}, {10}, &error));
  EXPECT_NE(error.find("HEFT"), std::string::npos) << error;

  // cp_compute_fraction outside [0, 1] is a malformed v2 document.
  std::string bad = dag_doc(true);
  bad.replace(bad.find("0.85"), 4, "1.85");
  EXPECT_FALSE(validate_perf_dag_json(bad, {"cholesky"}, {10}, &error));
}

TEST(PerfCompare, DagSeriesKeysUseKernelAndTiles) {
  const std::vector<SeriesPoint> points = extract_series(dag_doc(true));
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].key, "cholesky/HeteroPrio N=10");
}

}  // namespace
}  // namespace hp::perf
