#include "dag/dot_export.hpp"

#include <gtest/gtest.h>

namespace hp {
namespace {

TEST(DotExport, ContainsNodesAndEdges) {
  TaskGraph g("mini");
  const TaskId a = g.add_task(Task{1.0, 0.5, 0.0, KernelKind::kPotrf});
  const TaskId b = g.add_task(Task{2.0, 0.25, 0.0, KernelKind::kTrsm});
  g.add_edge(a, b);
  g.finalize();
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph \"mini\""), std::string::npos);
  EXPECT_NE(dot.find("t0"), std::string::npos);
  EXPECT_NE(dot.find("t0 -> t1"), std::string::npos);
  EXPECT_NE(dot.find("DPOTRF"), std::string::npos);
  EXPECT_NE(dot.find("DTRSM"), std::string::npos);
}

TEST(DotExport, TimesShownWhenRequested) {
  TaskGraph g("x");
  g.add_task(Task{1.5, 0.5});
  g.finalize();
  DotOptions opts;
  opts.show_times = true;
  EXPECT_NE(to_dot(g, opts).find("p=1.5"), std::string::npos);
  opts.show_times = false;
  EXPECT_EQ(to_dot(g, opts).find("p=1.5"), std::string::npos);
}

TEST(DotExport, RefusesOversizedGraphs) {
  TaskGraph g("big");
  for (int i = 0; i < 100; ++i) g.add_task(Task{1.0, 1.0});
  g.finalize();
  DotOptions opts;
  opts.max_tasks = 50;
  EXPECT_TRUE(to_dot(g, opts).empty());
}

}  // namespace
}  // namespace hp
