// Online fault recovery: the HeteroPrio engine and the static failover
// replay facing crashes, stragglers and injected task failures. The first
// test is the load-bearing one — an absent or empty FaultPlan must be a
// strict no-op, bitwise identical to a run without the option.

#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "baselines/heft.hpp"
#include "core/heteroprio.hpp"
#include "core/heteroprio_dag.hpp"
#include "dag/ranking.hpp"
#include "fault/fault_plan.hpp"
#include "fault/replay.hpp"
#include "fuzz/generator.hpp"
#include "linalg/cholesky.hpp"
#include "obs/counters.hpp"
#include "obs/export_chrome.hpp"
#include "obs/recorder.hpp"
#include "runtime/stf_runtime.hpp"
#include "sched/metrics.hpp"
#include "sched/validate.hpp"

namespace hp {
namespace {

constexpr ScheduleCheckOptions kFaultyRun{
    .tol = 1e-9, .require_complete = false, .exact_durations = false};

void expect_identical_schedules(const Schedule& a, const Schedule& b) {
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  for (std::size_t i = 0; i < a.num_tasks(); ++i) {
    const Placement& pa = a.placements()[i];
    const Placement& pb = b.placements()[i];
    EXPECT_EQ(pa.worker, pb.worker) << "task " << i;
    EXPECT_EQ(pa.start, pb.start) << "task " << i;  // bitwise, no tolerance
    EXPECT_EQ(pa.end, pb.end) << "task " << i;
  }
  ASSERT_EQ(a.aborted().size(), b.aborted().size());
  for (std::size_t i = 0; i < a.aborted().size(); ++i) {
    EXPECT_EQ(a.aborted()[i].task, b.aborted()[i].task);
    EXPECT_EQ(a.aborted()[i].worker, b.aborted()[i].worker);
    EXPECT_EQ(a.aborted()[i].start, b.aborted()[i].start);
    EXPECT_EQ(a.aborted()[i].abort_time, b.aborted()[i].abort_time);
  }
}

TaskGraph ranked_cholesky(int tiles) {
  TaskGraph g = cholesky_dag(tiles);
  assign_priorities(g, RankScheme::kMin);
  return g;
}

TEST(FaultRecovery, EmptyPlanIsAStrictNoOp) {
  const TaskGraph g = ranked_cholesky(8);
  const Platform platform(4, 2);

  obs::EventRecorder clean_events, faulty_events;
  HeteroPrioOptions clean;
  clean.sink = &clean_events;
  const Schedule reference = heteroprio_dag(g, platform, clean);

  const fault::FaultPlan empty_plan;  // also: p=0 task faults stay empty
  HeteroPrioOptions with_plan;
  with_plan.sink = &faulty_events;
  with_plan.faults = &empty_plan;
  HeteroPrioStats stats;
  const Schedule run = heteroprio_dag(g, platform, with_plan, &stats);

  expect_identical_schedules(reference, run);
  ASSERT_EQ(clean_events.size(), faulty_events.size());
  for (std::size_t i = 0; i < clean_events.size(); ++i) {
    EXPECT_EQ(clean_events.events()[i], faulty_events.events()[i]) << i;
  }
  EXPECT_EQ(stats.recovery, fault::RecoveryReport{});
}

TEST(FaultRecovery, EmptyPlanIsANoOpForIndependentTasks) {
  std::vector<Task> tasks;
  for (int i = 1; i <= 40; ++i) {
    tasks.push_back(Task{1.0 + 0.1 * i, 0.3 + 0.05 * (i % 7)});
  }
  const Platform platform(3, 2);
  const fault::FaultPlan empty_plan;
  HeteroPrioOptions with_plan;
  with_plan.faults = &empty_plan;
  expect_identical_schedules(heteroprio(tasks, platform),
                             heteroprio(tasks, platform, with_plan));
}

TEST(FaultRecovery, CrashedWorkerStopsAndWorkIsReassigned) {
  const TaskGraph g = ranked_cholesky(8);
  const Platform platform(4, 2);
  const double horizon = heteroprio_dag(g, platform).makespan();

  fault::FaultPlan plan;
  const WorkerId crashed = 1;
  plan.add_crash(crashed, horizon * 0.3);

  HeteroPrioOptions options;
  options.faults = &plan;
  HeteroPrioStats stats;
  const Schedule s = heteroprio_dag(g, platform, options, &stats);

  const auto check = check_schedule(s, g, platform, kFaultyRun);
  ASSERT_TRUE(check.ok) << check.message;
  EXPECT_TRUE(s.complete());  // 5 survivors absorb the lost worker
  EXPECT_FALSE(stats.recovery.degraded);
  EXPECT_EQ(stats.recovery.worker_crashes, 1);
  // Nothing ends on the crashed worker after its crash instant.
  for (const Placement& p : s.placements()) {
    if (p.worker == crashed) EXPECT_LE(p.end, horizon * 0.3 + 1e-9);
  }
}

TEST(FaultRecovery, CrashAbortsInFlightWorkAndRequeuesIt) {
  // One CPU, one GPU; a long task is running on the CPU when it crashes.
  const std::vector<Task> tasks{Task{10.0, 10.0}, Task{10.0, 10.0}};
  const Platform platform(1, 1);
  fault::FaultPlan plan;
  plan.add_crash(0, 4.0);  // CPU dies mid-task

  HeteroPrioOptions options;
  options.faults = &plan;
  HeteroPrioStats stats;
  const Schedule s = heteroprio(tasks, platform, options, &stats);

  const auto check = check_schedule(s, tasks, platform, kFaultyRun);
  ASSERT_TRUE(check.ok) << check.message;
  EXPECT_TRUE(s.complete());
  EXPECT_EQ(stats.recovery.worker_crashes, 1);
  EXPECT_EQ(stats.recovery.crash_requeues, 1);
  ASSERT_EQ(s.aborted().size(), 1u);
  EXPECT_EQ(s.aborted()[0].worker, 0);
  EXPECT_DOUBLE_EQ(s.aborted()[0].abort_time, 4.0);
  // Both tasks finished on the surviving GPU, serialized.
  EXPECT_EQ(s.placements()[0].worker, 1);
  EXPECT_EQ(s.placements()[1].worker, 1);
  EXPECT_DOUBLE_EQ(s.makespan(), 20.0);
}

TEST(FaultRecovery, AllGpusCrashingShrinksToHomogeneous) {
  const TaskGraph g = ranked_cholesky(6);
  const Platform platform(3, 2);
  const double horizon = heteroprio_dag(g, platform).makespan();

  fault::FaultPlan plan;
  plan.add_crash(3, horizon * 0.2);
  plan.add_crash(4, horizon * 0.25);

  HeteroPrioOptions options;
  options.faults = &plan;
  HeteroPrioStats stats;
  const Schedule s = heteroprio_dag(g, platform, options, &stats);

  const auto check = check_schedule(s, g, platform, kFaultyRun);
  ASSERT_TRUE(check.ok) << check.message;
  EXPECT_TRUE(s.complete());
  EXPECT_EQ(stats.recovery.worker_crashes, 2);
  for (const Placement& p : s.placements()) {
    if (platform.type_of(p.worker) == Resource::kGpu) {
      EXPECT_LE(p.end, horizon * 0.25 + 1e-9);
    }
  }
}

TEST(FaultRecovery, AllWorkersCrashingDegradesTheRun) {
  const std::vector<Task> tasks{Task{5.0, 5.0}, Task{5.0, 5.0},
                                Task{5.0, 5.0}, Task{5.0, 5.0}};
  const Platform platform(1, 1);
  fault::FaultPlan plan;
  plan.add_crash(0, 2.0);
  plan.add_crash(1, 3.0);

  obs::EventRecorder recorder;
  HeteroPrioOptions options;
  options.faults = &plan;
  options.sink = &recorder;
  HeteroPrioStats stats;
  const Schedule s = heteroprio(tasks, platform, options, &stats);

  const auto check = check_schedule(s, tasks, platform, kFaultyRun);
  ASSERT_TRUE(check.ok) << check.message;
  EXPECT_FALSE(s.complete());
  EXPECT_TRUE(stats.recovery.degraded);
  EXPECT_EQ(stats.recovery.worker_crashes, 2);
  EXPECT_EQ(stats.recovery.tasks_unfinished, 4);
  EXPECT_EQ(recorder.count(obs::EventKind::kRunDegraded), 1u);
  EXPECT_EQ(recorder.count(obs::EventKind::kWorkerCrash), 2u);
}

TEST(FaultRecovery, StragglerWindowsStretchButEverythingCompletes) {
  const TaskGraph g = ranked_cholesky(8);
  const Platform platform(4, 2);
  const double horizon = heteroprio_dag(g, platform).makespan();

  fault::FaultPlan plan;
  plan.add_straggler(0, 0.0, horizon * 0.5, 4.0);
  plan.add_straggler(4, horizon * 0.1, horizon * 0.4, 3.0);

  obs::EventRecorder recorder;
  HeteroPrioOptions options;
  options.faults = &plan;
  options.sink = &recorder;
  HeteroPrioStats stats;
  const Schedule s = heteroprio_dag(g, platform, options, &stats);

  const auto check = check_schedule(s, g, platform, kFaultyRun);
  ASSERT_TRUE(check.ok) << check.message;
  EXPECT_TRUE(s.complete());
  EXPECT_FALSE(stats.recovery.degraded);
  EXPECT_EQ(stats.recovery.straggler_windows, 2);
  EXPECT_EQ(recorder.count(obs::EventKind::kWorkerSlowBegin), 2u);
  EXPECT_EQ(recorder.count(obs::EventKind::kWorkerSlowEnd), 2u);
}

TEST(FaultRecovery, FailedAttemptsAreRetriedUntilSuccess) {
  const TaskGraph g = ranked_cholesky(8);
  const Platform platform(4, 2);

  fault::FaultPlan plan;
  plan.set_task_faults(/*fail_prob=*/0.2, /*max_attempts=*/10,
                       /*retry_backoff=*/0.0, /*seed=*/7);

  obs::EventRecorder recorder;
  HeteroPrioOptions options;
  options.faults = &plan;
  options.sink = &recorder;
  HeteroPrioStats stats;
  const Schedule s = heteroprio_dag(g, platform, options, &stats);

  const auto check = check_schedule(s, g, platform, kFaultyRun);
  ASSERT_TRUE(check.ok) << check.message;
  EXPECT_TRUE(s.complete());
  EXPECT_FALSE(stats.recovery.degraded);
  EXPECT_GT(stats.recovery.task_failures, 0);
  EXPECT_EQ(stats.recovery.task_failures, stats.recovery.task_retries);
  EXPECT_EQ(recorder.count(obs::EventKind::kTaskFail),
            static_cast<std::size_t>(stats.recovery.task_failures));
  // Every failed attempt left an aborted segment strictly inside the run.
  EXPECT_GE(s.aborted().size(),
            static_cast<std::size_t>(stats.recovery.task_failures));
}

TEST(FaultRecovery, RetryBackoffDelaysTheNextAttempt) {
  const std::vector<Task> tasks{Task{4.0, 4.0}};
  const Platform platform(1, 0);
  fault::FaultPlan plan;
  plan.set_task_faults(1.0, 2, /*retry_backoff=*/0.5, /*seed=*/3);
  // Attempt 0 fails at some fraction of 4.0; the retry waits 0.5, then
  // attempt 1 fails too and the budget (2 attempts) is exhausted.
  obs::EventRecorder recorder;
  HeteroPrioOptions options;
  options.faults = &plan;
  options.sink = &recorder;
  HeteroPrioStats stats;
  const Schedule s = heteroprio(tasks, platform, options, &stats);

  EXPECT_FALSE(s.complete());
  EXPECT_TRUE(stats.recovery.degraded);
  EXPECT_EQ(stats.recovery.task_failures, 2);
  EXPECT_EQ(stats.recovery.task_retries, 1);
  EXPECT_EQ(stats.recovery.tasks_abandoned, 1);
  ASSERT_EQ(s.aborted().size(), 2u);
  // The second attempt starts no earlier than abort + backoff.
  EXPECT_GE(s.aborted()[1].start, s.aborted()[0].abort_time + 0.5 - 1e-9);
}

TEST(FaultRecovery, ExhaustedRetryBudgetDegradesTheRun) {
  const std::vector<Task> tasks{Task{1.0, 1.0}, Task{2.0, 1.5},
                                Task{1.5, 0.5}};
  const Platform platform(2, 1);
  fault::FaultPlan plan;
  plan.set_task_faults(1.0, 3, 0.0, 11);  // every attempt fails

  HeteroPrioOptions options;
  options.faults = &plan;
  HeteroPrioStats stats;
  const Schedule s = heteroprio(tasks, platform, options, &stats);

  const auto check = check_schedule(s, tasks, platform, kFaultyRun);
  ASSERT_TRUE(check.ok) << check.message;
  EXPECT_TRUE(stats.recovery.degraded);
  EXPECT_EQ(stats.recovery.tasks_abandoned, 3);
  EXPECT_EQ(stats.recovery.tasks_unfinished, 3);
  EXPECT_EQ(stats.recovery.task_failures, 9);  // 3 tasks x 3 attempts
  for (const Placement& p : s.placements()) EXPECT_FALSE(p.placed());
}

TEST(FaultRecovery, EngineRunsAreDeterministicForAGivenPlan) {
  const TaskGraph g = ranked_cholesky(8);
  const Platform platform(4, 2);
  fault::FaultSpec spec;
  std::string error;
  ASSERT_TRUE(fault::parse_spec(
      "crashes=1,stragglers=2,slow=3,taskfail=0.1,retries=4,seed=9", &spec,
      &error))
      << error;
  spec.horizon = heteroprio_dag(g, platform).makespan();
  const fault::FaultPlan plan = fault::FaultPlan::generate(spec, platform);

  obs::EventRecorder first, second;
  HeteroPrioOptions options;
  options.faults = &plan;
  options.sink = &first;
  const Schedule a = heteroprio_dag(g, platform, options);
  options.sink = &second;
  const Schedule b = heteroprio_dag(g, platform, options);

  expect_identical_schedules(a, b);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first.events()[i], second.events()[i]) << i;
  }
}

TEST(FaultRecovery, MixedFaultsStillYieldAValidRun) {
  const TaskGraph g = ranked_cholesky(10);
  const Platform platform(6, 2);
  fault::FaultSpec spec;
  std::string error;
  ASSERT_TRUE(fault::parse_spec(
      "crashes=2,stragglers=3,slow=4,taskfail=0.05,retries=3,backoff=0.01,"
      "seed=21",
      &spec, &error))
      << error;
  spec.horizon = heteroprio_dag(g, platform).makespan();
  const fault::FaultPlan plan = fault::FaultPlan::generate(spec, platform);

  HeteroPrioOptions options;
  options.faults = &plan;
  HeteroPrioStats stats;
  const Schedule s = heteroprio_dag(g, platform, options, &stats);
  const auto check = check_schedule(s, g, platform, kFaultyRun);
  ASSERT_TRUE(check.ok) << check.message;
  EXPECT_TRUE(s.complete() || stats.recovery.degraded);
  EXPECT_EQ(stats.recovery.worker_crashes, 2);
}

TEST(FaultRecovery, RandomPlanSweepKeepsRecoveryAccountsConsistent) {
  // Property sweep over fuzz-generated fault plans: whatever the plan does,
  // a degraded run must still pass validation with require_complete=false,
  // no task may fail more often than its retry budget, and every abandoned
  // task must have exhausted that budget exactly.
  fuzz::GenKnobs knobs;
  knobs.fault_fraction = 1.0;
  int faulty_runs = 0;
  for (std::uint64_t i = 0; i < 40 && faulty_runs < 15; ++i) {
    const fuzz::FuzzCase c = fuzz::generate_case(4242, i, knobs);
    if (!c.has_faults()) continue;
    ++faulty_runs;

    obs::EventRecorder events;
    HeteroPrioOptions options;
    options.faults = &c.faults;
    options.sink = &events;
    HeteroPrioStats stats;
    const Schedule s =
        c.is_dag() ? heteroprio_dag(c.graph, c.platform, options, &stats)
                   : heteroprio(c.graph.tasks(), c.platform, options, &stats);

    const auto check = check_schedule(s, c.graph, c.platform, kFaultyRun);
    ASSERT_TRUE(check.ok) << c.name << ": " << check.message;

    std::vector<int> fail_count(c.graph.size(), 0);
    for (const obs::Event& e : events.events()) {
      if (e.kind == obs::EventKind::kTaskFail && e.task >= 0) {
        ++fail_count[static_cast<std::size_t>(e.task)];
      }
    }
    const int budget = c.faults.max_attempts();
    int abandoned = 0;
    int unplaced = 0;
    for (std::size_t t = 0; t < c.graph.size(); ++t) {
      EXPECT_LE(fail_count[t], budget) << c.name << " task " << t;
      if (fail_count[t] == budget) {
        ++abandoned;
        EXPECT_FALSE(s.placements()[t].placed())
            << c.name << " task " << t
            << " exhausted its budget yet was placed";
      }
      if (!s.placements()[t].placed()) ++unplaced;
    }
    EXPECT_EQ(abandoned, stats.recovery.tasks_abandoned) << c.name;
    EXPECT_EQ(unplaced, stats.recovery.tasks_unfinished) << c.name;
    EXPECT_EQ(stats.recovery.degraded, unplaced > 0) << c.name;
  }
  EXPECT_GE(faulty_runs, 15);
}

TEST(FaultyReplay, StaticPlanSurvivesACrashViaFailover) {
  const TaskGraph g = ranked_cholesky(8);
  const Platform platform(4, 2);
  const Schedule plan = heft(g, platform, {.rank = RankScheme::kMin});
  const double horizon = plan.makespan();

  fault::FaultPlan faults;
  faults.add_crash(0, horizon * 0.3);

  const auto result = fault::execute_plan_with_faults(plan, g, platform,
                                                      faults);
  const auto check = check_schedule(result.schedule, g, platform, kFaultyRun);
  ASSERT_TRUE(check.ok) << check.message;
  EXPECT_TRUE(result.schedule.complete());
  EXPECT_FALSE(result.recovery.degraded);
  EXPECT_EQ(result.recovery.worker_crashes, 1);
  for (const Placement& p : result.schedule.placements()) {
    if (p.worker == 0) EXPECT_LE(p.end, horizon * 0.3 + 1e-9);
  }
}

TEST(FaultyReplay, MatchesEngineFaultRealityAndStaysDeterministic) {
  const TaskGraph g = ranked_cholesky(8);
  const Platform platform(4, 2);
  const Schedule plan = heft(g, platform, {.rank = RankScheme::kMin});

  fault::FaultSpec spec;
  std::string error;
  ASSERT_TRUE(fault::parse_spec(
      "crashes=1,stragglers=2,slow=3,taskfail=0.08,retries=3,seed=17", &spec,
      &error))
      << error;
  spec.horizon = plan.makespan();
  const fault::FaultPlan faults = fault::FaultPlan::generate(spec, platform);

  const auto a = fault::execute_plan_with_faults(plan, g, platform, faults);
  const auto b = fault::execute_plan_with_faults(plan, g, platform, faults);
  expect_identical_schedules(a.schedule, b.schedule);
  EXPECT_EQ(a.recovery, b.recovery);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i], b.events[i]) << i;
  }
  const auto check = check_schedule(a.schedule, g, platform, kFaultyRun);
  ASSERT_TRUE(check.ok) << check.message;
  // The replay's event stream is time-ordered (sink contract).
  for (std::size_t i = 1; i < a.events.size(); ++i) {
    EXPECT_LE(a.events[i - 1].time, a.events[i].time + 1e-12);
  }
}

TEST(FaultyReplay, AbandonedTaskCascadesToDependents) {
  TaskGraph g("chain");
  const TaskId a = g.add_task(Task{1.0, 1.0});
  const TaskId b = g.add_task(Task{1.0, 1.0});
  g.add_edge(a, b);
  g.finalize();
  assign_priorities(g, RankScheme::kMin);
  const Platform platform(1, 1);
  const Schedule plan = heft(g, platform, {.rank = RankScheme::kMin});

  fault::FaultPlan faults;
  faults.set_task_faults(1.0, 2, 0.0, 5);  // every attempt fails

  const auto result = fault::execute_plan_with_faults(plan, g, platform,
                                                      faults);
  EXPECT_TRUE(result.recovery.degraded);
  EXPECT_EQ(result.recovery.tasks_unfinished, 2);
  EXPECT_FALSE(result.schedule.placements()[a].placed());
  EXPECT_FALSE(result.schedule.placements()[b].placed());
  const auto check = check_schedule(result.schedule, g, platform, kFaultyRun);
  ASSERT_TRUE(check.ok) << check.message;
}

TEST(FaultRecovery, CountersPickUpTheFaultEventKinds) {
  const TaskGraph g = ranked_cholesky(8);
  const Platform platform(4, 2);
  fault::FaultSpec spec;
  std::string error;
  ASSERT_TRUE(fault::parse_spec(
      "crashes=1,stragglers=1,slow=4,taskfail=0.1,retries=5,seed=13", &spec,
      &error))
      << error;
  spec.horizon = heteroprio_dag(g, platform).makespan();
  const fault::FaultPlan plan = fault::FaultPlan::generate(spec, platform);

  obs::EventRecorder recorder;
  HeteroPrioOptions options;
  options.faults = &plan;
  options.sink = &recorder;
  HeteroPrioStats stats;
  (void)heteroprio_dag(g, platform, options, &stats);

  const obs::SchedulerCounters counters =
      obs::counters_from_events(recorder.events(), platform);
  EXPECT_EQ(counters.worker_crashes, stats.recovery.worker_crashes);
  EXPECT_EQ(counters.straggler_windows, stats.recovery.straggler_windows);
  EXPECT_EQ(counters.task_failures, stats.recovery.task_failures);
  EXPECT_EQ(counters.task_retries, stats.recovery.task_retries);
  EXPECT_EQ(counters.degraded_runs, stats.recovery.degraded ? 1 : 0);

  const obs::CounterRegistry registry = obs::registry_from(counters);
  EXPECT_TRUE(registry.contains("worker_crashes"));
  EXPECT_TRUE(registry.contains("task_failures"));
}

TEST(FaultRecovery, FaultyTraceExportsValidChromeJson) {
  const TaskGraph g = ranked_cholesky(8);
  const Platform platform(4, 2);
  fault::FaultSpec spec;
  std::string error;
  ASSERT_TRUE(fault::parse_spec(
      "crashes=1,stragglers=1,slow=3,taskfail=0.1,retries=4,seed=29", &spec,
      &error))
      << error;
  spec.horizon = heteroprio_dag(g, platform).makespan();
  const fault::FaultPlan plan = fault::FaultPlan::generate(spec, platform);

  obs::EventRecorder recorder;
  HeteroPrioOptions options;
  options.faults = &plan;
  options.sink = &recorder;
  (void)heteroprio_dag(g, platform, options);
  EXPECT_GT(recorder.count(obs::EventKind::kWorkerCrash), 0u);

  const std::string json =
      obs::chrome_trace_from_events(recorder.events(), platform, g.tasks());
  ASSERT_TRUE(obs::validate_chrome_trace(json, platform, &error)) << error;
}

TEST(FaultRecovery, RuntimeThreadsThePlanThroughAllPolicies) {
  using runtime::StfRuntime;
  const Platform platform(2, 1);

  for (const auto policy :
       {runtime::SchedulerPolicy::kHeteroPrio, runtime::SchedulerPolicy::kHeft,
        runtime::SchedulerPolicy::kDualHp}) {
    fault::FaultPlan plan;
    plan.add_crash(0, 1.0);

    runtime::RuntimeOptions options;
    options.policy = policy;
    options.faults = &plan;
    options.check_bounds = true;
    StfRuntime rt(platform, options);
    auto x = rt.register_data("x");
    auto y = rt.register_data("y");
    for (int i = 0; i < 12; ++i) {
      rt.submit(Task{1.0, 0.5}, {runtime::RW(i % 2 == 0 ? x : y)});
    }
    const double makespan = rt.run();
    EXPECT_GT(makespan, 0.0) << policy_name(policy);
    EXPECT_EQ(rt.recovery().worker_crashes, 1) << policy_name(policy);
    const auto check =
        check_schedule(rt.schedule(), rt.graph(), platform, kFaultyRun);
    EXPECT_TRUE(check.ok) << policy_name(policy) << ": " << check.message;
    // The watchdog judged the surviving (1 CPU, 1 GPU) shape; DAG verdicts
    // are advisory (a static failover replay may exceed phi legitimately).
    EXPECT_EQ(rt.bound_check().shape, obs::PlatformShape::kSingleSingle)
        << policy_name(policy);
    EXPECT_TRUE(rt.bound_check().advisory) << policy_name(policy);
  }
}

}  // namespace
}  // namespace hp
