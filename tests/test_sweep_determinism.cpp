// Determinism of the parallel experiment engine: run_dag_sweep must emit
// rows that are field-for-field identical (bitwise, for the doubles) no
// matter how many threads fan the (kernel, tiles) cells out. Each cell is
// self-seeded from its coordinates and writes into a pre-allocated slot, so
// parallelism may only change wall-clock time, never results.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "sweep/dag_sweep.hpp"

namespace hp::bench {
namespace {

SweepOptions small_sweep(int threads) {
  SweepOptions options;
  options.kernels = {"cholesky", "qr", "lu"};
  options.tile_counts = {4, 8};
  options.verbose = false;
  options.threads = threads;
  return options;
}

// Bitwise double equality: the contract is "byte-identical to serial", not
// "approximately equal". NaN == NaN under this comparison.
bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void expect_rows_identical(const std::vector<SweepRow>& serial,
                           const std::vector<SweepRow>& parallel) {
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("row " + std::to_string(i) + " (" + serial[i].kernel + " N=" +
                 std::to_string(serial[i].tiles) + " " +
                 serial[i].algorithm + ")");
    const SweepRow& a = serial[i];
    const SweepRow& b = parallel[i];
    EXPECT_EQ(a.kernel, b.kernel);
    EXPECT_EQ(a.tiles, b.tiles);
    EXPECT_EQ(a.algorithm, b.algorithm);
    EXPECT_TRUE(same_bits(a.makespan, b.makespan))
        << a.makespan << " vs " << b.makespan;
    EXPECT_TRUE(same_bits(a.lower_bound, b.lower_bound));
    EXPECT_TRUE(same_bits(a.ratio, b.ratio));
    EXPECT_EQ(a.spoliations, b.spoliations);
    for (Resource r : {Resource::kCpu, Resource::kGpu}) {
      const ResourceMetrics& ma = a.metrics.of(r);
      const ResourceMetrics& mb = b.metrics.of(r);
      EXPECT_TRUE(same_bits(ma.busy_time, mb.busy_time));
      EXPECT_TRUE(same_bits(ma.aborted_time, mb.aborted_time));
      EXPECT_TRUE(same_bits(ma.idle_time, mb.idle_time));
      EXPECT_EQ(ma.tasks_completed, mb.tasks_completed);
      // equivalent_accel is NaN when a resource completed nothing; NaN must
      // appear (or not) identically on both sides.
      EXPECT_TRUE(same_bits(ma.equivalent_accel, mb.equivalent_accel) ||
                  (std::isnan(ma.equivalent_accel) &&
                   std::isnan(mb.equivalent_accel)));
    }
  }
}

TEST(SweepDeterminism, ParallelRowsIdenticalToSerial) {
  const std::vector<SweepRow> serial = run_dag_sweep(small_sweep(1));
  const std::vector<SweepRow> parallel = run_dag_sweep(small_sweep(4));
  expect_rows_identical(serial, parallel);
}

TEST(SweepDeterminism, ParallelRunsAgreeWithEachOther) {
  // Two parallel runs with different worker counts must also agree: cell
  // results depend only on cell coordinates, never on scheduling of cells.
  const std::vector<SweepRow> two = run_dag_sweep(small_sweep(2));
  const std::vector<SweepRow> three = run_dag_sweep(small_sweep(3));
  expect_rows_identical(two, three);
}

TEST(SweepDeterminism, CoversAllSchedulersInGridOrder) {
  const std::vector<SweepRow> rows = run_dag_sweep(small_sweep(4));
  // 3 kernels x 2 tile counts x 7 scheduler variants, in grid order.
  ASSERT_EQ(rows.size(), 3u * 2u * 7u);
  std::size_t i = 0;
  for (const char* kernel : {"cholesky", "qr", "lu"}) {
    for (int tiles : {4, 8}) {
      for (std::size_t v = 0; v < 7; ++v, ++i) {
        EXPECT_EQ(rows[i].kernel, kernel);
        EXPECT_EQ(rows[i].tiles, tiles);
        EXPECT_GT(rows[i].makespan, 0.0);
        EXPECT_GE(rows[i].ratio, 1.0 - 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace hp::bench
