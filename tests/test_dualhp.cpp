#include "baselines/dualhp.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "bounds/area_bound.hpp"
#include "bounds/exact_opt.hpp"
#include "dag/ranking.hpp"
#include "linalg/cholesky.hpp"
#include "model/generators.hpp"
#include "sched/validate.hpp"
#include "util/rng.hpp"

namespace hp {
namespace {

TEST(DualTry, ForcedAssignments) {
  // lambda = 3: task 0 (p=5 > 3) forced to GPU; task 1 (q=4 > 3) forced to
  // CPU; task 2 flexible.
  const std::vector<Task> tasks{Task{5.0, 1.0}, Task{2.0, 4.0},
                                Task{1.0, 1.0}};
  std::vector<TaskId> candidates{0, 2, 1};  // rho desc: 5, 1, 0.5
  const std::vector<double> cpu_loads{0.0};
  const std::vector<double> gpu_loads{0.0};
  const auto res = detail::dual_try(tasks, candidates, 3.0, cpu_loads, gpu_loads);
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.side[0], Resource::kGpu);  // candidate 0 = task 0
  EXPECT_EQ(res.side[2], Resource::kCpu);  // candidate 2 = task 1
}

TEST(DualTry, InfeasibleWhenTaskExceedsLambdaOnBoth) {
  const std::vector<Task> tasks{Task{5.0, 5.0}};
  const std::vector<TaskId> candidates{0};
  const std::vector<double> one_load{0.0};
  EXPECT_FALSE(
      detail::dual_try(tasks, candidates, 4.0, one_load, one_load).feasible);
  EXPECT_TRUE(
      detail::dual_try(tasks, candidates, 5.0, one_load, one_load).feasible);
}

TEST(DualTry, RespectsTwoLambdaCap) {
  // Two tasks of CPU time 3 on one CPU with lambda = 2: cap is 4, placing
  // both (load 6) must fail; GPU-hostile so they cannot spill there.
  const std::vector<Task> tasks{Task{3.0, 50.0}, Task{3.0, 50.0}};
  const std::vector<TaskId> candidates{0, 1};
  const std::vector<double> cpu_loads{0.0};
  const std::vector<double> gpu_loads{0.0};
  EXPECT_FALSE(
      detail::dual_try(tasks, candidates, 2.0, cpu_loads, gpu_loads).feasible);
}

TEST(DualTry, AccountsForInitialLoads) {
  // GPU already loaded to 3; with lambda = 2 (cap 4) a q=2 task fits only
  // if the residual allows; 3+2=5 > 4 -> must go to the CPU instead.
  const std::vector<Task> tasks{Task{2.0, 2.0}};
  const std::vector<TaskId> candidates{0};
  const std::vector<double> cpu_loads{0.0};
  const std::vector<double> gpu_loads{3.0};
  const auto res = detail::dual_try(tasks, candidates, 2.0, cpu_loads, gpu_loads);
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.side[0], Resource::kCpu);
}

TEST(DualHp, ValidScheduleOnRandomInstances) {
  util::Rng rng(21);
  for (int rep = 0; rep < 10; ++rep) {
    const Instance inst = uniform_instance({.num_tasks = 30}, rng);
    const Platform platform(3, 2);
    const Schedule s = dualhp(inst.tasks(), platform);
    const auto check = check_schedule(s, inst.tasks(), platform);
    EXPECT_TRUE(check.ok) << check.message;
  }
}

TEST(DualHp, WithinTwiceOptimalOnSmallInstances) {
  // The dual-approximation guarantee: makespan <= 2 * OPT (§6: "returns a
  // schedule of length 2*lambda" with lambda <= OPT at the search's end).
  util::Rng rng(22);
  for (int rep = 0; rep < 12; ++rep) {
    const Instance inst = uniform_instance({.num_tasks = 9}, rng);
    const Platform platform(2, 1);
    const Schedule s = dualhp(inst.tasks(), platform);
    const double opt = exact_optimal_makespan(inst.tasks(), platform);
    EXPECT_LE(s.makespan(), 2.0 * opt * (1.0 + 1e-6) + 1e-9);
  }
}

TEST(DualHp, EmptyInstance) {
  const std::vector<Task> tasks;
  EXPECT_DOUBLE_EQ(dualhp(tasks, Platform(1, 1)).makespan(), 0.0);
}

TEST(DualHp, SingleTaskGoesToFasterResourceWithinBound) {
  const std::vector<Task> tasks{Task{4.0, 1.0}};
  const Schedule s = dualhp(tasks, Platform(1, 1));
  EXPECT_LE(s.makespan(), 2.0 + 1e-9);  // 2 * OPT = 2
}

TEST(DualHp, PriorityOrderingWithinWorker) {
  // Force both tasks onto the single CPU; the higher-priority one runs
  // first unless fifo ordering is requested.
  const std::vector<Task> tasks{
      Task{1.0, 50.0, /*priority=*/1.0},
      Task{1.0, 50.0, /*priority=*/9.0},
  };
  const Platform platform(1, 1);
  const Schedule by_prio = dualhp(tasks, platform);
  EXPECT_LT(by_prio.placement(1).start, by_prio.placement(0).start);
  const Schedule by_fifo = dualhp(tasks, platform, {.fifo_order = true});
  EXPECT_LT(by_fifo.placement(0).start, by_fifo.placement(1).start);
}

TEST(DualHpDag, ValidOnCholesky) {
  TaskGraph g = cholesky_dag(6);
  assign_priorities(g, RankScheme::kAvg);
  const Platform platform(4, 2);
  const Schedule s = dualhp_dag(g, platform);
  const auto check = check_schedule(s, g, platform);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(DualHpDag, ChainCompletes) {
  TaskGraph g("chain");
  const TaskId a = g.add_task(Task{2.0, 1.0});
  const TaskId b = g.add_task(Task{2.0, 1.0});
  const TaskId c = g.add_task(Task{2.0, 1.0});
  g.add_edge(a, b);
  g.add_edge(b, c);
  g.finalize();
  const Platform platform(1, 1);
  const Schedule s = dualhp_dag(g, platform);
  const auto check = check_schedule(s, g, platform);
  ASSERT_TRUE(check.ok) << check.message;
  EXPECT_GE(s.makespan(), 3.0 - 1e-9);  // critical path of min times
}

TEST(DualHpDag, FifoAndPriorityVariantsBothValid) {
  TaskGraph g = cholesky_dag(5);
  assign_priorities(g, RankScheme::kMin);
  const Platform platform(2, 2);
  const Schedule prio = dualhp_dag(g, platform);
  const Schedule fifo = dualhp_dag(g, platform, {.fifo_order = true});
  EXPECT_TRUE(check_schedule(prio, g, platform).ok);
  EXPECT_TRUE(check_schedule(fifo, g, platform).ok);
}

TEST(DualHpDag, DeterministicAcrossRuns) {
  TaskGraph g = cholesky_dag(5);
  assign_priorities(g, RankScheme::kAvg);
  const Platform platform(3, 1);
  EXPECT_DOUBLE_EQ(dualhp_dag(g, platform).makespan(),
                   dualhp_dag(g, platform).makespan());
}

TEST(DualHpDag, ConservatismLeavesCpusIdleOnGpuFriendlyFront) {
  // §6.2's observation: at the start, DualHP assigns everything to the GPU
  // because using a CPU would lengthen the local makespan. With a single
  // ready chain of GPU-friendly tasks, the CPU never works.
  TaskGraph g("gpu-chain");
  TaskId prev = g.add_task(Task{20.0, 1.0});
  for (int i = 0; i < 4; ++i) {
    const TaskId next = g.add_task(Task{20.0, 1.0});
    g.add_edge(prev, next);
    prev = next;
  }
  g.finalize();
  const Platform platform(2, 1);
  const Schedule s = dualhp_dag(g, platform);
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_EQ(platform.type_of(s.placement(static_cast<TaskId>(i)).worker),
              Resource::kGpu);
  }
}

}  // namespace
}  // namespace hp
