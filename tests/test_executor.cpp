#include "sched/executor.hpp"

#include <gtest/gtest.h>

#include "baselines/heft.hpp"
#include "linalg/cholesky.hpp"
#include "sched/validate.hpp"
#include "util/rng.hpp"

namespace hp {
namespace {

TEST(Executor, ExactEstimatesReproducePlanMakespan) {
  const TaskGraph g = cholesky_dag(8);
  const Platform platform(4, 2);
  const Schedule plan = heft(g, platform, {.rank = RankScheme::kMin});
  const Schedule replay = execute_static_plan(plan, g, platform);
  const auto check = check_schedule(replay, g, platform);
  ASSERT_TRUE(check.ok) << check.message;
  // Replay compacts idle gaps but never beats the plan's dependencies:
  // with exact times it matches the plan up to gap-compaction.
  EXPECT_LE(replay.makespan(), plan.makespan() + 1e-9);
}

TEST(Executor, PreservesWorkerAssignment) {
  const TaskGraph g = cholesky_dag(6);
  const Platform platform(3, 1);
  const Schedule plan = heft(g, platform);
  const Schedule replay = execute_static_plan(plan, g, platform);
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_EQ(replay.placement(static_cast<TaskId>(i)).worker,
              plan.placement(static_cast<TaskId>(i)).worker);
  }
}

TEST(Executor, NoisyDurationsShiftExecution) {
  TaskGraph g = cholesky_dag(6);
  const Platform platform(3, 1);
  const Schedule plan = heft(g, platform);

  std::vector<Task> actuals(g.tasks().begin(), g.tasks().end());
  util::Rng rng(9);
  for (Task& t : actuals) {
    t.cpu_time *= rng.lognormal(0.0, 0.3);
    t.gpu_time *= rng.lognormal(0.0, 0.3);
  }
  const Schedule replay = execute_static_plan(plan, g, platform, actuals);
  // Valid against the ACTUAL durations.
  const auto check = check_schedule(replay, actuals, platform);
  ASSERT_TRUE(check.ok) << check.message;
  // Precedence still respected.
  for (std::size_t i = 0; i < g.size(); ++i) {
    for (TaskId pred : g.predecessors(static_cast<TaskId>(i))) {
      EXPECT_GE(replay.placement(static_cast<TaskId>(i)).start,
                replay.placement(pred).end - 1e-9);
    }
  }
}

TEST(Executor, ChainOnOneWorkerIsSequential) {
  TaskGraph g("chain");
  const TaskId a = g.add_task(Task{1.0, 10.0});
  const TaskId b = g.add_task(Task{2.0, 10.0});
  g.add_edge(a, b);
  g.finalize();
  const Platform platform(1, 1);
  Schedule plan(2);
  plan.place(a, 0, 0.0, 1.0);
  plan.place(b, 0, 1.0, 3.0);
  const Schedule replay = execute_static_plan(plan, g, platform);
  EXPECT_DOUBLE_EQ(replay.placement(b).start, 1.0);
  EXPECT_DOUBLE_EQ(replay.makespan(), 3.0);
}

TEST(Executor, CrossWorkerDependencyDelaysStart) {
  TaskGraph g("cross");
  const TaskId a = g.add_task(Task{4.0, 4.0});
  const TaskId b = g.add_task(Task{1.0, 1.0});
  g.add_edge(a, b);
  g.finalize();
  const Platform platform(1, 1);
  Schedule plan(2);
  plan.place(a, 0, 0.0, 4.0);
  plan.place(b, 1, 4.0, 5.0);
  // Double the actual duration of a: b must slide to start at 8.
  std::vector<Task> actuals{Task{8.0, 8.0}, Task{1.0, 1.0}};
  const Schedule replay = execute_static_plan(plan, g, platform, actuals);
  EXPECT_DOUBLE_EQ(replay.placement(b).start, 8.0);
  EXPECT_DOUBLE_EQ(replay.makespan(), 9.0);
}

}  // namespace
}  // namespace hp
