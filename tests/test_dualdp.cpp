#include "baselines/dualdp.hpp"

#include <gtest/gtest.h>

#include "baselines/dualhp.hpp"
#include "bounds/exact_opt.hpp"
#include "linalg/cholesky.hpp"
#include "model/generators.hpp"
#include "sched/validate.hpp"
#include "util/rng.hpp"

namespace hp {
namespace {

TEST(DualDp, EmptyAndSingleTask) {
  const std::vector<Task> none;
  EXPECT_DOUBLE_EQ(dualdp(none, Platform(1, 1)).makespan(), 0.0);
  const std::vector<Task> one{Task{4.0, 1.0}};
  const Schedule s = dualdp(one, Platform(1, 1));
  EXPECT_LE(s.makespan(), 2.0 + 1e-9);  // within 2*OPT
}

TEST(DualDp, ValidSchedulesOnRandomInstances) {
  util::Rng rng(31);
  for (int rep = 0; rep < 15; ++rep) {
    const Instance inst = uniform_instance({.num_tasks = 40}, rng);
    const Platform platform(3, 2);
    const Schedule s = dualdp(inst.tasks(), platform);
    const auto check = check_schedule(s, inst.tasks(), platform);
    EXPECT_TRUE(check.ok) << check.message;
  }
}

TEST(DualDp, WithinTwiceOptimalOnSmallInstances) {
  util::Rng rng(32);
  for (int rep = 0; rep < 12; ++rep) {
    const Instance inst = uniform_instance({.num_tasks = 9}, rng);
    const Platform platform(2, 1);
    const Schedule s = dualdp(inst.tasks(), platform);
    const double opt = exact_optimal_makespan(inst.tasks(), platform);
    EXPECT_LE(s.makespan(), 2.0 * opt * (1.0 + 1e-6)) << "rep " << rep;
  }
}

TEST(DualDp, BeatsGreedyThresholdOnLumpyInstance) {
  // The DP's raison d'etre: a lumpy instance where the greedy GPU fill of
  // DualHP strands a big task. Two big GPU-friendly tasks that together
  // overload one GPU, plus filler: the knapsack balances them.
  std::vector<Task> tasks;
  tasks.push_back(Task{40.0, 10.0});  // rho 4
  tasks.push_back(Task{40.0, 10.0});
  for (int i = 0; i < 10; ++i) tasks.push_back(Task{4.0, 1.0});  // rho 4
  const Platform platform(2, 1);
  const double dp_ms = dualdp(tasks, platform).makespan();
  const double greedy_ms = dualhp(tasks, platform).makespan();
  EXPECT_LE(dp_ms, greedy_ms * (1.0 + 1e-9));
}

TEST(DualDp, AverageNotWorseThanDualHpOnKernelTaskSets) {
  // On the Fig 6 workloads the DP split should on average match or beat the
  // greedy one (both converge to the area bound for large N).
  const Platform platform(20, 4);
  const Instance inst = cholesky_dag(16).to_instance();
  const double dp_ms = dualdp(inst.tasks(), platform).makespan();
  const double greedy_ms = dualhp(inst.tasks(), platform).makespan();
  EXPECT_LE(dp_ms, greedy_ms * 1.05);
}

TEST(DualDp, SingleResourcePlatforms) {
  const std::vector<Task> tasks{Task{2.0, 1.0}, Task{2.0, 1.0}};
  const Schedule cpu_only = dualdp(tasks, Platform(2, 0));
  EXPECT_DOUBLE_EQ(cpu_only.makespan(), 2.0);
  const Schedule gpu_only = dualdp(tasks, Platform(0, 2));
  EXPECT_DOUBLE_EQ(gpu_only.makespan(), 1.0);
}

TEST(DualDp, DeterministicAcrossRuns) {
  util::Rng rng(33);
  const Instance inst = uniform_instance({.num_tasks = 25}, rng);
  const Platform platform(2, 2);
  EXPECT_DOUBLE_EQ(dualdp(inst.tasks(), platform).makespan(),
                   dualdp(inst.tasks(), platform).makespan());
}

TEST(DualDp, FinerGridNeverHurtsMuch) {
  util::Rng rng(34);
  const Instance inst = uniform_instance({.num_tasks = 30}, rng);
  const Platform platform(3, 1);
  const double coarse =
      dualdp(inst.tasks(), platform, {.capacity_grid = 64}).makespan();
  const double fine =
      dualdp(inst.tasks(), platform, {.capacity_grid = 1024}).makespan();
  EXPECT_LE(fine, coarse * 1.10);
}

}  // namespace
}  // namespace hp
