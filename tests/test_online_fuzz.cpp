// Fuzz-layer coverage of the online differential: the generator draws
// arrival streams last (so historical (seed, index) cases keep their exact
// platform/workload/faults), the oracle's `online` property checks both
// differential legs, and corpus files embed arrival plans behind `# hpo:`
// lines the plain workload parsers skip.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "fuzz/corpus.hpp"

#ifndef HP_CORPUS_DIR
#error "HP_CORPUS_DIR must point at tests/corpus"
#endif

namespace hp::fuzz {
namespace {

TEST(OnlineFuzz, GeneratorDrawsArrivalStreamsDeterministically) {
  GenKnobs knobs;
  knobs.online_fraction = 1.0;
  const FuzzCase a = generate_case(7, 3, knobs);
  const FuzzCase b = generate_case(7, 3, knobs);
  EXPECT_TRUE(a.has_arrivals());
  EXPECT_EQ(a.arrivals, b.arrivals);  // bitwise: pure in (seed, index)
  EXPECT_EQ(a.arrivals.size(), a.graph.size());
}

TEST(OnlineFuzz, ArrivalKnobLeavesHistoricalCasesUntouched) {
  // The arrival draw is the last use of the case's rng stream: every field
  // drawn before it is byte-identical whether the knob is on or off.
  GenKnobs off;
  off.online_fraction = 0.0;
  for (std::uint64_t index = 0; index < 20; ++index) {
    const FuzzCase with_knob = generate_case(11, index);
    const FuzzCase without = generate_case(11, index, off);
    EXPECT_FALSE(without.has_arrivals());
    EXPECT_EQ(with_knob.platform.cpus(), without.platform.cpus());
    EXPECT_EQ(with_knob.platform.gpus(), without.platform.gpus());
    EXPECT_EQ(with_knob.faults, without.faults);
    ASSERT_EQ(with_knob.graph.size(), without.graph.size());
    EXPECT_EQ(with_knob.graph.num_edges(), without.graph.num_edges());
    for (std::size_t i = 0; i < with_knob.graph.size(); ++i) {
      EXPECT_EQ(with_knob.graph.tasks()[i].cpu_time,
                without.graph.tasks()[i].cpu_time);
      EXPECT_EQ(with_knob.graph.tasks()[i].gpu_time,
                without.graph.tasks()[i].gpu_time);
      EXPECT_EQ(with_knob.graph.tasks()[i].priority,
                without.graph.tasks()[i].priority);
    }
  }
}

TEST(OnlineFuzz, DefaultKnobsMixBatchAndOnlineCases) {
  int with_arrivals = 0;
  for (std::uint64_t index = 0; index < 40; ++index) {
    if (generate_case(3, index).has_arrivals()) ++with_arrivals;
  }
  EXPECT_GT(with_arrivals, 0);
  EXPECT_LT(with_arrivals, 40);
}

TEST(OnlineFuzz, OnlinePropertyIsInTheCatalogue) {
  EXPECT_STREQ(property_name(kPropOnline), "online");
  unsigned props = 0;
  std::string error;
  ASSERT_TRUE(parse_props("online", &props, &error)) << error;
  EXPECT_EQ(props, kPropOnline);
  EXPECT_EQ(props_to_string(kPropOnline), "online");
  ASSERT_TRUE(parse_props("all", &props, &error)) << error;
  EXPECT_EQ(props & kPropOnline, kPropOnline);
}

TEST(OnlineFuzz, OracleChecksTheOnlineDifferentialOnSeededCases) {
  GenKnobs knobs;
  knobs.online_fraction = 1.0;
  OracleOptions options;
  options.props = kPropValidity | kPropOnline;
  for (std::uint64_t index = 0; index < 12; ++index) {
    const FuzzCase c = generate_case(20260808, index, knobs);
    const SchedulerId sched =
        index % 2 == 0 ? SchedulerId::kHp : SchedulerId::kHpNoSpol;
    const OracleVerdict verdict = check_case(c, sched, options);
    EXPECT_GE(verdict.properties_checked, 2) << c.name;
    for (const PropertyFailure& f : verdict.failures) {
      ADD_FAILURE() << c.name << " [" << f.scheduler << "] " << f.property
                    << ": " << f.detail;
    }
  }
}

TEST(OnlineFuzz, CorpusEmbedsArrivalPlans) {
  GenKnobs knobs;
  knobs.online_fraction = 1.0;
  CorpusCase entry;
  entry.c = generate_case(91, 2, knobs);
  ASSERT_TRUE(entry.c.has_arrivals());
  entry.schedulers = {SchedulerId::kHp};
  entry.props = kPropValidity | kPropOnline;

  const std::string text = corpus_to_text(entry);
  EXPECT_NE(text.find("# hpo: arrivals v1"), std::string::npos);

  CorpusCase back;
  std::string error;
  ASSERT_TRUE(corpus_from_text(text, &back, &error)) << error;
  EXPECT_EQ(back.c.arrivals, entry.c.arrivals);  // bitwise round trip
  EXPECT_EQ(back.props, entry.props);
}

TEST(OnlineFuzz, StaggeredWitnessReplaysGreen) {
  CorpusCase entry;
  std::string error;
  ASSERT_TRUE(load_corpus_file(
      std::string(HP_CORPUS_DIR) + "/online-staggered.hpi", &entry, &error))
      << error;
  ASSERT_TRUE(entry.c.has_arrivals());
  EXPECT_TRUE(entry.c.arrivals.has_deadlines());
  const CorpusVerdict verdict = replay_corpus_case(entry);
  EXPECT_GT(verdict.properties_checked, 0);
  for (const PropertyFailure& f : verdict.failures) {
    ADD_FAILURE() << f.property << " [" << f.scheduler << "] " << f.detail;
  }
}

}  // namespace
}  // namespace hp::fuzz
