#include "sched/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace hp {
namespace {

TEST(Metrics, BusyAndIdleTime) {
  // 1 CPU + 1 GPU; CPU busy [0,2], GPU busy [0,1]; makespan 2.
  const std::vector<Task> tasks{Task{2.0, 1.0}, Task{3.0, 1.0}};
  const Platform platform(1, 1);
  Schedule s(2);
  s.place(0, 0, 0.0, 2.0);
  s.place(1, 1, 0.0, 1.0);
  const ScheduleMetrics m = compute_metrics(s, tasks, platform);
  EXPECT_DOUBLE_EQ(m.makespan, 2.0);
  EXPECT_DOUBLE_EQ(m.cpu.busy_time, 2.0);
  EXPECT_DOUBLE_EQ(m.gpu.busy_time, 1.0);
  EXPECT_DOUBLE_EQ(m.cpu.idle_time, 0.0);
  EXPECT_DOUBLE_EQ(m.gpu.idle_time, 1.0);
  EXPECT_EQ(m.cpu.tasks_completed, 1);
  EXPECT_EQ(m.gpu.tasks_completed, 1);
}

TEST(Metrics, AbortedWorkCountsAsIdle) {
  // The §6.2 footnote: aborted work is idle time, not busy time.
  const std::vector<Task> tasks{Task{4.0, 1.0}};
  const Platform platform(1, 1);
  Schedule s(1);
  s.add_aborted(0, 0, 0.0, 2.0);  // 2 units lost on the CPU
  s.place(0, 1, 2.0, 3.0);        // finished on the GPU
  const ScheduleMetrics m = compute_metrics(s, tasks, platform);
  EXPECT_DOUBLE_EQ(m.makespan, 3.0);
  EXPECT_DOUBLE_EQ(m.cpu.busy_time, 0.0);
  EXPECT_DOUBLE_EQ(m.cpu.aborted_time, 2.0);
  EXPECT_DOUBLE_EQ(m.cpu.idle_time, 3.0);  // full horizon counts as idle
  EXPECT_DOUBLE_EQ(m.gpu.busy_time, 1.0);
}

TEST(Metrics, MultiAttemptTimeChargedToTheWorkerThatRanIt) {
  // A faulty run: task 0 failed on CPU 0 and again on CPU 1 before finishing
  // on the GPU; task 1 lost a crash-aborted attempt on the GPU. Each
  // attempt's time lands on the resource that actually ran it.
  const std::vector<Task> tasks{Task{4.0, 2.0}, Task{3.0, 1.0}};
  const Platform platform(2, 1);
  Schedule s(2);
  s.add_aborted(0, 0, 0.0, 1.0);  // attempt 0: 1.0 lost on a CPU
  s.add_aborted(0, 1, 1.0, 2.5);  // attempt 1: 1.5 lost on the other CPU
  s.place(0, 2, 2.5, 4.5);        // attempt 2 completed on the GPU
  s.add_aborted(1, 2, 0.0, 0.5);  // crash-aborted GPU attempt
  s.place(1, 0, 1.0, 4.0);        // completed on a CPU
  const ScheduleMetrics m = compute_metrics(s, tasks, platform);
  EXPECT_EQ(m.cpu.attempts_aborted, 2);
  EXPECT_EQ(m.gpu.attempts_aborted, 1);
  EXPECT_DOUBLE_EQ(m.cpu.aborted_time, 2.5);
  EXPECT_DOUBLE_EQ(m.gpu.aborted_time, 0.5);
  EXPECT_DOUBLE_EQ(m.cpu.busy_time, 3.0);
  EXPECT_DOUBLE_EQ(m.gpu.busy_time, 2.0);
  EXPECT_EQ(m.cpu.tasks_completed, 1);
  EXPECT_EQ(m.gpu.tasks_completed, 1);
}

TEST(Metrics, AttemptsAbortedZeroWithoutFaultsOrSpoliation) {
  const std::vector<Task> tasks{Task{2.0, 1.0}};
  const Platform platform(1, 1);
  Schedule s(1);
  s.place(0, 0, 0.0, 2.0);
  const ScheduleMetrics m = compute_metrics(s, tasks, platform);
  EXPECT_EQ(m.cpu.attempts_aborted, 0);
  EXPECT_EQ(m.gpu.attempts_aborted, 0);
}

TEST(Metrics, EquivalentAccelerationFactor) {
  // A_r = sum(p_i) / sum(q_i) over tasks completed on r (Fig 8).
  const std::vector<Task> tasks{Task{10.0, 1.0}, Task{6.0, 3.0},
                                Task{4.0, 4.0}};
  const Platform platform(1, 1);
  Schedule s(3);
  s.place(0, 1, 0.0, 1.0);   // GPU
  s.place(1, 1, 1.0, 4.0);   // GPU
  s.place(2, 0, 0.0, 4.0);   // CPU
  const ScheduleMetrics m = compute_metrics(s, tasks, platform);
  EXPECT_DOUBLE_EQ(m.gpu.equivalent_accel, 16.0 / 4.0);
  EXPECT_DOUBLE_EQ(m.cpu.equivalent_accel, 1.0);
}

TEST(Metrics, EquivalentAccelNaNWhenResourceUnused) {
  const std::vector<Task> tasks{Task{1.0, 1.0}};
  const Platform platform(1, 1);
  Schedule s(1);
  s.place(0, 0, 0.0, 1.0);
  const ScheduleMetrics m = compute_metrics(s, tasks, platform);
  EXPECT_TRUE(std::isnan(m.gpu.equivalent_accel));
}

TEST(Metrics, NormalizedIdle) {
  const std::vector<Task> tasks{Task{2.0, 1.0}};
  const Platform platform(2, 1);
  Schedule s(1);
  s.place(0, 0, 0.0, 2.0);
  const ScheduleMetrics m = compute_metrics(s, tasks, platform);
  // idle on CPUs = 2*2 - 2 = 2; capacity at LB=1: 2*1=2 -> normalized 1.
  EXPECT_DOUBLE_EQ(normalized_idle(m, Resource::kCpu, platform, 1.0), 1.0);
  // GPU idle = 2; capacity 1*1=1 -> normalized 2.
  EXPECT_DOUBLE_EQ(normalized_idle(m, Resource::kGpu, platform, 1.0), 2.0);
}

TEST(Metrics, NormalizedIdleZeroCapacity) {
  const std::vector<Task> tasks{Task{1.0, 1.0}};
  const Platform platform(1, 1);
  Schedule s(1);
  s.place(0, 0, 0.0, 1.0);
  const ScheduleMetrics m = compute_metrics(s, tasks, platform);
  EXPECT_DOUBLE_EQ(normalized_idle(m, Resource::kCpu, platform, 0.0), 0.0);
}

TEST(Metrics, OfSelectsResource) {
  ScheduleMetrics m;
  m.cpu.busy_time = 1.0;
  m.gpu.busy_time = 2.0;
  EXPECT_DOUBLE_EQ(m.of(Resource::kCpu).busy_time, 1.0);
  EXPECT_DOUBLE_EQ(m.of(Resource::kGpu).busy_time, 2.0);
}

}  // namespace
}  // namespace hp
