// Histogram and MetricsRegistry edge cases (obs/metrics.hpp): empty and
// single-sample histograms, underflow/overflow routing, merges of disjoint
// ranges, and the bucketed-vs-exact percentile cross-check against the
// documented error bound (r in [x, x * (1 + 2^-sub_bits)]).

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace hp::obs {
namespace {

TEST(Histogram, EmptyReportsZeros) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.0), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.quantile(1.0), 0.0);
}

TEST(Histogram, SingleSampleIsExactAtEveryQuantile) {
  Histogram h;
  h.record(3.7);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 3.7);
  EXPECT_DOUBLE_EQ(h.mean(), 3.7);
  // The bucket upper bound is clamped to the observed [min, max], so a
  // single sample is reported exactly at any q.
  for (const double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 3.7) << "q=" << q;
  }
}

TEST(Histogram, UnderflowBucketTakesSmallZeroAndNegative) {
  const HistogramConfig config{.min_exp = 0, .max_exp = 4, .sub_bits = 2};
  Histogram h(config);
  h.record(0.5);   // below 2^0
  h.record(0.0);   // no exponent
  h.record(-3.0);  // no exponent
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.bucket_count(0), 3u);
  EXPECT_DOUBLE_EQ(h.min(), -3.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.5);
  EXPECT_DOUBLE_EQ(h.sum(), -2.5);
}

TEST(Histogram, NaNCountsInUnderflowBucket) {
  Histogram h;
  h.record(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.bucket_count(0), 1u);
}

TEST(Histogram, OverflowBucketTakesLargeValues) {
  const HistogramConfig config{.min_exp = 0, .max_exp = 4, .sub_bits = 2};
  Histogram h(config);
  h.record(16.0);  // == 2^max_exp: first out-of-range value
  h.record(1e12);
  EXPECT_EQ(h.bucket_count(h.num_buckets() - 1), 2u);
  // max stays exact even though both samples share the overflow bucket.
  EXPECT_DOUBLE_EQ(h.max(), 1e12);
  EXPECT_TRUE(std::isinf(h.bucket_upper(h.num_buckets() - 1)));
}

TEST(Histogram, BucketUppersAreStrictlyIncreasing) {
  const Histogram h;
  for (std::size_t i = 0; i + 1 < h.num_buckets(); ++i) {
    EXPECT_LT(h.bucket_upper(i), h.bucket_upper(i + 1)) << "bucket " << i;
  }
}

TEST(Histogram, InRangeValuesLandBelowTheirBucketUpper) {
  for (const double v : {1.0, 1.5, 2.0, 3.1415, 1000.0, 1e-5}) {
    Histogram single;
    single.record(v);
    std::size_t bucket = 0;
    for (std::size_t i = 0; i < single.num_buckets(); ++i) {
      if (single.bucket_count(i) != 0) bucket = i;
    }
    EXPECT_LE(v, single.bucket_upper(bucket)) << "v=" << v;
    // Buckets are [lower, upper): a value on the boundary (1.0, 2.0, ...)
    // equals the previous bucket's exclusive upper.
    if (bucket > 0) EXPECT_GE(v, single.bucket_upper(bucket - 1)) << "v=" << v;
  }
}

TEST(Histogram, MergeOfDisjointRangesKeepsBothTails) {
  Histogram low, high;
  for (int i = 1; i <= 100; ++i) low.record(static_cast<double>(i));
  for (int i = 1; i <= 100; ++i) high.record(1e6 + static_cast<double>(i));
  low.merge(high);
  EXPECT_EQ(low.count(), 200u);
  EXPECT_DOUBLE_EQ(low.min(), 1.0);
  EXPECT_DOUBLE_EQ(low.max(), 1e6 + 100.0);
  // The lower half of the merged mass is the 1..100 range, the upper half
  // the 1e6.. range; quantiles must land in the right tail.
  EXPECT_LE(low.quantile(0.25), 100.0 * (1.0 + 1.0 / 32.0));
  EXPECT_GE(low.quantile(0.75), 1e6);
}

TEST(Histogram, MergeSumsCountsBucketwise) {
  Histogram a, b;
  a.record(2.0);
  a.record(2.0);
  b.record(2.0);
  a.merge(b);
  std::uint64_t occupied = 0;
  for (std::size_t i = 0; i < a.num_buckets(); ++i) {
    if (a.bucket_count(i) != 0) {
      EXPECT_EQ(a.bucket_count(i), 3u);
      ++occupied;
    }
  }
  EXPECT_EQ(occupied, 1u);
}

/// Deterministic xorshift so the cross-check needs no seed plumbing.
std::uint64_t next_rand(std::uint64_t* state) {
  std::uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return *state = x;
}

TEST(Histogram, QuantileWithinDocumentedErrorBound) {
  // Log-uniform samples across six decades; the documented bound says the
  // reported quantile r and the exact order statistic x satisfy
  // x <= r <= x * (1 + 2^-sub_bits).
  Histogram h;  // default config: sub_bits = 5
  std::vector<double> values;
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 10000; ++i) {
    const double u =
        static_cast<double>(next_rand(&state) >> 11) / 9007199254740992.0;
    values.push_back(std::pow(10.0, -3.0 + 6.0 * u));
    h.record(values.back());
  }
  std::sort(values.begin(), values.end());
  const double slack = 1.0 + 1.0 / 32.0;
  for (const double q : {0.01, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const auto rank = static_cast<std::size_t>(std::max<double>(
        1.0, std::ceil(q * static_cast<double>(values.size()))));
    const double exact = values[rank - 1];
    const double reported = h.quantile(q);
    EXPECT_GE(reported, exact) << "q=" << q;
    EXPECT_LE(reported, exact * slack) << "q=" << q;
  }
}

TEST(MetricsRegistry, FindOrCreateAndStableReferences) {
  MetricsRegistry registry;
  double& tasks = registry.counter("tasks");
  tasks += 5.0;
  // Creating more entries must not invalidate the first reference.
  for (int i = 0; i < 100; ++i) {
    (void)registry.counter("c" + std::to_string(i));
  }
  tasks += 1.0;
  ASSERT_NE(registry.find_counter("tasks"), nullptr);
  EXPECT_DOUBLE_EQ(*registry.find_counter("tasks"), 6.0);
  EXPECT_EQ(registry.find_counter("absent"), nullptr);
  EXPECT_EQ(registry.find_gauge("tasks"), nullptr);  // families are separate
}

TEST(MetricsRegistry, MergeSemanticsPerFamily) {
  MetricsRegistry a, b;
  a.counter("n") = 2.0;
  b.counter("n") = 3.0;
  a.gauge("peak") = 7.0;
  b.gauge("peak") = 5.0;
  a.histogram("wait").record(1.0);
  b.histogram("wait").record(2.0);
  b.histogram("only_b").record(4.0);

  a.merge(b);
  EXPECT_DOUBLE_EQ(*a.find_counter("n"), 5.0);         // counters add
  EXPECT_DOUBLE_EQ(*a.find_gauge("peak"), 7.0);        // gauges keep the max
  EXPECT_EQ(a.find_histogram("wait")->count(), 2u);    // histograms merge
  ASSERT_NE(a.find_histogram("only_b"), nullptr);      // created on demand
  EXPECT_EQ(a.find_histogram("only_b")->count(), 1u);
}

TEST(MetricsRegistry, InsertionOrderIsPreserved) {
  MetricsRegistry registry;
  (void)registry.counter("zebra");
  (void)registry.counter("alpha");
  ASSERT_EQ(registry.counters().size(), 2u);
  EXPECT_EQ(registry.counters()[0].name, "zebra");
  EXPECT_EQ(registry.counters()[1].name, "alpha");
}

}  // namespace
}  // namespace hp::obs
