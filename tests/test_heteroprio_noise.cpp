// HeteroPrio with imperfect duration estimates: decisions use the estimated
// times, the clock uses the actual times (HeteroPrioOptions::actual_times).

#include <gtest/gtest.h>

#include "core/heteroprio.hpp"
#include "core/heteroprio_dag.hpp"
#include "dag/ranking.hpp"
#include "linalg/cholesky.hpp"
#include "model/generators.hpp"
#include "sched/validate.hpp"
#include "util/rng.hpp"

namespace hp {
namespace {

std::vector<Task> perturb(std::span<const Task> tasks, double sigma,
                          std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Task> actuals(tasks.begin(), tasks.end());
  for (Task& t : actuals) {
    t.cpu_time *= rng.lognormal(0.0, sigma);
    t.gpu_time *= rng.lognormal(0.0, sigma);
  }
  return actuals;
}

TEST(HeteroPrioNoise, EmptyActualsMeansExactEstimates) {
  util::Rng rng(1);
  const Instance inst = uniform_instance({.num_tasks = 20}, rng);
  const Platform platform(2, 1);
  const Schedule base = heteroprio(inst.tasks(), platform);
  HeteroPrioOptions options;
  options.actual_times = inst.tasks();
  const Schedule same = heteroprio(inst.tasks(), platform, options);
  EXPECT_DOUBLE_EQ(base.makespan(), same.makespan());
}

TEST(HeteroPrioNoise, ScheduleValidAgainstActualDurations) {
  util::Rng rng(2);
  const Instance inst = uniform_instance({.num_tasks = 30}, rng);
  const auto actuals = perturb(inst.tasks(), 0.4, 7);
  const Platform platform(3, 2);
  HeteroPrioOptions options;
  options.actual_times = actuals;
  const Schedule s = heteroprio(inst.tasks(), platform, options);
  const auto check = check_schedule(s, actuals, platform);
  EXPECT_TRUE(check.ok) << check.message;
}

TEST(HeteroPrioNoise, DagScheduleValidAndPrecedenceHolds) {
  TaskGraph g = cholesky_dag(8);
  assign_priorities(g, RankScheme::kMin);
  const auto actuals = perturb(g.tasks(), 0.3, 5);
  const Platform platform(4, 2);
  HeteroPrioOptions options;
  options.actual_times = actuals;
  const Schedule s = heteroprio_dag(g, platform, options);
  // Durations match the actuals...
  const auto duration_check = check_schedule(s, actuals, platform);
  EXPECT_TRUE(duration_check.ok) << duration_check.message;
  // ...and dependencies are still respected.
  for (std::size_t i = 0; i < g.size(); ++i) {
    for (TaskId pred : g.predecessors(static_cast<TaskId>(i))) {
      EXPECT_GE(s.placement(static_cast<TaskId>(i)).start,
                s.placement(pred).end - 1e-9);
    }
  }
}

TEST(HeteroPrioNoise, MildNoiseDegradesGracefully) {
  // The dynamic scheduler should absorb moderate noise: the noisy makespan
  // stays within a small factor of the clairvoyant one (HeteroPrio run
  // directly on the actual times).
  TaskGraph g = cholesky_dag(12);
  assign_priorities(g, RankScheme::kMin);
  const Platform platform(4, 2);
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto actuals = perturb(g.tasks(), 0.15, seed);
    HeteroPrioOptions noisy_options;
    noisy_options.actual_times = actuals;
    const double noisy = heteroprio_dag(g, platform, noisy_options).makespan();

    TaskGraph clairvoyant = cholesky_dag(12);
    for (std::size_t i = 0; i < clairvoyant.size(); ++i) {
      clairvoyant.task(static_cast<TaskId>(i)).cpu_time = actuals[i].cpu_time;
      clairvoyant.task(static_cast<TaskId>(i)).gpu_time = actuals[i].gpu_time;
    }
    clairvoyant.finalize();
    assign_priorities(clairvoyant, RankScheme::kMin);
    const double exact = heteroprio_dag(clairvoyant, platform).makespan();

    EXPECT_LE(noisy, 1.5 * exact) << "seed " << seed;
    EXPECT_GE(noisy, 0.6 * exact) << "seed " << seed;
  }
}

TEST(HeteroPrioNoise, SpoliationStillOneDirectional) {
  // Lemma 5's invariant is about the scheduler's decisions, which use the
  // estimates; it must survive noisy execution.
  util::Rng rng(3);
  for (int rep = 0; rep < 10; ++rep) {
    const Instance inst = bimodal_instance(14, 0.5, rng);
    const auto actuals = perturb(inst.tasks(), 0.3, 100 + rep);
    const Platform platform(2, 2);
    HeteroPrioOptions options;
    options.actual_times = actuals;
    const Schedule s = heteroprio(inst.tasks(), platform, options);

    bool spoliated_to[2] = {false, false};
    bool aborted_on[2] = {false, false};
    for (const AbortedSegment& a : s.aborted()) {
      aborted_on[static_cast<int>(platform.type_of(a.worker))] = true;
      spoliated_to[static_cast<int>(
          platform.type_of(s.placement(a.task).worker))] = true;
    }
    for (int r = 0; r < 2; ++r) {
      EXPECT_FALSE(spoliated_to[r] && aborted_on[r]) << "rep " << rep;
    }
  }
}

}  // namespace
}  // namespace hp
