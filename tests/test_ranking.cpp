#include "dag/ranking.hpp"

#include <gtest/gtest.h>

namespace hp {
namespace {

TaskGraph chain3() {
  TaskGraph g("chain");
  const TaskId a = g.add_task(Task{4.0, 2.0});  // avg 3, min 2
  const TaskId b = g.add_task(Task{2.0, 6.0});  // avg 4, min 2
  const TaskId c = g.add_task(Task{1.0, 1.0});  // avg 1, min 1
  g.add_edge(a, b);
  g.add_edge(b, c);
  g.finalize();
  return g;
}

TEST(Ranking, WeightSchemes) {
  const Task t{4.0, 2.0};
  EXPECT_DOUBLE_EQ(rank_weight(t, RankScheme::kAvg), 3.0);
  EXPECT_DOUBLE_EQ(rank_weight(t, RankScheme::kMin), 2.0);
  EXPECT_DOUBLE_EQ(rank_weight(t, RankScheme::kFifo), 0.0);
}

TEST(Ranking, BottomLevelsOnChainAvg) {
  const TaskGraph g = chain3();
  const auto bl = bottom_levels(g, RankScheme::kAvg);
  EXPECT_DOUBLE_EQ(bl[2], 1.0);
  EXPECT_DOUBLE_EQ(bl[1], 5.0);
  EXPECT_DOUBLE_EQ(bl[0], 8.0);
}

TEST(Ranking, BottomLevelsOnChainMin) {
  const TaskGraph g = chain3();
  const auto bl = bottom_levels(g, RankScheme::kMin);
  EXPECT_DOUBLE_EQ(bl[2], 1.0);
  EXPECT_DOUBLE_EQ(bl[1], 3.0);
  EXPECT_DOUBLE_EQ(bl[0], 5.0);
}

TEST(Ranking, BottomLevelsTakeMaxOverBranches) {
  TaskGraph g("fork");
  const TaskId a = g.add_task(Task{1.0, 1.0});
  const TaskId b = g.add_task(Task{10.0, 10.0});
  const TaskId c = g.add_task(Task{2.0, 2.0});
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.finalize();
  const auto bl = bottom_levels(g, RankScheme::kAvg);
  EXPECT_DOUBLE_EQ(bl[static_cast<std::size_t>(a)], 11.0);  // via b
}

TEST(Ranking, CriticalPathOfChain) {
  const TaskGraph g = chain3();
  EXPECT_DOUBLE_EQ(critical_path(g, RankScheme::kMin), 5.0);
  EXPECT_DOUBLE_EQ(critical_path(g, RankScheme::kAvg), 8.0);
}

TEST(Ranking, CriticalPathPicksLongestEntry) {
  TaskGraph g("two-chains");
  const TaskId a = g.add_task(Task{1.0, 1.0});
  const TaskId b = g.add_task(Task{1.0, 1.0});
  const TaskId c = g.add_task(Task{5.0, 5.0});
  g.add_edge(a, b);
  g.finalize();
  (void)c;
  EXPECT_DOUBLE_EQ(critical_path(g, RankScheme::kMin), 5.0);
}

TEST(Ranking, AssignPrioritiesWritesBottomLevels) {
  TaskGraph g = chain3();
  assign_priorities(g, RankScheme::kAvg);
  EXPECT_DOUBLE_EQ(g.task(0).priority, 8.0);
  EXPECT_DOUBLE_EQ(g.task(2).priority, 1.0);
}

TEST(Ranking, AssignPrioritiesFifoZeroes) {
  TaskGraph g = chain3();
  assign_priorities(g, RankScheme::kAvg);
  assign_priorities(g, RankScheme::kFifo);
  EXPECT_DOUBLE_EQ(g.task(0).priority, 0.0);
  EXPECT_DOUBLE_EQ(g.task(1).priority, 0.0);
}

TEST(Ranking, SchemeNames) {
  EXPECT_STREQ(rank_scheme_name(RankScheme::kAvg), "avg");
  EXPECT_STREQ(rank_scheme_name(RankScheme::kMin), "min");
  EXPECT_STREQ(rank_scheme_name(RankScheme::kFifo), "fifo");
}

TEST(Ranking, PriorityOfEntryDominatesInDag) {
  // In any DAG with positive weights, an entry task's bottom level strictly
  // exceeds each of its successors' (HEFT's rank order is topological).
  const TaskGraph g = chain3();
  for (RankScheme scheme : {RankScheme::kAvg, RankScheme::kMin}) {
    const auto bl = bottom_levels(g, scheme);
    for (std::size_t i = 0; i < g.size(); ++i) {
      for (TaskId succ : g.successors(static_cast<TaskId>(i))) {
        EXPECT_GT(bl[i], bl[static_cast<std::size_t>(succ)]);
      }
    }
  }
}

}  // namespace
}  // namespace hp
