// Online runtime under genuinely staggered arrivals: no task may start
// before it arrives, the resulting schedule must stay valid, and the
// arrival-plan data layer (generation, text round-trip) must be exact.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "core/heteroprio.hpp"
#include "dag/ranking.hpp"
#include "linalg/cholesky.hpp"
#include "model/generators.hpp"
#include "obs/recorder.hpp"
#include "online/arrival.hpp"
#include "online/runtime.hpp"
#include "sched/validate.hpp"
#include "util/rng.hpp"

namespace hp {
namespace {

constexpr ScheduleCheckOptions kOnlineRun{
    .tol = 1e-9, .require_complete = false, .exact_durations = false};

std::vector<Task> mixed_tasks(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  const Instance inst = bimodal_instance(n, 0.5, rng);
  return {inst.tasks().begin(), inst.tasks().end()};
}

TEST(ArrivalPlan, GenerateIsDeterministicAndOrdered) {
  const std::vector<Task> tasks = mixed_tasks(50, 1);
  const online::ArrivalSpec spec{.rate = 1.5, .deadline_factor = 4.0,
                                 .seed = 42};
  const online::ArrivalPlan a = online::ArrivalPlan::generate(spec, tasks);
  const online::ArrivalPlan b = online::ArrivalPlan::generate(spec, tasks);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), tasks.size());
  EXPECT_FALSE(a.all_at_origin());
  EXPECT_TRUE(a.has_deadlines());
  // Poisson arrivals are cumulative sums: non-decreasing in id order.
  EXPECT_TRUE(std::is_sorted(a.arrivals().begin(), a.arrivals().end()));
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const double best = std::min(tasks[i].cpu_time, tasks[i].gpu_time);
    EXPECT_DOUBLE_EQ(a.rel_deadlines()[i], 4.0 * best) << i;
  }
}

TEST(ArrivalPlan, ZeroRateMeansAllAtOrigin) {
  const std::vector<Task> tasks = mixed_tasks(10, 2);
  const online::ArrivalPlan plan =
      online::ArrivalPlan::generate({.rate = 0.0, .seed = 9}, tasks);
  EXPECT_TRUE(plan.all_at_origin());
  EXPECT_FALSE(plan.has_deadlines());
}

TEST(ArrivalPlan, TextRoundTripIsExact) {
  const std::vector<Task> tasks = mixed_tasks(24, 3);
  const online::ArrivalPlan plan = online::ArrivalPlan::generate(
      {.rate = 0.8, .deadline_factor = 2.5, .seed = 7}, tasks);
  online::ArrivalPlan back;
  std::string error;
  ASSERT_TRUE(online::ArrivalPlan::from_text(plan.to_text(), &back, &error))
      << error;
  EXPECT_EQ(plan, back);  // bitwise: max_digits10 serialization
}

TEST(ArrivalPlan, FromTextRejectsMalformedDocuments) {
  online::ArrivalPlan out;
  std::string error;
  EXPECT_FALSE(online::ArrivalPlan::from_text("", &out, &error));
  EXPECT_FALSE(online::ArrivalPlan::from_text("faultplan v1\n", &out, &error));
  EXPECT_NE(error.find("header"), std::string::npos);
  EXPECT_FALSE(online::ArrivalPlan::from_text(
      "arrivals v1\ntasks 2\narrive 5 1.0 0\n", &out, &error));
  EXPECT_NE(error.find("out of range"), std::string::npos);
  EXPECT_FALSE(online::ArrivalPlan::from_text(
      "arrivals v1\ntasks 2\narrive 0 -1.0 0\n", &out, &error));
  EXPECT_NE(error.find("negative"), std::string::npos);
  EXPECT_FALSE(online::ArrivalPlan::from_text(
      "arrivals v1\ntasks 2\nbogus 0\n", &out, &error));
  EXPECT_NE(error.find("unknown directive"), std::string::npos);
}

TEST(OnlineRuntime, NoTaskStartsBeforeItsArrival) {
  const std::vector<Task> tasks = mixed_tasks(80, 11);
  const Platform platform(3, 2);
  const online::ArrivalPlan plan =
      online::ArrivalPlan::generate({.rate = 2.0, .seed = 4}, tasks);

  online::OnlineOptions options;
  options.arrivals = &plan;
  online::OnlineStats stats;
  const Schedule s = online::online_run(tasks, platform, options, &stats);

  const auto check = check_schedule(s, tasks, platform, kOnlineRun);
  ASSERT_TRUE(check.ok) << check.message;
  EXPECT_TRUE(s.complete());
  EXPECT_EQ(stats.tasks_arrived, tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_GE(s.placements()[i].start,
              plan.arrival(static_cast<TaskId>(i)) - 1e-12)
        << "task " << i << " started before it arrived";
  }
  for (const AbortedSegment& seg : s.aborted()) {
    EXPECT_GE(seg.start, plan.arrival(seg.task) - 1e-12);
  }
}

TEST(OnlineRuntime, DagReadinessWaitsForArrivalAndPredecessors) {
  TaskGraph g = cholesky_dag(6);
  assign_priorities(g, RankScheme::kMin);
  const Platform platform(2, 2);
  const online::ArrivalPlan plan =
      online::ArrivalPlan::generate({.rate = 1.0, .seed = 8}, g.tasks());

  online::OnlineOptions options;
  options.arrivals = &plan;
  online::OnlineStats stats;
  const Schedule s = online::online_run_dag(g, platform, options, &stats);

  const auto check = check_schedule(s, g, platform, kOnlineRun);
  ASSERT_TRUE(check.ok) << check.message;  // also enforces precedence
  EXPECT_TRUE(s.complete());
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_GE(s.placements()[i].start,
              plan.arrival(static_cast<TaskId>(i)) - 1e-12)
        << i;
  }
}

// Asserts on the recorded event stream, so -DHP_OBS_OFF (which compiles
// the probes to nothing) removes the subject under test.
#ifndef HP_OBS_OFF
TEST(OnlineRuntime, ArrivalEventsAndReplansAreObservable) {
  const std::vector<Task> tasks = mixed_tasks(30, 21);
  const Platform platform(2, 1);
  const online::ArrivalPlan plan =
      online::ArrivalPlan::generate({.rate = 0.7, .seed = 6}, tasks);

  obs::EventRecorder recorder;
  online::OnlineOptions options;
  options.arrivals = &plan;
  options.sink = &recorder;
  online::OnlineStats stats;
  (void)online::online_run(tasks, platform, options, &stats);

  EXPECT_EQ(recorder.count(obs::EventKind::kTaskArrival), tasks.size());
  EXPECT_EQ(recorder.count(obs::EventKind::kReplan), stats.replans);
  EXPECT_GT(stats.replans, 1u);  // staggered arrivals re-plan incrementally
  // Replan events carry the number of frontier inserts; at least one insert
  // per arrival overall.
  double inserts = 0;
  for (const obs::Event& e : recorder.events()) {
    if (e.kind == obs::EventKind::kReplan) inserts += e.value;
  }
  EXPECT_GE(inserts, static_cast<double>(tasks.size()));
}
#endif  // HP_OBS_OFF

TEST(OnlineRuntime, LateSingleArrivalRunsAlone) {
  // One task arriving at t=5 on an otherwise empty system: it must start
  // exactly at its arrival.
  const std::vector<Task> tasks{Task{2.0, 1.0}};
  const Platform platform(1, 1);
  online::ArrivalPlan plan;
  plan.set(0, 5.0);

  online::OnlineOptions options;
  options.arrivals = &plan;
  const Schedule s = online::online_run(tasks, platform, options);
  ASSERT_TRUE(s.placements()[0].placed());
  EXPECT_DOUBLE_EQ(s.placements()[0].start, 5.0);
  EXPECT_DOUBLE_EQ(s.makespan(), 6.0);  // GPU takes it: 5 + 1
}

TEST(OnlineRuntime, EmptyInstanceIsANoOp) {
  const std::vector<Task> tasks;
  const Platform platform(1, 1);
  online::OnlineStats stats;
  const Schedule s = online::online_run(tasks, platform, {}, &stats);
  EXPECT_EQ(s.num_tasks(), 0u);
  EXPECT_EQ(stats.tasks_arrived, 0u);
  EXPECT_EQ(stats.final_mode, online::Mode::kHealthy);
}

TEST(OnlineRuntime, StragglerRespawnRescuesAnOverdueAttempt) {
  // Estimates say 1.0 but the actual duration is 50: with a straggler
  // factor of 2 and ticks every 1.0, the runtime aborts the overdue attempt
  // and re-runs it. (The rescue re-runs with the same actual duration here,
  // so the run only ends thanks to the respawn budget capping further
  // aborts at one.)
  const std::vector<Task> estimates{Task{1.0, 1.0}};
  const std::vector<Task> actuals{Task{50.0, 50.0}};
  const Platform platform(1, 0);

  online::OnlineOptions options;
  options.actual_times = actuals;
  options.reschedule_period = 1.0;
  options.straggler_factor = 2.0;
  options.respawn_budget = 1;
  online::OnlineStats stats;
  const Schedule s = online::online_run(estimates, platform, options, &stats);

  EXPECT_EQ(stats.recovery.straggler_respawns, 1);
  ASSERT_EQ(s.aborted().size(), 1u);
  EXPECT_GT(s.aborted()[0].abort_time, 2.0 - 1e-9);  // overdue threshold
  ASSERT_TRUE(s.placements()[0].placed());
  EXPECT_EQ(stats.final_mode, online::Mode::kDegraded);  // respawn = incident
  EXPECT_GT(stats.reschedule_ticks, 0u);
}

}  // namespace
}  // namespace hp
