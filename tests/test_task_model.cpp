#include "model/task.hpp"

#include <gtest/gtest.h>

#include <string>

namespace hp {
namespace {

TEST(TaskModel, AccelerationFactor) {
  const Task t{10.0, 2.5, 0.0, KernelKind::kGeneric};
  EXPECT_DOUBLE_EQ(t.accel(), 4.0);
}

TEST(TaskModel, AccelBelowOneForCpuFriendlyTask) {
  const Task t{1.0, 4.0, 0.0, KernelKind::kGeneric};
  EXPECT_DOUBLE_EQ(t.accel(), 0.25);
}

TEST(TaskModel, MinMaxTime) {
  const Task t{3.0, 7.0, 0.0, KernelKind::kGeneric};
  EXPECT_DOUBLE_EQ(t.min_time(), 3.0);
  EXPECT_DOUBLE_EQ(t.max_time(), 7.0);
  const Task u{7.0, 3.0, 0.0, KernelKind::kGeneric};
  EXPECT_DOUBLE_EQ(u.min_time(), 3.0);
  EXPECT_DOUBLE_EQ(u.max_time(), 7.0);
}

TEST(TaskModel, KernelNamesAreUniqueAndNonEmpty) {
  const KernelKind kinds[] = {
      KernelKind::kGeneric, KernelKind::kPotrf, KernelKind::kTrsm,
      KernelKind::kSyrk,    KernelKind::kGemm,  KernelKind::kGeqrt,
      KernelKind::kOrmqr,   KernelKind::kTsqrt, KernelKind::kTsmqr,
      KernelKind::kGetrf,   KernelKind::kGessm, KernelKind::kTstrf,
      KernelKind::kSsssm};
  std::set<std::string> names;
  for (KernelKind k : kinds) {
    const std::string name = kernel_name(k);
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
}

TEST(TaskModel, CholeskyKernelNames) {
  EXPECT_STREQ(kernel_name(KernelKind::kPotrf), "DPOTRF");
  EXPECT_STREQ(kernel_name(KernelKind::kTrsm), "DTRSM");
  EXPECT_STREQ(kernel_name(KernelKind::kSyrk), "DSYRK");
  EXPECT_STREQ(kernel_name(KernelKind::kGemm), "DGEMM");
}

}  // namespace
}  // namespace hp
