// Packed monotone keys (model/task_soa.hpp) and the range-scaled key sort
// (util/key_sort.hpp): ordered_key must be a strict order-embedding of the
// non-NaN doubles into u64, the batched SIMD pack must match the scalar
// reference bitwise, and sort_key_id/sort_key2_id must order exactly like
// the comparator-based std::sort they replaced.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "model/task_soa.hpp"
#include "util/arena.hpp"
#include "util/key_sort.hpp"
#include "util/rng.hpp"

namespace hp {
namespace {

TEST(OrderedKey, StrictlyMonotoneOverSpecialValues) {
  const double inf = std::numeric_limits<double>::infinity();
  const double denorm = std::numeric_limits<double>::denorm_min();
  // Strictly increasing as doubles; keys must strictly increase too.
  const double ascending[] = {-inf,    -1e308, -1.0, -1e-12, -denorm,
                              0.0,     denorm, 1e-12, 1.0,   1e308,
                              inf};
  for (std::size_t i = 0; i + 1 < std::size(ascending); ++i) {
    EXPECT_LT(soa::ordered_key(ascending[i]), soa::ordered_key(ascending[i + 1]))
        << ascending[i] << " vs " << ascending[i + 1];
    // descending_key flips every comparison.
    EXPECT_GT(soa::descending_key(ascending[i]),
              soa::descending_key(ascending[i + 1]));
  }
}

TEST(OrderedKey, SignedZerosCollapse) {
  // -0.0 == 0.0 as doubles, so the keys must be equal (a sort keyed on
  // ordered_key otherwise diverges from a comparator-based sort).
  EXPECT_EQ(soa::ordered_key(-0.0), soa::ordered_key(0.0));
}

TEST(OrderedKey, AgreesWithDoubleComparisonOnRandomValues) {
  util::Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const double a = rng.uniform(-1e6, 1e6);
    const double b = rng.uniform(-1e6, 1e6);
    EXPECT_EQ(a < b, soa::ordered_key(a) < soa::ordered_key(b));
  }
}

TEST(PackKeys, SimdMatchesScalarAcrossLengths) {
  util::Rng rng(11);
  // Lengths straddling the vector width and its remainders.
  for (const std::size_t n : {0u, 1u, 2u, 3u, 4u, 7u, 8u, 15u, 64u, 1000u}) {
    std::vector<double> accel(n);
    for (auto& a : accel) a = rng.uniform(0.01, 50.0);
    if (n > 2) accel[n / 2] = 1.0;  // the rho == 1 boundary value
    std::vector<std::uint64_t> simd(n), scalar(n);
    soa::pack_descending_keys(accel, simd);
    soa::pack_descending_keys_scalar(accel, scalar);
    EXPECT_EQ(simd, scalar) << "n=" << n;
  }
}

void expect_sorted_like_comparator(std::vector<util::KeyId> items) {
  std::vector<util::KeyId> want = items;
  std::sort(want.begin(), want.end(),
            [](const util::KeyId& a, const util::KeyId& b) {
              return a.key != b.key ? a.key < b.key : a.id < b.id;
            });
  util::Arena& arena = util::scratch_arena();
  const util::ArenaScope scope(arena);
  util::sort_key_id(items, arena);
  ASSERT_EQ(items.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(items[i].key, want[i].key) << "at " << i;
    EXPECT_EQ(items[i].id, want[i].id) << "at " << i;
  }
}

TEST(KeySort, MatchesStdSortOnRandomKeys) {
  util::Rng rng(3);
  // Sizes covering the insertion-sort, small-sort and bucket paths.
  for (const std::size_t n : {0u, 1u, 2u, 39u, 95u, 96u, 97u, 4096u}) {
    std::vector<util::KeyId> items(n);
    for (std::size_t i = 0; i < n; ++i) {
      items[i] = util::KeyId{rng(), static_cast<std::uint32_t>(i)};
    }
    expect_sorted_like_comparator(std::move(items));
  }
}

TEST(KeySort, ManyDuplicatesKeepIdOrder) {
  util::Rng rng(5);
  std::vector<util::KeyId> items(3000);
  for (std::size_t i = 0; i < items.size(); ++i) {
    // Only 4 distinct keys: the id tie-break carries the order.
    items[i] =
        util::KeyId{rng() % 4, static_cast<std::uint32_t>(i * 31 % 997)};
  }
  expect_sorted_like_comparator(std::move(items));
}

TEST(KeySort, AllEqualAndNarrowRanges) {
  // lo == hi short-circuits the bucket scaling; narrow ranges stress it.
  std::vector<util::KeyId> equal(500, util::KeyId{42, 0});
  for (std::size_t i = 0; i < equal.size(); ++i) {
    equal[i].id = static_cast<std::uint32_t>(499 - i);
  }
  expect_sorted_like_comparator(std::move(equal));

  std::vector<util::KeyId> narrow(500);
  for (std::size_t i = 0; i < narrow.size(); ++i) {
    narrow[i] = util::KeyId{(1ull << 60) + (i * 7 % 11),
                            static_cast<std::uint32_t>(i)};
  }
  expect_sorted_like_comparator(std::move(narrow));
}

TEST(KeySort, PackedPriorityKeysSortTasksLikeComparator) {
  // End-to-end: the packed double keys occupy few top-bit patterns (the
  // motivating case for range-scaled buckets); the sorted order must still
  // equal the comparator order on the underlying doubles.
  util::Rng rng(13);
  std::vector<double> pri(2000);
  for (auto& p : pri) p = rng.uniform(0.0, 100.0);
  std::vector<util::KeyId> items(pri.size());
  for (std::size_t i = 0; i < pri.size(); ++i) {
    items[i] =
        util::KeyId{soa::descending_key(pri[i]), static_cast<std::uint32_t>(i)};
  }
  util::Arena& arena = util::scratch_arena();
  const util::ArenaScope scope(arena);
  util::sort_key_id(items, arena);
  for (std::size_t i = 0; i + 1 < items.size(); ++i) {
    const double a = pri[items[i].id];
    const double b = pri[items[i + 1].id];
    EXPECT_TRUE(a > b || (a == b && items[i].id < items[i + 1].id))
        << "at " << i;
  }
}

TEST(KeySort, TwoKeySortMatchesLexicographicComparator) {
  util::Rng rng(17);
  for (const std::size_t n : {0u, 1u, 50u, 97u, 2048u}) {
    std::vector<util::KeyId2> items(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Few distinct primary keys force the secondary key to matter.
      items[i] = util::KeyId2{rng() % 8, rng() % 16,
                              static_cast<std::uint32_t>(i)};
    }
    std::vector<util::KeyId2> want = items;
    std::sort(want.begin(), want.end(),
              [](const util::KeyId2& a, const util::KeyId2& b) {
                if (a.k0 != b.k0) return a.k0 < b.k0;
                if (a.k1 != b.k1) return a.k1 < b.k1;
                return a.id < b.id;
              });
    util::Arena& arena = util::scratch_arena();
    const util::ArenaScope scope(arena);
    util::sort_key2_id(items, arena);
    ASSERT_EQ(items.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(items[i].k0, want[i].k0) << "n=" << n << " at " << i;
      EXPECT_EQ(items[i].k1, want[i].k1) << "n=" << n << " at " << i;
      EXPECT_EQ(items[i].id, want[i].id) << "n=" << n << " at " << i;
    }
  }
}

}  // namespace
}  // namespace hp
