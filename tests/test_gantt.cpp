#include "sched/gantt.hpp"

#include <gtest/gtest.h>

namespace hp {
namespace {

TEST(Gantt, RendersOneRowPerWorker) {
  const Platform platform(2, 1);
  Schedule s(2);
  s.place(0, 0, 0.0, 2.0);
  s.place(1, 2, 0.0, 1.0);
  const std::string out = render_gantt(s, platform);
  EXPECT_NE(out.find("CPU#0"), std::string::npos);
  EXPECT_NE(out.find("CPU#1"), std::string::npos);
  EXPECT_NE(out.find("GPU#2"), std::string::npos);
  EXPECT_NE(out.find("makespan = 2"), std::string::npos);
}

TEST(Gantt, EmptyScheduleHandled) {
  const Platform platform(1, 1);
  const Schedule s(0);
  EXPECT_EQ(render_gantt(s, platform), "(empty schedule)\n");
}

TEST(Gantt, AbortedSegmentsRenderedAsDots) {
  const Platform platform(1, 1);
  Schedule s(1);
  s.add_aborted(0, 0, 0.0, 1.0);
  s.place(0, 1, 1.0, 2.0);
  const std::string with = render_gantt(s, platform, {.width = 40, .show_aborted = true});
  EXPECT_NE(with.find('.'), std::string::npos);
  const std::string without =
      render_gantt(s, platform, {.width = 40, .show_aborted = false});
  EXPECT_EQ(without.find('.'), std::string::npos);
}

TEST(Gantt, TaskLettersAppear) {
  const Platform platform(1, 0);
  Schedule s(2);
  s.place(0, 0, 0.0, 1.0);  // letter 'a'
  s.place(1, 0, 1.0, 2.0);  // letter 'b'
  const std::string out = render_gantt(s, platform, {.width = 20});
  EXPECT_NE(out.find('a'), std::string::npos);
  EXPECT_NE(out.find('b'), std::string::npos);
}

TEST(Gantt, LetterCyclingKeepsAdjacentTasksDistinct) {
  // Task ids 52 apart collided under the old 52-letter modulus; ids 62
  // apart would collide under a plain 62-glyph modulus. The rotating
  // alphabet keeps both pairs distinct.
  const Platform platform(1, 0);
  for (const int delta : {52, 62}) {
    Schedule s(static_cast<std::size_t>(delta) + 1);
    s.place(0, 0, 0.0, 1.0);
    s.place(static_cast<TaskId>(delta), 0, 1.0, 2.0);
    const std::string out = render_gantt(s, platform, {.width = 20});
    const std::size_t lo = out.find('|');
    const std::size_t hi = out.rfind('|');
    ASSERT_NE(lo, std::string::npos);
    const std::string row = out.substr(lo + 1, hi - lo - 1);
    ASSERT_EQ(row.size(), 20u);
    EXPECT_NE(row[2], row[17]) << "ids 0 and " << delta
                               << " render with the same glyph";
  }
}

}  // namespace
}  // namespace hp
