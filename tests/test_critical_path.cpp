// Critical-path attribution over executed schedules (sched/critical_path.hpp):
// the backward walk must produce a chain of segments tiling [0, makespan]
// exactly, attribute each hand-off to a dependency or worker-occupancy link,
// and aggregate compute/idle time consistently.

#include <gtest/gtest.h>

#include <string>

#include "core/heteroprio.hpp"
#include "core/heteroprio_dag.hpp"
#include "dag/ranking.hpp"
#include "linalg/cholesky.hpp"
#include "obs/counters.hpp"
#include "sched/critical_path.hpp"

namespace hp {
namespace {

constexpr double kEps = 1e-9;

void expect_tiles_makespan(const CriticalPathReport& report) {
  ASSERT_FALSE(report.segments.empty());
  EXPECT_NEAR(report.segments.front().begin, 0.0, kEps);
  EXPECT_NEAR(report.segments.back().end, report.makespan, kEps);
  for (std::size_t i = 0; i + 1 < report.segments.size(); ++i) {
    EXPECT_NEAR(report.segments[i].end, report.segments[i + 1].begin, kEps)
        << "hole between segments " << i << " and " << i + 1;
  }
  EXPECT_NEAR(report.compute_time + report.idle_time, report.makespan,
              kEps * std::max(1.0, report.makespan));
  EXPECT_GE(report.compute_fraction(), 0.0);
  EXPECT_LE(report.compute_fraction(), 1.0 + kEps);
}

TEST(CriticalPath, ChainIsFullyDependencyLinked) {
  // a -> b -> c with no resource contention: the critical path is the chain
  // itself, all compute, every non-anchor link a dependency.
  TaskGraph g("chain");
  const TaskId a = g.add_task(Task{2.0, 4.0});
  const TaskId b = g.add_task(Task{3.0, 6.0});
  const TaskId c = g.add_task(Task{1.0, 2.0});
  g.add_edge(a, b);
  g.add_edge(b, c);
  g.finalize();
  assign_priorities(g, RankScheme::kAvg);

  const Platform platform(4, 0);
  const Schedule schedule = heteroprio_dag(g, platform);
  const CriticalPathReport report =
      build_critical_path(schedule, g.tasks(), platform, &g);

  expect_tiles_makespan(report);
  ASSERT_EQ(report.segments.size(), 3u);
  EXPECT_DOUBLE_EQ(report.compute_fraction(), 1.0);
  EXPECT_EQ(report.idle_time, 0.0);
  EXPECT_EQ(report.dependency_links, 2u);
  EXPECT_EQ(report.worker_links, 0u);
  EXPECT_EQ(report.segments.front().task, a);
  EXPECT_EQ(report.segments.back().task, c);
  EXPECT_EQ(report.segments.back().link, CpLink::kMakespan);
}

TEST(CriticalPath, SerializedWorkerProducesWorkerLinks) {
  // Independent tasks on one CPU: the whole schedule is one busy lane, so
  // every hand-off is a worker link and the path is all compute.
  std::vector<Task> tasks(5);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    tasks[i] = Task{1.0 + static_cast<double>(i), 10.0};
  }
  const Platform platform(1, 0);
  const Schedule schedule = heteroprio(tasks, platform);
  const CriticalPathReport report =
      build_critical_path(schedule, tasks, platform);

  expect_tiles_makespan(report);
  ASSERT_EQ(report.segments.size(), tasks.size());
  EXPECT_DOUBLE_EQ(report.compute_fraction(), 1.0);
  EXPECT_EQ(report.worker_links, tasks.size() - 1);
  EXPECT_EQ(report.dependency_links, 0u);
}

TEST(CriticalPath, CholeskyReportIsConsistent) {
  TaskGraph g = cholesky_dag(8);
  assign_priorities(g, RankScheme::kAvg);
  const Platform platform(4, 2);
  const Schedule schedule = heteroprio_dag(g, platform);
  const CriticalPathReport report =
      build_critical_path(schedule, g.tasks(), platform, &g);

  expect_tiles_makespan(report);
  // Links partition the non-anchor segments.
  std::size_t makespan_links = 0;
  double kind_total = 0.0;
  for (const CpSegment& s : report.segments) {
    if (s.link == CpLink::kMakespan) ++makespan_links;
  }
  for (const double t : report.compute_by_kind) kind_total += t;
  EXPECT_EQ(makespan_links, 1u);
  EXPECT_NEAR(kind_total, report.compute_time,
              kEps * std::max(1.0, report.compute_time));

  // describe() renders the headline numbers.
  const std::string text = describe(report, g.tasks(), platform);
  EXPECT_NE(text.find("critical path"), std::string::npos);
  EXPECT_NE(text.find("compute"), std::string::npos);
}

TEST(CriticalPath, RegistryExportCarriesTheAggregates) {
  TaskGraph g = cholesky_dag(4);
  assign_priorities(g, RankScheme::kAvg);
  const Platform platform(2, 1);
  const Schedule schedule = heteroprio_dag(g, platform);
  const CriticalPathReport report =
      build_critical_path(schedule, g.tasks(), platform, &g);

  obs::CounterRegistry registry;
  add_to_registry(report, registry);
  EXPECT_TRUE(registry.contains("cp_segments"));
  EXPECT_EQ(registry.get("cp_segments"),
            static_cast<double>(report.segments.size()));
  EXPECT_TRUE(registry.contains("cp_compute_fraction"));
  EXPECT_GE(registry.get("cp_compute_fraction"), 0.0);
  EXPECT_LE(registry.get("cp_compute_fraction"), 1.0);
}

TEST(CriticalPath, EmptyScheduleIsEmptyReport) {
  const Platform platform(1, 1);
  const Schedule schedule(0);
  const CriticalPathReport report =
      build_critical_path(schedule, {}, platform);
  EXPECT_TRUE(report.segments.empty());
  EXPECT_EQ(report.makespan, 0.0);
}

}  // namespace
}  // namespace hp
