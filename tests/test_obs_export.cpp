#include "obs/export_chrome.hpp"
#include "obs/export_csv.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/heteroprio.hpp"
#include "core/heteroprio_dag.hpp"
#include "dag/ranking.hpp"
#include "linalg/cholesky.hpp"
#include "obs/recorder.hpp"

namespace hp {
namespace {

using obs::Event;
using obs::EventKind;

// Fig 7-style run: Cholesky DAG on a CPU-heavy platform, which is known to
// spoliate (the GPU grabs CPU-friendly kernels the CPUs then reclaim).
obs::EventRecorder record_cholesky_run(const Platform& platform) {
  TaskGraph graph = cholesky_dag(6);
  assign_priorities(graph, RankScheme::kMin);
  obs::EventRecorder rec;
  HeteroPrioOptions options;
  options.sink = &rec;
  (void)heteroprio_dag(graph, platform, options);
  return rec;
}

TEST(ObsCsv, RoundTripIsExact) {
  const Platform platform(3, 1);
  const obs::EventRecorder rec = record_cholesky_run(platform);
  ASSERT_GT(rec.size(), 0u);
  ASSERT_GT(rec.count(EventKind::kSpoliateCommit), 0u);

  const std::string csv = obs::csv_from_events(rec.events());
  std::vector<Event> parsed;
  std::string error;
  ASSERT_TRUE(obs::events_from_csv(csv, &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), rec.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i], rec.events()[i]) << "event " << i;
  }
  // Emit -> parse -> emit is the identity.
  EXPECT_EQ(obs::csv_from_events(parsed), csv);
}

TEST(ObsCsv, RejectsMalformedDocuments) {
  std::vector<Event> parsed;
  std::string error;
  EXPECT_FALSE(obs::events_from_csv("not,a,header\n", &parsed, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(obs::events_from_csv(
      "time,kind,task,worker,victim,value\n1.0,no-such-kind,0,0,-1,0\n",
      &parsed, &error));
  EXPECT_FALSE(obs::events_from_csv(
      "time,kind,task,worker,victim,value\n1.0,ready,0\n", &parsed, &error));
}

TEST(ObsChromeTrace, CholeskyTraceValidatesWithOneTrackPerWorker) {
  const Platform platform(3, 1);
  TaskGraph graph = cholesky_dag(6);
  assign_priorities(graph, RankScheme::kMin);
  obs::EventRecorder rec;
  HeteroPrioOptions options;
  options.sink = &rec;
  (void)heteroprio_dag(graph, platform, options);
  ASSERT_GT(rec.count(EventKind::kSpoliateCommit), 0u);

  const std::string json =
      obs::chrome_trace_from_events(rec.events(), platform, graph.tasks());
  std::string error;
  EXPECT_TRUE(obs::validate_chrome_trace(json, platform, &error)) << error;
  // Spoliation is visible in the trace, and slices carry kernel names.
  EXPECT_NE(json.find("spoliate-commit"), std::string::npos);
  EXPECT_NE(json.find("ready_queue_depth"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
}

TEST(ObsChromeTrace, ValidatorCatchesMissingTracks) {
  const Platform platform(1, 1);
  const obs::EventRecorder rec = record_cholesky_run(platform);
  const std::string json =
      obs::chrome_trace_from_events(rec.events(), platform);
  std::string error;
  // Valid against the platform it was produced for...
  EXPECT_TRUE(obs::validate_chrome_trace(json, platform, &error)) << error;
  // ...but a larger platform expects thread_name records that are absent.
  EXPECT_FALSE(obs::validate_chrome_trace(json, Platform(4, 2), &error));
  EXPECT_FALSE(error.empty());
}

TEST(ObsChromeTrace, ValidatorRejectsGarbage) {
  std::string error;
  EXPECT_FALSE(obs::validate_chrome_trace("{", std::nullopt, &error));
  EXPECT_FALSE(obs::validate_chrome_trace("{\"notTraceEvents\":[]}",
                                          std::nullopt, &error));
}

TEST(ObsChromeTrace, AbortedSlicesAreMarked) {
  // A spoliated run produces an explicit "(aborted)" slice on the victim.
  const std::vector<Task> tasks{Task{1.0, 10.0}};
  obs::EventRecorder rec;
  HeteroPrioOptions options;
  options.sink = &rec;
  (void)heteroprio(tasks, Platform(1, 1), options);
  ASSERT_EQ(rec.count(EventKind::kAbort), 1u);
  const std::string json =
      obs::chrome_trace_from_events(rec.events(), Platform(1, 1));
  EXPECT_NE(json.find("(aborted)"), std::string::npos);
  std::string error;
  EXPECT_TRUE(obs::validate_chrome_trace(json, Platform(1, 1), &error))
      << error;
}

}  // namespace
}  // namespace hp
