// FaultPlan unit tests: deterministic generation, the piecewise straggler
// clock, pure per-attempt draws, normalization and the .hpf text format.

#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hp::fault {
namespace {

TEST(FaultSpecParse, AcceptsEveryKey) {
  FaultSpec spec;
  std::string error;
  ASSERT_TRUE(parse_spec(
      "crashes=2,stragglers=3,taskfail=0.05,slow=4,retries=3,backoff=0.1,"
      "seed=7,horizon=12.5",
      &spec, &error))
      << error;
  EXPECT_EQ(spec.crashes, 2);
  EXPECT_EQ(spec.stragglers, 3);
  EXPECT_DOUBLE_EQ(spec.task_fail_prob, 0.05);
  EXPECT_DOUBLE_EQ(spec.slowdown_min, 4.0);
  EXPECT_DOUBLE_EQ(spec.slowdown_max, 4.0);
  EXPECT_EQ(spec.max_attempts, 4);  // retries=3 -> first try + 3 retries
  EXPECT_DOUBLE_EQ(spec.retry_backoff, 0.1);
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_DOUBLE_EQ(spec.horizon, 12.5);
}

TEST(FaultSpecParse, MissingKeysKeepDefaults) {
  FaultSpec spec;
  std::string error;
  ASSERT_TRUE(parse_spec("crashes=1", &spec, &error)) << error;
  EXPECT_EQ(spec.crashes, 1);
  EXPECT_EQ(spec.stragglers, 0);
  EXPECT_EQ(spec.max_attempts, 4);
  EXPECT_DOUBLE_EQ(spec.task_fail_prob, 0.0);
}

TEST(FaultSpecParse, RejectsUnknownKeyAndBadValue) {
  FaultSpec spec;
  std::string error;
  EXPECT_FALSE(parse_spec("bogus=1", &spec, &error));
  EXPECT_NE(error.find("bogus"), std::string::npos);
  EXPECT_FALSE(parse_spec("crashes=abc", &spec, &error));
  EXPECT_FALSE(parse_spec("crashes", &spec, &error));
}

TEST(FaultPlan, GenerateIsDeterministic) {
  FaultSpec spec;
  std::string error;
  ASSERT_TRUE(parse_spec("crashes=2,stragglers=3,taskfail=0.1,seed=42",
                         &spec, &error));
  spec.horizon = 10.0;
  const Platform platform(4, 2);
  const FaultPlan a = FaultPlan::generate(spec, platform);
  const FaultPlan b = FaultPlan::generate(spec, platform);
  EXPECT_EQ(a, b);
  spec.seed = 43;
  const FaultPlan c = FaultPlan::generate(spec, platform);
  EXPECT_NE(a, c);
}

TEST(FaultPlan, GenerateRespectsSpec) {
  FaultSpec spec;
  spec.crashes = 3;
  spec.stragglers = 4;
  spec.slowdown_min = 2.0;
  spec.slowdown_max = 6.0;
  spec.horizon = 20.0;
  spec.seed = 5;
  const Platform platform(4, 2);
  const FaultPlan plan = FaultPlan::generate(spec, platform);
  EXPECT_EQ(plan.crashes().size(), 3u);
  for (const CrashEvent& c : plan.crashes()) {
    EXPECT_GE(c.worker, 0);
    EXPECT_LT(c.worker, platform.workers());
    EXPECT_GE(c.time, 0.0);
  }
  // Crashed workers are distinct.
  for (std::size_t i = 0; i < plan.crashes().size(); ++i) {
    for (std::size_t j = i + 1; j < plan.crashes().size(); ++j) {
      EXPECT_NE(plan.crashes()[i].worker, plan.crashes()[j].worker);
    }
  }
  for (const StragglerWindow& w : plan.stragglers()) {
    EXPECT_GE(w.worker, 0);
    EXPECT_LT(w.worker, platform.workers());
    EXPECT_LT(w.begin, w.end);
    EXPECT_GE(w.slowdown, 2.0);
    EXPECT_LE(w.slowdown, 6.0);
  }
}

TEST(FaultPlan, CrashCountNeverExceedsWorkers) {
  FaultSpec spec;
  spec.crashes = 100;
  spec.horizon = 5.0;
  const FaultPlan plan = FaultPlan::generate(spec, Platform(2, 1));
  EXPECT_EQ(plan.crashes().size(), 3u);
}

TEST(FaultPlan, EmptySemantics) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  plan.set_task_faults(0.0, 4, 0.1, 9);  // p = 0 still injects nothing
  EXPECT_TRUE(plan.empty());
  plan.add_crash(0, 1.0);
  EXPECT_FALSE(plan.empty());

  FaultPlan fails_only;
  fails_only.set_task_faults(0.5, 4, 0.0, 9);
  EXPECT_FALSE(fails_only.empty());
}

TEST(FaultPlan, NormalizeKeepsEarliestCrashPerWorker) {
  FaultPlan plan;
  plan.add_crash(1, 5.0);
  plan.add_crash(0, 3.0);
  plan.add_crash(1, 2.0);  // earlier crash of worker 1 wins
  ASSERT_EQ(plan.crashes().size(), 2u);
  EXPECT_EQ(plan.crashes()[0].worker, 1);
  EXPECT_DOUBLE_EQ(plan.crashes()[0].time, 2.0);
  EXPECT_EQ(plan.crashes()[1].worker, 0);
  EXPECT_DOUBLE_EQ(plan.crashes()[1].time, 3.0);
  ASSERT_NE(plan.crash_of(1), nullptr);
  EXPECT_DOUBLE_EQ(plan.crash_of(1)->time, 2.0);
  EXPECT_EQ(plan.crash_of(2), nullptr);
}

TEST(FaultPlan, NormalizeMergesOverlappingWindows) {
  FaultPlan plan;
  plan.add_straggler(0, 1.0, 3.0, 2.0);
  plan.add_straggler(0, 2.0, 5.0, 4.0);  // overlaps: merged, max slowdown
  plan.add_straggler(1, 2.0, 4.0, 3.0);  // other worker: untouched
  plan.add_straggler(0, 7.0, 7.0, 9.0);  // empty window: dropped
  ASSERT_EQ(plan.stragglers().size(), 2u);
  EXPECT_EQ(plan.stragglers()[0].worker, 0);
  EXPECT_DOUBLE_EQ(plan.stragglers()[0].begin, 1.0);
  EXPECT_DOUBLE_EQ(plan.stragglers()[0].end, 5.0);
  EXPECT_DOUBLE_EQ(plan.stragglers()[0].slowdown, 4.0);
  EXPECT_EQ(plan.stragglers()[1].worker, 1);
}

TEST(FaultPlan, FinishTimeWithoutWindowsIsStartPlusDuration) {
  const FaultPlan plan;
  EXPECT_DOUBLE_EQ(plan.finish_time(0, 1.5, 2.5), 4.0);
}

TEST(FaultPlan, FinishTimeStretchesInsideWindow) {
  FaultPlan plan;
  plan.add_straggler(0, 2.0, 4.0, 2.0);
  // 2 work units at speed 1 until t=2, remaining 1 unit at speed 1/2 -> 4.
  EXPECT_DOUBLE_EQ(plan.finish_time(0, 0.0, 3.0), 4.0);
  // Work ending exactly at the window start is not stretched.
  EXPECT_DOUBLE_EQ(plan.finish_time(0, 0.0, 2.0), 2.0);
  // Work starting inside the window: [3,4) holds 0.5 units at speed 1/2,
  // the remaining 0.5 run at full speed after the window closes.
  EXPECT_DOUBLE_EQ(plan.finish_time(0, 3.0, 1.0), 4.5);
  // Other workers are unaffected.
  EXPECT_DOUBLE_EQ(plan.finish_time(1, 0.0, 3.0), 3.0);
}

TEST(FaultPlan, FinishTimeWalksMultipleWindows) {
  FaultPlan plan;
  plan.add_straggler(0, 1.0, 2.0, 2.0);
  plan.add_straggler(0, 3.0, 4.0, 4.0);
  // [0,1): 1 unit; [1,2): 0.5 units; [2,3): 1 unit; [3,4): 0.25 units at
  // speed 1/4; the last 0.25 run at full speed -> finish at 4.25.
  EXPECT_DOUBLE_EQ(plan.finish_time(0, 0.0, 3.0), 4.25);
}

TEST(FaultPlan, AttemptOutcomeIsPureInSeedTaskAttempt) {
  FaultPlan plan;
  plan.set_task_faults(0.5, 4, 0.0, 77);
  const AttemptOutcome first = plan.attempt_outcome(3, 0);
  // Query order and repetition do not change the draw.
  (void)plan.attempt_outcome(9, 2);
  const AttemptOutcome again = plan.attempt_outcome(3, 0);
  EXPECT_EQ(first.fails, again.fails);
  EXPECT_DOUBLE_EQ(first.fail_fraction, again.fail_fraction);
  EXPECT_GE(first.fail_fraction, 0.05);
  EXPECT_LE(first.fail_fraction, 0.95);
}

TEST(FaultPlan, AttemptOutcomeRatesMatchProbability) {
  FaultPlan never;
  never.set_task_faults(0.0, 4, 0.0, 1);
  FaultPlan always;
  always.set_task_faults(1.0, 4, 0.0, 1);
  FaultPlan half;
  half.set_task_faults(0.5, 4, 0.0, 1);
  int failures = 0;
  for (TaskId t = 0; t < 2000; ++t) {
    EXPECT_FALSE(never.attempt_outcome(t, 0).fails);
    EXPECT_TRUE(always.attempt_outcome(t, 0).fails);
    failures += half.attempt_outcome(t, 0).fails;
  }
  EXPECT_NEAR(failures / 2000.0, 0.5, 0.05);
}

TEST(FaultPlan, BackoffDoublesPerFailedAttempt) {
  FaultPlan plan;
  plan.set_task_faults(0.5, 8, 0.1, 1);
  EXPECT_DOUBLE_EQ(plan.backoff_delay(0), 0.0);
  EXPECT_DOUBLE_EQ(plan.backoff_delay(1), 0.1);
  EXPECT_DOUBLE_EQ(plan.backoff_delay(2), 0.2);
  EXPECT_DOUBLE_EQ(plan.backoff_delay(3), 0.4);

  const FaultPlan no_backoff;
  EXPECT_DOUBLE_EQ(no_backoff.backoff_delay(3), 0.0);
}

TEST(FaultPlan, CrashedBeforeCountsPerType) {
  const Platform platform(2, 2);  // workers 0,1 CPU; 2,3 GPU
  FaultPlan plan;
  plan.add_crash(0, 1.0);
  plan.add_crash(2, 2.0);
  plan.add_crash(3, 5.0);
  EXPECT_EQ(plan.crashed_before(0.5, Resource::kCpu, platform), 0);
  EXPECT_EQ(plan.crashed_before(1.0, Resource::kCpu, platform), 1);
  EXPECT_EQ(plan.crashed_before(3.0, Resource::kGpu, platform), 1);
  EXPECT_EQ(plan.crashed_before(10.0, Resource::kGpu, platform), 2);
}

TEST(FaultPlan, TextRoundTrip) {
  FaultPlan plan;
  plan.add_crash(3, 1.25);
  plan.add_crash(0, 0.5);
  plan.add_straggler(1, 2.0, 4.5, 3.0);
  plan.set_task_faults(0.125, 5, 0.0625, 12345);

  const std::string text = plan.to_text();
  EXPECT_NE(text.find("faultplan v1"), std::string::npos);

  FaultPlan parsed;
  std::string error;
  ASSERT_TRUE(FaultPlan::from_text(text, &parsed, &error)) << error;
  EXPECT_EQ(parsed, plan);
}

TEST(FaultPlan, FromTextRejectsMalformedDocuments) {
  FaultPlan parsed;
  std::string error;
  EXPECT_FALSE(FaultPlan::from_text("", &parsed, &error));
  EXPECT_FALSE(FaultPlan::from_text("not a plan\n", &parsed, &error));
  EXPECT_FALSE(
      FaultPlan::from_text("faultplan v1\nwat 3\n", &parsed, &error));
  EXPECT_NE(error.find("wat"), std::string::npos);
  EXPECT_FALSE(
      FaultPlan::from_text("faultplan v1\ncrash 0\n", &parsed, &error));
}

TEST(FaultPlan, FromTextSkipsCommentsAndBlankLines) {
  FaultPlan parsed;
  std::string error;
  ASSERT_TRUE(FaultPlan::from_text(
      "faultplan v1\n# a comment\n\ncrash 1 2.5\n", &parsed, &error))
      << error;
  ASSERT_EQ(parsed.crashes().size(), 1u);
  EXPECT_EQ(parsed.crashes()[0].worker, 1);
  EXPECT_DOUBLE_EQ(parsed.crashes()[0].time, 2.5);
}

TEST(FaultPlan, DescribeMentionsEveryIngredient) {
  FaultPlan plan;
  plan.add_crash(2, 1.0);
  plan.add_straggler(0, 1.0, 2.0, 3.0);
  plan.set_task_faults(0.25, 4, 0.1, 1);
  const std::string text = plan.describe();
  EXPECT_NE(text.find("crash worker 2"), std::string::npos);
  EXPECT_NE(text.find("slow worker 0"), std::string::npos);
  EXPECT_NE(text.find("0.25"), std::string::npos);
}

}  // namespace
}  // namespace hp::fault
