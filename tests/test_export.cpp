#include "sched/export.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hp {
namespace {

struct Fixture {
  Platform platform{1, 1};
  std::vector<Task> tasks{Task{4.0, 1.0, 0.0, KernelKind::kGemm},
                          Task{2.0, 3.0, 0.0, KernelKind::kPotrf}};
  Schedule schedule{2};

  Fixture() {
    schedule.place(0, 1, 0.0, 1.0);
    schedule.place(1, 0, 0.0, 2.0);
    schedule.add_aborted(0, 0, 0.0, 0.5);
  }
};

TEST(ChromeTrace, ContainsEventsAndLaneNames) {
  const Fixture f;
  const std::string json = to_chrome_trace(f.schedule, f.tasks, f.platform);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("DGEMM"), std::string::npos);
  EXPECT_NE(json.find("DPOTRF"), std::string::npos);
  EXPECT_NE(json.find("(aborted)"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(ChromeTrace, BalancedBracesAndQuotes) {
  const Fixture f;
  const std::string json = to_chrome_trace(f.schedule, f.tasks, f.platform);
  int depth = 0;
  int quotes = 0;
  for (char ch : json) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    if (ch == '"') ++quotes;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(quotes % 2, 0);
}

TEST(ChromeTrace, DurationsInMicroseconds) {
  const Fixture f;
  const std::string json = to_chrome_trace(f.schedule, f.tasks, f.platform);
  // task 1 runs 2.0 time units -> "dur":2000
  EXPECT_NE(json.find("\"dur\":2000"), std::string::npos);
}

TEST(SvgGantt, WellFormedAndLabeled) {
  const Fixture f;
  const std::string svg = to_svg_gantt(f.schedule, f.tasks, f.platform);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("CPU0"), std::string::npos);
  EXPECT_NE(svg.find("GPU1"), std::string::npos);
  EXPECT_NE(svg.find("makespan = 2"), std::string::npos);
  EXPECT_NE(svg.find("<title>DGEMM</title>"), std::string::npos);
}

TEST(SvgGantt, AbortedSegmentsToggle) {
  const Fixture f;
  const std::string with =
      to_svg_gantt(f.schedule, f.tasks, f.platform, {.show_aborted = true});
  EXPECT_NE(with.find("aborted by spoliation"), std::string::npos);
  const std::string without =
      to_svg_gantt(f.schedule, f.tasks, f.platform, {.show_aborted = false});
  EXPECT_EQ(without.find("aborted by spoliation"), std::string::npos);
}

TEST(SvgGantt, RectanglePerPlacedTask) {
  const Fixture f;
  const std::string svg =
      to_svg_gantt(f.schedule, f.tasks, f.platform, {.show_aborted = false});
  std::size_t rects = 0;
  for (std::size_t pos = svg.find("<rect"); pos != std::string::npos;
       pos = svg.find("<rect", pos + 1)) {
    ++rects;
  }
  EXPECT_EQ(rects, 2u);
}

}  // namespace
}  // namespace hp
