// Degenerate platform shapes across all DAG schedulers: single-type nodes
// must behave like homogeneous list scheduling (no spoliation possible),
// single-worker nodes must serialize, and nothing may crash or deadlock.

#include <gtest/gtest.h>

#include "baselines/dualhp.hpp"
#include "baselines/heft.hpp"
#include "core/heteroprio.hpp"
#include "core/heteroprio_dag.hpp"
#include "dag/ranking.hpp"
#include "linalg/cholesky.hpp"
#include "sched/validate.hpp"

namespace hp {
namespace {

TEST(DegeneratePlatforms, CpuOnlyDagScheduling) {
  TaskGraph g = cholesky_dag(6);
  assign_priorities(g, RankScheme::kMin);
  const Platform platform(4, 0);
  HeteroPrioStats stats;
  const Schedule s = heteroprio_dag(g, platform, {}, &stats);
  const auto check = check_schedule(s, g, platform);
  ASSERT_TRUE(check.ok) << check.message;
  EXPECT_EQ(stats.spoliations, 0);
  double cpu_work = 0.0;
  for (const Task& t : g.tasks()) cpu_work += t.cpu_time;
  EXPECT_GE(s.makespan(), cpu_work / 4.0 - 1e-9);
}

TEST(DegeneratePlatforms, GpuOnlyDagScheduling) {
  TaskGraph g = cholesky_dag(6);
  assign_priorities(g, RankScheme::kAvg);
  const Platform platform(0, 2);
  const Schedule s = heteroprio_dag(g, platform);
  const auto check = check_schedule(s, g, platform);
  ASSERT_TRUE(check.ok) << check.message;
}

TEST(DegeneratePlatforms, SingleWorkerSerializesEverything) {
  TaskGraph g = cholesky_dag(4);
  const Platform platform(1, 0);
  const Schedule s = heteroprio_dag(g, platform);
  double cpu_work = 0.0;
  for (const Task& t : g.tasks()) cpu_work += t.cpu_time;
  EXPECT_NEAR(s.makespan(), cpu_work, 1e-9);
}

TEST(DegeneratePlatforms, HeftAndDualHpOnSingleTypeNodes) {
  TaskGraph g = cholesky_dag(5);
  assign_priorities(g, RankScheme::kMin);
  for (const Platform& platform : {Platform(3, 0), Platform(0, 3)}) {
    const Schedule heft_s = heft(g, platform, {.rank = RankScheme::kMin});
    const Schedule dual_s = dualhp_dag(g, platform);
    EXPECT_TRUE(check_schedule(heft_s, g, platform).ok);
    EXPECT_TRUE(check_schedule(dual_s, g, platform).ok);
  }
}

TEST(DegeneratePlatforms, ManyMoreWorkersThanTasks) {
  const std::vector<Task> tasks{Task{2.0, 1.0}, Task{1.0, 2.0}};
  const Platform platform(16, 16);
  const Schedule s = heteroprio(tasks, platform);
  const auto check = check_schedule(s, tasks, platform);
  ASSERT_TRUE(check.ok) << check.message;
  // Each task lands on its favorite type immediately.
  EXPECT_DOUBLE_EQ(s.makespan(), 1.0);
}

TEST(DegeneratePlatforms, SingleTaskEveryPlatformShape) {
  const std::vector<Task> tasks{Task{3.0, 2.0}};
  for (int cpus : {0, 1, 5}) {
    for (int gpus : {0, 1, 5}) {
      if (cpus + gpus == 0) continue;
      const Platform platform(cpus, gpus);
      const Schedule s = heteroprio(tasks, platform);
      const double expected =
          gpus > 0 ? 2.0 : 3.0;  // GPU is faster when available
      EXPECT_DOUBLE_EQ(s.makespan(), expected)
          << "(" << cpus << "," << gpus << ")";
    }
  }
}

}  // namespace
}  // namespace hp
