// Degenerate platform shapes across all DAG schedulers: single-type nodes
// must behave like homogeneous list scheduling (no spoliation possible),
// single-worker nodes must serialize, and nothing may crash or deadlock.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/dualhp.hpp"
#include "baselines/heft.hpp"
#include "core/heteroprio.hpp"
#include "core/heteroprio_dag.hpp"
#include "dag/ranking.hpp"
#include "fault/fault_plan.hpp"
#include "linalg/cholesky.hpp"
#include "obs/watchdog.hpp"
#include "sched/validate.hpp"

namespace hp {
namespace {

TEST(DegeneratePlatforms, CpuOnlyDagScheduling) {
  TaskGraph g = cholesky_dag(6);
  assign_priorities(g, RankScheme::kMin);
  const Platform platform(4, 0);
  HeteroPrioStats stats;
  const Schedule s = heteroprio_dag(g, platform, {}, &stats);
  const auto check = check_schedule(s, g, platform);
  ASSERT_TRUE(check.ok) << check.message;
  EXPECT_EQ(stats.spoliations, 0);
  double cpu_work = 0.0;
  for (const Task& t : g.tasks()) cpu_work += t.cpu_time;
  EXPECT_GE(s.makespan(), cpu_work / 4.0 - 1e-9);
}

TEST(DegeneratePlatforms, GpuOnlyDagScheduling) {
  TaskGraph g = cholesky_dag(6);
  assign_priorities(g, RankScheme::kAvg);
  const Platform platform(0, 2);
  const Schedule s = heteroprio_dag(g, platform);
  const auto check = check_schedule(s, g, platform);
  ASSERT_TRUE(check.ok) << check.message;
}

TEST(DegeneratePlatforms, SingleWorkerSerializesEverything) {
  TaskGraph g = cholesky_dag(4);
  const Platform platform(1, 0);
  const Schedule s = heteroprio_dag(g, platform);
  double cpu_work = 0.0;
  for (const Task& t : g.tasks()) cpu_work += t.cpu_time;
  EXPECT_NEAR(s.makespan(), cpu_work, 1e-9);
}

TEST(DegeneratePlatforms, HeftAndDualHpOnSingleTypeNodes) {
  TaskGraph g = cholesky_dag(5);
  assign_priorities(g, RankScheme::kMin);
  for (const Platform& platform : {Platform(3, 0), Platform(0, 3)}) {
    const Schedule heft_s = heft(g, platform, {.rank = RankScheme::kMin});
    const Schedule dual_s = dualhp_dag(g, platform);
    EXPECT_TRUE(check_schedule(heft_s, g, platform).ok);
    EXPECT_TRUE(check_schedule(dual_s, g, platform).ok);
  }
}

TEST(DegeneratePlatforms, ManyMoreWorkersThanTasks) {
  const std::vector<Task> tasks{Task{2.0, 1.0}, Task{1.0, 2.0}};
  const Platform platform(16, 16);
  const Schedule s = heteroprio(tasks, platform);
  const auto check = check_schedule(s, tasks, platform);
  ASSERT_TRUE(check.ok) << check.message;
  // Each task lands on its favorite type immediately.
  EXPECT_DOUBLE_EQ(s.makespan(), 1.0);
}

TEST(DegeneratePlatforms, SingleTaskEveryPlatformShape) {
  const std::vector<Task> tasks{Task{3.0, 2.0}};
  for (int cpus : {0, 1, 5}) {
    for (int gpus : {0, 1, 5}) {
      if (cpus + gpus == 0) continue;
      const Platform platform(cpus, gpus);
      const Schedule s = heteroprio(tasks, platform);
      const double expected =
          gpus > 0 ? 2.0 : 3.0;  // GPU is faster when available
      EXPECT_DOUBLE_EQ(s.makespan(), expected)
          << "(" << cpus << "," << gpus << ")";
    }
  }
}

TEST(DegeneratePlatforms, CrashShrinksHeterogeneousNodeToHomogeneous) {
  // A (2, 1) node loses its only GPU immediately: the run must degenerate
  // to CPU-only list scheduling without deadlock or spoliation targets.
  TaskGraph g = cholesky_dag(5);
  assign_priorities(g, RankScheme::kMin);
  const Platform platform(2, 1);
  fault::FaultPlan plan;
  plan.add_crash(platform.first(Resource::kGpu), 0.0);

  HeteroPrioOptions options;
  options.faults = &plan;
  HeteroPrioStats stats;
  const Schedule s = heteroprio_dag(g, platform, options, &stats);
  const ScheduleCheckOptions relaxed{.require_complete = false,
                                     .exact_durations = false};
  const auto check = check_schedule(s, g, platform, relaxed);
  ASSERT_TRUE(check.ok) << check.message;
  EXPECT_TRUE(s.complete());
  for (const Placement& p : s.placements()) {
    EXPECT_EQ(platform.type_of(p.worker), Resource::kCpu);
  }
}

TEST(DegeneratePlatforms, CrashShrinksNodeToASingleWorker) {
  const std::vector<Task> tasks{Task{2.0, 1.0}, Task{1.0, 2.0},
                                Task{3.0, 3.0}};
  const Platform platform(2, 1);
  fault::FaultPlan plan;
  plan.add_crash(0, 0.0);
  plan.add_crash(2, 0.0);  // only CPU 1 survives

  HeteroPrioOptions options;
  options.faults = &plan;
  HeteroPrioStats stats;
  const Schedule s = heteroprio(tasks, platform, options, &stats);
  EXPECT_TRUE(s.complete());
  EXPECT_EQ(stats.recovery.worker_crashes, 2);
  double cpu_work = 0.0;
  for (const Task& t : tasks) cpu_work += t.cpu_time;
  EXPECT_NEAR(s.makespan(), cpu_work, 1e-9);  // everything serialized
  for (const Placement& p : s.placements()) EXPECT_EQ(p.worker, 1);
}

TEST(DegeneratePlatforms, WatchdogShapesForShrunkenWorkerCounts) {
  using obs::PlatformShape;
  // The count-based overloads cover shapes a Platform object cannot reach.
  EXPECT_EQ(obs::platform_shape(1, 1), PlatformShape::kSingleSingle);
  EXPECT_EQ(obs::platform_shape(3, 1), PlatformShape::kManyPlusOne);
  EXPECT_EQ(obs::platform_shape(1, 4), PlatformShape::kManyPlusOne);
  EXPECT_EQ(obs::platform_shape(2, 2), PlatformShape::kGeneral);
  EXPECT_EQ(obs::platform_shape(3, 0), PlatformShape::kHomogeneous);
  EXPECT_EQ(obs::platform_shape(0, 2), PlatformShape::kHomogeneous);
  EXPECT_EQ(obs::platform_shape(0, 0), PlatformShape::kHomogeneous);

  // Counts must agree with the Platform overload where both exist.
  EXPECT_EQ(obs::platform_shape(4, 2), obs::platform_shape(Platform(4, 2)));
  EXPECT_DOUBLE_EQ(obs::proven_bound(4, 2),
                   obs::proven_bound(Platform(4, 2)));

  // Graham's 2 - 1/w for homogeneous survivors; infinity for none.
  EXPECT_DOUBLE_EQ(obs::proven_bound(3, 0), 2.0 - 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(obs::proven_bound(0, 1), 1.0);
  EXPECT_TRUE(std::isinf(obs::proven_bound(0, 0)));
}

TEST(DegeneratePlatforms, WatchdogNeverFiresOnAFullyCrashedNode) {
  // A degraded run can end with zero survivors: any makespan over any
  // lower bound must pass (nothing finished on nothing violates nothing).
  const auto check = obs::check_makespan_bound(100.0, 1.0, 0, 0);
  EXPECT_FALSE(check.violated);
  EXPECT_TRUE(std::isinf(check.bound));

  // One survivor is a real shape again: Graham's bound for w=1 is 1.0, so
  // a ratio of 10/9 against the lower bound must fire.
  EXPECT_TRUE(obs::check_makespan_bound(10.0, 9.0, 0, 1).violated);
  EXPECT_FALSE(obs::check_makespan_bound(9.0, 9.0, 0, 1).violated);
}

}  // namespace
}  // namespace hp
