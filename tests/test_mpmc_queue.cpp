// Tests for serve/mpmc_queue: the lock-free intake queue of the scheduling
// service. The contract under test: every pushed value is popped exactly
// once (no loss, no duplication) across arbitrary producer/consumer grids;
// values from one producer come out in that producer's push order
// (per-producer FIFO); a bounded queue never holds more than its capacity;
// and sustained churn recycles ring segments through the epoch scheme
// instead of growing the footprint. try_pop may fail spuriously while a
// peer is mid-operation, so drains loop until the accounting balances.
//
// MpmcQueue.* runs in the `serve`-labeled aggregate, which the
// ThreadSanitizer CI job executes alongside `-L par`.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "serve/mpmc_queue.hpp"

namespace hp::serve {
namespace {

// Value type carrying (producer, sequence) so consumers can check both
// uniqueness and per-producer order.
struct Tagged {
  std::uint32_t producer;
  std::uint32_t sequence;
};

TEST(MpmcQueue, SingleThreadRoundTripIsFifo) {
  MpmcQueue<int> queue(/*slots=*/1, /*segment_capacity=*/4);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(queue.try_push(0, i));
  EXPECT_EQ(queue.approx_size(), 10u);
  for (int i = 0; i < 10; ++i) {
    int out = -1;
    // Spurious failure cannot happen single-threaded with items queued.
    ASSERT_TRUE(queue.try_pop(0, &out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(queue.try_pop(0, &out)) << "queue should be empty";
  EXPECT_EQ(queue.approx_size(), 0u);
}

TEST(MpmcQueue, CrossesSegmentBoundariesInOrder) {
  // Capacity 2 forces a fresh segment every other push.
  MpmcQueue<int> queue(/*slots=*/1, /*segment_capacity=*/2);
  for (int i = 0; i < 64; ++i) ASSERT_TRUE(queue.try_push(0, i));
  EXPECT_GE(queue.segments_allocated(), 2u);
  for (int i = 0; i < 64; ++i) {
    int out = -1;
    ASSERT_TRUE(queue.try_pop(0, &out));
    EXPECT_EQ(out, i);
  }
}

TEST(MpmcQueue, HardCapacityBoundsAcceptedPushes) {
  MpmcQueue<int> queue(/*slots=*/1, /*segment_capacity=*/4, /*capacity=*/6);
  int accepted = 0;
  for (int i = 0; i < 20; ++i) accepted += queue.try_push(0, i) ? 1 : 0;
  EXPECT_EQ(accepted, 6);
  int out = -1;
  ASSERT_TRUE(queue.try_pop(0, &out));
  EXPECT_EQ(out, 0);
  // One slot of custody freed: exactly one more push fits.
  EXPECT_TRUE(queue.try_push(0, 100));
  EXPECT_FALSE(queue.try_push(0, 101));
}

TEST(MpmcQueue, InterleavedPushPopNeverLosesAValue) {
  MpmcQueue<int> queue(/*slots=*/1, /*segment_capacity=*/2);
  long long pushed_sum = 0;
  long long popped_sum = 0;
  int next = 0;
  // Sawtooth load keeps crossing segment boundaries with a near-empty
  // queue, the regime where head/tail advance race hardest.
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(queue.try_push(0, next));
      pushed_sum += next++;
    }
    for (int i = 0; i < 2; ++i) {
      int out = -1;
      ASSERT_TRUE(queue.try_pop(0, &out));
      popped_sum += out;
    }
  }
  int out = -1;
  while (queue.try_pop(0, &out)) popped_sum += out;
  EXPECT_EQ(popped_sum, pushed_sum);
}

/// Run `producers` x `consumers` threads moving `per_producer` values each
/// and return the consumed tags; asserts nothing is lost or duplicated.
void run_grid(int producers, int consumers, std::uint32_t per_producer,
              std::uint32_t segment_capacity) {
  MpmcQueue<Tagged> queue(
      static_cast<std::size_t>(producers + consumers), segment_capacity);
  const std::uint64_t total =
      static_cast<std::uint64_t>(producers) * per_producer;
  std::atomic<std::uint64_t> consumed{0};
  std::vector<std::vector<Tagged>> seen(
      static_cast<std::size_t>(consumers));

  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (std::uint32_t i = 0; i < per_producer; ++i) {
        Tagged value{static_cast<std::uint32_t>(p), i};
        while (!queue.try_push(static_cast<std::size_t>(p), value)) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int c = 0; c < consumers; ++c) {
    threads.emplace_back([&, c] {
      const std::size_t slot = static_cast<std::size_t>(producers + c);
      std::vector<Tagged>& mine = seen[static_cast<std::size_t>(c)];
      while (consumed.load(std::memory_order_acquire) < total) {
        Tagged out{};
        if (queue.try_pop(slot, &out)) {
          mine.push_back(out);
          consumed.fetch_add(1, std::memory_order_acq_rel);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Exactly-once delivery: every (producer, sequence) tag seen once.
  std::vector<std::uint32_t> next_seq(static_cast<std::size_t>(producers), 0);
  std::vector<std::vector<std::uint32_t>> per_consumer_seq(
      static_cast<std::size_t>(producers));
  std::uint64_t delivered = 0;
  std::vector<char> hit(total, 0);
  for (int c = 0; c < consumers; ++c) {
    // Per-producer FIFO: within one consumer's stream, sequences from any
    // single producer must be strictly increasing (a consumer can only be
    // handed producer p's values in the order they were enqueued).
    std::vector<std::int64_t> last(static_cast<std::size_t>(producers), -1);
    for (const Tagged& t : seen[static_cast<std::size_t>(c)]) {
      ASSERT_LT(t.producer, static_cast<std::uint32_t>(producers));
      ASSERT_LT(t.sequence, per_producer);
      const std::uint64_t key =
          static_cast<std::uint64_t>(t.producer) * per_producer + t.sequence;
      EXPECT_EQ(hit[key], 0) << "value delivered twice";
      hit[key] = 1;
      ++delivered;
      EXPECT_GT(static_cast<std::int64_t>(t.sequence), last[t.producer])
          << "producer " << t.producer << " reordered at a single consumer";
      last[t.producer] = t.sequence;
    }
  }
  EXPECT_EQ(delivered, total);
  EXPECT_EQ(std::count(hit.begin(), hit.end(), 0), 0);
  EXPECT_EQ(queue.approx_size(), 0u);
}

TEST(MpmcQueue, GridOneToOne) { run_grid(1, 1, 20000, 64); }
TEST(MpmcQueue, GridManyToOne) { run_grid(4, 1, 8000, 32); }
TEST(MpmcQueue, GridOneToMany) { run_grid(1, 4, 20000, 32); }
TEST(MpmcQueue, GridManyToMany) { run_grid(4, 4, 8000, 16); }
// Tiny segments maximize boundary crossings — the poison/advance paths.
TEST(MpmcQueue, GridTinySegmentsStressBoundaries) { run_grid(3, 3, 5000, 2); }

// Deterministic flatness: a single participant's guard always closes
// between operations, so every retired segment is reclaimable by the time
// the next one is needed — the footprint must stay at a couple of segments
// no matter how many values flow through.
TEST(MpmcQueue, SingleThreadChurnKeepsFootprintExactlyFlat) {
  MpmcQueue<int> queue(/*slots=*/1, /*segment_capacity=*/2);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(queue.try_push(0, i));
    int out = -1;
    ASSERT_TRUE(queue.try_pop(0, &out));
    EXPECT_EQ(out, i);
  }
  EXPECT_LE(queue.segments_allocated(), 4u);
  EXPECT_GE(queue.segments_recycled(), 4000u);
}

TEST(MpmcQueue, ChurnRecyclesSegmentsInsteadOfGrowing) {
  constexpr int kThreads = 4;
  constexpr std::uint32_t kPerThread = 20000;
  // Each thread pushes then pops, so the queue hovers near-empty while
  // segment turnover is maximal (capacity 2: a fresh segment every other
  // value). Recycling must supply nearly all of them.
  MpmcQueue<int> queue(kThreads, /*segment_capacity=*/2);
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> popped{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::size_t slot = static_cast<std::size_t>(t);
      for (std::uint32_t i = 0; i < kPerThread; ++i) {
        while (!queue.try_push(slot, static_cast<int>(i))) {
          std::this_thread::yield();
        }
        int out = -1;
        if (queue.try_pop(slot, &out)) {
          popped.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  int out = -1;
  while (queue.try_pop(0, &out)) popped.fetch_add(1, std::memory_order_relaxed);
  EXPECT_EQ(popped.load(), static_cast<std::uint64_t>(kThreads) * kPerThread);

  // ~40000 segments were consumed (80000 values, 2 per segment) and the
  // freelist must supply most of them. The bound is deliberately loose: a
  // thread the OS preempts *inside* its epoch guard pins reclamation for a
  // whole scheduling quantum, during which the others legitimately fall
  // back to allocation — epochs trade bounded memory for non-blocking
  // progress. What must never happen is allocation keeping pace with
  // churn (the single-thread test above pins the no-preemption floor).
  const std::size_t consumed =
      static_cast<std::size_t>(kThreads) * kPerThread / 2;
  EXPECT_GT(queue.segments_recycled(), queue.segments_allocated())
      << "segment churn is not being recycled";
  EXPECT_LT(queue.segments_allocated(), consumed / 2)
      << "allocated " << queue.segments_allocated() << " of " << consumed
      << " segments consumed: reclamation is not keeping up";
}

}  // namespace
}  // namespace hp::serve
