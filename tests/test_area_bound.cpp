#include "bounds/area_bound.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "model/generators.hpp"
#include "util/rng.hpp"

namespace hp {
namespace {

TEST(AreaBound, EmptyInstanceIsZero) {
  const std::vector<Task> tasks;
  EXPECT_DOUBLE_EQ(area_bound_value(tasks, Platform(2, 2)), 0.0);
}

TEST(AreaBound, SingleTaskSplitsAcrossBothResources) {
  // One task, p = q = 1, on (1,1): the LP splits it so both finish at 1/2.
  const std::vector<Task> tasks{Task{1.0, 1.0}};
  EXPECT_NEAR(area_bound_value(tasks, Platform(1, 1)), 0.5, 1e-12);
}

TEST(AreaBound, KnownTwoTaskInstance) {
  // Thm 8's instance: X (phi, 1), Y (1, 1/phi) on (1,1).
  // All-GPU load = 1 + 1/phi = phi; all-CPU = 1 + phi. Balanced split gives
  // bound (phi + 1*... ) — just check against a fine-grained numeric search.
  const double phi = 1.6180339887498949;
  const std::vector<Task> tasks{Task{phi, 1.0}, Task{1.0, 1.0 / phi}};
  const double bound = area_bound_value(tasks, Platform(1, 1));
  // Numeric reference: both tasks have equal rho so any fractional split is
  // threshold-consistent; optimum equalizes loads:
  //   cpu = a*phi + b*1, gpu = (1-a)*1 + (1-b)/phi, minimized max.
  // Total work conservation on equal-rho tasks makes this solvable: the
  // balanced value is W_gpu_all * phi/(1+phi) where W_gpu_all = phi.
  EXPECT_NEAR(bound, phi * phi / (1 + phi), 1e-9);
}

TEST(AreaBound, CpuOnlyPlatform) {
  const std::vector<Task> tasks{Task{4.0, 1.0}, Task{6.0, 1.0}};
  EXPECT_DOUBLE_EQ(area_bound_value(tasks, Platform(2, 0)), 5.0);
}

TEST(AreaBound, GpuOnlyPlatform) {
  const std::vector<Task> tasks{Task{4.0, 1.0}, Task{6.0, 3.0}};
  EXPECT_DOUBLE_EQ(area_bound_value(tasks, Platform(0, 2)), 2.0);
}

TEST(AreaBound, ExtremeGpuFriendlyTasksStillBalance) {
  // Even with rho = 1000, the LP moves a sliver of the last task to the
  // otherwise-empty CPU: balanced at 2000/1001, strictly below the
  // all-on-GPU value of 2 (Lemma 1 applies whenever m >= 1).
  const std::vector<Task> tasks{Task{1000.0, 1.0}, Task{1000.0, 1.0}};
  const AreaBoundResult res = area_bound(tasks, Platform(1, 1));
  EXPECT_NEAR(res.bound, 2000.0 / 1001.0, 1e-12);
  EXPECT_NEAR(res.cpu_work, res.gpu_work, 1e-9);
  EXPECT_EQ(res.split_index, 1u);
}

TEST(AreaBound, Lemma1LoadsEqualAtInteriorOptimum) {
  util::Rng rng(11);
  for (int rep = 0; rep < 20; ++rep) {
    const Instance inst = uniform_instance({.num_tasks = 30}, rng);
    const Platform platform(4, 2);
    const AreaBoundResult res = area_bound(inst.tasks(), platform);
    if (res.cpu_work > 0.0 && res.gpu_work > 0.0) {
      EXPECT_NEAR(res.cpu_work / platform.cpus(), res.gpu_work / platform.gpus(),
                  1e-9 * res.bound);
      EXPECT_NEAR(res.bound, res.cpu_work / platform.cpus(),
                  1e-9 * res.bound);
    }
  }
}

TEST(AreaBound, Lemma2ThresholdStructure) {
  util::Rng rng(12);
  const Instance inst = uniform_instance({.num_tasks = 40}, rng);
  const AreaBoundResult res = area_bound(inst.tasks(), Platform(3, 2));
  ASSERT_LT(res.split_index, res.order.size());
  const double k = res.threshold_accel;
  // Everything before the split has rho >= k (on GPU), after has rho <= k.
  for (std::size_t i = 0; i < res.split_index; ++i) {
    EXPECT_GE(inst[res.order[i]].accel(), k - 1e-12);
  }
  for (std::size_t i = res.split_index + 1; i < res.order.size(); ++i) {
    EXPECT_LE(inst[res.order[i]].accel(), k + 1e-12);
  }
  EXPECT_GE(res.gpu_fraction_of_split, 0.0);
  EXPECT_LE(res.gpu_fraction_of_split, 1.0);
}

TEST(AreaBound, MatchesFineGrainedSearchOnRandomInstances) {
  // Reference: ternary-search the threshold position over the sorted order,
  // i.e. evaluate max(cpu/m, gpu/n) on a dense sweep of fractional splits.
  util::Rng rng(13);
  for (int rep = 0; rep < 10; ++rep) {
    const Instance inst = uniform_instance({.num_tasks = 12}, rng);
    const Platform platform(3, 1);
    const AreaBoundResult res = area_bound(inst.tasks(), platform);

    double best = std::numeric_limits<double>::infinity();
    const auto& order = res.order;
    for (std::size_t split = 0; split < order.size(); ++split) {
      for (int step = 0; step <= 200; ++step) {
        const double frac = step / 200.0;
        double cpu = 0.0, gpu = 0.0;
        for (std::size_t i = 0; i < order.size(); ++i) {
          const Task& t = inst[order[i]];
          if (i < split) {
            gpu += t.gpu_time;
          } else if (i == split) {
            gpu += frac * t.gpu_time;
            cpu += (1 - frac) * t.cpu_time;
          } else {
            cpu += t.cpu_time;
          }
        }
        best = std::min(best, std::max(cpu / platform.cpus(),
                                       gpu / platform.gpus()));
      }
    }
    EXPECT_LE(res.bound, best + 1e-9);
    EXPECT_GE(res.bound, best - 0.01 * best);  // sweep is discretized
  }
}

TEST(AreaBound, IsLowerBoundOnAnyScheduleLoads) {
  // Any integral assignment's max load is >= the bound.
  util::Rng rng(14);
  const Instance inst = uniform_instance({.num_tasks = 8}, rng);
  const Platform platform(2, 1);
  const double bound = area_bound_value(inst.tasks(), platform);
  // Exhaustive CPU-side/GPU-side split (per-side load balancing relaxed to
  // perfect divisibility, which can only help): still >= area bound.
  const std::size_t count = inst.size();
  for (std::size_t mask = 0; mask < (1u << count); ++mask) {
    double cpu = 0.0, gpu = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
      if (mask & (1u << i)) {
        gpu += inst[static_cast<TaskId>(i)].gpu_time;
      } else {
        cpu += inst[static_cast<TaskId>(i)].cpu_time;
      }
    }
    EXPECT_GE(std::max(cpu / platform.cpus(), gpu / platform.gpus()),
              bound - 1e-9);
  }
}

TEST(OptLowerBound, IncludesMinTimeTerm) {
  // A single huge task dominates the area term on a big platform.
  const std::vector<Task> tasks{Task{100.0, 90.0}};
  const Platform platform(10, 10);
  EXPECT_DOUBLE_EQ(opt_lower_bound(tasks, platform), 90.0);
}

}  // namespace
}  // namespace hp
