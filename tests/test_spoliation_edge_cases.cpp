// Edge cases of the spoliation mechanism: cascades, simultaneous events,
// re-steal prevention, and single-resource degeneracies.

#include <gtest/gtest.h>

#include "core/heteroprio.hpp"
#include "sched/validate.hpp"

namespace hp {
namespace {

TEST(SpoliationEdge, CascadeOfSequentialSpoliations) {
  // One GPU frees repeatedly and rescues several CPU-held tasks in turn.
  const std::vector<Task> tasks{
      Task{100.0, 1.0},  // keeps the GPU busy first
      Task{40.0, 4.0},   // victims, in decreasing ECT order
      Task{30.0, 4.0},
      Task{20.0, 4.0},
  };
  const Platform platform(3, 1);
  HeteroPrioStats stats;
  const Schedule s = heteroprio(tasks, platform, {}, &stats);
  const auto check = check_schedule(s, tasks, platform);
  ASSERT_TRUE(check.ok) << check.message;
  // GPU: task0 [0,1]; steals task1 at 1 (1+4 < 40), task2 at 5 (5+4 < 30),
  // task3 at 9 (9+4 < 20): three spoliations, makespan 13.
  EXPECT_EQ(stats.spoliations, 3);
  EXPECT_DOUBLE_EQ(s.makespan(), 13.0);
}

TEST(SpoliationEdge, AbortedWorkerFindsNewWorkImmediately) {
  // When the GPU steals a CPU's task, that CPU must take the next queued
  // task at the same instant (no idle gap).
  const std::vector<Task> tasks{
      Task{50.0, 1.0},  // GPU first
      Task{50.0, 5.0},  // CPU 1 starts it; stolen at t=1
      Task{10.0, 9.0},  // CPU 0 takes the queue tail
  };
  const Platform platform(2, 1);
  const Schedule s = heteroprio(tasks, platform);
  const auto check = check_schedule(s, tasks, platform);
  ASSERT_TRUE(check.ok) << check.message;
  // Queue rho: t0=50, t1=10, t2=10/9. CPU pops tail = t2 at 0. GPU pops t0.
  // At t=1 GPU steals t1 or t2? t2 runs on CPU until 10... Let's just
  // assert structure: exactly one abort, and the aborted CPU restarts
  // another task at the abort instant.
  ASSERT_EQ(s.aborted().size(), 1u);
  const AbortedSegment& abort = s.aborted()[0];
  bool cpu_rebusy = false;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const Placement& p = s.placement(static_cast<TaskId>(i));
    if (p.worker == abort.worker && p.start >= abort.abort_time - 1e-12 &&
        p.start <= abort.abort_time + 1e-12) {
      cpu_rebusy = true;
    }
  }
  // Either the CPU restarts something immediately or nothing is left for it.
  int unfinished_after = 0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const Placement& p = s.placement(static_cast<TaskId>(i));
    if (p.start > abort.abort_time + 1e-12 && p.worker == abort.worker) {
      ++unfinished_after;
    }
  }
  EXPECT_TRUE(cpu_rebusy || unfinished_after == 0);
}

TEST(SpoliationEdge, NoStealFromSameResourceType) {
  // Two CPUs, no GPU: no spoliation can ever happen.
  const std::vector<Task> tasks{Task{10.0, 1.0}, Task{1.0, 1.0},
                                Task{5.0, 1.0}};
  HeteroPrioStats stats;
  (void)heteroprio(tasks, Platform(2, 0), {}, &stats);
  EXPECT_EQ(stats.spoliations, 0);
}

TEST(SpoliationEdge, StolenTaskNotStolenBack) {
  // After the CPU steals a task from the GPU (p < q), the GPU must not
  // steal it back even when idle (no strict improvement possible), per the
  // termination argument.
  const std::vector<Task> tasks{Task{3.0, 10.0}};
  const Platform platform(1, 1);
  HeteroPrioStats stats;
  const Schedule s = heteroprio(tasks, platform, {}, &stats);
  // GPU grabs it at t=0 (only ready task), CPU steals it (0+3 < 10);
  // GPU cannot improve 3 with 10. One spoliation total.
  EXPECT_EQ(stats.spoliations, 1);
  EXPECT_DOUBLE_EQ(s.makespan(), 3.0);
  EXPECT_EQ(platform.type_of(s.placement(0).worker), Resource::kCpu);
}

TEST(SpoliationEdge, SimultaneousCompletionsDeterministic) {
  // Many identical tasks completing at the same instants: the run must be
  // deterministic and valid despite heavy event-time ties.
  std::vector<Task> tasks(24, Task{2.0, 1.0});
  const Platform platform(4, 4);
  const Schedule a = heteroprio(tasks, platform);
  const Schedule b = heteroprio(tasks, platform);
  const auto check = check_schedule(a, tasks, platform);
  ASSERT_TRUE(check.ok) << check.message;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(a.placement(static_cast<TaskId>(i)).worker,
              b.placement(static_cast<TaskId>(i)).worker);
    EXPECT_DOUBLE_EQ(a.placement(static_cast<TaskId>(i)).start,
                     b.placement(static_cast<TaskId>(i)).start);
  }
}

TEST(SpoliationEdge, VictimPriorityTieBreak) {
  // Two victims with identical ECT: the higher-priority one is stolen
  // first (the §6.2 rule, used by Thm 14's construction).
  const std::vector<Task> tasks{
      Task{100.0, 1.0, /*prio*/ 0.0},  // GPU occupier
      Task{50.0, 4.0, /*prio*/ 1.0},   // victim, low priority
      Task{50.0, 4.0, /*prio*/ 9.0},   // victim, high priority
  };
  const Platform platform(2, 1);
  const Schedule s = heteroprio(tasks, platform);
  ASSERT_GE(s.aborted().size(), 1u);
  EXPECT_EQ(s.aborted()[0].task, 2);  // high priority stolen first
}

}  // namespace
}  // namespace hp
