// Fault tolerance — extends the §1 dynamic-vs-static argument from noisy
// duration estimates to outright faults: permanent worker crashes,
// transient straggler windows and per-attempt task failures, all drawn from
// a deterministic FaultPlan. HeteroPrio reacts online inside the engine
// (re-enqueue on crash, retry with backoff, spoliation against the
// surviving platform); HEFT and DualHP plans go through the static failover
// replay (fault/replay.hpp) facing the exact same fault reality.
//
// Reported: makespan normalized by the fault-free HeteroPrio makespan of
// the same workload, averaged over fault seeds, plus how many of the runs
// ended degraded (work abandoned).
//
// The (kernel, N, scenario) cells are independent; they are fanned across a
// thread pool and every fault plan is seeded from the cell coordinates, so
// the output is byte-identical for any thread count (`serial` or `-jN`).
//
// Usage: bench_fault_tolerance [-jN|serial] [--trace FILE]

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/dualhp.hpp"
#include "baselines/heft.hpp"
#include "core/heteroprio_dag.hpp"
#include "dag/ranking.hpp"
#include "fault/fault_plan.hpp"
#include "fault/replay.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/qr.hpp"
#include "obs/export_chrome.hpp"
#include "obs/recorder.hpp"
#include "perf/parallel_args.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace hp;

struct Kernel {
  const char* name;
  TaskGraph (*build)(int, const TimingModel&);
};

struct Scenario {
  const char* name;
  const char* spec;  ///< fault::parse_spec string (horizon/seed added per run)
};

}  // namespace

int main(int argc, char** argv) {
  const Platform platform(20, 4);
  constexpr int kSeeds = 5;

  int threads = 0;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      perf::consume_parallel_arg(arg, threads);
    }
  }

  std::cout << "== Fault tolerance: crashes, stragglers and task failures "
               "under online vs static scheduling ==\n"
               "(values: makespan / fault-free HeteroPrio makespan, mean "
               "over " << kSeeds << " fault seeds; 'deg' counts degraded "
               "runs out of " << 3 * kSeeds << ")\n\n";

  const std::vector<Kernel> kernels = {Kernel{"cholesky", &cholesky_dag},
                                       Kernel{"qr", &qr_dag}};
  const std::vector<int> tile_counts = {16, 32};
  const std::vector<Scenario> scenarios = {
      Scenario{"crashes", "crashes=2,retries=3"},
      Scenario{"stragglers", "stragglers=3,slow=4,retries=3"},
      Scenario{"taskfail", "taskfail=0.05,retries=3,backoff=0.02"},
      Scenario{"mixed", "crashes=1,stragglers=2,slow=4,taskfail=0.02,"
                        "retries=3,backoff=0.02"},
  };

  struct Row {
    double hp = 0.0;
    double heft = 0.0;
    double dual = 0.0;
    int degraded = 0;
  };
  std::vector<Row> rows(kernels.size() * tile_counts.size() *
                        scenarios.size());
  util::parallel_for(rows.size(), threads, [&](std::size_t cell) {
    const std::size_t si = cell % scenarios.size();
    const std::size_t ti = (cell / scenarios.size()) % tile_counts.size();
    const std::size_t ki = cell / (scenarios.size() * tile_counts.size());
    const Kernel& kernel = kernels[ki];
    const int tiles = tile_counts[ti];
    const Scenario& scenario = scenarios[si];

    TaskGraph graph = kernel.build(tiles, TimingModel::chameleon_960());
    assign_priorities(graph, RankScheme::kMin);
    const double reference = heteroprio_dag(graph, platform).makespan();
    const Schedule heft_plan =
        heft(graph, platform, {.rank = RankScheme::kMin});
    const Schedule dual_plan = dualhp_dag(graph, platform);

    fault::FaultSpec spec;
    std::string error;
    if (!fault::parse_spec(scenario.spec, &spec, &error)) {
      std::cerr << "bad scenario spec: " << error << '\n';
      std::abort();
    }
    // Faults land inside the fault-free schedule's span.
    spec.horizon = reference;

    std::vector<double> hp_ratio, heft_ratio, dual_ratio;
    Row row;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      // Seed from the cell coordinates so every thread count injects the
      // exact same faults into this (kernel, N, scenario, seed) cell.
      spec.seed = util::seed_from_cell({ki, static_cast<std::uint64_t>(tiles),
                                        si, static_cast<std::uint64_t>(seed)});
      const fault::FaultPlan plan = fault::FaultPlan::generate(spec, platform);

      HeteroPrioOptions hp_options;
      hp_options.faults = &plan;
      HeteroPrioStats stats;
      const Schedule hp_run =
          heteroprio_dag(graph, platform, hp_options, &stats);
      hp_ratio.push_back(hp_run.makespan() / reference);
      if (stats.recovery.degraded) ++row.degraded;

      const auto heft_run = fault::execute_plan_with_faults(
          heft_plan, graph, platform, plan);
      heft_ratio.push_back(heft_run.schedule.makespan() / reference);
      if (heft_run.recovery.degraded) ++row.degraded;

      const auto dual_run = fault::execute_plan_with_faults(
          dual_plan, graph, platform, plan);
      dual_ratio.push_back(dual_run.schedule.makespan() / reference);
      if (dual_run.recovery.degraded) ++row.degraded;
    }
    row.hp = util::mean(hp_ratio);
    row.heft = util::mean(heft_ratio);
    row.dual = util::mean(dual_ratio);
    rows[cell] = row;
  });

  util::Table table({"kernel", "N", "scenario", "HeteroPrio (online)",
                     "HEFT (failover replay)", "DualHP (failover replay)",
                     "deg"},
                    3);
  std::size_t cell = 0;
  for (const Kernel& kernel : kernels) {
    for (int tiles : tile_counts) {
      for (const Scenario& scenario : scenarios) {
        const Row& row = rows[cell++];
        table.row().cell(kernel.name).cell(static_cast<long long>(tiles))
            .cell(scenario.name).cell(row.hp).cell(row.heft).cell(row.dual)
            .cell(static_cast<long long>(row.degraded));
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected: the online scheduler re-plans around dead and "
               "slow workers and stays\nclosest to its fault-free makespan; "
               "static failover replays degrade further —\nthe dynamic-vs-"
               "static argument of Section 1, extended from noise to "
               "faults.\n";

  if (!trace_path.empty()) {
    // Representative faulty online run: Cholesky N=16, mixed scenario,
    // seed 1 — the trace carries the new fault event kinds (worker-crash,
    // slowdown counter tracks, task-fail/retry markers).
    TaskGraph graph = cholesky_dag(16, TimingModel::chameleon_960());
    assign_priorities(graph, RankScheme::kMin);
    fault::FaultSpec spec;
    std::string error;
    if (!fault::parse_spec(scenarios.back().spec, &spec, &error)) {
      std::cerr << "bad scenario spec: " << error << '\n';
      return 1;
    }
    spec.horizon = heteroprio_dag(graph, platform).makespan();
    spec.seed = util::seed_from_cell({0, 16, scenarios.size() - 1, 1});
    const fault::FaultPlan plan = fault::FaultPlan::generate(spec, platform);
    obs::EventRecorder recorder;
    HeteroPrioOptions hp_options;
    hp_options.faults = &plan;
    hp_options.sink = &recorder;
    (void)heteroprio_dag(graph, platform, hp_options);
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "cannot write " << trace_path << '\n';
      return 1;
    }
    out << obs::chrome_trace_from_events(recorder.events(), platform,
                                         graph.tasks());
    std::cerr << "wrote trace " << trace_path << " (" << recorder.size()
              << " events)\n";
  }
  return 0;
}
