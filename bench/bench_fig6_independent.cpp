// Fig 6 of the paper: independent tasks. The task sets of Cholesky/QR/LU
// at tile counts N = 4..64 are scheduled (ignoring dependencies) by
// HeteroPrio, DualHP and HEFT on (20 CPUs, 4 GPUs); each makespan is
// normalized by the area bound.
//
// Expected shape: HeteroPrio and DualHP -> 1 for large N; HeteroPrio wins
// for N below ~20; HEFT is clearly worse throughout.
//
// The (kernel, N) grid cells are independent and deterministic, so they are
// fanned across a thread pool; results land in pre-allocated slots, so the
// printed tables are byte-identical to a serial run (`serial` or `-j1`).
//
// Usage: bench_fig6_independent [kernel] [maxN] [-jN|serial] [--trace FILE]

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/dualhp.hpp"
#include "baselines/heft.hpp"
#include "bounds/area_bound.hpp"
#include "core/heteroprio.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "linalg/qr.hpp"
#include "obs/export_chrome.hpp"
#include "obs/recorder.hpp"
#include "perf/parallel_args.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace hp;

  std::vector<std::string> kernels = {"cholesky", "qr", "lu"};
  std::vector<int> tile_counts = {4, 6, 8, 10, 12, 16, 20, 24, 32, 40, 48, 64};
  int threads = 0;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "cholesky" || arg == "qr" || arg == "lu") {
      kernels = {arg};
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (perf::consume_parallel_arg(arg, threads)) {
      // handled
    } else if (const int cap = std::atoi(arg.c_str()); cap > 0) {
      std::erase_if(tile_counts, [cap](int n) { return n > cap; });
    }
  }

  const Platform platform(20, 4);
  std::cout << "== Fig 6: independent tasks, ratio to the area bound on "
               "(20 CPU, 4 GPU) ==\n";

  struct Row {
    int tiles = 0;
    long long tasks = 0;
    double hp = 0.0;
    double dual = 0.0;
    double heft = 0.0;
  };
  // One slot per (kernel, N) cell, filled in parallel, read in grid order.
  std::vector<Row> rows(kernels.size() * tile_counts.size());
  util::parallel_for(rows.size(), threads, [&](std::size_t cell) {
    const std::string& kernel = kernels[cell / tile_counts.size()];
    const int tiles = tile_counts[cell % tile_counts.size()];
    TaskGraph graph;
    if (kernel == "cholesky") {
      graph = cholesky_dag(tiles);
    } else if (kernel == "qr") {
      graph = qr_dag(tiles);
    } else {
      graph = lu_dag(tiles);
    }
    const Instance inst = graph.to_instance();
    const double bound = area_bound_value(inst.tasks(), platform);

    Row& row = rows[cell];
    row.tiles = tiles;
    row.tasks = static_cast<long long>(inst.size());
    row.hp = heteroprio(inst.tasks(), platform).makespan() / bound;
    row.dual = dualhp(inst.tasks(), platform).makespan() / bound;
    row.heft = heft_independent(inst.tasks(), platform).makespan() / bound;
  });

  for (std::size_t k = 0; k < kernels.size(); ++k) {
    util::Table table({"N", "tasks", "HeteroPrio", "DualHP", "HEFT"}, 4);
    for (std::size_t j = 0; j < tile_counts.size(); ++j) {
      const Row& row = rows[k * tile_counts.size() + j];
      table.row().cell(static_cast<long long>(row.tiles)).cell(row.tasks)
          .cell(row.hp).cell(row.dual).cell(row.heft);
    }
    std::cout << "\n-- " << kernels[k] << " --\n";
    table.print(std::cout);
  }
  std::cout << "\npaper Fig 6: HeteroPrio and DualHP close to 1 for large N; "
               "HeteroPrio better for N < 20; HEFT worst.\n";

  if (!trace_path.empty()) {
    // Representative cell: first kernel, largest N, HeteroPrio with a live
    // event recorder.
    const int tiles = tile_counts.back();
    TaskGraph graph = kernels.front() == "cholesky" ? cholesky_dag(tiles)
                      : kernels.front() == "qr"    ? qr_dag(tiles)
                                                   : lu_dag(tiles);
    const Instance inst = graph.to_instance();
    obs::EventRecorder recorder;
    HeteroPrioOptions hp_options;
    hp_options.sink = &recorder;
    (void)heteroprio(inst.tasks(), platform, hp_options);
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "cannot write " << trace_path << '\n';
      return 1;
    }
    out << obs::chrome_trace_from_events(recorder.events(), platform,
                                         inst.tasks());
    std::cerr << "wrote trace " << trace_path << " (" << recorder.size()
              << " events)\n";
  }
  return 0;
}
