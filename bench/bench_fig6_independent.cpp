// Fig 6 of the paper: independent tasks. The task sets of Cholesky/QR/LU
// at tile counts N = 4..64 are scheduled (ignoring dependencies) by
// HeteroPrio, DualHP and HEFT on (20 CPUs, 4 GPUs); each makespan is
// normalized by the area bound.
//
// Expected shape: HeteroPrio and DualHP -> 1 for large N; HeteroPrio wins
// for N below ~20; HEFT is clearly worse throughout.
//
// Usage: bench_fig6_independent [kernel] [maxN]

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/dualhp.hpp"
#include "baselines/heft.hpp"
#include "bounds/area_bound.hpp"
#include "core/heteroprio.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "linalg/qr.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hp;

  std::vector<std::string> kernels = {"cholesky", "qr", "lu"};
  std::vector<int> tile_counts = {4, 6, 8, 10, 12, 16, 20, 24, 32, 40, 48, 64};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "cholesky" || arg == "qr" || arg == "lu") {
      kernels = {arg};
    } else if (const int cap = std::atoi(arg.c_str()); cap > 0) {
      std::erase_if(tile_counts, [cap](int n) { return n > cap; });
    }
  }

  const Platform platform(20, 4);
  std::cout << "== Fig 6: independent tasks, ratio to the area bound on "
               "(20 CPU, 4 GPU) ==\n";

  for (const std::string& kernel : kernels) {
    util::Table table({"N", "tasks", "HeteroPrio", "DualHP", "HEFT"}, 4);
    for (int tiles : tile_counts) {
      TaskGraph graph;
      if (kernel == "cholesky") {
        graph = cholesky_dag(tiles);
      } else if (kernel == "qr") {
        graph = qr_dag(tiles);
      } else {
        graph = lu_dag(tiles);
      }
      const Instance inst = graph.to_instance();
      const double bound = area_bound_value(inst.tasks(), platform);

      const double hp_ratio =
          heteroprio(inst.tasks(), platform).makespan() / bound;
      const double dual_ratio = dualhp(inst.tasks(), platform).makespan() / bound;
      const double heft_ratio =
          heft_independent(inst.tasks(), platform).makespan() / bound;

      table.row().cell(static_cast<long long>(tiles))
          .cell(static_cast<long long>(inst.size()))
          .cell(hp_ratio).cell(dual_ratio).cell(heft_ratio);
    }
    std::cout << "\n-- " << kernel << " --\n";
    table.print(std::cout);
  }
  std::cout << "\npaper Fig 6: HeteroPrio and DualHP close to 1 for large N; "
               "HeteroPrio better for N < 20; HEFT worst.\n";
  return 0;
}
