// Extension experiment: robustness across platform shapes. The paper
// evaluates one node (20 CPUs, 4 GPUs); the theory covers (1,1), (m,1) and
// (m,n). This bench sweeps the CPU:GPU ratio on the Cholesky workload
// (DAG and independent variants) to show the algorithms' behavior is not an
// artifact of one shape: HeteroPrio stays closest to the bound throughout,
// and the gap to HEFT widens as the platform gets more heterogeneous
// (more CPUs per GPU = more affinity decisions to get right).
//
// Usage: bench_platform_sweep [-jN|serial]
//
// The shapes fan out over a thread pool; every shape computes its own row
// into a pre-allocated slot from nothing but its coordinates, so the output
// is byte-identical to a serial run.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/dualhp.hpp"
#include "baselines/heft.hpp"
#include "bounds/area_bound.hpp"
#include "bounds/dag_lower_bound.hpp"
#include "core/heteroprio.hpp"
#include "core/heteroprio_dag.hpp"
#include "dag/ranking.hpp"
#include "linalg/cholesky.hpp"
#include "perf/parallel_args.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace hp;
  const int tiles = 20;

  int threads = 0;  // all cores
  for (int i = 1; i < argc; ++i) {
    perf::consume_parallel_arg(argv[i], threads);
  }

  std::cout << "== Platform sweep: Cholesky N=" << tiles
            << ", ratios to the lower bound ==\n";
  util::Table table({"platform", "HP (dag)", "HEFT (dag)", "DualHP (dag)",
                     "HP (indep)", "DualHP (indep)", "HEFT (indep)"},
                    3);

  const std::vector<std::pair<int, int>> shapes = {
      {1, 1}, {4, 1}, {8, 1}, {8, 2}, {20, 4}, {40, 4}, {16, 8}, {60, 12}};

  struct Row {
    double hp_dag, heft_dag, dual_dag, hp_ind, dual_ind, heft_ind;
  };
  std::vector<Row> rows(shapes.size());
  util::parallel_for(shapes.size(), threads, [&](std::size_t idx) {
    const auto& [cpus, gpus] = shapes[idx];
    const Platform platform(cpus, gpus);
    TaskGraph graph = cholesky_dag(tiles);
    assign_priorities(graph, RankScheme::kMin);
    const double dag_lb = dag_lower_bound(graph, platform).value();

    const double hp_dag = heteroprio_dag(graph, platform).makespan();
    const double heft_dag =
        heft(graph, platform, {.rank = RankScheme::kMin}).makespan();
    const double dual_dag = dualhp_dag(graph, platform).makespan();

    const Instance inst = graph.to_instance();
    const double indep_lb = area_bound_value(inst.tasks(), platform);
    const double hp_ind = heteroprio(inst.tasks(), platform).makespan();
    const double dual_ind = dualhp(inst.tasks(), platform).makespan();
    const double heft_ind = heft_independent(inst.tasks(), platform).makespan();

    rows[idx] = Row{hp_dag / dag_lb,  heft_dag / dag_lb, dual_dag / dag_lb,
                    hp_ind / indep_lb, dual_ind / indep_lb,
                    heft_ind / indep_lb};
  });

  for (std::size_t idx = 0; idx < shapes.size(); ++idx) {
    const auto& [cpus, gpus] = shapes[idx];
    const Row& row = rows[idx];
    table.row()
        .cell("(" + std::to_string(cpus) + "," + std::to_string(gpus) + ")")
        .cell(row.hp_dag).cell(row.heft_dag).cell(row.dual_dag)
        .cell(row.hp_ind).cell(row.dual_ind).cell(row.heft_ind);
  }
  table.print(std::cout);
  std::cout << "\nHeteroPrio's guarantees cover every row (phi for (1,1), "
               "1+phi for (m,1), 2+sqrt(2)\nfor (m,n)); measured ratios stay "
               "far below them on realistic workloads.\n";
  return 0;
}
