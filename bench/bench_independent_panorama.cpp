// Extension experiment: the full independent-task algorithm spectrum on the
// Fig 6 workloads — the three §6.1 algorithms plus the knapsack-DP dual
// approximation ([3]'s family) and the online greedy rules (Imreh's class
// [14]). Each value is the ratio to the area bound.
//
// Expected ordering: HeteroPrio ~ DualDP <= DualHP << online rules and
// HEFT; the threshold rule (pure affinity, no spoliation) collapses when
// the affinity split mismatches the platform's capacity.

#include <iostream>

#include "baselines/dualdp.hpp"
#include "baselines/dualhp.hpp"
#include "baselines/heft.hpp"
#include "baselines/online_greedy.hpp"
#include "bounds/area_bound.hpp"
#include "core/heteroprio.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "linalg/qr.hpp"
#include "util/table.hpp"

int main() {
  using namespace hp;
  const Platform platform(20, 4);

  std::cout << "== Independent tasks: algorithm panorama, ratio to the area "
               "bound on (20 CPU, 4 GPU) ==\n";

  struct Kernel {
    const char* name;
    TaskGraph (*build)(int, const TimingModel&);
  };
  for (const Kernel& kernel : {Kernel{"cholesky", &cholesky_dag},
                               Kernel{"qr", &qr_dag}, Kernel{"lu", &lu_dag}}) {
    util::Table table({"N", "HeteroPrio", "DualHP", "DualDP", "HEFT",
                       "online-eft", "online-threshold", "online-balance"},
                      3);
    for (int tiles : {6, 10, 16, 24, 40, 64}) {
      const Instance inst =
          kernel.build(tiles, TimingModel::chameleon_960()).to_instance();
      const double bound = area_bound_value(inst.tasks(), platform);
      auto ratio = [&](const Schedule& s) { return s.makespan() / bound; };

      table.row().cell(static_cast<long long>(tiles))
          .cell(ratio(heteroprio(inst.tasks(), platform)))
          .cell(ratio(dualhp(inst.tasks(), platform)))
          .cell(ratio(dualdp(inst.tasks(), platform)))
          .cell(ratio(heft_independent(inst.tasks(), platform)))
          .cell(ratio(online_greedy(inst.tasks(), platform,
                                    {OnlineRule::kEft, 1.0})))
          .cell(ratio(online_greedy(inst.tasks(), platform,
                                    {OnlineRule::kThreshold, 1.0})))
          .cell(ratio(online_greedy(inst.tasks(), platform,
                                    {OnlineRule::kBalance, 1.0})));
    }
    std::cout << "\n-- " << kernel.name << " --\n";
    table.print(std::cout);
  }
  std::cout << "\nHeteroPrio matches the best-in-class quality at a fraction "
               "of the decision cost\n(cf. bench_scheduler_overhead); pure "
               "affinity without spoliation (online-threshold)\nhas no "
               "guarantee and shows it.\n";
  return 0;
}
