// Extension experiment: sensitivity to communication costs.
//
// The paper's model ignores transfers; this bench reintroduces them (PCIe
// boundary crossings, see comm_model.hpp) and sweeps the bandwidth. The
// result exposes a real limitation of pure affinity scheduling: HeteroPrio's
// queue is communication-oblivious, so as transfers get costlier its
// boundary traffic starts to dominate, while HEFT+comm (which prices
// transfers into every EFT decision) stays almost flat and overtakes it
// around realistic PCIe bandwidths. This is exactly the locality gap later
// HeteroPrio work (LAHeteroPrio) addresses.
//
// Usage: bench_comm_sensitivity [-jN|serial]
//
// The (kernel, bandwidth) cells fan out over a thread pool; every cell
// computes its row into a pre-allocated slot from nothing but its
// coordinates, so the output is byte-identical to a serial run.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bounds/dag_lower_bound.hpp"
#include "comm/comm_sched.hpp"
#include "core/heteroprio_dag.hpp"
#include "dag/ranking.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/qr.hpp"
#include "perf/parallel_args.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace hp;
  const Platform platform(20, 4);

  int threads = 0;  // all cores
  for (int i = 1; i < argc; ++i) {
    perf::consume_parallel_arg(argv[i], threads);
  }

  std::cout << "== Communication sensitivity: Cholesky/QR N=24, tile payload "
               "7.03 MB, ratio to the\n   zero-communication lower bound ==\n";
  util::Table table({"kernel", "bandwidth (MB/ms)", "HeteroPrio+comm",
                     "(transfer ms)", "LA-HeteroPrio (w=8)", "HEFT+comm"},
                    3);

  struct Kernel {
    const char* name;
    TaskGraph (*build)(int, const TimingModel&);
  };
  const std::vector<Kernel> kernels = {{"cholesky", &cholesky_dag},
                                       {"qr", &qr_dag}};
  const std::vector<double> bandwidths = {1e9, 48.0, 12.0, 3.0, 1.0};

  struct Row {
    double hp_ratio, transfer_ms, la_ratio, heft_ratio;
  };
  std::vector<Row> rows(kernels.size() * bandwidths.size());
  util::parallel_for(rows.size(), threads, [&](std::size_t idx) {
    const Kernel& kernel = kernels[idx / bandwidths.size()];
    const double bandwidth = bandwidths[idx % bandwidths.size()];
    TaskGraph graph = kernel.build(24, TimingModel::chameleon_960());
    assign_priorities(graph, RankScheme::kMin);
    const auto payloads = uniform_payloads(graph);
    const double lb = dag_lower_bound(graph, platform).value();

    CommModel comm;
    comm.bandwidth_mb_per_ms = bandwidth;
    comm.latency_ms = bandwidth >= 1e9 ? 0.0 : 0.02;
    HeteroPrioCommStats stats;
    const double hp_ms =
        heteroprio_comm(graph, platform, comm, payloads, &stats).makespan();
    const double la_ms =
        heteroprio_comm(graph, platform, comm, payloads, nullptr,
                        {.locality_window = 8})
            .makespan();
    const double heft_ms =
        heft_comm(graph, platform, comm, payloads, {.rank = RankScheme::kMin})
            .makespan();
    rows[idx] =
        Row{hp_ms / lb, stats.transfer_time_total, la_ms / lb, heft_ms / lb};
  });

  for (std::size_t idx = 0; idx < rows.size(); ++idx) {
    const Kernel& kernel = kernels[idx / bandwidths.size()];
    const double bandwidth = bandwidths[idx % bandwidths.size()];
    const Row& row = rows[idx];
    table.row().cell(kernel.name)
        .cell(bandwidth >= 1e9 ? std::string("inf")
                               : util::format_double(bandwidth, 0))
        .cell(row.hp_ratio).cell(row.transfer_ms)
        .cell(row.la_ratio).cell(row.heft_ratio);
  }
  table.print(std::cout);
  std::cout << "\nWith free communication HeteroPrio wins (the paper's "
               "setting); as bandwidth drops, the\ncommunication-oblivious "
               "affinity queue pays for its boundary crossings and HEFT+comm"
               "\n(locality-aware EFT) takes over — the gap that motivated "
               "locality-aware HeteroPrio\nvariants in follow-up work.\n";
  return 0;
}
