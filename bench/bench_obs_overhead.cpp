// Observability overhead budget — emits BENCH_obs.json (schema
// "hp-bench-obs/v1", see docs/benchmarks.md): paired instrumented-vs-
// disabled throughput of the HeteroPrio engine on a large independent
// instance and the Cholesky DAG, with the tolerated overhead budget
// recorded in the document. `hp_sched perf-check --in BENCH_obs.json`
// enforces the budget.
//
// Usage: bench_obs_overhead [--quick] [--out FILE] [--reps K]
//                           [--budget X]
//   --quick       n = 10000, N = 10 tiles, 3 reps; finishes in seconds
//                 (this is what the `perf`-labeled CTest smoke runs)
//   --out FILE    where to write the JSON (default: BENCH_obs.json)
//   --budget X    overhead budget recorded in the document (default 0.02)

#include <cstdlib>
#include <iostream>
#include <string>

#include "perf/perf_obs.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hp;

  perf::PerfObsOptions options;
  options.verbose = true;
  bool quick = false;
  std::string out_path = "BENCH_obs.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
      options.independent_n = 10000;
      options.cholesky_tiles = 10;
      options.repetitions = 3;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--reps" && i + 1 < argc) {
      options.repetitions = std::atoi(argv[++i]);
    } else if (arg == "--budget" && i + 1 < argc) {
      options.budget = std::atof(argv[++i]);
    } else {
      std::cerr << "unknown argument '" << arg << "'\n";
      return 2;
    }
  }

  const perf::PerfObsBaseline baseline = perf::run_obs_overhead(options);

  util::Table table(
      {"workload", "n", "baseline t/s", "instrumented t/s", "overhead %"}, 3);
  for (const perf::PerfObsSeries& s : baseline.series) {
    table.row().cell(s.workload).cell(static_cast<long long>(s.n))
        .cell(s.baseline_tasks_per_sec).cell(s.instrumented_tasks_per_sec)
        .cell(s.overhead_fraction * 100.0);
  }
  std::cout << "== Observability overhead (" << baseline.platform.cpus()
            << " CPU, " << baseline.platform.gpus() << " GPU model) ==\n";
  table.print(std::cout);

  const std::string json = perf::perf_obs_to_json(baseline);
  std::string error;
  if (!perf::validate_perf_obs_json(json, &error)) {
    std::cerr << "emitted document fails schema validation: " << error << '\n';
    return 1;
  }
  if (!perf::write_perf_obs_json(baseline, out_path)) {
    std::cerr << "cannot write " << out_path << '\n';
    return 1;
  }
  std::cout << "wrote " << out_path << '\n';

  // The quick smoke runs on loaded CI machines where a 2% gate would be all
  // noise; it validates the schema and the pairing machinery but leaves
  // budget enforcement to the full run and `hp_sched perf-check`.
  if (!quick && !perf::check_obs_budget(json, 0.0, &error)) {
    std::cerr << "budget check failed: " << error << '\n';
    return 1;
  }
  return 0;
}
