// Extension experiment: the Fast Multipole Method — the workload HeteroPrio
// was originally designed for (§1, ScalFMM on StarPU). The FMM DAG mixes
// massively GPU-friendly near-field (P2P), moderately accelerated transfer
// (M2L) and CPU-competitive tree passes — the exact affinity spread the
// algorithm exploits. Also compares the flat-tree and binary-tree QR DAGs
// (different shapes, same kernels class).

#include <iostream>

#include "baselines/dualhp.hpp"
#include "baselines/heft.hpp"
#include "bounds/dag_lower_bound.hpp"
#include "core/heteroprio_dag.hpp"
#include "dag/ranking.hpp"
#include "linalg/fmm.hpp"
#include "linalg/qr.hpp"
#include "util/table.hpp"

namespace {

using namespace hp;

void run_row(hp::util::Table& table, const char* label, TaskGraph& graph,
             const Platform& platform) {
  assign_priorities(graph, RankScheme::kMin);
  const double lb = dag_lower_bound(graph, platform).value();
  HeteroPrioStats stats;
  const double hp_ms = heteroprio_dag(graph, platform, {}, &stats).makespan();
  const double heft_ms =
      heft(graph, platform, {.rank = RankScheme::kMin}).makespan();
  const double dual_ms = dualhp_dag(graph, platform).makespan();
  table.row().cell(label).cell(static_cast<long long>(graph.size()))
      .cell(hp_ms / lb).cell(static_cast<long long>(stats.spoliations))
      .cell(heft_ms / lb).cell(dual_ms / lb);
}

}  // namespace

int main() {
  const Platform platform(20, 4);
  std::cout << "== FMM and QR-tree extension workloads on (20 CPU, 4 GPU), "
               "ratio to lower bound ==\n";
  util::Table table({"workload", "tasks", "HeteroPrio", "(spol)", "HEFT",
                     "DualHP"},
                    3);

  for (int depth : {3, 4, 5}) {
    FmmParams params;
    params.depth = depth;
    TaskGraph g = fmm_dag(params);
    const std::string label = "fmm octree d=" + std::to_string(depth);
    run_row(table, label.c_str(), g, platform);
  }
  for (int depth : {5, 6}) {
    FmmParams params;
    params.depth = depth;
    params.branching = 4;
    TaskGraph g = fmm_dag(params);
    const std::string label = "fmm quadtree d=" + std::to_string(depth);
    run_row(table, label.c_str(), g, platform);
  }
  for (int tiles : {16, 32}) {
    TaskGraph flat = qr_dag(tiles);
    const std::string flat_label = "qr flat N=" + std::to_string(tiles);
    run_row(table, flat_label.c_str(), flat, platform);
    TaskGraph tree = qr_binary_dag(tiles);
    const std::string tree_label = "qr binary N=" + std::to_string(tiles);
    run_row(table, tree_label.c_str(), tree, platform);
  }
  table.print(std::cout);
  std::cout << "\nHeteroPrio's affinity queue shines on FMM: the CPU side "
               "absorbs the tree passes\nwhile the GPUs drain P2P/M2L; the "
               "binary-tree QR has a shorter critical path, easing\nthe "
               "mid-range for every scheduler.\n";
  return 0;
}
