// Table 1 of the paper: acceleration factors for the Cholesky kernels
// (tile size 960), plus the full kernel timing table used by every other
// experiment in this repository.

#include <iostream>

#include "linalg/kernel_timings.hpp"
#include "util/table.hpp"

int main() {
  using namespace hp;
  const TimingModel model = TimingModel::chameleon_960();

  std::cout << "== Table 1: acceleration factors for Cholesky kernels "
               "(tile 960) ==\n";
  util::Table table1({"", "DPOTRF", "DTRSM", "DSYRK", "DGEMM"}, 2);
  table1.row().cell("GPU / 1 core")
      .cell(model.accel(KernelKind::kPotrf))
      .cell(model.accel(KernelKind::kTrsm))
      .cell(model.accel(KernelKind::kSyrk))
      .cell(model.accel(KernelKind::kGemm));
  table1.print(std::cout);
  std::cout << "paper: 1.72, 8.72, 26.96, 28.80\n\n";

  std::cout << "== Full kernel timing model (substitution for the Chameleon "
               "measurements, see DESIGN.md) ==\n";
  util::Table full({"kernel", "cpu (ms)", "gpu (ms)", "accel"}, 3);
  const KernelKind kinds[] = {
      KernelKind::kPotrf, KernelKind::kTrsm,  KernelKind::kSyrk,
      KernelKind::kGemm,  KernelKind::kGeqrt, KernelKind::kOrmqr,
      KernelKind::kTsqrt, KernelKind::kTsmqr, KernelKind::kGetrf,
      KernelKind::kGessm, KernelKind::kTstrf, KernelKind::kSsssm};
  for (KernelKind kind : kinds) {
    const KernelTiming t = model.timing(kind);
    full.row().cell(kernel_name(kind)).cell(t.cpu).cell(t.gpu).cell(t.accel());
  }
  full.print(std::cout);
  return 0;
}
