// Scheduler overhead (the complexity claim of §1/§3): time to compute a
// complete schedule, and the derived per-task decision cost, for HeteroPrio
// vs DualHP vs HEFT on random independent instances and on the Cholesky DAG.
// HeteroPrio's per-decision cost must stay sublinear in the ready-set size
// (it pops the ends of an ordered structure), which is why it is viable
// inside a runtime system.

#include <benchmark/benchmark.h>

#include "baselines/dualhp.hpp"
#include "baselines/heft.hpp"
#include "core/heteroprio.hpp"
#include "core/heteroprio_dag.hpp"
#include "dag/ranking.hpp"
#include "linalg/cholesky.hpp"
#include "model/generators.hpp"
#include "util/rng.hpp"

namespace {

using namespace hp;

Instance make_instance(std::size_t tasks) {
  util::Rng rng(12345);
  UniformGenParams params;
  params.num_tasks = tasks;
  return uniform_instance(params, rng);
}

void BM_HeteroPrioIndependent(benchmark::State& state) {
  const Instance inst = make_instance(static_cast<std::size_t>(state.range(0)));
  const Platform platform(20, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(heteroprio(inst.tasks(), platform));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HeteroPrioIndependent)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_DualHpIndependent(benchmark::State& state) {
  const Instance inst = make_instance(static_cast<std::size_t>(state.range(0)));
  const Platform platform(20, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dualhp(inst.tasks(), platform));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DualHpIndependent)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_HeftIndependent(benchmark::State& state) {
  const Instance inst = make_instance(static_cast<std::size_t>(state.range(0)));
  const Platform platform(20, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(heft_independent(inst.tasks(), platform));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HeftIndependent)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_HeteroPrioCholeskyDag(benchmark::State& state) {
  TaskGraph graph = cholesky_dag(static_cast<int>(state.range(0)));
  assign_priorities(graph, RankScheme::kMin);
  const Platform platform(20, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(heteroprio_dag(graph, platform));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(graph.size()));
}
BENCHMARK(BM_HeteroPrioCholeskyDag)->Arg(8)->Arg(16)->Arg(32);

void BM_DualHpCholeskyDag(benchmark::State& state) {
  TaskGraph graph = cholesky_dag(static_cast<int>(state.range(0)));
  assign_priorities(graph, RankScheme::kMin);
  const Platform platform(20, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dualhp_dag(graph, platform));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(graph.size()));
}
BENCHMARK(BM_DualHpCholeskyDag)->Arg(8)->Arg(16)->Arg(32);

void BM_HeftCholeskyDag(benchmark::State& state) {
  TaskGraph graph = cholesky_dag(static_cast<int>(state.range(0)));
  const Platform platform(20, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(heft(graph, platform, {.rank = RankScheme::kMin}));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(graph.size()));
}
BENCHMARK(BM_HeftCholeskyDag)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
