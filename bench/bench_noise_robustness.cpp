// Noise robustness — the motivation of §1: "nodes have many shared
// resources and exhibit complex memory access patterns that render the
// precise estimation of the duration of tasks extremely difficult", which
// "favors dynamic strategies". This experiment (not a paper figure)
// quantifies it: schedulers decide with estimated times while tasks run for
// lognormal-perturbed actual times. HeteroPrio adapts online (spoliation
// included); HEFT and DualHP plans are replayed statically.
//
// Reported: makespan normalized by the clairvoyant HeteroPrio makespan
// (HeteroPrio run directly on the actual times), averaged over seeds.

#include <iostream>
#include <vector>

#include "core/heteroprio_dag.hpp"
#include "dag/ranking.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/qr.hpp"
#include "runtime/stf_runtime.hpp"
#include "sched/executor.hpp"
#include "baselines/dualhp.hpp"
#include "baselines/heft.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace hp;

std::vector<Task> perturb(std::span<const Task> tasks, double sigma,
                          std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Task> actuals(tasks.begin(), tasks.end());
  for (Task& t : actuals) {
    t.cpu_time *= rng.lognormal(0.0, sigma);
    t.gpu_time *= rng.lognormal(0.0, sigma);
  }
  return actuals;
}

}  // namespace

int main() {
  const Platform platform(20, 4);
  constexpr int kSeeds = 5;

  std::cout << "== Noise robustness: decisions on estimates, execution on "
               "lognormal(sigma) actuals ==\n"
               "(values: makespan / clairvoyant-HeteroPrio makespan, mean "
               "over " << kSeeds << " seeds)\n\n";

  util::Table table({"kernel", "N", "sigma", "HeteroPrio (online)",
                     "HEFT (static replay)", "DualHP (static replay)"},
                    3);

  struct Kernel {
    const char* name;
    TaskGraph (*build)(int, const TimingModel&);
  };
  for (const Kernel& kernel : {Kernel{"cholesky", &cholesky_dag},
                               Kernel{"qr", &qr_dag}}) {
    for (int tiles : {16, 32}) {
      TaskGraph graph = kernel.build(tiles, TimingModel::chameleon_960());
      assign_priorities(graph, RankScheme::kMin);
      const Schedule heft_plan = heft(graph, platform, {.rank = RankScheme::kMin});
      const Schedule dual_plan = dualhp_dag(graph, platform);

      for (double sigma : {0.0, 0.1, 0.2, 0.4}) {
        std::vector<double> hp_ratio, heft_ratio, dual_ratio;
        for (int seed = 1; seed <= kSeeds; ++seed) {
          const auto actuals =
              perturb(graph.tasks(), sigma, static_cast<std::uint64_t>(seed));

          // Clairvoyant reference: HeteroPrio with exact knowledge.
          TaskGraph oracle = kernel.build(tiles, TimingModel::chameleon_960());
          for (std::size_t i = 0; i < oracle.size(); ++i) {
            oracle.task(static_cast<TaskId>(i)).cpu_time = actuals[i].cpu_time;
            oracle.task(static_cast<TaskId>(i)).gpu_time = actuals[i].gpu_time;
          }
          oracle.finalize();
          assign_priorities(oracle, RankScheme::kMin);
          const double reference = heteroprio_dag(oracle, platform).makespan();

          HeteroPrioOptions hp_options;
          hp_options.actual_times = actuals;
          hp_ratio.push_back(
              heteroprio_dag(graph, platform, hp_options).makespan() /
              reference);
          heft_ratio.push_back(
              execute_static_plan(heft_plan, graph, platform, actuals)
                  .makespan() /
              reference);
          dual_ratio.push_back(
              execute_static_plan(dual_plan, graph, platform, actuals)
                  .makespan() /
              reference);
          if (sigma == 0.0) break;  // deterministic, one seed is enough
        }
        table.row().cell(kernel.name).cell(static_cast<long long>(tiles))
            .cell(sigma).cell(util::mean(hp_ratio))
            .cell(util::mean(heft_ratio)).cell(util::mean(dual_ratio));
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected: the online scheduler stays near the clairvoyant "
               "reference as sigma grows,\nwhile static replays degrade — "
               "the paper's argument for dynamic runtime scheduling.\n";
  return 0;
}
