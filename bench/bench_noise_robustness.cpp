// Noise robustness — the motivation of §1: "nodes have many shared
// resources and exhibit complex memory access patterns that render the
// precise estimation of the duration of tasks extremely difficult", which
// "favors dynamic strategies". This experiment (not a paper figure)
// quantifies it: schedulers decide with estimated times while tasks run for
// lognormal-perturbed actual times. HeteroPrio adapts online (spoliation
// included); HEFT and DualHP plans are replayed statically.
//
// Reported: makespan normalized by the clairvoyant HeteroPrio makespan
// (HeteroPrio run directly on the actual times), averaged over seeds.
//
// The (kernel, N, sigma) cells are independent; they are fanned across a
// thread pool and gathered in grid order. Every perturbation seed is
// derived from the cell coordinates (not from submission order), so the
// output is byte-identical for any thread count (`serial` or `-jN`).
//
// With `--faults SPEC` (a fault::parse_spec string, e.g.
// "crashes=1,taskfail=0.02,retries=3") a deterministic fault plan is
// injected on top of the noise in every cell: HeteroPrio recovers online in
// the engine, the static plans go through the failover replay. The horizon
// and seed of each cell's plan are derived from the cell coordinates, so
// determinism across thread counts is preserved.
//
// Usage: bench_noise_robustness [-jN|serial] [--trace FILE] [--faults SPEC]

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/export_chrome.hpp"
#include "obs/recorder.hpp"

#include "core/heteroprio_dag.hpp"
#include "dag/ranking.hpp"
#include "fault/fault_plan.hpp"
#include "fault/replay.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/qr.hpp"
#include "perf/parallel_args.hpp"
#include "runtime/stf_runtime.hpp"
#include "sched/executor.hpp"
#include "baselines/dualhp.hpp"
#include "baselines/heft.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace hp;

std::vector<Task> perturb(std::span<const Task> tasks, double sigma,
                          std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Task> actuals(tasks.begin(), tasks.end());
  for (Task& t : actuals) {
    t.cpu_time *= rng.lognormal(0.0, sigma);
    t.gpu_time *= rng.lognormal(0.0, sigma);
  }
  return actuals;
}

struct Kernel {
  const char* name;
  TaskGraph (*build)(int, const TimingModel&);
};

}  // namespace

int main(int argc, char** argv) {
  const Platform platform(20, 4);
  constexpr int kSeeds = 5;

  int threads = 0;
  std::string trace_path;
  fault::FaultSpec fault_spec;
  bool with_faults = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--faults" && i + 1 < argc) {
      std::string error;
      if (!fault::parse_spec(argv[++i], &fault_spec, &error)) {
        std::cerr << "--faults: " << error << '\n';
        return 2;
      }
      with_faults = true;
    } else {
      perf::consume_parallel_arg(arg, threads);
    }
  }

  std::cout << "== Noise robustness: decisions on estimates, execution on "
               "lognormal(sigma) actuals ==\n"
               "(values: makespan / clairvoyant-HeteroPrio makespan, mean "
               "over " << kSeeds << " seeds)\n\n";

  const std::vector<Kernel> kernels = {Kernel{"cholesky", &cholesky_dag},
                                       Kernel{"qr", &qr_dag}};
  const std::vector<int> tile_counts = {16, 32};
  const std::vector<double> sigmas = {0.0, 0.1, 0.2, 0.4};

  struct Row {
    double hp = 0.0;
    double heft = 0.0;
    double dual = 0.0;
  };
  std::vector<Row> rows(kernels.size() * tile_counts.size() * sigmas.size());
  util::parallel_for(rows.size(), threads, [&](std::size_t cell) {
    const std::size_t si = cell % sigmas.size();
    const std::size_t ti = (cell / sigmas.size()) % tile_counts.size();
    const std::size_t ki = cell / (sigmas.size() * tile_counts.size());
    const Kernel& kernel = kernels[ki];
    const int tiles = tile_counts[ti];
    const double sigma = sigmas[si];

    TaskGraph graph = kernel.build(tiles, TimingModel::chameleon_960());
    assign_priorities(graph, RankScheme::kMin);
    const Schedule heft_plan = heft(graph, platform, {.rank = RankScheme::kMin});
    const Schedule dual_plan = dualhp_dag(graph, platform);

    std::vector<double> hp_ratio, heft_ratio, dual_ratio;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      // Seed from the cell coordinates so every thread count draws the
      // exact same perturbation for this (kernel, N, sigma, seed) cell.
      const auto actuals = perturb(
          graph.tasks(), sigma,
          util::seed_from_cell({ki, static_cast<std::uint64_t>(tiles), si,
                                static_cast<std::uint64_t>(seed)}));

      // Clairvoyant reference: HeteroPrio with exact knowledge.
      TaskGraph oracle = kernel.build(tiles, TimingModel::chameleon_960());
      for (std::size_t i = 0; i < oracle.size(); ++i) {
        oracle.task(static_cast<TaskId>(i)).cpu_time = actuals[i].cpu_time;
        oracle.task(static_cast<TaskId>(i)).gpu_time = actuals[i].gpu_time;
      }
      oracle.finalize();
      assign_priorities(oracle, RankScheme::kMin);
      const double reference = heteroprio_dag(oracle, platform).makespan();

      fault::FaultPlan plan;
      if (with_faults) {
        fault::FaultSpec spec = fault_spec;
        spec.horizon = reference;
        spec.seed = util::seed_from_cell(
            {ki, static_cast<std::uint64_t>(tiles), si,
             static_cast<std::uint64_t>(seed)},
            /*salt=*/0x6661756c74ULL);  // "fault"
        plan = fault::FaultPlan::generate(spec, platform);
      }

      HeteroPrioOptions hp_options;
      hp_options.actual_times = actuals;
      if (with_faults) hp_options.faults = &plan;
      hp_ratio.push_back(
          heteroprio_dag(graph, platform, hp_options).makespan() /
          reference);
      if (with_faults) {
        heft_ratio.push_back(fault::execute_plan_with_faults(
                                 heft_plan, graph, platform, plan, actuals)
                                 .schedule.makespan() /
                             reference);
        dual_ratio.push_back(fault::execute_plan_with_faults(
                                 dual_plan, graph, platform, plan, actuals)
                                 .schedule.makespan() /
                             reference);
      } else {
        heft_ratio.push_back(
            execute_static_plan(heft_plan, graph, platform, actuals)
                .makespan() /
            reference);
        dual_ratio.push_back(
            execute_static_plan(dual_plan, graph, platform, actuals)
                .makespan() /
            reference);
      }
      if (sigma == 0.0 && !with_faults) break;  // deterministic single seed
    }
    rows[cell] = Row{util::mean(hp_ratio), util::mean(heft_ratio),
                     util::mean(dual_ratio)};
  });

  util::Table table({"kernel", "N", "sigma", "HeteroPrio (online)",
                     "HEFT (static replay)", "DualHP (static replay)"},
                    3);
  std::size_t cell = 0;
  for (const Kernel& kernel : kernels) {
    for (int tiles : tile_counts) {
      for (double sigma : sigmas) {
        const Row& row = rows[cell++];
        table.row().cell(kernel.name).cell(static_cast<long long>(tiles))
            .cell(sigma).cell(row.hp).cell(row.heft).cell(row.dual);
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected: the online scheduler stays near the clairvoyant "
               "reference as sigma grows,\nwhile static replays degrade — "
               "the paper's argument for dynamic runtime scheduling.\n";

  if (!trace_path.empty()) {
    // Representative noisy online run: Cholesky N=16, sigma=0.4, seed 1.
    TaskGraph graph = cholesky_dag(16, TimingModel::chameleon_960());
    assign_priorities(graph, RankScheme::kMin);
    const auto actuals =
        perturb(graph.tasks(), 0.4, util::seed_from_cell({0, 16, 3, 1}));
    obs::EventRecorder recorder;
    HeteroPrioOptions hp_options;
    hp_options.actual_times = actuals;
    hp_options.sink = &recorder;
    (void)heteroprio_dag(graph, platform, hp_options);
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "cannot write " << trace_path << '\n';
      return 1;
    }
    out << obs::chrome_trace_from_events(recorder.events(), platform,
                                         graph.tasks());
    std::cerr << "wrote trace " << trace_path << " (" << recorder.size()
              << " events)\n";
  }
  return 0;
}
