// DAG performance baseline — emits BENCH_dag.json (schema
// "hp-bench-dag/v2", see docs/benchmarks.md): end-to-end
// schedule-construction throughput of the full pipeline (tiled DAG ->
// priorities -> scheduler) for HeteroPrio, HEFT and DualHP on the paper's
// Cholesky/QR/LU workloads at N in {10, 20, 40, 60} tiles, plus the
// speedups of the incremental HeteroPrio engine and the gap-indexed HEFT
// over their reference implementations at the largest N of each kernel.
//
// Usage: bench_dag_perf [--quick] [--out FILE] [--reps K]
//   --quick       N in {4, 8} only, 2 reps; finishes in seconds
//                 (this is what the `perf`-labeled CTest smoke runs)
//   --out FILE    where to write the JSON (default: BENCH_dag.json)

#include <cstdlib>
#include <iostream>
#include <string>

#include "perf/perf_dag.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hp;

  perf::PerfDagOptions options;
  options.verbose = true;
  std::string out_path = "BENCH_dag.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      options.tile_counts = {4, 8};
      options.repetitions = 2;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--reps" && i + 1 < argc) {
      options.repetitions = std::atoi(argv[++i]);
    } else {
      std::cerr << "unknown argument '" << arg << "'\n";
      return 2;
    }
  }

  const perf::PerfDagBaseline baseline = perf::run_perf_dag(options);

  util::Table table({"kernel", "N", "tasks", "algorithm", "seconds",
                     "tasks/sec"},
                    4);
  for (const perf::PerfDagSeries& s : baseline.series) {
    table.row().cell(s.kernel).cell(s.tiles)
        .cell(static_cast<long long>(s.n)).cell(s.algorithm)
        .cell(s.seconds).cell(s.tasks_per_sec);
  }
  std::cout << "== DAG perf baseline (" << baseline.platform.cpus()
            << " CPU, " << baseline.platform.gpus() << " GPU model) ==\n";
  table.print(std::cout);
  for (const perf::PerfDagSpeedup& s : baseline.speedups) {
    std::cout << s.algorithm << " speedup vs reference on " << s.kernel
              << " N=" << s.tiles << " (" << s.n << " tasks): "
              << util::format_double(s.value, 2) << "x\n";
  }

  if (!perf::write_perf_dag_json(baseline, out_path)) {
    std::cerr << "cannot write " << out_path << '\n';
    return 1;
  }
  std::string error;
  if (!perf::validate_perf_dag_json(perf::perf_dag_to_json(baseline),
                                    options.kernels, options.tile_counts,
                                    &error)) {
    std::cerr << "internal error: emitted baseline is invalid: " << error
              << '\n';
    return 1;
  }
  std::cout << "wrote " << out_path << '\n';
  return 0;
}
