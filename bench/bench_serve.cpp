// Service baseline — emits BENCH_serve.json (schema "hp-bench-serve/v1",
// see docs/benchmarks.md): a worker-count sweep of the multi-tenant
// scheduling service under a saturating in-process client load (sustained
// req/s, p50/p99 enqueue-to-response latency) plus a deliberately
// overloaded arm that must shed through the admission watermark with zero
// silent drops. `hp_sched perf-check --in BENCH_serve.json` re-validates
// the document's invariants.
//
// Usage: bench_serve [--quick] [--out FILE] [--reps K] [--requests N]
//   --quick       64-task requests, 24 per client, 2 reps; finishes in
//                 seconds (this is what the `perf`-labeled CTest smoke runs)
//   --out FILE    where to write the JSON (default: BENCH_serve.json)

#include <cstdlib>
#include <iostream>
#include <string>

#include "perf/perf_serve.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hp;

  perf::PerfServeOptions options;
  options.verbose = true;
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      options.tasks_per_request = 64;
      options.requests_per_client = 24;
      options.repetitions = 2;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--reps" && i + 1 < argc) {
      options.repetitions = std::atoi(argv[++i]);
    } else if (arg == "--requests" && i + 1 < argc) {
      options.requests_per_client = std::atoi(argv[++i]);
    } else {
      std::cerr << "unknown argument '" << arg << "'\n";
      return 2;
    }
  }

  const perf::PerfServeBaseline baseline = perf::run_perf_serve(options);

  util::Table table({"arm", "workers", "submitted", "completed", "rejected",
                     "req/s", "p50 ms", "p99 ms"},
                    3);
  for (const perf::PerfServeSeries& s : baseline.series) {
    table.row().cell(s.label).cell(s.workers).cell(s.submitted)
        .cell(s.completed).cell(s.rejected).cell(s.requests_per_sec)
        .cell(s.p50_latency_ms).cell(s.p99_latency_ms);
  }
  std::cout << "== Scheduling service under client load ("
            << baseline.platform.cpus() << " CPU, "
            << baseline.platform.gpus() << " GPU model, "
            << baseline.tasks_per_request << " tasks/request) ==\n";
  table.print(std::cout);

  const std::string json = perf::perf_serve_to_json(baseline);
  std::string error;
  if (!perf::validate_perf_serve_json(json, &error)) {
    std::cerr << "emitted document fails schema validation: " << error
              << '\n';
    return 1;
  }
  if (!perf::write_perf_serve_json(baseline, out_path)) {
    std::cerr << "cannot write " << out_path << '\n';
    return 1;
  }
  std::cout << "wrote " << out_path << '\n';
  return 0;
}
