// Fig 4 of the paper: the task set T2 on n = 6k homogeneous processors.
// The optimal packing has makespan n while the worst list order reaches
// 2n-1 — the gap that drives the Theorem 14 lower-bound family.

#include <iostream>

#include "baselines/graham.hpp"
#include "util/table.hpp"
#include "worstcase/graham_gadget.hpp"

int main() {
  using namespace hp;

  std::cout << "== Fig 4: optimal packing vs worst list schedule of the T2 "
               "set on n = 6k processors ==\n";
  util::Table table({"k", "n (procs)", "tasks", "optimal", "worst list",
                     "LPT", "worst/opt", "Graham bound 2-1/n"},
                    4);
  for (int k : {1, 2, 4, 8, 16, 32}) {
    const GrahamGadget g = graham_gadget(k);
    // Optimal: verify the explicit packing really balances to n everywhere.
    std::vector<double> load(static_cast<std::size_t>(g.machines), 0.0);
    for (std::size_t t = 0; t < g.durations.size(); ++t) {
      load[static_cast<std::size_t>(g.optimal_assignment[t])] += g.durations[t];
    }
    double opt = 0.0;
    for (double l : load) opt = std::max(opt, l);

    const double worst =
        list_schedule_homogeneous(worst_order_durations(g), g.machines).makespan;
    const double lpt = lpt_schedule_homogeneous(g.durations, g.machines).makespan;

    table.row().cell(static_cast<long long>(k))
        .cell(static_cast<long long>(g.machines))
        .cell(static_cast<long long>(g.durations.size()))
        .cell(opt).cell(worst).cell(lpt).cell(worst / opt)
        .cell(2.0 - 1.0 / g.machines);
  }
  table.print(std::cout);
  std::cout << "\npaper: worst list order achieves 2n-1 vs optimal n; the "
               "ratio tends to 2 as k grows.\n";
  return 0;
}
