// Online-runtime baseline — emits BENCH_online.json (schema
// "hp-bench-online/v1", see docs/benchmarks.md): an arrival-rate sweep of
// the rolling-horizon runtime (makespan stretch over the batch engine,
// deadline-miss rate, shed fraction, re-plan throughput) plus a
// deliberately saturating arm that must finish in degraded operation with
// zero silent drops. `hp_sched perf-check --in BENCH_online.json`
// re-validates the document's invariants.
//
// Usage: bench_online [--quick] [--out FILE] [--reps K] [--n TASKS]
//   --quick       n = 5000, 2 reps; finishes in seconds (this is what the
//                 `perf`-labeled CTest smoke runs)
//   --out FILE    where to write the JSON (default: BENCH_online.json)

#include <cstdlib>
#include <iostream>
#include <string>

#include "perf/perf_online.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hp;

  perf::PerfOnlineOptions options;
  options.verbose = true;
  std::string out_path = "BENCH_online.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      options.independent_n = 5000;
      options.repetitions = 2;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--reps" && i + 1 < argc) {
      options.repetitions = std::atoi(argv[++i]);
    } else if (arg == "--n" && i + 1 < argc) {
      options.independent_n =
          static_cast<std::size_t>(std::atoll(argv[++i]));
    } else {
      std::cerr << "unknown argument '" << arg << "'\n";
      return 2;
    }
  }

  const perf::PerfOnlineBaseline baseline = perf::run_perf_online(options);

  util::Table table({"arm", "rate", "stretch", "miss rate", "shed",
                     "tasks/s", "final mode"},
                    3);
  for (const perf::PerfOnlineSeries& s : baseline.series) {
    table.row().cell(s.label).cell(s.rate).cell(s.makespan_stretch)
        .cell(s.deadline_miss_rate).cell(s.shed_fraction)
        .cell(s.replan_tasks_per_sec).cell(s.final_mode);
  }
  std::cout << "== Online runtime under arrival pressure ("
            << baseline.platform.cpus() << " CPU, "
            << baseline.platform.gpus() << " GPU model) ==\n";
  table.print(std::cout);

  const std::string json = perf::perf_online_to_json(baseline);
  std::string error;
  if (!perf::validate_perf_online_json(json, &error)) {
    std::cerr << "emitted document fails schema validation: " << error
              << '\n';
    return 1;
  }
  if (!perf::write_perf_online_json(baseline, out_path)) {
    std::cerr << "cannot write " << out_path << '\n';
    return 1;
  }
  std::cout << "wrote " << out_path << '\n';
  return 0;
}
