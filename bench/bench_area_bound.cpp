// Scaling of the area-bound computation (§4.2): the closed-form LP solution
// is O(T log T) — cheap enough to serve as the normalizer of every
// experiment, and as an online lower-bound oracle inside a runtime.

#include <benchmark/benchmark.h>

#include "bounds/area_bound.hpp"
#include "bounds/exact_opt.hpp"
#include "model/generators.hpp"
#include "util/rng.hpp"

namespace {

using namespace hp;

void BM_AreaBound(benchmark::State& state) {
  util::Rng rng(777);
  UniformGenParams params;
  params.num_tasks = static_cast<std::size_t>(state.range(0));
  const Instance inst = uniform_instance(params, rng);
  const Platform platform(20, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(area_bound_value(inst.tasks(), platform));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AreaBound)->Arg(1000)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_AreaBoundFullSolution(benchmark::State& state) {
  util::Rng rng(778);
  UniformGenParams params;
  params.num_tasks = static_cast<std::size_t>(state.range(0));
  const Instance inst = uniform_instance(params, rng);
  const Platform platform(20, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(area_bound(inst.tasks(), platform));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AreaBoundFullSolution)->Arg(1000)->Arg(100000);

void BM_ExactOptimalSmall(benchmark::State& state) {
  util::Rng rng(779);
  UniformGenParams params;
  params.num_tasks = static_cast<std::size_t>(state.range(0));
  const Instance inst = uniform_instance(params, rng);
  const Platform platform(2, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact_optimal_makespan(inst.tasks(), platform));
  }
}
BENCHMARK(BM_ExactOptimalSmall)->Arg(8)->Arg(10)->Arg(12);

}  // namespace

BENCHMARK_MAIN();
