// Fig 7 of the paper: DAG scheduling. Seven algorithm variants
// (HeteroPrio avg/min, HEFT avg/min, DualHP avg/min/fifo) on the Cholesky,
// QR and LU DAGs for N = 4..64, normalized by the dependency-aware lower
// bound.
//
// Expected shape: everyone is near the bound for small and large N; in the
// middle range HeteroPrio (especially -min) stays within ~30% of the bound
// while each other algorithm degrades on at least one kernel.
//
// Usage: bench_fig7_dags [kernel] [maxN] [-jN|serial] [--trace FILE]

#include <iostream>
#include <map>

#include "sweep/dag_sweep.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hp;
  using namespace hp::bench;

  const SweepOptions options = sweep_options_from_args(argc, argv);
  const std::vector<SweepRow> rows = run_dag_sweep(options);
  maybe_write_sweep_csv(rows, "fig7");
  maybe_write_sweep_trace(options);

  const std::vector<std::string> algos = {
      "HeteroPrio-avg", "HeteroPrio-min", "HEFT-avg", "HEFT-min",
      "DualHP-avg",     "DualHP-min",     "DualHP-fifo"};

  std::cout << "== Fig 7: DAGs, makespan ratio to the lower bound on "
               "(20 CPU, 4 GPU) ==\n";
  for (const std::string& kernel : options.kernels) {
    // (tiles, algo) -> ratio
    std::map<int, std::map<std::string, double>> grid;
    for (const SweepRow& row : rows) {
      if (row.kernel == kernel) grid[row.tiles][row.algorithm] = row.ratio;
    }
    std::vector<std::string> headers = {"N"};
    headers.insert(headers.end(), algos.begin(), algos.end());
    util::Table table(headers, 3);
    for (const auto& [tiles, by_algo] : grid) {
      table.row().cell(static_cast<long long>(tiles));
      for (const std::string& algo : algos) table.cell(by_algo.at(algo));
    }
    std::cout << "\n-- " << kernel << " --\n";
    table.print(std::cout);
  }
  std::cout << "\npaper Fig 7: HeteroPrio (esp. min) best in the mid range "
               "(N in 10..40), within ~30% of the (optimistic) bound.\n";
  return 0;
}
