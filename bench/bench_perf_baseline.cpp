// Core performance baseline — emits BENCH_core.json (schema
// "hp-bench-core/v2", see docs/benchmarks.md): schedule-construction
// throughput (tasks/sec) for HeteroPrio, DualHP and HEFT on independent
// uniform instances at n in {1e3, 1e4, 1e5}, the speedup of the optimized
// HeteroPrio engine over the pre-optimization reference implementation, and
// the end-to-end wall-clock of the parallel DAG sweep.
//
// Usage: bench_perf_baseline [--quick] [--out FILE] [--reps K]
//                            [--threads N] [--serial-sweep]
//   --quick       n = 1000 only, 2 reps, tiny sweep; finishes in seconds
//                 (this is what the `perf`-labeled CTest smoke runs)
//   --out FILE    where to write the JSON (default: BENCH_core.json)

#include <cstdlib>
#include <iostream>
#include <string>

#include "perf/perf_baseline.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hp;

  perf::PerfBaselineOptions options;
  options.verbose = true;
  std::string out_path = "BENCH_core.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      options.sizes = {1000};
      options.repetitions = 2;
      options.sweep_tiles = {4, 8};
      options.parallel_sizes = {1000};
      options.parallel_threads = {1, 2};
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--reps" && i + 1 < argc) {
      options.repetitions = std::atoi(argv[++i]);
    } else if (arg == "--threads" && i + 1 < argc) {
      options.sweep_threads = std::atoi(argv[++i]);
    } else if (arg == "--serial-sweep") {
      options.sweep_threads = 1;
    } else {
      std::cerr << "unknown argument '" << arg << "'\n";
      return 2;
    }
  }

  const perf::PerfBaseline baseline = perf::run_perf_baseline(options);

  util::Table table({"algorithm", "n", "seconds", "tasks/sec"}, 4);
  for (const perf::PerfSeries& s : baseline.series) {
    table.row().cell(s.algorithm).cell(static_cast<long long>(s.n))
        .cell(s.seconds).cell(s.tasks_per_sec);
  }
  std::cout << "== Core perf baseline (" << baseline.platform.cpus()
            << " CPU, " << baseline.platform.gpus() << " GPU model) ==\n";
  table.print(std::cout);
  if (baseline.speedup_n != 0) {
    std::cout << "HeteroPrio speedup vs reference engine at n="
              << baseline.speedup_n << ": "
              << util::format_double(baseline.speedup_vs_reference, 2)
              << "x\n";
  }
  if (baseline.sweep_wall_seconds >= 0.0) {
    std::cout << "DAG sweep: " << baseline.sweep_rows << " rows in "
              << util::format_double(baseline.sweep_wall_seconds, 3)
              << " s on " << baseline.sweep_threads << " threads\n";
  }

  const std::string json = perf::perf_baseline_to_json(baseline);
  std::string error;
  if (!perf::validate_perf_baseline_json(json, options.sizes, &error,
                                         options.parallel_sizes,
                                         options.parallel_threads)) {
    std::cerr << "emitted document fails schema validation: " << error << '\n';
    return 1;
  }
  if (!perf::write_perf_baseline_json(baseline, out_path)) {
    std::cerr << "cannot write " << out_path << '\n';
    return 1;
  }
  std::cout << "wrote " << out_path << '\n';
  return 0;
}
