// SIMD micro-bench for the SoA hot-path primitives: batched priority-key
// packing (model/task_soa.hpp, SSE2 vs scalar) and the range-scaled packed
// key sort (util/key_sort.hpp) vs comparator std::sort. These isolate the
// two batched kernels the engines lean on, so a toolchain or flag change
// that silently drops the vectorized path shows up here first.
//
// Registered in CTest under the `simd` label so sanitizer jobs can exclude
// it (-LE simd): instrumented builds de-vectorize and the relative numbers
// stop meaning anything there.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "model/task_soa.hpp"
#include "util/arena.hpp"
#include "util/key_sort.hpp"
#include "util/rng.hpp"

namespace {

using namespace hp;

std::vector<double> random_accels(std::size_t n) {
  util::Rng rng(987);
  std::vector<double> accel(n);
  for (auto& a : accel) a = rng.uniform(0.05, 40.0);
  return accel;
}

void BM_PackKeysScalar(benchmark::State& state) {
  const auto accel = random_accels(static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint64_t> out(accel.size());
  for (auto _ : state) {
    soa::pack_descending_keys_scalar(accel, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PackKeysScalar)->Arg(1000)->Arg(100000);

void BM_PackKeysBatched(benchmark::State& state) {
  const auto accel = random_accels(static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint64_t> out(accel.size());
  for (auto _ : state) {
    soa::pack_descending_keys(accel, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PackKeysBatched)->Arg(1000)->Arg(100000);

std::vector<util::KeyId> random_keys(std::size_t n) {
  // Packed doubles, not raw u64 noise: this is the clustered key
  // distribution that motivated the range-scaled bucketing.
  const auto accel = random_accels(n);
  std::vector<util::KeyId> keys(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = util::KeyId{soa::descending_key(accel[i]),
                          static_cast<std::uint32_t>(i)};
  }
  return keys;
}

void BM_SortComparator(benchmark::State& state) {
  const auto keys = random_keys(static_cast<std::size_t>(state.range(0)));
  std::vector<util::KeyId> work(keys.size());
  for (auto _ : state) {
    std::copy(keys.begin(), keys.end(), work.begin());
    std::sort(work.begin(), work.end(),
              [](const util::KeyId& a, const util::KeyId& b) {
                return a.key != b.key ? a.key < b.key : a.id < b.id;
              });
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortComparator)->Arg(1000)->Arg(100000);

void BM_SortRangeScaledBuckets(benchmark::State& state) {
  const auto keys = random_keys(static_cast<std::size_t>(state.range(0)));
  std::vector<util::KeyId> work(keys.size());
  util::Arena& arena = util::scratch_arena();
  for (auto _ : state) {
    const util::ArenaScope scope(arena);
    std::copy(keys.begin(), keys.end(), work.begin());
    util::sort_key_id(work, arena);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortRangeScaledBuckets)->Arg(1000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
