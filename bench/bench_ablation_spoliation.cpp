// Ablation study of HeteroPrio's design choices (DESIGN.md §4):
//   1. spoliation on vs off — the mechanism that turns a guarantee-less
//      list scheduler into a (2+sqrt(2))-approximation (§3) and rescues the
//      mid-range DAG performance;
//   2. spoliation victim order — decreasing expected completion time
//      (Algorithm 1) vs decreasing priority (§6.2's DAG refinement);
//   3. ranking scheme sensitivity (avg vs min vs none).
// Run on the Cholesky/QR/LU DAGs at mid-range sizes where the choices
// matter most.

#include <iostream>

#include "bounds/dag_lower_bound.hpp"
#include "core/heteroprio_dag.hpp"
#include "dag/ranking.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "linalg/qr.hpp"
#include "util/table.hpp"

int main() {
  using namespace hp;
  const Platform platform(20, 4);

  struct Kernel {
    const char* name;
    TaskGraph (*build)(int, const TimingModel&);
  };
  const Kernel kernels[] = {
      {"cholesky", &cholesky_dag}, {"qr", &qr_dag}, {"lu", &lu_dag}};

  std::cout << "== Ablation: HeteroPrio design choices on (20 CPU, 4 GPU), "
               "ratios to the lower bound ==\n\n";

  util::Table table({"kernel", "N", "no-spol", "spol+ECT-victim",
                     "spol+prio-victim", "no-rank", "rank-avg", "rank-min"},
                    3);

  for (const Kernel& kernel : kernels) {
    for (int tiles : {10, 14, 18, 24, 32}) {
      TaskGraph graph = kernel.build(tiles, TimingModel::chameleon_960());
      const double lb = dag_lower_bound(graph, platform).value();

      assign_priorities(graph, RankScheme::kMin);
      const double no_spol =
          heteroprio_dag(graph, platform, {.enable_spoliation = false})
              .makespan();
      const double ect_victim =
          heteroprio_dag(graph, platform,
                         {.victim_order = VictimOrder::kCompletionTime})
              .makespan();
      const double prio_victim =
          heteroprio_dag(graph, platform,
                         {.victim_order = VictimOrder::kPriority})
              .makespan();
      const double rank_min = prio_victim;  // same configuration

      assign_priorities(graph, RankScheme::kAvg);
      const double rank_avg = heteroprio_dag(graph, platform).makespan();

      assign_priorities(graph, RankScheme::kFifo);  // zero priorities
      const double no_rank = heteroprio_dag(graph, platform).makespan();

      table.row().cell(kernel.name).cell(static_cast<long long>(tiles))
          .cell(no_spol / lb).cell(ect_victim / lb).cell(prio_victim / lb)
          .cell(no_rank / lb).cell(rank_avg / lb).cell(rank_min / lb);
    }
  }
  table.print(std::cout);
  std::cout << "\nTakeaways: spoliation is the dominant effect (no-spol can "
               "be ~2x the bound);\npriority-ordered victims beat "
               "completion-time order on DAGs; ranking scheme is a\n"
               "second-order effect, with min slightly ahead (as in Fig 7 "
               "of the paper).\n";
  return 0;
}
