// Fig 8 of the paper: equivalent acceleration factors. For each schedule of
// the Fig 7 sweep, A_r = sum(p_i)/sum(q_i) over the tasks completed on
// resource r. Good adequacy = low A_CPU (CPU gets the CPU-friendly tasks)
// and high A_GPU.
//
// Expected shape: HeteroPrio lowest A_CPU, HEFT highest; DualHP in between.
//
// Usage: bench_fig8_equiv_accel [kernel] [maxN]

#include <iostream>
#include <map>

#include "sweep/dag_sweep.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hp;
  using namespace hp::bench;

  SweepOptions options = sweep_options_from_args(argc, argv);
  if (argc <= 1) {
    // Default to a lighter sweep than Fig 7: the metric is stable in N.
    options.tile_counts = {8, 16, 24, 32, 48};
  }
  const std::vector<SweepRow> rows = run_dag_sweep(options);
  maybe_write_sweep_csv(rows, "fig8");

  const std::vector<std::string> algos = {
      "HeteroPrio-avg", "HeteroPrio-min", "HEFT-avg", "HEFT-min",
      "DualHP-avg",     "DualHP-min",     "DualHP-fifo"};

  std::cout << "== Fig 8: equivalent acceleration factor per resource "
               "(A_CPU / A_GPU) ==\n";
  for (const std::string& kernel : options.kernels) {
    std::map<int, std::map<std::string, const SweepRow*>> grid;
    for (const SweepRow& row : rows) {
      if (row.kernel == kernel) grid[row.tiles][row.algorithm] = &row;
    }
    std::vector<std::string> headers = {"N"};
    for (const std::string& algo : algos) headers.push_back(algo);
    util::Table table(headers, 2);
    for (const auto& [tiles, by_algo] : grid) {
      table.row().cell(static_cast<long long>(tiles));
      for (const std::string& algo : algos) {
        const SweepRow* row = by_algo.at(algo);
        table.cell(util::format_double(row->metrics.cpu.equivalent_accel, 2) +
                   " / " +
                   util::format_double(row->metrics.gpu.equivalent_accel, 2));
      }
    }
    std::cout << "\n-- " << kernel << " --\n";
    table.print(std::cout);
  }
  std::cout << "\npaper Fig 8: HeteroPrio assigns the CPU tasks with low "
               "acceleration factors (low A_CPU); HEFT's A_CPU is higher.\n";
  return 0;
}
