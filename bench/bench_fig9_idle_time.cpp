// Fig 9 of the paper: normalized idle time per resource — idle time divided
// by the amount of that resource used in the lower-bound solution. Work
// aborted by spoliation counts as idle (§6.2 footnote), so all algorithms
// are charged the same useful work.
//
// Expected shape: DualHP shows large CPU idle time (its local-makespan
// optimization is too conservative early on); HeteroPrio and HEFT keep idle
// times low.
//
// Usage: bench_fig9_idle_time [kernel] [maxN]

#include <iostream>
#include <map>

#include "sweep/dag_sweep.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hp;
  using namespace hp::bench;

  SweepOptions options = sweep_options_from_args(argc, argv);
  if (argc <= 1) {
    options.tile_counts = {8, 16, 24, 32, 48};
  }
  const std::vector<SweepRow> rows = run_dag_sweep(options);
  maybe_write_sweep_csv(rows, "fig9");

  const std::vector<std::string> algos = {
      "HeteroPrio-avg", "HeteroPrio-min", "HEFT-avg", "HEFT-min",
      "DualHP-avg",     "DualHP-min",     "DualHP-fifo"};

  std::cout << "== Fig 9: normalized idle time (CPU / GPU) ==\n";
  for (const std::string& kernel : options.kernels) {
    std::map<int, std::map<std::string, const SweepRow*>> grid;
    for (const SweepRow& row : rows) {
      if (row.kernel == kernel) grid[row.tiles][row.algorithm] = &row;
    }
    std::vector<std::string> headers = {"N"};
    for (const std::string& algo : algos) headers.push_back(algo);
    util::Table table(headers, 2);
    for (const auto& [tiles, by_algo] : grid) {
      table.row().cell(static_cast<long long>(tiles));
      for (const std::string& algo : algos) {
        const SweepRow* row = by_algo.at(algo);
        // Aborted work counts as idle: add it to the idle numerator.
        const double cpu_idle =
            (row->metrics.cpu.idle_time) /
            std::max(1e-12, row->platform.cpus() * row->lower_bound);
        const double gpu_idle =
            (row->metrics.gpu.idle_time) /
            std::max(1e-12, row->platform.gpus() * row->lower_bound);
        table.cell(util::format_double(cpu_idle, 2) + " / " +
                   util::format_double(gpu_idle, 2));
      }
    }
    std::cout << "\n-- " << kernel << " --\n";
    table.print(std::cout);
  }
  std::cout << "\npaper Fig 9: DualHP's CPU idle time is by far the largest; "
               "HeteroPrio and HEFT stay low on both resources.\n";
  return 0;
}
