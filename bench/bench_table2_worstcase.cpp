// Table 2 of the paper: approximation ratios and worst-case examples.
// Runs HeteroPrio on the adversarial families of Theorems 8, 11 and 14 and
// compares the measured ratio to the theory:
//   (1,1)  bound phi ~ 1.618, tight;
//   (m,1)  bound 1+phi ~ 2.618, tight as m grows;
//   (m,n)  bound 2+sqrt(2) ~ 3.414, family reaching 2+2/sqrt(3) ~ 3.155.

#include <cmath>
#include <iostream>

#include "core/heteroprio.hpp"
#include "util/table.hpp"
#include "worstcase/instances.hpp"

namespace {

hp::util::Table g_table({"platform", "instance", "tasks", "measured ratio",
                         "family limit", "proved upper bound"},
                        4);

void run(const hp::WorstCaseInstance& wc, double proved_bound) {
  using namespace hp;
  const Schedule s = heteroprio(wc.instance.tasks(), wc.platform);
  const double ratio = s.makespan() / wc.optimal_makespan;
  g_table.row()
      .cell("(" + std::to_string(wc.platform.cpus()) + "," +
            std::to_string(wc.platform.gpus()) + ")")
      .cell(wc.instance.name())
      .cell(static_cast<long long>(wc.instance.size()))
      .cell(ratio)
      .cell(wc.theoretical_ratio)
      .cell(proved_bound);
}

}  // namespace

int main() {
  using namespace hp;
  const double phi = kPhi;
  const double upper_mn = 2.0 + std::sqrt(2.0);

  std::cout << "== Table 2: approximation ratios and worst-case examples ==\n";
  run(theorem8_instance(), phi);
  for (int m : {2, 10, 100, 400}) run(theorem11_instance(m, 25), 1.0 + phi);
  for (int k : {1, 2, 4, 6}) run(theorem14_instance(k), upper_mn);
  g_table.print(std::cout);

  std::cout << "\npaper Table 2:\n"
            << "  (1,1): ratio phi = " << util::format_double(phi, 4)
            << ", worst case phi\n"
            << "  (m,1): ratio 1+phi = " << util::format_double(1 + phi, 4)
            << ", worst case 1+phi (asymptotic in m)\n"
            << "  (m,n): ratio 2+sqrt(2) = " << util::format_double(upper_mn, 4)
            << ", worst case 2+2/sqrt(3) = "
            << util::format_double(2 + 2 / std::sqrt(3.0), 4)
            << " (asymptotic in n)\n";
  return 0;
}
