// Extension experiment: k resource types. The paper's setting is 2 types
// (CPU + GPU); [10] studies "unrelated machines of few different types".
// This bench runs the k-type HeteroPrio generalization on a synthetic
// CPU + GPU + accelerator node: each kernel class gets a third timing
// column (an "FPGA-like" device: excellent at the trailing updates, poor at
// panel factorizations, mediocre elsewhere) and we compare against greedy
// EFT and the dual lower bound.

#include <iostream>

#include "linalg/cholesky.hpp"
#include "multi/heteroprio_k.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace hp;
using namespace hp::multi;

/// Third-type time for a kernel: synthetic accelerator profile.
double accelerator_time(const Task& task) {
  switch (task.kind) {
    case KernelKind::kGemm:
    case KernelKind::kSyrk: return task.gpu_time * 0.6;   // better than GPU
    case KernelKind::kTrsm: return task.gpu_time * 1.5;
    case KernelKind::kPotrf: return task.cpu_time * 2.0;  // terrible
    default: return 0.5 * (task.cpu_time + task.gpu_time);
  }
}

}  // namespace

int main() {
  std::cout << "== k-type extension: Cholesky task sets on a CPU+GPU+ACC "
               "node, ratio to the dual lower bound ==\n";
  util::Table table({"N", "tasks", "platform", "HeteroPrio-k", "(spol)",
                     "EFT-k"},
                    3);

  for (int tiles : {8, 12, 16, 24}) {
    const Instance inst = cholesky_dag(tiles).to_instance();
    std::vector<TaskK> tasks;
    for (const Task& t : inst.tasks()) {
      TaskK task_k;
      task_k.time = {t.cpu_time, t.gpu_time, accelerator_time(t)};
      tasks.push_back(task_k);
    }
    for (const std::vector<int>& counts :
         {std::vector<int>{20, 4, 2}, std::vector<int>{10, 2, 4}}) {
      const PlatformK platform(counts);
      const double lb = lower_bound_k(tasks, platform);
      HeteroPrioKStats stats;
      const double hp_ms = heteroprio_k(tasks, platform, {}, &stats).makespan();
      const double eft_ms = eft_k(tasks, platform).makespan();
      table.row().cell(static_cast<long long>(tiles))
          .cell(static_cast<long long>(tasks.size()))
          .cell("(" + std::to_string(counts[0]) + "," +
                std::to_string(counts[1]) + "," + std::to_string(counts[2]) +
                ")")
          .cell(hp_ms / lb).cell(static_cast<long long>(stats.spoliations))
          .cell(eft_ms / lb);
    }
  }
  table.print(std::cout);
  std::cout << "\nThe affinity views generalize cleanly: HeteroPrio-k tracks "
               "the fractional lower bound\nwhile EFT ignores affinities and "
               "drifts; no approximation ratio is proven for k >= 3\n(open "
               "problem — the paper's proofs rely on the two-ended queue).\n";
  return 0;
}
