// Gallery of the paper's adversarial constructions (Thms 8, 11, 14 and the
// Fig 4 Graham gadget): build each instance, run HeteroPrio, and show that
// the measured ratio matches the theory. For the small cases a Gantt chart
// visualizes the adversarial execution.

#include <cmath>
#include <iostream>

#include "baselines/graham.hpp"
#include "core/heteroprio.hpp"
#include "sched/gantt.hpp"
#include "util/table.hpp"
#include "worstcase/graham_gadget.hpp"
#include "worstcase/instances.hpp"

namespace {

void show(const hp::WorstCaseInstance& wc, bool gantt) {
  using namespace hp;
  HeteroPrioStats stats;
  const Schedule s = heteroprio(wc.instance.tasks(), wc.platform, {}, &stats);
  std::cout << wc.instance.name() << "  (" << wc.platform.cpus() << " CPU, "
            << wc.platform.gpus() << " GPU, " << wc.instance.size()
            << " tasks)\n"
            << "  OPT (constructed)     = "
            << util::format_double(wc.optimal_makespan, 4) << '\n'
            << "  HeteroPrio (measured) = "
            << util::format_double(s.makespan(), 4) << '\n'
            << "  HeteroPrio (expected) = "
            << util::format_double(wc.expected_hp_makespan, 4) << '\n'
            << "  ratio                 = "
            << util::format_double(s.makespan() / wc.optimal_makespan, 4)
            << "  (family limit " << util::format_double(wc.theoretical_ratio, 4)
            << ")\n"
            << "  spoliations           = " << stats.spoliations << "\n";
  if (gantt) {
    std::cout << render_gantt(s, wc.platform, {.width = 72});
  }
  std::cout << '\n';
}

}  // namespace

int main() {
  using namespace hp;

  std::cout << "== Theorem 8: 1 CPU + 1 GPU, ratio phi ==\n";
  show(theorem8_instance(), /*gantt=*/true);

  std::cout << "== Theorem 11: m CPUs + 1 GPU, ratio -> 1 + phi ==\n";
  for (int m : {4, 10, 50}) show(theorem11_instance(m, 20), false);

  std::cout << "== Theorem 14: n GPUs + n^2 CPUs, ratio -> 2 + 2/sqrt(3) ==\n";
  for (int k : {1, 2}) show(theorem14_instance(k), false);

  std::cout << "== Fig 4 gadget: list scheduling on homogeneous GPUs ==\n";
  util::Table table({"k", "machines", "optimal", "worst list", "ratio",
                     "Graham bound 2-1/n"});
  for (int k : {1, 2, 4, 8}) {
    const GrahamGadget g = graham_gadget(k);
    const double worst =
        list_schedule_homogeneous(worst_order_durations(g), g.machines).makespan;
    table.row().cell(static_cast<long long>(k))
        .cell(static_cast<long long>(g.machines))
        .cell(static_cast<long long>(g.machines)).cell(worst)
        .cell(worst / g.machines).cell(2.0 - 1.0 / g.machines);
  }
  table.print(std::cout);
  return 0;
}
