// Drive the miniature sequential-task-flow runtime the way an application
// built on StarPU/Chameleon would: register tiles, submit kernels with data
// access modes, let the runtime infer the DAG and schedule it — here a
// tiled Cholesky factorization under imperfect duration estimates.
//
// Usage: ./examples/stf_runtime [tiles] [noise_sigma]

#include <cstdlib>
#include <iostream>
#include <vector>

#include "bounds/dag_lower_bound.hpp"
#include "linalg/kernel_timings.hpp"
#include "runtime/stf_runtime.hpp"
#include "util/table.hpp"

namespace {

using namespace hp;
using namespace hp::runtime;

void submit_cholesky(StfRuntime& rt, int tiles, const TimingModel& model) {
  std::vector<std::vector<DataHandle>> tile(
      static_cast<std::size_t>(tiles),
      std::vector<DataHandle>(static_cast<std::size_t>(tiles), kInvalidData));
  for (int i = 0; i < tiles; ++i) {
    for (int j = 0; j <= i; ++j) {
      tile[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          rt.register_data("A(" + std::to_string(i) + "," + std::to_string(j) + ")");
    }
  }
  auto h = [&](int i, int j) {
    return tile[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
  };
  for (int k = 0; k < tiles; ++k) {
    rt.submit(model.make_task(KernelKind::kPotrf), {RW(h(k, k))});
    for (int i = k + 1; i < tiles; ++i) {
      rt.submit(model.make_task(KernelKind::kTrsm), {R(h(k, k)), RW(h(i, k))});
    }
    for (int i = k + 1; i < tiles; ++i) {
      rt.submit(model.make_task(KernelKind::kSyrk), {R(h(i, k)), RW(h(i, i))});
      for (int j = k + 1; j < i; ++j) {
        rt.submit(model.make_task(KernelKind::kGemm),
                  {R(h(i, k)), R(h(j, k)), RW(h(i, j))});
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int tiles = argc > 1 ? std::atoi(argv[1]) : 16;
  const double sigma = argc > 2 ? std::atof(argv[2]) : 0.2;
  if (tiles < 1 || tiles > 64) {
    std::cerr << "tiles must be in [1, 64]\n";
    return 1;
  }
  const Platform platform(20, 4);
  const TimingModel model = TimingModel::chameleon_960();

  std::cout << "Tiled Cholesky N=" << tiles << " through the STF runtime on "
            << "(20 CPU, 4 GPU), duration noise sigma=" << sigma << "\n\n";

  util::Table table({"policy", "makespan (ms)", "ratio to LB", "spoliations"},
                    3);
  double lb = 0.0;
  for (SchedulerPolicy policy :
       {SchedulerPolicy::kHeteroPrio, SchedulerPolicy::kHeft,
        SchedulerPolicy::kDualHp}) {
    RuntimeOptions options;
    options.policy = policy;
    options.rank = RankScheme::kMin;
    options.noise_sigma = sigma;
    options.noise_seed = 42;
    StfRuntime rt(platform, options);
    submit_cholesky(rt, tiles, model);
    const double makespan = rt.run();
    if (lb == 0.0) {
      // Lower bound on the *actual* instance this seed produced.
      TaskGraph actual_graph = rt.graph();  // copy, then swap in actual times
      for (std::size_t i = 0; i < actual_graph.size(); ++i) {
        actual_graph.task(static_cast<TaskId>(i)).cpu_time =
            rt.actual_times()[i].cpu_time;
        actual_graph.task(static_cast<TaskId>(i)).gpu_time =
            rt.actual_times()[i].gpu_time;
      }
      actual_graph.finalize();
      lb = dag_lower_bound(actual_graph, platform).value();
      std::cout << "tasks: " << rt.num_tasks()
                << ", dependencies: " << rt.graph().num_edges()
                << ", lower bound: " << util::format_double(lb, 1) << " ms\n\n";
    }
    table.row().cell(policy_name(policy)).cell(makespan).cell(makespan / lb)
        .cell(static_cast<long long>(rt.stats().spoliations));
  }
  table.print(std::cout);
  std::cout << "\nHeteroPrio decides online and can spoliate, so it absorbs "
               "the estimation noise;\nHEFT and DualHP plans are replayed "
               "as-is (worker assignment and order kept).\n";
  return 0;
}
