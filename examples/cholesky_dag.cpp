// Schedule a tiled Cholesky factorization DAG (the paper's flagship
// workload) with HeteroPrio on a 20-CPU + 4-GPU node, print per-kernel
// placement statistics, the metrics of Figs 8/9, and a small Gantt chart.
//
// Usage: ./examples/cholesky_dag [tiles]   (default 12)

#include <cstdlib>
#include <iostream>
#include <map>

#include "bounds/dag_lower_bound.hpp"
#include "core/heteroprio_dag.hpp"
#include "dag/ranking.hpp"
#include "linalg/cholesky.hpp"
#include "sched/gantt.hpp"
#include "sched/metrics.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hp;

  const int tiles = argc > 1 ? std::atoi(argv[1]) : 12;
  if (tiles < 1 || tiles > 64) {
    std::cerr << "tiles must be in [1, 64]\n";
    return 1;
  }
  const Platform platform(20, 4);

  TaskGraph graph = cholesky_dag(tiles);
  assign_priorities(graph, RankScheme::kMin);
  std::cout << "Cholesky N=" << tiles << ": " << graph.size() << " tasks, "
            << graph.num_edges() << " dependencies\n";

  HeteroPrioStats stats;
  const Schedule schedule = heteroprio_dag(graph, platform, {}, &stats);
  const DagLowerBound lb = dag_lower_bound(graph, platform);
  const ScheduleMetrics metrics =
      compute_metrics(schedule, graph.tasks(), platform);

  // Where did each kernel kind run? (the affinity split of §2.1)
  std::map<KernelKind, std::pair<int, int>> split;  // kind -> (cpu, gpu)
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const Placement& p = schedule.placement(static_cast<TaskId>(i));
    auto& counts = split[graph.task(static_cast<TaskId>(i)).kind];
    (platform.type_of(p.worker) == Resource::kCpu ? counts.first
                                                  : counts.second)++;
  }
  util::Table split_table({"kernel", "rho", "on CPU", "on GPU"});
  const TimingModel model = TimingModel::chameleon_960();
  for (const auto& [kind, counts] : split) {
    split_table.row().cell(kernel_name(kind)).cell(model.accel(kind))
        .cell(static_cast<long long>(counts.first))
        .cell(static_cast<long long>(counts.second));
  }
  std::cout << "\nKernel placement (HeteroPrio affinity split):\n";
  split_table.print(std::cout);

  std::cout << "\nmakespan          = "
            << util::format_double(schedule.makespan(), 2) << " ms\n"
            << "lower bound       = " << util::format_double(lb.value(), 2)
            << " ms (area " << util::format_double(lb.area, 2) << ", cp "
            << util::format_double(lb.critical_path, 2) << ")\n"
            << "ratio             = "
            << util::format_double(schedule.makespan() / lb.value(), 3) << '\n'
            << "spoliations       = " << stats.spoliations << '\n'
            << "A_CPU (Fig 8)     = "
            << util::format_double(metrics.cpu.equivalent_accel, 2) << '\n'
            << "A_GPU (Fig 8)     = "
            << util::format_double(metrics.gpu.equivalent_accel, 2) << '\n'
            << "CPU idle (Fig 9)  = "
            << util::format_double(
                   normalized_idle(metrics, Resource::kCpu, platform, lb.value()), 3)
            << '\n'
            << "GPU idle (Fig 9)  = "
            << util::format_double(
                   normalized_idle(metrics, Resource::kGpu, platform, lb.value()), 3)
            << '\n';

  if (tiles <= 8) {
    std::cout << "\nGantt:\n" << render_gantt(schedule, platform, {.width = 100});
  }
  return 0;
}
