// Compare all seven scheduler variants of §6.2 (HeteroPrio, HEFT, DualHP
// with their ranking schemes) on a chosen kernel DAG, reporting makespan,
// ratio to the lower bound, spoliation counts and the Fig 8/9 metrics.
//
// Usage: ./examples/scheduler_comparison [cholesky|qr|lu] [tiles]

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "baselines/dualhp.hpp"
#include "baselines/heft.hpp"
#include "bounds/dag_lower_bound.hpp"
#include "core/heteroprio_dag.hpp"
#include "dag/ranking.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "linalg/qr.hpp"
#include "sched/metrics.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hp;

  const std::string kernel = argc > 1 ? argv[1] : "qr";
  const int tiles = argc > 2 ? std::atoi(argv[2]) : 16;
  if (tiles < 1 || tiles > 64) {
    std::cerr << "tiles must be in [1, 64]\n";
    return 1;
  }

  TaskGraph graph;
  if (kernel == "cholesky") {
    graph = cholesky_dag(tiles);
  } else if (kernel == "qr") {
    graph = qr_dag(tiles);
  } else if (kernel == "lu") {
    graph = lu_dag(tiles);
  } else {
    std::cerr << "unknown kernel '" << kernel << "' (cholesky|qr|lu)\n";
    return 1;
  }

  const Platform platform(20, 4);
  const double lb = dag_lower_bound(graph, platform).value();
  std::cout << kernel << " N=" << tiles << ": " << graph.size()
            << " tasks; lower bound = " << util::format_double(lb, 2)
            << " ms on (20 CPU, 4 GPU)\n\n";

  util::Table table(
      {"algorithm", "makespan", "ratio", "spoliations", "A_CPU", "A_GPU"});

  auto report = [&](const std::string& name, const Schedule& s,
                    int spoliations) {
    const ScheduleMetrics m = compute_metrics(s, graph.tasks(), platform);
    table.row().cell(name).cell(s.makespan()).cell(s.makespan() / lb)
        .cell(static_cast<long long>(spoliations))
        .cell(m.cpu.equivalent_accel).cell(m.gpu.equivalent_accel);
  };

  for (RankScheme scheme : {RankScheme::kAvg, RankScheme::kMin}) {
    assign_priorities(graph, scheme);
    HeteroPrioStats stats;
    report(std::string("HeteroPrio-") + rank_scheme_name(scheme),
           heteroprio_dag(graph, platform, {}, &stats), stats.spoliations);
    report(std::string("HEFT-") + rank_scheme_name(scheme),
           heft(graph, platform, {.rank = scheme}), 0);
    report(std::string("DualHP-") + rank_scheme_name(scheme),
           dualhp_dag(graph, platform), 0);
  }
  assign_priorities(graph, RankScheme::kFifo);
  report("DualHP-fifo", dualhp_dag(graph, platform, {.fifo_order = true}), 0);

  table.print(std::cout);
  std::cout << "\n(A_r = equivalent acceleration factor of the tasks placed "
               "on resource r;\n good adequacy = low A_CPU, high A_GPU. "
               "Fig 8 of the paper.)\n";
  return 0;
}
