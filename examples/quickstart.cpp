// Quickstart: schedule a handful of independent tasks with HeteroPrio on a
// small CPU+GPU node, show the resulting Gantt chart and the spoliation
// mechanism in action, and compare against the area-bound lower bound.
//
// Build & run:  ./examples/quickstart

#include <iostream>

#include "bounds/area_bound.hpp"
#include "core/heteroprio.hpp"
#include "model/instance.hpp"
#include "sched/gantt.hpp"
#include "sched/metrics.hpp"
#include "sim/trace.hpp"
#include "util/table.hpp"

int main() {
  using namespace hp;

  // A node with 2 CPU cores and 1 GPU.
  const Platform platform(2, 1);

  // Six independent tasks: (cpu_time, gpu_time). Acceleration factors range
  // from 0.5 (CPU-friendly) to 16 (GPU-friendly).
  Instance inst("quickstart");
  inst.add(Task{16.0, 1.0});  // rho 16  -> GPU work
  inst.add(Task{12.0, 1.0});  // rho 12
  inst.add(Task{8.0, 2.0});   // rho 4
  inst.add(Task{6.0, 2.0});   // rho 3 (will be spoliated by the GPU)
  inst.add(Task{2.0, 4.0});   // rho 0.5 -> CPU work
  inst.add(Task{2.5, 5.0});   // rho 0.5

  std::cout << "Tasks (p = CPU time, q = GPU time, rho = p/q):\n";
  util::Table task_table({"task", "p", "q", "rho"});
  for (std::size_t i = 0; i < inst.size(); ++i) {
    const Task& t = inst[static_cast<TaskId>(i)];
    task_table.row().cell(static_cast<long long>(i)).cell(t.cpu_time)
        .cell(t.gpu_time).cell(t.accel());
  }
  task_table.print(std::cout);

  // Run HeteroPrio with a verbose execution log.
  sim::TimelineLog log(true);
  HeteroPrioOptions options;
  options.log = &log;
  HeteroPrioStats stats;
  const Schedule schedule = heteroprio(inst.tasks(), platform, options, &stats);

  std::cout << "\nExecution log:\n" << log.to_string(platform);

  std::cout << "\nGantt ('.' = work lost to spoliation):\n"
            << render_gantt(schedule, platform, {.width = 80});

  const double bound = area_bound_value(inst.tasks(), platform);
  std::cout << "\narea bound (lower bound on OPT) = "
            << util::format_double(bound, 4) << '\n'
            << "HeteroPrio makespan             = "
            << util::format_double(schedule.makespan(), 4) << '\n'
            << "ratio to area bound             = "
            << util::format_double(schedule.makespan() / bound, 4) << '\n'
            << "spoliations                     = " << stats.spoliations
            << '\n';
  return 0;
}
