#include "online/runtime.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "core/engine_parts.hpp"
#include "dag/ready_tracker.hpp"
#include "model/task_soa.hpp"
#include "obs/profile.hpp"
#include "sim/event_queue.hpp"
#include "sim/worker_pool.hpp"
#include "util/arena.hpp"

namespace hp::online {

const char* mode_name(Mode mode) noexcept {
  switch (mode) {
    case Mode::kHealthy: return "healthy";
    case Mode::kDegraded: return "degraded";
    case Mode::kShedding: return "shedding";
  }
  return "?";
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Simulation event of the online runtime. The first five kinds mirror the
/// batch engine's EngineEvent one to one (same handlers, same same-instant
/// semantics); the last three exist only online.
struct OnlineEvent {
  enum class Kind : std::uint8_t {
    kCompletion,  ///< a worker's running task reaches its end (or fail point)
    kCrash,       ///< permanent loss of `worker`
    kSlowBegin,   ///< straggler window opens on `worker` (`value` = slowdown)
    kSlowEnd,     ///< straggler window closes on `worker`
    kRetry,       ///< backoff elapsed: `task` re-enters the ready queue
    kArrival,     ///< `task` becomes known to the scheduler
    kDeadline,    ///< `task`'s absolute deadline instant
    kTick,        ///< rolling-horizon reschedule tick (`value` = index)
  };
  Kind kind = Kind::kCompletion;
  WorkerId worker = -1;
  TaskId task = kInvalidTask;
  std::uint64_t generation = 0;  ///< stale-event filter after aborts
  double value = 0.0;
};

// Per-task admission state.
constexpr std::uint8_t kNotArrived = 0;
constexpr std::uint8_t kAdmitted = 1;
constexpr std::uint8_t kDeferred = 2;
constexpr std::uint8_t kRejected = 3;

Schedule run_online(std::span<const Task> tasks, const TaskGraph* graph,
                    const Platform& platform, const OnlineOptions& options,
                    OnlineStats* stats) {
  assert(graph == nullptr || graph->tasks().size() == tasks.size());
  const std::span<const Task> actuals =
      options.actual_times.empty() ? tasks : options.actual_times;
  assert(actuals.size() == tasks.size());

  const std::size_t n = tasks.size();
  Schedule schedule(n);
  OnlineStats local;
  local.first_idle_time = kInf;

  util::Arena& arena = util::scratch_arena();
  const util::ArenaScope arena_scope(arena);

  obs::MetricsCollector* const metrics = options.metrics;
  const obs::PhaseScope engine_scope(metrics, obs::Phase::kEngine);
  const obs::Probe probe(options.sink);

  const fault::FaultPlan* plan = options.faults;
  const bool faulty = plan != nullptr && !plan->empty();

  const ArrivalPlan* arrivals =
      (options.arrivals != nullptr && !options.arrivals->empty())
          ? options.arrivals
          : nullptr;
  assert(arrivals == nullptr || arrivals->size() == n);

  VictimOrder victim_order = options.victim_order;
  if (victim_order == VictimOrder::kAuto) {
    victim_order = graph == nullptr ? VictimOrder::kCompletionTime
                                    : VictimOrder::kPriority;
  }

  const soa::TaskSoA soa = [&] {
    const obs::PhaseScope key_scope(metrics, obs::Phase::kKeyBuild);
    return soa::build_task_soa(tasks, arena);
  }();

  std::span<const double> act_cpu = soa.cpu;
  std::span<const double> act_gpu = soa.gpu;
  if (!options.actual_times.empty()) {
    double* ac = arena.alloc<double>(actuals.size());
    double* ag = arena.alloc<double>(actuals.size());
    for (std::size_t i = 0; i < actuals.size(); ++i) {
      ac[i] = actuals[i].cpu_time;
      ag[i] = actuals[i].gpu_time;
    }
    act_cpu = {ac, actuals.size()};
    act_gpu = {ag, actuals.size()};
  }

  sim::WorkerPool pool(platform);
  pool.attach_sink(options.sink);
  sim::EventQueue<OnlineEvent> events;
  const std::span<std::uint64_t> generation =
      arena.alloc_zeroed<std::uint64_t>(
          static_cast<std::size_t>(platform.workers()));

  // Arrival events go in first, in id order, so a batch of same-instant
  // arrivals drains in id order — with everything at t=0 this reproduces
  // the batch engine's pre-loop id-order ready inserts exactly (the
  // bitwise-identity anchor). Fault events follow, preserving the batch
  // engine's relative push order among them.
  for (std::size_t i = 0; i < n; ++i) {
    const double at = arrivals != nullptr ? arrivals->arrival(
                                                static_cast<TaskId>(i))
                                          : 0.0;
    events.push(at, OnlineEvent{OnlineEvent::Kind::kArrival, -1,
                                static_cast<TaskId>(i), 0, 0.0});
  }

  std::span<char> pending_fail;
  std::span<int> failed_attempts;
  if (faulty) {
    pending_fail = arena.alloc_zeroed<char>(
        static_cast<std::size_t>(platform.workers()));
    failed_attempts = arena.alloc_zeroed<int>(n);
    for (const fault::CrashEvent& c : plan->crashes()) {
      if (c.worker < 0 || c.worker >= platform.workers()) continue;
      events.push(c.time, OnlineEvent{OnlineEvent::Kind::kCrash, c.worker,
                                      kInvalidTask, 0, 0.0});
    }
    for (const fault::StragglerWindow& win : plan->stragglers()) {
      if (win.worker < 0 || win.worker >= platform.workers()) continue;
      events.push(win.begin,
                  OnlineEvent{OnlineEvent::Kind::kSlowBegin, win.worker,
                              kInvalidTask, 0, win.slowdown});
      events.push(win.end, OnlineEvent{OnlineEvent::Kind::kSlowEnd,
                                       win.worker, kInvalidTask, 0, 0.0});
    }
  }

  const bool ticks_on = options.reschedule_period > 0.0;
  if (ticks_on) {
    events.push(options.reschedule_period,
                OnlineEvent{OnlineEvent::Kind::kTick, -1, kInvalidTask, 0,
                            0.0});
  }

  detail::ReadyQueue queue(soa, arena);

  // Admission / readiness state. `released` covers dependencies (always set
  // for independent tasks); a task enters the ready structure once it is
  // both released and admitted.
  const std::span<std::uint8_t> state = arena.alloc_zeroed<std::uint8_t>(n);
  std::span<char> released;
  std::optional<ReadyTracker> tracker;
  if (graph != nullptr) {
    tracker.emplace(*graph);
    released = arena.alloc_zeroed<char>(n);
    for (TaskId id : tracker->initially_ready()) {
      released[static_cast<std::size_t>(id)] = 1;
    }
  }
  std::span<char> deadline_missed;
  if (arrivals != nullptr && arrivals->has_deadlines()) {
    deadline_missed = arena.alloc_zeroed<char>(n);
  }
  // Per-task respawn count drives the exponential backoff of repeated
  // straggler rescues; allocated only when detection is on.
  const bool respawn_on = options.straggler_factor > 1.0 && ticks_on;
  std::span<int> respawn_count;
  if (respawn_on) respawn_count = arena.alloc_zeroed<int>(n);

  const detail::VictimLess victim_less{victim_order == VictimOrder::kPriority};
  detail::RunningSet running_set[2] = {
      detail::RunningSet(victim_less,
                         static_cast<std::size_t>(platform.cpus()), arena),
      detail::RunningSet(victim_less,
                         static_cast<std::size_t>(platform.gpus()), arena)};
  const std::span<detail::VictimKey> victim_key =
      arena.alloc_zeroed<detail::VictimKey>(
          static_cast<std::size_t>(platform.workers()));

  // Admission control configuration. Hysteresis: enter shedding at >= high,
  // leave at <= low.
  const bool admission_on = options.watermark_high > 0;
  const std::size_t wm_high = options.watermark_high;
  const std::size_t wm_low =
      admission_on
          ? std::min(options.watermark_low > 0 ? options.watermark_low
                                               : wm_high / 2,
                     wm_high - 1)
          : 0;
  std::vector<TaskId> deferred_fifo;
  std::size_t deferred_head = 0;

  std::size_t completed = 0;
  double now = 0.0;
  Mode mode = Mode::kHealthy;
  std::size_t batch_inserts = 0;  ///< frontier inserts since the last replan

  auto to_mode = [&](Mode m) {
    if (m == mode) return;
    mode = m;
    ++local.mode_changes;
    probe.mode_change(now, static_cast<int>(m));
  };
  // First incident (fault, miss, shed, respawn) permanently leaves healthy.
  auto note_incident = [&] {
    if (mode == Mode::kHealthy) to_mode(Mode::kDegraded);
  };

  auto insert_ready = [&](TaskId id) {
    queue.insert(id);
    probe.ready(now, id);
    ++batch_inserts;
  };

  auto flush_replan = [&] {
    if (batch_inserts == 0) return;
    ++local.replans;
    probe.replan(now, batch_inserts);
    batch_inserts = 0;
  };

  auto admit = [&](TaskId id) {
    state[static_cast<std::size_t>(id)] = kAdmitted;
    ++local.tasks_admitted;
    if (graph == nullptr || released[static_cast<std::size_t>(id)] != 0) {
      insert_ready(id);
    }
  };

  auto abandoned_count = [&]() -> std::size_t {
    return static_cast<std::size_t>(local.recovery.tasks_abandoned);
  };
  auto accounted = [&]() -> std::size_t {
    return completed + local.tasks_rejected + abandoned_count();
  };

  auto handle_arrival = [&](TaskId id) {
    ++local.tasks_arrived;
    probe.task_arrival(now, id);
    const double rel =
        arrivals != nullptr ? arrivals->rel_deadline(id) : 0.0;
    if (rel > 0.0) {
      events.push(now + rel, OnlineEvent{OnlineEvent::Kind::kDeadline, -1,
                                         id, 0, 0.0});
    }
    if (admission_on && mode == Mode::kShedding) {
      // Load shedding: counted, never silently dropped. Retries and crash
      // re-enqueues of already-admitted tasks bypass this gate entirely.
      if (options.shed_policy == ShedPolicy::kReject) {
        state[static_cast<std::size_t>(id)] = kRejected;
        ++local.tasks_rejected;
        probe.task_shed(now, id);
      } else {
        state[static_cast<std::size_t>(id)] = kDeferred;
        ++local.tasks_deferred;
        deferred_fifo.push_back(id);
        probe.task_deferred(now, id);
      }
      return;
    }
    admit(id);
  };

  auto handle_deadline = [&](TaskId id) {
    if (schedule.placement(id).placed()) return;  // finished in time
    deadline_missed[static_cast<std::size_t>(id)] = 1;
    ++local.deadline_misses;
    probe.deadline_miss(now, id);
    note_incident();
  };

  auto start_task = [&](WorkerId w, TaskId id) {
    const Resource res = platform.type_of(w);
    const auto i = static_cast<std::size_t>(id);
    double dt = res == Resource::kCpu ? act_cpu[i] : act_gpu[i];
    if (faulty) {
      const fault::AttemptOutcome outcome =
          plan->attempt_outcome(id, failed_attempts[i]);
      if (outcome.fails) {
        dt *= outcome.fail_fraction;
        pending_fail[static_cast<std::size_t>(w)] = 1;
      }
      dt = plan->finish_time(w, now, dt) - now;
    }
    const double finish = pool.start(w, id, now, dt);
    ++generation[static_cast<std::size_t>(w)];
    events.push(finish,
                OnlineEvent{OnlineEvent::Kind::kCompletion, w, id,
                            generation[static_cast<std::size_t>(w)], 0.0});
    const detail::VictimKey key{now + soa.time_on(id, res), soa.priority[i],
                                id, w};
    victim_key[static_cast<std::size_t>(w)] = key;
    running_set[static_cast<std::size_t>(res)].insert(key);
    probe.start(now, id, w);
  };

  auto release_worker = [&](WorkerId w) -> sim::Running {
    running_set[static_cast<std::size_t>(platform.type_of(w))].erase(
        victim_key[static_cast<std::size_t>(w)]);
    if (faulty) pending_fail[static_cast<std::size_t>(w)] = 0;
    return pool.release_at(w, now);
  };

  auto try_spoliate = [&](WorkerId w) -> bool {
    const obs::PhaseScope scan_scope(metrics, obs::Phase::kSpoliationScan);
    ++local.spoliation_attempts;
    probe.spoliate_attempt(now, w);
    const Resource mine = platform.type_of(w);
    const auto& candidates =
        running_set[static_cast<std::size_t>(other(mine))];
    for (const detail::VictimKey& key : candidates) {
      const double dt = soa.time_on(key.task, mine);
      double believed_finish = key.finish;
      if (faulty && believed_finish <= now) {
        believed_finish = now + soa.time_on(key.task, other(mine));
      }
      if (!detail::strictly_better(now + dt, believed_finish)) continue;
      const WorkerId victim = key.worker;
      const sim::Running aborted = release_worker(victim);
      ++generation[static_cast<std::size_t>(victim)];
      schedule.add_aborted(aborted.task, victim, aborted.start, now);
      ++local.spoliations;
      probe.abort(now, aborted.task, victim);
      probe.spoliate_commit(now, aborted.task, w, victim);
      start_task(w, aborted.task);
      return true;
    }
    return false;
  };

  std::vector<WorkerId> idle_scratch;
  auto dispatch_idle = [&] {
    bool acted = true;
    while (acted) {
      acted = false;
      pool.idle_workers_gpu_first(idle_scratch);
      for (WorkerId w : idle_scratch) {
        if (pool.busy(w)) continue;
        if (!queue.empty()) {
          const TaskId id = platform.type_of(w) == Resource::kGpu
                                ? queue.pop_gpu_end()
                                : queue.pop_cpu_end();
          start_task(w, id);
          acted = true;
        } else {
          local.first_idle_time = std::min(local.first_idle_time, now);
          if (!options.enable_spoliation) continue;
          if (pool.busy_count(other(platform.type_of(w))) == 0) {
            ++local.spoliation_skips;
            probe.spoliate_skip(now, w);
          } else if (try_spoliate(w)) {
            acted = true;
          }
        }
      }
    }
  };

  auto dispatch_and_sample = [&] {
    probe.queue_depth(now, queue.size());
    {
      const obs::PhaseScope dispatch_scope(metrics, obs::Phase::kDispatch);
      dispatch_idle();
    }
    probe.queue_depth(now, queue.size());
  };

  // Post-dispatch mode maintenance. Returns true when parked tasks were
  // re-admitted (they need another dispatch pass at this instant).
  auto update_mode = [&]() -> bool {
    if (!admission_on) return false;
    const std::size_t backlog = queue.size();
    if (mode != Mode::kShedding && backlog >= wm_high) {
      note_incident();  // healthy crosses through degraded, two transitions
      to_mode(Mode::kShedding);
    } else if (mode == Mode::kShedding && backlog <= wm_low) {
      to_mode(Mode::kDegraded);  // hysteresis exit; healthy is gone for good
    }
    bool readmitted = false;
    if (mode != Mode::kShedding) {
      while (deferred_head < deferred_fifo.size() && queue.size() < wm_high) {
        admit(deferred_fifo[deferred_head++]);
        readmitted = true;
      }
      if (queue.size() >= wm_high && deferred_head < deferred_fifo.size()) {
        to_mode(Mode::kShedding);  // refilled to the brim with tasks left over
      }
    }
    return readmitted;
  };

  auto handle_completion = [&](const OnlineEvent& ev) {
    const WorkerId w = ev.worker;
    if (ev.generation != generation[static_cast<std::size_t>(w)]) {
      return;  // stale: the task was spoliated, crashed or respawned away
    }
    if (!pool.busy(w)) return;
    const bool attempt_failed =
        faulty && pending_fail[static_cast<std::size_t>(w)] != 0;
    const sim::Running done = release_worker(w);
    if (attempt_failed) {
      schedule.add_aborted(done.task, w, done.start, now);
      const int failures =
          ++failed_attempts[static_cast<std::size_t>(done.task)];
      ++local.recovery.task_failures;
      probe.task_fail(now, done.task, w, failures - 1);
      note_incident();
      if (failures >= plan->max_attempts()) {
        ++local.recovery.tasks_abandoned;
        return;
      }
      ++local.recovery.task_retries;
      const double delay = plan->backoff_delay(failures);
      if (delay > 0.0) {
        events.push(now + delay, OnlineEvent{OnlineEvent::Kind::kRetry, -1,
                                             done.task, 0, 0.0});
      } else {
        probe.task_retry(now, done.task, failures);
        insert_ready(done.task);
      }
      return;
    }
    schedule.place(done.task, w, done.start, done.finish);
    ++completed;
    probe.complete(now, done.task, w);
    if (tracker.has_value()) {
      const obs::PhaseScope ready_scope(metrics, obs::Phase::kReadyUpdate);
      for (TaskId rel : tracker->complete(done.task)) {
        released[static_cast<std::size_t>(rel)] = 1;
        // Successors enter the frontier only once admitted; deferred or
        // unarrived tasks wait for their admission.
        if (state[static_cast<std::size_t>(rel)] == kAdmitted) {
          insert_ready(rel);
        }
      }
    }
  };

  auto handle_crash = [&](WorkerId w) {
    if (pool.failed(w)) return;
    ++local.recovery.worker_crashes;
    note_incident();
    if (pool.busy(w)) {
      const sim::Running victim = release_worker(w);
      ++generation[static_cast<std::size_t>(w)];
      schedule.add_aborted(victim.task, w, victim.start, now);
      probe.abort(now, victim.task, w);
      // Crash re-enqueue bypasses admission: the task is already admitted
      // and must never be dropped.
      insert_ready(victim.task);
      ++local.recovery.crash_requeues;
    }
    pool.mark_failed(w);
    probe.worker_crash(now, w);
  };

  // Straggler scan at a reschedule tick: abort any attempt overdue by more
  // than straggler_factor x its estimate and re-enqueue the task, under the
  // respawn budget, with the fault layer's exponential backoff when one is
  // configured. Never charges failed_attempts — the outcome draws of the
  // fault plan must not shift.
  auto handle_tick = [&](const OnlineEvent& ev) {
    ++local.reschedule_ticks;
    probe.reschedule_tick(now, static_cast<std::size_t>(ev.value));
    if (respawn_on) {
      for (WorkerId w = 0; w < platform.workers(); ++w) {
        if (options.respawn_budget > 0 &&
            local.recovery.straggler_respawns >= options.respawn_budget) {
          break;
        }
        if (!pool.busy(w)) continue;
        const sim::Running& run = pool.running(w);
        const double est = soa.time_on(run.task, platform.type_of(w));
        if (now <= run.start + options.straggler_factor * est) continue;
        const TaskId task = run.task;
        const sim::Running victim = release_worker(w);
        ++generation[static_cast<std::size_t>(w)];
        schedule.add_aborted(victim.task, w, victim.start, now);
        probe.abort(now, victim.task, w);
        const int idx = ++local.recovery.straggler_respawns;
        probe.straggler_respawn(now, task, w, idx - 1);
        note_incident();
        const int count =
            ++respawn_count[static_cast<std::size_t>(task)];
        const double delay = faulty ? plan->backoff_delay(count) : 0.0;
        if (delay > 0.0) {
          events.push(now + delay, OnlineEvent{OnlineEvent::Kind::kRetry,
                                               -1, task, 0, 0.0});
        } else {
          insert_ready(task);
        }
      }
    }
    if (pool.alive_count() > 0 && accounted() < n) {
      events.push(now + options.reschedule_period,
                  OnlineEvent{OnlineEvent::Kind::kTick, -1, kInvalidTask, 0,
                              ev.value + 1.0});
    }
  };

  // Drain the t=0 arrival batch before the initial dispatch. This mirrors
  // the batch engine's pre-loop ready inserts + first dispatch_and_sample:
  // with every arrival at t=0 the ready structure holds the identical
  // id-order inserts and the remaining event stream (fault events,
  // completions) keeps the batch engine's relative order — the
  // bitwise-identity anchor.
  {
    typename sim::EventQueue<OnlineEvent>::Event ev;
    while (events.pop_if(
        [](const auto& e) {
          return e.time == 0.0 && e.payload.kind == OnlineEvent::Kind::kArrival;
        },
        &ev)) {
      handle_arrival(ev.payload.task);
    }
    flush_replan();
  }
  for (;;) {
    dispatch_and_sample();
    if (!update_mode()) break;
  }
  flush_replan();

  while (accounted() < n) {
    // Earliest pending instant (any event counts; +inf = "none").
    const std::optional<double> next = events.time_if_before(kInf);
    if (!next.has_value()) {
      // Only reachable when faults removed the means to finish (or the
      // platform had no workers to begin with).
      assert((faulty || platform.workers() == 0) &&
             "deadlock: no events but tasks unaccounted");
      break;
    }
    const double t = *next;
    now = t;
    while (!events.empty() && events.top().time == t) {
      const auto ev = events.pop();
      switch (ev.payload.kind) {
        case OnlineEvent::Kind::kCompletion:
          handle_completion(ev.payload);
          break;
        case OnlineEvent::Kind::kCrash:
          handle_crash(ev.payload.worker);
          break;
        case OnlineEvent::Kind::kSlowBegin:
          ++local.recovery.straggler_windows;
          note_incident();
          probe.worker_slow_begin(now, ev.payload.worker, ev.payload.value);
          break;
        case OnlineEvent::Kind::kSlowEnd:
          probe.worker_slow_end(now, ev.payload.worker);
          break;
        case OnlineEvent::Kind::kRetry:
          probe.task_retry(
              now, ev.payload.task,
              faulty ? failed_attempts[static_cast<std::size_t>(
                           ev.payload.task)]
                     : 0);
          insert_ready(ev.payload.task);
          break;
        case OnlineEvent::Kind::kArrival:
          handle_arrival(ev.payload.task);
          break;
        case OnlineEvent::Kind::kDeadline:
          handle_deadline(ev.payload.task);
          break;
        case OnlineEvent::Kind::kTick:
          handle_tick(ev.payload);
          break;
      }
    }
    flush_replan();
    for (;;) {
      dispatch_and_sample();
      if (!update_mode()) break;
    }
    flush_replan();
  }

  // Deadlines that outlive the last placement still count: a shed or
  // abandoned task that never ran misses its deadline even though the run
  // is already over. Drain what is left of the event queue for them.
  while (events.time_if_before(kInf).has_value()) {
    const auto ev = events.pop();
    if (ev.payload.kind != OnlineEvent::Kind::kDeadline) continue;
    now = std::max(now, ev.time);
    handle_deadline(ev.payload.task);
  }

  if (completed + local.tasks_rejected < n) {
    local.recovery.tasks_unfinished =
        static_cast<int>(n - completed - local.tasks_rejected);
    local.recovery.degraded = true;
    probe.run_degraded(
        now, static_cast<std::size_t>(local.recovery.tasks_unfinished));
  }

  local.final_mode = mode;
  if (stats != nullptr) {
    if (!std::isfinite(local.first_idle_time)) {
      local.first_idle_time = schedule.makespan();
    }
    *stats = local;
  }
  return schedule;
}

}  // namespace

Schedule online_run(std::span<const Task> tasks, const Platform& platform,
                    const OnlineOptions& options, OnlineStats* stats) {
  return run_online(tasks, nullptr, platform, options, stats);
}

Schedule online_run_dag(const TaskGraph& graph, const Platform& platform,
                        const OnlineOptions& options, OnlineStats* stats) {
  return run_online(graph.tasks(), &graph, platform, options, stats);
}

}  // namespace hp::online
