#pragma once
// Rolling-horizon online runtime around the HeteroPrio engine.
//
// Tasks arrive over simulated time (online::ArrivalPlan); the runtime
// drives a simulated-time event queue (arrival, completion, crash,
// slow-begin/end, retry, deadline, reschedule-tick) and re-plans
// incrementally: each arrival batch or fault event inserts only the
// affected tasks into the shared double-ended ready structure
// (core/engine_parts.hpp) in O(log n) instead of re-sorting the frontier
// from scratch. On top of the planning loop sits the robustness policy:
//
//  - per-task deadlines with miss accounting (observation only — a missed
//    deadline never changes a decision),
//  - admission control with load shedding once the ready backlog crosses a
//    high watermark (hysteresis: shedding clears at the low watermark);
//    shed tasks are rejected or deferred, counted, never silently dropped,
//  - straggler detection at reschedule ticks that escalates to
//    spoliation/respawn (abort the overdue attempt, re-enqueue the task)
//    under a capped budget, reusing the fault layer's backoff machinery but
//    never charging the task's retry budget,
//  - an explicit degraded-mode state machine healthy -> degraded ->
//    shedding surfaced through obs:: events and counters.
//
// Correctness anchor (regression-tested): a run whose arrivals all occur
// at t=0 with no faults is bitwise-identical to the batch engine — the
// arrival batch drains before the initial dispatch, reproducing the batch
// engine's pre-loop ready inserts, and the main loop is the same code over
// the same structures.

#include <cstdint>
#include <span>

#include "core/heteroprio.hpp"
#include "dag/task_graph.hpp"
#include "online/arrival.hpp"

namespace hp::online {

/// Degraded-mode state machine. kHealthy is left (for good) on the first
/// incident — fault, deadline miss, shed/defer, respawn; kShedding is
/// entered while the ready backlog holds at or above the high watermark and
/// left (back to kDegraded, never kHealthy) at the low watermark.
enum class Mode : std::uint8_t { kHealthy = 0, kDegraded = 1, kShedding = 2 };

/// Stable lowercase name, e.g. "shedding".
[[nodiscard]] const char* mode_name(Mode mode) noexcept;

/// What admission control does with a task arriving while shedding.
enum class ShedPolicy : std::uint8_t {
  kDefer,   ///< park in FIFO order; re-admitted when shedding clears
  kReject,  ///< never admitted; counted in OnlineStats::tasks_rejected
};

struct OnlineOptions {
  // Engine knobs, identical semantics to HeteroPrioOptions.
  bool enable_spoliation = true;
  VictimOrder victim_order = VictimOrder::kAuto;
  std::span<const Task> actual_times = {};
  obs::EventSink* sink = nullptr;
  obs::MetricsCollector* metrics = nullptr;
  const fault::FaultPlan* faults = nullptr;

  /// Arrival stream; null or empty means every task arrives at t=0.
  const ArrivalPlan* arrivals = nullptr;

  /// Period of the rolling-horizon reschedule tick; <= 0 disables ticks.
  /// Ticks run the straggler scan and an extra dispatch pass. In a
  /// fault-free run they never change the schedule (spoliation
  /// profitability only decays as time advances).
  double reschedule_period = 0.0;

  /// Admission control: shedding starts when the ready backlog reaches
  /// `watermark_high` and clears when it drains to `watermark_low`
  /// (default: high / 2). 0 disables admission control entirely.
  std::size_t watermark_high = 0;
  std::size_t watermark_low = 0;
  ShedPolicy shed_policy = ShedPolicy::kDefer;

  /// Straggler respawn: at each reschedule tick, a running attempt overdue
  /// by more than `straggler_factor` x its estimate is aborted and
  /// re-enqueued (spoliation-style rescue). <= 1 disables detection;
  /// `respawn_budget` caps respawns per run (0 = unlimited once enabled).
  double straggler_factor = 0.0;
  int respawn_budget = 0;
};

/// Outcome accounting of one online run. The zero-silent-drop invariant,
/// asserted by tests and the bench: tasks_arrived == n and
/// completed + tasks_rejected + recovery.tasks_unfinished == n (abandoned
/// tasks count toward unfinished, matching the batch engine's convention).
struct OnlineStats {
  std::size_t tasks_arrived = 0;   ///< arrival events processed (== n)
  std::size_t tasks_admitted = 0;  ///< passed admission (incl. re-admitted)
  std::size_t tasks_rejected = 0;  ///< shed under ShedPolicy::kReject
  std::size_t tasks_deferred = 0;  ///< parked under ShedPolicy::kDefer
  std::size_t deadline_misses = 0;
  std::size_t replans = 0;          ///< event batches that changed the frontier
  std::size_t reschedule_ticks = 0;
  std::size_t mode_changes = 0;
  Mode final_mode = Mode::kHealthy;

  // Engine counters, same meaning as HeteroPrioStats.
  double first_idle_time = 0.0;
  int spoliations = 0;
  int spoliation_attempts = 0;
  int spoliation_skips = 0;
  /// Fault recovery, including straggler_respawns.
  fault::RecoveryReport recovery;
};

/// Run the online runtime over independent `tasks`.
[[nodiscard]] Schedule online_run(std::span<const Task> tasks,
                                  const Platform& platform,
                                  const OnlineOptions& options = {},
                                  OnlineStats* stats = nullptr);

/// DAG variant: a task becomes ready once it has arrived, been admitted
/// *and* all its predecessors completed.
[[nodiscard]] Schedule online_run_dag(const TaskGraph& graph,
                                      const Platform& platform,
                                      const OnlineOptions& options = {},
                                      OnlineStats* stats = nullptr);

}  // namespace hp::online
