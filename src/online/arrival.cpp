#include "online/arrival.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "model/generators.hpp"
#include "util/rng.hpp"

namespace hp::online {

namespace {
// Salt separating arrival draws from every other consumer of a seed.
constexpr std::uint64_t kArrivalSalt = 0x617272697665ULL;  // "arrive"
}  // namespace

ArrivalPlan ArrivalPlan::generate(const ArrivalSpec& spec,
                                  std::span<const Task> tasks) {
  ArrivalPlan plan;
  util::Rng rng(util::seed_from_cell({spec.seed}, kArrivalSalt));
  plan.arrivals_ = poisson_arrival_times(tasks.size(), spec.rate, rng);
  plan.rel_deadlines_.assign(tasks.size(), 0.0);
  if (spec.deadline_factor > 0.0) {
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      const double best = std::min(tasks[i].cpu_time, tasks[i].gpu_time);
      plan.rel_deadlines_[i] = spec.deadline_factor * best;
    }
  }
  return plan;
}

void ArrivalPlan::set(TaskId task, double arrival, double rel_deadline) {
  const auto i = static_cast<std::size_t>(task);
  if (i >= arrivals_.size()) resize(i + 1);
  arrivals_[i] = arrival;
  rel_deadlines_[i] = rel_deadline;
}

void ArrivalPlan::resize(std::size_t n) {
  arrivals_.resize(n, 0.0);
  rel_deadlines_.resize(n, 0.0);
}

bool ArrivalPlan::all_at_origin() const noexcept {
  return std::all_of(arrivals_.begin(), arrivals_.end(),
                     [](double t) { return t == 0.0; });
}

bool ArrivalPlan::has_deadlines() const noexcept {
  return std::any_of(rel_deadlines_.begin(), rel_deadlines_.end(),
                     [](double d) { return d > 0.0; });
}

double ArrivalPlan::arrival(TaskId task) const noexcept {
  const auto i = static_cast<std::size_t>(task);
  return i < arrivals_.size() ? arrivals_[i] : 0.0;
}

double ArrivalPlan::rel_deadline(TaskId task) const noexcept {
  const auto i = static_cast<std::size_t>(task);
  return i < rel_deadlines_.size() ? rel_deadlines_[i] : 0.0;
}

std::string ArrivalPlan::to_text() const {
  std::ostringstream oss;
  oss.precision(std::numeric_limits<double>::max_digits10);
  oss << "arrivals v1\n";
  oss << "tasks " << arrivals_.size() << '\n';
  for (std::size_t i = 0; i < arrivals_.size(); ++i) {
    // Tasks at (0, no deadline) stay implicit; from_text re-creates them
    // from the `tasks` count, so the round-trip is exact.
    if (arrivals_[i] == 0.0 && rel_deadlines_[i] == 0.0) continue;
    oss << "arrive " << i << ' ' << arrivals_[i] << ' ' << rel_deadlines_[i]
        << '\n';
  }
  return oss.str();
}

bool ArrivalPlan::from_text(const std::string& text, ArrivalPlan* out,
                            std::string* error) {
  const auto fail = [&](std::size_t line_no, const std::string& why) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + why;
    }
    return false;
  };
  *out = ArrivalPlan{};
  std::istringstream iss(text);
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  while (std::getline(iss, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (!saw_header) {
      std::string version;
      fields >> version;
      if (key != "arrivals" || version != "v1") {
        return fail(line_no, "expected 'arrivals v1' header");
      }
      saw_header = true;
      continue;
    }
    if (key == "tasks") {
      std::size_t n = 0;
      if (!(fields >> n)) return fail(line_no, "bad task count");
      out->resize(n);
    } else if (key == "arrive") {
      std::size_t task = 0;
      double arrival = 0.0;
      double deadline = 0.0;
      if (!(fields >> task >> arrival >> deadline)) {
        return fail(line_no, "bad arrive record");
      }
      if (task >= out->arrivals_.size()) {
        return fail(line_no, "task index out of range");
      }
      if (arrival < 0.0) return fail(line_no, "negative arrival time");
      out->arrivals_[task] = arrival;
      out->rel_deadlines_[task] = deadline;
    } else {
      return fail(line_no, "unknown directive '" + key + "'");
    }
  }
  if (!saw_header) return fail(line_no, "empty document");
  return true;
}

std::string ArrivalPlan::describe() const {
  std::ostringstream oss;
  double last = 0.0;
  std::size_t deadlines = 0;
  for (const double t : arrivals_) last = std::max(last, t);
  for (const double d : rel_deadlines_) {
    if (d > 0.0) ++deadlines;
  }
  oss << "arrival plan: " << arrivals_.size() << " task(s), last arrival t="
      << last << ", " << deadlines << " with deadlines"
      << (all_at_origin() ? " (all at t=0)" : "");
  return oss.str();
}

}  // namespace hp::online
