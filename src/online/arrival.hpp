#pragma once
// Arrival streams for the online runtime.
//
// An ArrivalPlan fixes, before the run starts, when each task becomes
// known to the scheduler (absolute arrival instant, non-negative) and how
// long after its arrival it is still useful (relative deadline; <= 0 means
// no deadline). Like fault::FaultPlan, the plan is deterministic data the
// scheduler only observes through its consequences: a task is invisible
// until its arrival event fires, and a deadline event that finds the task
// incomplete counts a miss without altering any decision.
//
// Generation mirrors the fault layer's discipline: every draw derives from
// the spec seed via util::seed_from_cell, never a shared stream, so a plan
// rebuilt anywhere (tests, fuzz cases, bench grids) is byte-identical.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "model/task.hpp"

namespace hp::online {

/// Generation parameters for ArrivalPlan::generate().
struct ArrivalSpec {
  /// Mean arrivals per time unit of the Poisson process; <= 0 draws an
  /// all-at-t=0 plan (the batch-equivalent degenerate stream).
  double rate = 0.0;
  /// Relative deadline per task: deadline_factor * min(cpu_time, gpu_time)
  /// after its arrival; <= 0 disables deadlines.
  double deadline_factor = 0.0;
  std::uint64_t seed = 1;
};

/// Per-task arrival instants and relative deadlines, id-indexed.
class ArrivalPlan {
 public:
  ArrivalPlan() = default;

  /// Draw a plan for `tasks`: Poisson arrivals in id order (task i+1 never
  /// arrives before task i) and per-task relative deadlines from the spec's
  /// deadline factor.
  [[nodiscard]] static ArrivalPlan generate(const ArrivalSpec& spec,
                                            std::span<const Task> tasks);

  /// Hand-built plans (tests, corpus files). Extends the plan to cover
  /// `task` and sets its entries; uncovered tasks arrive at 0 with no
  /// deadline.
  void set(TaskId task, double arrival, double rel_deadline = 0.0);

  /// Resize to exactly `n` tasks (new entries arrive at 0, no deadline).
  void resize(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return arrivals_.size(); }
  [[nodiscard]] bool empty() const noexcept { return arrivals_.empty(); }

  /// True when every arrival is at t=0 — the stream the online runtime is
  /// regression-pinned to run bitwise-identically to the batch engine.
  [[nodiscard]] bool all_at_origin() const noexcept;

  /// True when at least one task carries a deadline.
  [[nodiscard]] bool has_deadlines() const noexcept;

  /// Arrival instant of `task` (0 for tasks beyond the plan's size).
  [[nodiscard]] double arrival(TaskId task) const noexcept;

  /// Relative deadline of `task`; <= 0 means none.
  [[nodiscard]] double rel_deadline(TaskId task) const noexcept;

  [[nodiscard]] std::span<const double> arrivals() const noexcept {
    return arrivals_;
  }
  [[nodiscard]] std::span<const double> rel_deadlines() const noexcept {
    return rel_deadlines_;
  }

  /// Text round-trip (the `.hpo` format of docs/online.md; also embedded in
  /// corpus files behind `# hpo:` prefixes).
  [[nodiscard]] std::string to_text() const;
  static bool from_text(const std::string& text, ArrivalPlan* out,
                        std::string* error);

  /// Human-readable one-paragraph summary.
  [[nodiscard]] std::string describe() const;

  friend bool operator==(const ArrivalPlan&, const ArrivalPlan&) = default;

 private:
  std::vector<double> arrivals_;       // id-indexed, non-negative
  std::vector<double> rel_deadlines_;  // id-indexed; <= 0 = no deadline
};

}  // namespace hp::online
