#include "par/heteroprio_par.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/engine_parts.hpp"
#include "core/hp_engine.hpp"
#include "model/task_soa.hpp"
#include "obs/counters.hpp"
#include "obs/profile.hpp"
#include "par/ready_shards.hpp"
#include "util/arena.hpp"
#include "util/key_sort.hpp"
#include "util/thread_pool.hpp"

namespace hp::par {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

[[nodiscard]] bool key_less(const util::KeyId& a, const util::KeyId& b) {
  if (a.key != b.key) return a.key < b.key;
  return a.id < b.id;
}

[[nodiscard]] bool key2_less(const util::KeyId2& a, const util::KeyId2& b) {
  if (a.k0 != b.k0) return a.k0 < b.k0;
  if (a.k1 != b.k1) return a.k1 < b.k1;
  return a.id < b.id;
}

/// Shard boundaries: W contiguous task-id ranges covering [0, n).
[[nodiscard]] std::size_t shard_lo(std::size_t n, int shards, int s) {
  return n * static_cast<std::size_t>(s) / static_cast<std::size_t>(shards);
}

/// Sharded sort: per-shard key build (forced to the global element shape)
/// and stable counting sort, fanned over a pool; sorted runs are copied
/// into caller-owned contiguous buffers (pool threads own their arenas).
/// Returns the per-shard runs through `key_runs`/`key2_runs` laid out at
/// the shard offsets inside one n-element buffer.
struct ShardedRuns {
  util::KeyId* key_runs = nullptr;
  util::KeyId2* key2_runs = nullptr;
  bool uniform = true;
};

ShardedRuns sharded_sort(std::span<const Task> tasks, int shards,
                         util::Arena& arena, util::ThreadPool& pool) {
  const std::size_t n = tasks.size();
  ShardedRuns runs;
  runs.uniform = soa::uniform_priority_bits(tasks);
  if (runs.uniform) {
    runs.key_runs = arena.alloc<util::KeyId>(n);
  } else {
    runs.key2_runs = arena.alloc<util::KeyId2>(n);
  }
  for (int s = 0; s < shards; ++s) {
    const std::size_t lo = shard_lo(n, shards, s);
    const std::size_t hi = shard_lo(n, shards, s + 1);
    if (lo == hi) continue;
    pool.submit([&runs, tasks, lo, hi] {
      util::Arena& ta = util::scratch_arena();
      const util::ArenaScope scope(ta);
      const soa::SortKeys keys = soa::build_sort_keys_shard(
          tasks.subspan(lo, hi - lo), runs.uniform,
          static_cast<std::uint32_t>(lo), ta);
      if (runs.uniform) {
        util::sort_key_id({keys.key_id, keys.size}, ta);
        std::memcpy(runs.key_runs + lo, keys.key_id,
                    keys.size * sizeof(util::KeyId));
      } else {
        util::sort_key2_id({keys.key2_id, keys.size}, ta);
        std::memcpy(runs.key2_runs + lo, keys.key2_id,
                    keys.size * sizeof(util::KeyId2));
      }
    });
  }
  pool.wait_idle();
  return runs;
}

/// Deterministic cross-shard merge: repeatedly take the run head with the
/// minimum (key0[, key1], id). Every run is ascending in that total order,
/// so the output equals the sequential engine's sorted order exactly — the
/// canonical tie-break contract (min task id on full key ties).
void merge_runs(const ShardedRuns& runs, std::size_t n, int shards,
                std::uint32_t* order) {
  std::vector<std::size_t> pos(static_cast<std::size_t>(shards));
  std::vector<std::size_t> end(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    pos[static_cast<std::size_t>(s)] = shard_lo(n, shards, s);
    end[static_cast<std::size_t>(s)] = shard_lo(n, shards, s + 1);
  }
  for (std::size_t k = 0; k < n; ++k) {
    int best = -1;
    for (int s = 0; s < shards; ++s) {
      const auto si = static_cast<std::size_t>(s);
      if (pos[si] == end[si]) continue;
      if (best < 0) {
        best = s;
        continue;
      }
      const auto bi = static_cast<std::size_t>(best);
      if (runs.uniform ? key_less(runs.key_runs[pos[si]],
                                  runs.key_runs[pos[bi]])
                       : key2_less(runs.key2_runs[pos[si]],
                                   runs.key2_runs[pos[bi]])) {
        best = s;
      }
    }
    const auto bi = static_cast<std::size_t>(best);
    order[k] = runs.uniform ? runs.key_runs[pos[bi]].id
                            : runs.key2_runs[pos[bi]].id;
    ++pos[bi];
  }
}

/// Published simulated clock of one free-running slice (cacheline-strided
/// so pacing reads do not false-share). kInf marks a finished slice.
struct alignas(64) SliceClock {
  std::atomic<double> now{0.0};
};

/// One free-running scheduler thread: simulates the platform slice it owns
/// (claim-on-demand from the shards, intra-slice spoliation). Writes
/// placements straight into the shared Schedule — distinct tasks touch
/// distinct slots — and collects aborted segments locally.
///
/// Conservative pacing: a slice may only claim new work while its simulated
/// clock is within `horizon` of the slowest live slice. Without it, a slice
/// that runs ahead in *wall-clock* time (a loaded machine, or fewer cores
/// than threads) would steal the entire instance into its own timeline and
/// produce a schedule as bad as one slice running everything — pacing keeps
/// the slice clocks in a bounded window, so claims interleave in simulated
/// time the way they would on truly concurrent slices. Completion never
/// waits: only claims gate, so the slice holding the minimum clock always
/// advances and the window cannot deadlock.
struct FreeThreadResult {
  HeteroPrioStats stats;
  std::vector<AbortedSegment> aborted;
  ClaimCounters counters;
};

struct PlacedRec {
  std::uint32_t task;
  double start;
  double end;
};

void run_free_slice(int t, int w_eff, std::span<const Task> tasks,
                    const Platform& platform, bool spoliation,
                    VictimOrder victim_order, ReadyShards& rs,
                    Schedule& schedule,
                    std::vector<std::vector<PlacedRec>>& placed_by_worker,
                    double* avail, SliceClock* clocks, double horizon,
                    FreeThreadResult& out) {
  // The slice: every w_eff-th CPU and every w_eff-th GPU. With both
  // resources present each slice holds at least one of each (w_eff is
  // clamped by min(cpus, gpus)), so intra-slice spoliation is live.
  std::vector<int> gid;
  std::vector<char> is_gpu;
  for (int c = 0; c < platform.cpus(); ++c) {
    if (c % w_eff == t) {
      gid.push_back(c);
      is_gpu.push_back(0);
    }
  }
  for (int g = 0; g < platform.gpus(); ++g) {
    if (g % w_eff == t) {
      gid.push_back(platform.cpus() + g);
      is_gpu.push_back(1);
    }
  }
  const std::size_t nw = gid.size();
  out.stats.first_idle_time = kInf;
  if (nw == 0) {
    clocks[t].now.store(kInf, std::memory_order_relaxed);
    return;
  }

  std::vector<double> finish(nw, kInf);
  std::vector<double> start(nw, 0.0);
  std::vector<std::uint32_t> cur(nw, 0);
  int busy_by_type[2] = {0, 0};
  std::size_t busy = 0;
  double now = 0.0;
  bool drained = false;  ///< claim returned false: permanently empty
  const detail::VictimLess victim_less{victim_order == VictimOrder::kPriority};
  std::vector<detail::VictimKey> victims;

  const auto start_task = [&](std::size_t wi, std::uint32_t id) {
    const Task& tk = tasks[id];
    finish[wi] = now + (is_gpu[wi] != 0 ? tk.gpu_time : tk.cpu_time);
    start[wi] = now;
    cur[wi] = id;
    ++busy_by_type[is_gpu[wi] != 0 ? 1 : 0];
    ++busy;
  };

  const auto try_spoliate = [&](std::size_t wi) -> bool {
    ++out.stats.spoliation_attempts;
    victims.clear();
    for (std::size_t vj = 0; vj < nw; ++vj) {
      if (finish[vj] == kInf || is_gpu[vj] == is_gpu[wi]) continue;
      victims.push_back(detail::VictimKey{
          finish[vj], tasks[cur[vj]].priority, static_cast<TaskId>(cur[vj]),
          static_cast<WorkerId>(gid[vj])});
    }
    std::sort(victims.begin(), victims.end(), victim_less);
    for (const detail::VictimKey& key : victims) {
      const Task& tk = tasks[static_cast<std::size_t>(key.task)];
      const double dt = is_gpu[wi] != 0 ? tk.gpu_time : tk.cpu_time;
      if (!detail::strictly_better(now + dt, key.finish)) continue;
      // Local index of the victim (slices are <= 63 workers; linear is fine).
      std::size_t vj = 0;
      while (gid[vj] != key.worker) ++vj;
      out.aborted.push_back(
          AbortedSegment{key.task, key.worker, start[vj], now});
      avail[static_cast<std::size_t>(key.worker)] = now;
      finish[vj] = kInf;
      --busy_by_type[is_gpu[vj] != 0 ? 1 : 0];
      --busy;
      ++out.stats.spoliations;
      start_task(wi, static_cast<std::uint32_t>(key.task));
      return true;
    }
    return false;
  };

  // Claim pacing: wait (yielding) until this slice's clock is within the
  // window of the slowest live slice. The minimum-clock slice never waits,
  // so some slice always makes progress.
  const auto pace = [&] {
    for (;;) {
      double lag = now;
      for (int u = 0; u < w_eff; ++u) {
        lag = std::min(lag, clocks[u].now.load(std::memory_order_relaxed));
      }
      if (now <= lag + horizon) return;
      std::this_thread::yield();
    }
  };

  const auto dispatch = [&] {
    bool acted = true;
    while (acted) {
      acted = false;
      if (!drained) pace();
      for (int half = 0; half < 2; ++half) {
        const char want_gpu = half == 0 ? 1 : 0;
        for (std::size_t wi = 0; wi < nw; ++wi) {
          if (is_gpu[wi] != want_gpu || finish[wi] != kInf) continue;
          std::uint32_t id;
          if (!drained &&
              rs.claim(static_cast<std::size_t>(t),
                       static_cast<std::size_t>(t), want_gpu != 0, id,
                       out.counters)) {
            start_task(wi, id);
            acted = true;
            continue;
          }
          drained = true;
          out.stats.first_idle_time =
              std::min(out.stats.first_idle_time, now);
          if (!spoliation) continue;
          if (busy_by_type[want_gpu != 0 ? 0 : 1] == 0) {
            ++out.stats.spoliation_skips;
          } else if (try_spoliate(wi)) {
            acted = true;
          }
        }
      }
    }
  };

  dispatch();
  while (busy != 0) {
    double tmin = kInf;
    for (std::size_t wi = 0; wi < nw; ++wi) tmin = std::min(tmin, finish[wi]);
    now = tmin;
    clocks[t].now.store(now, std::memory_order_relaxed);
    for (std::size_t wi = 0; wi < nw; ++wi) {
      if (finish[wi] != now) continue;
      const auto w = static_cast<std::size_t>(gid[wi]);
      schedule.place(static_cast<TaskId>(cur[wi]),
                     static_cast<WorkerId>(gid[wi]), start[wi], now);
      placed_by_worker[w].push_back(PlacedRec{cur[wi], start[wi], now});
      avail[w] = now;
      finish[wi] = kInf;
      --busy_by_type[is_gpu[wi] != 0 ? 1 : 0];
      --busy;
    }
    dispatch();
  }
  clocks[t].now.store(kInf, std::memory_order_relaxed);
}

/// End-game spoliation fix-up: while the makespan-defining task would
/// finish strictly earlier started on some other worker at that worker's
/// availability point, move it there (recording the lost progress as an
/// aborted segment when any was made). At the fixpoint every worker b
/// satisfies avail[b] + time(tau, b) >= makespan — the last-task
/// spoliation inequality the proven ratio bounds build on (and, on
/// homogeneous platforms, exactly the ingredient of Graham's 2 - 1/w
/// argument). Shard racing can violate it transiently; this pass restores
/// it deterministically after the threads join.
std::uint64_t endgame_fixup(std::span<const Task> tasks,
                            const Platform& platform, Schedule& schedule,
                            std::vector<std::vector<PlacedRec>>& placed,
                            std::vector<double>& avail,
                            std::vector<double>& abort_high,
                            HeteroPrioStats& stats) {
  const std::size_t n = tasks.size();
  const int workers = platform.workers();
  // Small instances (the fuzz/ratio-checked domain) run to the fixpoint;
  // huge ones keep a bounded best-effort pass — quality there is measured
  // by throughput, not ratio checks.
  const std::uint64_t cap =
      n <= 4096 ? 4 * static_cast<std::uint64_t>(n) + 64 : 256;
  std::uint64_t moves = 0;
  while (moves < cap) {
    int a = -1;
    double makespan = -1.0;
    for (int w = 0; w < workers; ++w) {
      const auto& stack = placed[static_cast<std::size_t>(w)];
      if (!stack.empty() && stack.back().end > makespan) {
        makespan = stack.back().end;
        a = w;
      }
    }
    if (a < 0) break;
    const PlacedRec rec = placed[static_cast<std::size_t>(a)].back();
    const auto task = static_cast<std::size_t>(rec.task);
    int best_b = -1;
    double best_end = kInf;
    for (int b = 0; b < workers; ++b) {
      if (b == a) continue;
      const double cand =
          avail[static_cast<std::size_t>(b)] +
          Platform::time_on(tasks[task], platform.type_of(b));
      if (cand < best_end) {
        best_end = cand;
        best_b = b;
      }
    }
    if (best_b < 0 || !detail::strictly_better(best_end, rec.end)) break;
    const auto ai = static_cast<std::size_t>(a);
    const auto bi = static_cast<std::size_t>(best_b);
    const double t0 = avail[bi];
    placed[ai].pop_back();
    avail[ai] = std::max(placed[ai].empty() ? 0.0 : placed[ai].back().end,
                         abort_high[ai]);
    if (t0 > rec.start) {
      // The move is a spoliation: progress [start, t0) on `a` is lost.
      schedule.add_aborted(static_cast<TaskId>(rec.task),
                           static_cast<WorkerId>(a), rec.start, t0);
      abort_high[ai] = std::max(abort_high[ai], t0);
      avail[ai] = std::max(avail[ai], t0);
      ++stats.spoliations;
    }
    schedule.place(static_cast<TaskId>(rec.task),
                   static_cast<WorkerId>(best_b), t0, best_end);
    placed[bi].push_back(PlacedRec{rec.task, t0, best_end});
    avail[bi] = best_end;
    ++moves;
  }
  return moves;
}

}  // namespace

void HeteroPrioParStats::export_counters(obs::CounterRegistry& registry) const {
  registry.set("par_threads_requested", threads_requested);
  registry.set("par_threads_used", threads_used);
  registry.set("par_canonical", canonical ? 1.0 : 0.0);
  registry.set("par_delegated", delegated ? 1.0 : 0.0);
  registry.set("par_claims", static_cast<double>(claims));
  registry.set("par_steals", static_cast<double>(steals));
  registry.set("par_steal_failures", static_cast<double>(steal_failures));
  registry.set("par_blocks_retired", static_cast<double>(blocks_retired));
  registry.set("par_blocks_reclaimed", static_cast<double>(blocks_reclaimed));
  registry.set("par_endgame_moves", static_cast<double>(endgame_moves));
  for (std::size_t s = 0; s < shard_published.size(); ++s) {
    registry.set("par_shard" + std::to_string(s) + "_published",
                 static_cast<double>(shard_published[s]));
  }
  for (std::size_t s = 0; s < shard_steals.size(); ++s) {
    registry.set("par_shard" + std::to_string(s) + "_steals",
                 static_cast<double>(shard_steals[s]));
  }
}

Schedule heteroprio_par_run(std::span<const Task> tasks,
                            const Platform& platform,
                            const HeteroPrioOptions& options,
                            HeteroPrioStats* stats,
                            HeteroPrioParStats* par_stats) {
  const std::size_t n = tasks.size();
  const int threads = std::max(1, options.threads);
  HeteroPrioParStats local_par;
  local_par.threads_requested = options.threads;
  local_par.canonical = options.canonical;

  const bool sink_live =
      options.sink != nullptr ||
      (options.log != nullptr && options.log->enabled());
  const bool faulty = options.faults != nullptr && !options.faults->empty();
  const bool coverable = !sink_live && !faulty && platform.workers() > 0 &&
                         platform.workers() <= 63;

  // Outside the fast-path preconditions — or with too little work to be
  // worth sharding — the sequential engine is the answer (bitwise the same
  // result by definition of canonical mode).
  if (!coverable || threads <= 1 ||
      n < 2 * static_cast<std::size_t>(threads)) {
    local_par.threads_used = 1;
    local_par.delegated = !coverable;
    if (par_stats != nullptr) *par_stats = local_par;
    return detail::run_heteroprio(tasks, nullptr, platform, options, stats);
  }

  util::Arena& arena = util::scratch_arena();
  const util::ArenaScope arena_scope(arena);

  // Free-running engages only when it can beat the canonical contract:
  // noise-free (beliefs == actuals inside the slices), no collector (the
  // profile scopes are single-threaded), and a platform it can slice.
  const int w_eff_raw =
      platform.cpus() > 0 && platform.gpus() > 0
          ? std::min({threads, platform.cpus(), platform.gpus()})
          : std::min(threads, platform.workers());
  const bool free_running = !options.canonical && w_eff_raw > 1 &&
                            options.actual_times.empty() &&
                            options.metrics == nullptr;

  if (!free_running) {
    // Canonical: sharded sort -> deterministic merge -> the sequential
    // simulation over the merged order. Bitwise-identical by construction.
    local_par.threads_used = threads;
    util::ThreadPool pool(static_cast<unsigned>(threads));
    std::uint32_t* order = arena.alloc<std::uint32_t>(n);
    {
      const obs::PhaseScope sort_scope(options.metrics, obs::Phase::kSort);
      const ShardedRuns runs = sharded_sort(tasks, threads, arena, pool);
      merge_runs(runs, n, threads, order);
    }
    local_par.shard_published.resize(static_cast<std::size_t>(threads));
    for (int s = 0; s < threads; ++s) {
      local_par.shard_published[static_cast<std::size_t>(s)] =
          shard_lo(n, threads, s + 1) - shard_lo(n, threads, s);
    }
    if (par_stats != nullptr) *par_stats = local_par;
    return detail::run_independent_presorted({order, n}, tasks, platform,
                                             options, stats);
  }

  // Free-running: per-shard sorted runs feed the two-ended ready blocks;
  // W_eff slices claim and steal concurrently.
  const int w_eff = w_eff_raw;
  local_par.threads_used = w_eff;
  VictimOrder victim_order = options.victim_order;
  if (victim_order == VictimOrder::kAuto) {
    victim_order = VictimOrder::kCompletionTime;
  }

  util::ThreadPool pool(static_cast<unsigned>(w_eff));
  const ShardedRuns runs = sharded_sort(tasks, w_eff, arena, pool);
  std::uint32_t* shard_ids = arena.alloc<std::uint32_t>(n);
  for (std::size_t i = 0; i < n; ++i) {
    shard_ids[i] = runs.uniform ? runs.key_runs[i].id : runs.key2_runs[i].id;
  }

  const auto block_capacity = static_cast<std::uint32_t>(std::clamp<
      std::size_t>(n / (static_cast<std::size_t>(w_eff) * 4) + 1, 16, 4096));
  ReadyShards rs(static_cast<std::size_t>(w_eff), block_capacity);
  rs.begin_publish(static_cast<std::size_t>(w_eff));
  local_par.shard_published.resize(static_cast<std::size_t>(w_eff));
  for (int s = 0; s < w_eff; ++s) {
    const std::size_t lo = shard_lo(n, w_eff, s);
    const std::size_t hi = shard_lo(n, w_eff, s + 1);
    rs.publish(static_cast<std::size_t>(s), {shard_ids + lo, hi - lo});
    local_par.shard_published[static_cast<std::size_t>(s)] = hi - lo;
  }

  Schedule schedule(n);
  std::vector<std::vector<PlacedRec>> placed_by_worker(
      static_cast<std::size_t>(platform.workers()));
  std::vector<double> avail(static_cast<std::size_t>(platform.workers()), 0.0);
  std::vector<FreeThreadResult> results(static_cast<std::size_t>(w_eff));
  // Pacing window: one worst-case *well-assigned* task of slack between the
  // fastest and the slowest live slice clock — max over tasks of the
  // duration on the task's favored available resource. Using the worse
  // resource instead would inflate the window past the whole makespan on
  // acceleration-skewed instances (q = p/rho with rho < 1) and let a
  // wall-clock-fast slice hoard the instance into a runaway timeline.
  // Tight enough that no slice can run away, loose enough that balanced
  // slices essentially never wait.
  double horizon = 0.0;
  for (const Task& tk : tasks) {
    double favored = kInf;
    if (platform.cpus() > 0) favored = std::min(favored, tk.cpu_time);
    if (platform.gpus() > 0) favored = std::min(favored, tk.gpu_time);
    horizon = std::max(horizon, favored);
  }
  std::vector<SliceClock> clocks(static_cast<std::size_t>(w_eff));
  for (int t = 0; t < w_eff; ++t) {
    pool.submit([t, w_eff, tasks, &platform, &options, victim_order, &rs,
                 &schedule, &placed_by_worker, &avail, &clocks, horizon,
                 &results] {
      run_free_slice(t, w_eff, tasks, platform, options.enable_spoliation,
                     victim_order, rs, schedule, placed_by_worker,
                     avail.data(), clocks.data(), horizon,
                     results[static_cast<std::size_t>(t)]);
    });
  }
  pool.wait_idle();
  local_par.blocks_reclaimed += rs.reclaim_now();

  // Merge per-thread artifacts (deterministic order given the run content).
  HeteroPrioStats total;
  total.first_idle_time = kInf;
  std::vector<double> abort_high(static_cast<std::size_t>(platform.workers()),
                                 0.0);
  local_par.shard_steals.resize(static_cast<std::size_t>(w_eff));
  for (int t = 0; t < w_eff; ++t) {
    const FreeThreadResult& r = results[static_cast<std::size_t>(t)];
    for (const AbortedSegment& seg : r.aborted) {
      schedule.add_aborted(seg.task, seg.worker, seg.start, seg.abort_time);
      abort_high[static_cast<std::size_t>(seg.worker)] =
          std::max(abort_high[static_cast<std::size_t>(seg.worker)],
                   seg.abort_time);
    }
    total.first_idle_time =
        std::min(total.first_idle_time, r.stats.first_idle_time);
    total.spoliations += r.stats.spoliations;
    total.spoliation_attempts += r.stats.spoliation_attempts;
    total.spoliation_skips += r.stats.spoliation_skips;
    local_par.claims += r.counters.claims;
    local_par.steals += r.counters.steals;
    local_par.steal_failures += r.counters.steal_failures;
    local_par.shard_steals[static_cast<std::size_t>(t)] = r.counters.steals;
  }
  local_par.blocks_retired = rs.blocks_retired();
  local_par.blocks_reclaimed = rs.blocks_reclaimed();

  if (options.enable_spoliation) {
    local_par.endgame_moves = endgame_fixup(
        tasks, platform, schedule, placed_by_worker, avail, abort_high, total);
  }

  if (!std::isfinite(total.first_idle_time)) {
    total.first_idle_time = schedule.makespan();
  }
  if (stats != nullptr) *stats = total;
  if (par_stats != nullptr) *par_stats = local_par;
  return schedule;
}

}  // namespace hp::par
