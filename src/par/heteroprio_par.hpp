#pragma once
// Multi-threaded HeteroPrio over sharded ready structures (docs/parallel.md).
//
// `heteroprio_par_run` schedules one independent instance with W =
// HeteroPrioOptions::threads scheduler threads. Two contracts, selected by
// HeteroPrioOptions::canonical:
//
//  * Canonical (default): the ready order is built by a sharded sort —
//    contiguous task-id ranges, per-shard SoA key packing and stable
//    counting sort fanned over a thread pool — then merged with the
//    deterministic min-(key0[, key1], id) cross-shard tie-break. Because
//    the sequential sort is stable over ascending-id input and the shard
//    ranges are contiguous, the merge reproduces the sequential sorted
//    order *exactly*, and the merged order drives the same simulation
//    (detail::run_independent_presorted). Placements, aborted segments and
//    every counter are bitwise-identical to the sequential engine — the
//    property test_par_regression and the `par` fuzz property enforce.
//
//  * Free-running (canonical = false): the per-shard sorted runs are
//    published unmerged as two-ended ready blocks (par::ReadyShards), and
//    W_eff threads — each owning a disjoint slice of the platform with at
//    least one CPU and one GPU when both exist — claim on demand: idle
//    GPUs pop shard fronts, idle CPUs pop backs, stealing from other
//    shards round the ring on a miss. Spoliation runs within each slice,
//    and an end-game pass moves the makespan-defining task to whichever
//    worker finishes it strictly earlier (recording the aborted progress),
//    restoring the last-task spoliation inequality the proven ratio
//    bounds rest on. The result is a valid schedule within the watchdog
//    bounds, not a bitwise-identical one.
//
// Cases outside the fast-path preconditions (DAGs via the dag entry, fault
// plans, attached sinks/logs, > 63 workers) delegate to the sequential
// engine; `HeteroPrioParStats::delegated` records that.

#include <cstdint>
#include <span>
#include <vector>

#include "core/heteroprio.hpp"

namespace hp {
namespace obs {
class CounterRegistry;  // obs/counters.hpp
}

namespace par {

/// Parallel-engine observability, one record per run. Aggregates are over
/// every claiming thread; the per-shard vectors are indexed by shard.
struct HeteroPrioParStats {
  int threads_requested = 0;
  int threads_used = 0;  ///< W_eff; 1 means the run was effectively serial
  bool canonical = true;
  bool delegated = false;  ///< fell back to the sequential general engine
  std::uint64_t claims = 0;
  std::uint64_t steals = 0;
  std::uint64_t steal_failures = 0;
  std::uint64_t blocks_retired = 0;
  std::uint64_t blocks_reclaimed = 0;
  std::uint64_t endgame_moves = 0;  ///< end-game spoliation relocations
  std::vector<std::uint64_t> shard_published;  ///< shard occupancy at publish
  std::vector<std::uint64_t> shard_steals;     ///< steals per claiming thread

  /// Export as `par_*` counters (par_steals, par_steal_failures,
  /// par_shard<i>_published, ...) into an obs:: registry.
  void export_counters(obs::CounterRegistry& registry) const;
};

/// Schedule `tasks` on `platform` with the parallel HeteroPrio engine.
/// `options.threads` <= 1 or non-coverable cases run sequentially (bitwise
/// the sequential engine). `stats` mirrors the sequential stats contract;
/// `par_stats` (optional) receives the parallel-engine record.
[[nodiscard]] Schedule heteroprio_par_run(std::span<const Task> tasks,
                                          const Platform& platform,
                                          const HeteroPrioOptions& options,
                                          HeteroPrioStats* stats = nullptr,
                                          HeteroPrioParStats* par_stats =
                                              nullptr);

}  // namespace par
}  // namespace hp
