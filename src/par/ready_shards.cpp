#include "par/ready_shards.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace hp::par {

namespace {

constexpr std::uint64_t pack_bounds(std::uint32_t head,
                                    std::uint32_t tail) noexcept {
  return (static_cast<std::uint64_t>(head) << 32) | tail;
}

}  // namespace

bool ReadyShards::Block::pop(bool front, std::uint32_t& id) noexcept {
  std::uint64_t b = bounds.load(std::memory_order_acquire);
  for (;;) {
    const auto head = static_cast<std::uint32_t>(b >> 32);
    const auto tail = static_cast<std::uint32_t>(b);
    if (head >= tail) return false;
    const std::uint64_t next =
        front ? pack_bounds(head + 1, tail) : pack_bounds(head, tail - 1);
    if (bounds.compare_exchange_weak(b, next, std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      // The storage read is protected by the caller's epoch guard: the
      // block may drain and retire concurrently, but it cannot be recycled
      // until we leave the epoch.
      id = ids[front ? head : tail - 1];
      return true;
    }
  }
}

ReadyShards::ReadyShards(std::size_t slots, std::uint32_t block_capacity)
    : block_capacity_(std::max<std::uint32_t>(1, block_capacity)),
      epoch_(slots) {}

std::uint32_t* ReadyShards::acquire_storage() {
  const std::lock_guard<std::mutex> lock(pool_mutex_);
  if (!free_.empty()) {
    std::uint32_t* p = free_.back();
    free_.pop_back();
    return p;
  }
  storage_.push_back(std::make_unique<std::uint32_t[]>(block_capacity_));
  return storage_.back().get();
}

void ReadyShards::begin_publish(std::size_t shards) {
  reclaim_now();
  shards_.clear();
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void ReadyShards::publish(std::size_t shard, std::span<const std::uint32_t> ids) {
  assert(shard < shards_.size());
  Shard& s = *shards_[shard];
  assert(s.num_blocks == 0 && "publish is once per shard per cycle");
  const std::size_t n = ids.size();
  s.published = n;
  const std::size_t nblocks =
      n == 0 ? 0 : (n + block_capacity_ - 1) / block_capacity_;
  s.blocks = std::make_unique<Block[]>(nblocks);
  s.num_blocks = static_cast<std::uint32_t>(nblocks);
  s.front_hint.store(0, std::memory_order_relaxed);
  s.back_hint.store(static_cast<std::uint32_t>(nblocks),
                    std::memory_order_relaxed);
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::size_t lo = b * block_capacity_;
    const std::size_t len = std::min<std::size_t>(block_capacity_, n - lo);
    Block& blk = s.blocks[b];
    blk.ids = acquire_storage();
    std::memcpy(blk.ids, ids.data() + lo, len * sizeof(std::uint32_t));
    blk.bounds.store(pack_bounds(0, static_cast<std::uint32_t>(len)),
                     std::memory_order_release);
  }
}

bool ReadyShards::pop_shard(Shard& s, std::size_t slot, bool front,
                            std::uint32_t& id) {
  if (s.num_blocks == 0) return false;
  if (front) {
    for (std::uint32_t b = s.front_hint.load(std::memory_order_acquire);
         b < s.num_blocks; ++b) {
      Block& blk = s.blocks[b];
      if (blk.pop(true, id)) return true;
      // Drained for good (no re-inserts within a cycle): advance the hint
      // and retire the block exactly once.
      std::uint32_t hint = b;
      s.front_hint.compare_exchange_strong(hint, b + 1,
                                           std::memory_order_acq_rel);
      if (!blk.retired.exchange(true, std::memory_order_acq_rel)) {
        epoch_.retire(slot, blk.ids);
        blocks_retired_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return false;
  }
  for (std::uint32_t b = s.back_hint.load(std::memory_order_acquire); b > 0;
       --b) {
    Block& blk = s.blocks[b - 1];
    if (blk.pop(false, id)) return true;
    std::uint32_t hint = b;
    s.back_hint.compare_exchange_strong(hint, b - 1,
                                        std::memory_order_acq_rel);
    if (!blk.retired.exchange(true, std::memory_order_acq_rel)) {
      epoch_.retire(slot, blk.ids);
      blocks_retired_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return false;
}

bool ReadyShards::claim(std::size_t slot, std::size_t home, bool gpu_end,
                        std::uint32_t& id, ClaimCounters& counters) {
  const std::size_t nshards = shards_.size();
  if (nshards == 0) return false;
  const util::EpochGuard guard(epoch_, slot);
  if (home < nshards && pop_shard(*shards_[home], slot, gpu_end, id)) {
    ++counters.claims;
    return true;
  }
  for (std::size_t d = 1; d < nshards; ++d) {
    const std::size_t victim = (home + d) % nshards;
    if (pop_shard(*shards_[victim], slot, gpu_end, id)) {
      ++counters.steals;
      return true;
    }
    ++counters.steal_failures;
  }
  return false;
}

std::size_t ReadyShards::reclaim_now() {
  reclaim_scratch_.clear();
  const std::size_t got = epoch_.try_reclaim(reclaim_scratch_);
  if (got != 0) {
    const std::lock_guard<std::mutex> lock(pool_mutex_);
    for (void* p : reclaim_scratch_) {
      free_.push_back(static_cast<std::uint32_t*>(p));
    }
  }
  blocks_reclaimed_ += got;
  return got;
}

}  // namespace hp::par
