#pragma once
// Sharded double-ended ready structure for the parallel HeteroPrio engine.
//
// The sequential engine keeps one presorted ready array with two cursors:
// idle GPUs pop the front (most GPU-friendly, highest acceleration), idle
// CPUs pop the back (§2.2). To let W scheduler threads claim concurrently,
// the sorted order is split into W shards (contiguous task-id ranges, each
// sorted by the same packed keys), and every shard is further chunked into
// fixed-capacity *ready blocks*. A block exposes one packed atomic
// `head:32 | tail:32` word, so claiming from either end is a single CAS and
// the two ends never contend on separate control words.
//
// Stealing follows the Chase–Lev discipline adapted to HeteroPrio's
// two-ended contract: a thief pops the same end its resource type always
// pops — GPUs steal fronts, CPUs steal backs — walking the shard ring from
// its home shard. A worker therefore idles only when every shard is empty,
// which is the work-conservation property the makespan bounds lean on
// (docs/parallel.md).
//
// Reclamation: a drained block is retired exactly once (atomic flag) into a
// util::StripedEpoch. Its id storage returns to the block pool only after
// every participant has left the epoch the retirement happened in — a
// claimer that won a CAS may still be reading ids[h] — and is recycled by
// the next publish cycle. Claimers must hold an EpochGuard for their slot
// across a claim; ReadyShards::claim does this internally.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "util/striped_epoch.hpp"

namespace hp::par {

/// Per-claimant statistics, aggregated into the run's obs:: counters.
struct ClaimCounters {
  std::uint64_t claims = 0;          ///< successful pops from the home shard
  std::uint64_t steals = 0;          ///< successful pops from another shard
  std::uint64_t steal_failures = 0;  ///< non-home shards probed and empty
};

class ReadyShards {
 public:
  /// `slots` epoch participants (claiming threads). `block_capacity` ids
  /// per ready block; small capacities force frequent retirement (tests).
  explicit ReadyShards(std::size_t slots, std::uint32_t block_capacity = 1024);

  ReadyShards(const ReadyShards&) = delete;
  ReadyShards& operator=(const ReadyShards&) = delete;

  /// Start a publish cycle with `shards` empty shards. Single-threaded:
  /// no claim may be in flight. Reclaims grace-elapsed retired blocks from
  /// the previous cycle into the pool first.
  void begin_publish(std::size_t shards);

  /// Publish shard `shard`'s ready ids, already in ready order (ascending
  /// packed key: GPU end first). Part of the single-threaded publish phase.
  void publish(std::size_t shard, std::span<const std::uint32_t> ids);

  /// Claim one task id. `slot` is the caller's epoch slot; `home` its home
  /// shard. GPU claims pop fronts, CPU claims pop backs; on a miss the
  /// other shards are probed round the ring from home+1 (stealing, same
  /// end). Returns false only when every shard is empty — and since ids are
  /// never re-inserted within a cycle, emptiness is permanent.
  [[nodiscard]] bool claim(std::size_t slot, std::size_t home, bool gpu_end,
                           std::uint32_t& id, ClaimCounters& counters);

  /// Grace-elapsed reclamation outside the publish path (engine teardown,
  /// tests). Returns the number of blocks recycled into the pool.
  std::size_t reclaim_now();

  [[nodiscard]] std::size_t num_shards() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] util::StripedEpoch& epoch() noexcept { return epoch_; }

  /// Ids published into `shard` this cycle (the shard-occupancy counter).
  [[nodiscard]] std::size_t shard_published(std::size_t shard) const {
    return shards_[shard]->published;
  }

  [[nodiscard]] std::uint64_t blocks_retired() const noexcept {
    return blocks_retired_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t blocks_reclaimed() const noexcept {
    return blocks_reclaimed_;
  }
  /// Distinct storage allocations so far; stays flat across publish cycles
  /// once the pool covers the working set (the reclamation regression).
  [[nodiscard]] std::size_t storage_allocated() const noexcept {
    return storage_.size();
  }

 private:
  struct Block {
    std::atomic<std::uint64_t> bounds{0};  ///< head:32 | tail:32
    std::atomic<bool> retired{false};
    std::uint32_t* ids = nullptr;

    [[nodiscard]] bool pop(bool front, std::uint32_t& id) noexcept;
    [[nodiscard]] bool empty() const noexcept {
      const std::uint64_t b = bounds.load(std::memory_order_acquire);
      return static_cast<std::uint32_t>(b >> 32) >=
             static_cast<std::uint32_t>(b);
    }
  };

  struct alignas(util::kEpochSlotStride) Shard {
    std::unique_ptr<Block[]> blocks;
    std::uint32_t num_blocks = 0;
    std::size_t published = 0;
    /// Advisory cursors: first (last) possibly non-drained block. Claims
    /// re-scan from the hint, so a stale hint costs probes, never tasks.
    std::atomic<std::uint32_t> front_hint{0};
    std::atomic<std::uint32_t> back_hint{0};
  };

  /// Pop from shard `s`; retires blocks it finds drained along the way.
  [[nodiscard]] bool pop_shard(Shard& s, std::size_t slot, bool front,
                               std::uint32_t& id);

  [[nodiscard]] std::uint32_t* acquire_storage();

  std::uint32_t block_capacity_;
  util::StripedEpoch epoch_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Storage pool. `storage_` owns every allocation for the object's
  // lifetime; `free_` holds the recycled ones. Mutated only in the
  // single-threaded publish/reclaim phases (guarded anyway for safety).
  std::mutex pool_mutex_;
  std::vector<std::unique_ptr<std::uint32_t[]>> storage_;
  std::vector<std::uint32_t*> free_;
  std::vector<void*> reclaim_scratch_;
  std::atomic<std::uint64_t> blocks_retired_{0};
  std::uint64_t blocks_reclaimed_ = 0;
};

}  // namespace hp::par
