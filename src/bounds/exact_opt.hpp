#pragma once
// Exact optimal makespan for small independent-task instances.
//
// Branch-and-bound over the assignment of tasks to individual workers.
// Used only by tests (to verify the approximation ratios of Theorems 7, 9
// and 12 on random instances) and by the worst-case benches' sanity checks.
// Exponential in the number of tasks; intended for <= ~18 tasks.

#include <cstdint>
#include <span>

#include "model/instance.hpp"
#include "model/platform.hpp"
#include "sched/schedule.hpp"

namespace hp {

struct ExactResult {
  double makespan = 0.0;
  Schedule schedule;        ///< one optimal schedule (tasks back-to-back)
  std::uint64_t nodes = 0;  ///< B&B nodes explored
};

/// Exact optimum. Pruning: incumbent from a greedy EFT schedule, suffix area
/// bounds, per-type symmetry breaking (identical workers with equal loads).
[[nodiscard]] ExactResult exact_optimal(std::span<const Task> tasks,
                                        const Platform& platform);

/// Convenience: just the optimal makespan.
[[nodiscard]] double exact_optimal_makespan(std::span<const Task> tasks,
                                            const Platform& platform);

}  // namespace hp
