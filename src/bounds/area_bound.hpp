#pragma once
// Area bound of §4.2 — a lower bound on the optimal makespan.
//
// The bound is the optimum of the fractional LP: each task may be split
// between the CPU side (fraction x_i, consuming x_i * p_i CPU time) and the
// GPU side; minimize the larger of (CPU work / m, GPU work / n).
//
// No LP solver is needed: Lemma 1 (both resource classes finish together at
// the optimum) and Lemma 2 (the split is a threshold in the acceleration
// factor, with at most one fractional task) reduce the LP to a linear scan
// over the tasks sorted by decreasing rho. See DESIGN.md §4.

#include <span>
#include <vector>

#include "model/instance.hpp"
#include "model/platform.hpp"

namespace hp {

/// Solution of the area-bound LP.
struct AreaBoundResult {
  double bound = 0.0;  ///< AreaBound(I)

  /// Tasks sorted by non-increasing acceleration factor; tasks
  /// order[0..split_index) run fully on GPUs, tasks order(split_index..)
  /// fully on CPUs, and order[split_index] runs a fraction
  /// `gpu_fraction_of_split` on the GPUs (1 - that on the CPUs).
  std::vector<TaskId> order;
  std::size_t split_index = 0;
  double gpu_fraction_of_split = 0.0;

  /// The threshold k of Lemma 2 (acceleration factor of the split task);
  /// 0 when the instance is empty.
  double threshold_accel = 0.0;

  /// Work per resource class in the LP solution (Lemma 1: cpu_work / m ==
  /// gpu_work / n == bound whenever both sides carry work).
  double cpu_work = 0.0;
  double gpu_work = 0.0;
};

/// Full area-bound solution. O(T log T).
[[nodiscard]] AreaBoundResult area_bound(std::span<const Task> tasks,
                                         const Platform& platform);

/// Just the bound value.
[[nodiscard]] double area_bound_value(std::span<const Task> tasks,
                                      const Platform& platform);

/// Best cheap lower bound on C_max^Opt(I):
/// max(AreaBound(I), max_i min(p_i, q_i)). On a one-sided platform the
/// per-task minimum only ranges over the resource that exists (a task
/// cannot run its GPU time on a platform without GPUs).
[[nodiscard]] double opt_lower_bound(std::span<const Task> tasks,
                                     const Platform& platform);

}  // namespace hp
