#include "bounds/exact_opt.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <vector>

#include "bounds/area_bound.hpp"

namespace hp {

namespace {

/// Greedy earliest-finish-time assignment, processing tasks by decreasing
/// min time. Provides the initial incumbent for the branch and bound.
double greedy_incumbent(std::span<const Task> tasks, const Platform& platform,
                        const std::vector<TaskId>& order) {
  std::vector<double> load(static_cast<std::size_t>(platform.workers()), 0.0);
  for (TaskId id : order) {
    const Task& t = tasks[static_cast<std::size_t>(id)];
    WorkerId best_w = 0;
    double best_finish = std::numeric_limits<double>::infinity();
    for (WorkerId w = 0; w < platform.workers(); ++w) {
      const double finish =
          load[static_cast<std::size_t>(w)] + Platform::time_on(t, platform.type_of(w));
      if (finish < best_finish) {
        best_finish = finish;
        best_w = w;
      }
    }
    load[static_cast<std::size_t>(best_w)] = best_finish;
  }
  return *std::max_element(load.begin(), load.end());
}

struct Solver {
  std::span<const Task> tasks;
  const Platform& platform;
  std::vector<TaskId> order;        // tasks in branching order
  std::vector<double> suffix_lb;    // area bound of order[d..]
  std::vector<double> load;         // per-worker load
  std::vector<WorkerId> assign;     // per-depth chosen worker
  std::vector<WorkerId> best_assign;
  double best = 0.0;
  std::uint64_t nodes = 0;

  void dfs(std::size_t depth, double cur_max) {
    ++nodes;
    if (cur_max >= best) return;
    if (std::max(cur_max, suffix_lb[depth]) >= best) return;
    if (depth == order.size()) {
      best = cur_max;
      best_assign = assign;
      best_assign.resize(order.size());
      return;
    }
    const Task& t = tasks[static_cast<std::size_t>(order[depth])];
    // Symmetry breaking: among identical (same-type) workers with equal
    // loads, try only the first.
    for (WorkerId w = 0; w < platform.workers(); ++w) {
      bool duplicate = false;
      for (WorkerId v = platform.first(platform.type_of(w)); v < w; ++v) {
        if (platform.type_of(v) == platform.type_of(w) &&
            load[static_cast<std::size_t>(v)] == load[static_cast<std::size_t>(w)]) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      const double dt = Platform::time_on(t, platform.type_of(w));
      const double new_load = load[static_cast<std::size_t>(w)] + dt;
      if (new_load >= best) continue;
      load[static_cast<std::size_t>(w)] = new_load;
      assign[depth] = w;
      dfs(depth + 1, std::max(cur_max, new_load));
      load[static_cast<std::size_t>(w)] = new_load - dt;
    }
  }
};

}  // namespace

ExactResult exact_optimal(std::span<const Task> tasks, const Platform& platform) {
  ExactResult result;
  result.schedule = Schedule(tasks.size());
  if (tasks.empty()) return result;

  // Branch on big tasks first: strongest pruning.
  std::vector<TaskId> order(tasks.size());
  std::iota(order.begin(), order.end(), TaskId{0});
  std::sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    const double ma = tasks[static_cast<std::size_t>(a)].min_time();
    const double mb = tasks[static_cast<std::size_t>(b)].min_time();
    if (ma != mb) return ma > mb;
    return a < b;
  });

  Solver solver{tasks, platform, order, {}, {}, {}, {}, 0.0, 0};
  solver.suffix_lb.assign(tasks.size() + 1, 0.0);
  {
    std::vector<Task> suffix;
    suffix.reserve(tasks.size());
    for (std::size_t d = tasks.size(); d-- > 0;) {
      suffix.push_back(tasks[static_cast<std::size_t>(order[d])]);
      solver.suffix_lb[d] = opt_lower_bound(suffix, platform);
    }
  }
  solver.load.assign(static_cast<std::size_t>(platform.workers()), 0.0);
  solver.assign.assign(tasks.size(), 0);
  // Strict inequality pruning requires the incumbent to be beatable: add an
  // epsilon so an optimal greedy solution is still re-found by the search.
  solver.best = greedy_incumbent(tasks, platform, order) *
                    (1.0 + 1e-12) + 1e-12;
  solver.dfs(0, 0.0);

  result.makespan = solver.best;
  result.nodes = solver.nodes;

  // Rebuild the schedule: tasks back-to-back on their assigned worker, in
  // branching order.
  std::vector<double> start(static_cast<std::size_t>(platform.workers()), 0.0);
  for (std::size_t d = 0; d < order.size(); ++d) {
    const TaskId id = order[d];
    const WorkerId w = solver.best_assign[d];
    const double dt =
        Platform::time_on(tasks[static_cast<std::size_t>(id)], platform.type_of(w));
    result.schedule.place(id, w, start[static_cast<std::size_t>(w)],
                          start[static_cast<std::size_t>(w)] + dt);
    start[static_cast<std::size_t>(w)] += dt;
  }
  // Recompute the exact makespan from the rebuilt schedule (drops the
  // incumbent epsilon when greedy was already optimal).
  result.makespan = result.schedule.makespan();
  return result;
}

double exact_optimal_makespan(std::span<const Task> tasks,
                              const Platform& platform) {
  return exact_optimal(tasks, platform).makespan;
}

}  // namespace hp
