#include "bounds/dag_lower_bound.hpp"

#include <algorithm>
#include <vector>

#include "dag/ranking.hpp"
#include "util/arena.hpp"

namespace hp {

namespace {

/// Scratch buffers shared by the forward and backward segmented passes, so
/// one dag_lower_bound call allocates each of them once instead of per
/// direction (the sweep evaluates the bound for every cell). Storage comes
/// from the run's arena and is reclaimed by the caller's ArenaScope.
struct SegmentedScratch {
  explicit SegmentedScratch(util::Arena& arena)
      : sorted(arena), candidates(arena), subset(arena) {}

  util::ArenaVector<double> sorted;
  util::ArenaVector<double> candidates;
  util::ArenaVector<Task> subset;
};

/// max over candidate thresholds T of (T + AreaBound({tasks with key >= T})).
/// `keys` must be a per-task value such that every task with key >= T runs
/// entirely within a window of length (Cmax - T).
double segmented_direction(const TaskGraph& graph, const Platform& platform,
                           const std::vector<double>& keys, int thresholds,
                           SegmentedScratch& scratch) {
  util::ArenaVector<double>& sorted = scratch.sorted;
  sorted.clear();
  sorted.reserve(keys.size());
  for (const double key : keys) sorted.push_back(key);
  std::sort(sorted.begin(), sorted.end());
  // Candidate thresholds: quantiles of the positive keys.
  util::ArenaVector<double>& candidates = scratch.candidates;
  candidates.clear();
  const auto first_pos =
      std::upper_bound(sorted.begin(), sorted.end(), 0.0) - sorted.begin();
  const std::size_t positives = sorted.size() - static_cast<std::size_t>(first_pos);
  if (positives == 0) return 0.0;
  for (int c = 0; c < thresholds; ++c) {
    const std::size_t idx =
        static_cast<std::size_t>(first_pos) +
        positives * static_cast<std::size_t>(c) / static_cast<std::size_t>(thresholds);
    candidates.push_back(sorted[idx]);
  }
  candidates.push_back(*(sorted.end() - 1));
  std::sort(candidates.begin(), candidates.end());
  candidates.resize(static_cast<std::size_t>(
      std::unique(candidates.begin(), candidates.end()) - candidates.begin()));

  double best = 0.0;
  util::ArenaVector<Task>& subset = scratch.subset;
  for (double threshold : candidates.span()) {
    subset.clear();
    for (std::size_t i = 0; i < graph.size(); ++i) {
      if (keys[i] >= threshold) subset.push_back(graph.task(static_cast<TaskId>(i)));
    }
    if (subset.empty()) continue;
    best = std::max(best, threshold + area_bound_value(subset.span(), platform));
  }
  return best;
}

}  // namespace

DagLowerBound dag_lower_bound(const TaskGraph& graph, const Platform& platform,
                              const DagLowerBoundOptions& options) {
  DagLowerBound lb;
  lb.area = area_bound_value(graph.tasks(), platform);
  // One min-weight bottom-level pass serves both the critical path (its
  // maximum) and the backward segmented keys below.
  std::vector<double> tails = bottom_levels(graph, RankScheme::kMin);
  for (const double level : tails) {
    lb.critical_path = std::max(lb.critical_path, level);
  }
  const bool has_cpu = platform.cpus() > 0;
  const bool has_gpu = platform.gpus() > 0;
  for (const Task& t : graph.tasks()) {
    // One-sided platforms: the absent resource's time is not a valid floor.
    const double floor = has_cpu && has_gpu ? t.min_time()
                         : has_cpu          ? t.cpu_time
                                            : t.gpu_time;
    lb.max_min_time = std::max(lb.max_min_time, floor);
  }

  if (options.segment_thresholds > 0 && !graph.empty()) {
    util::Arena& arena = util::scratch_arena();
    const util::ArenaScope scope(arena);
    SegmentedScratch scratch(arena);
    // Forward: tasks whose min-weight top level is >= T cannot start
    // before T, so they fit in (Cmax - T) and Cmax >= T + AreaBound(them).
    const std::vector<double> tops = top_levels(graph, RankScheme::kMin);
    lb.segmented = segmented_direction(graph, platform, tops,
                                       options.segment_thresholds, scratch);
    // Backward: a task followed by a min-weight chain of length B =
    // bottom_level - own weight must finish B before Cmax.
    for (std::size_t i = 0; i < tails.size(); ++i) {
      tails[i] -= rank_weight(graph.task(static_cast<TaskId>(i)), RankScheme::kMin);
    }
    lb.segmented = std::max(
        lb.segmented, segmented_direction(graph, platform, tails,
                                          options.segment_thresholds, scratch));
  }
  return lb;
}

}  // namespace hp
