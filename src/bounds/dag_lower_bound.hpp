#pragma once
// Lower bound on the makespan of a DAG schedule.
//
// The paper's Fig 7 normalizes against "the lower bound obtained by adding
// dependency constraints to the area bound [12]". We use three components
// (see DESIGN.md §1 for the substitution note):
//   * the area bound of the task set (work argument);
//   * the critical path of the DAG with min(p, q) node weights (no schedule
//     can beat the chain of minimum execution times);
//   * a segmented area bound interpolating the two: for any earliest-start
//     threshold T over the min-weight top levels, Cmax >= T + AreaBound of
//     the tasks that cannot start before T; symmetrically for tasks that
//     must be followed by a min-weight chain of length B,
//     Cmax >= B + AreaBound of those tasks. Both arguments are exact, so
//     the combined value remains a true lower bound.

#include "bounds/area_bound.hpp"
#include "dag/task_graph.hpp"
#include "model/platform.hpp"

namespace hp {

struct DagLowerBound {
  double area = 0.0;           ///< AreaBound over all tasks
  double critical_path = 0.0;  ///< CP with min(p,q) weights
  double max_min_time = 0.0;   ///< max over tasks of min(p_i, q_i)
  double segmented = 0.0;      ///< best segmented area bound (0 if skipped)

  [[nodiscard]] double value() const noexcept {
    double v = area;
    if (critical_path > v) v = critical_path;
    if (max_min_time > v) v = max_min_time;
    if (segmented > v) v = segmented;
    return v;
  }
};

struct DagLowerBoundOptions {
  /// Number of threshold candidates per direction for the segmented bound;
  /// 0 disables it. Cost is O(thresholds * T log T).
  int segment_thresholds = 24;
};

/// Graph must be finalized and acyclic.
[[nodiscard]] DagLowerBound dag_lower_bound(const TaskGraph& graph,
                                            const Platform& platform,
                                            const DagLowerBoundOptions& options = {});

}  // namespace hp
