#include "bounds/area_bound.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace hp {

AreaBoundResult area_bound(std::span<const Task> tasks,
                           const Platform& platform) {
  AreaBoundResult res;
  const std::size_t count = tasks.size();
  if (count == 0) return res;

  const double m = platform.cpus();
  const double n = platform.gpus();

  res.order.resize(count);
  std::iota(res.order.begin(), res.order.end(), TaskId{0});

  // Degenerate platforms: a single resource class carries everything.
  if (platform.gpus() == 0) {
    for (const Task& t : tasks) res.cpu_work += t.cpu_time;
    res.bound = res.cpu_work / m;
    res.split_index = 0;
    res.gpu_fraction_of_split = 0.0;
    return res;
  }
  if (platform.cpus() == 0) {
    for (const Task& t : tasks) res.gpu_work += t.gpu_time;
    res.bound = res.gpu_work / n;
    res.split_index = count;  // everything "before the split" = on GPU
    res.gpu_fraction_of_split = 0.0;
    return res;
  }

  std::sort(res.order.begin(), res.order.end(), [&](TaskId a, TaskId b) {
    const double ra = tasks[static_cast<std::size_t>(a)].accel();
    const double rb = tasks[static_cast<std::size_t>(b)].accel();
    if (ra != rb) return ra > rb;
    return a < b;
  });

  // suffix_cpu[k] = sum of p_i over order[k..count)
  std::vector<double> suffix_cpu(count + 1, 0.0);
  for (std::size_t k = count; k-- > 0;) {
    suffix_cpu[k] =
        suffix_cpu[k + 1] + tasks[static_cast<std::size_t>(res.order[k])].cpu_time;
  }

  // Scan the split position. At position k, order[0..k) is fully on GPUs
  // (load gpu_acc), order[k] is split with fraction g on the GPU, and
  // order(k..count) is fully on CPUs. Balancing both sides:
  //   (gpu_acc + g*q_k)/n = (suffix_cpu[k+1] + (1-g)*p_k)/m
  double gpu_acc = 0.0;
  for (std::size_t k = 0; k < count; ++k) {
    const Task& t = tasks[static_cast<std::size_t>(res.order[k])];
    const double g = (((suffix_cpu[k + 1] + t.cpu_time) / m) - gpu_acc / n) /
                     (t.gpu_time / n + t.cpu_time / m);
    if (g <= 1.0) {
      const double clamped = std::clamp(g, 0.0, 1.0);
      res.split_index = k;
      res.gpu_fraction_of_split = clamped;
      res.threshold_accel = t.accel();
      res.gpu_work = gpu_acc + clamped * t.gpu_time;
      res.cpu_work = suffix_cpu[k + 1] + (1.0 - clamped) * t.cpu_time;
      res.bound = std::max(res.gpu_work / n, res.cpu_work / m);
      return res;
    }
    gpu_acc += t.gpu_time;
  }

  // Even the last task fully on the GPUs leaves them less loaded than the
  // (empty) CPU side would allow: everything runs on the GPUs.
  res.split_index = count;
  res.gpu_fraction_of_split = 0.0;
  res.threshold_accel = tasks[static_cast<std::size_t>(res.order.back())].accel();
  res.gpu_work = gpu_acc;
  res.cpu_work = 0.0;
  res.bound = gpu_acc / n;
  return res;
}

double area_bound_value(std::span<const Task> tasks, const Platform& platform) {
  return area_bound(tasks, platform).bound;
}

double opt_lower_bound(std::span<const Task> tasks, const Platform& platform) {
  double lb = area_bound_value(tasks, platform);
  const bool has_cpu = platform.cpus() > 0;
  const bool has_gpu = platform.gpus() > 0;
  for (const Task& t : tasks) {
    // On a one-sided platform the unavailable resource's time is not a
    // valid floor: the task must run on what exists.
    const double floor = has_cpu && has_gpu ? t.min_time()
                         : has_cpu          ? t.cpu_time
                                            : t.gpu_time;
    lb = std::max(lb, floor);
  }
  return lb;
}

}  // namespace hp
