#include "fault/replay.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>

namespace hp::fault {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Tie rank at equal times, mirroring obs::replay_schedule: free a worker
/// before re-occupying it, fault markers between.
int tie_rank(obs::EventKind kind) noexcept {
  switch (kind) {
    case obs::EventKind::kAbort:
    case obs::EventKind::kComplete: return 0;
    case obs::EventKind::kWorkerCrash:
    case obs::EventKind::kTaskFail: return 1;
    case obs::EventKind::kTaskRetry: return 2;
    case obs::EventKind::kStart: return 3;
    default: return 4;
  }
}

enum class TaskState : std::uint8_t {
  kPending,  ///< not finished yet, still schedulable
  kDone,     ///< placed
  kDead,     ///< abandoned (budget) or transitively unfinishable
};

}  // namespace

FaultyReplayResult execute_plan_with_faults(const Schedule& plan,
                                            const TaskGraph& graph,
                                            const Platform& platform,
                                            const FaultPlan& faults,
                                            std::span<const Task> actual_times,
                                            obs::EventSink* sink) {
  assert(graph.finalized());
  assert(plan.num_tasks() == graph.size());
  const std::span<const Task> actuals =
      actual_times.empty() ? graph.tasks() : actual_times;
  assert(actuals.size() == graph.size());
  const std::size_t total = graph.size();
  const auto workers = static_cast<std::size_t>(platform.workers());

  FaultyReplayResult result;
  result.schedule = Schedule(total);
  auto& recovery = result.recovery;
  auto& events = result.events;

  // Planned start of each task — the merge key that keeps every per-worker
  // queue in an order consistent with the dependency order.
  std::vector<double> plan_start(total, 0.0);
  std::vector<std::deque<TaskId>> queue(workers);
  {
    std::vector<TaskId> by_start(total);
    for (std::size_t i = 0; i < total; ++i) {
      const Placement& p = plan.placement(static_cast<TaskId>(i));
      assert(p.placed());
      plan_start[i] = p.start;
      by_start[i] = static_cast<TaskId>(i);
    }
    std::sort(by_start.begin(), by_start.end(), [&](TaskId a, TaskId b) {
      const double sa = plan_start[static_cast<std::size_t>(a)];
      const double sb = plan_start[static_cast<std::size_t>(b)];
      if (sa != sb) return sa < sb;
      return a < b;
    });
    for (TaskId id : by_start) {
      queue[static_cast<std::size_t>(plan.placement(id).worker)].push_back(id);
    }
  }

  std::vector<TaskState> state(total, TaskState::kPending);
  std::vector<double> completion(total, -1.0);
  std::vector<double> min_start(total, 0.0);  // retry-backoff floor
  std::vector<int> failed_attempts(total, 0);
  std::vector<double> worker_free(workers, 0.0);
  std::vector<char> dead(workers, 0);
  std::vector<double> crash_time(workers, kInf);
  for (const CrashEvent& c : faults.crashes()) {
    if (c.worker >= 0 && static_cast<std::size_t>(c.worker) < workers) {
      crash_time[static_cast<std::size_t>(c.worker)] = c.time;
    }
  }

  // Move `from`'s remaining queue to the best surviving worker: same type,
  // least remaining planned (estimated) work, lowest id; any type when the
  // victim's type has no survivor; abandon the work when nobody survives.
  // "Surviving" at instant `at` means not yet dead and not yet past its own
  // crash instant (its queue would only bounce again).
  std::size_t dead_count = 0;
  auto remaining_work = [&](std::size_t w) {
    double sum = 0.0;
    const Resource res = platform.type_of(static_cast<WorkerId>(w));
    for (TaskId id : queue[w]) {
      sum += Platform::time_on(graph.tasks()[static_cast<std::size_t>(id)], res);
    }
    return sum;
  };
  auto kill_worker = [&](std::size_t from, double at) {
    dead[from] = 1;
    ++dead_count;
    ++recovery.worker_crashes;
    events.push_back({.time = at,
                      .kind = obs::EventKind::kWorkerCrash,
                      .worker = static_cast<WorkerId>(from)});
    if (queue[from].empty()) return;
    const Resource mine = platform.type_of(static_cast<WorkerId>(from));
    std::size_t target = workers;
    double target_work = 0.0;
    bool target_same_type = false;
    for (std::size_t w = 0; w < workers; ++w) {
      if (w == from || dead[w] != 0 || crash_time[w] <= at) continue;
      const bool same =
          platform.type_of(static_cast<WorkerId>(w)) == mine;
      const double work = remaining_work(w);
      const bool better =
          target == workers || (same && !target_same_type) ||
          (same == target_same_type &&
           (work < target_work || (work == target_work && w < target)));
      if (better) {
        target = w;
        target_work = work;
        target_same_type = same;
      }
    }
    if (target == workers) {
      // Nobody left: everything still queued is unfinishable.
      for (TaskId id : queue[from]) {
        if (state[static_cast<std::size_t>(id)] == TaskState::kPending) {
          state[static_cast<std::size_t>(id)] = TaskState::kDead;
        }
      }
      queue[from].clear();
      return;
    }
    std::deque<TaskId> merged;
    auto& a = queue[target];
    auto& b = queue[from];
    while (!a.empty() || !b.empty()) {
      const bool take_a =
          !a.empty() &&
          (b.empty() ||
           plan_start[static_cast<std::size_t>(a.front())] <=
               plan_start[static_cast<std::size_t>(b.front())]);
      if (take_a) {
        merged.push_back(a.front());
        a.pop_front();
      } else {
        merged.push_back(b.front());
        b.pop_front();
      }
    }
    queue[target] = std::move(merged);
    queue[from].clear();
  };

  // Greedy loop: earliest-startable head of any queue runs next, same as
  // execute_static_plan, plus the fault reactions.
  bool live = true;
  while (live) {
    live = false;
    std::size_t best_w = workers;
    TaskId best_id = kInvalidTask;
    double best_start = 0.0;
    bool restructured = false;
    for (std::size_t w = 0; w < workers && !restructured; ++w) {
      while (!queue[w].empty() &&
             state[static_cast<std::size_t>(queue[w].front())] ==
                 TaskState::kDead) {
        queue[w].pop_front();  // abandoned while queued (cascade)
      }
      if (queue[w].empty()) continue;
      const TaskId id = queue[w].front();
      double ready = std::max(worker_free[w],
                              min_start[static_cast<std::size_t>(id)]);
      bool blocked = false;
      for (TaskId pred : graph.predecessors(id)) {
        const auto pi = static_cast<std::size_t>(pred);
        if (state[pi] == TaskState::kDead) {
          // A dependency can never finish: neither can this task.
          state[static_cast<std::size_t>(id)] = TaskState::kDead;
          queue[w].pop_front();
          restructured = true;
          break;
        }
        if (completion[pi] < 0.0) {
          blocked = true;
          break;
        }
        ready = std::max(ready, completion[pi]);
      }
      if (restructured || blocked) continue;
      if (crash_time[w] <= ready) {
        // The worker dies before it can start anything more.
        kill_worker(w, crash_time[w]);
        restructured = true;
        break;
      }
      if (best_w == workers || ready < best_start ||
          (ready == best_start && w < best_w)) {
        best_w = w;
        best_id = id;
        best_start = ready;
      }
    }
    if (restructured) {
      live = true;
      continue;
    }
    if (best_w == workers) {
      // Either all queues drained, or every head is blocked. The latter is
      // unreachable while queues stay planned-start sorted (dependencies
      // always have earlier planned starts); abandon defensively if it
      // ever happens rather than spinning.
      bool anything_left = false;
      for (std::size_t w = 0; w < workers; ++w) {
        for (TaskId id : queue[w]) {
          if (state[static_cast<std::size_t>(id)] == TaskState::kPending) {
            state[static_cast<std::size_t>(id)] = TaskState::kDead;
            anything_left = true;
          }
        }
        queue[w].clear();
      }
      assert(!anything_left && "faulty replay wedged on blocked heads");
      (void)anything_left;
      break;
    }

    queue[best_w].pop_front();
    const auto ti = static_cast<std::size_t>(best_id);
    const Resource res = platform.type_of(static_cast<WorkerId>(best_w));
    const double dt = Platform::time_on(actuals[ti], res);
    const AttemptOutcome outcome =
        faults.attempt_outcome(best_id, failed_attempts[ti]);
    const double work = outcome.fails ? dt * outcome.fail_fraction : dt;
    const double finish = faults.finish_time(static_cast<WorkerId>(best_w),
                                             best_start, work);
    events.push_back({.time = best_start,
                      .kind = obs::EventKind::kStart,
                      .task = best_id,
                      .worker = static_cast<WorkerId>(best_w)});
    if (crash_time[best_w] < finish) {
      // Crash mid-flight: progress lost, no budget charge, the task and the
      // rest of the queue fail over together.
      const double at = crash_time[best_w];
      result.schedule.add_aborted(best_id, static_cast<WorkerId>(best_w),
                                  best_start, at);
      events.push_back({.time = at,
                        .kind = obs::EventKind::kAbort,
                        .task = best_id,
                        .worker = static_cast<WorkerId>(best_w)});
      queue[best_w].push_front(best_id);
      ++recovery.crash_requeues;
      kill_worker(best_w, at);
      live = true;
      continue;
    }
    if (outcome.fails) {
      result.schedule.add_aborted(best_id, static_cast<WorkerId>(best_w),
                                  best_start, finish);
      events.push_back({.time = finish,
                        .kind = obs::EventKind::kAbort,
                        .task = best_id,
                        .worker = static_cast<WorkerId>(best_w)});
      const int failures = ++failed_attempts[ti];
      ++recovery.task_failures;
      events.push_back({.time = finish,
                        .kind = obs::EventKind::kTaskFail,
                        .task = best_id,
                        .worker = static_cast<WorkerId>(best_w),
                        .value = static_cast<double>(failures - 1)});
      worker_free[best_w] = finish;
      if (failures >= faults.max_attempts()) {
        state[ti] = TaskState::kDead;
        ++recovery.tasks_abandoned;
      } else {
        ++recovery.task_retries;
        min_start[ti] = finish + faults.backoff_delay(failures);
        events.push_back({.time = min_start[ti],
                          .kind = obs::EventKind::kTaskRetry,
                          .task = best_id,
                          .value = static_cast<double>(failures)});
        queue[best_w].push_front(best_id);  // retry in place, after backoff
      }
      live = true;
      continue;
    }
    result.schedule.place(best_id, static_cast<WorkerId>(best_w), best_start,
                          finish);
    completion[ti] = finish;
    state[ti] = TaskState::kDone;
    worker_free[best_w] = finish;
    events.push_back({.time = finish,
                      .kind = obs::EventKind::kComplete,
                      .task = best_id,
                      .worker = static_cast<WorkerId>(best_w)});
    live = true;
  }

  const double makespan = result.schedule.makespan();
  // Crashes and straggler windows that fell inside the run but never had to
  // restructure anything still happened — report them.
  for (const CrashEvent& c : faults.crashes()) {
    if (c.worker < 0 || static_cast<std::size_t>(c.worker) >= workers) continue;
    if (dead[static_cast<std::size_t>(c.worker)] != 0) continue;
    if (c.time > makespan) continue;
    ++recovery.worker_crashes;
    events.push_back({.time = c.time,
                      .kind = obs::EventKind::kWorkerCrash,
                      .worker = c.worker});
  }
  for (const StragglerWindow& w : faults.stragglers()) {
    if (w.worker < 0 || static_cast<std::size_t>(w.worker) >= workers ||
        w.begin > makespan) {
      continue;
    }
    ++recovery.straggler_windows;
    events.push_back({.time = w.begin,
                      .kind = obs::EventKind::kWorkerSlowBegin,
                      .worker = w.worker,
                      .value = w.slowdown});
    events.push_back({.time = w.end,
                      .kind = obs::EventKind::kWorkerSlowEnd,
                      .worker = w.worker});
  }
  for (std::size_t i = 0; i < total; ++i) {
    if (state[i] != TaskState::kDone) ++recovery.tasks_unfinished;
  }
  recovery.degraded = recovery.tasks_unfinished > 0;
  if (recovery.degraded) {
    events.push_back({.time = makespan,
                      .kind = obs::EventKind::kRunDegraded,
                      .value = static_cast<double>(recovery.tasks_unfinished)});
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const obs::Event& x, const obs::Event& y) {
                     if (x.time != y.time) return x.time < y.time;
                     const int rx = tie_rank(x.kind);
                     const int ry = tie_rank(y.kind);
                     if (rx != ry) return rx < ry;
                     return x.task < y.task;
                   });
  if (sink != nullptr) {
    for (const obs::Event& e : events) sink->on_event(e);
  }
  return result;
}

}  // namespace hp::fault
