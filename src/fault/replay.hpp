#pragma once
// Replay a static plan (HEFT, DualHP) through a fault plan.
//
// The dynamic HeteroPrio engine recovers from faults by rescheduling online.
// A static plan cannot do that — but a fair comparison must not let it die
// at the first crash either. This replay models the strongest reasonable
// static runtime: it keeps the plan's worker assignment and per-worker order
// while the world cooperates, and applies a fixed, plan-agnostic failover
// policy when it does not:
//
//   * Crash: the in-flight task is aborted at the crash instant and, with
//     the crashed worker's remaining queue, moved to the surviving worker of
//     the same resource type with the least remaining planned work (ties:
//     lowest id; any surviving type when the victim's type died out). The
//     merge preserves planned start order, which keeps the greedy replay
//     deadlock-free.
//   * Straggler window: the attempt simply takes longer (same piecewise
//     integration as the engine); the plan is not re-sequenced.
//   * Task failure: the attempt aborts at its fail point and the task is
//     retried on the same worker after the plan's backoff, until the
//     attempt budget runs out and the task (with every transitive
//     dependent) is abandoned — the run is then degraded.
//
// Determinism: the replay reads only the plan, the graph and the FaultPlan;
// attempt outcomes are the same pure (seed, task, attempt) draws the engine
// sees, so engine-vs-replay comparisons face identical fault realities.

#include <span>
#include <vector>

#include "dag/task_graph.hpp"
#include "fault/fault_plan.hpp"
#include "model/platform.hpp"
#include "obs/event.hpp"
#include "sched/schedule.hpp"

namespace hp::fault {

struct FaultyReplayResult {
  Schedule schedule;
  RecoveryReport recovery;
  /// Lifecycle and fault events of the replay, time-sorted (ready events
  /// are not synthesized; starts, completes, aborts and the fault kinds
  /// are). Also pushed to the sink argument when one is given.
  std::vector<obs::Event> events;
};

/// Replay `plan` (which must place every task) under `faults`. Tasks run
/// for `actual_times` (empty: the graph's own times) stretched by straggler
/// windows. Unfinished tasks keep an unplaced Placement in the result
/// schedule; check with ScheduleCheckOptions{.require_complete = false}.
[[nodiscard]] FaultyReplayResult execute_plan_with_faults(
    const Schedule& plan, const TaskGraph& graph, const Platform& platform,
    const FaultPlan& faults, std::span<const Task> actual_times = {},
    obs::EventSink* sink = nullptr);

}  // namespace hp::fault
