#pragma once
// Deterministic fault plans for fault-injection experiments.
//
// A FaultPlan describes everything that will go wrong during one simulated
// run: permanent worker crashes at fixed instants, transient straggler
// windows that scale a worker's speed, and a per-task-attempt failure
// probability. The plan is fixed before the run starts and the schedulers
// never read it — they only observe its consequences (a completion that
// never arrives, a task that takes longer than estimated, an attempt that
// aborts) and react online. That separation keeps the paper's premise
// intact: decisions use estimates, the clock uses reality.
//
// Determinism: every random choice is derived from the plan seed and the
// coordinates of the thing it affects (worker id, task id, attempt index)
// via util::seed_from_cell, never from a shared stream. Two runs with the
// same plan — or the same plan rebuilt in another thread of a bench grid —
// inject byte-identical faults.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "model/platform.hpp"
#include "model/task.hpp"

namespace hp::fault {

/// Permanent loss of one worker: at `time` it aborts whatever it is running
/// and never accepts work again.
struct CrashEvent {
  WorkerId worker = -1;
  double time = 0.0;

  friend bool operator==(const CrashEvent&, const CrashEvent&) = default;
};

/// Transient slowdown of one worker: during [begin, end) it processes work
/// at 1/slowdown of its normal speed (slowdown >= 1).
struct StragglerWindow {
  WorkerId worker = -1;
  double begin = 0.0;
  double end = 0.0;
  double slowdown = 1.0;

  friend bool operator==(const StragglerWindow&,
                         const StragglerWindow&) = default;
};

/// What one attempt of one task does.
struct AttemptOutcome {
  bool fails = false;
  /// Fraction of the attempt's (effective) duration that elapses before the
  /// failure aborts it. Meaningless when `fails` is false.
  double fail_fraction = 0.0;
};

/// Generation parameters for FaultPlan::generate(). `horizon` sets the time
/// scale of the drawn instants; pass (an estimate of) the fault-free
/// makespan so injected faults actually land inside the run.
struct FaultSpec {
  int crashes = 0;           ///< number of distinct workers to crash
  int stragglers = 0;        ///< number of straggler windows
  double task_fail_prob = 0.0;  ///< per-attempt failure probability
  double slowdown_min = 2.0;    ///< straggler slowdown factor range
  double slowdown_max = 6.0;
  double horizon = 1.0;      ///< time scale of drawn instants (> 0)
  int max_attempts = 4;      ///< attempts per task before it is abandoned
  double retry_backoff = 0.0;  ///< base delay before retry k is re-enqueued
                               ///< (doubles per extra failed attempt)
  std::uint64_t seed = 1;
};

/// Parse a comma-separated spec string into `spec` (missing keys keep their
/// current values): "crashes=2,stragglers=1,taskfail=0.05,slow=4,
/// retries=3,backoff=0.1,seed=7,horizon=12.5". "slow=X" sets both ends of
/// the slowdown range. Returns false (with a message in `*error`) on an
/// unknown key or a malformed value.
bool parse_spec(const std::string& text, FaultSpec* spec, std::string* error);

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Draw a plan from `spec` for `platform`: crash instants are exponential
  /// (satellite util::Rng::exponential) around the horizon, straggler
  /// windows uniform within it, and per-attempt failures Bernoulli draws
  /// re-derived from (seed, task, attempt) at query time.
  [[nodiscard]] static FaultPlan generate(const FaultSpec& spec,
                                          const Platform& platform);

  /// Hand-built plans (tests, CLI files). normalize() is called internally:
  /// crashes sort by time, windows sort per worker, overlapping windows of
  /// one worker are merged (max slowdown wins).
  void add_crash(WorkerId worker, double time);
  void add_straggler(WorkerId worker, double begin, double end,
                     double slowdown);
  void set_task_faults(double fail_prob, int max_attempts,
                       double retry_backoff, std::uint64_t seed);

  /// True when the plan injects nothing; engines treat this exactly like a
  /// null plan (the regression-tested no-op guarantee).
  [[nodiscard]] bool empty() const noexcept {
    return crashes_.empty() && windows_.empty() && task_fail_prob_ <= 0.0;
  }

  [[nodiscard]] std::span<const CrashEvent> crashes() const noexcept {
    return crashes_;
  }
  [[nodiscard]] std::span<const StragglerWindow> stragglers() const noexcept {
    return windows_;
  }
  [[nodiscard]] double task_fail_prob() const noexcept {
    return task_fail_prob_;
  }
  [[nodiscard]] int max_attempts() const noexcept { return max_attempts_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Crash record of `worker`, or nullptr if it never crashes.
  [[nodiscard]] const CrashEvent* crash_of(WorkerId worker) const noexcept;

  /// Wall-clock completion instant of `duration` units of work started at
  /// `start` on `worker`, integrating the worker's straggler windows
  /// (speed 1 outside a window, 1/slowdown inside).
  [[nodiscard]] double finish_time(WorkerId worker, double start,
                                   double duration) const noexcept;

  /// Outcome of the `attempt`-th (0-based) attempt of `task`. Pure in
  /// (seed, task, attempt): independent of time, worker and query order.
  ///
  /// This purity is what makes the plan compose with online arrivals: a
  /// fault "targeting" a task that has not arrived yet is not an event to
  /// buffer or drop — it is a draw that simply happens whenever the task's
  /// attempt actually starts, however late that is. A staggered-arrival run
  /// therefore observes the exact same per-task failure/retry/abandon
  /// sequence as the all-at-t=0 run of the same plan (regression-tested in
  /// tests/test_online_faults.cpp). Worker-targeted events (crashes,
  /// straggler windows) are wall-clock anchored and apply regardless of
  /// arrivals.
  [[nodiscard]] AttemptOutcome attempt_outcome(TaskId task,
                                               int attempt) const noexcept;

  /// Delay before the attempt after `failed_attempts` failures re-enters
  /// the ready queue: retry_backoff * 2^(failed_attempts - 1).
  [[nodiscard]] double backoff_delay(int failed_attempts) const noexcept;

  /// Workers of `platform` (per type) whose crash time is <= `time`.
  [[nodiscard]] int crashed_before(double time, Resource type,
                                   const Platform& platform) const noexcept;

  /// Text round-trip (the `.hpf` format of docs/robustness.md).
  [[nodiscard]] std::string to_text() const;
  static bool from_text(const std::string& text, FaultPlan* out,
                        std::string* error);

  /// Human-readable multi-line summary.
  [[nodiscard]] std::string describe() const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;

 private:
  void normalize();

  std::vector<CrashEvent> crashes_;        // sorted by (time, worker)
  std::vector<StragglerWindow> windows_;   // sorted by (worker, begin)
  double task_fail_prob_ = 0.0;
  int max_attempts_ = 4;
  double retry_backoff_ = 0.0;
  std::uint64_t seed_ = 1;
};

/// Online-recovery outcome of one faulty run (engine or faulty replay).
struct RecoveryReport {
  int worker_crashes = 0;    ///< crash events applied before the run ended
  int crash_requeues = 0;    ///< in-flight tasks re-enqueued after a crash
  int straggler_windows = 0; ///< windows that opened before the run ended
  int task_failures = 0;     ///< attempts aborted by an injected fault
  int task_retries = 0;      ///< re-enqueues after a failed attempt
  int tasks_abandoned = 0;   ///< tasks whose retry budget ran out
  int tasks_unfinished = 0;  ///< tasks without a final placement at the end
  int straggler_respawns = 0;  ///< online runtime: overdue attempts aborted
                               ///< and re-enqueued (never charged against the
                               ///< task's retry budget — the draws of
                               ///< attempt_outcome must not shift)
  bool degraded = false;     ///< tasks_unfinished > 0

  friend bool operator==(const RecoveryReport&,
                         const RecoveryReport&) = default;
};

}  // namespace hp::fault
