#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "util/rng.hpp"

namespace hp::fault {

namespace {

// Salts separating the independent random purposes of one plan seed.
constexpr std::uint64_t kCrashSalt = 0x6372617368ULL;      // "crash"
constexpr std::uint64_t kStragglerSalt = 0x736c6f77ULL;    // "slow"
constexpr std::uint64_t kAttemptSalt = 0x6661696cULL;      // "fail"

}  // namespace

bool parse_spec(const std::string& text, FaultSpec* spec, std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(start, comma - start);
    start = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) return fail("expected key=value in '" + item + "'");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    char* end = nullptr;
    const double num = std::strtod(value.c_str(), &end);
    if (end != value.c_str() + value.size() || value.empty()) {
      return fail("bad value for '" + key + "': '" + value + "'");
    }
    if (key == "crashes") {
      spec->crashes = static_cast<int>(num);
    } else if (key == "stragglers") {
      spec->stragglers = static_cast<int>(num);
    } else if (key == "taskfail") {
      spec->task_fail_prob = num;
    } else if (key == "slow") {
      spec->slowdown_min = spec->slowdown_max = num;
    } else if (key == "retries") {
      // "retries" counts re-attempts; attempts = first try + retries.
      spec->max_attempts = static_cast<int>(num) + 1;
    } else if (key == "backoff") {
      spec->retry_backoff = num;
    } else if (key == "seed") {
      spec->seed = static_cast<std::uint64_t>(num);
    } else if (key == "horizon") {
      spec->horizon = num;
    } else {
      return fail("unknown fault-spec key '" + key + "'");
    }
  }
  return true;
}

FaultPlan FaultPlan::generate(const FaultSpec& spec, const Platform& platform) {
  FaultPlan plan;
  plan.task_fail_prob_ = std::clamp(spec.task_fail_prob, 0.0, 1.0);
  plan.max_attempts_ = std::max(1, spec.max_attempts);
  plan.retry_backoff_ = std::max(0.0, spec.retry_backoff);
  plan.seed_ = spec.seed;
  const double horizon = spec.horizon > 0.0 ? spec.horizon : 1.0;
  const int workers = platform.workers();

  // Crashes: distinct workers; instants drawn from the satellite
  // exponential (rate 2/horizon => mean horizon/2, so most crashes land
  // well inside the run they were scaled to).
  {
    util::Rng rng(util::seed_from_cell({spec.seed}, kCrashSalt));
    std::vector<WorkerId> pool(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool[static_cast<std::size_t>(w)] = w;
    const int count = std::min(spec.crashes, workers);
    for (int k = 0; k < count; ++k) {
      const auto pick = static_cast<std::size_t>(
          rng.bounded(static_cast<std::uint64_t>(pool.size())));
      const WorkerId victim = pool[pick];
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
      plan.crashes_.push_back(
          CrashEvent{victim, rng.exponential(2.0 / horizon)});
    }
  }

  // Straggler windows: uniform begin, exponential length, uniform slowdown.
  {
    util::Rng rng(util::seed_from_cell({spec.seed}, kStragglerSalt));
    for (int k = 0; k < spec.stragglers; ++k) {
      const auto w = static_cast<WorkerId>(
          rng.bounded(static_cast<std::uint64_t>(workers)));
      const double begin = rng.uniform(0.0, horizon);
      const double length = rng.exponential(4.0 / horizon);
      const double slowdown =
          spec.slowdown_min >= spec.slowdown_max
              ? spec.slowdown_min
              : rng.uniform(spec.slowdown_min, spec.slowdown_max);
      plan.windows_.push_back(
          StragglerWindow{w, begin, begin + length, std::max(1.0, slowdown)});
    }
  }

  plan.normalize();
  return plan;
}

void FaultPlan::add_crash(WorkerId worker, double time) {
  crashes_.push_back(CrashEvent{worker, time});
  normalize();
}

void FaultPlan::add_straggler(WorkerId worker, double begin, double end,
                              double slowdown) {
  windows_.push_back(StragglerWindow{worker, begin, end, std::max(1.0, slowdown)});
  normalize();
}

void FaultPlan::set_task_faults(double fail_prob, int max_attempts,
                                double retry_backoff, std::uint64_t seed) {
  task_fail_prob_ = std::clamp(fail_prob, 0.0, 1.0);
  max_attempts_ = std::max(1, max_attempts);
  retry_backoff_ = std::max(0.0, retry_backoff);
  seed_ = seed;
}

void FaultPlan::normalize() {
  std::sort(crashes_.begin(), crashes_.end(),
            [](const CrashEvent& a, const CrashEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.worker < b.worker;
            });
  // One crash per worker: the earliest wins.
  std::vector<CrashEvent> unique;
  for (const CrashEvent& c : crashes_) {
    const bool seen = std::any_of(
        unique.begin(), unique.end(),
        [&](const CrashEvent& u) { return u.worker == c.worker; });
    if (!seen) unique.push_back(c);
  }
  crashes_ = std::move(unique);

  std::sort(windows_.begin(), windows_.end(),
            [](const StragglerWindow& a, const StragglerWindow& b) {
              if (a.worker != b.worker) return a.worker < b.worker;
              if (a.begin != b.begin) return a.begin < b.begin;
              return a.end < b.end;
            });
  // Merge overlapping windows of one worker (max slowdown wins), so
  // finish_time can walk them as disjoint intervals.
  std::vector<StragglerWindow> merged;
  for (const StragglerWindow& w : windows_) {
    if (w.end <= w.begin) continue;
    if (!merged.empty() && merged.back().worker == w.worker &&
        w.begin < merged.back().end) {
      merged.back().end = std::max(merged.back().end, w.end);
      merged.back().slowdown = std::max(merged.back().slowdown, w.slowdown);
    } else {
      merged.push_back(w);
    }
  }
  windows_ = std::move(merged);
}

const CrashEvent* FaultPlan::crash_of(WorkerId worker) const noexcept {
  for (const CrashEvent& c : crashes_) {
    if (c.worker == worker) return &c;
  }
  return nullptr;
}

double FaultPlan::finish_time(WorkerId worker, double start,
                              double duration) const noexcept {
  double t = start;
  double remaining = duration;  // work units at speed 1
  for (const StragglerWindow& w : windows_) {
    if (w.worker != worker || w.end <= t) continue;
    if (remaining <= 0.0) break;
    if (w.begin > t) {
      const double step = std::min(remaining, w.begin - t);
      t += step;
      remaining -= step;
      if (remaining <= 0.0) break;
    }
    // Inside [max(t, begin), end): speed 1/slowdown.
    const double capacity = (w.end - t) / w.slowdown;
    if (remaining <= capacity) {
      t += remaining * w.slowdown;
      remaining = 0.0;
      break;
    }
    remaining -= capacity;
    t = w.end;
  }
  return t + remaining;
}

AttemptOutcome FaultPlan::attempt_outcome(TaskId task,
                                          int attempt) const noexcept {
  AttemptOutcome out;
  if (task_fail_prob_ <= 0.0) return out;
  util::Rng rng(util::seed_from_cell({static_cast<std::uint64_t>(task),
                                      static_cast<std::uint64_t>(attempt)},
                                     seed_ ^ kAttemptSalt));
  out.fails = rng.bernoulli(task_fail_prob_);
  // Always drawn so the stream shape is attempt-independent; the fraction
  // keeps failures strictly inside the attempt (a zero-length abort would
  // be indistinguishable from never starting).
  out.fail_fraction = rng.uniform(0.05, 0.95);
  return out;
}

double FaultPlan::backoff_delay(int failed_attempts) const noexcept {
  if (retry_backoff_ <= 0.0 || failed_attempts <= 0) return 0.0;
  return retry_backoff_ * std::ldexp(1.0, failed_attempts - 1);
}

int FaultPlan::crashed_before(double time, Resource type,
                              const Platform& platform) const noexcept {
  int count = 0;
  for (const CrashEvent& c : crashes_) {
    if (c.time <= time && c.worker >= 0 && c.worker < platform.workers() &&
        platform.type_of(c.worker) == type) {
      ++count;
    }
  }
  return count;
}

std::string FaultPlan::to_text() const {
  std::ostringstream oss;
  oss.precision(std::numeric_limits<double>::max_digits10);
  oss << "faultplan v1\n";
  oss << "seed " << seed_ << '\n';
  oss << "task-fail-prob " << task_fail_prob_ << '\n';
  oss << "max-attempts " << max_attempts_ << '\n';
  oss << "retry-backoff " << retry_backoff_ << '\n';
  for (const CrashEvent& c : crashes_) {
    oss << "crash " << c.worker << ' ' << c.time << '\n';
  }
  for (const StragglerWindow& w : windows_) {
    oss << "slow " << w.worker << ' ' << w.begin << ' ' << w.end << ' '
        << w.slowdown << '\n';
  }
  return oss.str();
}

bool FaultPlan::from_text(const std::string& text, FaultPlan* out,
                          std::string* error) {
  const auto fail = [&](std::size_t line_no, const std::string& why) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + why;
    }
    return false;
  };
  *out = FaultPlan{};
  std::istringstream iss(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(iss, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (line_no == 1) {
      std::string version;
      fields >> version;
      if (key != "faultplan" || version != "v1") {
        return fail(line_no, "expected 'faultplan v1' header");
      }
      continue;
    }
    if (key == "seed") {
      if (!(fields >> out->seed_)) return fail(line_no, "bad seed");
    } else if (key == "task-fail-prob") {
      if (!(fields >> out->task_fail_prob_)) return fail(line_no, "bad prob");
    } else if (key == "max-attempts") {
      if (!(fields >> out->max_attempts_)) return fail(line_no, "bad attempts");
    } else if (key == "retry-backoff") {
      if (!(fields >> out->retry_backoff_)) return fail(line_no, "bad backoff");
    } else if (key == "crash") {
      CrashEvent c;
      if (!(fields >> c.worker >> c.time)) return fail(line_no, "bad crash");
      out->crashes_.push_back(c);
    } else if (key == "slow") {
      StragglerWindow w;
      if (!(fields >> w.worker >> w.begin >> w.end >> w.slowdown)) {
        return fail(line_no, "bad slow window");
      }
      out->windows_.push_back(w);
    } else {
      return fail(line_no, "unknown directive '" + key + "'");
    }
  }
  if (line_no == 0) return fail(0, "empty document");
  out->normalize();
  return true;
}

std::string FaultPlan::describe() const {
  std::ostringstream oss;
  oss << "fault plan: " << crashes_.size() << " crash(es), "
      << windows_.size() << " straggler window(s), task-fail p="
      << task_fail_prob_ << " (max " << max_attempts_ << " attempts, backoff "
      << retry_backoff_ << ")\n";
  for (const CrashEvent& c : crashes_) {
    oss << "  crash worker " << c.worker << " at t=" << c.time << '\n';
  }
  for (const StragglerWindow& w : windows_) {
    oss << "  slow worker " << w.worker << " x" << w.slowdown << " in ["
        << w.begin << ", " << w.end << ")\n";
  }
  return oss.str();
}

}  // namespace hp::fault
