#include "runtime/stf_runtime.hpp"

#include <cassert>
#include <utility>

#include "baselines/dualhp.hpp"
#include "baselines/heft.hpp"
#include "bounds/dag_lower_bound.hpp"
#include "core/heteroprio_dag.hpp"
#include "fault/replay.hpp"
#include "obs/replay.hpp"
#include "sched/executor.hpp"

namespace hp::runtime {

const char* policy_name(SchedulerPolicy policy) noexcept {
  switch (policy) {
    case SchedulerPolicy::kHeteroPrio: return "HeteroPrio";
    case SchedulerPolicy::kHeft: return "HEFT";
    case SchedulerPolicy::kDualHp: return "DualHP";
  }
  return "?";
}

StfRuntime::StfRuntime(Platform platform, RuntimeOptions options)
    : platform_(platform), options_(options) {}

DataHandle StfRuntime::register_data(std::string name) {
  DataState state;
  state.name = name.empty() ? "d" + std::to_string(data_.size()) : std::move(name);
  data_.push_back(std::move(state));
  return static_cast<DataHandle>(data_.size() - 1);
}

TaskId StfRuntime::submit(const Task& timing,
                          std::span<const DataAccess> accesses) {
  ran_ = false;
  const TaskId id = graph_.add_task(timing);
  for (const DataAccess& access : accesses) {
    assert(access.handle >= 0 &&
           static_cast<std::size_t>(access.handle) < data_.size());
    DataState& state = data_[static_cast<std::size_t>(access.handle)];
    if (access.mode == AccessMode::kRead) {
      if (state.last_writer != kInvalidTask) {
        graph_.add_edge(state.last_writer, id);
      }
      state.readers_since_write.push_back(id);
    } else {
      if (state.last_writer != kInvalidTask) {
        graph_.add_edge(state.last_writer, id);
      }
      for (const TaskId reader : state.readers_since_write) {
        if (reader != id) graph_.add_edge(reader, id);
      }
      state.last_writer = id;
      state.readers_since_write.clear();
    }
  }
  return id;
}

TaskId StfRuntime::submit(const Task& timing,
                          std::initializer_list<DataAccess> accesses) {
  return submit(timing, std::span<const DataAccess>(accesses.begin(),
                                                    accesses.size()));
}

double StfRuntime::run() {
  if (ran_) return schedule_.makespan();
  graph_.finalize();
  assign_priorities(graph_, options_.rank);

  // Draw the actual durations (decisions always use the estimates held in
  // the graph's tasks).
  actuals_.assign(graph_.tasks().begin(), graph_.tasks().end());
  if (options_.noise_sigma > 0.0) {
    util::Rng rng(options_.noise_seed);
    for (Task& t : actuals_) {
      t.cpu_time *= rng.lognormal(0.0, options_.noise_sigma);
      t.gpu_time *= rng.lognormal(0.0, options_.noise_sigma);
    }
  }

  const fault::FaultPlan* faults = options_.faults;
  const bool faulty = faults != nullptr && !faults->empty();

  // Run a static plan under the actual durations: the exact fault-free
  // replay, or the failover replay when a fault plan is live.
  auto run_static_plan = [&](const Schedule& plan) {
    if (faulty) {
      fault::FaultyReplayResult replayed = fault::execute_plan_with_faults(
          plan, graph_, platform_, *faults, actuals_, options_.sink);
      schedule_ = std::move(replayed.schedule);
      stats_.recovery = replayed.recovery;
      return;
    }
    schedule_ = execute_static_plan(plan, graph_, platform_, actuals_);
    // Replay the *realized* schedule, not the estimate-time plan.
    obs::replay_schedule_to(schedule_, platform_, options_.sink);
  };

  stats_ = HeteroPrioStats{};
  switch (options_.policy) {
    case SchedulerPolicy::kHeteroPrio: {
      HeteroPrioOptions hp_options;
      hp_options.actual_times = actuals_;
      hp_options.sink = options_.sink;
      hp_options.faults = options_.faults;
      schedule_ = heteroprio_dag(graph_, platform_, hp_options, &stats_);
      break;
    }
    case SchedulerPolicy::kHeft: {
      HeftOptions heft_options;
      heft_options.rank =
          options_.rank == RankScheme::kFifo ? RankScheme::kAvg : options_.rank;
      run_static_plan(heft(graph_, platform_, heft_options));
      break;
    }
    case SchedulerPolicy::kDualHp: {
      DualHpOptions dual_options;
      dual_options.fifo_order = options_.rank == RankScheme::kFifo;
      run_static_plan(dualhp_dag(graph_, platform_, dual_options));
      break;
    }
  }
  ran_ = true;

  bound_check_ = obs::BoundCheck{};
  if (options_.check_bounds) {
    // The lower bound uses the estimate-time graph; with noisy actuals the
    // verdict is doubly advisory (DAG run + approximate bound).
    obs::WatchdogOptions wd;
    wd.dag = true;
    wd.sink = options_.sink;
    const double lb = dag_lower_bound(graph_, platform_).value();
    if (faulty) {
      // Judge the bound shape against what survived to the end of the run;
      // a platform that shrank to one class (or nothing) is checked against
      // the degenerate-shape bound, not the constructor-time one.
      const double end = schedule_.makespan();
      const int cpus = platform_.cpus() - faults->crashed_before(
                                              end, Resource::kCpu, platform_);
      const int gpus = platform_.gpus() - faults->crashed_before(
                                              end, Resource::kGpu, platform_);
      bound_check_ =
          obs::check_makespan_bound(schedule_.makespan(), lb, cpus, gpus, wd);
    } else {
      bound_check_ = obs::check_schedule_bound(schedule_, lb, platform_, wd);
    }
  }
  return schedule_.makespan();
}

}  // namespace hp::runtime
