#include "runtime/stf_runtime.hpp"

#include <cassert>

#include "baselines/dualhp.hpp"
#include "baselines/heft.hpp"
#include "bounds/dag_lower_bound.hpp"
#include "core/heteroprio_dag.hpp"
#include "obs/replay.hpp"
#include "sched/executor.hpp"

namespace hp::runtime {

const char* policy_name(SchedulerPolicy policy) noexcept {
  switch (policy) {
    case SchedulerPolicy::kHeteroPrio: return "HeteroPrio";
    case SchedulerPolicy::kHeft: return "HEFT";
    case SchedulerPolicy::kDualHp: return "DualHP";
  }
  return "?";
}

StfRuntime::StfRuntime(Platform platform, RuntimeOptions options)
    : platform_(platform), options_(options) {}

DataHandle StfRuntime::register_data(std::string name) {
  DataState state;
  state.name = name.empty() ? "d" + std::to_string(data_.size()) : std::move(name);
  data_.push_back(std::move(state));
  return static_cast<DataHandle>(data_.size() - 1);
}

TaskId StfRuntime::submit(const Task& timing,
                          std::span<const DataAccess> accesses) {
  ran_ = false;
  const TaskId id = graph_.add_task(timing);
  for (const DataAccess& access : accesses) {
    assert(access.handle >= 0 &&
           static_cast<std::size_t>(access.handle) < data_.size());
    DataState& state = data_[static_cast<std::size_t>(access.handle)];
    if (access.mode == AccessMode::kRead) {
      if (state.last_writer != kInvalidTask) {
        graph_.add_edge(state.last_writer, id);
      }
      state.readers_since_write.push_back(id);
    } else {
      if (state.last_writer != kInvalidTask) {
        graph_.add_edge(state.last_writer, id);
      }
      for (const TaskId reader : state.readers_since_write) {
        if (reader != id) graph_.add_edge(reader, id);
      }
      state.last_writer = id;
      state.readers_since_write.clear();
    }
  }
  return id;
}

TaskId StfRuntime::submit(const Task& timing,
                          std::initializer_list<DataAccess> accesses) {
  return submit(timing, std::span<const DataAccess>(accesses.begin(),
                                                    accesses.size()));
}

double StfRuntime::run() {
  if (ran_) return schedule_.makespan();
  graph_.finalize();
  assign_priorities(graph_, options_.rank);

  // Draw the actual durations (decisions always use the estimates held in
  // the graph's tasks).
  actuals_.assign(graph_.tasks().begin(), graph_.tasks().end());
  if (options_.noise_sigma > 0.0) {
    util::Rng rng(options_.noise_seed);
    for (Task& t : actuals_) {
      t.cpu_time *= rng.lognormal(0.0, options_.noise_sigma);
      t.gpu_time *= rng.lognormal(0.0, options_.noise_sigma);
    }
  }

  stats_ = HeteroPrioStats{};
  switch (options_.policy) {
    case SchedulerPolicy::kHeteroPrio: {
      HeteroPrioOptions hp_options;
      hp_options.actual_times = actuals_;
      hp_options.sink = options_.sink;
      schedule_ = heteroprio_dag(graph_, platform_, hp_options, &stats_);
      break;
    }
    case SchedulerPolicy::kHeft: {
      HeftOptions heft_options;
      heft_options.rank =
          options_.rank == RankScheme::kFifo ? RankScheme::kAvg : options_.rank;
      const Schedule plan = heft(graph_, platform_, heft_options);
      schedule_ = execute_static_plan(plan, graph_, platform_, actuals_);
      // Replay the *realized* schedule, not the estimate-time plan.
      obs::replay_schedule_to(schedule_, platform_, options_.sink);
      break;
    }
    case SchedulerPolicy::kDualHp: {
      DualHpOptions dual_options;
      dual_options.fifo_order = options_.rank == RankScheme::kFifo;
      const Schedule plan = dualhp_dag(graph_, platform_, dual_options);
      schedule_ = execute_static_plan(plan, graph_, platform_, actuals_);
      obs::replay_schedule_to(schedule_, platform_, options_.sink);
      break;
    }
  }
  ran_ = true;

  bound_check_ = obs::BoundCheck{};
  if (options_.check_bounds) {
    // The lower bound uses the estimate-time graph; with noisy actuals the
    // verdict is doubly advisory (DAG run + approximate bound).
    obs::WatchdogOptions wd;
    wd.dag = true;
    wd.sink = options_.sink;
    bound_check_ = obs::check_schedule_bound(
        schedule_, dag_lower_bound(graph_, platform_).value(), platform_, wd);
  }
  return schedule_.makespan();
}

}  // namespace hp::runtime
