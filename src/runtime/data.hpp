#pragma once
// Data-access declarations for the sequential-task-flow runtime.
//
// As in StarPU/QUARK/PaRSEC-DTD, a task declares which data it touches and
// how; the runtime infers the dependency DAG from the sequential submission
// order (RAW, WAR and WAW — there is no renaming, so a write serializes
// against everything since the previous write).

#include <cstdint>

namespace hp::runtime {

/// Opaque handle to a registered piece of data (e.g. a matrix tile).
using DataHandle = std::int32_t;
constexpr DataHandle kInvalidData = -1;

enum class AccessMode : std::uint8_t {
  kRead,       ///< RAW dependency on the last writer
  kWrite,      ///< WAW on the last writer + WAR on readers since
  kReadWrite,  ///< same edges as kWrite (in-place update)
};

struct DataAccess {
  DataHandle handle = kInvalidData;
  AccessMode mode = AccessMode::kRead;
};

/// Shorthands for call sites: R(h), W(h), RW(h).
[[nodiscard]] constexpr DataAccess R(DataHandle h) noexcept {
  return {h, AccessMode::kRead};
}
[[nodiscard]] constexpr DataAccess W(DataHandle h) noexcept {
  return {h, AccessMode::kWrite};
}
[[nodiscard]] constexpr DataAccess RW(DataHandle h) noexcept {
  return {h, AccessMode::kReadWrite};
}

}  // namespace hp::runtime
