#pragma once
// A miniature sequential-task-flow (STF) runtime — the substrate the paper's
// schedulers live in (StarPU et al., §1).
//
// The application registers data handles and submits tasks sequentially,
// declaring per-task data accesses; the runtime infers the dependency DAG,
// computes priorities, schedules with a pluggable policy (HeteroPrio by
// default) and "executes" on a simulated m-CPU + n-GPU node. Duration
// estimates may be noisy: decisions use the estimates, the simulated clock
// uses the actual times (§1's motivation for dynamic schedulers).
//
//   runtime::StfRuntime rt(Platform(20, 4));
//   auto a = rt.register_data("A00");
//   rt.submit(model.make_task(KernelKind::kPotrf), {runtime::RW(a)});
//   ...
//   double makespan = rt.run();

#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "core/heteroprio.hpp"
#include "dag/ranking.hpp"
#include "dag/task_graph.hpp"
#include "model/platform.hpp"
#include "obs/event.hpp"
#include "obs/watchdog.hpp"
#include "runtime/data.hpp"
#include "sched/schedule.hpp"
#include "util/rng.hpp"

namespace hp::runtime {

enum class SchedulerPolicy {
  kHeteroPrio,  ///< online HeteroPrio with spoliation (default)
  kHeft,        ///< static HEFT plan, replayed under actual durations
  kDualHp,      ///< DualHP re-solved over ready sets (estimates), replayed
};

[[nodiscard]] const char* policy_name(SchedulerPolicy policy) noexcept;

struct RuntimeOptions {
  SchedulerPolicy policy = SchedulerPolicy::kHeteroPrio;
  /// Priority scheme for the inferred DAG (kFifo = submission order only).
  RankScheme rank = RankScheme::kMin;
  /// Multiplicative lognormal noise applied to actual task durations;
  /// 0 = estimates are exact.
  double noise_sigma = 0.0;
  std::uint64_t noise_seed = 1;
  /// Structured event stream of the run: HeteroPrio emits natively as
  /// decisions happen; static policies replay the realized schedule.
  obs::EventSink* sink = nullptr;
  /// Run the bound watchdog after the run: compares the realized makespan
  /// against dag_lower_bound times the proven ratio for the platform shape
  /// (advisory for DAGs — see obs/watchdog.hpp). Result via bound_check().
  /// Under faults, the shape is re-evaluated against the workers that
  /// survived to the end of the run.
  bool check_bounds = false;
  /// Fault plan to inject. HeteroPrio recovers online in the engine; the
  /// static policies replay their plan through
  /// fault::execute_plan_with_faults. Outcome via recovery(). The plan must
  /// outlive the run.
  const fault::FaultPlan* faults = nullptr;
};

class StfRuntime {
 public:
  explicit StfRuntime(Platform platform, RuntimeOptions options = {});

  /// Register a piece of data; the name is only for DOT export/debugging.
  DataHandle register_data(std::string name = "");

  /// Submit a task touching the given data. Dependencies on previously
  /// submitted tasks are inferred from the access modes. Returns the task
  /// id. Must not be called after run().
  TaskId submit(const Task& timing, std::span<const DataAccess> accesses);
  TaskId submit(const Task& timing, std::initializer_list<DataAccess> accesses);

  [[nodiscard]] std::size_t num_tasks() const noexcept { return graph_.size(); }
  [[nodiscard]] std::size_t num_data() const noexcept { return data_.size(); }

  /// Schedule and simulate everything submitted so far. Returns the
  /// makespan. Idempotent until the next submit().
  double run();

  /// The inferred DAG (finalized by run()).
  [[nodiscard]] const TaskGraph& graph() const noexcept { return graph_; }
  /// The realized schedule (valid after run()).
  [[nodiscard]] const Schedule& schedule() const noexcept { return schedule_; }
  /// Actual durations used by the last run() (== estimates when sigma = 0).
  [[nodiscard]] std::span<const Task> actual_times() const noexcept {
    return actuals_;
  }
  /// HeteroPrio statistics of the last run() (zero for static policies).
  [[nodiscard]] const HeteroPrioStats& stats() const noexcept { return stats_; }
  /// Online-recovery outcome of the last run() (all zero without faults).
  [[nodiscard]] const fault::RecoveryReport& recovery() const noexcept {
    return stats_.recovery;
  }
  /// Watchdog verdict of the last run() (only meaningful when
  /// options.check_bounds was set).
  [[nodiscard]] const obs::BoundCheck& bound_check() const noexcept {
    return bound_check_;
  }

 private:
  struct DataState {
    std::string name;
    TaskId last_writer = kInvalidTask;
    std::vector<TaskId> readers_since_write;
  };

  Platform platform_;
  RuntimeOptions options_;
  TaskGraph graph_{"stf"};
  std::vector<DataState> data_;
  std::vector<Task> actuals_;
  Schedule schedule_;
  HeteroPrioStats stats_;
  obs::BoundCheck bound_check_;
  bool ran_ = false;
};

}  // namespace hp::runtime
