#pragma once
// Series-level comparison of two BENCH_*.json documents.
//
// `hp_sched perf-check --against OLD` answers the question the bare
// validator cannot: not "is this file well-formed" but "which series got
// slower, by how much, and which disappeared". Series are joined by
// identity (algorithm + n for the core document, kernel + algorithm + tiles
// for the DAG one, workload + arm + n for the observability-overhead one),
// so reordering the arrays between runs is harmless.

#include <string>
#include <vector>

namespace hp::perf {

/// One measured series of either BENCH document, keyed by its identity.
struct SeriesPoint {
  std::string key;  ///< "HeteroPrio n=100000" or "cholesky/HEFT N=40"
  double tasks_per_sec = 0.0;
};

/// Pull every series entry out of a BENCH_core or BENCH_dag document (the
/// entry shape picks the key format). Entries without an identity or a
/// positive throughput are skipped — the validator reports those.
[[nodiscard]] std::vector<SeriesPoint> extract_series(
    const std::string& json_text);

/// One joined series with its throughput change.
struct SeriesDelta {
  std::string key;
  double baseline = 0.0;  ///< tasks/sec in the old document
  double current = 0.0;   ///< tasks/sec in the new document
  /// current / baseline: 1.0 unchanged, 0.5 half as fast.
  [[nodiscard]] double ratio() const noexcept {
    return baseline > 0.0 ? current / baseline : 0.0;
  }
};

struct PerfComparison {
  std::vector<SeriesDelta> regressed;  ///< ratio < 1 - tolerance
  std::vector<SeriesDelta> improved;   ///< ratio > 1 + tolerance
  std::vector<SeriesDelta> unchanged;  ///< within tolerance
  std::vector<std::string> missing;    ///< in baseline only — went away
  std::vector<std::string> added;      ///< in current only — new coverage

  /// A comparison passes when nothing regressed and nothing went missing.
  [[nodiscard]] bool ok() const noexcept {
    return regressed.empty() && missing.empty();
  }
};

/// Join `current_json` against `baseline_json` series-by-series.
/// `tolerance` is the relative throughput slack (0.25 = a series may lose
/// up to 25% before it counts as regressed — best-of wall times on shared
/// machines need real slack).
[[nodiscard]] PerfComparison compare_series(const std::string& baseline_json,
                                            const std::string& current_json,
                                            double tolerance);

/// Multi-line human rendering: every regression and missing series with its
/// numbers, then a one-line summary.
[[nodiscard]] std::string format_comparison(const PerfComparison& cmp);

}  // namespace hp::perf
