#pragma once
// Core performance baseline: schedule-construction throughput of the main
// schedulers on large independent instances, the optimized-vs-reference
// HeteroPrio speedup, and the end-to-end wall-clock of the parallel DAG
// sweep. Emitted as BENCH_core.json (schema documented in
// docs/benchmarks.md) so the performance trajectory of the repo can be
// tracked PR over PR and compared against any prior baseline file.

#include <string>
#include <vector>

#include "model/platform.hpp"
#include "obs/counters.hpp"

namespace hp::perf {

struct PerfBaselineOptions {
  /// Independent-instance sizes to measure (tasks per instance).
  std::vector<std::size_t> sizes = {1000, 10000, 100000};
  /// Timed repetitions per (algorithm, n); the best one is reported. One
  /// additional untimed warm-up run precedes the timed ones.
  int repetitions = 5;
  Platform platform{20, 4};
  /// Also time the pre-optimization reference engine (heteroprio_reference)
  /// and report the speedup of the optimized engine at the largest n.
  bool include_reference = true;
  /// Also run a small DAG sweep end-to-end and report its wall-clock.
  bool include_sweep = true;
  int sweep_threads = 0;          ///< 1 = serial, <= 0 = all cores
  std::vector<int> sweep_tiles = {4, 8, 12, 16};
  /// Parallel-scaling series (the v3 addition): time the parallel engine
  /// (free-running mode, par::heteroprio_par_run) at each W in
  /// `parallel_threads` for each n in `parallel_sizes`. W=1 delegates to
  /// the sequential engine and anchors the parity gate of perf-check.
  /// Empty `parallel_sizes` disables the series.
  std::vector<int> parallel_threads = {1, 2, 4, 8};
  std::vector<std::size_t> parallel_sizes = {100000, 1000000};
  bool verbose = false;           ///< progress lines on stderr
};

/// One measured point: schedule construction for `n` independent tasks.
struct PerfSeries {
  /// HeteroPrio | DualHP | HEFT | HeteroPrio-ref | HeteroPrio-par
  std::string algorithm;
  std::size_t n = 0;
  double seconds = 0.0;        ///< best-of-repetitions wall time
  double tasks_per_sec = 0.0;  ///< n / seconds
  /// Scheduler threads of a HeteroPrio-par entry (the parallel-scaling
  /// series); 0 for the single-threaded algorithms.
  int threads = 0;
};

struct PerfBaseline {
  Platform platform{20, 4};
  int repetitions = 0;
  /// std::thread::hardware_concurrency() of the measuring machine; the
  /// perf-check scaling gates only arm when this grants the parallelism
  /// they assert (a 1-core CI box cannot be expected to speed up).
  int hardware_threads = 0;
  std::vector<PerfSeries> series;
  /// Optimized / reference tasks-per-sec at the largest measured n
  /// (0 when the reference was not measured).
  std::size_t speedup_n = 0;
  double speedup_vs_reference = 0.0;
  /// End-to-end parallel sweep (negative when not run).
  double sweep_wall_seconds = -1.0;
  int sweep_rows = 0;
  int sweep_threads = 0;
  /// Scheduler counters of one instrumented (untimed) HeteroPrio run at the
  /// largest measured n — spoliation behaviour and idle fractions of the
  /// exact workload the throughput numbers describe. counters_n == 0 when
  /// no sizes were measured.
  std::size_t counters_n = 0;
  obs::SchedulerCounters counters{};
  /// Scratch-arena footprint after all measured runs: how much per-run
  /// scratch the SoA engines bump-allocated (high water) and how much the
  /// arena holds reserved across runs. Travels with the throughput numbers
  /// so memory regressions of the hot path are as visible as time ones.
  std::size_t arena_reserved_bytes = 0;
  std::size_t arena_high_water_bytes = 0;
};

/// Run all measurements. Deterministic instances (seeded from n), wall-clock
/// timings via steady_clock.
[[nodiscard]] PerfBaseline run_perf_baseline(const PerfBaselineOptions& options);

/// Serialize to the BENCH_core.json document (schema "hp-bench-core/v3").
[[nodiscard]] std::string perf_baseline_to_json(const PerfBaseline& baseline);

/// Write the JSON document to `path`. Returns false on I/O failure.
bool write_perf_baseline_json(const PerfBaseline& baseline,
                              const std::string& path);

/// Validate an emitted BENCH_core.json: the document must parse, carry the
/// v3 schema tag with its layout/arena/hardware_threads fields, and contain
/// a series entry with a positive tasks_per_sec for every (algorithm in
/// {HeteroPrio, DualHP, HEFT}, n in `sizes`) pair, in any order. On failure
/// returns false and `*error` names every missing series (algorithm and n),
/// not just the first.
///
/// When `parallel_sizes` is non-empty the document must additionally carry a
/// HeteroPrio-par entry for every (W in `parallel_threads`, n in
/// `parallel_sizes`) pair, and the parallel-scaling gates arm — but only as
/// far as the recorded hardware_threads justifies them:
///   * W=1 parity: the W=1 entry stays within 5% of the sequential
///     HeteroPrio entry at the same n (always checked; W=1 delegates).
///   * monotone speedup through W=4: each measured W in (1, 4] with
///     W <= hardware_threads must beat the previous such W.
/// A 1-core machine therefore only gets the parity gate; the scaling gates
/// self-disable rather than fail vacuously.
bool validate_perf_baseline_json(const std::string& json_text,
                                 const std::vector<std::size_t>& sizes,
                                 std::string* error,
                                 const std::vector<std::size_t>& parallel_sizes = {},
                                 const std::vector<int>& parallel_threads = {});

}  // namespace hp::perf
