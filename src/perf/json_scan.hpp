#pragma once
// Minimal JSON field scanning shared by the BENCH_*.json validators
// (perf_baseline.cpp, perf_dag.cpp). Not a parser: the validators only need
// to locate named fields inside the documents this repo itself emits and to
// reject truncated or garbled files.

#include <cstdlib>
#include <optional>
#include <string>

namespace hp::perf::jsonscan {

/// Find `"key"` in `obj` and return the character position just after the
/// following ':' (skipping whitespace), or npos.
inline std::size_t field_value_pos(const std::string& obj,
                                   const std::string& key) {
  const std::string quoted = "\"" + key + "\"";
  std::size_t at = obj.find(quoted);
  if (at == std::string::npos) return std::string::npos;
  at += quoted.size();
  while (at < obj.size() && (obj[at] == ' ' || obj[at] == '\t')) ++at;
  if (at >= obj.size() || obj[at] != ':') return std::string::npos;
  ++at;
  while (at < obj.size() && (obj[at] == ' ' || obj[at] == '\t')) ++at;
  return at;
}

inline std::optional<std::string> string_field(const std::string& obj,
                                               const std::string& key) {
  std::size_t at = field_value_pos(obj, key);
  if (at == std::string::npos || at >= obj.size() || obj[at] != '"') {
    return std::nullopt;
  }
  const std::size_t end = obj.find('"', at + 1);
  if (end == std::string::npos) return std::nullopt;
  return obj.substr(at + 1, end - at - 1);
}

inline std::optional<double> number_field(const std::string& obj,
                                          const std::string& key) {
  const std::size_t at = field_value_pos(obj, key);
  if (at == std::string::npos) return std::nullopt;
  char* end = nullptr;
  const double value = std::strtod(obj.c_str() + at, &end);
  if (end == obj.c_str() + at) return std::nullopt;
  return value;
}

/// Iterate the flat objects of the array-valued field `key` (e.g. the
/// "series" array of the BENCH documents), invoking `fn(object_text)` for
/// each `{...}` entry in order. Entries are flat (no nested objects) in
/// every document this repo emits. Returns false when the field is missing
/// or not an array; a malformed (unterminated) entry stops the walk.
template <typename Fn>
inline bool for_each_array_object(const std::string& text,
                                  const std::string& key, Fn&& fn) {
  const std::size_t array_at = field_value_pos(text, key);
  if (array_at == std::string::npos || array_at >= text.size() ||
      text[array_at] != '[') {
    return false;
  }
  std::size_t at = array_at + 1;
  while (true) {
    const std::size_t open = text.find('{', at);
    const std::size_t array_end = text.find(']', at);
    if (open == std::string::npos ||
        (array_end != std::string::npos && array_end < open)) {
      break;  // end of this array (']' before the next object)
    }
    const std::size_t close = text.find('}', open);
    if (close == std::string::npos) return false;
    fn(text.substr(open, close - open + 1));
    at = close + 1;
  }
  return true;
}

/// Structural sanity: quotes close, braces/brackets balance and never go
/// negative. Catches truncated or garbled files without a full JSON parser.
inline bool balanced_json(const std::string& text, std::string* error) {
  long depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') {
      if (--depth < 0) {
        if (error != nullptr) *error = "unbalanced braces/brackets";
        return false;
      }
    }
  }
  if (in_string || depth != 0) {
    if (error != nullptr) *error = "truncated document";
    return false;
  }
  return true;
}

}  // namespace hp::perf::jsonscan
