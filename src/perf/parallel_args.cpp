#include "perf/parallel_args.hpp"

#include <cstdlib>

namespace hp::perf {

bool consume_parallel_arg(const std::string& arg, int& threads) {
  if (arg == "serial") {
    threads = 1;
    return true;
  }
  if (arg.rfind("-j", 0) == 0) {
    threads = std::atoi(arg.c_str() + 2);
    if (threads <= 0) threads = 0;  // "-j" alone: auto
    return true;
  }
  return false;
}

}  // namespace hp::perf
