#pragma once
// Service baseline: a worker-count sweep of the multi-tenant scheduling
// service under a saturating in-process client load, plus one deliberately
// overloaded arm that must shed through the admission watermark. Per arm
// the document records the sustained request throughput and the p50/p99
// enqueue-to-response latency from the merged per-tenant histograms.
// Emitted as BENCH_serve.json (schema "hp-bench-serve/v1", documented in
// docs/benchmarks.md); `hp_sched perf-check` dispatches on the schema tag
// and enforces the structural invariants — every series accounts for every
// request (zero silent drops), latency quantiles are ordered, and the
// saturating arm actually rejected work.

#include <cstdint>
#include <string>
#include <vector>

#include "model/platform.hpp"

namespace hp::perf {

struct PerfServeOptions {
  /// Tasks per scheduling request (independent uniform workload).
  std::size_t tasks_per_request = 256;
  int clients = 4;              ///< concurrent client threads per arm
  int requests_per_client = 64; ///< requests each client submits
  /// Timed repetitions per arm; the best-throughput one is reported.
  int repetitions = 3;
  /// Platform every request schedules onto.
  Platform platform{8, 2};
  /// Service worker counts swept ("workers-1", "workers-2", ...).
  std::vector<int> worker_counts = {1, 2, 4};
  bool verbose = false;  ///< progress lines on stderr
};

/// One arm of the sweep.
struct PerfServeSeries {
  std::string label;        ///< "workers-2" / "saturating"
  int workers = 0;          ///< service worker pool size
  int clients = 0;          ///< client threads
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t deferred = 0;
  double requests_per_sec = 0.0;    ///< completed / best wall-clock seconds
  double p50_latency_ms = 0.0;      ///< enqueue-to-response, merged tenants
  double p99_latency_ms = 0.0;
  bool zero_drop = false;  ///< accounting balanced in every repetition
};

struct PerfServeBaseline {
  Platform platform{8, 2};
  int repetitions = 0;
  std::size_t tasks_per_request = 0;
  std::vector<PerfServeSeries> series;
};

/// Run the sweep and the saturating arm. Deterministic workloads (seeded
/// from the (client, request) cell); wall-clock figures vary with the host.
[[nodiscard]] PerfServeBaseline run_perf_serve(const PerfServeOptions& options);

/// Serialize to the BENCH_serve.json document (schema "hp-bench-serve/v1").
[[nodiscard]] std::string perf_serve_to_json(const PerfServeBaseline& baseline);

/// Write the JSON document to `path`. Returns false on I/O failure.
bool write_perf_serve_json(const PerfServeBaseline& baseline,
                           const std::string& path);

/// Validate an emitted BENCH_serve.json: parses, carries the v1 schema tag,
/// holds a series for every expected label with sane metrics (positive
/// throughput, finite ordered latency quantiles), zero_drop true
/// everywhere, and a saturating series that rejected at least one request.
/// On failure `*error` names everything wrong, not just the first problem.
bool validate_perf_serve_json(const std::string& json_text,
                              std::string* error);

}  // namespace hp::perf
