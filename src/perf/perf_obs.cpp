#include "perf/perf_obs.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>

#include "core/heteroprio.hpp"
#include "core/heteroprio_dag.hpp"
#include "dag/ranking.hpp"
#include "linalg/cholesky.hpp"
#include "model/generators.hpp"
#include "obs/profile.hpp"
#include "perf/json_scan.hpp"
#include "util/rng.hpp"

namespace hp::perf {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

Instance make_instance(std::size_t n) {
  util::Rng rng(util::seed_from_cell({static_cast<std::uint64_t>(n)}));
  UniformGenParams params;
  params.num_tasks = n;
  return uniform_instance(params, rng);
}

/// Paired best-of measurement of one workload: the two arms alternate
/// (baseline, instrumented, baseline, ...) inside one loop so slow drift —
/// frequency ramps, background load — biases neither arm, and each arm's
/// best time is its least-perturbed run. One untimed warm-up per arm pays
/// the first-touch page faults before any timed repetition.
template <typename Baseline, typename Instrumented>
PerfObsSeries measure_pair(const std::string& workload, std::size_t n,
                           int reps, Baseline&& baseline,
                           Instrumented&& instrumented) {
  baseline();
  instrumented();
  double best_base = std::numeric_limits<double>::infinity();
  double best_inst = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    auto start = Clock::now();
    baseline();
    best_base = std::min(best_base, seconds_since(start));
    start = Clock::now();
    instrumented();
    best_inst = std::min(best_inst, seconds_since(start));
  }
  PerfObsSeries s;
  s.workload = workload;
  s.algorithm = "HeteroPrio";
  s.n = n;
  s.baseline_tasks_per_sec = static_cast<double>(n) / best_base;
  s.instrumented_tasks_per_sec = static_cast<double>(n) / best_inst;
  s.overhead_fraction =
      s.baseline_tasks_per_sec / s.instrumented_tasks_per_sec - 1.0;
  return s;
}

void append_json_series(std::ostringstream& out, const PerfObsSeries& s,
                        bool first) {
  if (!first) out << ",";
  out << "\n    {\"workload\": \"" << s.workload << "\", "
      << "\"algorithm\": \"" << s.algorithm << "\", "
      << "\"n\": " << s.n << ", "
      << "\"baseline_tasks_per_sec\": " << s.baseline_tasks_per_sec << ", "
      << "\"instrumented_tasks_per_sec\": " << s.instrumented_tasks_per_sec
      << ", "
      << "\"overhead_fraction\": " << s.overhead_fraction << "}";
}

}  // namespace

PerfObsBaseline run_obs_overhead(const PerfObsOptions& options) {
  PerfObsBaseline out;
  out.platform = options.platform;
  out.repetitions = std::max(1, options.repetitions);
  out.budget = options.budget;

  const auto note = [&](const PerfObsSeries& s) {
    if (!options.verbose) return;
    std::cerr << "[perf-obs] " << s.workload << " n=" << s.n << ": "
              << s.baseline_tasks_per_sec / 1e6 << "M -> "
              << s.instrumented_tasks_per_sec / 1e6 << "M tasks/s ("
              << s.overhead_fraction * 100.0 << "% overhead)\n";
  };

  // A fresh collector per arm invocation would time collector construction,
  // not recording; one long-lived collector per workload matches how a
  // runtime system would hold it for the process lifetime.
  {
    const Instance inst = make_instance(options.independent_n);
    const auto tasks = inst.tasks();
    obs::MetricsCollector collector;
    HeteroPrioOptions instrumented;
    instrumented.metrics = &collector;
    out.series.push_back(measure_pair(
        "independent-uniform", options.independent_n, out.repetitions,
        [&] { (void)heteroprio(tasks, options.platform); },
        [&] { (void)heteroprio(tasks, options.platform, instrumented); }));
    note(out.series.back());
  }
  {
    TaskGraph graph = cholesky_dag(options.cholesky_tiles);
    assign_priorities(graph, RankScheme::kAvg);
    obs::MetricsCollector collector;
    HeteroPrioOptions instrumented;
    instrumented.metrics = &collector;
    out.series.push_back(measure_pair(
        "cholesky", graph.size(), out.repetitions,
        [&] { (void)heteroprio_dag(graph, options.platform); },
        [&] { (void)heteroprio_dag(graph, options.platform, instrumented); }));
    note(out.series.back());
  }
  return out;
}

std::string perf_obs_to_json(const PerfObsBaseline& baseline) {
  std::ostringstream out;
  out.precision(10);
  out << "{\n"
      << "  \"schema\": \"hp-bench-obs/v1\",\n"
      << "  \"platform\": {\"cpus\": " << baseline.platform.cpus()
      << ", \"gpus\": " << baseline.platform.gpus() << "},\n"
      << "  \"repetitions\": " << baseline.repetitions << ",\n"
      << "  \"warmup_runs\": 1,\n"
      << "  \"budget\": " << baseline.budget << ",\n"
      << "  \"series\": [";
  for (std::size_t i = 0; i < baseline.series.size(); ++i) {
    append_json_series(out, baseline.series[i], i == 0);
  }
  out << "\n  ]\n}\n";
  return out.str();
}

bool write_perf_obs_json(const PerfObsBaseline& baseline,
                         const std::string& path) {
  std::ofstream file(path);
  if (!file) return false;
  file << perf_obs_to_json(baseline);
  return static_cast<bool>(file);
}

bool validate_perf_obs_json(const std::string& json_text, std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (!jsonscan::balanced_json(json_text, error)) return false;
  if (jsonscan::string_field(json_text, "schema").value_or("") !=
      "hp-bench-obs/v1") {
    return fail("missing or wrong schema tag (want hp-bench-obs/v1)");
  }
  const std::optional<double> budget =
      jsonscan::number_field(json_text, "budget");
  if (!budget.has_value() || *budget <= 0.0) {
    return fail("missing positive budget field");
  }

  struct Expected {
    std::string workload;
    bool seen = false;
  };
  std::vector<Expected> expected = {{"independent-uniform"}, {"cholesky"}};

  std::string entry_error;
  const bool walked = jsonscan::for_each_array_object(
      json_text, "series", [&](const std::string& obj) {
        const std::string workload =
            jsonscan::string_field(obj, "workload").value_or("");
        const std::optional<double> base =
            jsonscan::number_field(obj, "baseline_tasks_per_sec");
        const std::optional<double> inst =
            jsonscan::number_field(obj, "instrumented_tasks_per_sec");
        const std::optional<double> overhead =
            jsonscan::number_field(obj, "overhead_fraction");
        if (workload.empty()) {
          entry_error = "series entry without workload";
          return;
        }
        if (!base.has_value() || *base <= 0.0 || !inst.has_value() ||
            *inst <= 0.0) {
          entry_error = "series entry for " + workload +
                        " has no positive baseline/instrumented rate";
          return;
        }
        if (!overhead.has_value() || !std::isfinite(*overhead)) {
          entry_error = "series entry for " + workload +
                        " has no finite overhead_fraction";
          return;
        }
        for (Expected& e : expected) {
          if (e.workload == workload) e.seen = true;
        }
      });
  if (!walked) return fail("missing series array");
  if (!entry_error.empty()) return fail(entry_error);

  std::string missing;
  for (const Expected& e : expected) {
    if (e.seen) continue;
    if (!missing.empty()) missing += ", ";
    missing += e.workload;
  }
  if (!missing.empty()) return fail("missing series: " + missing);
  return true;
}

bool check_obs_budget(const std::string& json_text, double budget,
                      std::string* error) {
  if (budget <= 0.0) {
    budget = jsonscan::number_field(json_text, "budget").value_or(0.0);
  }
  if (budget <= 0.0) {
    if (error != nullptr) *error = "no budget to enforce";
    return false;
  }

  // Name every series over budget, not just the first.
  std::string over;
  jsonscan::for_each_array_object(
      json_text, "series", [&](const std::string& obj) {
        const std::string workload =
            jsonscan::string_field(obj, "workload").value_or("?");
        const double overhead =
            jsonscan::number_field(obj, "overhead_fraction").value_or(0.0);
        if (overhead <= budget) return;
        if (!over.empty()) over += ", ";
        std::ostringstream line;
        line.precision(3);
        line << workload << " at " << overhead * 100.0 << "% (budget "
             << budget * 100.0 << "%)";
        over += line.str();
      });
  if (!over.empty()) {
    if (error != nullptr) *error = "overhead over budget: " + over;
    return false;
  }
  return true;
}

}  // namespace hp::perf
