#pragma once
// Online-runtime baseline: an arrival-rate sweep of the rolling-horizon
// runtime over the reference independent workload, plus one deliberately
// saturating arm that must survive in degraded mode. Per arm the document
// records the makespan stretch over the batch engine, the deadline-miss
// rate, the shed fraction, and the re-plan throughput (tasks scheduled per
// second of wall clock). Emitted as BENCH_online.json (schema
// "hp-bench-online/v1", documented in docs/benchmarks.md); `hp_sched
// perf-check` dispatches on the schema tag and enforces the structural
// invariants — every series accounts for every task (zero silent drops)
// and the saturating arm ends the run outside healthy mode.

#include <cstddef>
#include <string>
#include <vector>

#include "model/platform.hpp"

namespace hp::perf {

struct PerfOnlineOptions {
  /// Independent-instance size (tasks).
  std::size_t independent_n = 50000;
  /// Timed repetitions per arm; the best one is reported.
  int repetitions = 5;
  Platform platform{20, 4};
  /// Arrival-rate multipliers of the platform's service rate
  /// (workers / mean best duration). 0 is the batch-equivalent stream.
  std::vector<double> rate_factors = {0.0, 0.5, 1.0, 2.0, 4.0};
  /// Relative-deadline factor of the generated streams (x min(p, q)).
  double deadline_factor = 4.0;
  bool verbose = false;  ///< progress lines on stderr
};

/// One arm of the sweep.
struct PerfOnlineSeries {
  std::string label;          ///< "rate-2x" / "saturating"
  std::string workload;       ///< independent-uniform
  std::size_t n = 0;          ///< tasks
  double rate = 0.0;          ///< arrivals per time unit (0 = all at t=0)
  double makespan_stretch = 0.0;   ///< online makespan / batch makespan
  double deadline_miss_rate = 0.0; ///< misses / n
  double shed_fraction = 0.0;      ///< rejected / n
  double replan_tasks_per_sec = 0.0;  ///< n / best wall-clock seconds
  std::size_t replans = 0;    ///< incremental re-prioritization batches
  std::string final_mode;     ///< healthy | degraded | shedding
  bool zero_drop = false;     ///< placed + rejected + unfinished == n
};

struct PerfOnlineBaseline {
  Platform platform{20, 4};
  int repetitions = 0;
  std::vector<PerfOnlineSeries> series;
};

/// Run the sweep and the saturating arm. Deterministic (seeded from n).
[[nodiscard]] PerfOnlineBaseline run_perf_online(
    const PerfOnlineOptions& options);

/// Serialize to the BENCH_online.json document (schema "hp-bench-online/v1").
[[nodiscard]] std::string perf_online_to_json(
    const PerfOnlineBaseline& baseline);

/// Write the JSON document to `path`. Returns false on I/O failure.
bool write_perf_online_json(const PerfOnlineBaseline& baseline,
                            const std::string& path);

/// Validate an emitted BENCH_online.json: parses, carries the v1 schema
/// tag, holds a series for every expected label with sane metrics (finite
/// positive stretch and replan rate, miss/shed fractions in [0, 1]),
/// zero_drop true everywhere, and a saturating series that ends outside
/// healthy mode. On failure `*error` names everything wrong, not just the
/// first problem.
bool validate_perf_online_json(const std::string& json_text,
                               std::string* error);

}  // namespace hp::perf
