#include "perf/perf_dag.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>

#include "baselines/dualhp.hpp"
#include "baselines/heft.hpp"
#include "baselines/heft_ref.hpp"
#include "core/heteroprio_dag.hpp"
#include "core/heteroprio_ref.hpp"
#include "dag/ranking.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "linalg/qr.hpp"
#include "perf/json_scan.hpp"
#include "sched/critical_path.hpp"

namespace hp::perf {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

TaskGraph build_kernel(const std::string& kernel, int tiles) {
  if (kernel == "cholesky") return cholesky_dag(tiles);
  if (kernel == "qr") return qr_dag(tiles);
  if (kernel == "lu") return lu_dag(tiles);
  std::cerr << "perf_dag: unknown kernel '" << kernel << "'\n";
  std::abort();
}

void append_json_series(std::ostringstream& out, const PerfDagSeries& s,
                        bool first) {
  if (!first) out << ",";
  out << "\n    {\"kernel\": \"" << s.kernel << "\", "
      << "\"algorithm\": \"" << s.algorithm << "\", "
      << "\"tiles\": " << s.tiles << ", "
      << "\"n\": " << s.n << ", "
      << "\"seconds\": " << s.seconds << ", "
      << "\"tasks_per_sec\": " << s.tasks_per_sec << ", "
      << "\"makespan\": " << s.makespan << ", "
      << "\"cp_compute_fraction\": " << s.cp_compute_fraction << ", "
      << "\"cp_segments\": " << s.cp_segments << "}";
}

}  // namespace

PerfDagBaseline run_perf_dag(const PerfDagOptions& options) {
  PerfDagBaseline out;
  out.platform = options.platform;
  out.repetitions = std::max(1, options.repetitions);

  const auto note = [&](const std::string& line) {
    if (options.verbose) std::cerr << "[perf-dag] " << line << '\n';
  };

  for (const std::string& kernel : options.kernels) {
    const int largest =
        options.tile_counts.empty()
            ? 0
            : *std::max_element(options.tile_counts.begin(),
                                options.tile_counts.end());
    for (const int tiles : options.tile_counts) {
      TaskGraph graph = build_kernel(kernel, tiles);
      assign_priorities(graph, RankScheme::kAvg);
      const std::size_t n = graph.size();

      // Best-of-reps wall time after one untimed warm-up (first-touch page
      // faults and allocator growth are not scheduler costs). The last
      // run's schedule records quality — identical across reps, all
      // policies are deterministic — and feeds the critical-path
      // attribution, computed outside the timed loop.
      const auto measure = [&](const std::string& algo, auto&& run) {
        Schedule last = run();
        double best = std::numeric_limits<double>::infinity();
        for (int r = 0; r < out.repetitions; ++r) {
          const auto start = Clock::now();
          Schedule schedule = run();
          best = std::min(best, seconds_since(start));
          last = std::move(schedule);
        }
        const double rate = static_cast<double>(n) / best;
        const CriticalPathReport cp =
            build_critical_path(last, graph.tasks(), options.platform, &graph);
        out.series.push_back(PerfDagSeries{kernel, algo, tiles, n, best, rate,
                                           last.makespan(),
                                           cp.compute_fraction(),
                                           cp.segments.size()});
        note(kernel + " N=" + std::to_string(tiles) + " " + algo + ": " +
             std::to_string(rate / 1e3) + "k tasks/s");
        return rate;
      };

      const double hp_rate = measure("HeteroPrio", [&] {
        return heteroprio_dag(graph, options.platform);
      });
      const double heft_rate = measure("HEFT", [&] {
        return heft(graph, options.platform);
      });
      measure("DualHP", [&] { return dualhp_dag(graph, options.platform); });

      if (options.include_reference && tiles == largest) {
        const double hp_ref = measure("HeteroPrio-ref", [&] {
          return heteroprio_dag_reference(graph, options.platform);
        });
        const double heft_ref_rate = measure("HEFT-ref", [&] {
          return heft_ref(graph, options.platform);
        });
        out.speedups.push_back(
            PerfDagSpeedup{kernel, "HeteroPrio", tiles, n, hp_rate / hp_ref});
        out.speedups.push_back(PerfDagSpeedup{kernel, "HEFT", tiles, n,
                                              heft_rate / heft_ref_rate});
      }
    }
  }
  return out;
}

std::string perf_dag_to_json(const PerfDagBaseline& baseline) {
  std::ostringstream out;
  out.precision(10);
  out << "{\n"
      << "  \"schema\": \"hp-bench-dag/v2\",\n"
      << "  \"layout\": \"soa\",\n"
      << "  \"platform\": {\"cpus\": " << baseline.platform.cpus()
      << ", \"gpus\": " << baseline.platform.gpus() << "},\n"
      << "  \"repetitions\": " << baseline.repetitions << ",\n"
      << "  \"series\": [";
  for (std::size_t i = 0; i < baseline.series.size(); ++i) {
    append_json_series(out, baseline.series[i], i == 0);
  }
  out << "\n  ]";
  if (!baseline.speedups.empty()) {
    out << ",\n  \"speedups_vs_reference\": [";
    for (std::size_t i = 0; i < baseline.speedups.size(); ++i) {
      const PerfDagSpeedup& s = baseline.speedups[i];
      if (i != 0) out << ",";
      out << "\n    {\"kernel\": \"" << s.kernel << "\", "
          << "\"algorithm\": \"" << s.algorithm << "\", "
          << "\"tiles\": " << s.tiles << ", "
          << "\"n\": " << s.n << ", "
          << "\"value\": " << s.value << "}";
    }
    out << "\n  ]";
  }
  out << "\n}\n";
  return out.str();
}

bool write_perf_dag_json(const PerfDagBaseline& baseline,
                         const std::string& path) {
  std::ofstream file(path);
  if (!file) return false;
  file << perf_dag_to_json(baseline);
  return static_cast<bool>(file);
}

bool validate_perf_dag_json(const std::string& json_text,
                            const std::vector<std::string>& kernels,
                            const std::vector<int>& tile_counts,
                            std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (!jsonscan::balanced_json(json_text, error)) return false;
  if (jsonscan::string_field(json_text, "schema").value_or("") !=
      "hp-bench-dag/v2") {
    return fail("missing or wrong schema tag (want hp-bench-dag/v2)");
  }

  struct Expected {
    std::string kernel;
    std::string algorithm;
    int tiles;
    bool seen = false;
  };
  std::vector<Expected> expected;
  for (const std::string& kernel : kernels) {
    for (const int tiles : tile_counts) {
      for (const char* algo : {"HeteroPrio", "HEFT", "DualHP"}) {
        expected.push_back({kernel, algo, tiles, false});
      }
    }
  }

  std::string entry_error;
  const bool walked = jsonscan::for_each_array_object(
      json_text, "series", [&](const std::string& obj) {
        const std::string kernel =
            jsonscan::string_field(obj, "kernel").value_or("");
        const std::string algo =
            jsonscan::string_field(obj, "algorithm").value_or("");
        const std::optional<double> tiles =
            jsonscan::number_field(obj, "tiles");
        const std::optional<double> rate =
            jsonscan::number_field(obj, "tasks_per_sec");
        const std::optional<double> cp =
            jsonscan::number_field(obj, "cp_compute_fraction");
        if (kernel.empty() || algo.empty() || !tiles.has_value()) {
          entry_error = "series entry without kernel/algorithm/tiles";
          return;
        }
        if (!rate.has_value() || *rate <= 0.0) {
          entry_error = "series entry for " + kernel + "/" + algo +
                        " has no positive tasks_per_sec";
          return;
        }
        if (!cp.has_value() || *cp < 0.0 || *cp > 1.0) {
          entry_error = "series entry for " + kernel + "/" + algo +
                        " has no cp_compute_fraction in [0, 1]";
          return;
        }
        for (Expected& e : expected) {
          if (e.kernel == kernel && e.algorithm == algo &&
              static_cast<double>(e.tiles) == *tiles) {
            e.seen = true;
          }
        }
      });
  if (!walked) return fail("missing series array");
  if (!entry_error.empty()) return fail(entry_error);

  std::string missing;
  for (const Expected& e : expected) {
    if (e.seen) continue;
    if (!missing.empty()) missing += ", ";
    missing += e.kernel + "/" + e.algorithm + " at N=" + std::to_string(e.tiles);
  }
  if (!missing.empty()) return fail("missing series: " + missing);
  return true;
}

}  // namespace hp::perf
