#pragma once
// DAG performance baseline: end-to-end schedule-construction throughput of
// the full pipeline (tiled linear-algebra DAG -> priorities -> scheduler)
// on the paper's Cholesky/QR/LU workloads, plus the optimized-vs-reference
// speedups of the incremental HeteroPrio engine and the gap-indexed HEFT.
// Emitted as BENCH_dag.json (schema "hp-bench-dag/v1", documented in
// docs/benchmarks.md), the DAG-side companion of BENCH_core.json.

#include <string>
#include <vector>

#include "model/platform.hpp"

namespace hp::perf {

struct PerfDagOptions {
  /// Tile counts per kernel. N = 60 Cholesky is ~38k tasks — the scale the
  /// tentpole targets end-to-end.
  std::vector<int> tile_counts = {10, 20, 40, 60};
  std::vector<std::string> kernels = {"cholesky", "qr", "lu"};
  /// Timed repetitions per (kernel, tiles, algorithm); best one reported.
  int repetitions = 3;
  Platform platform{20, 4};
  /// Also time the reference engines (heteroprio_dag_reference, heft_ref)
  /// at the largest tile count of each kernel and report the speedups.
  bool include_reference = true;
  bool verbose = false;  ///< progress lines on stderr
};

/// One measured point: scheduling one kernel DAG with one policy.
struct PerfDagSeries {
  std::string kernel;     // cholesky | qr | lu
  std::string algorithm;  // HeteroPrio | HEFT | DualHP | *-ref
  int tiles = 0;
  std::size_t n = 0;           ///< tasks in the DAG
  double seconds = 0.0;        ///< best-of-repetitions wall time
  double tasks_per_sec = 0.0;  ///< n / seconds
  double makespan = 0.0;       ///< simulated makespan (schedule quality)
  /// Critical-path attribution of the produced schedule
  /// (sched/critical_path.hpp): fraction of the makespan the critical chain
  /// spends executing tasks, and the chain's segment count. A falling
  /// compute fraction at equal makespan means the chain picked up waits —
  /// schedule-quality context the throughput numbers alone can't show.
  double cp_compute_fraction = 0.0;
  std::size_t cp_segments = 0;
};

/// Optimized / reference throughput at the largest tile count of a kernel.
struct PerfDagSpeedup {
  std::string kernel;
  std::string algorithm;  // HeteroPrio | HEFT
  int tiles = 0;
  std::size_t n = 0;
  double value = 0.0;
};

struct PerfDagBaseline {
  Platform platform{20, 4};
  int repetitions = 0;
  std::vector<PerfDagSeries> series;
  std::vector<PerfDagSpeedup> speedups;
};

/// Run all measurements. DAGs are deterministic (builder + tile count);
/// priorities use the paper's avg bottom levels; wall-clock via
/// steady_clock. The graph build is untimed — the series measure scheduling.
[[nodiscard]] PerfDagBaseline run_perf_dag(const PerfDagOptions& options);

/// Serialize to the BENCH_dag.json document (schema "hp-bench-dag/v2").
[[nodiscard]] std::string perf_dag_to_json(const PerfDagBaseline& baseline);

/// Write the JSON document to `path`. Returns false on I/O failure.
bool write_perf_dag_json(const PerfDagBaseline& baseline,
                         const std::string& path);

/// Validate an emitted BENCH_dag.json: the document must parse, carry the
/// v2 schema tag, and contain a series entry with a positive tasks_per_sec
/// and an in-range cp_compute_fraction for every (kernel, tiles in
/// `tile_counts`, algorithm in {HeteroPrio, HEFT, DualHP}) triple, in any
/// order. On failure returns false and `*error` names every missing series.
bool validate_perf_dag_json(const std::string& json_text,
                            const std::vector<std::string>& kernels,
                            const std::vector<int>& tile_counts,
                            std::string* error);

}  // namespace hp::perf
