#pragma once
// Shared parsing of the benchmark parallelism flags.
//
// Every bench binary accepts the same two spellings — `serial` (force one
// worker) and `-jN` (N workers; bare `-j` or a non-positive N means "all
// hardware threads", the util::resolve_threads convention). The parsing
// used to be copy-pasted into each main(); it lives here once so the
// spellings cannot drift between binaries.

#include <string>

namespace hp::perf {

/// If `arg` is one of the parallelism flags, fold it into `threads`
/// (0 = all hardware threads, 1 = serial, N > 1 = exactly N) and return
/// true. Returns false — leaving `threads` untouched — for any other
/// argument, so callers keep their own flag handling around this.
bool consume_parallel_arg(const std::string& arg, int& threads);

}  // namespace hp::perf
