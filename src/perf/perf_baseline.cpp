#include "perf/perf_baseline.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <thread>

#include "baselines/dualhp.hpp"
#include "baselines/heft.hpp"
#include "core/heteroprio.hpp"
#include "core/heteroprio_ref.hpp"
#include "model/generators.hpp"
#include "obs/recorder.hpp"
#include "perf/json_scan.hpp"
#include "sweep/dag_sweep.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace hp::perf {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Best-of-`reps` wall time of one schedule construction. One untimed
/// warm-up run precedes the timed repetitions: the first run through a
/// fresh instance pays first-touch page faults, allocator growth, and CPU
/// frequency ramp-up, none of which are properties of the scheduler being
/// measured by a best-of estimator.
template <typename Fn>
double time_best(int reps, Fn&& fn) {
  fn();
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    fn();
    best = std::min(best, seconds_since(start));
  }
  return best;
}

Instance make_instance(std::size_t n) {
  util::Rng rng(util::seed_from_cell({static_cast<std::uint64_t>(n)}));
  UniformGenParams params;
  params.num_tasks = n;
  return uniform_instance(params, rng);
}

void append_json_series(std::ostringstream& out, const PerfSeries& s,
                        bool first) {
  if (!first) out << ",";
  out << "\n    {\"algorithm\": \"" << s.algorithm << "\", "
      << "\"workload\": \"independent-uniform\", "
      << "\"n\": " << s.n << ", ";
  if (s.threads > 0) out << "\"threads\": " << s.threads << ", ";
  out << "\"seconds\": " << s.seconds << ", "
      << "\"tasks_per_sec\": " << s.tasks_per_sec << "}";
}

}  // namespace

PerfBaseline run_perf_baseline(const PerfBaselineOptions& options) {
  PerfBaseline out;
  out.platform = options.platform;
  // At least one repetition, or every series would report an infinite
  // best-of-zero time (and `inf` is not valid JSON).
  out.repetitions = std::max(1, options.repetitions);
  out.hardware_threads =
      static_cast<int>(std::thread::hardware_concurrency());

  const auto note = [&](const std::string& line) {
    if (options.verbose) std::cerr << "[perf] " << line << '\n';
  };

  double hp_best_rate = 0.0;
  double ref_best_rate = 0.0;
  std::size_t largest_n = 0;
  for (const std::size_t n : options.sizes) {
    const Instance inst = make_instance(n);
    const auto tasks = inst.tasks();
    const auto measure = [&](const std::string& algo, auto&& run) {
      const double secs = time_best(out.repetitions, run);
      const double rate = static_cast<double>(n) / secs;
      out.series.push_back(PerfSeries{algo, n, secs, rate});
      note(algo + " n=" + std::to_string(n) + ": " +
           std::to_string(rate / 1e6) + "M tasks/s");
      return rate;
    };

    const double hp_rate = measure("HeteroPrio", [&] {
      (void)heteroprio(tasks, options.platform);
    });
    measure("DualHP", [&] { (void)dualhp(tasks, options.platform); });
    measure("HEFT", [&] { (void)heft_independent(tasks, options.platform); });
    if (n >= largest_n) {
      largest_n = n;
      hp_best_rate = hp_rate;
    }
    if (options.include_reference) {
      const double ref_rate = measure("HeteroPrio-ref", [&] {
        (void)heteroprio_reference(tasks, options.platform);
      });
      if (n == largest_n) ref_best_rate = ref_rate;
    }
  }
  if (options.include_reference && ref_best_rate > 0.0) {
    out.speedup_n = largest_n;
    out.speedup_vs_reference = hp_best_rate / ref_best_rate;
  }

  // Parallel-scaling series: the parallel engine in free-running mode at
  // each thread count. W=1 delegates to the sequential engine, anchoring
  // the perf-check parity gate; higher W exercise the sharded ready
  // structure and work-stealing for real.
  for (const std::size_t n : options.parallel_sizes) {
    const Instance inst = make_instance(n);
    const auto tasks = inst.tasks();
    for (const int threads : options.parallel_threads) {
      if (threads < 1) continue;
      HeteroPrioOptions hp_options;
      hp_options.threads = threads;
      hp_options.canonical = false;
      const double secs = time_best(out.repetitions, [&] {
        (void)heteroprio(tasks, options.platform, hp_options);
      });
      const double rate = static_cast<double>(n) / secs;
      out.series.push_back(PerfSeries{"HeteroPrio-par", n, secs, rate,
                                      threads});
      note("HeteroPrio-par n=" + std::to_string(n) + " W=" +
           std::to_string(threads) + ": " + std::to_string(rate / 1e6) +
           "M tasks/s");
    }
  }

  if (largest_n != 0) {
    // One untimed instrumented run: the counters travel with the throughput
    // numbers they describe, without perturbing the timed loops above.
    const Instance inst = make_instance(largest_n);
    obs::EventRecorder recorder;
    HeteroPrioOptions hp_options;
    hp_options.sink = &recorder;
    (void)heteroprio(inst.tasks(), options.platform, hp_options);
    out.counters_n = largest_n;
    out.counters = obs::counters_from_events(recorder.events(),
                                             options.platform);
    note("counters n=" + std::to_string(largest_n) + ": " +
         std::to_string(out.counters.spoliation_commits) + " spoliations, " +
         std::to_string(out.counters.peak_ready_depth) + " peak ready depth");
  }

  // Arena footprint of everything measured above: the timed runs all draw
  // their scratch from this thread's arena, so its high water is the per-run
  // scratch peak of the hot path at the largest n.
  out.arena_reserved_bytes = util::scratch_arena().reserved_bytes();
  out.arena_high_water_bytes = util::scratch_arena().high_water_bytes();

  if (options.include_sweep) {
    bench::SweepOptions sweep;
    sweep.platform = options.platform;
    sweep.tile_counts = options.sweep_tiles;
    sweep.threads = options.sweep_threads;
    sweep.verbose = false;
    const auto start = Clock::now();
    const std::vector<bench::SweepRow> rows = bench::run_dag_sweep(sweep);
    out.sweep_wall_seconds = seconds_since(start);
    out.sweep_rows = static_cast<int>(rows.size());
    out.sweep_threads = static_cast<int>(util::resolve_threads(sweep.threads));
    note("sweep: " + std::to_string(out.sweep_rows) + " rows in " +
         std::to_string(out.sweep_wall_seconds) + "s on " +
         std::to_string(out.sweep_threads) + " threads");
  }
  return out;
}

std::string perf_baseline_to_json(const PerfBaseline& baseline) {
  std::ostringstream out;
  out.precision(10);
  out << "{\n"
      << "  \"schema\": \"hp-bench-core/v3\",\n"
      << "  \"layout\": \"soa\",\n"
      << "  \"platform\": {\"cpus\": " << baseline.platform.cpus()
      << ", \"gpus\": " << baseline.platform.gpus() << "},\n"
      << "  \"hardware_threads\": " << baseline.hardware_threads << ",\n"
      << "  \"repetitions\": " << baseline.repetitions << ",\n"
      << "  \"warmup_runs\": 1,\n"
      << "  \"arena\": {\"reserved_bytes\": " << baseline.arena_reserved_bytes
      << ", \"high_water_bytes\": " << baseline.arena_high_water_bytes
      << "},\n"
      << "  \"series\": [";
  for (std::size_t i = 0; i < baseline.series.size(); ++i) {
    append_json_series(out, baseline.series[i], i == 0);
  }
  out << "\n  ]";
  if (baseline.speedup_n != 0) {
    out << ",\n  \"speedup_vs_reference\": {\"n\": " << baseline.speedup_n
        << ", \"value\": " << baseline.speedup_vs_reference << "}";
  }
  if (baseline.sweep_wall_seconds >= 0.0) {
    out << ",\n  \"sweep\": {\"rows\": " << baseline.sweep_rows
        << ", \"threads\": " << baseline.sweep_threads
        << ", \"wall_seconds\": " << baseline.sweep_wall_seconds << "}";
  }
  if (baseline.counters_n != 0) {
    const obs::SchedulerCounters& c = baseline.counters;
    out << ",\n  \"counters\": {\"n\": " << baseline.counters_n
        << ", \"tasks_completed\": " << c.tasks_completed
        << ", \"spoliation_attempts\": " << c.spoliation_attempts
        << ", \"spoliation_commits\": " << c.spoliation_commits
        << ", \"spoliation_skips\": " << c.spoliation_skips
        << ", \"aborts\": " << c.aborts
        << ", \"peak_ready_depth\": " << c.peak_ready_depth
        << ", \"cpu_idle_fraction\": " << c.idle_fraction[0]
        << ", \"gpu_idle_fraction\": " << c.idle_fraction[1] << "}";
  }
  out << "\n}\n";
  return out.str();
}

bool write_perf_baseline_json(const PerfBaseline& baseline,
                              const std::string& path) {
  std::ofstream file(path);
  if (!file) return false;
  file << perf_baseline_to_json(baseline);
  return static_cast<bool>(file);
}

bool validate_perf_baseline_json(const std::string& json_text,
                                 const std::vector<std::size_t>& sizes,
                                 std::string* error,
                                 const std::vector<std::size_t>& parallel_sizes,
                                 const std::vector<int>& parallel_threads) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (!jsonscan::balanced_json(json_text, error)) return false;
  if (jsonscan::string_field(json_text, "schema").value_or("") !=
      "hp-bench-core/v3") {
    return fail("missing or wrong schema tag (want hp-bench-core/v3)");
  }
  if (jsonscan::string_field(json_text, "layout").value_or("") != "soa") {
    return fail("missing layout tag (v2 documents record the engine layout)");
  }
  if (!jsonscan::number_field(json_text, "high_water_bytes").has_value()) {
    return fail("missing arena footprint (v2 field arena.high_water_bytes)");
  }
  const std::optional<double> hw_field =
      jsonscan::number_field(json_text, "hardware_threads");
  if (!hw_field.has_value()) {
    return fail("missing hardware_threads (v3 documents record the "
                "measuring machine's concurrency)");
  }
  const int hardware_threads = static_cast<int>(*hw_field);

  // Tick off expected entries in whatever order the series array holds them.
  struct Expected {
    std::string algorithm;
    std::size_t n;
    int threads;  // 0 = single-threaded algorithm (no "threads" field)
    bool seen = false;
  };
  std::vector<Expected> expected;
  for (const char* algo : {"HeteroPrio", "DualHP", "HEFT"}) {
    for (const std::size_t n : sizes) expected.push_back({algo, n, 0, false});
  }
  for (const std::size_t n : parallel_sizes) {
    for (const int w : parallel_threads) {
      expected.push_back({"HeteroPrio-par", n, w, false});
    }
  }

  // Rates by (n, threads) for the parallel-scaling gates; threads=0 holds
  // the sequential HeteroPrio entry the W=1 parity gate compares against.
  std::map<std::pair<std::size_t, int>, double> hp_rates;

  std::string entry_error;
  const bool walked = jsonscan::for_each_array_object(
      json_text, "series", [&](const std::string& obj) {
        const std::string algo =
            jsonscan::string_field(obj, "algorithm").value_or("");
        const std::optional<double> n = jsonscan::number_field(obj, "n");
        const std::optional<double> rate =
            jsonscan::number_field(obj, "tasks_per_sec");
        if (algo.empty() || !n.has_value()) {
          entry_error = "series entry without algorithm/n";
          return;
        }
        if (!rate.has_value() || *rate <= 0.0) {
          entry_error =
              "series entry for " + algo + " has no positive tasks_per_sec";
          return;
        }
        const int threads = static_cast<int>(
            jsonscan::number_field(obj, "threads").value_or(0.0));
        for (Expected& e : expected) {
          if (e.algorithm == algo && static_cast<double>(e.n) == *n &&
              e.threads == threads) {
            e.seen = true;
          }
        }
        const auto size_n = static_cast<std::size_t>(*n);
        if (algo == "HeteroPrio") hp_rates[{size_n, 0}] = *rate;
        if (algo == "HeteroPrio-par") hp_rates[{size_n, threads}] = *rate;
      });
  if (!walked) return fail("missing series array");
  if (!entry_error.empty()) return fail(entry_error);

  // Name every absent series, not just the first: a perf-check failure
  // should tell the whole story in one run.
  std::string missing;
  for (const Expected& e : expected) {
    if (e.seen) continue;
    if (!missing.empty()) missing += ", ";
    missing += e.algorithm + " at n=" + std::to_string(e.n);
    if (e.threads > 0) missing += " W=" + std::to_string(e.threads);
  }
  if (!missing.empty()) return fail("missing series: " + missing);

  // Parallel-scaling gates. Parity always holds (W=1 delegates to the
  // sequential engine, so any gap is pure dispatch overhead); the monotone
  // gates only arm as far as the machine that produced the file could
  // actually run threads in parallel.
  for (const std::size_t n : parallel_sizes) {
    const auto seq = hp_rates.find({n, 0});
    const auto w1 = hp_rates.find({n, 1});
    if (seq != hp_rates.end() && w1 != hp_rates.end() &&
        w1->second < 0.95 * seq->second) {
      std::ostringstream oss;
      oss.precision(4);
      oss << "W=1 parity broken at n=" << n << ": HeteroPrio-par W=1 runs at "
          << (w1->second / seq->second) << "x of sequential HeteroPrio "
          << "(floor 0.95)";
      return fail(oss.str());
    }
    std::vector<int> gated;
    for (const int w : parallel_threads) {
      if (w >= 1 && w <= 4 && w <= hardware_threads) gated.push_back(w);
    }
    std::sort(gated.begin(), gated.end());
    for (std::size_t i = 1; i < gated.size(); ++i) {
      const auto lo = hp_rates.find({n, gated[i - 1]});
      const auto hi = hp_rates.find({n, gated[i]});
      if (lo == hp_rates.end() || hi == hp_rates.end()) continue;
      if (hi->second <= lo->second) {
        std::ostringstream oss;
        oss.precision(4);
        oss << "speedup not monotone at n=" << n << ": W=" << gated[i]
            << " (" << hi->second << " tasks/s) does not beat W="
            << gated[i - 1] << " (" << lo->second << " tasks/s) on a "
            << hardware_threads << "-thread machine";
        return fail(oss.str());
      }
    }
  }
  return true;
}

}  // namespace hp::perf
