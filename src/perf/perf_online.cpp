#include "perf/perf_online.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>

#include "core/heteroprio.hpp"
#include "model/generators.hpp"
#include "online/runtime.hpp"
#include "perf/json_scan.hpp"
#include "util/rng.hpp"

namespace hp::perf {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

Instance make_instance(std::size_t n) {
  util::Rng rng(util::seed_from_cell({static_cast<std::uint64_t>(n)}));
  UniformGenParams params;
  params.num_tasks = n;
  return uniform_instance(params, rng);
}

/// The platform's aggregate service rate on `tasks`: workers divided by the
/// mean best-resource duration. Arrival rates are expressed as multiples of
/// this, so "1x" queues work about as fast as the platform drains it.
double service_rate(std::span<const Task> tasks, const Platform& platform) {
  if (tasks.empty()) return 1.0;
  double total = 0.0;
  for (const Task& t : tasks) total += std::min(t.cpu_time, t.gpu_time);
  const double mean = total / static_cast<double>(tasks.size());
  return mean > 0.0 ? static_cast<double>(platform.workers()) / mean : 1.0;
}

/// Best-of-reps wall-clock measurement of one configured online run; the
/// run is deterministic, so the stats of the last repetition are the stats
/// of every repetition.
PerfOnlineSeries measure_arm(const std::string& label,
                             std::span<const Task> tasks,
                             const Platform& platform,
                             const online::OnlineOptions& options,
                             double batch_makespan, int reps) {
  online::OnlineStats stats;
  Schedule schedule = online::online_run(tasks, platform, options, &stats);
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    schedule = online::online_run(tasks, platform, options, &stats);
    best = std::min(best, seconds_since(start));
  }

  PerfOnlineSeries s;
  s.label = label;
  s.workload = "independent-uniform";
  s.n = tasks.size();
  s.makespan_stretch =
      batch_makespan > 0.0 ? schedule.makespan() / batch_makespan : 0.0;
  const auto frac = [&](std::size_t count) {
    return tasks.empty() ? 0.0
                         : static_cast<double>(count) /
                               static_cast<double>(tasks.size());
  };
  s.deadline_miss_rate = frac(stats.deadline_misses);
  s.shed_fraction = frac(stats.tasks_rejected);
  s.replan_tasks_per_sec = static_cast<double>(tasks.size()) / best;
  s.replans = stats.replans;
  s.final_mode = online::mode_name(stats.final_mode);
  std::size_t placed = 0;
  for (const Placement& p : schedule.placements()) placed += p.placed() ? 1 : 0;
  s.zero_drop = placed + stats.tasks_rejected +
                    static_cast<std::size_t>(
                        stats.recovery.tasks_unfinished) ==
                tasks.size();
  return s;
}

std::string rate_label(double factor) {
  std::ostringstream oss;
  oss << "rate-" << factor << "x";
  return oss.str();
}

void append_json_series(std::ostringstream& out, const PerfOnlineSeries& s,
                        bool first) {
  if (!first) out << ",";
  out << "\n    {\"label\": \"" << s.label << "\", "
      << "\"workload\": \"" << s.workload << "\", "
      << "\"n\": " << s.n << ", "
      << "\"rate\": " << s.rate << ", "
      << "\"makespan_stretch\": " << s.makespan_stretch << ", "
      << "\"deadline_miss_rate\": " << s.deadline_miss_rate << ", "
      << "\"shed_fraction\": " << s.shed_fraction << ", "
      << "\"replan_tasks_per_sec\": " << s.replan_tasks_per_sec << ", "
      << "\"replans\": " << s.replans << ", "
      << "\"final_mode\": \"" << s.final_mode << "\", "
      << "\"zero_drop\": " << (s.zero_drop ? "true" : "false") << "}";
}

}  // namespace

PerfOnlineBaseline run_perf_online(const PerfOnlineOptions& options) {
  PerfOnlineBaseline out;
  out.platform = options.platform;
  out.repetitions = std::max(1, options.repetitions);

  const Instance inst = make_instance(options.independent_n);
  const auto tasks = inst.tasks();
  const double batch_makespan =
      heteroprio(tasks, options.platform).makespan();
  const double base_rate = service_rate(tasks, options.platform);

  const auto note = [&](const PerfOnlineSeries& s) {
    if (!options.verbose) return;
    std::cerr << "[perf-online] " << s.label << ": stretch "
              << s.makespan_stretch << ", miss rate " << s.deadline_miss_rate
              << ", shed " << s.shed_fraction << ", "
              << s.replan_tasks_per_sec / 1e6 << "M tasks/s, final mode "
              << s.final_mode << '\n';
  };

  for (const double factor : options.rate_factors) {
    online::ArrivalSpec spec;
    spec.rate = factor * base_rate;
    spec.deadline_factor = options.deadline_factor;
    spec.seed = 1;
    const online::ArrivalPlan arrivals =
        online::ArrivalPlan::generate(spec, tasks);
    online::OnlineOptions run;
    run.arrivals = &arrivals;
    PerfOnlineSeries s =
        measure_arm(rate_label(factor), tasks, options.platform, run,
                    batch_makespan, out.repetitions);
    s.rate = spec.rate;
    out.series.push_back(s);
    note(out.series.back());
  }

  // Saturating arm: arrivals far above the service rate against a small
  // admission watermark with rejection — the run must end outside healthy
  // mode (incidents happened) while still accounting for every task.
  {
    online::ArrivalSpec spec;
    spec.rate = 8.0 * base_rate;
    spec.deadline_factor = options.deadline_factor;
    spec.seed = 2;
    const online::ArrivalPlan arrivals =
        online::ArrivalPlan::generate(spec, tasks);
    online::OnlineOptions run;
    run.arrivals = &arrivals;
    run.watermark_high =
        static_cast<std::size_t>(options.platform.workers()) * 2;
    run.shed_policy = online::ShedPolicy::kReject;
    PerfOnlineSeries s = measure_arm("saturating", tasks, options.platform,
                                     run, batch_makespan, out.repetitions);
    s.rate = spec.rate;
    out.series.push_back(s);
    note(out.series.back());
  }
  return out;
}

std::string perf_online_to_json(const PerfOnlineBaseline& baseline) {
  std::ostringstream out;
  out.precision(10);
  out << "{\n"
      << "  \"schema\": \"hp-bench-online/v1\",\n"
      << "  \"platform\": {\"cpus\": " << baseline.platform.cpus()
      << ", \"gpus\": " << baseline.platform.gpus() << "},\n"
      << "  \"repetitions\": " << baseline.repetitions << ",\n"
      << "  \"warmup_runs\": 1,\n"
      << "  \"series\": [";
  for (std::size_t i = 0; i < baseline.series.size(); ++i) {
    append_json_series(out, baseline.series[i], i == 0);
  }
  out << "\n  ]\n}\n";
  return out.str();
}

bool write_perf_online_json(const PerfOnlineBaseline& baseline,
                            const std::string& path) {
  std::ofstream file(path);
  if (!file) return false;
  file << perf_online_to_json(baseline);
  return static_cast<bool>(file);
}

bool validate_perf_online_json(const std::string& json_text,
                               std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (!jsonscan::balanced_json(json_text, error)) return false;
  if (jsonscan::string_field(json_text, "schema").value_or("") !=
      "hp-bench-online/v1") {
    return fail("missing or wrong schema tag (want hp-bench-online/v1)");
  }

  bool saw_batch_equivalent = false;
  bool saw_saturating = false;
  std::string problems;
  const auto problem = [&](const std::string& why) {
    if (!problems.empty()) problems += "; ";
    problems += why;
  };

  const bool walked = jsonscan::for_each_array_object(
      json_text, "series", [&](const std::string& obj) {
        const std::string label =
            jsonscan::string_field(obj, "label").value_or("");
        if (label.empty()) {
          problem("series entry without label");
          return;
        }
        const auto field = [&](const char* name) {
          return jsonscan::number_field(obj, name);
        };
        const std::optional<double> stretch = field("makespan_stretch");
        const std::optional<double> miss = field("deadline_miss_rate");
        const std::optional<double> shed = field("shed_fraction");
        const std::optional<double> rate = field("replan_tasks_per_sec");
        if (!stretch.has_value() || !std::isfinite(*stretch) ||
            *stretch <= 0.0) {
          problem(label + " has no positive makespan_stretch");
        }
        if (!miss.has_value() || *miss < 0.0 || *miss > 1.0) {
          problem(label + " deadline_miss_rate outside [0, 1]");
        }
        if (!shed.has_value() || *shed < 0.0 || *shed > 1.0) {
          problem(label + " shed_fraction outside [0, 1]");
        }
        if (!rate.has_value() || !std::isfinite(*rate) || *rate <= 0.0) {
          problem(label + " has no positive replan_tasks_per_sec");
        }
        // The zero-silent-drop invariant is part of the document contract.
        const std::string raw = obj;
        if (raw.find("\"zero_drop\": true") == std::string::npos) {
          problem(label + " does not assert zero_drop");
        }
        const std::string mode =
            jsonscan::string_field(obj, "final_mode").value_or("");
        if (label == "rate-0x") {
          saw_batch_equivalent = true;
          if (std::abs(stretch.value_or(0.0) - 1.0) > 1e-9) {
            problem("rate-0x stretch is not exactly 1 (the bitwise anchor)");
          }
        }
        if (label == "saturating") {
          saw_saturating = true;
          if (mode == "healthy" || mode.empty()) {
            problem("saturating arm ended in mode '" + mode +
                    "', expected degraded operation");
          }
          if (shed.value_or(0.0) <= 0.0) {
            problem("saturating arm shed nothing");
          }
        }
      });
  if (!walked) return fail("missing series array");
  if (!saw_batch_equivalent) problem("missing rate-0x series");
  if (!saw_saturating) problem("missing saturating series");
  if (!problems.empty()) return fail(problems);
  return true;
}

}  // namespace hp::perf
