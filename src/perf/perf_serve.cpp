#include "perf/perf_serve.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "model/generators.hpp"
#include "online/runtime.hpp"
#include "perf/json_scan.hpp"
#include "serve/driver.hpp"
#include "util/rng.hpp"

namespace hp::perf {

namespace {

/// Salt for the per-request workload seed, distinct from every other
/// subsystem.
constexpr std::uint64_t kServeSalt = 0x73727665ULL;  // "srve"

/// Deterministic request factory: one independent uniform instance per
/// (client, request) cell, tenants striped over clients, backends rotated
/// so the sweep exercises all engine entry points.
serve::Request make_request(int client, int index, std::size_t tasks,
                            const Platform& platform) {
  util::Rng rng(util::seed_from_cell({static_cast<std::uint64_t>(client),
                                      static_cast<std::uint64_t>(index)},
                                     kServeSalt));
  UniformGenParams params;
  params.num_tasks = tasks;
  const Instance inst = uniform_instance(params, rng);

  serve::Request request;
  request.tenant = client % 4;
  switch (index % 3) {
    case 0: request.backend = serve::Backend::kHp; break;
    case 1: request.backend = serve::Backend::kHeft; break;
    default: request.backend = serve::Backend::kDualHp; break;
  }
  request.platform = platform;
  TaskGraph graph("perf-serve-" + std::to_string(client) + "-" +
                  std::to_string(index));
  for (const Task& t : inst.tasks()) {
    Task task = t;
    task.priority = rng.uniform(0.0, 16.0);
    graph.add_task(task);
  }
  graph.finalize();
  request.graph = std::move(graph);
  return request;
}

/// Best-of-reps measurement of one arm; throughput comes from the fastest
/// repetition, latency quantiles from that same run, and zero_drop must
/// hold in every repetition.
PerfServeSeries measure_arm(const std::string& label,
                            const PerfServeOptions& options,
                            const serve::ServiceOptions& service, int reps) {
  serve::DriverOptions driver;
  driver.clients = options.clients;
  driver.requests_per_client = options.requests_per_client;
  driver.service = service;
  driver.verify = false;  // the fuzz `serve` property owns the differential

  PerfServeSeries s;
  s.label = label;
  s.workers = service.workers;
  s.clients = options.clients;
  s.zero_drop = true;
  for (int r = 0; r < reps; ++r) {
    const serve::DriverReport report = serve::run_driver(
        [&](int client, int index) {
          return make_request(client, index, options.tasks_per_request,
                              options.platform);
        },
        driver);
    s.zero_drop = s.zero_drop && report.balanced && report.paired;
    if (report.requests_per_sec > s.requests_per_sec) {
      s.requests_per_sec = report.requests_per_sec;
      s.submitted = report.accounting.submitted;
      s.completed = report.accounting.completed;
      s.rejected = report.accounting.rejected;
      s.deferred = report.accounting.deferred;
      s.p50_latency_ms = report.p50_latency_seconds * 1e3;
      s.p99_latency_ms = report.p99_latency_seconds * 1e3;
    }
  }
  return s;
}

void append_json_series(std::ostringstream& out, const PerfServeSeries& s,
                        bool first) {
  if (!first) out << ",";
  out << "\n    {\"label\": \"" << s.label << "\", "
      << "\"workers\": " << s.workers << ", "
      << "\"clients\": " << s.clients << ", "
      << "\"submitted\": " << s.submitted << ", "
      << "\"completed\": " << s.completed << ", "
      << "\"rejected\": " << s.rejected << ", "
      << "\"deferred\": " << s.deferred << ", "
      << "\"requests_per_sec\": " << s.requests_per_sec << ", "
      << "\"p50_latency_ms\": " << s.p50_latency_ms << ", "
      << "\"p99_latency_ms\": " << s.p99_latency_ms << ", "
      << "\"zero_drop\": " << (s.zero_drop ? "true" : "false") << "}";
}

}  // namespace

PerfServeBaseline run_perf_serve(const PerfServeOptions& options) {
  PerfServeBaseline out;
  out.platform = options.platform;
  out.repetitions = std::max(1, options.repetitions);
  out.tasks_per_request = options.tasks_per_request;

  const auto note = [&](const PerfServeSeries& s) {
    if (!options.verbose) return;
    std::cerr << "[perf-serve] " << s.label << ": " << s.requests_per_sec
              << " req/s, p50 " << s.p50_latency_ms << " ms, p99 "
              << s.p99_latency_ms << " ms, rejected " << s.rejected << '\n';
  };

  for (const int workers : options.worker_counts) {
    serve::ServiceOptions service;
    service.workers = std::max(1, workers);
    service.max_clients = std::max(1, options.clients);
    PerfServeSeries s =
        measure_arm("workers-" + std::to_string(service.workers), options,
                    service, out.repetitions);
    out.series.push_back(s);
    note(out.series.back());
  }

  // Saturating arm: a shallow admission watermark with rejection against
  // the full client load — the service must shed (rejected > 0) while
  // still answering every submission (zero_drop).
  {
    serve::ServiceOptions service;
    service.workers = 2;
    service.max_clients = std::max(1, options.clients);
    service.watermark_high = 2;
    service.shed_policy = online::ShedPolicy::kReject;
    PerfServeSeries s =
        measure_arm("saturating", options, service, out.repetitions);
    out.series.push_back(s);
    note(out.series.back());
  }
  return out;
}

std::string perf_serve_to_json(const PerfServeBaseline& baseline) {
  std::ostringstream out;
  out.precision(10);
  out << "{\n"
      << "  \"schema\": \"hp-bench-serve/v1\",\n"
      << "  \"platform\": {\"cpus\": " << baseline.platform.cpus()
      << ", \"gpus\": " << baseline.platform.gpus() << "},\n"
      << "  \"repetitions\": " << baseline.repetitions << ",\n"
      << "  \"tasks_per_request\": " << baseline.tasks_per_request << ",\n"
      << "  \"series\": [";
  for (std::size_t i = 0; i < baseline.series.size(); ++i) {
    append_json_series(out, baseline.series[i], i == 0);
  }
  out << "\n  ]\n}\n";
  return out.str();
}

bool write_perf_serve_json(const PerfServeBaseline& baseline,
                           const std::string& path) {
  std::ofstream file(path);
  if (!file) return false;
  file << perf_serve_to_json(baseline);
  return static_cast<bool>(file);
}

bool validate_perf_serve_json(const std::string& json_text,
                              std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (!jsonscan::balanced_json(json_text, error)) return false;
  if (jsonscan::string_field(json_text, "schema").value_or("") !=
      "hp-bench-serve/v1") {
    return fail("missing or wrong schema tag (want hp-bench-serve/v1)");
  }

  bool saw_single_worker = false;
  bool saw_saturating = false;
  std::string problems;
  const auto problem = [&](const std::string& why) {
    if (!problems.empty()) problems += "; ";
    problems += why;
  };

  const bool walked = jsonscan::for_each_array_object(
      json_text, "series", [&](const std::string& obj) {
        const std::string label =
            jsonscan::string_field(obj, "label").value_or("");
        if (label.empty()) {
          problem("series entry without label");
          return;
        }
        const auto field = [&](const char* name) {
          return jsonscan::number_field(obj, name);
        };
        const std::optional<double> rate = field("requests_per_sec");
        const std::optional<double> p50 = field("p50_latency_ms");
        const std::optional<double> p99 = field("p99_latency_ms");
        const std::optional<double> submitted = field("submitted");
        const std::optional<double> completed = field("completed");
        const std::optional<double> rejected = field("rejected");
        if (!rate.has_value() || !std::isfinite(*rate) || *rate <= 0.0) {
          problem(label + " has no positive requests_per_sec");
        }
        if (!p50.has_value() || !std::isfinite(*p50) || *p50 <= 0.0) {
          problem(label + " has no positive p50_latency_ms");
        }
        if (!p99.has_value() || !std::isfinite(*p99) || *p99 <= 0.0) {
          problem(label + " has no positive p99_latency_ms");
        }
        if (p50.has_value() && p99.has_value() && *p99 < *p50) {
          problem(label + " latency quantiles out of order (p99 < p50)");
        }
        if (submitted.has_value() && completed.has_value() &&
            rejected.has_value() &&
            *completed + *rejected != *submitted) {
          problem(label + " does not account for every request");
        }
        // The zero-silent-drop invariant is part of the document contract.
        if (obj.find("\"zero_drop\": true") == std::string::npos) {
          problem(label + " does not assert zero_drop");
        }
        if (label == "workers-1") saw_single_worker = true;
        if (label == "saturating") {
          saw_saturating = true;
          if (rejected.value_or(0.0) <= 0.0) {
            problem("saturating arm rejected nothing");
          }
        }
      });
  if (!walked) return fail("missing series array");
  if (!saw_single_worker) problem("missing workers-1 series");
  if (!saw_saturating) problem("missing saturating series");
  if (!problems.empty()) return fail(problems);
  return true;
}

}  // namespace hp::perf
