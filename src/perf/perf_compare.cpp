#include "perf/perf_compare.hpp"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <sstream>

#include "perf/json_scan.hpp"

namespace hp::perf {

namespace {

/// Identity of one series entry, or nullopt for malformed entries.
std::optional<std::string> series_key(const std::string& obj) {
  const std::string algo = jsonscan::string_field(obj, "algorithm").value_or("");
  if (algo.empty()) return std::nullopt;
  if (const auto kernel = jsonscan::string_field(obj, "kernel");
      kernel.has_value()) {
    const auto tiles = jsonscan::number_field(obj, "tiles");
    if (!tiles.has_value()) return std::nullopt;
    return *kernel + "/" + algo +
           " N=" + std::to_string(static_cast<long long>(*tiles));
  }
  const auto n = jsonscan::number_field(obj, "n");
  if (!n.has_value()) return std::nullopt;
  std::string key = algo + " n=" + std::to_string(static_cast<long long>(*n));
  // Parallel-scaling entries exist at several thread counts per n; the
  // thread count is part of their identity or the --against join would
  // collapse the whole scaling curve into one ambiguous series.
  if (const auto threads = jsonscan::number_field(obj, "threads");
      threads.has_value() && *threads > 0.0) {
    key += " W=" + std::to_string(static_cast<long long>(*threads));
  }
  return key;
}

}  // namespace

std::vector<SeriesPoint> extract_series(const std::string& json_text) {
  std::vector<SeriesPoint> out;
  jsonscan::for_each_array_object(
      json_text, "series", [&](const std::string& obj) {
        const auto key = series_key(obj);
        if (const auto rate = jsonscan::number_field(obj, "tasks_per_sec");
            key.has_value() && rate.has_value() && *rate > 0.0) {
          out.push_back(SeriesPoint{*key, *rate});
          return;
        }
        // BENCH_obs entries carry two throughputs per workload; surface
        // both arms so an --against join tracks each trend separately.
        const std::string workload =
            jsonscan::string_field(obj, "workload").value_or("");
        const auto n = jsonscan::number_field(obj, "n");
        if (workload.empty() || !n.has_value()) return;
        const std::string suffix =
            " n=" + std::to_string(static_cast<long long>(*n));
        if (const auto base =
                jsonscan::number_field(obj, "baseline_tasks_per_sec");
            base.has_value() && *base > 0.0) {
          out.push_back(SeriesPoint{workload + " baseline" + suffix, *base});
        }
        if (const auto inst =
                jsonscan::number_field(obj, "instrumented_tasks_per_sec");
            inst.has_value() && *inst > 0.0) {
          out.push_back(
              SeriesPoint{workload + " instrumented" + suffix, *inst});
        }
      });
  return out;
}

PerfComparison compare_series(const std::string& baseline_json,
                              const std::string& current_json,
                              double tolerance) {
  PerfComparison cmp;
  const std::vector<SeriesPoint> before = extract_series(baseline_json);
  std::vector<SeriesPoint> after = extract_series(current_json);

  // Join by key; order in either document is irrelevant.
  for (const SeriesPoint& b : before) {
    const auto it =
        std::find_if(after.begin(), after.end(), [&](const SeriesPoint& a) {
          return a.key == b.key;
        });
    if (it == after.end()) {
      cmp.missing.push_back(b.key);
      continue;
    }
    const SeriesDelta delta{b.key, b.tasks_per_sec, it->tasks_per_sec};
    after.erase(it);
    if (delta.ratio() < 1.0 - tolerance) {
      cmp.regressed.push_back(delta);
    } else if (delta.ratio() > 1.0 + tolerance) {
      cmp.improved.push_back(delta);
    } else {
      cmp.unchanged.push_back(delta);
    }
  }
  for (const SeriesPoint& a : after) cmp.added.push_back(a.key);

  // Worst regressions first: the first line of the report is the headline.
  std::sort(cmp.regressed.begin(), cmp.regressed.end(),
            [](const SeriesDelta& x, const SeriesDelta& y) {
              return x.ratio() < y.ratio();
            });
  return cmp;
}

std::string format_comparison(const PerfComparison& cmp) {
  std::ostringstream out;
  char buf[192];
  const auto line = [&](const char* verdict, const SeriesDelta& d) {
    std::snprintf(buf, sizeof buf,
                  "%s %s: %.3gM -> %.3gM tasks/s (%+.1f%%)\n", verdict,
                  d.key.c_str(), d.baseline / 1e6, d.current / 1e6,
                  100.0 * (d.ratio() - 1.0));
    out << buf;
  };
  for (const SeriesDelta& d : cmp.regressed) line("REGRESSED", d);
  for (const std::string& key : cmp.missing) {
    out << "MISSING   " << key << ": present in baseline, absent now\n";
  }
  for (const SeriesDelta& d : cmp.improved) line("improved ", d);
  for (const std::string& key : cmp.added) {
    out << "added     " << key << '\n';
  }
  std::snprintf(buf, sizeof buf,
                "%zu regressed, %zu missing, %zu improved, %zu unchanged, "
                "%zu added\n",
                cmp.regressed.size(), cmp.missing.size(), cmp.improved.size(),
                cmp.unchanged.size(), cmp.added.size());
  out << buf;
  return out.str();
}

}  // namespace hp::perf
