#pragma once
// Observability overhead budget: instrumented-vs-disabled throughput of the
// HeteroPrio engine on the two reference workloads (large independent
// instance, Cholesky DAG). "Disabled" is a null metrics pointer — exactly
// the configuration -DHP_OBS_OFF lowers to, minus one never-taken pointer
// test per scope — so the measured gap is the full cost of attaching a
// collector with default sampling. Emitted as BENCH_obs.json (schema
// "hp-bench-obs/v1", documented in docs/benchmarks.md); `hp_sched
// perf-check` enforces the budget recorded in the document.

#include <string>
#include <vector>

#include "model/platform.hpp"

namespace hp::perf {

struct PerfObsOptions {
  /// Independent-instance size (tasks).
  std::size_t independent_n = 100000;
  /// Cholesky tile count (N=40 is ~11k tasks).
  int cholesky_tiles = 40;
  /// Timed repetitions per arm; the best one is reported. The two arms are
  /// interleaved (baseline, instrumented, baseline, ...) so clock-frequency
  /// drift hits both equally, and one untimed warm-up per arm precedes them.
  int repetitions = 7;
  Platform platform{20, 4};
  /// Maximum tolerated overhead_fraction, recorded into the document.
  double budget = 0.02;
  bool verbose = false;  ///< progress lines on stderr
};

/// One workload's paired measurement.
struct PerfObsSeries {
  std::string workload;   // independent-uniform | cholesky
  std::string algorithm;  // HeteroPrio
  std::size_t n = 0;      // tasks
  double baseline_tasks_per_sec = 0.0;      ///< metrics == nullptr
  double instrumented_tasks_per_sec = 0.0;  ///< collector attached
  /// baseline_rate / instrumented_rate - 1; negative values (noise in the
  /// instrumented arm's favor) are reported as measured, not clamped.
  double overhead_fraction = 0.0;
};

struct PerfObsBaseline {
  Platform platform{20, 4};
  int repetitions = 0;
  double budget = 0.02;
  std::vector<PerfObsSeries> series;
};

/// Run both paired measurements. Deterministic workloads (seeded from n).
[[nodiscard]] PerfObsBaseline run_obs_overhead(const PerfObsOptions& options);

/// Serialize to the BENCH_obs.json document (schema "hp-bench-obs/v1").
[[nodiscard]] std::string perf_obs_to_json(const PerfObsBaseline& baseline);

/// Write the JSON document to `path`. Returns false on I/O failure.
bool write_perf_obs_json(const PerfObsBaseline& baseline,
                         const std::string& path);

/// Validate an emitted BENCH_obs.json: parses, carries the v1 schema tag
/// and a positive budget, and holds a series entry with positive rates and
/// a finite overhead_fraction for both reference workloads. On failure
/// returns false and `*error` names everything missing, not just the first.
bool validate_perf_obs_json(const std::string& json_text, std::string* error);

/// Enforce the overhead budget of a (valid) BENCH_obs.json: every series'
/// overhead_fraction must be <= `budget`; budget <= 0 uses the budget
/// recorded in the document. Names each series over budget with its value.
bool check_obs_budget(const std::string& json_text, double budget,
                      std::string* error);

}  // namespace hp::perf
