#pragma once
// Long-running multi-tenant scheduling service over the engines.
//
// Clients submit Requests from their own threads; a pool of service workers
// drains the lock-free MPMC intake queue (serve/mpmc_queue.hpp) in batches
// and answers each request through a future. Three layers sit between
// submit() and the engine:
//
//  * Admission control with the high/low-watermark hysteresis of the online
//    runtime (src/online): once the queued backlog reaches watermark_high
//    the service sheds — deferring (FIFO park, re-admitted when the backlog
//    drains to watermark_low) or rejecting (answered with kRejected) per
//    ShedPolicy — and stops shedding only at the low watermark. Shed
//    requests are counted and answered, never silently dropped.
//  * The zero-silent-drop accounting identity, maintained under one lock
//    and exposed by accounting(): submitted == accepted + rejected and
//    accepted == completed + in_flight, at every instant. Tests, the CLI
//    driver and the fuzz oracle's `serve` property all assert balanced().
//  * Per-tenant isolation: counters and an enqueue-to-response latency
//    histogram per (worker, tenant) — single-writer obs::MetricsRegistry
//    instances merged on demand — so one tenant's traffic is attributable
//    independently of the others'.
//
// Determinism contract: workers run serve::execute_request, a pure function
// of the request, so the schedule a client receives is bitwise-identical to
// a direct engine call no matter which worker served it, how requests were
// batched, or what admission pressure looked like. Graceful drain: drain()
// stops intake, force-admits every parked request, and joins the workers
// only after the queue is empty — nothing is lost or double-served.

#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "online/runtime.hpp"
#include "serve/mpmc_queue.hpp"
#include "serve/request.hpp"

namespace hp::serve {

struct PendingRequest;

/// What admission control decided for one submission.
enum class Admission : std::uint8_t { kAccepted = 0, kDeferred, kRejected };

[[nodiscard]] const char* admission_name(Admission admission) noexcept;

struct ServiceOptions {
  int workers = 2;      ///< service worker threads draining the queue
  int max_clients = 8;  ///< max concurrent submitting threads (epoch slots)
  int batch_size = 8;   ///< requests a worker claims per wakeup
  std::uint32_t segment_capacity = 64;  ///< intake ring slots per segment
  /// Hard cap on values in queue custody (0 = unbounded; admission
  /// watermarks are the intended bound — a full queue rejects).
  std::size_t queue_capacity = 0;
  /// Admission hysteresis on the queued backlog: shedding starts at
  /// watermark_high and clears at watermark_low (default high / 2).
  /// 0 disables admission control entirely.
  std::size_t watermark_high = 0;
  std::size_t watermark_low = 0;
  online::ShedPolicy shed_policy = online::ShedPolicy::kDefer;
};

class Service {
 public:
  explicit Service(const ServiceOptions& options = {});
  ~Service();  ///< drains if the caller has not

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  struct Ticket {
    Admission admission = Admission::kAccepted;
    std::uint64_t id = 0;  ///< matches Response::id
    /// Always valid; rejected submissions resolve immediately with
    /// ResponseStatus::kRejected.
    std::future<Response> response;
  };

  /// Submit from the calling thread, identified by `client_slot` in
  /// [0, options.max_clients). Distinct concurrent submitters must use
  /// distinct slots; a slot may be reused by consecutive threads.
  [[nodiscard]] Ticket submit(Request request, int client_slot);

  /// Stop intake, force-admit every deferred request, finish everything in
  /// custody and join the workers. Idempotent. After drain() the accounting
  /// shows in_flight == 0 and submit() rejects.
  void drain();

  [[nodiscard]] bool draining() const;

  /// Zero-silent-drop snapshot; balanced() holds at every instant.
  struct Accounting {
    std::uint64_t submitted = 0;
    std::uint64_t accepted = 0;   ///< taken into custody (deferred included)
    std::uint64_t rejected = 0;   ///< answered kRejected (shed or full)
    std::uint64_t deferred = 0;   ///< park events (subset of accepted)
    std::uint64_t completed = 0;
    std::uint64_t in_flight = 0;  ///< accepted - completed
    std::uint64_t shed_mode_changes = 0;  ///< hysteresis transitions

    [[nodiscard]] bool balanced() const noexcept {
      return submitted == accepted + rejected &&
             accepted == completed + in_flight;
    }
  };
  [[nodiscard]] Accounting accounting() const;

  /// Tenants that ever submitted, ascending.
  [[nodiscard]] std::vector<int> tenants() const;

  /// Merged metrics of one tenant: per-worker completion counters and the
  /// serve_latency_seconds histogram, plus the submit-side admission
  /// counters. Exact only while the service is quiescent — call after
  /// drain() (workers write their registries without locks while running).
  [[nodiscard]] obs::MetricsRegistry tenant_metrics(int tenant) const;

  /// Intake-queue reclamation counters (tests: allocation stays flat).
  [[nodiscard]] std::size_t queue_segments_allocated() const noexcept;
  [[nodiscard]] std::size_t queue_segments_recycled() const noexcept;

 private:
  struct TenantCounters {
    std::uint64_t submitted = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t deferred = 0;
    std::uint64_t completed = 0;
  };

  /// Per-worker metrics, written lock-free by the owning worker.
  struct WorkerMetrics {
    obs::MetricsRegistry own;                   ///< batches, pops
    std::map<int, obs::MetricsRegistry> tenants;  ///< per-tenant series
  };

  void worker_main(int worker_index);
  /// Re-evaluate the hysteresis and re-admit parked requests while below
  /// the high watermark. Caller holds state_mutex_; `epoch_slot` pushes.
  void update_shedding_locked(std::size_t epoch_slot);
  void finish_request(PendingRequest* pending, int worker_index);
  void reject_request(PendingRequest* pending);

  ServiceOptions options_;
  MpmcQueue<PendingRequest*> queue_;

  std::mutex drain_mutex_;  ///< serializes drain() callers; outer lock
  mutable std::mutex state_mutex_;
  Accounting acct_;
  std::map<int, TenantCounters> tenant_counts_;
  std::deque<PendingRequest*> parked_;  ///< deferred, FIFO
  std::size_t backlog_ = 0;             ///< requests queued (not executing)
  bool shedding_ = false;
  bool draining_ = false;
  std::uint64_t next_id_ = 1;

  std::vector<WorkerMetrics> worker_metrics_;
  std::vector<std::thread> workers_;
};

}  // namespace hp::serve
