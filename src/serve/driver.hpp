#pragma once
// In-process load driver for the scheduling service: N client threads
// submitting M requests each (no sockets — the client threads play the
// transport). This is what `hp_sched serve`, the soak test and the
// BENCH_serve bench run; it owns the end-to-end assertions:
//
//  * zero silent drops — the service accounting identity balances and
//    every submission resolved exactly one response,
//  * request/response pairing — each response carries the id of the ticket
//    its submission returned and the submitting client's tenant,
//  * (with `verify`) the bitwise differential — every completed response's
//    schedule and recovery report equal a direct execute_request() of the
//    same request, regardless of worker, batching or admission pressure.
//
// Workloads are pre-generated before the clock starts, so wall_seconds and
// requests_per_sec measure the service (queue + admission + engine), not
// the generator.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/service.hpp"

namespace hp::serve {

/// Builds the request client `client` submits as its `index`-th call.
/// Must be thread-safe for distinct clients (the driver pre-generates on
/// one thread, so pure functions are trivially fine).
using RequestFactory = std::function<Request(int client, int index)>;

struct DriverOptions {
  int clients = 4;               ///< client threads (tenants, typically)
  int requests_per_client = 50;
  ServiceOptions service;        ///< max_clients is raised to `clients`
  /// Re-run every completed request directly and require bitwise-identical
  /// schedules and recovery reports (costs one extra engine run each).
  bool verify = true;
};

struct DriverTenantReport {
  int tenant = 0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t deferred = 0;
  double mean_latency_seconds = 0.0;
  double p50_latency_seconds = 0.0;
  double p99_latency_seconds = 0.0;
};

struct DriverReport {
  Service::Accounting accounting;
  bool balanced = false;   ///< the accounting identity held
  bool paired = false;     ///< every response matched its ticket id/tenant
  bool verified = false;   ///< bitwise differential passed (true if skipped)
  std::uint64_t responses = 0;  ///< futures resolved (must == submitted)
  double wall_seconds = 0.0;
  double requests_per_sec = 0.0;  ///< completed / wall_seconds
  double p50_latency_seconds = 0.0;  ///< across all tenants
  double p99_latency_seconds = 0.0;
  std::vector<DriverTenantReport> tenants;
  std::string first_error;  ///< first assertion failure, empty when ok

  [[nodiscard]] bool ok() const noexcept {
    return balanced && paired && verified && first_error.empty();
  }
};

[[nodiscard]] DriverReport run_driver(const RequestFactory& make_request,
                                      const DriverOptions& options);

}  // namespace hp::serve
