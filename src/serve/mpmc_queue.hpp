#pragma once
// Lock-free MPMC intake queue for the scheduling service: a linked list of
// fixed-capacity ring segments (the BLQueue/RingsQueue family), with
// `util::StripedEpoch` guarding segment reclamation — the same scheme the
// parallel engine uses for its ready blocks.
//
// Each segment hands out enqueue/dequeue tickets with fetch_add; ticket t
// maps to slot t of the segment. A slot is a tiny state machine:
//
//   kEmpty --CAS by the producer holding ticket t--> kFull
//   kEmpty --exchange by a consumer that outran the producer--> kPoisoned
//
// A producer whose CAS finds poison simply takes the next ticket (its
// per-producer FIFO order is preserved: tickets only grow). When a segment
// runs out of tickets the thread links a fresh segment behind it and
// advances the shared tail; the consumer that moves the shared head past a
// drained segment retires it through the epoch, and the segment recycles
// into a pooled freelist once every thread that could still hold a pointer
// into it has moved on. Under steady-state churn allocation stays flat up
// to preemption transients: a thread descheduled inside its epoch guard
// pins reclamation for its quantum, and peers fall back to allocating
// (bounded memory traded for non-blocking progress; asserted by tests).
//
// Consumers are entitled through `items_`, a count of published-but-
// unconsumed values: try_pop first CAS-decrements it (so consumers never
// chase values that do not exist), then walks dequeue tickets until it
// claims a full slot. If the walk hits the end of the chain — the entitled
// value is still mid-flight in an outrun producer — the entitlement is
// returned and try_pop fails *spuriously*: callers must treat `false` as
// "retry later" unless they know producers have quiesced. This keeps the
// queue non-blocking instead of spinning on a stalled peer.
//
// `capacity` bounds the values concurrently in custody (0 = unbounded; the
// service bounds intake with admission watermarks instead and leaves the
// queue structurally unbounded: bounded ring segments + linked overflow).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <type_traits>
#include <vector>

#include "util/striped_epoch.hpp"

namespace hp::serve {

template <typename T>
class MpmcQueue {
  static_assert(std::is_trivially_copyable_v<T>,
                "queue payloads are raw slots; pass pointers to rich data");

 public:
  /// `slots` epoch participants (every thread that pushes or pops needs its
  /// own index in [0, slots)); `segment_capacity` ring slots per segment;
  /// `capacity` caps values concurrently in custody (0 = unbounded).
  explicit MpmcQueue(std::size_t slots, std::uint32_t segment_capacity = 256,
                     std::size_t capacity = 0)
      : epoch_(slots),
        segment_capacity_(segment_capacity < 2 ? 2 : segment_capacity),
        capacity_(capacity) {
    Segment* first = acquire_segment();
    head_.store(first, std::memory_order_relaxed);
    tail_.store(first, std::memory_order_relaxed);
  }

  ~MpmcQueue() {
    // All participants have left: storage_ owns every segment ever
    // allocated, so dropping the pool frees the chain and the freelist.
    std::vector<void*> scratch;
    epoch_.drain(scratch);
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Publish `value` from epoch participant `slot`. Fails only when the
  /// custody cap is hit (never spuriously); unbounded queues always accept.
  bool try_push(std::size_t slot, T value) {
    if (capacity_ != 0) {
      std::size_t in_custody = custody_.load(std::memory_order_relaxed);
      for (;;) {
        if (in_custody >= capacity_) return false;
        if (custody_.compare_exchange_weak(in_custody, in_custody + 1,
                                           std::memory_order_relaxed)) {
          break;
        }
      }
    }
    const util::EpochGuard guard(epoch_, slot);
    for (;;) {
      Segment* tail = tail_.load(std::memory_order_acquire);
      const std::uint64_t ticket =
          tail->enq.load(std::memory_order_relaxed) < segment_capacity_
              ? tail->enq.fetch_add(1, std::memory_order_acq_rel)
              : segment_capacity_;
      if (ticket < segment_capacity_) {
        Slot& s = tail->slots[ticket];
        s.value = value;
        std::uint32_t expected = kEmpty;
        if (s.state.compare_exchange_strong(expected, kFull,
                                            std::memory_order_acq_rel)) {
          // The release-increment is what entitles a consumer; it also
          // publishes any tail/next links installed above, so an entitled
          // consumer can always reach its value's segment.
          items_.fetch_add(1, std::memory_order_release);
          return true;
        }
        continue;  // a consumer outran us and poisoned the ticket
      }
      advance_tail(tail);
    }
  }

  /// Claim one value into `*out` from epoch participant `slot`. Returns
  /// false when empty — or *spuriously* when the entitled value is still
  /// mid-flight in an outrun producer (see the header comment); callers
  /// retry unless producers are known to have quiesced.
  bool try_pop(std::size_t slot, T* out) {
    std::uint64_t published = items_.load(std::memory_order_acquire);
    for (;;) {
      if (published == 0) return false;
      if (items_.compare_exchange_weak(published, published - 1,
                                       std::memory_order_acq_rel)) {
        break;
      }
    }
    const util::EpochGuard guard(epoch_, slot);
    for (;;) {
      Segment* head = head_.load(std::memory_order_acquire);
      const std::uint64_t ticket =
          head->deq.load(std::memory_order_relaxed) < segment_capacity_
              ? head->deq.fetch_add(1, std::memory_order_acq_rel)
              : segment_capacity_;
      if (ticket < segment_capacity_) {
        Slot& s = head->slots[ticket];
        // Brief grace for a producer that holds this ticket but has not
        // published yet; then poison so we can move on to the next ticket.
        std::uint32_t seen = s.state.load(std::memory_order_acquire);
        for (int spin = 0; seen == kEmpty && spin < kProducerGraceSpins;
             ++spin) {
          seen = s.state.load(std::memory_order_acquire);
        }
        if (s.state.exchange(kPoisoned, std::memory_order_acq_rel) == kFull) {
          *out = s.value;
          if (capacity_ != 0) {
            custody_.fetch_sub(1, std::memory_order_relaxed);
          }
          return true;
        }
        continue;  // poisoned an empty ticket; its producer will retry
      }
      // Segment exhausted. A published value in a later segment implies the
      // producer linked `next` before its items_ increment, so a null link
      // means our value is mid-flight in *this* segment: give the
      // entitlement back and fail spuriously rather than spin on the peer.
      Segment* next = head->next.load(std::memory_order_acquire);
      if (next == nullptr) {
        items_.fetch_add(1, std::memory_order_release);
        return false;
      }
      // Help a stalled linker first: tail_ must move past this segment
      // before head_ does, so a retired segment is never reachable through
      // tail_ — a producer entering after the retirement could otherwise
      // publish into a recycled segment (epoch pinning only protects
      // threads that entered before the retire).
      Segment* tail = tail_.load(std::memory_order_acquire);
      if (tail == head) {
        tail_.compare_exchange_strong(tail, next,
                                      std::memory_order_acq_rel);
      }
      if (head_.compare_exchange_strong(head, next,
                                        std::memory_order_acq_rel)) {
        epoch_.retire(slot, head);  // recycled once the grace period passes
      }
    }
  }

  /// Published-but-unconsumed values (exact once producers quiesce).
  [[nodiscard]] std::size_t approx_size() const noexcept {
    return static_cast<std::size_t>(items_.load(std::memory_order_acquire));
  }

  /// Segments ever allocated / recycled through the epoch freelist. The
  /// churn regression: allocated stays flat while recycled grows.
  [[nodiscard]] std::size_t segments_allocated() const noexcept {
    return segments_allocated_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t segments_recycled() const noexcept {
    return segments_recycled_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t epoch_slots() const noexcept {
    return epoch_.slots();
  }

 private:
  enum : std::uint32_t { kEmpty = 0, kFull = 1, kPoisoned = 2 };
  static constexpr int kProducerGraceSpins = 128;

  struct Slot {
    std::atomic<std::uint32_t> state{kEmpty};
    T value;
  };

  struct alignas(util::kEpochSlotStride) Segment {
    explicit Segment(std::uint32_t capacity)
        : slots(std::make_unique<Slot[]>(capacity)) {}

    void reset(std::uint32_t capacity) {
      enq.store(0, std::memory_order_relaxed);
      deq.store(0, std::memory_order_relaxed);
      next.store(nullptr, std::memory_order_relaxed);
      for (std::uint32_t i = 0; i < capacity; ++i) {
        slots[i].state.store(kEmpty, std::memory_order_relaxed);
      }
    }

    std::atomic<std::uint64_t> enq{0};
    std::atomic<std::uint64_t> deq{0};
    std::atomic<Segment*> next{nullptr};
    std::unique_ptr<Slot[]> slots;
  };

  void advance_tail(Segment* tail) {
    Segment* next = tail->next.load(std::memory_order_acquire);
    if (next == nullptr) {
      Segment* fresh = acquire_segment();
      Segment* expected = nullptr;
      if (tail->next.compare_exchange_strong(expected, fresh,
                                             std::memory_order_acq_rel)) {
        next = fresh;
      } else {
        release_unpublished(fresh);  // lost the link race; never published
        next = expected;
      }
    }
    tail_.compare_exchange_strong(tail, next, std::memory_order_acq_rel);
  }

  Segment* acquire_segment() {
    const std::lock_guard<std::mutex> lock(pool_mutex_);
    // Opportunistic reclaim: retired heads whose grace period has elapsed
    // go back on the freelist, so steady-state churn allocates nothing.
    reclaim_scratch_.clear();
    epoch_.try_reclaim(reclaim_scratch_);
    for (void* block : reclaim_scratch_) {
      free_.push_back(static_cast<Segment*>(block));
      segments_recycled_.fetch_add(1, std::memory_order_release);
    }
    if (!free_.empty()) {
      Segment* segment = free_.back();
      free_.pop_back();
      segment->reset(segment_capacity_);
      return segment;
    }
    storage_.push_back(std::make_unique<Segment>(segment_capacity_));
    segments_allocated_.fetch_add(1, std::memory_order_release);
    return storage_.back().get();
  }

  void release_unpublished(Segment* segment) {
    // Never linked into the chain, so no grace period is needed.
    const std::lock_guard<std::mutex> lock(pool_mutex_);
    free_.push_back(segment);
  }

  util::StripedEpoch epoch_;
  const std::uint32_t segment_capacity_;
  const std::size_t capacity_;

  alignas(util::kEpochSlotStride) std::atomic<Segment*> head_{nullptr};
  alignas(util::kEpochSlotStride) std::atomic<Segment*> tail_{nullptr};
  alignas(util::kEpochSlotStride) std::atomic<std::uint64_t> items_{0};
  alignas(util::kEpochSlotStride) std::atomic<std::size_t> custody_{0};

  std::mutex pool_mutex_;
  std::vector<std::unique_ptr<Segment>> storage_;
  std::vector<Segment*> free_;
  std::vector<void*> reclaim_scratch_;
  std::atomic<std::size_t> segments_allocated_{0};
  std::atomic<std::size_t> segments_recycled_{0};
};

}  // namespace hp::serve
