#include "serve/driver.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>

namespace hp::serve {

namespace {

using Clock = std::chrono::steady_clock;

struct ClientOutcome {
  std::vector<std::uint64_t> ticket_ids;
  std::vector<Admission> admissions;
  std::vector<Response> responses;
};

}  // namespace

DriverReport run_driver(const RequestFactory& make_request,
                        const DriverOptions& options) {
  DriverReport report;
  const int clients = std::max(1, options.clients);
  const int per_client = std::max(0, options.requests_per_client);

  // Pre-generate outside the timed region; keep the originals for the
  // differential.
  std::vector<std::vector<Request>> workloads(
      static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    workloads[static_cast<std::size_t>(c)].reserve(
        static_cast<std::size_t>(per_client));
    for (int i = 0; i < per_client; ++i) {
      workloads[static_cast<std::size_t>(c)].push_back(make_request(c, i));
    }
  }

  ServiceOptions service_options = options.service;
  service_options.max_clients =
      std::max(service_options.max_clients, clients);
  Service service(service_options);

  std::vector<ClientOutcome> outcomes(static_cast<std::size_t>(clients));
  const auto started = Clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        ClientOutcome& outcome = outcomes[static_cast<std::size_t>(c)];
        std::vector<std::future<Response>> futures;
        futures.reserve(static_cast<std::size_t>(per_client));
        for (int i = 0; i < per_client; ++i) {
          const Request& original =
              workloads[static_cast<std::size_t>(c)][
                  static_cast<std::size_t>(i)];
          // Submit a copy when verifying (the original is re-run later);
          // move otherwise.
          Service::Ticket ticket =
              options.verify ? service.submit(Request(original), c)
                             : service.submit(
                                   std::move(workloads[static_cast<
                                       std::size_t>(c)][
                                       static_cast<std::size_t>(i)]),
                                   c);
          outcome.ticket_ids.push_back(ticket.id);
          outcome.admissions.push_back(ticket.admission);
          futures.push_back(std::move(ticket.response));
        }
        outcome.responses.reserve(futures.size());
        for (std::future<Response>& f : futures) {
          outcome.responses.push_back(f.get());
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  report.wall_seconds =
      std::chrono::duration<double>(Clock::now() - started).count();
  service.drain();

  report.accounting = service.accounting();
  report.balanced = report.accounting.balanced();
  const auto note = [&](const std::string& why) {
    if (report.first_error.empty()) report.first_error = why;
  };
  if (!report.balanced) note("accounting identity does not balance");

  // Pairing + (optionally) the bitwise differential.
  report.paired = true;
  report.verified = true;
  std::vector<std::uint64_t> all_ids;
  for (int c = 0; c < clients; ++c) {
    const ClientOutcome& outcome = outcomes[static_cast<std::size_t>(c)];
    report.responses += outcome.responses.size();
    for (int i = 0; i < per_client; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const Response& response = outcome.responses[idx];
      const Request& original =
          workloads[static_cast<std::size_t>(c)][idx];
      all_ids.push_back(response.id);
      if (response.id != outcome.ticket_ids[idx]) {
        report.paired = false;
        note("client " + std::to_string(c) + " request " +
             std::to_string(i) + ": response id does not match its ticket");
      }
      if (options.verify && response.tenant != original.tenant) {
        report.paired = false;
        note("client " + std::to_string(c) + " request " +
             std::to_string(i) + ": response tenant " +
             std::to_string(response.tenant) + " != " +
             std::to_string(original.tenant));
      }
      const bool rejected_ticket =
          outcome.admissions[idx] == Admission::kRejected;
      if (rejected_ticket !=
          (response.status == ResponseStatus::kRejected)) {
        report.paired = false;
        note("client " + std::to_string(c) + " request " +
             std::to_string(i) + ": admission and response status disagree");
      }
      if (options.verify &&
          response.status == ResponseStatus::kCompleted) {
        const Response direct = execute_request(original);
        std::string why;
        if (!identical_schedules(response.schedule, direct.schedule, &why)) {
          report.verified = false;
          note("client " + std::to_string(c) + " request " +
               std::to_string(i) +
               ": service schedule diverges from direct run: " + why);
        } else if (!(response.recovery == direct.recovery)) {
          report.verified = false;
          note("client " + std::to_string(c) + " request " +
               std::to_string(i) +
               ": service recovery report diverges from direct run");
        }
      }
    }
  }
  std::sort(all_ids.begin(), all_ids.end());
  if (std::adjacent_find(all_ids.begin(), all_ids.end()) != all_ids.end()) {
    report.paired = false;
    note("duplicate response id: a request was double-served");
  }
  if (report.responses != report.accounting.submitted) {
    report.balanced = false;
    note("resolved " + std::to_string(report.responses) +
         " responses for " + std::to_string(report.accounting.submitted) +
         " submissions");
  }

  // Latency quantiles from the merged per-tenant histograms.
  obs::Histogram all_latency;
  for (const int tenant : service.tenants()) {
    const obs::MetricsRegistry metrics = service.tenant_metrics(tenant);
    DriverTenantReport tr;
    tr.tenant = tenant;
    const auto counter = [&](const char* name) {
      const double* v = metrics.find_counter(name);
      return v != nullptr ? static_cast<std::uint64_t>(*v) : 0;
    };
    tr.submitted = counter("serve_requests_submitted");
    tr.completed = counter("serve_requests_completed");
    tr.rejected = counter("serve_requests_rejected");
    tr.deferred = counter("serve_requests_deferred");
    if (const obs::Histogram* h =
            metrics.find_histogram("serve_latency_seconds")) {
      tr.mean_latency_seconds = h->mean();
      tr.p50_latency_seconds = h->quantile(0.50);
      tr.p99_latency_seconds = h->quantile(0.99);
      all_latency.merge(*h);
    }
    report.tenants.push_back(tr);
  }
  report.p50_latency_seconds = all_latency.quantile(0.50);
  report.p99_latency_seconds = all_latency.quantile(0.99);
  report.requests_per_sec =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.accounting.completed) /
                report.wall_seconds
          : 0.0;
  return report;
}

}  // namespace hp::serve
