#include "serve/request.hpp"

#include <sstream>

#include "baselines/dualhp.hpp"
#include "baselines/heft.hpp"
#include "core/heteroprio.hpp"
#include "core/heteroprio_dag.hpp"
#include "fault/replay.hpp"

namespace hp::serve {

namespace {

std::string fmt(double value) {
  std::ostringstream oss;
  oss.precision(17);
  oss << value;
  return oss.str();
}

}  // namespace

const char* backend_name(Backend backend) noexcept {
  switch (backend) {
    case Backend::kHp: return "hp";
    case Backend::kHpNoSpol: return "hp-nospol";
    case Backend::kHeft: return "heft";
    case Backend::kDualHp: return "dualhp";
  }
  return "?";
}

bool backend_from_name(const std::string& name, Backend* out) noexcept {
  if (name == "hp") {
    *out = Backend::kHp;
  } else if (name == "hp-nospol") {
    *out = Backend::kHpNoSpol;
  } else if (name == "heft") {
    *out = Backend::kHeft;
  } else if (name == "dualhp") {
    *out = Backend::kDualHp;
  } else {
    return false;
  }
  return true;
}

Response execute_request(const Request& request) {
  Response response;
  response.tenant = request.tenant;
  const bool faulty = !request.faults.empty();
  const bool dag = request.graph.num_edges() > 0;
  switch (request.backend) {
    case Backend::kHp:
    case Backend::kHpNoSpol: {
      HeteroPrioOptions o;
      o.enable_spoliation = request.backend == Backend::kHp;
      if (faulty) o.faults = &request.faults;
      o.threads = request.engine_threads;
      HeteroPrioStats stats;
      response.schedule =
          dag ? heteroprio_dag(request.graph, request.platform, o, &stats)
              : heteroprio(request.graph.tasks(), request.platform, o,
                           &stats);
      response.recovery = stats.recovery;
      break;
    }
    case Backend::kHeft: {
      // kFifo has no HEFT meaning; fall back to kAvg like the fuzz oracle.
      const HeftOptions o{.rank = request.rank == RankScheme::kFifo
                                      ? RankScheme::kAvg
                                      : request.rank,
                          .insertion = true};
      const Schedule plan =
          dag ? heft(request.graph, request.platform, o)
              : heft_independent(request.graph.tasks(), request.platform, o);
      if (!faulty) {
        response.schedule = plan;
      } else {
        auto replay = fault::execute_plan_with_faults(
            plan, request.graph, request.platform, request.faults, {},
            nullptr);
        response.schedule = std::move(replay.schedule);
        response.recovery = replay.recovery;
      }
      break;
    }
    case Backend::kDualHp: {
      const DualHpOptions o{.fifo_order = request.rank == RankScheme::kFifo,
                            .bisection_iters = 16};
      const Schedule plan =
          dag ? dualhp_dag(request.graph, request.platform, o)
              : dualhp(request.graph.tasks(), request.platform, o);
      if (!faulty) {
        response.schedule = plan;
      } else {
        auto replay = fault::execute_plan_with_faults(
            plan, request.graph, request.platform, request.faults, {},
            nullptr);
        response.schedule = std::move(replay.schedule);
        response.recovery = replay.recovery;
      }
      break;
    }
  }
  response.makespan = response.schedule.makespan();
  response.status = ResponseStatus::kCompleted;
  return response;
}

bool identical_schedules(const Schedule& a, const Schedule& b,
                         std::string* why) {
  const auto differ = [&](const std::string& detail) {
    if (why != nullptr) *why = detail;
    return false;
  };
  if (a.num_tasks() != b.num_tasks()) return differ("task counts differ");
  for (std::size_t i = 0; i < a.num_tasks(); ++i) {
    const Placement& pa = a.placements()[i];
    const Placement& pb = b.placements()[i];
    if (pa.worker != pb.worker || pa.start != pb.start || pa.end != pb.end) {
      return differ("task " + std::to_string(i) + ": (" +
                    std::to_string(pa.worker) + ", " + fmt(pa.start) + ", " +
                    fmt(pa.end) + ") vs (" + std::to_string(pb.worker) +
                    ", " + fmt(pb.start) + ", " + fmt(pb.end) + ")");
    }
  }
  if (a.aborted().size() != b.aborted().size()) {
    return differ("aborted-segment counts differ: " +
                  std::to_string(a.aborted().size()) + " vs " +
                  std::to_string(b.aborted().size()));
  }
  for (std::size_t i = 0; i < a.aborted().size(); ++i) {
    const AbortedSegment& sa = a.aborted()[i];
    const AbortedSegment& sb = b.aborted()[i];
    if (sa.task != sb.task || sa.worker != sb.worker ||
        sa.start != sb.start || sa.abort_time != sb.abort_time) {
      return differ("aborted segment " + std::to_string(i) + " differs");
    }
  }
  return true;
}

}  // namespace hp::serve
