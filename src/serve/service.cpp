#include "serve/service.hpp"

#include <cassert>
#include <chrono>
#include <utility>

namespace hp::serve {

namespace {

using Clock = std::chrono::steady_clock;

constexpr auto kIdleSleep = std::chrono::microseconds(50);
constexpr int kIdleYields = 32;  ///< yields before backing off to a sleep

}  // namespace

/// One submitted request in service custody: the request itself, the
/// promise its ticket resolves, and the enqueue timestamp the latency
/// histogram is fed from. Owned by exactly one stage at a time (intake
/// queue, parked deque, or the worker executing it), which is what makes
/// "no request lost or double-served" a structural property.
struct PendingRequest {
  explicit PendingRequest(Request r) : request(std::move(r)) {}

  Request request;
  std::promise<Response> promise;
  std::uint64_t id = 0;
  Clock::time_point submit_time;
};

const char* admission_name(Admission admission) noexcept {
  switch (admission) {
    case Admission::kAccepted: return "accepted";
    case Admission::kDeferred: return "deferred";
    case Admission::kRejected: return "rejected";
  }
  return "?";
}

Service::Service(const ServiceOptions& options)
    : options_(options),
      // Epoch participants: every client slot, every worker, plus one
      // control slot drain() pushes re-admitted requests through.
      queue_(static_cast<std::size_t>(std::max(1, options.max_clients)) +
                 static_cast<std::size_t>(std::max(1, options.workers)) + 1,
             options.segment_capacity, options.queue_capacity) {
  options_.workers = std::max(1, options_.workers);
  options_.max_clients = std::max(1, options_.max_clients);
  options_.batch_size = std::max(1, options_.batch_size);
  if (options_.watermark_high > 0 && options_.watermark_low == 0) {
    options_.watermark_low = options_.watermark_high / 2;
  }
  worker_metrics_.resize(static_cast<std::size_t>(options_.workers));
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

Service::~Service() { drain(); }

Service::Ticket Service::submit(Request request, int client_slot) {
  assert(client_slot >= 0 && client_slot < options_.max_clients);
  auto* pending = new PendingRequest(std::move(request));
  pending->submit_time = Clock::now();

  Ticket ticket;
  ticket.response = pending->promise.get_future();

  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    pending->id = next_id_++;
    ticket.id = pending->id;
    ++acct_.submitted;
    TenantCounters& tenant = tenant_counts_[pending->request.tenant];
    ++tenant.submitted;
    if (draining_) {
      ticket.admission = Admission::kRejected;
    } else if (options_.watermark_high > 0) {
      if (!shedding_ && backlog_ >= options_.watermark_high) {
        shedding_ = true;
        ++acct_.shed_mode_changes;
      }
      ticket.admission =
          !shedding_ ? Admission::kAccepted
          : options_.shed_policy == online::ShedPolicy::kReject
              ? Admission::kRejected
              : Admission::kDeferred;
    }
    switch (ticket.admission) {
      case Admission::kRejected:
        ++acct_.rejected;
        ++tenant.rejected;
        break;
      case Admission::kDeferred:
        ++acct_.accepted;
        ++acct_.in_flight;
        ++acct_.deferred;
        ++tenant.accepted;
        ++tenant.deferred;
        parked_.push_back(pending);
        break;
      case Admission::kAccepted:
        ++acct_.accepted;
        ++acct_.in_flight;
        ++tenant.accepted;
        ++backlog_;
        break;
    }
  }

  if (ticket.admission == Admission::kRejected) {
    reject_request(pending);
    return ticket;
  }
  if (ticket.admission == Admission::kAccepted) {
    if (!queue_.try_push(static_cast<std::size_t>(client_slot), pending)) {
      // Hard custody cap hit: convert the acceptance into a counted
      // rejection — still answered, still balanced.
      {
        const std::lock_guard<std::mutex> lock(state_mutex_);
        --acct_.accepted;
        --acct_.in_flight;
        ++acct_.rejected;
        TenantCounters& tenant = tenant_counts_[pending->request.tenant];
        --tenant.accepted;
        ++tenant.rejected;
        --backlog_;
      }
      ticket.admission = Admission::kRejected;
      reject_request(pending);
    }
  }
  return ticket;
}

void Service::reject_request(PendingRequest* pending) {
  Response response;
  response.id = pending->id;
  response.tenant = pending->request.tenant;
  response.status = ResponseStatus::kRejected;
  response.latency_seconds =
      std::chrono::duration<double>(Clock::now() - pending->submit_time)
          .count();
  pending->promise.set_value(std::move(response));
  delete pending;
}

void Service::finish_request(PendingRequest* pending, int worker_index) {
  Response response = execute_request(pending->request);
  response.id = pending->id;
  response.served_by = worker_index;
  response.latency_seconds =
      std::chrono::duration<double>(Clock::now() - pending->submit_time)
          .count();

  WorkerMetrics& wm = worker_metrics_[static_cast<std::size_t>(worker_index)];
  obs::MetricsRegistry& tm = wm.tenants[pending->request.tenant];
  tm.counter("serve_requests_completed") += 1.0;
  tm.counter("serve_tasks_scheduled") +=
      static_cast<double>(pending->request.graph.size());
  tm.histogram("serve_latency_seconds").record(response.latency_seconds);

  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    ++acct_.completed;
    --acct_.in_flight;
    ++tenant_counts_[pending->request.tenant].completed;
  }
  pending->promise.set_value(std::move(response));
  delete pending;
}

void Service::update_shedding_locked(std::size_t epoch_slot) {
  if (options_.watermark_high > 0) {
    if (!shedding_ && backlog_ >= options_.watermark_high) {
      shedding_ = true;
      ++acct_.shed_mode_changes;
    }
    if (shedding_ && backlog_ <= options_.watermark_low) {
      shedding_ = false;
      ++acct_.shed_mode_changes;
    }
  }
  // Re-admit parked requests while below the high watermark (drain
  // force-admits regardless — graceful shutdown completes what it holds).
  while (!parked_.empty() &&
         (draining_ || (!shedding_ && (options_.watermark_high == 0 ||
                                       backlog_ < options_.watermark_high)))) {
    PendingRequest* pending = parked_.front();
    if (!queue_.try_push(epoch_slot, pending)) break;  // hard cap; retry later
    parked_.pop_front();
    ++backlog_;
    if (options_.watermark_high > 0 && !draining_ &&
        backlog_ >= options_.watermark_high) {
      shedding_ = true;
      ++acct_.shed_mode_changes;
      break;
    }
  }
}

void Service::worker_main(int worker_index) {
  const std::size_t epoch_slot =
      static_cast<std::size_t>(options_.max_clients + worker_index);
  WorkerMetrics& wm = worker_metrics_[static_cast<std::size_t>(worker_index)];
  double& batches = wm.own.counter("serve_batches");
  obs::Histogram& batch_sizes = wm.own.histogram("serve_batch_size");

  std::vector<PendingRequest*> batch;
  batch.reserve(static_cast<std::size_t>(options_.batch_size));
  int idle = 0;
  for (;;) {
    batch.clear();
    PendingRequest* pending = nullptr;
    while (batch.size() < static_cast<std::size_t>(options_.batch_size) &&
           queue_.try_pop(epoch_slot, &pending)) {
      batch.push_back(pending);
    }
    if (!batch.empty()) {
      idle = 0;
      batches += 1.0;
      batch_sizes.record(static_cast<double>(batch.size()));
      {
        const std::lock_guard<std::mutex> lock(state_mutex_);
        backlog_ -= batch.size();
        update_shedding_locked(epoch_slot);
      }
      for (PendingRequest* p : batch) finish_request(p, worker_index);
      continue;
    }
    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      update_shedding_locked(epoch_slot);
      if (draining_ && backlog_ == 0 && parked_.empty()) return;
    }
    // Empty (or a spurious pop failure while a producer is mid-flight):
    // yield briefly, then back off so idle workers stay cheap.
    if (++idle <= kIdleYields) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(kIdleSleep);
    }
  }
}

void Service::drain() {
  // Serializes concurrent drain() callers (the flush loop and the joins
  // must run exactly once); state_mutex_ stays the inner lock.
  const std::lock_guard<std::mutex> drain_lock(drain_mutex_);
  const std::size_t control_slot =
      static_cast<std::size_t>(options_.max_clients + options_.workers);
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    if (draining_ && workers_.empty()) return;  // already drained
    draining_ = true;
  }
  // Force-admit everything parked; workers (and this push loop) finish the
  // rest. A push can only fail against a hard custody cap — wait for the
  // workers to free capacity.
  for (;;) {
    PendingRequest* pending = nullptr;
    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      if (parked_.empty()) break;
      pending = parked_.front();
      parked_.pop_front();
      ++backlog_;
    }
    while (!queue_.try_push(control_slot, pending)) {
      std::this_thread::sleep_for(kIdleSleep);
    }
  }
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  assert(accounting().balanced());
  assert(accounting().in_flight == 0);
}

bool Service::draining() const {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  return draining_;
}

Service::Accounting Service::accounting() const {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  return acct_;
}

std::vector<int> Service::tenants() const {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  std::vector<int> out;
  out.reserve(tenant_counts_.size());
  for (const auto& [tenant, counts] : tenant_counts_) out.push_back(tenant);
  return out;
}

obs::MetricsRegistry Service::tenant_metrics(int tenant) const {
  obs::MetricsRegistry merged;
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    const auto it = tenant_counts_.find(tenant);
    if (it != tenant_counts_.end()) {
      merged.counter("serve_requests_submitted") =
          static_cast<double>(it->second.submitted);
      merged.counter("serve_requests_accepted") =
          static_cast<double>(it->second.accepted);
      merged.counter("serve_requests_rejected") =
          static_cast<double>(it->second.rejected);
      merged.counter("serve_requests_deferred") =
          static_cast<double>(it->second.deferred);
    }
  }
  // Worker registries are single-writer and lock-free; exact only while
  // the workers are idle (see the header contract).
  for (const WorkerMetrics& wm : worker_metrics_) {
    const auto it = wm.tenants.find(tenant);
    if (it != wm.tenants.end()) merged.merge(it->second);
  }
  return merged;
}

std::size_t Service::queue_segments_allocated() const noexcept {
  return queue_.segments_allocated();
}

std::size_t Service::queue_segments_recycled() const noexcept {
  return queue_.segments_recycled();
}

}  // namespace hp::serve
