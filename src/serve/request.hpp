#pragma once
// Request/response types of the multi-tenant scheduling service, plus the
// deterministic execution contract behind its bitwise differential.
//
// A Request is one self-contained scheduling problem (workload + platform +
// backend + optional fault plan) tagged with the tenant that submitted it.
// execute_request() is a *pure function* of the request, running exactly
// the engine composition the fuzz oracle's direct runs use: HeteroPrio
// (with or without spoliation) natively — faults handled online by the
// engine — and HEFT/DualHP as static plans replayed through
// fault::execute_plan_with_faults when a plan is present. That purity is
// what the 12th oracle property (`serve`) and the driver's --verify mode
// assert: a schedule computed through the service — any worker, any
// batching, any admission pressure — is bitwise-identical to the direct
// engine call.

#include <cstdint>
#include <string>

#include "dag/ranking.hpp"
#include "dag/task_graph.hpp"
#include "fault/fault_plan.hpp"
#include "model/platform.hpp"
#include "sched/schedule.hpp"

namespace hp::serve {

/// Engine a request is dispatched to (same set the fuzz oracle drives).
enum class Backend : std::uint8_t { kHp = 0, kHpNoSpol, kHeft, kDualHp };
inline constexpr int kNumBackends = 4;

[[nodiscard]] const char* backend_name(Backend backend) noexcept;
[[nodiscard]] bool backend_from_name(const std::string& name,
                                     Backend* out) noexcept;

struct Request {
  int tenant = 0;
  Backend backend = Backend::kHp;
  /// Finalized workload; independent instances are edge-free. DAG requests
  /// must arrive with priorities already assigned (dag::assign_priorities
  /// with `rank`) — the service never mutates the workload.
  TaskGraph graph;
  RankScheme rank = RankScheme::kMin;
  Platform platform{1, 1};
  /// Empty = fault-free run.
  fault::FaultPlan faults;
  /// HeteroPrio engine threads (HeteroPrioOptions::threads); 1 = sequential.
  int engine_threads = 1;
};

enum class ResponseStatus : std::uint8_t {
  kCompleted = 0,  ///< scheduled; `schedule`/`recovery`/`makespan` are set
  kRejected,       ///< shed by admission control; counted, never dropped
};

struct Response {
  std::uint64_t id = 0;  ///< service-assigned, unique per submission
  int tenant = 0;
  ResponseStatus status = ResponseStatus::kCompleted;
  Schedule schedule;
  fault::RecoveryReport recovery;
  double makespan = 0.0;
  /// Submit-to-response wall-clock seconds (the latency the histograms and
  /// BENCH_serve.json report). 0 for direct execute_request() calls.
  double latency_seconds = 0.0;
  int served_by = -1;  ///< service worker index; -1 for rejects/direct runs
};

/// Run the request's backend directly — the pure function the service's
/// workers call and the differential tests compare against. Only the
/// schedule-bearing fields (schedule, recovery, makespan, status) are set.
[[nodiscard]] Response execute_request(const Request& request);

/// Bitwise schedule equality: placements (worker/start/end) and aborted
/// segments. Fills `*why` with the first difference when provided.
[[nodiscard]] bool identical_schedules(const Schedule& a, const Schedule& b,
                                       std::string* why = nullptr);

}  // namespace hp::serve
