#pragma once
// Plain-text serialization of instances and task graphs.
//
// Line-oriented format, '#' comments, whitespace-separated fields:
//
//   # hp-instance v1            |  # hp-graph v1
//   name my-instance            |  name my-graph
//   task <p> <q> [prio] [kind]  |  task <p> <q> [prio] [kind]
//   ...                         |  edge <from> <to>
//
// Task ids are implicit (declaration order). Used by the CLI tool and for
// exchanging workloads (e.g. real measured timings) with other tools.

#include <optional>
#include <string>

#include "dag/task_graph.hpp"
#include "model/instance.hpp"

namespace hp::io {

[[nodiscard]] std::string instance_to_text(const Instance& instance);

/// Parse; on failure returns nullopt and, if `error` is non-null, a
/// human-readable message with the offending line number.
[[nodiscard]] std::optional<Instance> instance_from_text(
    const std::string& text, std::string* error = nullptr);

[[nodiscard]] std::string graph_to_text(const TaskGraph& graph);

/// Parse; the returned graph is finalized.
[[nodiscard]] std::optional<TaskGraph> graph_from_text(
    const std::string& text, std::string* error = nullptr);

/// Whole-file helpers.
[[nodiscard]] bool save_text_file(const std::string& path,
                                  const std::string& content);
[[nodiscard]] std::optional<std::string> load_text_file(const std::string& path);

}  // namespace hp::io
