#include "io/serialize.hpp"

#include <fstream>
#include <sstream>

#include "util/table.hpp"

namespace hp::io {

namespace {

void emit_task_line(std::ostringstream& oss, const Task& t) {
  oss << "task " << util::format_double(t.cpu_time, 9) << ' '
      << util::format_double(t.gpu_time, 9);
  if (t.priority != 0.0 || t.kind != KernelKind::kGeneric) {
    oss << ' ' << util::format_double(t.priority, 9);
  }
  if (t.kind != KernelKind::kGeneric) {
    oss << ' ' << kernel_name(t.kind);
  }
  oss << '\n';
}

std::string fail(std::string* error, int line_no, const std::string& message) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line_no) + ": " + message;
  }
  return {};
}

/// Parse a "task p q [prio] [kind]" payload. Returns nullopt on error.
std::optional<Task> parse_task(std::istringstream& fields) {
  Task t;
  if (!(fields >> t.cpu_time >> t.gpu_time)) return std::nullopt;
  if (!(t.cpu_time > 0.0) || !(t.gpu_time > 0.0)) return std::nullopt;
  std::string extra;
  if (fields >> extra) {
    try {
      t.priority = std::stod(extra);
      if (fields >> extra) t.kind = kernel_kind_from_name(extra);
    } catch (...) {
      t.kind = kernel_kind_from_name(extra);
    }
  }
  return t;
}

}  // namespace

std::string instance_to_text(const Instance& instance) {
  std::ostringstream oss;
  oss << "# hp-instance v1\n";
  if (!instance.name().empty()) oss << "name " << instance.name() << '\n';
  for (const Task& t : instance.tasks()) emit_task_line(oss, t);
  return oss.str();
}

std::optional<Instance> instance_from_text(const std::string& text,
                                           std::string* error) {
  Instance instance;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::string keyword;
    if (!(fields >> keyword) || keyword[0] == '#') continue;
    if (keyword == "name") {
      std::string name;
      fields >> name;
      instance.set_name(name);
    } else if (keyword == "task") {
      const auto task = parse_task(fields);
      if (!task.has_value()) {
        fail(error, line_no, "bad task line: " + line);
        return std::nullopt;
      }
      instance.add(*task);
    } else if (keyword == "edge") {
      fail(error, line_no, "edges are not allowed in an instance file");
      return std::nullopt;
    } else {
      fail(error, line_no, "unknown keyword '" + keyword + "'");
      return std::nullopt;
    }
  }
  return instance;
}

std::string graph_to_text(const TaskGraph& graph) {
  std::ostringstream oss;
  oss << "# hp-graph v1\n";
  if (!graph.name().empty()) oss << "name " << graph.name() << '\n';
  for (const Task& t : graph.tasks()) emit_task_line(oss, t);
  for (std::size_t i = 0; i < graph.size(); ++i) {
    for (TaskId succ : graph.successors(static_cast<TaskId>(i))) {
      oss << "edge " << i << ' ' << succ << '\n';
    }
  }
  return oss.str();
}

std::optional<TaskGraph> graph_from_text(const std::string& text,
                                         std::string* error) {
  TaskGraph graph;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::string keyword;
    if (!(fields >> keyword) || keyword[0] == '#') continue;
    if (keyword == "name") {
      std::string name;
      fields >> name;
      graph.set_name(name);
    } else if (keyword == "task") {
      const auto task = parse_task(fields);
      if (!task.has_value()) {
        fail(error, line_no, "bad task line: " + line);
        return std::nullopt;
      }
      graph.add_task(*task);
    } else if (keyword == "edge") {
      long long from = -1, to = -1;
      if (!(fields >> from >> to) || from < 0 || to < 0 ||
          from >= static_cast<long long>(graph.size()) ||
          to >= static_cast<long long>(graph.size()) || from == to) {
        fail(error, line_no, "bad edge line: " + line);
        return std::nullopt;
      }
      graph.add_edge(static_cast<TaskId>(from), static_cast<TaskId>(to));
    } else {
      fail(error, line_no, "unknown keyword '" + keyword + "'");
      return std::nullopt;
    }
  }
  graph.finalize();
  if (!graph.is_dag() && !graph.empty()) {
    fail(error, line_no, "graph has a cycle");
    return std::nullopt;
  }
  return graph;
}

bool save_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

std::optional<std::string> load_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

}  // namespace hp::io
