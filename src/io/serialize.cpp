#include "io/serialize.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/table.hpp"

namespace hp::io {

namespace {

/// Shortest-that-round-trips rendering: 9 significant digits when they
/// reparse to the same double, full precision otherwise. Corpus witnesses
/// (worst-case families built on phi) need their exact bits back — a 9-digit
/// approximation flips the adversarial tie-breaking they encode.
std::string format_roundtrip(double value) {
  std::string s = util::format_double(value, 9);
  if (std::strtod(s.c_str(), nullptr) == value) return s;
  std::ostringstream oss;
  oss.precision(17);
  oss << value;
  return oss.str();
}

void emit_task_line(std::ostringstream& oss, const Task& t) {
  oss << "task " << format_roundtrip(t.cpu_time) << ' '
      << format_roundtrip(t.gpu_time);
  if (t.priority != 0.0 || t.kind != KernelKind::kGeneric) {
    oss << ' ' << format_roundtrip(t.priority);
  }
  if (t.kind != KernelKind::kGeneric) {
    oss << ' ' << kernel_name(t.kind);
  }
  oss << '\n';
}

void fail(std::string* error, int line_no, const std::string& message) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line_no) + ": " + message;
  }
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream fields(line);
  std::string token;
  while (fields >> token) tokens.push_back(std::move(token));
  return tokens;
}

/// Strict double parse: the whole token must be consumed and the value
/// finite. Rejects "1.5x", "nan", "inf", "".
bool parse_finite(const std::string& token, double* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) return false;
  if (!std::isfinite(value)) return false;
  *out = value;
  return true;
}

/// Strict non-negative integer parse (task ids on edge lines).
bool parse_index(const std::string& token, long long* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  const long long value = std::strtoll(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size()) return false;
  if (value < 0) return false;
  *out = value;
  return true;
}

/// Strict inverse of kernel_name: unlike kernel_kind_from_name, an unknown
/// name is an error here, not a silent kGeneric.
bool parse_kernel(const std::string& token, KernelKind* out) {
  for (std::size_t k = 0; k < kNumKernelKinds; ++k) {
    const auto kind = static_cast<KernelKind>(k);
    if (token == kernel_name(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

/// Parse "task <p> <q> [prio] [kind]" from its tokens (tokens[0] == "task").
/// Every diagnostic names the offending field.
bool parse_task(const std::vector<std::string>& tokens, Task* out,
                std::string* why) {
  if (tokens.size() < 3) {
    *why = "task line needs at least 2 fields (cpu_time gpu_time), got " +
           std::to_string(tokens.size() - 1);
    return false;
  }
  if (tokens.size() > 5) {
    *why = "task line has trailing fields after '" + tokens[4] + "'";
    return false;
  }
  Task t;
  if (!parse_finite(tokens[1], &t.cpu_time)) {
    *why = "cpu_time '" + tokens[1] + "' is not a finite number";
    return false;
  }
  if (!parse_finite(tokens[2], &t.gpu_time)) {
    *why = "gpu_time '" + tokens[2] + "' is not a finite number";
    return false;
  }
  if (!(t.cpu_time > 0.0) || !(t.gpu_time > 0.0)) {
    *why = "task times must be positive (got cpu_time=" + tokens[1] +
           ", gpu_time=" + tokens[2] + ")";
    return false;
  }
  std::size_t next = 3;
  // Optional third field: a number is the priority, a name is the kind.
  if (tokens.size() > next && parse_finite(tokens[next], &t.priority)) {
    ++next;
  }
  if (tokens.size() > next) {
    if (!parse_kernel(tokens[next], &t.kind)) {
      *why = "unknown kernel kind '" + tokens[next] + "'";
      return false;
    }
    ++next;
  }
  if (tokens.size() > next) {
    *why = "task line has trailing fields after '" + tokens[next - 1] + "'";
    return false;
  }
  *out = t;
  return true;
}

/// "name <rest of line>": the name is everything after the keyword, trimmed,
/// so generated names with inner spaces round-trip.
bool parse_name(const std::string& line, std::string* out, std::string* why) {
  std::size_t pos = line.find("name");
  pos += 4;
  while (pos < line.size() && std::isspace(static_cast<unsigned char>(
                                  line[pos]))) {
    ++pos;
  }
  std::size_t end = line.size();
  while (end > pos && std::isspace(static_cast<unsigned char>(line[end - 1]))) {
    --end;
  }
  if (end <= pos) {
    *why = "name line has no name";
    return false;
  }
  *out = line.substr(pos, end - pos);
  return true;
}

bool parse_edge(const std::vector<std::string>& tokens, std::size_t num_tasks,
                TaskId* from, TaskId* to, std::string* why) {
  if (tokens.size() != 3) {
    *why = "edge line needs exactly 2 fields (from to), got " +
           std::to_string(tokens.size() - 1);
    return false;
  }
  long long f = 0;
  long long t = 0;
  if (!parse_index(tokens[1], &f)) {
    *why = "edge source '" + tokens[1] + "' is not a task id";
    return false;
  }
  if (!parse_index(tokens[2], &t)) {
    *why = "edge target '" + tokens[2] + "' is not a task id";
    return false;
  }
  const auto limit = static_cast<long long>(num_tasks);
  if (f >= limit || t >= limit) {
    *why = "edge " + tokens[1] + " -> " + tokens[2] +
           " references a task beyond the " + std::to_string(num_tasks) +
           " declared so far (tasks must precede the edges that use them)";
    return false;
  }
  if (f == t) {
    *why = "edge " + tokens[1] + " -> " + tokens[2] + " is a self-loop";
    return false;
  }
  *from = static_cast<TaskId>(f);
  *to = static_cast<TaskId>(t);
  return true;
}

}  // namespace

std::string instance_to_text(const Instance& instance) {
  std::ostringstream oss;
  oss << "# hp-instance v1\n";
  if (!instance.name().empty()) oss << "name " << instance.name() << '\n';
  for (const Task& t : instance.tasks()) emit_task_line(oss, t);
  return oss.str();
}

std::optional<Instance> instance_from_text(const std::string& text,
                                           std::string* error) {
  Instance instance;
  std::istringstream in(text);
  std::string line;
  std::string why;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    const std::string& keyword = tokens[0];
    if (keyword == "name") {
      std::string name;
      if (!parse_name(line, &name, &why)) {
        fail(error, line_no, why);
        return std::nullopt;
      }
      instance.set_name(name);
    } else if (keyword == "task") {
      Task task;
      if (!parse_task(tokens, &task, &why)) {
        fail(error, line_no, why);
        return std::nullopt;
      }
      instance.add(task);
    } else if (keyword == "edge") {
      fail(error, line_no,
           "edges are not allowed in an instance file (use a graph file)");
      return std::nullopt;
    } else {
      fail(error, line_no, "unknown keyword '" + keyword + "'");
      return std::nullopt;
    }
  }
  return instance;
}

std::string graph_to_text(const TaskGraph& graph) {
  std::ostringstream oss;
  oss << "# hp-graph v1\n";
  if (!graph.name().empty()) oss << "name " << graph.name() << '\n';
  for (const Task& t : graph.tasks()) emit_task_line(oss, t);
  for (std::size_t i = 0; i < graph.size(); ++i) {
    for (TaskId succ : graph.successors(static_cast<TaskId>(i))) {
      oss << "edge " << i << ' ' << succ << '\n';
    }
  }
  return oss.str();
}

std::optional<TaskGraph> graph_from_text(const std::string& text,
                                         std::string* error) {
  TaskGraph graph;
  std::istringstream in(text);
  std::string line;
  std::string why;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    const std::string& keyword = tokens[0];
    if (keyword == "name") {
      std::string name;
      if (!parse_name(line, &name, &why)) {
        fail(error, line_no, why);
        return std::nullopt;
      }
      graph.set_name(name);
    } else if (keyword == "task") {
      Task task;
      if (!parse_task(tokens, &task, &why)) {
        fail(error, line_no, why);
        return std::nullopt;
      }
      graph.add_task(task);
    } else if (keyword == "edge") {
      TaskId from = kInvalidTask;
      TaskId to = kInvalidTask;
      if (!parse_edge(tokens, graph.size(), &from, &to, &why)) {
        fail(error, line_no, why);
        return std::nullopt;
      }
      graph.add_edge(from, to);
    } else {
      fail(error, line_no, "unknown keyword '" + keyword + "'");
      return std::nullopt;
    }
  }
  graph.finalize();
  if (!graph.is_dag() && !graph.empty()) {
    fail(error, line_no, "graph has a cycle");
    return std::nullopt;
  }
  return graph;
}

bool save_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

std::optional<std::string> load_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

}  // namespace hp::io
