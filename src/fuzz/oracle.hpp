#pragma once
// Property oracle — the checking side of the fuzzing subsystem.
//
// Given a FuzzCase and a scheduler, check_case() runs the scheduler and
// evaluates every applicable property from the catalogue below. A property
// silently skips when its preconditions do not hold (e.g. the proven-ratio
// theorems only cover fault-free independent-task HeteroPrio runs); a
// failure carries the property name and a human-readable detail line, and
// is what the shrinker minimizes against.
//
// Catalogue (docs/testing.md has the full rationale):
//   validity      check_schedule passes (relaxed options under faults)
//   lower-bound   complete runs: makespan >= area/DAG lower bound
//   ratio         HeteroPrio, independent, fault-free: makespan within the
//                 proven ratio of the lower bound (Thms 7/9/12, Graham)
//   exact         small fault-free independent instances: differential
//                 against bounds/exact_opt (no scheduler beats OPT; HeteroPrio
//                 stays within the proven ratio of OPT; OPT >= area bound)
//   ref-diff      fault-free runs: bitwise agreement with the preserved
//                 reference engines (core/heteroprio_ref, baselines/heft_ref)
//   scale         metamorphic: doubling every duration doubles the makespan
//                 bitwise (scheduling decisions are scale-free)
//   permute       metamorphic: reversing task order under tie-free
//                 acceleration keys leaves the makespan unchanged
//   spare-crash   metamorphic: an extra worker that crashes at t=0 is a
//                 no-op for the online engine
//   fault-account degraded runs: relaxed validity plus retry-budget
//                 bookkeeping (a task is abandoned iff its attempts are
//                 exhausted; unfinished == unplaced; degraded iff unfinished)
//   online        HeteroPrio only: the online runtime replayed all-at-t=0
//                 is bitwise-identical to the batch run (same fault plan
//                 included); cases carrying a staggered arrival stream
//                 additionally run it online and check validity, that no
//                 task starts before its arrival, and the zero-silent-drop
//                 accounting identity
//   serve         cases carrying serve_workers >= 2: the same case routed
//                 through the multi-tenant service (1 tenant / 1 worker,
//                 then several submissions over serve_workers workers)
//                 returns schedules bitwise-identical to the direct engine
//                 call, and under seed-randomized defer/reject admission
//                 watermarks the zero-silent-drop accounting identity holds
//                 (every submission answered, completed + rejected ==
//                 submitted, deferred requests never lost)
//   par           HeteroPrio only, cases carrying par_threads >= 2: the
//                 parallel engine under the canonical tie-break is
//                 bitwise-identical to the sequential run (placements,
//                 aborted segments, recovery — delegating cases included);
//                 free-running mode on fault-free independent cases must
//                 stay valid and complete, keep the aborted-segment
//                 bookkeeping consistent, and hold the proven makespan
//                 ratios (spoliating runs)

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/generator.hpp"

namespace hp::fuzz {

enum class SchedulerId : std::uint8_t { kHp, kHpNoSpol, kHeft, kDualHp };
inline constexpr int kNumSchedulers = 4;

[[nodiscard]] const char* scheduler_name(SchedulerId id) noexcept;
[[nodiscard]] bool scheduler_from_name(const std::string& name,
                                       SchedulerId* out) noexcept;

/// Property bitmask.
enum PropertyBits : unsigned {
  kPropValidity = 1u << 0,
  kPropLowerBound = 1u << 1,
  kPropRatio = 1u << 2,
  kPropExact = 1u << 3,
  kPropRefDiff = 1u << 4,
  kPropScale = 1u << 5,
  kPropPermute = 1u << 6,
  kPropSpareCrash = 1u << 7,
  kPropFaultAccount = 1u << 8,
  kPropOnline = 1u << 9,
  kPropPar = 1u << 10,
  kPropServe = 1u << 11,
  kPropAll = (1u << 12) - 1,
};

/// Name of a single property bit ("validity", "ratio", ...).
[[nodiscard]] const char* property_name(unsigned bit) noexcept;

/// Parse a comma-separated property list ("validity,ratio" or "all").
/// Returns false (and a message) on an unknown name.
[[nodiscard]] bool parse_props(const std::string& text, unsigned* out,
                               std::string* error);

/// Comma-separated names of the set bits, in catalogue order.
[[nodiscard]] std::string props_to_string(unsigned props);

struct PropertyFailure {
  std::string property;   ///< catalogue name
  std::string scheduler;  ///< scheduler_name()
  std::string detail;     ///< one-line diagnosis
};

struct OracleVerdict {
  int properties_checked = 0;  ///< applicable properties actually evaluated
  double makespan = 0.0;       ///< the checked run's makespan (checksum feed)
  std::vector<PropertyFailure> failures;

  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
};

struct OracleOptions {
  unsigned props = kPropAll;
  /// `exact` applicability gate: branch-and-bound is exponential, so the
  /// differential against OPT only runs on instances at most this large.
  int exact_max_tasks = 9;
  int exact_max_workers = 4;
  double tol = 1e-9;
};

/// True when `sched` can run `c` at all (DualHP and HEFT replay static plans
/// under faults; every scheduler handles every fault-free case).
[[nodiscard]] bool scheduler_applicable(const FuzzCase& c, SchedulerId sched);

/// Run `sched` on `c` and evaluate the selected properties.
[[nodiscard]] OracleVerdict check_case(const FuzzCase& c, SchedulerId sched,
                                       const OracleOptions& options = {});

}  // namespace hp::fuzz
