#include "fuzz/corpus.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "bounds/area_bound.hpp"
#include "bounds/dag_lower_bound.hpp"
#include "core/heteroprio.hpp"
#include "core/heteroprio_dag.hpp"
#include "io/serialize.hpp"

namespace hp::fuzz {

namespace {

constexpr const char* kFuzzPrefix = "# fuzz:";
constexpr const char* kHpfPrefix = "# hpf:";
constexpr const char* kHpoPrefix = "# hpo:";
constexpr const char* kParPrefix = "# par:";
constexpr const char* kServePrefix = "# serve:";

bool starts_with(const std::string& line, const char* prefix) {
  return line.rfind(prefix, 0) == 0;
}

bool parse_rank(const std::string& value, RankScheme* out) {
  if (value == "min") {
    *out = RankScheme::kMin;
  } else if (value == "avg") {
    *out = RankScheme::kAvg;
  } else if (value == "fifo") {
    *out = RankScheme::kFifo;
  } else {
    return false;
  }
  return true;
}

const char* rank_name(RankScheme rank) {
  switch (rank) {
    case RankScheme::kAvg: return "avg";
    case RankScheme::kMin: return "min";
    case RankScheme::kFifo: return "fifo";
  }
  return "?";
}

/// Apply one "key=value" directive token.
bool apply_directive(const std::string& token, CorpusCase* out, int* cpus,
                     int* gpus, std::string* why) {
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos) {
    *why = "directive '" + token + "' is not key=value";
    return false;
  }
  const std::string key = token.substr(0, eq);
  const std::string value = token.substr(eq + 1);
  const auto parse_int = [&](int* target) {
    char* end = nullptr;
    const long v = std::strtol(value.c_str(), &end, 10);
    if (end != value.c_str() + value.size() || v < 0) {
      *why = key + " '" + value + "' is not a non-negative integer";
      return false;
    }
    *target = static_cast<int>(v);
    return true;
  };
  if (key == "cpus") return parse_int(cpus);
  if (key == "gpus") return parse_int(gpus);
  if (key == "seed") {
    char* end = nullptr;
    out->c.seed = std::strtoull(value.c_str(), &end, 10);
    if (end != value.c_str() + value.size()) {
      *why = "seed '" + value + "' is not an integer";
      return false;
    }
    return true;
  }
  if (key == "rank") {
    if (!parse_rank(value, &out->c.rank)) {
      *why = "unknown rank scheme '" + value + "'";
      return false;
    }
    return true;
  }
  if (key == "schedulers") {
    if (value == "all") {
      out->schedulers.clear();
      return true;
    }
    std::istringstream iss(value);
    std::string name;
    while (std::getline(iss, name, ',')) {
      SchedulerId id{};
      if (!scheduler_from_name(name, &id)) {
        *why = "unknown scheduler '" + name + "'";
        return false;
      }
      out->schedulers.push_back(id);
    }
    return true;
  }
  if (key == "props") {
    std::string err;
    if (!parse_props(value, &out->props, &err)) {
      *why = err;
      return false;
    }
    return true;
  }
  if (key == "min-ratio") {
    char* end = nullptr;
    out->min_ratio = std::strtod(value.c_str(), &end);
    if (end != value.c_str() + value.size() || out->min_ratio < 0.0) {
      *why = "min-ratio '" + value + "' is not a non-negative number";
      return false;
    }
    return true;
  }
  *why = "unknown directive key '" + key + "'";
  return false;
}

/// Apply one "key=value" token of a `# par:` directive.
bool apply_par_directive(const std::string& token, CorpusCase* out,
                         std::string* why) {
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos) {
    *why = "par directive '" + token + "' is not key=value";
    return false;
  }
  const std::string key = token.substr(0, eq);
  const std::string value = token.substr(eq + 1);
  if (key == "threads") {
    char* end = nullptr;
    const long v = std::strtol(value.c_str(), &end, 10);
    if (end != value.c_str() + value.size() || v < 2) {
      *why = "par threads '" + value + "' is not an integer >= 2";
      return false;
    }
    out->c.par_threads = static_cast<int>(v);
    return true;
  }
  *why = "unknown par directive key '" + key + "'";
  return false;
}

/// Apply one "key=value" token of a `# serve:` directive.
bool apply_serve_directive(const std::string& token, CorpusCase* out,
                           std::string* why) {
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos) {
    *why = "serve directive '" + token + "' is not key=value";
    return false;
  }
  const std::string key = token.substr(0, eq);
  const std::string value = token.substr(eq + 1);
  if (key == "workers") {
    char* end = nullptr;
    const long v = std::strtol(value.c_str(), &end, 10);
    if (end != value.c_str() + value.size() || v < 2) {
      *why = "serve workers '" + value + "' is not an integer >= 2";
      return false;
    }
    out->c.serve_workers = static_cast<int>(v);
    return true;
  }
  *why = "unknown serve directive key '" + key + "'";
  return false;
}

}  // namespace

std::string corpus_to_text(const CorpusCase& entry) {
  std::ostringstream oss;
  oss << kFuzzPrefix << " cpus=" << entry.c.platform.cpus()
      << " gpus=" << entry.c.platform.gpus() << " rank="
      << rank_name(entry.c.rank) << " seed=" << entry.c.seed;
  oss << " schedulers=";
  if (entry.schedulers.empty()) {
    oss << "all";
  } else {
    for (std::size_t i = 0; i < entry.schedulers.size(); ++i) {
      if (i > 0) oss << ',';
      oss << scheduler_name(entry.schedulers[i]);
    }
  }
  oss << " props=" << props_to_string(entry.props);
  if (entry.c.par_threads >= 2) {
    oss << '\n' << kParPrefix << " threads=" << entry.c.par_threads;
  }
  if (entry.c.serve_workers >= 2) {
    oss << '\n' << kServePrefix << " workers=" << entry.c.serve_workers;
  }
  if (entry.min_ratio > 0.0) {
    oss.precision(12);
    oss << '\n' << kFuzzPrefix << " min-ratio=" << entry.min_ratio;
  }
  oss << '\n';
  if (entry.c.has_faults()) {
    std::istringstream plan(entry.c.faults.to_text());
    std::string line;
    while (std::getline(plan, line)) {
      oss << kHpfPrefix << ' ' << line << '\n';
    }
  }
  if (entry.c.has_arrivals()) {
    std::istringstream plan(entry.c.arrivals.to_text());
    std::string line;
    while (std::getline(plan, line)) {
      oss << kHpoPrefix << ' ' << line << '\n';
    }
  }
  oss << (entry.c.is_dag() ? io::graph_to_text(entry.c.graph)
                           : io::instance_to_text(entry.c.graph.to_instance()));
  return oss.str();
}

bool corpus_from_text(const std::string& text, CorpusCase* out,
                      std::string* error) {
  *out = CorpusCase{};
  int cpus = 1;
  int gpus = 1;
  std::string plan_text;
  std::string arrivals_text;
  std::string why;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (starts_with(line, kFuzzPrefix)) {
      std::istringstream fields(line.substr(std::string(kFuzzPrefix).size()));
      std::string token;
      while (fields >> token) {
        if (!apply_directive(token, out, &cpus, &gpus, &why)) {
          if (error != nullptr) {
            *error = "line " + std::to_string(line_no) + ": " + why;
          }
          return false;
        }
      }
    } else if (starts_with(line, kParPrefix)) {
      std::istringstream fields(line.substr(std::string(kParPrefix).size()));
      std::string token;
      while (fields >> token) {
        if (!apply_par_directive(token, out, &why)) {
          if (error != nullptr) {
            *error = "line " + std::to_string(line_no) + ": " + why;
          }
          return false;
        }
      }
    } else if (starts_with(line, kServePrefix)) {
      std::istringstream fields(line.substr(std::string(kServePrefix).size()));
      std::string token;
      while (fields >> token) {
        if (!apply_serve_directive(token, out, &why)) {
          if (error != nullptr) {
            *error = "line " + std::to_string(line_no) + ": " + why;
          }
          return false;
        }
      }
    } else if (starts_with(line, kHpfPrefix)) {
      std::string payload = line.substr(std::string(kHpfPrefix).size());
      if (!payload.empty() && payload.front() == ' ') payload.erase(0, 1);
      plan_text += payload;
      plan_text += '\n';
    } else if (starts_with(line, kHpoPrefix)) {
      std::string payload = line.substr(std::string(kHpoPrefix).size());
      if (!payload.empty() && payload.front() == ' ') payload.erase(0, 1);
      arrivals_text += payload;
      arrivals_text += '\n';
    }
  }
  // The workload lines: the plain parser skips every '#' line, directives
  // included, so the whole file is a valid graph file.
  auto graph = io::graph_from_text(text, error);
  if (!graph.has_value()) return false;
  if (graph->size() == 0) {
    if (error != nullptr) *error = "corpus file declares no tasks";
    return false;
  }
  out->c.graph = std::move(*graph);
  out->c.name = out->c.graph.name();
  if (cpus + gpus <= 0) {
    if (error != nullptr) *error = "platform has no workers (cpus+gpus=0)";
    return false;
  }
  out->c.platform = Platform(cpus, gpus);
  if (!plan_text.empty() &&
      !fault::FaultPlan::from_text(plan_text, &out->c.faults, error)) {
    return false;
  }
  if (!arrivals_text.empty() &&
      !online::ArrivalPlan::from_text(arrivals_text, &out->c.arrivals, error)) {
    return false;
  }
  return true;
}

bool save_corpus_file(const std::string& path, const CorpusCase& entry) {
  return io::save_text_file(path, corpus_to_text(entry));
}

bool load_corpus_file(const std::string& path, CorpusCase* out,
                      std::string* error) {
  const auto text = io::load_text_file(path);
  if (!text.has_value()) {
    if (error != nullptr) *error = "cannot read '" + path + "'";
    return false;
  }
  if (!corpus_from_text(*text, out, error)) {
    if (error != nullptr) *error = path + ": " + *error;
    return false;
  }
  return true;
}

std::vector<std::string> list_corpus_files(const std::string& dir) {
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".hpi" || ext == ".hpg") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

CorpusVerdict replay_corpus_case(const CorpusCase& entry,
                                 OracleOptions oracle) {
  CorpusVerdict verdict;
  oracle.props = entry.props;
  std::vector<SchedulerId> scheds = entry.schedulers;
  if (scheds.empty()) {
    for (int i = 0; i < kNumSchedulers; ++i) {
      scheds.push_back(static_cast<SchedulerId>(i));
    }
  }
  for (const SchedulerId sched : scheds) {
    ++verdict.schedulers_replayed;
    OracleVerdict one = check_case(entry.c, sched, oracle);
    verdict.properties_checked += one.properties_checked;
    for (PropertyFailure& f : one.failures) {
      verdict.failures.push_back(std::move(f));
    }
  }
  if (entry.min_ratio > 0.0) {
    const Schedule s =
        entry.c.is_dag()
            ? heteroprio_dag(entry.c.graph, entry.c.platform, {})
            : heteroprio(entry.c.graph.tasks(), entry.c.platform, {});
    const double lb =
        entry.c.is_dag()
            ? dag_lower_bound(entry.c.graph, entry.c.platform).value()
            : opt_lower_bound(entry.c.graph.tasks(), entry.c.platform);
    const double ratio = lb > 0.0 ? s.makespan() / lb : 0.0;
    if (ratio < entry.min_ratio * (1.0 - 1e-6)) {
      std::ostringstream oss;
      oss.precision(12);
      oss << "worst-case witness lost its tightness: makespan/lb = " << ratio
          << " < min-ratio " << entry.min_ratio;
      verdict.failures.push_back(
          PropertyFailure{"min-ratio", scheduler_name(SchedulerId::kHp),
                          oss.str()});
    }
  }
  return verdict;
}

}  // namespace hp::fuzz
