#include "fuzz/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "baselines/dualhp.hpp"
#include "baselines/heft.hpp"
#include "baselines/heft_ref.hpp"
#include "bounds/area_bound.hpp"
#include "bounds/dag_lower_bound.hpp"
#include "bounds/exact_opt.hpp"
#include "core/heteroprio.hpp"
#include "core/heteroprio_dag.hpp"
#include "core/heteroprio_ref.hpp"
#include "fault/replay.hpp"
#include "obs/recorder.hpp"
#include "obs/watchdog.hpp"
#include "online/runtime.hpp"
#include "sched/validate.hpp"
#include "serve/service.hpp"
#include "util/rng.hpp"

namespace hp::fuzz {

namespace {

struct PropEntry {
  unsigned bit;
  const char* name;
};

constexpr PropEntry kProps[] = {
    {kPropValidity, "validity"},     {kPropLowerBound, "lower-bound"},
    {kPropRatio, "ratio"},           {kPropExact, "exact"},
    {kPropRefDiff, "ref-diff"},      {kPropScale, "scale"},
    {kPropPermute, "permute"},       {kPropSpareCrash, "spare-crash"},
    {kPropFaultAccount, "fault-account"}, {kPropOnline, "online"},
    {kPropPar, "par"},                    {kPropServe, "serve"},
};

/// One scheduler run of a case: schedule, recovery outcome, event stream.
struct RunOutput {
  Schedule schedule;
  fault::RecoveryReport recovery;
  obs::EventRecorder events;
};

HeteroPrioOptions hp_options(const FuzzCase& c, SchedulerId sched,
                             obs::EventSink* sink) {
  HeteroPrioOptions o;
  o.enable_spoliation = sched == SchedulerId::kHp;
  o.sink = sink;
  if (c.has_faults()) o.faults = &c.faults;
  return o;
}

RankScheme heft_rank(const FuzzCase& c) {
  return c.rank == RankScheme::kFifo ? RankScheme::kAvg : c.rank;
}

serve::Backend serve_backend(SchedulerId sched) {
  switch (sched) {
    case SchedulerId::kHp: return serve::Backend::kHp;
    case SchedulerId::kHpNoSpol: return serve::Backend::kHpNoSpol;
    case SchedulerId::kHeft: return serve::Backend::kHeft;
    case SchedulerId::kDualHp: return serve::Backend::kDualHp;
  }
  return serve::Backend::kHp;
}

serve::Request serve_request(const FuzzCase& c, SchedulerId sched,
                             int tenant) {
  serve::Request request;
  request.tenant = tenant;
  request.backend = serve_backend(sched);
  request.graph = c.graph;
  request.rank = c.rank;
  request.platform = c.platform;
  request.faults = c.faults;
  return request;
}

void run_scheduler(const FuzzCase& c, SchedulerId sched, RunOutput* out) {
  const bool faulty = c.has_faults();
  obs::EventSink* sink = &out->events;
  switch (sched) {
    case SchedulerId::kHp:
    case SchedulerId::kHpNoSpol: {
      const HeteroPrioOptions o = hp_options(c, sched, sink);
      HeteroPrioStats stats;
      out->schedule = c.is_dag()
                          ? heteroprio_dag(c.graph, c.platform, o, &stats)
                          : heteroprio(c.graph.tasks(), c.platform, o, &stats);
      out->recovery = stats.recovery;
      break;
    }
    case SchedulerId::kHeft: {
      const HeftOptions o{.rank = heft_rank(c), .insertion = true,
                          .sink = faulty ? nullptr : sink};
      const Schedule plan =
          c.is_dag() ? heft(c.graph, c.platform, o)
                     : heft_independent(c.graph.tasks(), c.platform, o);
      if (!faulty) {
        out->schedule = plan;
      } else {
        auto replay = fault::execute_plan_with_faults(plan, c.graph,
                                                      c.platform, c.faults,
                                                      {}, sink);
        out->schedule = std::move(replay.schedule);
        out->recovery = replay.recovery;
      }
      break;
    }
    case SchedulerId::kDualHp: {
      const DualHpOptions o{.fifo_order = c.rank == RankScheme::kFifo,
                            .bisection_iters = 16,
                            .sink = faulty ? nullptr : sink};
      const Schedule plan = c.is_dag()
                                ? dualhp_dag(c.graph, c.platform, o)
                                : dualhp(c.graph.tasks(), c.platform, o);
      if (!faulty) {
        out->schedule = plan;
      } else {
        auto replay = fault::execute_plan_with_faults(plan, c.graph,
                                                      c.platform, c.faults,
                                                      {}, sink);
        out->schedule = std::move(replay.schedule);
        out->recovery = replay.recovery;
      }
      break;
    }
  }
}

std::string fmt(double value) {
  std::ostringstream oss;
  oss.precision(17);
  oss << value;
  return oss.str();
}

/// Bitwise schedule comparison; fills `why` with the first difference.
bool same_schedule(const Schedule& a, const Schedule& b, std::string* why) {
  if (a.num_tasks() != b.num_tasks()) {
    *why = "task counts differ";
    return false;
  }
  for (std::size_t i = 0; i < a.num_tasks(); ++i) {
    const Placement& pa = a.placements()[i];
    const Placement& pb = b.placements()[i];
    if (pa.worker != pb.worker || pa.start != pb.start || pa.end != pb.end) {
      *why = "task " + std::to_string(i) + ": (" +
             std::to_string(pa.worker) + ", " + fmt(pa.start) + ", " +
             fmt(pa.end) + ") vs (" + std::to_string(pb.worker) + ", " +
             fmt(pb.start) + ", " + fmt(pb.end) + ")";
      return false;
    }
  }
  if (a.aborted().size() != b.aborted().size()) {
    *why = "aborted-segment counts differ: " +
           std::to_string(a.aborted().size()) + " vs " +
           std::to_string(b.aborted().size());
    return false;
  }
  for (std::size_t i = 0; i < a.aborted().size(); ++i) {
    const AbortedSegment& sa = a.aborted()[i];
    const AbortedSegment& sb = b.aborted()[i];
    if (sa.task != sb.task || sa.worker != sb.worker ||
        sa.start != sb.start || sa.abort_time != sb.abort_time) {
      *why = "aborted segment " + std::to_string(i) + " differs";
      return false;
    }
  }
  return true;
}

/// Copy of `c` with every duration (and priority — bottom levels scale with
/// durations) multiplied by `factor`. Powers of two keep the arithmetic
/// exact, which is what makes the scale property a bitwise assertion.
FuzzCase scaled_case(const FuzzCase& c, double factor) {
  FuzzCase s;
  s.name = c.name + "-scaled";
  s.seed = c.seed;
  s.platform = c.platform;
  s.rank = c.rank;
  TaskGraph graph(s.name);
  for (const Task& t : c.graph.tasks()) {
    Task task = t;
    task.cpu_time *= factor;
    task.gpu_time *= factor;
    task.priority *= factor;
    graph.add_task(task);
  }
  for (std::size_t i = 0; i < c.graph.size(); ++i) {
    for (TaskId succ : c.graph.successors(static_cast<TaskId>(i))) {
      graph.add_edge(static_cast<TaskId>(i), succ);
    }
  }
  graph.finalize();
  s.graph = std::move(graph);
  return s;
}

/// Copy of `c` (independent only) with the task order reversed.
FuzzCase reversed_case(const FuzzCase& c) {
  FuzzCase r;
  r.name = c.name + "-reversed";
  r.seed = c.seed;
  r.platform = c.platform;
  r.rank = c.rank;
  TaskGraph graph(r.name);
  const auto tasks = c.graph.tasks();
  for (std::size_t i = tasks.size(); i-- > 0;) graph.add_task(tasks[i]);
  graph.finalize();
  r.graph = std::move(graph);
  return r;
}

/// Pairwise-distinct values (up to a small relative gap).
bool all_distinct(std::vector<double> keys) {
  std::sort(keys.begin(), keys.end());
  for (std::size_t i = 1; i < keys.size(); ++i) {
    const double gap = keys[i] - keys[i - 1];
    if (gap <= 1e-12 * std::max(1.0, std::abs(keys[i]))) return false;
  }
  return true;
}

/// Tie-free ordering keys for `sched`: only then is the dispatch order
/// independent of task ids, the precondition of the permutation property.
/// Each scheduler sorts by a different key — HeteroPrio's ready queue by
/// acceleration factor, HEFT by rank weight, DualHP by acceleration factor
/// in the dual-approximation split *and* by priority in the per-resource
/// dispatch, so it needs both tie-free.
bool keys_distinct(const FuzzCase& c, SchedulerId sched) {
  const std::span<const Task> tasks = c.graph.tasks();
  std::vector<double> keys;
  keys.reserve(tasks.size());
  switch (sched) {
    case SchedulerId::kHp:
    case SchedulerId::kHpNoSpol:
      for (const Task& t : tasks) keys.push_back(t.accel());
      return all_distinct(std::move(keys));
    case SchedulerId::kHeft:
      for (const Task& t : tasks) {
        keys.push_back(rank_weight(t, heft_rank(c)));
      }
      return all_distinct(std::move(keys));
    case SchedulerId::kDualHp: {
      if (c.rank == RankScheme::kFifo) return false;  // order by design
      for (const Task& t : tasks) keys.push_back(t.accel());
      if (!all_distinct(keys)) return false;
      keys.clear();
      for (const Task& t : tasks) keys.push_back(t.priority);
      return all_distinct(std::move(keys));
    }
  }
  return false;
}

}  // namespace

const char* scheduler_name(SchedulerId id) noexcept {
  switch (id) {
    case SchedulerId::kHp: return "hp";
    case SchedulerId::kHpNoSpol: return "hp-nospol";
    case SchedulerId::kHeft: return "heft";
    case SchedulerId::kDualHp: return "dualhp";
  }
  return "?";
}

bool scheduler_from_name(const std::string& name, SchedulerId* out) noexcept {
  for (int i = 0; i < kNumSchedulers; ++i) {
    const auto id = static_cast<SchedulerId>(i);
    if (name == scheduler_name(id)) {
      *out = id;
      return true;
    }
  }
  return false;
}

const char* property_name(unsigned bit) noexcept {
  for (const PropEntry& p : kProps) {
    if (p.bit == bit) return p.name;
  }
  return "?";
}

bool parse_props(const std::string& text, unsigned* out, std::string* error) {
  if (text.empty() || text == "all") {
    *out = kPropAll;
    return true;
  }
  unsigned props = 0;
  std::istringstream iss(text);
  std::string token;
  while (std::getline(iss, token, ',')) {
    if (token.empty()) continue;
    bool found = false;
    for (const PropEntry& p : kProps) {
      if (token == p.name) {
        props |= p.bit;
        found = true;
        break;
      }
    }
    if (!found) {
      if (error != nullptr) *error = "unknown property '" + token + "'";
      return false;
    }
  }
  *out = props;
  return true;
}

std::string props_to_string(unsigned props) {
  if ((props & kPropAll) == kPropAll) return "all";
  std::string out;
  for (const PropEntry& p : kProps) {
    if ((props & p.bit) == 0) continue;
    if (!out.empty()) out += ',';
    out += p.name;
  }
  return out;
}

bool scheduler_applicable(const FuzzCase& c, SchedulerId sched) {
  (void)c;
  (void)sched;
  return true;  // every scheduler handles every case (faults via replay)
}

OracleVerdict check_case(const FuzzCase& c, SchedulerId sched,
                         const OracleOptions& options) {
  OracleVerdict verdict;
  const auto fail = [&](const char* property, std::string detail) {
    verdict.failures.push_back(
        PropertyFailure{property, scheduler_name(sched), std::move(detail)});
  };

  RunOutput run;
  run_scheduler(c, sched, &run);
  const bool faulty = c.has_faults();
  const bool engine = sched == SchedulerId::kHp ||
                      sched == SchedulerId::kHpNoSpol;
  const std::span<const Task> tasks = c.graph.tasks();
  const double makespan = run.schedule.makespan();
  verdict.makespan = makespan;

  const double lb = c.is_dag()
                        ? dag_lower_bound(c.graph, c.platform).value()
                        : opt_lower_bound(tasks, c.platform);

  if (options.props & kPropValidity) {
    ++verdict.properties_checked;
    ScheduleCheckOptions sc;
    sc.tol = options.tol;
    if (faulty) {
      sc.require_complete = false;
      sc.exact_durations = false;
    }
    const ScheduleCheck check =
        c.is_dag() ? check_schedule(run.schedule, c.graph, c.platform, sc)
                   : check_schedule(run.schedule, tasks, c.platform, sc);
    if (!check.ok) fail("validity", check.message);
  }

  if ((options.props & kPropLowerBound) && run.schedule.complete()) {
    ++verdict.properties_checked;
    if (makespan < lb - options.tol * std::max(1.0, lb)) {
      fail("lower-bound",
           "makespan " + fmt(makespan) + " below lower bound " + fmt(lb));
    }
  }

  if ((options.props & kPropRatio) && sched == SchedulerId::kHp && !faulty &&
      !c.is_dag() && !tasks.empty()) {
    ++verdict.properties_checked;
    const obs::BoundCheck bc =
        obs::check_makespan_bound(makespan, lb, c.platform, {});
    if (bc.violated) fail("ratio", obs::describe(bc));
  }

  if ((options.props & kPropExact) && !c.is_dag() && !faulty &&
      !tasks.empty() &&
      tasks.size() <= static_cast<std::size_t>(options.exact_max_tasks) &&
      c.platform.workers() <= options.exact_max_workers) {
    ++verdict.properties_checked;
    const double opt = exact_optimal_makespan(tasks, c.platform);
    if (makespan < opt - options.tol * std::max(1.0, opt)) {
      fail("exact", "makespan " + fmt(makespan) + " beats the exact optimum " +
                        fmt(opt));
    }
    if (opt < lb - options.tol * std::max(1.0, lb)) {
      fail("exact", "exact optimum " + fmt(opt) +
                        " below the area lower bound " + fmt(lb));
    }
    if (sched == SchedulerId::kHp) {
      const double bound = obs::proven_bound(c.platform);
      if (std::isfinite(bound) && makespan > bound * opt * (1.0 + 1e-6)) {
        fail("exact", "makespan " + fmt(makespan) + " above " + fmt(bound) +
                          " x OPT = " + fmt(bound * opt));
      }
    }
  }

  if (options.props & kPropRefDiff) {
    // Fault-free only: the reference engines predate fault injection and
    // ignore HeteroPrioOptions::faults.
    if (engine && !faulty) {
      ++verdict.properties_checked;
      const HeteroPrioOptions o = hp_options(c, sched, nullptr);
      const Schedule ref =
          c.is_dag()
              ? heteroprio_dag_reference(c.graph, c.platform, o)
              : heteroprio_reference(tasks, c.platform, o);
      std::string why;
      if (!same_schedule(run.schedule, ref, &why)) {
        fail("ref-diff", "diverges from heteroprio_reference: " + why);
      }
    } else if (sched == SchedulerId::kHeft && !faulty) {
      ++verdict.properties_checked;
      const HeftOptions o{.rank = heft_rank(c), .insertion = true,
                          .sink = nullptr};
      const Schedule ref = c.is_dag()
                               ? heft_ref(c.graph, c.platform, o)
                               : heft_independent_ref(tasks, c.platform, o);
      std::string why;
      if (!same_schedule(run.schedule, ref, &why)) {
        fail("ref-diff", "diverges from heft_ref: " + why);
      }
    }
  }

  if ((options.props & kPropScale) && !faulty && !tasks.empty()) {
    ++verdict.properties_checked;
    RunOutput scaled;
    run_scheduler(scaled_case(c, 2.0), sched, &scaled);
    if (scaled.schedule.makespan() != 2.0 * makespan) {
      fail("scale", "doubling durations gives makespan " +
                        fmt(scaled.schedule.makespan()) + ", expected " +
                        fmt(2.0 * makespan));
    }
  }

  if ((options.props & kPropPermute) && !faulty && !c.is_dag() &&
      tasks.size() >= 2 && keys_distinct(c, sched)) {
    ++verdict.properties_checked;
    RunOutput reversed;
    run_scheduler(reversed_case(c), sched, &reversed);
    // DualHP's lambda bisection sums areas in task order, so its makespan
    // is only permutation-invariant up to FP rounding; the list schedulers
    // must match bitwise.
    const double slack = sched == SchedulerId::kDualHp
                             ? options.tol * std::max(1.0, makespan)
                             : 0.0;
    if (std::abs(reversed.schedule.makespan() - makespan) > slack) {
      fail("permute", "reversing task order changes the makespan: " +
                          fmt(makespan) + " -> " +
                          fmt(reversed.schedule.makespan()));
    }
  }

  if ((options.props & kPropSpareCrash) && engine && !faulty) {
    const std::size_t ready0 =
        c.is_dag() ? [&] {
          std::size_t n = 0;
          for (std::size_t i = 0; i < c.graph.size(); ++i) {
            if (c.graph.in_degree(static_cast<TaskId>(i)) == 0) ++n;
          }
          return n;
        }()
                   : tasks.size();
    // Enough initially-ready work that the doomed spare cannot starve a
    // surviving worker during the t=0 dispatch pass.
    if (ready0 >= static_cast<std::size_t>(c.platform.workers()) + 2) {
      ++verdict.properties_checked;
      FuzzCase spare = c;
      spare.platform = Platform(c.platform.cpus(), c.platform.gpus() + 1);
      spare.faults = fault::FaultPlan{};
      spare.faults.add_crash(static_cast<WorkerId>(c.platform.workers()), 0.0);
      RunOutput with_spare;
      run_scheduler(spare, sched, &with_spare);
      if (with_spare.schedule.makespan() != makespan) {
        fail("spare-crash",
             "a spare worker crashed at t=0 changes the makespan: " +
                 fmt(makespan) + " -> " + fmt(with_spare.schedule.makespan()));
      }
      if (with_spare.recovery.worker_crashes != 1) {
        fail("spare-crash", "expected exactly 1 crash, saw " +
                                std::to_string(
                                    with_spare.recovery.worker_crashes));
      }
    }
  }

  if ((options.props & kPropFaultAccount) && faulty) {
    ++verdict.properties_checked;
    std::vector<int> fail_count(c.graph.size(), 0);
    for (const obs::Event& e : run.events.events()) {
      if (e.kind == obs::EventKind::kTaskFail && e.task >= 0 &&
          static_cast<std::size_t>(e.task) < fail_count.size()) {
        ++fail_count[static_cast<std::size_t>(e.task)];
      }
    }
    const int budget = c.faults.max_attempts();
    int abandoned = 0;
    int unplaced = 0;
    for (std::size_t i = 0; i < c.graph.size(); ++i) {
      const bool placed = run.schedule.placements()[i].placed();
      if (!placed) ++unplaced;
      if (fail_count[i] > budget) {
        fail("fault-account", "task " + std::to_string(i) + " ran " +
                                  std::to_string(fail_count[i]) +
                                  " failed attempts, budget is " +
                                  std::to_string(budget));
      }
      if (fail_count[i] == budget) {
        ++abandoned;
        if (placed) {
          fail("fault-account",
               "task " + std::to_string(i) +
                   " exhausted its retry budget yet has a final placement");
        }
      }
    }
    if (abandoned != run.recovery.tasks_abandoned) {
      fail("fault-account",
           "tasks with exhausted budgets: " + std::to_string(abandoned) +
               ", recovery.tasks_abandoned: " +
               std::to_string(run.recovery.tasks_abandoned));
    }
    if (unplaced != run.recovery.tasks_unfinished) {
      fail("fault-account",
           "unplaced tasks: " + std::to_string(unplaced) +
               ", recovery.tasks_unfinished: " +
               std::to_string(run.recovery.tasks_unfinished));
    }
    if (run.recovery.degraded != (unplaced > 0)) {
      fail("fault-account", "degraded flag inconsistent with " +
                                std::to_string(unplaced) + " unplaced tasks");
    }
  }

  if ((options.props & kPropOnline) && engine) {
    // Differential against the online runtime. Leg one, always: replayed
    // with every arrival at t=0 (and the case's fault plan), the online
    // runtime is bitwise-identical to the batch engine — the PR's anchor.
    ++verdict.properties_checked;
    online::OnlineOptions oo;
    oo.enable_spoliation = sched == SchedulerId::kHp;
    if (faulty) oo.faults = &c.faults;
    online::OnlineStats origin_stats;
    const Schedule origin =
        c.is_dag()
            ? online::online_run_dag(c.graph, c.platform, oo, &origin_stats)
            : online::online_run(tasks, c.platform, oo, &origin_stats);
    std::string why;
    if (!same_schedule(run.schedule, origin, &why)) {
      fail("online", "all-at-t=0 online run diverges from batch: " + why);
    }
    if (faulty && !(origin_stats.recovery == run.recovery)) {
      fail("online", "all-at-t=0 online recovery diverges from batch");
    }

    // Leg two, when the case carries a staggered stream: the schedule
    // changes (arrivals reshape the interleaving) but it must stay valid,
    // honor every arrival instant, and account for every task.
    if (c.has_arrivals()) {
      oo.arrivals = &c.arrivals;
      online::OnlineStats stag_stats;
      const Schedule stag =
          c.is_dag()
              ? online::online_run_dag(c.graph, c.platform, oo, &stag_stats)
              : online::online_run(tasks, c.platform, oo, &stag_stats);
      ScheduleCheckOptions sc;
      sc.tol = options.tol;
      sc.require_complete = false;
      sc.exact_durations = false;
      const ScheduleCheck check =
          c.is_dag() ? check_schedule(stag, c.graph, c.platform, sc)
                     : check_schedule(stag, tasks, c.platform, sc);
      if (!check.ok) {
        fail("online", "staggered online run invalid: " + check.message);
      }
      std::size_t placed = 0;
      for (std::size_t i = 0; i < stag.num_tasks(); ++i) {
        const Placement& p = stag.placements()[i];
        if (!p.placed()) continue;
        ++placed;
        if (p.start < c.arrivals.arrival(static_cast<TaskId>(i)) - 1e-12) {
          fail("online",
               "task " + std::to_string(i) + " started at " + fmt(p.start) +
                   ", before its arrival at " +
                   fmt(c.arrivals.arrival(static_cast<TaskId>(i))));
        }
      }
      for (const AbortedSegment& seg : stag.aborted()) {
        if (seg.start < c.arrivals.arrival(seg.task) - 1e-12) {
          fail("online", "aborted attempt of task " +
                             std::to_string(seg.task) +
                             " started before its arrival");
        }
      }
      if (stag_stats.tasks_arrived != c.graph.size()) {
        fail("online", "staggered run saw " +
                           std::to_string(stag_stats.tasks_arrived) +
                           " arrivals for " + std::to_string(c.graph.size()) +
                           " tasks");
      }
      // Zero silent drops: every task placed, rejected, or unfinished.
      if (placed + stag_stats.tasks_rejected +
              static_cast<std::size_t>(stag_stats.recovery.tasks_unfinished) !=
          c.graph.size()) {
        fail("online",
             "accounting leak: placed " + std::to_string(placed) +
                 " + rejected " + std::to_string(stag_stats.tasks_rejected) +
                 " + unfinished " +
                 std::to_string(stag_stats.recovery.tasks_unfinished) +
                 " != " + std::to_string(c.graph.size()));
      }
    }
  }

  if ((options.props & kPropPar) && engine && c.par_threads >= 2) {
    // Leg one, always: under the canonical tie-break the parallel engine is
    // bitwise-identical to the sequential run — including the cases that
    // delegate (DAGs, fault plans), where `threads` must be a strict no-op.
    ++verdict.properties_checked;
    HeteroPrioOptions o = hp_options(c, sched, nullptr);
    o.threads = c.par_threads;
    o.canonical = true;
    HeteroPrioStats par_stats;
    const Schedule canonical =
        c.is_dag() ? heteroprio_dag(c.graph, c.platform, o, &par_stats)
                   : heteroprio(tasks, c.platform, o, &par_stats);
    std::string why;
    if (!same_schedule(run.schedule, canonical, &why)) {
      fail("par", "canonical parallel run (threads=" +
                      std::to_string(c.par_threads) +
                      ") diverges from sequential: " + why);
    }
    if (faulty && !(par_stats.recovery == run.recovery)) {
      fail("par", "canonical parallel recovery diverges from sequential");
    }

    // Leg two, fault-free independent cases: free-running mode races the
    // shards, so placements may differ — but the schedule must stay valid
    // and complete, the aborted-segment bookkeeping consistent, and (with
    // spoliation, where the end-game pass restores the last-task
    // inequality) the makespan within the proven ratios.
    if (!faulty && !c.is_dag() && !tasks.empty()) {
      o.canonical = false;
      HeteroPrioStats free_stats;
      const Schedule free_run = heteroprio(tasks, c.platform, o, &free_stats);
      ScheduleCheckOptions sc;
      sc.tol = options.tol;
      const ScheduleCheck check =
          check_schedule(free_run, tasks, c.platform, sc);
      if (!check.ok) {
        fail("par", "free-running schedule invalid: " + check.message);
      }
      if (!free_run.complete()) {
        fail("par", "free-running schedule left tasks unplaced");
      }
      if (sched == SchedulerId::kHpNoSpol && !free_run.aborted().empty()) {
        fail("par", "free-running no-spoliation run recorded " +
                        std::to_string(free_run.aborted().size()) +
                        " aborted segments");
      }
      if (static_cast<std::size_t>(free_stats.spoliations) !=
          free_run.aborted().size()) {
        fail("par", "free-running spoliation counter " +
                        std::to_string(free_stats.spoliations) +
                        " != " + std::to_string(free_run.aborted().size()) +
                        " aborted segments");
      }
      if (sched == SchedulerId::kHp) {
        const obs::BoundCheck bc = obs::check_makespan_bound(
            free_run.makespan(), lb, c.platform, {});
        if (bc.violated) {
          fail("par", std::string("free-running run breaks the proven "
                                  "ratio: ") +
                          obs::describe(bc));
        }
      }
    }
  }

  if ((options.props & kPropServe) && c.serve_workers >= 2) {
    // The service is a routing layer, never a scheduling layer: any case
    // submitted through it must come back bitwise-identical to the direct
    // engine run (`run`), whatever worker served it, however requests were
    // batched, and under whatever admission pressure — and every
    // submission must be answered (zero silent drops).
    ++verdict.properties_checked;
    const auto check_response = [&](const serve::Response& r,
                                    const char* leg) {
      if (r.status != serve::ResponseStatus::kCompleted) {
        fail("serve", std::string(leg) + ": request was not completed");
        return;
      }
      std::string why;
      if (!same_schedule(run.schedule, r.schedule, &why)) {
        fail("serve", std::string(leg) +
                          ": service schedule diverges from the direct "
                          "engine run: " + why);
      }
      if (faulty && !(r.recovery == run.recovery)) {
        fail("serve", std::string(leg) +
                          ": service recovery report diverges from the "
                          "direct engine run");
      }
    };
    const auto check_balanced = [&](const serve::Service& service,
                                    const char* leg) {
      const serve::Service::Accounting acct = service.accounting();
      if (!acct.balanced() || acct.in_flight != 0) {
        fail("serve", std::string(leg) +
                          ": accounting identity broken: submitted " +
                          std::to_string(acct.submitted) + " != accepted " +
                          std::to_string(acct.accepted) + " + rejected " +
                          std::to_string(acct.rejected) + " (completed " +
                          std::to_string(acct.completed) + ", in flight " +
                          std::to_string(acct.in_flight) + ")");
      }
    };

    {  // Leg one: one tenant, one worker.
      serve::ServiceOptions so;
      so.workers = 1;
      so.max_clients = 1;
      serve::Service service(so);
      serve::Service::Ticket ticket =
          service.submit(serve_request(c, sched, 0), 0);
      const serve::Response response = ticket.response.get();
      service.drain();
      check_response(response, "1-worker leg");
      check_balanced(service, "1-worker leg");
    }

    {  // Leg two: several tenants over serve_workers workers.
      serve::ServiceOptions so;
      so.workers = c.serve_workers;
      so.max_clients = 1;
      serve::Service service(so);
      constexpr int kRepeats = 4;
      std::vector<std::future<serve::Response>> futures;
      for (int i = 0; i < kRepeats; ++i) {
        futures.push_back(
            service.submit(serve_request(c, sched, i % 2), 0).response);
      }
      for (std::future<serve::Response>& f : futures) {
        check_response(f.get(), "W-worker leg");
      }
      service.drain();
      check_balanced(service, "W-worker leg");
    }

    {  // Leg three: seed-randomized admission watermarks and shed policy.
      util::Rng rng(util::seed_from_cell(
          {c.seed, static_cast<std::uint64_t>(c.graph.size()),
           static_cast<std::uint64_t>(sched)}));
      serve::ServiceOptions so;
      so.workers = c.serve_workers;
      so.max_clients = 1;
      so.watermark_high = 1 + rng.bounded(3);
      so.shed_policy = rng.bernoulli(0.5) ? online::ShedPolicy::kDefer
                                          : online::ShedPolicy::kReject;
      constexpr int kSubmissions = 6;
      std::vector<std::future<serve::Response>> futures;
      std::size_t rejected_tickets = 0;
      {
        serve::Service service(so);
        for (int i = 0; i < kSubmissions; ++i) {
          serve::Service::Ticket ticket =
              service.submit(serve_request(c, sched, i % 2), 0);
          rejected_tickets +=
              ticket.admission == serve::Admission::kRejected ? 1 : 0;
          futures.push_back(std::move(ticket.response));
        }
        std::size_t completed = 0;
        std::size_t rejected = 0;
        for (std::future<serve::Response>& f : futures) {
          const serve::Response response = f.get();
          if (response.status == serve::ResponseStatus::kRejected) {
            ++rejected;
          } else {
            ++completed;
            check_response(response, "watermark leg");
          }
        }
        service.drain();
        check_balanced(service, "watermark leg");
        if (completed + rejected != kSubmissions) {
          fail("serve", "watermark leg: " + std::to_string(completed) +
                            " completed + " + std::to_string(rejected) +
                            " rejected != " + std::to_string(kSubmissions) +
                            " submitted");
        }
        if (rejected != rejected_tickets) {
          fail("serve",
               "watermark leg: rejected responses disagree with rejected "
               "tickets");
        }
        if (so.shed_policy == online::ShedPolicy::kDefer && rejected != 0) {
          fail("serve",
               "watermark leg: defer policy rejected " +
                   std::to_string(rejected) +
                   " submissions (deferred requests must complete)");
        }
      }
    }
  }

  return verdict;
}

}  // namespace hp::fuzz
