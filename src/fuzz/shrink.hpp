#pragma once
// Greedy shrinker — minimizes a failing FuzzCase while it still fails.
//
// Classic test-case reduction: given a case on which check_case() reports a
// property violation, repeatedly try simplifying mutations (drop tasks in
// ddmin-style chunks, drop edges, shrink the platform, strip fault events,
// round durations to small integers) and keep a mutation iff the *original*
// failing properties still fail on the mutated case. The result is the
// smallest repro the greedy pass can reach — typically a handful of tasks —
// which corpus.hpp then serializes into tests/corpus/.
//
// Determinism: the pass order is fixed and the oracle is deterministic, so
// the same failing case always shrinks to the same minimal repro.

#include <functional>

#include "fuzz/generator.hpp"
#include "fuzz/oracle.hpp"

namespace hp::fuzz {

struct ShrinkOptions {
  int max_rounds = 6;    ///< fixpoint rounds over all passes
  int max_evals = 4000;  ///< total oracle evaluations budget
};

struct ShrinkResult {
  FuzzCase minimized;
  /// First failure the oracle reports on `minimized` (the repro's label).
  PropertyFailure failure;
  int evals = 0;   ///< oracle evaluations spent
  int rounds = 0;  ///< fixpoint rounds run
};

/// Minimize `failing` for `sched`. Precondition: check_case(failing, sched,
/// oracle) reports at least one failure; shrinking preserves at least one of
/// those originally-failing properties.
[[nodiscard]] ShrinkResult shrink_case(const FuzzCase& failing,
                                       SchedulerId sched,
                                       const OracleOptions& oracle = {},
                                       const ShrinkOptions& options = {});

/// Core reduction against an arbitrary predicate: keep a mutation iff
/// `fails` still returns true. The oracle-based shrink_case wraps this;
/// tests (and ad-hoc bug hunts) can minimize against any condition.
/// `result.failure` is left empty — only the oracle wrapper can name one.
[[nodiscard]] ShrinkResult shrink_case_with(
    const FuzzCase& failing,
    const std::function<bool(const FuzzCase&)>& fails,
    const ShrinkOptions& options = {});

}  // namespace hp::fuzz
