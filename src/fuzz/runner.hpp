#pragma once
// Fuzz campaign driver — generate, check, shrink, report.
//
// run_fuzz() walks cases (seed, 0), (seed, 1), ... through the oracle for
// every selected scheduler. A failing (case, scheduler) pair is shrunk to a
// minimal repro and optionally written to a corpus file in `out_dir`, ready
// to check in under tests/corpus/.
//
// Determinism: cases are pure functions of (seed, index) and the oracle is
// deterministic, so the same options produce a byte-identical report — the
// report carries an FNV-1a checksum over every (index, scheduler, makespan)
// triple, and `hp_sched fuzz` run twice with the same seed must print the
// same bytes (CI asserts this).

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/generator.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/shrink.hpp"

namespace hp::fuzz {

struct RunnerOptions {
  std::uint64_t seed = 1;
  int runs = 100;
  /// Schedulers to fuzz; empty = all of them.
  std::vector<SchedulerId> schedulers;
  GenKnobs knobs;
  OracleOptions oracle;
  ShrinkOptions shrink;
  bool shrink_failures = true;
  /// Directory for shrunk repro files; empty = keep repros in memory only.
  std::string out_dir;
  /// Stop drawing new cases after this many seconds (0 = no limit). An
  /// early stop is reported in `cases_run`; byte-identical reports are only
  /// guaranteed for untimed runs.
  double max_seconds = 0.0;
};

struct FuzzFailure {
  std::uint64_t index = 0;         ///< failing case's index under the seed
  SchedulerId scheduler = SchedulerId::kHp;
  PropertyFailure failure;         ///< verdict on the *shrunk* case
  FuzzCase shrunk;                 ///< minimal repro (== original if
                                   ///< shrinking is disabled)
  std::string repro_path;          ///< written corpus file, "" if none
};

struct FuzzReport {
  std::uint64_t seed = 0;
  int runs_requested = 0;
  int cases_run = 0;
  long long properties_checked = 0;
  std::vector<FuzzFailure> failures;
  std::uint64_t checksum = 0;  ///< FNV-1a over (index, scheduler, makespan)

  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
};

[[nodiscard]] FuzzReport run_fuzz(const RunnerOptions& options);

/// Deterministic text rendering of a report (the `--out` payload).
[[nodiscard]] std::string format_report(const FuzzReport& report,
                                        const RunnerOptions& options);

}  // namespace hp::fuzz
