#pragma once
// Corpus files — shrunk repros and worst-case witnesses as plain data.
//
// A corpus file is an ordinary io/serialize workload file (task/edge/name
// lines, so any tool that reads .hpi/.hpg reads it too) plus two comment
// conventions the plain parsers skip:
//
//   # fuzz: cpus=2 gpus=1 schedulers=hp,heft props=all rank=min
//   # fuzz: min-ratio=1.618033988
//   # hpf: faultplan v1
//   # hpf: crash 2 0
//   # hpo: arrivals v1
//   # hpo: arrive 0 1.25 0
//
// `# fuzz:` directives carry the platform, the schedulers and properties to
// replay, and an optional tightness floor (worst-case family witnesses must
// *stay* bad: HeteroPrio's makespan / lower bound >= min-ratio). `# hpf:`
// lines embed the fault plan in its own .hpf text format; `# hpo:` lines
// embed the arrival plan the same way, so online repros replay their
// staggered stream forever.
//
// tests/corpus/ holds one file per repro; test_fuzz_corpus.cpp replays every
// file on every listed scheduler forever after. Convention: every fuzz-found
// bug ships its shrunk corpus file in the fixing PR (docs/testing.md).

#include <string>
#include <vector>

#include "fuzz/oracle.hpp"

namespace hp::fuzz {

/// One corpus entry: the case plus its replay policy.
struct CorpusCase {
  FuzzCase c;
  /// Schedulers to replay; empty means all of them.
  std::vector<SchedulerId> schedulers;
  unsigned props = kPropAll;
  /// Tightness floor (0 = none): HeteroPrio makespan / lower bound must be
  /// >= this, so distilled worst-case witnesses keep exhibiting their ratio.
  double min_ratio = 0.0;
};

[[nodiscard]] std::string corpus_to_text(const CorpusCase& entry);
[[nodiscard]] bool corpus_from_text(const std::string& text, CorpusCase* out,
                                    std::string* error);

/// Whole-file wrappers over io::save_text_file / io::load_text_file.
[[nodiscard]] bool save_corpus_file(const std::string& path,
                                    const CorpusCase& entry);
[[nodiscard]] bool load_corpus_file(const std::string& path, CorpusCase* out,
                                    std::string* error);

/// Sorted paths of the corpus files (*.hpi/*.hpg) under `dir`.
[[nodiscard]] std::vector<std::string> list_corpus_files(
    const std::string& dir);

/// Replay verdict: oracle failures across the replayed schedulers, plus the
/// min-ratio tightness check when the entry carries one.
struct CorpusVerdict {
  int schedulers_replayed = 0;
  int properties_checked = 0;
  std::vector<PropertyFailure> failures;

  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
};

[[nodiscard]] CorpusVerdict replay_corpus_case(const CorpusCase& entry,
                                               OracleOptions oracle = {});

}  // namespace hp::fuzz
