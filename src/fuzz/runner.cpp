#include "fuzz/runner.hpp"

#include <chrono>
#include <cstring>
#include <sstream>

#include "fuzz/corpus.hpp"

namespace hp::fuzz {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_mix(std::uint64_t* h, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    *h ^= (value >> (8 * byte)) & 0xffu;
    *h *= kFnvPrime;
  }
}

std::uint64_t double_bits(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

std::vector<SchedulerId> resolve_schedulers(const RunnerOptions& options) {
  if (!options.schedulers.empty()) return options.schedulers;
  std::vector<SchedulerId> all;
  for (int i = 0; i < kNumSchedulers; ++i) {
    all.push_back(static_cast<SchedulerId>(i));
  }
  return all;
}

/// Corpus entry for a shrunk repro: replay only the scheduler and the
/// property that failed.
CorpusCase repro_entry(const FuzzFailure& failure, unsigned failing_props) {
  CorpusCase entry;
  entry.c = failure.shrunk;
  entry.schedulers = {failure.scheduler};
  entry.props = failing_props;
  return entry;
}

}  // namespace

FuzzReport run_fuzz(const RunnerOptions& options) {
  FuzzReport report;
  report.seed = options.seed;
  report.runs_requested = options.runs;
  report.checksum = kFnvOffset;

  const std::vector<SchedulerId> schedulers = resolve_schedulers(options);
  const auto start = std::chrono::steady_clock::now();

  for (int i = 0; i < options.runs; ++i) {
    if (options.max_seconds > 0.0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (elapsed.count() >= options.max_seconds) break;
    }
    const FuzzCase c =
        generate_case(options.seed, static_cast<std::uint64_t>(i),
                      options.knobs);
    ++report.cases_run;
    for (const SchedulerId sched : schedulers) {
      if (!scheduler_applicable(c, sched)) continue;
      const OracleVerdict verdict = check_case(c, sched, options.oracle);
      report.properties_checked += verdict.properties_checked;
      fnv_mix(&report.checksum, static_cast<std::uint64_t>(i));
      fnv_mix(&report.checksum, static_cast<std::uint64_t>(sched));
      fnv_mix(&report.checksum, double_bits(verdict.makespan));
      if (verdict.ok()) continue;

      FuzzFailure failure;
      failure.index = static_cast<std::uint64_t>(i);
      failure.scheduler = sched;
      unsigned failing_props = 0;
      for (const PropertyFailure& f : verdict.failures) {
        for (unsigned bit = 1; bit < kPropAll; bit <<= 1) {
          if (f.property == property_name(bit)) failing_props |= bit;
        }
      }
      if (options.shrink_failures) {
        ShrinkResult shrunk =
            shrink_case(c, sched, options.oracle, options.shrink);
        failure.shrunk = std::move(shrunk.minimized);
        failure.failure = std::move(shrunk.failure);
      } else {
        failure.shrunk = c;
        failure.failure = verdict.failures.front();
      }
      if (!options.out_dir.empty()) {
        const std::string path = options.out_dir + "/" + failure.shrunk.name +
                                 (failure.shrunk.is_dag() ? ".hpg" : ".hpi");
        if (save_corpus_file(path, repro_entry(failure, failing_props))) {
          failure.repro_path = path;
        }
      }
      report.failures.push_back(std::move(failure));
    }
  }
  return report;
}

std::string format_report(const FuzzReport& report,
                          const RunnerOptions& options) {
  std::ostringstream oss;
  oss << "# hp-fuzz report v1\n";
  oss << "seed " << report.seed << '\n';
  oss << "runs " << report.runs_requested << '\n';
  oss << "cases " << report.cases_run << '\n';
  oss << "schedulers ";
  const std::vector<SchedulerId> schedulers = resolve_schedulers(options);
  for (std::size_t i = 0; i < schedulers.size(); ++i) {
    if (i > 0) oss << ',';
    oss << scheduler_name(schedulers[i]);
  }
  oss << '\n';
  oss << "props " << props_to_string(options.oracle.props) << '\n';
  oss << "properties-checked " << report.properties_checked << '\n';
  oss << "failures " << report.failures.size() << '\n';
  for (const FuzzFailure& f : report.failures) {
    oss << "fail index=" << f.index << " scheduler="
        << scheduler_name(f.scheduler) << " property=" << f.failure.property
        << " tasks=" << f.shrunk.graph.size();
    if (!f.repro_path.empty()) oss << " repro=" << f.repro_path;
    oss << '\n';
    oss << "  detail: " << f.failure.detail << '\n';
  }
  oss << "checksum 0x" << std::hex << report.checksum << std::dec << '\n';
  return oss.str();
}

}  // namespace hp::fuzz
