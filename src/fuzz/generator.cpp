#include "fuzz/generator.hpp"

#include <algorithm>
#include <cmath>

#include "core/heteroprio.hpp"
#include "core/heteroprio_dag.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "model/generators.hpp"
#include "util/rng.hpp"

namespace hp::fuzz {

namespace {

/// Salt for the per-case cell seed, distinct from every other subsystem.
constexpr std::uint64_t kFuzzSalt = 0x66757a7aULL;  // "fuzz"

/// Copy an Instance into an edge-free TaskGraph (the one workload container
/// of FuzzCase) and give most cases distinct random priorities so the
/// tie-break paths are exercised with total keys.
TaskGraph instance_to_graph(const Instance& instance, util::Rng& rng,
                            bool random_priorities) {
  TaskGraph graph(instance.name());
  for (const Task& t : instance.tasks()) {
    Task task = t;
    if (random_priorities) task.priority = rng.uniform(0.0, 16.0);
    graph.add_task(task);
  }
  graph.finalize();
  return graph;
}

/// Largest tile count whose Cholesky/LU DAG stays within `max_tasks`
/// (N(N+1)(N+2)/6 tasks for Cholesky; LU is the same order).
int tiles_for_budget(int max_tasks) {
  int tiles = 2;
  while ((tiles + 1) * (tiles + 2) * (tiles + 3) / 6 <= max_tasks &&
         tiles < 8) {
    ++tiles;
  }
  return tiles;
}

}  // namespace

FuzzCase generate_case(std::uint64_t seed, std::uint64_t index,
                       const GenKnobs& knobs) {
  FuzzCase c;
  c.seed = util::seed_from_cell({seed, index}, kFuzzSalt);
  c.name = "case-" + std::to_string(seed) + "-" + std::to_string(index);
  util::Rng rng(c.seed);

  // Platform: mostly heterogeneous, a controlled slice one-sided so the
  // Graham shape of the watchdog is exercised too.
  int cpus = 1 + static_cast<int>(rng.bounded(
                     static_cast<std::uint64_t>(std::max(1, knobs.max_cpus))));
  int gpus = 1 + static_cast<int>(rng.bounded(
                     static_cast<std::uint64_t>(std::max(1, knobs.max_gpus))));
  if (rng.uniform01() < knobs.degenerate_fraction) {
    if (rng.bernoulli(0.5)) {
      gpus = 0;
    } else {
      cpus = 0;
    }
  }
  if (cpus + gpus == 0) cpus = 1;
  c.platform = Platform(cpus, gpus);

  const std::size_t num_tasks =
      1 + rng.bounded(static_cast<std::uint64_t>(std::max(1, knobs.max_tasks)));
  const bool want_dag = rng.uniform01() < knobs.dag_fraction;
  c.rank = rng.bernoulli(0.5) ? RankScheme::kMin : RankScheme::kAvg;

  if (want_dag) {
    switch (rng.bounded(4)) {
      case 0: {
        LayeredDagParams params;
        params.layers = 2 + static_cast<int>(rng.bounded(5));
        params.width = std::max<int>(
            1, static_cast<int>(num_tasks) / std::max(1, params.layers));
        params.edge_probability = rng.uniform(0.15, 0.6);
        c.graph = random_layered_dag(params, rng);
        break;
      }
      case 1: {
        SparseDagParams params;
        params.num_tasks = num_tasks;
        params.avg_out_degree = rng.uniform(1.0, 3.0);
        params.window = 4 + static_cast<int>(rng.bounded(10));
        c.graph = random_sparse_dag(params, rng);
        break;
      }
      case 2:
        c.graph = cholesky_dag(tiles_for_budget(knobs.max_tasks));
        break;
      default:
        c.graph = lu_dag(std::max(2, tiles_for_budget(knobs.max_tasks) - 1));
        break;
    }
    c.graph.finalize();
    if (c.graph.num_edges() > 0) {
      assign_priorities(c.graph, c.rank);
    } else {
      // A 1-layer draw can come out edge-free; treat it as independent.
      c.graph = instance_to_graph(c.graph.to_instance(), rng, true);
    }
  } else {
    const bool random_priorities = rng.uniform01() < 0.7;
    switch (rng.bounded(3)) {
      case 0: {
        UniformGenParams params;
        params.num_tasks = num_tasks;
        c.graph = instance_to_graph(uniform_instance(params, rng), rng,
                                    random_priorities);
        break;
      }
      case 1:
        c.graph = instance_to_graph(
            bimodal_instance(num_tasks, rng.uniform(0.2, 0.8), rng), rng,
            random_priorities);
        break;
      default:
        c.graph = instance_to_graph(
            uniform_accel_instance(num_tasks, rng.uniform(0.5, 8.0), 0.5, 10.0,
                                   rng),
            rng, random_priorities);
        break;
    }
  }
  c.graph.set_name(c.name);

  if (rng.uniform01() < knobs.fault_fraction) {
    fault::FaultSpec spec;
    const int workers = c.platform.workers();
    spec.crashes = static_cast<int>(rng.bounded(
        static_cast<std::uint64_t>(std::max(1, workers))));
    spec.stragglers = static_cast<int>(rng.bounded(3));
    spec.task_fail_prob = rng.bernoulli(0.5) ? rng.uniform(0.01, 0.25) : 0.0;
    spec.max_attempts = 2 + static_cast<int>(rng.bounded(4));
    spec.retry_backoff = rng.bernoulli(0.3) ? rng.uniform(0.0, 0.5) : 0.0;
    spec.seed = rng();
    // Horizon: the fault-free HeteroPrio makespan, so injected instants land
    // inside the run (same convention as `hp_sched faults`).
    HeteroPrioStats stats;
    const double horizon =
        c.is_dag()
            ? heteroprio_dag(c.graph, c.platform, {}, &stats).makespan()
            : heteroprio(c.graph.tasks(), c.platform, {}, &stats).makespan();
    spec.horizon = horizon > 0.0 ? horizon : 1.0;
    c.faults = fault::FaultPlan::generate(spec, c.platform);
  }

  // Arrival stream next-to-last: every draw above is unchanged from before
  // this knob existed, so historical (seed, index) cases stay byte-identical.
  if (rng.uniform01() < knobs.online_fraction) {
    online::ArrivalSpec arrival_spec;
    arrival_spec.rate = rng.uniform(0.1, 2.0);
    arrival_spec.deadline_factor =
        rng.bernoulli(0.5) ? rng.uniform(2.0, 16.0) : 0.0;
    arrival_spec.seed = rng();
    c.arrivals = online::ArrivalPlan::generate(arrival_spec, c.graph.tasks());
  }

  // Scheduler thread count strictly last (same reason: the `par` property
  // arrived after the arrivals knob, and adding its draw here keeps every
  // earlier field of historical cases byte-identical — regression-tested in
  // test_fuzz_generator).
  if (knobs.par_threads >= 2) {
    c.par_threads = 2 + static_cast<int>(rng.bounded(
                            static_cast<std::uint64_t>(knobs.par_threads - 1)));
  }

  // Service worker count strictly last again (the `serve` property arrived
  // after the par knob; drawing here keeps every earlier field of
  // historical cases byte-identical — regression-tested alongside the par
  // draw in test_fuzz_generator).
  if (knobs.serve_workers >= 2) {
    c.serve_workers =
        2 + static_cast<int>(rng.bounded(
                static_cast<std::uint64_t>(knobs.serve_workers - 1)));
  }
  return c;
}

}  // namespace hp::fuzz
