#pragma once
// Seeded fuzz-case generators — the instance side of the property-based
// testing subsystem (see docs/testing.md).
//
// A FuzzCase is one complete scheduling problem: a platform, a workload
// (independent tasks or a DAG, both stored as a TaskGraph — independent
// instances are simply edge-free), and an optional fault plan. Cases are
// pure functions of (seed, index): the same coordinates regenerate the same
// case forever, in any process, so a one-line report entry is a full repro.
//
// The shapes are deliberately diverse — uniform/bimodal/equal-accel task
// sets, layered and sparse random DAGs, small tiled-factorization DAGs —
// because the schedulers must not depend on the regularity of any one
// family (the same reason dag/random_graphs.hpp exists).

#include <cstdint>
#include <string>

#include "dag/random_graphs.hpp"
#include "dag/ranking.hpp"
#include "dag/task_graph.hpp"
#include "fault/fault_plan.hpp"
#include "model/platform.hpp"
#include "online/arrival.hpp"

namespace hp::fuzz {

/// Size and shape knobs of the case generator.
struct GenKnobs {
  int max_tasks = 40;   ///< tasks per case drawn from [1, max_tasks]
  int max_cpus = 4;     ///< cpus drawn from [0, max_cpus]
  int max_gpus = 3;     ///< gpus drawn from [0, max_gpus]; never both 0
  double dag_fraction = 0.4;      ///< fraction of cases that carry edges
  double fault_fraction = 0.25;   ///< fraction of cases with a fault plan
  double degenerate_fraction = 0.1;  ///< fraction forced to one-sided nodes
  /// Fraction of cases carrying a staggered arrival stream (the online
  /// differential of the oracle). Drawn after every earlier field, so
  /// cases at a given (seed, index) are unchanged from before the knob
  /// existed whenever the draw comes up fault-free-of-arrivals.
  double online_fraction = 0.25;
  /// Upper bound (inclusive) for FuzzCase::par_threads, the scheduler
  /// thread count the `par` property exercises; drawn uniformly from
  /// [2, par_threads]. Drawn *strictly last* — after the arrivals block —
  /// so every earlier field of historical (seed, index) cases stays
  /// byte-identical. < 2 disables the draw (par_threads stays 0).
  int par_threads = 4;
  /// Upper bound (inclusive) for FuzzCase::serve_workers, the service
  /// worker-pool size the `serve` property exercises; drawn uniformly from
  /// [2, serve_workers]. Drawn *strictly last*, after the par_threads draw
  /// (the property arrived later), so every earlier field of historical
  /// (seed, index) cases stays byte-identical. < 2 disables the draw.
  int serve_workers = 3;
};

/// One generated scheduling problem.
struct FuzzCase {
  std::string name;        ///< "case-<seed>-<index>"
  std::uint64_t seed = 0;  ///< the cell seed the case was drawn from
  Platform platform{1, 1};
  /// Finalized workload; independent instances have no edges. DAG cases
  /// carry priorities assigned with `rank`; independent cases carry random
  /// (distinct) priorities as plain data.
  TaskGraph graph;
  RankScheme rank = RankScheme::kMin;  ///< scheme behind DAG priorities
  /// Empty for fault-free cases (the engines' regression-tested no-op).
  fault::FaultPlan faults;
  /// Empty (or all-at-t=0) for batch cases; staggered streams drive the
  /// oracle's online differential property.
  online::ArrivalPlan arrivals;
  /// Scheduler threads the `par` property runs the parallel engine with
  /// (HeteroPrioOptions::threads). 0 disables the property for this case.
  int par_threads = 0;
  /// Service workers the `serve` property routes the case through
  /// (ServiceOptions::workers). 0 disables the property for this case.
  int serve_workers = 0;

  [[nodiscard]] bool is_dag() const noexcept { return graph.num_edges() > 0; }
  [[nodiscard]] bool has_faults() const noexcept { return !faults.empty(); }
  [[nodiscard]] bool has_arrivals() const noexcept {
    return !arrivals.empty() && !arrivals.all_at_origin();
  }
};

/// Generate the case at (seed, index). Deterministic; independent of every
/// other index, so a run report line identifies its case exactly.
[[nodiscard]] FuzzCase generate_case(std::uint64_t seed, std::uint64_t index,
                                     const GenKnobs& knobs = {});

}  // namespace hp::fuzz
