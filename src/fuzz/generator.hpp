#pragma once
// Seeded fuzz-case generators — the instance side of the property-based
// testing subsystem (see docs/testing.md).
//
// A FuzzCase is one complete scheduling problem: a platform, a workload
// (independent tasks or a DAG, both stored as a TaskGraph — independent
// instances are simply edge-free), and an optional fault plan. Cases are
// pure functions of (seed, index): the same coordinates regenerate the same
// case forever, in any process, so a one-line report entry is a full repro.
//
// The shapes are deliberately diverse — uniform/bimodal/equal-accel task
// sets, layered and sparse random DAGs, small tiled-factorization DAGs —
// because the schedulers must not depend on the regularity of any one
// family (the same reason dag/random_graphs.hpp exists).

#include <cstdint>
#include <string>

#include "dag/random_graphs.hpp"
#include "dag/ranking.hpp"
#include "dag/task_graph.hpp"
#include "fault/fault_plan.hpp"
#include "model/platform.hpp"
#include "online/arrival.hpp"

namespace hp::fuzz {

/// Size and shape knobs of the case generator.
struct GenKnobs {
  int max_tasks = 40;   ///< tasks per case drawn from [1, max_tasks]
  int max_cpus = 4;     ///< cpus drawn from [0, max_cpus]
  int max_gpus = 3;     ///< gpus drawn from [0, max_gpus]; never both 0
  double dag_fraction = 0.4;      ///< fraction of cases that carry edges
  double fault_fraction = 0.25;   ///< fraction of cases with a fault plan
  double degenerate_fraction = 0.1;  ///< fraction forced to one-sided nodes
  /// Fraction of cases carrying a staggered arrival stream (the online
  /// differential of the oracle). Drawn last, after every other field, so
  /// cases at a given (seed, index) are unchanged from before the knob
  /// existed whenever the draw comes up fault-free-of-arrivals.
  double online_fraction = 0.25;
};

/// One generated scheduling problem.
struct FuzzCase {
  std::string name;        ///< "case-<seed>-<index>"
  std::uint64_t seed = 0;  ///< the cell seed the case was drawn from
  Platform platform{1, 1};
  /// Finalized workload; independent instances have no edges. DAG cases
  /// carry priorities assigned with `rank`; independent cases carry random
  /// (distinct) priorities as plain data.
  TaskGraph graph;
  RankScheme rank = RankScheme::kMin;  ///< scheme behind DAG priorities
  /// Empty for fault-free cases (the engines' regression-tested no-op).
  fault::FaultPlan faults;
  /// Empty (or all-at-t=0) for batch cases; staggered streams drive the
  /// oracle's online differential property.
  online::ArrivalPlan arrivals;

  [[nodiscard]] bool is_dag() const noexcept { return graph.num_edges() > 0; }
  [[nodiscard]] bool has_faults() const noexcept { return !faults.empty(); }
  [[nodiscard]] bool has_arrivals() const noexcept {
    return !arrivals.empty() && !arrivals.all_at_origin();
  }
};

/// Generate the case at (seed, index). Deterministic; independent of every
/// other index, so a run report line identifies its case exactly.
[[nodiscard]] FuzzCase generate_case(std::uint64_t seed, std::uint64_t index,
                                     const GenKnobs& knobs = {});

}  // namespace hp::fuzz
