#include "fuzz/shrink.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

namespace hp::fuzz {

namespace {

/// Decomposed, freely editable form of a FuzzCase. The FaultPlan is split
/// into its events so passes can strip them one at a time.
struct CaseBuilder {
  std::string name;
  std::uint64_t seed = 0;
  int cpus = 1;
  int gpus = 1;
  RankScheme rank = RankScheme::kMin;
  std::vector<Task> tasks;
  std::vector<std::pair<TaskId, TaskId>> edges;
  std::vector<fault::CrashEvent> crashes;
  std::vector<fault::StragglerWindow> stragglers;
  double task_fail_prob = 0.0;
  int max_attempts = 4;
  double retry_backoff = 0.0;
  std::uint64_t fault_seed = 1;

  static CaseBuilder from_case(const FuzzCase& c) {
    CaseBuilder b;
    b.name = c.name;
    b.seed = c.seed;
    b.cpus = c.platform.cpus();
    b.gpus = c.platform.gpus();
    b.rank = c.rank;
    b.tasks.assign(c.graph.tasks().begin(), c.graph.tasks().end());
    for (std::size_t i = 0; i < c.graph.size(); ++i) {
      for (TaskId succ : c.graph.successors(static_cast<TaskId>(i))) {
        b.edges.emplace_back(static_cast<TaskId>(i), succ);
      }
    }
    b.crashes.assign(c.faults.crashes().begin(), c.faults.crashes().end());
    b.stragglers.assign(c.faults.stragglers().begin(),
                        c.faults.stragglers().end());
    b.task_fail_prob = c.faults.task_fail_prob();
    b.max_attempts = c.faults.max_attempts();
    b.retry_backoff = c.faults.backoff_delay(1);  // backoff * 2^0
    b.fault_seed = c.faults.seed();
    return b;
  }

  [[nodiscard]] bool has_fault_events() const noexcept {
    return !crashes.empty() || !stragglers.empty() || task_fail_prob > 0.0;
  }

  [[nodiscard]] FuzzCase build() const {
    FuzzCase c;
    c.name = name;
    c.seed = seed;
    c.platform = Platform(cpus, gpus);
    c.rank = rank;
    TaskGraph graph(name);
    for (const Task& t : tasks) graph.add_task(t);
    for (const auto& [from, to] : edges) graph.add_edge(from, to);
    graph.finalize();
    c.graph = std::move(graph);
    if (has_fault_events()) {
      for (const fault::CrashEvent& e : crashes) {
        c.faults.add_crash(e.worker, e.time);
      }
      for (const fault::StragglerWindow& w : stragglers) {
        c.faults.add_straggler(w.worker, w.begin, w.end, w.slowdown);
      }
      c.faults.set_task_faults(task_fail_prob, max_attempts, retry_backoff,
                               fault_seed);
    }
    return c;
  }
};

/// Remove the tasks whose indices are in [lo, hi) and remap/drop edges and
/// crash workers accordingly (a crash of a removed worker is dropped by the
/// platform pass, not here).
CaseBuilder without_tasks(const CaseBuilder& b, std::size_t lo,
                          std::size_t hi) {
  CaseBuilder out = b;
  out.tasks.clear();
  std::vector<int> remap(b.tasks.size(), -1);
  for (std::size_t i = 0; i < b.tasks.size(); ++i) {
    if (i >= lo && i < hi) continue;
    remap[i] = static_cast<int>(out.tasks.size());
    out.tasks.push_back(b.tasks[i]);
  }
  out.edges.clear();
  for (const auto& [from, to] : b.edges) {
    const int f = remap[static_cast<std::size_t>(from)];
    const int t = remap[static_cast<std::size_t>(to)];
    if (f >= 0 && t >= 0) {
      out.edges.emplace_back(static_cast<TaskId>(f), static_cast<TaskId>(t));
    }
  }
  return out;
}

class Shrinker {
 public:
  Shrinker(std::function<bool(const FuzzCase&)> fails,
           const ShrinkOptions& options)
      : fails_(std::move(fails)), options_(options) {}

  /// True iff the case still fails the predicate (and the evaluation budget
  /// is not exhausted).
  bool still_fails(const CaseBuilder& b) {
    if (evals_ >= options_.max_evals) return false;
    ++evals_;
    const FuzzCase c = b.build();
    if (c.graph.size() == 0 || c.platform.workers() == 0) return false;
    return fails_(c);
  }

  /// ddmin-lite: try dropping contiguous chunks, halving the chunk size.
  bool pass_drop_tasks(CaseBuilder* b) {
    bool changed = false;
    for (std::size_t chunk = std::max<std::size_t>(1, b->tasks.size() / 2);
         chunk >= 1; chunk /= 2) {
      for (std::size_t lo = 0; lo < b->tasks.size();) {
        if (b->tasks.size() <= 1) return changed;
        const std::size_t hi = std::min(lo + chunk, b->tasks.size());
        CaseBuilder candidate = without_tasks(*b, lo, hi);
        if (!candidate.tasks.empty() && still_fails(candidate)) {
          *b = std::move(candidate);
          changed = true;  // same lo now names the next chunk
        } else {
          lo = hi;
        }
      }
      if (chunk == 1) break;
    }
    return changed;
  }

  bool pass_drop_edges(CaseBuilder* b) {
    bool changed = false;
    if (!b->edges.empty()) {
      CaseBuilder candidate = *b;  // all edges at once: DAG -> independent
      candidate.edges.clear();
      if (still_fails(candidate)) {
        *b = std::move(candidate);
        return true;
      }
    }
    for (std::size_t i = 0; i < b->edges.size();) {
      CaseBuilder candidate = *b;
      candidate.edges.erase(candidate.edges.begin() +
                            static_cast<std::ptrdiff_t>(i));
      if (still_fails(candidate)) {
        *b = std::move(candidate);
        changed = true;
      } else {
        ++i;
      }
    }
    return changed;
  }

  bool pass_shrink_platform(CaseBuilder* b) {
    bool changed = false;
    for (;;) {
      bool step = false;
      if (b->cpus > 0) {
        CaseBuilder candidate = *b;
        --candidate.cpus;
        if (candidate.cpus + candidate.gpus > 0 && still_fails(candidate)) {
          *b = std::move(candidate);
          step = changed = true;
        }
      }
      if (b->gpus > 0) {
        CaseBuilder candidate = *b;
        --candidate.gpus;
        if (candidate.cpus + candidate.gpus > 0 && still_fails(candidate)) {
          *b = std::move(candidate);
          step = changed = true;
        }
      }
      if (!step) break;
    }
    return changed;
  }

  bool pass_strip_faults(CaseBuilder* b) {
    bool changed = false;
    if (b->has_fault_events()) {
      CaseBuilder candidate = *b;  // the whole plan at once
      candidate.crashes.clear();
      candidate.stragglers.clear();
      candidate.task_fail_prob = 0.0;
      if (still_fails(candidate)) {
        *b = std::move(candidate);
        return true;
      }
    }
    for (std::size_t i = 0; i < b->crashes.size();) {
      CaseBuilder candidate = *b;
      candidate.crashes.erase(candidate.crashes.begin() +
                              static_cast<std::ptrdiff_t>(i));
      if (still_fails(candidate)) {
        *b = std::move(candidate);
        changed = true;
      } else {
        ++i;
      }
    }
    for (std::size_t i = 0; i < b->stragglers.size();) {
      CaseBuilder candidate = *b;
      candidate.stragglers.erase(candidate.stragglers.begin() +
                                 static_cast<std::ptrdiff_t>(i));
      if (still_fails(candidate)) {
        *b = std::move(candidate);
        changed = true;
      } else {
        ++i;
      }
    }
    if (b->task_fail_prob > 0.0) {
      CaseBuilder candidate = *b;
      candidate.task_fail_prob = 0.0;
      if (still_fails(candidate)) {
        *b = std::move(candidate);
        changed = true;
      }
    }
    if (b->retry_backoff > 0.0) {
      CaseBuilder candidate = *b;
      candidate.retry_backoff = 0.0;
      if (still_fails(candidate)) {
        *b = std::move(candidate);
        changed = true;
      }
    }
    return changed;
  }

  /// Round durations and priorities to friendlier values. Candidates go
  /// from most to least aggressive; the first accepted one wins per field.
  bool pass_round_values(CaseBuilder* b) {
    bool changed = false;
    for (std::size_t i = 0; i < b->tasks.size(); ++i) {
      for (const double v : {1.0, std::round(b->tasks[i].cpu_time)}) {
        if (v <= 0.0 || v == b->tasks[i].cpu_time) continue;
        CaseBuilder candidate = *b;
        candidate.tasks[i].cpu_time = v;
        if (still_fails(candidate)) {
          *b = std::move(candidate);
          changed = true;
          break;
        }
      }
      for (const double v : {1.0, std::round(b->tasks[i].gpu_time)}) {
        if (v <= 0.0 || v == b->tasks[i].gpu_time) continue;
        CaseBuilder candidate = *b;
        candidate.tasks[i].gpu_time = v;
        if (still_fails(candidate)) {
          *b = std::move(candidate);
          changed = true;
          break;
        }
      }
      for (const double v :
           {0.0, static_cast<double>(i), std::round(b->tasks[i].priority)}) {
        if (v == b->tasks[i].priority) continue;
        CaseBuilder candidate = *b;
        candidate.tasks[i].priority = v;
        if (still_fails(candidate)) {
          *b = std::move(candidate);
          changed = true;
          break;
        }
      }
    }
    return changed;
  }

  ShrinkResult run(const FuzzCase& failing) {
    CaseBuilder best = CaseBuilder::from_case(failing);
    int rounds = 0;
    for (; rounds < options_.max_rounds; ++rounds) {
      bool changed = false;
      changed |= pass_drop_tasks(&best);
      changed |= pass_drop_edges(&best);
      changed |= pass_strip_faults(&best);
      changed |= pass_shrink_platform(&best);
      changed |= pass_round_values(&best);
      if (!changed || evals_ >= options_.max_evals) break;
    }
    ShrinkResult result;
    best.name = failing.name + "-min";
    result.minimized = best.build();
    result.evals = evals_;
    result.rounds = rounds;
    return result;
  }

 private:
  std::function<bool(const FuzzCase&)> fails_;
  ShrinkOptions options_;
  int evals_ = 0;
};

}  // namespace

ShrinkResult shrink_case_with(
    const FuzzCase& failing,
    const std::function<bool(const FuzzCase&)>& fails,
    const ShrinkOptions& options) {
  Shrinker shrinker(fails, options);
  return shrinker.run(failing);
}

ShrinkResult shrink_case(const FuzzCase& failing, SchedulerId sched,
                         const OracleOptions& oracle,
                         const ShrinkOptions& options) {
  // Restrict the oracle to the properties that failed on the input: the
  // shrink predicate is "one of *those* still fails", not "anything fails",
  // so shrinking cannot wander to an unrelated bug.
  const OracleVerdict initial = check_case(failing, sched, oracle);
  unsigned failing_props = 0;
  for (const PropertyFailure& f : initial.failures) {
    for (unsigned bit = 1; bit < kPropAll; bit <<= 1) {
      if (f.property == property_name(bit)) failing_props |= bit;
    }
  }
  if (failing_props == 0) {
    // Precondition violated (the case passes): return it unchanged.
    ShrinkResult result;
    result.minimized = failing;
    return result;
  }
  OracleOptions restricted = oracle;
  restricted.props = failing_props;
  ShrinkResult result = shrink_case_with(
      failing,
      [&](const FuzzCase& c) { return !check_case(c, sched, restricted).ok(); },
      options);
  // Re-run the oracle on the final case so the reported failure matches the
  // artifact we hand back.
  const OracleVerdict verdict = check_case(result.minimized, sched, restricted);
  if (!verdict.failures.empty()) result.failure = verdict.failures.front();
  return result;
}

}  // namespace hp::fuzz
