#pragma once
// Prometheus text-format exposition of a MetricsRegistry.
//
// prometheus_text() renders every counter, gauge and histogram in the
// text format scrape endpoints serve (one `# TYPE` comment per family,
// one `name{labels} value` sample per line). Histograms emit the classic
// cumulative `_bucket{le="..."}` series over the *occupied* buckets plus
// `+Inf`, `_sum` and `_count`, and additionally a `<name>_quantile` gauge
// family with the p50/p90/p99 upper-bound estimates and the exact max —
// the pre-aggregated form the serve endpoint will report per tenant.
//
// validate_prometheus_text() is a line-format checker for tests and the
// CLI: metric names must be legal, every sample must carry a parsable
// value, and every sample's family must have been declared by a preceding
// `# TYPE` line. It is not a full PromQL-compatible parser — it validates
// what this repo emits.

#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace hp::obs {

struct PrometheusOptions {
  /// Prepended to every family name (namespacing per convention).
  std::string prefix = "hp_";
  /// Quantiles emitted per histogram alongside the bucket series.
  std::vector<double> quantiles = {0.5, 0.9, 0.99};
};

/// Render `registry` as Prometheus text exposition format. Metric names
/// are sanitized ([a-zA-Z0-9_:], anything else becomes '_').
[[nodiscard]] std::string prometheus_text(const MetricsRegistry& registry,
                                          const PrometheusOptions& options = {});

/// Validate the line format of an exposition document. On failure returns
/// false and describes the first offending line in `*error`.
bool validate_prometheus_text(const std::string& text, std::string* error);

}  // namespace hp::obs
