#include "obs/event.hpp"

#include <cstring>

namespace hp::obs {

namespace {
constexpr const char* kKindNames[kNumEventKinds] = {
    "ready",           "start",
    "complete",        "abort",
    "spoliate-attempt", "spoliate-skip",
    "spoliate-commit", "queue-depth",
    "idle-begin",      "idle-end",
    "bound-violation", "worker-crash",
    "worker-slow-begin", "worker-slow-end",
    "task-fail",       "task-retry",
    "run-degraded",    "task-arrival",
    "task-shed",       "task-deferred",
    "deadline-miss",   "replan",
    "reschedule-tick", "mode-change",
    "straggler-respawn",
};
}  // namespace

const char* event_kind_name(EventKind kind) noexcept {
  const auto i = static_cast<std::size_t>(kind);
  return i < kNumEventKinds ? kKindNames[i] : "?";
}

bool event_kind_from_name(const char* name, EventKind* out) noexcept {
  for (std::size_t i = 0; i < kNumEventKinds; ++i) {
    if (std::strcmp(name, kKindNames[i]) == 0) {
      *out = static_cast<EventKind>(i);
      return true;
    }
  }
  return false;
}

}  // namespace hp::obs
