#include "obs/recorder.hpp"

namespace hp::obs {

std::size_t EventRecorder::count(EventKind kind) const noexcept {
  std::size_t n = 0;
  for (const Event& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

double EventRecorder::last_time() const noexcept {
  double t = 0.0;
  for (const Event& e : events_) {
    if (e.time > t) t = e.time;
  }
  return t;
}

}  // namespace hp::obs
