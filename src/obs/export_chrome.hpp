#pragma once
// Chrome trace-event JSON exporter for scheduler event streams.
//
// The output loads in Perfetto (ui.perfetto.dev) and chrome://tracing: one
// track per worker carrying the executed slices (aborted spoliation
// segments as separate "aborted"-category slices), instant markers for
// spoliation attempts/skips/commits and bound violations, and counter
// tracks for the ready-queue depth. Simulated seconds are written as
// microseconds-scale "ts" values (x1000) so short schedules stay readable.
//
// validate_chrome_trace() parses an emitted document back (obs/json.hpp)
// and checks the trace-event schema: traceEvents array, required fields per
// phase, and one thread_name metadata record per worker.

#include <optional>
#include <span>
#include <string>

#include "model/platform.hpp"
#include "model/task.hpp"
#include "obs/event.hpp"

namespace hp::obs {

class CounterRegistry;
class MetricsRegistry;

struct ChromeTraceOptions {
  /// Multiplier from simulated seconds to emitted "ts" units.
  double time_scale = 1000.0;
  /// Emit kQueueDepth samples as a counter track, plus running_cpu /
  /// running_gpu tracks (running-set size per resource, derived from the
  /// start/complete/abort pairs).
  bool counter_tracks = true;
  /// Emit instant markers for spoliation attempts/skips (commits are always
  /// emitted; attempts can be numerous on adversarial instances).
  bool attempt_markers = true;
  /// Optional rollup embedded as one "hp_metrics_rollup" metadata record:
  /// every CounterRegistry entry (scheduler counters, cp_* critical-path
  /// attribution) verbatim, and count/p50/p90/p99/max per MetricsRegistry
  /// histogram — the same numbers the Prometheus exposition reports, so
  /// the trace and the scrape cannot drift apart. Borrowed, may be null.
  const CounterRegistry* counters = nullptr;
  const MetricsRegistry* metrics = nullptr;
};

/// Render `events` (one run, time-ordered) as a Chrome trace-event JSON
/// document. `tasks` provides slice names (kernel kinds); pass an empty
/// span to fall back to "task <id>" labels.
[[nodiscard]] std::string chrome_trace_from_events(
    std::span<const Event> events, const Platform& platform,
    std::span<const Task> tasks = {}, const ChromeTraceOptions& options = {});

/// Schema check of an emitted document. Verifies: valid JSON; a
/// "traceEvents" array; every entry has name/ph/pid/tid-as-needed/ts; "X"
/// slices carry a "dur"; exactly one thread_name metadata entry per worker
/// of `platform` (when a platform is given). Returns false and explains in
/// `*error` on the first violation.
bool validate_chrome_trace(const std::string& json_text,
                           const std::optional<Platform>& platform,
                           std::string* error);

}  // namespace hp::obs
