#pragma once
// Distribution metrics derived from a finished event stream.
//
// The hot path stays cheap by not recording per-task distributions at all:
// the engines emit the same typed events they always did, and this pass
// turns one run's stream into histograms after the fact — queue-wait
// (ready -> start) per task, task durations, idle-interval lengths, and
// per-worker busy time split by resource. Works for native streams and for
// replayed static plans alike, so every scheduler gets the same metrics.

#include <span>

#include "model/platform.hpp"
#include "obs/counters.hpp"
#include "obs/event.hpp"
#include "obs/metrics.hpp"

namespace hp::obs {

/// Histogram config for simulated-time values (times are O(1e-3 .. 1e4)
/// simulated seconds; 2^-20 .. 2^36 covers them with room).
[[nodiscard]] constexpr HistogramConfig sim_time_histogram_config() {
  return HistogramConfig{};
}

/// Derive distribution metrics from `events` (one run, time-ordered) into
/// `registry`:
///   queue_wait       histogram of ready -> start per task attempt
///   task_duration    histogram of start -> complete per execution
///   idle_interval    histogram of worker idle-interval lengths
///   busy_time_cpu    histogram over CPU workers' total busy time
///   busy_time_gpu    histogram over GPU workers' total busy time
/// All values are in simulated time units.
void derive_metrics(std::span<const Event> events, const Platform& platform,
                    MetricsRegistry* registry);

/// Import every entry of a CounterRegistry (scheduler counters, cp_*
/// critical-path attribution, watchdog numbers) as gauges, so one exporter
/// call sees scalar counters and distributions together.
void import_counter_registry(const CounterRegistry& counters,
                             MetricsRegistry* registry);

}  // namespace hp::obs
