#include "obs/counters.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "util/table.hpp"

namespace hp::obs {

SchedulerCounters counters_from_events(std::span<const Event> events,
                                       const Platform& platform) {
  SchedulerCounters c;
  // Open execution per worker: start time, or NaN when the worker is free.
  std::vector<double> open(static_cast<std::size_t>(platform.workers()),
                           std::numeric_limits<double>::quiet_NaN());

  for (const Event& e : events) {
    if (e.time > c.makespan) c.makespan = e.time;
    switch (e.kind) {
      case EventKind::kReady:
        ++c.tasks_ready;
        break;
      case EventKind::kStart:
        if (e.worker >= 0) open[static_cast<std::size_t>(e.worker)] = e.time;
        break;
      case EventKind::kComplete:
      case EventKind::kAbort: {
        if (e.kind == EventKind::kComplete) {
          ++c.tasks_completed;
        } else {
          ++c.aborts;
        }
        if (e.worker < 0) break;
        double& started = open[static_cast<std::size_t>(e.worker)];
        if (std::isnan(started)) break;  // unpaired (merged/partial stream)
        const auto r =
            static_cast<std::size_t>(platform.type_of(e.worker));
        (e.kind == EventKind::kComplete ? c.busy_time : c.aborted_time)[r] +=
            e.time - started;
        started = std::numeric_limits<double>::quiet_NaN();
        break;
      }
      case EventKind::kSpoliateAttempt:
        ++c.spoliation_attempts;
        break;
      case EventKind::kSpoliateSkip:
        ++c.spoliation_skips;
        break;
      case EventKind::kSpoliateCommit:
        ++c.spoliation_commits;
        break;
      case EventKind::kQueueDepth:
        if (static_cast<long long>(e.value) > c.peak_ready_depth) {
          c.peak_ready_depth = static_cast<long long>(e.value);
        }
        break;
      case EventKind::kIdleBegin:
        break;
      case EventKind::kIdleEnd:
        ++c.idle_intervals;
        break;
      case EventKind::kBoundViolation:
        ++c.bound_violations;
        break;
      case EventKind::kWorkerCrash:
        ++c.worker_crashes;
        break;
      case EventKind::kWorkerSlowBegin:
        ++c.straggler_windows;
        break;
      case EventKind::kWorkerSlowEnd:
        break;
      case EventKind::kTaskFail:
        ++c.task_failures;
        break;
      case EventKind::kTaskRetry:
        ++c.task_retries;
        break;
      case EventKind::kRunDegraded:
        ++c.degraded_runs;
        break;
      case EventKind::kTaskArrival:
        ++c.tasks_arrived;
        break;
      case EventKind::kTaskShed:
        ++c.tasks_shed;
        break;
      case EventKind::kTaskDeferred:
        ++c.tasks_deferred;
        break;
      case EventKind::kDeadlineMiss:
        ++c.deadline_misses;
        break;
      case EventKind::kReplan:
        ++c.replans;
        break;
      case EventKind::kRescheduleTick:
        ++c.reschedule_ticks;
        break;
      case EventKind::kModeChange:
        ++c.mode_changes;
        break;
      case EventKind::kStragglerRespawn:
        ++c.straggler_respawns;
        break;
    }
  }

  for (Resource r : {Resource::kCpu, Resource::kGpu}) {
    const auto i = static_cast<std::size_t>(r);
    const double capacity = platform.count(r) * c.makespan;
    // Aborted work counts as idle, per the §6.2 footnote (and matching
    // ScheduleMetrics::idle_time).
    c.idle_fraction[i] =
        capacity > 0.0 ? (capacity - c.busy_time[i]) / capacity : 0.0;
  }
  return c;
}

void CounterRegistry::set(const std::string& name, double value) {
  for (auto& [key, val] : entries_) {
    if (key == name) {
      val = value;
      return;
    }
  }
  entries_.emplace_back(name, value);
}

void CounterRegistry::incr(const std::string& name, double delta) {
  for (auto& [key, val] : entries_) {
    if (key == name) {
      val += delta;
      return;
    }
  }
  entries_.emplace_back(name, delta);
}

double CounterRegistry::get(const std::string& name) const noexcept {
  for (const auto& [key, val] : entries_) {
    if (key == name) return val;
  }
  return 0.0;
}

bool CounterRegistry::contains(const std::string& name) const noexcept {
  for (const auto& [key, val] : entries_) {
    if (key == name) return true;
  }
  return false;
}

std::string CounterRegistry::to_string() const {
  util::Table table({"counter", "value"}, 6);
  for (const auto& [name, value] : entries_) {
    auto& row = table.row().cell(name);
    if (value == std::floor(value) && std::abs(value) < 1e15) {
      row.cell(static_cast<long long>(value));
    } else {
      row.cell(value);
    }
  }
  std::ostringstream oss;
  table.print(oss);
  return oss.str();
}

CounterRegistry registry_from(const SchedulerCounters& c) {
  CounterRegistry reg;
  reg.set("tasks_ready", static_cast<double>(c.tasks_ready));
  reg.set("tasks_completed", static_cast<double>(c.tasks_completed));
  reg.set("spoliation_attempts", static_cast<double>(c.spoliation_attempts));
  reg.set("spoliation_commits", static_cast<double>(c.spoliation_commits));
  reg.set("spoliation_skips", static_cast<double>(c.spoliation_skips));
  reg.set("aborts", static_cast<double>(c.aborts));
  reg.set("bound_violations", static_cast<double>(c.bound_violations));
  reg.set("worker_crashes", static_cast<double>(c.worker_crashes));
  reg.set("straggler_windows", static_cast<double>(c.straggler_windows));
  reg.set("task_failures", static_cast<double>(c.task_failures));
  reg.set("task_retries", static_cast<double>(c.task_retries));
  reg.set("degraded_runs", static_cast<double>(c.degraded_runs));
  reg.set("tasks_arrived", static_cast<double>(c.tasks_arrived));
  reg.set("tasks_shed", static_cast<double>(c.tasks_shed));
  reg.set("tasks_deferred", static_cast<double>(c.tasks_deferred));
  reg.set("deadline_misses", static_cast<double>(c.deadline_misses));
  reg.set("replans", static_cast<double>(c.replans));
  reg.set("reschedule_ticks", static_cast<double>(c.reschedule_ticks));
  reg.set("mode_changes", static_cast<double>(c.mode_changes));
  reg.set("straggler_respawns", static_cast<double>(c.straggler_respawns));
  reg.set("peak_ready_depth", static_cast<double>(c.peak_ready_depth));
  reg.set("idle_intervals", static_cast<double>(c.idle_intervals));
  reg.set("cpu_busy_time", c.busy_time[0]);
  reg.set("gpu_busy_time", c.busy_time[1]);
  reg.set("cpu_aborted_time", c.aborted_time[0]);
  reg.set("gpu_aborted_time", c.aborted_time[1]);
  reg.set("cpu_idle_fraction", c.idle_fraction[0]);
  reg.set("gpu_idle_fraction", c.idle_fraction[1]);
  reg.set("makespan", c.makespan);
  return reg;
}

}  // namespace hp::obs
