#pragma once
// In-memory event sink: stores every event in arrival order. The standard
// way to capture a run for export, counter derivation or test assertions.

#include <span>
#include <vector>

#include "obs/event.hpp"

namespace hp::obs {

class EventRecorder final : public EventSink {
 public:
  void on_event(const Event& event) override { events_.push_back(event); }

  [[nodiscard]] std::span<const Event> events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  void clear() noexcept { events_.clear(); }

  /// Number of recorded events of one kind.
  [[nodiscard]] std::size_t count(EventKind kind) const noexcept;

  /// Latest event time (0 for an empty recording). Event streams are
  /// time-ordered, but this scans anyway so merged recordings stay correct.
  [[nodiscard]] double last_time() const noexcept;

 private:
  std::vector<Event> events_;
};

}  // namespace hp::obs
