#include "obs/replay.hpp"

#include <algorithm>

namespace hp::obs {

namespace {

/// Tie rank at equal times: free the worker (abort/complete) before
/// re-occupying it (start), with markers and ready events in between.
int tie_rank(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kAbort:
    case EventKind::kComplete: return 0;
    case EventKind::kSpoliateCommit: return 1;
    case EventKind::kReady: return 2;
    case EventKind::kStart: return 3;
    default: return 4;
  }
}

}  // namespace

std::vector<Event> replay_schedule(const Schedule& schedule,
                                   const Platform& platform) {
  (void)platform;  // shape is implicit in worker ids; kept for symmetry
  std::vector<Event> events;
  events.reserve(3 * schedule.num_tasks() + 3 * schedule.aborted().size());

  for (std::size_t i = 0; i < schedule.num_tasks(); ++i) {
    const auto id = static_cast<TaskId>(i);
    const Placement& p = schedule.placement(id);
    if (!p.placed()) continue;
    // The decision time is not recorded in a Schedule; the replayed ready
    // instant is approximated by the start time.
    events.push_back({.time = p.start, .kind = EventKind::kReady, .task = id});
    events.push_back(
        {.time = p.start, .kind = EventKind::kStart, .task = id, .worker = p.worker});
    events.push_back(
        {.time = p.end, .kind = EventKind::kComplete, .task = id, .worker = p.worker});
  }
  for (const AbortedSegment& a : schedule.aborted()) {
    events.push_back(
        {.time = a.start, .kind = EventKind::kStart, .task = a.task, .worker = a.worker});
    events.push_back({.time = a.abort_time,
                      .kind = EventKind::kAbort,
                      .task = a.task,
                      .worker = a.worker});
    const Placement& final = schedule.placement(a.task);
    if (final.placed()) {
      events.push_back({.time = a.abort_time,
                        .kind = EventKind::kSpoliateCommit,
                        .task = a.task,
                        .worker = final.worker,
                        .victim = a.worker});
    }
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const Event& x, const Event& y) {
                     if (x.time != y.time) return x.time < y.time;
                     const int rx = tie_rank(x.kind);
                     const int ry = tie_rank(y.kind);
                     if (rx != ry) return rx < ry;
                     return x.task < y.task;
                   });

  // Queue-depth samples, one per distinct instant, so replayed plans get
  // the same Perfetto counter track as the dynamic schedulers. The
  // replayed ready instant equals the start instant, so the informative
  // number is the *peak* within the instant — everything still queued plus
  // the batch becoming ready — sampled after the instant's events.
  std::vector<Event> sampled;
  sampled.reserve(events.size() + events.size() / 3 + 1);
  long long carried = 0;  // ready but not yet started across instants
  long long starts_here = 0;
  double last_depth = -1.0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    sampled.push_back(e);
    if (e.kind == EventKind::kReady) ++carried;
    if (e.kind == EventKind::kStart) {
      --carried;
      ++starts_here;
    }
    const bool boundary =
        i + 1 == events.size() || events[i + 1].time != e.time;
    if (!boundary) continue;
    // Aborted attempts replay a start without a ready; never report the
    // resulting unpaired pops as negative depth.
    if (carried < 0) carried = 0;
    // Ties sort readies before starts, so the instant's peak is the carry
    // plus everything that started here.
    const auto depth = static_cast<double>(carried + starts_here);
    starts_here = 0;
    if (depth != last_depth) {
      sampled.push_back({.time = e.time,
                         .kind = EventKind::kQueueDepth,
                         .value = depth});
      last_depth = depth;
    }
  }
  return sampled;
}

void replay_schedule_to(const Schedule& schedule, const Platform& platform,
                        EventSink* sink) {
  if (sink == nullptr) return;
  for (const Event& e : replay_schedule(schedule, platform)) {
    sink->on_event(e);
  }
}

}  // namespace hp::obs
