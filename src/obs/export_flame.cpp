#include "obs/export_flame.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

namespace hp::obs {

std::string collapsed_stacks(const MetricsCollector& collector) {
  const std::vector<MetricsCollector::PathTotal>& paths = collector.paths();

  // Scale each path's sampled time by its leaf phase's sampling ratio.
  struct ScaledPath {
    std::uint64_t key = 0;
    double scaled_ns = 0.0;
  };
  std::vector<ScaledPath> scaled;
  scaled.reserve(paths.size());
  for (const auto& path : paths) {
    const auto leaf = static_cast<Phase>((path.key & 0xF) - 1);
    const PhaseStats& st = collector.stats(leaf);
    const double scale =
        st.sampled > 0 ? static_cast<double>(st.calls) /
                             static_cast<double>(st.sampled)
                       : 1.0;
    scaled.push_back({path.key, static_cast<double>(path.sampled_ns) * scale});
  }

  struct Line {
    std::string frames;
    long long weight = 0;
  };
  std::vector<Line> lines;
  std::vector<Phase> decoded;
  for (const auto& path : scaled) {
    // Self time: subtract the scaled time of direct children (clamped —
    // independent sampling can overestimate a child past its parent).
    double self_ns = path.scaled_ns;
    for (const auto& other : scaled) {
      if (other.key >> 4 == path.key) self_ns -= other.scaled_ns;
    }
    const auto weight = std::llround(std::max(self_ns, 0.0));
    if (weight <= 0) continue;

    MetricsCollector::decode_path(path.key, &decoded);
    std::ostringstream frames;
    for (std::size_t i = 0; i < decoded.size(); ++i) {
      if (i != 0) frames << ';';
      frames << phase_name(decoded[i]);
    }
    lines.push_back({frames.str(), weight});
  }

  std::sort(lines.begin(), lines.end(),
            [](const Line& x, const Line& y) { return x.frames < y.frames; });
  std::ostringstream out;
  for (const Line& line : lines) {
    out << line.frames << ' ' << line.weight << '\n';
  }
  return out.str();
}

}  // namespace hp::obs
