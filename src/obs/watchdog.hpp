#pragma once
// Bound-violation watchdog — the paper's approximation theorems as a
// runtime assertion.
//
// Theorems 7, 9 and 12 prove worst-case makespan ratios for HeteroPrio on
// independent tasks: phi on (1 CPU, 1 GPU), 1+phi with a single worker on
// one side, 2+sqrt(2) on general (m, n). The watchdog takes a finished
// schedule's makespan and a lower bound on the optimal makespan, picks the
// proven bound for the platform shape, and flags any exceedance as a
// first-class observability event.
//
// Semantics to keep in mind when reading a verdict:
//   * The check compares against a LOWER BOUND on OPT, not OPT itself. A
//     tight lower bound (area bound; or a known optimal makespan) makes the
//     check sharp; a loose one can only make the watchdog fire where the
//     theorem still holds against true OPT — a violation is therefore a
//     "investigate this run" signal, and a pass is a proof-consistent run.
//   * The theorems cover independent tasks. For DAG schedules the verdict
//     is advisory (`advisory` is set): no constant ratio is proven, but a
//     DAG run far above 2+sqrt(2) times its lower bound is still worth a
//     look.

#include "model/platform.hpp"
#include "obs/event.hpp"
#include "sched/schedule.hpp"

namespace hp::obs {

/// Platform shapes with distinct proven bounds.
enum class PlatformShape {
  kSingleSingle,  ///< (1, 1): phi (Theorem 7)
  kManyPlusOne,   ///< (m, 1) or (1, n): 1 + phi (Theorem 9)
  kGeneral,       ///< (m, n), both > 1: 2 + sqrt(2) (Theorem 12)
  kHomogeneous,   ///< one resource class only: Graham's 2 - 1/w list bound
};

[[nodiscard]] const char* shape_name(PlatformShape shape) noexcept;

/// Shape of a platform and the paper's proven HeteroPrio ratio for it.
[[nodiscard]] PlatformShape platform_shape(const Platform& platform) noexcept;
[[nodiscard]] double proven_bound(const Platform& platform) noexcept;

/// Count-based overloads for platforms that shrink mid-run (worker crashes):
/// a Platform object cannot represent zero workers, but a degraded run can
/// end with none. (0, 0) is kHomogeneous with an infinite bound — nothing
/// finished on nothing violates nothing.
[[nodiscard]] PlatformShape platform_shape(int cpus, int gpus) noexcept;
[[nodiscard]] double proven_bound(int cpus, int gpus) noexcept;

struct WatchdogOptions {
  /// Relative slack on the bound: a ratio within bound * (1 + tolerance)
  /// does not fire (floating-point and lower-bound quantization headroom).
  double tolerance = 1e-6;
  /// The schedule came from a DAG run; the theorems do not apply, the
  /// verdict is advisory.
  bool dag = false;
  /// When set, a violation is emitted as an EventKind::kBoundViolation at
  /// the makespan instant.
  EventSink* sink = nullptr;
};

/// Verdict of one check.
struct BoundCheck {
  PlatformShape shape = PlatformShape::kGeneral;
  double bound = 0.0;        ///< proven ratio for the shape
  double makespan = 0.0;
  double lower_bound = 0.0;  ///< the caller's lower bound on OPT
  double ratio = 0.0;        ///< makespan / lower_bound (0 if bound <= 0)
  bool violated = false;     ///< ratio > bound * (1 + tolerance)
  bool advisory = false;     ///< DAG run: theorem does not formally apply
};

/// Check a makespan against the proven bound for `platform`'s shape.
[[nodiscard]] BoundCheck check_makespan_bound(
    double makespan, double lower_bound, const Platform& platform,
    const WatchdogOptions& options = {});

/// Count-based overload: check against the bound for the shape of a
/// (possibly degraded) platform with `cpus` + `gpus` surviving workers. Use
/// after a faulty run so the verdict matches what actually survived, not
/// the constructor-time shape.
[[nodiscard]] BoundCheck check_makespan_bound(
    double makespan, double lower_bound, int cpus, int gpus,
    const WatchdogOptions& options = {});

/// Convenience overload on a finished schedule.
[[nodiscard]] BoundCheck check_schedule_bound(
    const Schedule& schedule, double lower_bound, const Platform& platform,
    const WatchdogOptions& options = {});

/// One-line human-readable verdict ("ratio 1.42 <= 3.41 (2+sqrt(2), m+n) ok").
[[nodiscard]] std::string describe(const BoundCheck& check);

}  // namespace hp::obs
