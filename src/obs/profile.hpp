#pragma once
// Self-profiling of the engine hot paths: named phases, wall-clock (or
// deterministic tick) timing, and a single-writer MetricsCollector that
// turns RAII PhaseScopes into per-phase call counts, duration histograms
// and collapsed call-path totals (export_flame.hpp).
//
// Overhead discipline. A PhaseScope on a null collector is one pointer
// test; under -DHP_OBS_OFF it compiles to nothing, like obs::Probe. With a
// collector attached, every entry counts its call (an increment and a
// mask test), but only *sampled* entries read the clock: high-frequency
// phases default to timing 1 in 2^k entries (deterministic count-based
// sampling, not random — runs stay reproducible), while coarse per-run
// phases are always timed. Scaled totals multiply the sampled time back up
// by calls/sampled, and the per-phase histograms hold the sampled
// durations. The bench_obs_overhead baseline enforces that the whole
// arrangement costs <= 2% throughput on the reference workloads.
//
// Determinism. Timing never influences scheduling decisions, so schedules
// are bitwise identical with and without a collector. The *metrics output*
// itself is nondeterministic under the default steady clock; tests that
// want byte-stable output attach a TickClock, which advances a fixed
// amount per reading.

#include <array>
#include <chrono>
#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"

namespace hp::obs {

/// Instrumented engine phases. Names (phase_name) are stable identifiers
/// used in metric names and flamegraph frames.
enum class Phase : std::uint8_t {
  kEngine,          ///< one whole scheduler run
  kKeyBuild,        ///< SoA key build (task_soa / sort-key packing)
  kSort,            ///< counting/radix sort of the ready keys
  kDispatch,        ///< idle-worker dispatch (queue pops + placement)
  kReadyUpdate,     ///< ready-queue insertion / successor release
  kSpoliationScan,  ///< victim scan of Algorithm 1's spoliation rule
  kHeftRank,        ///< HEFT upward-rank ordering
  kHeftGapSearch,   ///< HEFT per-task worker/gap scan
  kDualHpBisection, ///< DualHP lambda binary search
};

inline constexpr std::size_t kNumPhases =
    static_cast<std::size_t>(Phase::kDualHpBisection) + 1;

/// Stable snake_case name, e.g. "heft_gap_search".
[[nodiscard]] const char* phase_name(Phase phase) noexcept;

/// Time source for the collector. Virtualized so tests swap the wall clock
/// for a deterministic one without touching the engines.
class MetricClock {
 public:
  virtual ~MetricClock() = default;
  /// Monotone, nanoseconds. Called only for sampled scope entries/exits.
  virtual std::uint64_t now_ns() = 0;
};

/// std::chrono::steady_clock — the default.
class SteadyClock final : public MetricClock {
 public:
  std::uint64_t now_ns() override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

/// Deterministic clock: every reading advances by a fixed tick, so any run
/// with the same scope sequence produces byte-identical metrics.
class TickClock final : public MetricClock {
 public:
  explicit TickClock(std::uint64_t tick_ns = 100) : tick_ns_(tick_ns) {}
  std::uint64_t now_ns() override { return ++readings_ * tick_ns_; }
  [[nodiscard]] std::uint64_t readings() const noexcept { return readings_; }

 private:
  std::uint64_t tick_ns_;
  std::uint64_t readings_ = 0;
};

/// Per-phase tallies. `calls` counts every scope entry; `sampled` the
/// entries that read the clock; `sampled_ns` their total duration.
struct PhaseStats {
  std::uint64_t calls = 0;
  std::uint64_t sampled = 0;
  std::uint64_t sampled_ns = 0;

  /// Sampled time scaled back up by the sampling ratio — the estimate of
  /// the phase's true total.
  [[nodiscard]] double scaled_total_ns() const noexcept {
    if (sampled == 0) return 0.0;
    return static_cast<double>(sampled_ns) * static_cast<double>(calls) /
           static_cast<double>(sampled);
  }
};

/// Single-writer sink for PhaseScopes: per-phase stats and duration
/// histograms, plus collapsed call-path totals for the flamegraph
/// exporter. One instance per engine run (or per thread, merged after).
class MetricsCollector {
 public:
  /// `clock` may be null: an owned SteadyClock is used. The clock is
  /// borrowed and must outlive the collector.
  explicit MetricsCollector(MetricClock* clock = nullptr);

  /// Sample 1 in 2^shift entries of `phase` (0 = every entry). Defaults:
  /// per-item phases (dispatch, ready-update, spoliation-scan,
  /// heft-gap-search, dualhp-bisection) use kDefaultSampleShift; per-run
  /// phases are always timed.
  void set_sample_shift(Phase phase, unsigned shift);
  [[nodiscard]] unsigned sample_shift(Phase phase) const noexcept;
  static constexpr unsigned kDefaultSampleShift = 6;  ///< 1 in 64

  // -- hot path (called by PhaseScope) ------------------------------------
  /// Count a scope entry; true when this entry should be timed. Defined
  /// in-class so the unsampled common case is a handful of inlined
  /// instructions, not a function call per scope.
  bool enter(Phase phase) noexcept {
    const auto p = static_cast<std::size_t>(phase);
    PhaseStats& st = stats_[p];
    const std::uint64_t mask = (std::uint64_t{1} << shift_[p]) - 1;
    const bool timed = (st.calls & mask) == 0;
    ++st.calls;
    if (depth_ < kMaxDepth) {
      // Push the frame even when unsampled so sampled children keep their
      // full ancestry in the path key.
      path_stack_[depth_ + 1] =
          (path_stack_[depth_] << 4) | (static_cast<std::uint64_t>(phase) + 1);
    }
    ++depth_;  // beyond kMaxDepth: collapse into the prefix
    return timed;
  }
  /// Close the matching entry. `elapsed_ns` is meaningful when `timed`.
  void leave(Phase phase, bool timed, std::uint64_t elapsed_ns) {
    if (timed) record_sample(phase, elapsed_ns);
    if (depth_ > 0) --depth_;
  }
  [[nodiscard]] std::uint64_t now_ns() { return clock_->now_ns(); }

  // -- results ------------------------------------------------------------
  [[nodiscard]] const PhaseStats& stats(Phase phase) const noexcept;
  /// Sampled durations of `phase` in nanoseconds.
  [[nodiscard]] const Histogram& phase_histogram(Phase phase) const noexcept;

  /// One collapsed call path (root-first) with its sampled time. Paths are
  /// keyed by 4-bit frames packed into a word, decoded via decode_path.
  struct PathTotal {
    std::uint64_t key = 0;
    std::uint64_t sampled_ns = 0;
  };
  [[nodiscard]] const std::vector<PathTotal>& paths() const noexcept {
    return paths_;
  }
  static void decode_path(std::uint64_t key, std::vector<Phase>* out);

  /// Fold another collector's tallies in (parallel engines: one collector
  /// per thread, merged at the end).
  void merge(const MetricsCollector& other);

  /// Write phase_<name>_calls / phase_<name>_sampled counters, a
  /// phase_<name>_total_ns gauge (scaled estimate) and a phase_<name>_ns
  /// histogram per non-empty phase into `registry`.
  void export_to(MetricsRegistry* registry) const;

 private:
  /// Sampled-entry slow path: stats, histogram and path attribution.
  void record_sample(Phase phase, std::uint64_t elapsed_ns);
  void add_path(std::uint64_t key, std::uint64_t elapsed_ns);

  SteadyClock owned_clock_;
  MetricClock* clock_;
  std::array<PhaseStats, kNumPhases> stats_{};
  std::array<std::uint8_t, kNumPhases> shift_{};
  std::vector<Histogram> histograms_;

  // Live scope stack as packed path keys; paths deeper than kMaxDepth
  // collapse into their depth-kMaxDepth prefix (never happens with the
  // static nesting of today's engines).
  static constexpr unsigned kMaxDepth = 15;
  std::array<std::uint64_t, kMaxDepth + 1> path_stack_{};
  unsigned depth_ = 0;
  std::vector<PathTotal> paths_;
};

/// RAII phase timer. Constructing on a null collector costs one pointer
/// test; under -DHP_OBS_OFF the whole scope compiles away.
class PhaseScope {
 public:
#ifdef HP_OBS_OFF
  PhaseScope(MetricsCollector* collector, Phase phase) noexcept {
    (void)collector;
    (void)phase;
  }
#else
  PhaseScope(MetricsCollector* collector, Phase phase)
      : collector_(collector), phase_(phase) {
    if (collector_ == nullptr) return;
    timed_ = collector_->enter(phase_);
    if (timed_) start_ns_ = collector_->now_ns();
  }
  ~PhaseScope() {
    if (collector_ == nullptr) return;
    collector_->leave(phase_, timed_,
                      timed_ ? collector_->now_ns() - start_ns_ : 0);
  }
#endif
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

#ifndef HP_OBS_OFF
 private:
  MetricsCollector* collector_ = nullptr;
  Phase phase_ = Phase::kEngine;
  bool timed_ = false;
  std::uint64_t start_ns_ = 0;
#endif
};

}  // namespace hp::obs
